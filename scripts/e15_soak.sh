#!/bin/sh
# E15 coordinator-kill soak: run the sliding-median query on a real
# multi-process cluster whose coordinator is a journaled subprocess, twice —
# fault-free, then with three scheduled SIGKILLs of the coordinator itself:
# once mid-commit (after fsyncing a settle, before delivering the outcome)
# and twice mid-grant (after fsyncing a grant, before any worker hears of
# it). The fault points are chained so each is only reachable after the
# previous kill: commit@0 is the sole rule reachable in incarnation 1 (an
# 11th grant needs a reduce or a retry, and both need lease 0's outcome),
# grant@10 and grant@13 follow from monotonic journaled lease IDs. The
# supervisor respawns each incarnation from the same journal; both runs must
# verify against the reference with identical payload counters, and the
# coordinator must have died by SIGKILL exactly three times. Strict output
# byte identity is asserted by internal/clusterd's
# TestE2ECoordinatorKillRecoveryByteIdentical.
set -eu

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

echo "e15: clean cluster run (coordinator subprocess, journaled)"
go run -race ./cmd/scijob -cluster 3 -side 64 -verify \
    >"$dir/clean.txt" 2>"$dir/clean.err" || {
    echo "e15: clean run failed" >&2
    cat "$dir/clean.err" >&2
    exit 1
}

echo "e15: coordinator-killed run (SIGKILL mid-commit and twice mid-grant)"
go run -race ./cmd/scijob -cluster 3 -side 64 -verify -retries 4 \
    -faults "seed=1;proc:coord.1:kill@0;proc:coord.0:kill@10;proc:coord.0:kill@13" \
    >"$dir/killed.txt" 2>"$dir/killed.err" || {
    echo "e15: killed run failed" >&2
    cat "$dir/killed.err" >&2
    exit 1
}

# Payload counters and verification must be identical; modeled runtime and
# recovery lines legitimately differ (the killed run carries a recovery tax).
payload='records|bytes|splits|verification'
grep -E "$payload" "$dir/clean.txt" >"$dir/clean.payload"
grep -E "$payload" "$dir/killed.txt" >"$dir/killed.payload"
if ! diff -u "$dir/clean.payload" "$dir/killed.payload"; then
    echo "e15: payload counters diverged between clean and killed runs" >&2
    exit 1
fi

deaths="$(grep -cE 'coordinator pid [0-9]+ died \(signal: killed\)' "$dir/killed.err" || true)"
if [ "$deaths" != 3 ]; then
    echo "e15: coordinator died $deaths times by SIGKILL, want 3" >&2
    cat "$dir/killed.err" >&2
    exit 1
fi
grep -q 'epoch 4' "$dir/killed.err" || {
    echo "e15: expected a fourth coordinator incarnation recovered from the journal" >&2
    cat "$dir/killed.err" >&2
    exit 1
}
grep -q 'died' "$dir/clean.err" && {
    echo "e15: clean run had unexpected process deaths" >&2
    exit 1
}
echo "e15 coordinator-kill soak OK"
