#!/bin/sh
# E17 resident-service smoke: build scijob once, take a one-shot run's
# output sha256 as the byte-identity baseline, start the query service on an
# ephemeral port with the object-store cache backend, fire concurrent
# submissions of the same query (so repeats race the cold run), and assert
# that every response's sha matches the one-shot baseline and that the
# segment cache recorded hits (scikey_cache_hit_total > 0 on /metrics,
# scraped with the binary's own -scrape mode — no curl needed).
set -eu

dir="$(mktemp -d)"
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

query="-side 48 -strategy transform -codec block+zlib -splits 4 -reducers 2"

echo "e17: building scijob"
go build -o "$dir/scijob" ./cmd/scijob

echo "e17: one-shot baseline run"
# shellcheck disable=SC2086
"$dir/scijob" $query >"$dir/oneshot.txt"
want="$(sed -n 's/.*output sha256: *//p' "$dir/oneshot.txt")"
[ -n "$want" ] || { echo "e17: one-shot run printed no output sha" >&2; exit 1; }

echo "e17: starting query service (object store backend)"
"$dir/scijob" -serve 127.0.0.1:0 -store object >"$dir/serve.txt" 2>"$dir/serve.err" &
srv_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's|query service on http://\([^ ]*\).*|\1|p' "$dir/serve.txt")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "e17: service never announced its address" >&2; cat "$dir/serve.err" >&2; exit 1; }

n=6
echo "e17: $n concurrent submissions of the same query against $addr"
i=1
while [ "$i" -le "$n" ]; do
    # shellcheck disable=SC2086
    "$dir/scijob" -submit "$addr" $query >"$dir/submit.$i.txt" 2>&1 &
    eval "pid_$i=\$!"
    i=$((i + 1))
done
i=1
while [ "$i" -le "$n" ]; do
    eval "wait \$pid_$i" || { echo "e17: submission $i failed" >&2; cat "$dir/submit.$i.txt" >&2; exit 1; }
    i=$((i + 1))
done

i=1
while [ "$i" -le "$n" ]; do
    got="$(sed -n 's/.*output sha256: *//p' "$dir/submit.$i.txt")"
    if [ "$got" != "$want" ]; then
        echo "e17: submission $i sha $got != one-shot sha $want" >&2
        cat "$dir/submit.$i.txt" >&2
        exit 1
    fi
    i=$((i + 1))
done

"$dir/scijob" -scrape "$addr/metrics" >"$dir/metrics.txt"
hits="$(sed -n 's/^scikey_cache_hit_total //p' "$dir/metrics.txt")"
[ -n "$hits" ] || { echo "e17: scikey_cache_hit_total missing from /metrics" >&2; exit 1; }
if [ "$hits" -le 0 ]; then
    echo "e17: scikey_cache_hit_total = $hits, want > 0 (repeats never hit the cache)" >&2
    exit 1
fi

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=""

echo "e17: OK — $n/$n responses byte-identical to one-shot, $hits cache hits"
