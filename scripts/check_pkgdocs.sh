#!/bin/sh
# check_pkgdocs.sh — fail if any Go package in the module lacks a package
# doc comment (a comment block immediately preceding some file's package
# clause). Run from the repository root; CI runs it as part of the docs
# gate alongside gofmt and go vet.
set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
	ok=0
	any=0
	for f in "$dir"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		any=1
		# A doc comment is a //-line (or the end of a /* */ block)
		# directly above the package clause.
		if awk '
			/^package / && prev ~ /^(\/\/|.*\*\/[[:space:]]*$)/ { found = 1 }
			{ prev = $0 }
			END { exit !found }
		' "$f"; then
			ok=1
			break
		fi
	done
	# Test-only packages (the root benchmark package) have no package
	# clause outside _test.go files to document.
	if [ "$any" -eq 0 ]; then
		continue
	fi
	if [ "$ok" -eq 0 ]; then
		echo "missing package doc comment: ${dir#"$(pwd)"/}" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "every package needs a doc comment (// Package x ... or // Command x ...)" >&2
fi
exit "$fail"
