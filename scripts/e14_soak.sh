#!/bin/sh
# E14 worker-kill soak: run the sliding-median query on a real multi-process
# cluster (coordinator + 3 worker subprocesses) twice — fault-free, then with
# scheduled SIGKILLs on one worker's first map grant and another's first
# reduce grant. Both runs must verify against the reference, the killed run
# must report identical payload counters to the clean one, and at least one
# worker must actually have died by signal. Race-enabled end to end (workers
# re-exec the same binary). Strict byte identity of the output files is
# asserted by internal/clusterd's TestE2EKillRecoveryByteIdentical.
set -eu

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

echo "e14: clean cluster run"
go run -race ./cmd/scijob -cluster 3 -side 64 -verify \
    >"$dir/clean.txt" 2>"$dir/clean.err"

echo "e14: killed cluster run (SIGKILL mid-map and mid-reduce)"
go run -race ./cmd/scijob -cluster 3 -side 64 -verify -retries 4 \
    -faults "seed=1;proc:0.0:kill@0;proc:1.1:kill@0" \
    >"$dir/killed.txt" 2>"$dir/killed.err"

# Payload counters and verification must be identical; modeled runtime and
# recovery lines legitimately differ (the killed run carries a recovery tax).
payload='records|bytes|splits|verification'
grep -E "$payload" "$dir/clean.txt" >"$dir/clean.payload"
grep -E "$payload" "$dir/killed.txt" >"$dir/killed.payload"
if ! diff -u "$dir/clean.payload" "$dir/killed.payload"; then
    echo "e14: payload counters diverged between clean and killed runs" >&2
    exit 1
fi

grep -q 'died (signal: killed)' "$dir/killed.err" || {
    echo "e14: expected at least one worker SIGKILLed" >&2
    cat "$dir/killed.err" >&2
    exit 1
}
grep -q 'recovery: ' "$dir/killed.txt" || {
    echo "e14: expected failed attempts reported in the killed run" >&2
    exit 1
}
echo "e14 worker-kill soak OK"
