// Cluster-mode wiring: the job spec workers rebuild the query from, the
// worker-process duty loop, and the local supervisor that turns one scijob
// invocation into a coordinator plus N real worker subprocesses.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"scikey/internal/clusterd"
	"scikey/internal/core"
	"scikey/internal/faults"
	"scikey/internal/obs"
	"scikey/internal/queryd"
)

// The JSON job description the coordinator pushes to each worker at
// registration is queryd.QuerySpec — the same wire shape the resident query
// service accepts, so cluster workers, the service, and the one-shot CLI
// all rebuild jobs through one Setup path and cannot drift.

// runWorkerMode is the -worker entrypoint: connect to the coordinator,
// rebuild the job from the welcomed spec, and execute granted attempts until
// the coordinator is gone or SIGTERM asks for a graceful drain.
func runWorkerMode(addr string) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scijob worker[pid %d]: %s\n", os.Getpid(), fmt.Sprintf(format, args...))
	}
	w := clusterd.NewWorker(clusterd.WorkerConfig{
		Addr: addr,
		Build: func(raw []byte) (clusterd.Runner, error) {
			var spec queryd.QuerySpec
			if err := json.Unmarshal(raw, &spec); err != nil {
				return nil, fmt.Errorf("decoding job spec: %w", err)
			}
			fs, qcfg, strat, err := spec.Setup()
			if err != nil {
				return nil, err
			}
			plan, err := core.BuildJob(fs, qcfg, strat)
			if err != nil {
				return nil, err
			}
			return &clusterd.JobRunner{Job: plan.Job}, nil
		},
		Logf: logf,
	})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sig
		logf("SIGTERM: draining")
		w.Drain()
	}()
	if err := w.Run(); err != nil {
		fatal(fmt.Errorf("worker: %w", err))
	}
}

// coordinatorConfig carries the flag values the -coordinator daemon needs.
type coordinatorConfig struct {
	addr      string
	journal   string // "" = no journal (no crash recovery)
	spec      queryd.QuerySpec
	heartbeat time.Duration
	leaseTTL  time.Duration
	faults    *faults.Injector
	debugAddr string
}

// runCoordinatorMode is the -coordinator entrypoint: a pure control-plane
// daemon. It journals every state transition, serves workers and drivers
// until SIGTERM, then drains — flush, checkpoint, fsync — and exits 0, so a
// clean restart replays zero events. A SIGKILLed daemon restarted on the
// same address and journal recovers by replay instead; proc:coord fault
// rules self-deliver real signals for exactly that drill. The bind is
// retried briefly so a supervisor can respawn the daemon while the dead
// incarnation's port is still being released.
func runCoordinatorMode(cfg coordinatorConfig) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scijob coordinator[pid %d]: %s\n", os.Getpid(), fmt.Sprintf(format, args...))
	}
	if cfg.leaseTTL == 0 && cfg.journal != "" {
		// Journaled grants and settles fsync inside the coordinator's
		// critical section, which can delay heartbeat processing under load;
		// give renewals more slack than the in-memory default of five
		// heartbeats so a busy disk doesn't masquerade as a dead worker.
		cfg.leaseTTL = 2 * time.Second
	}
	specBytes, err := json.Marshal(cfg.spec)
	if err != nil {
		fatal(err)
	}
	ob := obs.New()
	var c *clusterd.Coordinator
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err = clusterd.Start(clusterd.Config{
			Addr:           cfg.addr,
			Spec:           specBytes,
			Journal:        cfg.journal,
			HeartbeatEvery: cfg.heartbeat,
			LeaseTTL:       cfg.leaseTTL,
			Faults:         cfg.faults,
			Obs:            ob,
			Logf:           logf,
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("starting coordinator: %w", err))
		}
		time.Sleep(10 * time.Millisecond)
	}
	journal := cfg.journal
	if journal == "" {
		journal = "none"
	}
	fmt.Printf("coordinator listening on %s (journal %s, epoch %d)\n", c.Addr(), journal, c.Epoch())
	if cfg.debugAddr != "" {
		dbg, err := obs.NewServer(cfg.debugAddr, ob)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s (metrics, pprof)\n", dbg.Addr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	logf("SIGTERM: draining journal and shutting down")
	if err := c.Shutdown(); err != nil {
		fatal(fmt.Errorf("coordinator shutdown: %w", err))
	}
}

// coordProc supervises the -cluster mode coordinator subprocess the same way
// workerPool supervises workers: respawn on unexpected death (a proc:coord
// kill fault, say), SIGTERM-drain on shutdown. Every incarnation reuses the
// same address and journal, so a respawn is a crash recovery.
type coordProc struct {
	args []string

	mu     sync.Mutex
	cur    *exec.Cmd
	closed bool
	done   chan struct{}
}

// startCoordProc spawns the coordinator subprocess re-executing this binary
// with the given -coordinator argument list and begins supervising it.
func startCoordProc(args []string) *coordProc {
	p := &coordProc{args: args, done: make(chan struct{})}
	p.spawn()
	go p.reap()
	return p
}

func (p *coordProc) spawn() {
	cmd := exec.Command(os.Args[0], p.args...)
	cmd.Stdout = os.Stderr // the daemon's banner is driver-side noise
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatal(fmt.Errorf("spawning coordinator: %w", err))
	}
	p.mu.Lock()
	p.cur = cmd
	p.mu.Unlock()
}

func (p *coordProc) reap() {
	defer close(p.done)
	for {
		p.mu.Lock()
		cmd := p.cur
		p.mu.Unlock()
		err := cmd.Wait()
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "scijob: coordinator pid %d died (%v); respawning\n", cmd.Process.Pid, err)
		} else {
			fmt.Fprintf(os.Stderr, "scijob: coordinator pid %d exited early; respawning\n", cmd.Process.Pid)
		}
		p.spawn()
	}
}

// shutdown SIGTERMs the live incarnation so it drains its journal and exits.
func (p *coordProc) shutdown() {
	p.mu.Lock()
	p.closed = true
	cmd := p.cur
	p.mu.Unlock()
	_ = cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		<-p.done
	}
}

// pickLoopbackAddr reserves a loopback port and releases it, fixing an
// address every coordinator incarnation can re-listen on.
func pickLoopbackAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// dialCoordinator connects a driver Client, retrying for up to patience —
// the coordinator subprocess may still be binding its listener.
func dialCoordinator(addr string, patience time.Duration) (*clusterd.Client, error) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scijob driver: %s\n", fmt.Sprintf(format, args...))
	}
	deadline := time.Now().Add(patience)
	for {
		cl, err := clusterd.Dial(clusterd.ClientConfig{Addr: addr, Logf: logf})
		if err == nil {
			return cl, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// workerPool supervises N local worker subprocesses for -cluster mode: it
// spawns them, respawns any that die unexpectedly (a SIGKILLed worker comes
// back, like a restarted TaskTracker), and SIGTERMs the survivors on
// shutdown so they drain and deregister cleanly.
type workerPool struct {
	addr string

	mu     sync.Mutex
	alive  map[*exec.Cmd]bool
	closed bool
	wg     sync.WaitGroup
}

// startLocalWorkers spawns n worker subprocesses re-executing this binary
// with -worker pointed at the coordinator.
func startLocalWorkers(addr string, n int) *workerPool {
	p := &workerPool{addr: addr, alive: make(map[*exec.Cmd]bool)}
	for i := 0; i < n; i++ {
		p.spawn()
	}
	return p
}

func (p *workerPool) spawn() {
	cmd := exec.Command(os.Args[0], "-worker", p.addr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatal(fmt.Errorf("spawning worker: %w", err))
	}
	p.mu.Lock()
	p.alive[cmd] = true
	p.mu.Unlock()
	p.wg.Add(1)
	go p.reap(cmd)
}

// reap waits for one worker subprocess and respawns it if it died while the
// job was still running — which is exactly what a proc:kill fault causes.
func (p *workerPool) reap(cmd *exec.Cmd) {
	defer p.wg.Done()
	err := cmd.Wait()
	p.mu.Lock()
	delete(p.alive, cmd)
	respawn := !p.closed
	p.mu.Unlock()
	if !respawn {
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scijob: worker pid %d died (%v); respawning\n", cmd.Process.Pid, err)
	} else {
		fmt.Fprintf(os.Stderr, "scijob: worker pid %d exited early; respawning\n", cmd.Process.Pid)
	}
	p.spawn()
}

// shutdown SIGTERMs every live worker and waits for them to drain and exit.
func (p *workerPool) shutdown() {
	p.mu.Lock()
	p.closed = true
	for cmd := range p.alive {
		_ = cmd.Process.Signal(syscall.SIGTERM)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() { p.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.mu.Lock()
		for cmd := range p.alive {
			_ = cmd.Process.Kill()
		}
		p.mu.Unlock()
		<-done
	}
}
