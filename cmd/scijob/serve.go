// Resident-service wiring: -serve hosts the multi-tenant query daemon,
// -submit posts this invocation's query flags to one, and -scrape fetches a
// URL (usually /metrics) so scripts need no external HTTP client.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"scikey/internal/hdfs"
	"scikey/internal/obs"
	"scikey/internal/queryd"
	"scikey/internal/store"
)

// serveConfig carries the flag values the -serve daemon needs.
type serveConfig struct {
	addr       string
	storeKind  string // local | object
	queueDepth int
	workers    int
	quota      float64 // default per-tenant quota in modeled seconds
	quotas     string  // "name=seconds,..." overrides
}

// newStore builds the segment-cache backend the -store flag names.
func newStore(kind string) (store.Store, error) {
	switch kind {
	case "local":
		// A dedicated HDFS instance: cache blobs are infrastructure, not
		// query data, and live in their own namespace.
		fs := hdfs.New(256<<20, 3, []string{"cache0", "cache1", "cache2"})
		return store.NewLocal(fs, "/store"), nil
	case "object":
		return store.NewObject(), nil
	default:
		return nil, fmt.Errorf("unknown -store backend %q (want local or object)", kind)
	}
}

// parseQuotas decodes "alice=30,bob=5" into per-tenant modeled-second
// budgets.
func parseQuotas(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -quotas entry %q (want name=seconds)", part)
		}
		secs, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -quotas entry %q: %w", part, err)
		}
		out[name] = secs
	}
	return out, nil
}

// runServeMode is the -serve entrypoint: host the resident query service
// until SIGTERM, then drain the queue and exit.
func runServeMode(cfg serveConfig) {
	st, err := newStore(cfg.storeKind)
	if err != nil {
		fatal(err)
	}
	quotas, err := parseQuotas(cfg.quotas)
	if err != nil {
		fatal(err)
	}
	svc := queryd.New(queryd.Config{
		Store:               st,
		Obs:                 obs.New(),
		QueueDepth:          cfg.queueDepth,
		Workers:             cfg.workers,
		DefaultQuotaSeconds: cfg.quota,
		Quotas:              quotas,
	})
	srv, err := queryd.NewServer(cfg.addr, svc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("query service on http://%s (store %s)\n", srv.Addr(), cfg.storeKind)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	fmt.Fprintln(os.Stderr, "scijob serve: SIGTERM: draining queue and shutting down")
	srv.Close()
}

// runSubmitMode posts one query spec to a resident service and prints its
// response — cache-hit status, output digest, and the quota charge.
func runSubmitMode(addr string, spec queryd.QuerySpec) {
	body, err := json.Marshal(spec)
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(fmt.Errorf("submitting to %s: %w", addr, err))
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(fmt.Errorf("reading response: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			if eb.Kind != "" {
				fatal(fmt.Errorf("rejected (%s): %s", eb.Kind, eb.Error))
			}
			fatal(fmt.Errorf("rejected: %s", eb.Error))
		}
		fatal(fmt.Errorf("service returned %s: %s", resp.Status, data))
	}
	var r queryd.Response
	if err := json.Unmarshal(data, &r); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	phase := "map phase executed"
	if r.CacheHit {
		phase = "map phase skipped (segment cache hit)"
	}
	fmt.Printf("query accepted for tenant %s: %s\n", r.Tenant, phase)
	fmt.Printf("  output sha256:                 %s\n", r.OutputSHA)
	fmt.Printf("  predicted cost:                %.2fs modeled\n", r.PredictedSeconds)
	fmt.Printf("  charged cost:                  %.2fs modeled\n", r.ChargedSeconds)
	if r.Report != nil {
		fmt.Printf("  modeled runtime: map %.1fs + reduce %.1fs = %.1fs\n",
			r.Report.Estimate.MapSeconds, r.Report.Estimate.ReduceSeconds, r.Report.Estimate.Total())
	}
}

// runScrape GETs a URL and streams the body to stdout — enough HTTP client
// for smoke scripts to read /metrics without assuming curl exists.
func runScrape(url string) {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("GET %s: %s", url, resp.Status))
	}
}
