// Command scijob runs the paper's sliding-window query end-to-end on the
// in-process cluster under a chosen intermediate-data strategy and prints
// the Hadoop-style counters plus the modeled runtime. Examples:
//
//	scijob -side 256 -strategy baseline
//	scijob -side 256 -strategy transform -codec zlib
//	scijob -side 256 -strategy aggregation -curve zorder -verify
//	scijob -side 128 -faults "seed=7;map:1:error@0;segment:2.0:corrupt@0" -retries 3 -verify
//	scijob -side 128 -shuffle net -faults "seed=7;net:*:cut@0;node:0:down=50ms" -retries 5 -backoff 10ms -verify
//	scijob -side 256 -strategy transform -debug-addr 127.0.0.1:6060 -trace-out trace.json
//
// Cluster mode runs the same job across real processes — a coordinator
// daemon grants task leases over TCP and journals every state transition,
// while workers execute attempts — so kill -9 recovery is exercised for
// real, the coordinator included:
//
//	scijob -cluster 3 -side 64 -verify
//	scijob -cluster 3 -side 64 -faults "seed=1;proc:0.0:kill@0;proc:coord.0:kill@5" -retries 4 -verify
//	scijob -coordinator 127.0.0.1:7070 -journal coord.journal -side 128 &
//	scijob -worker 127.0.0.1:7070 &            (on each node)
//	scijob -driver 127.0.0.1:7070 -side 128 -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/clusterd"
	"scikey/internal/core"
	"scikey/internal/experiments"
	"scikey/internal/faults"
	"scikey/internal/mapreduce"
	"scikey/internal/obs"
	"scikey/internal/queryd"
	"scikey/internal/scihadoop"
	"scikey/internal/workload"
)

func main() {
	side := flag.Int("side", 128, "grid side length (side x side int32 cells)")
	stratName := flag.String("strategy", "baseline", "baseline | transform | aggregation | boxes")
	codecName := flag.String("codec", "zlib", "inner codec for -strategy transform; a block+ prefix (e.g. block+zlib) runs the stack through the parallel block pipeline")
	codecWorkers := flag.Int("codec-workers", 0, "parallel block codec width for block+ codecs: 0 = GOMAXPROCS, 1 = sequential reference path, n = n workers")
	curve := flag.String("curve", "zorder", "curve for -strategy aggregation: zorder | hilbert | rowmajor")
	op := flag.String("op", "median", "window operator: median | max")
	combine := flag.Bool("combine", false, "in-node combining: pool committed map outputs per node group and fold duplicate keys with the operator's value monoid before the shuffle; requires -op max (median is holistic — no monoid exists)")
	combineNodes := flag.Int("combine-nodes", 0, "node-group count for -combine (0 = one group per shuffle node when networked, else one; cluster mode defaults to the worker count, one combine buffer per worker process)")
	radius := flag.Int("radius", 1, "window radius (1 = 3x3)")
	splits := flag.Int("splits", 10, "map tasks")
	reducers := flag.Int("reducers", 5, "reduce tasks")
	flush := flag.Int("flush", 0, "aggregation flush threshold in cells (0 = default)")
	verify := flag.Bool("verify", false, "check results against the reference implementation")
	faultSpec := flag.String("faults", "", `deterministic fault schedule, e.g. "seed=7;map:1:error@0;proc:0.0:kill@0"`)
	retries := flag.Int("retries", 1, "max attempts per task (1 = fail fast)")
	backoff := flag.Duration("backoff", 0, "base retry backoff as a duration, e.g. 10ms; doubles per failure with seeded jitter (0 = retry immediately)")
	speculate := flag.Duration("speculate", 0, "straggler threshold for speculative re-execution as a duration, e.g. 500ms (0 = off)")
	shuffle := flag.String("shuffle", "mem", "shuffle transport: mem | net (in-process pipes) | tcp (loopback sockets)")
	nodes := flag.Int("nodes", 0, "simulated shuffle-server count for -shuffle net|tcp (0 = default 3)")
	fetchAttempts := flag.Int("fetch-attempts", 0, "per-segment fetch attempts before the map output counts as lost (0 = default 4)")
	fetchTimeout := flag.Duration("fetch-timeout", 0, "per-attempt fetch deadline as a duration, e.g. 500ms (0 = default 2s)")
	timeout := flag.Duration("timeout", 0, "whole-job wall-clock deadline as a duration, e.g. 30s (0 = none)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace and /debug/pprof on this address, e.g. 127.0.0.1:6060; stays up after the job until interrupted (empty = off)")
	traceOut := flag.String("trace-out", "", "write the job's Chrome trace_event JSON to this file (empty = off)")
	metricsOut := flag.String("metrics-out", "", "write the job's metrics in Prometheus text format to this file (empty = off)")
	serveAddr := flag.String("serve", "", "resident query service: listen for /query, /metrics, /healthz on this address, e.g. 127.0.0.1:8080 (host:0 picks a port), and serve until SIGTERM (empty = off)")
	submitAddr := flag.String("submit", "", "submit this invocation's query flags to the resident service at this address and print its response (empty = off)")
	scrapeURL := flag.String("scrape", "", "GET this URL (e.g. a -serve /metrics endpoint) and print the body — a curl stand-in for scripts (empty = off)")
	tenant := flag.String("tenant", "", "tenant name for -submit quota accounting (empty = the default tenant)")
	storeKind := flag.String("store", "local", "segment-cache backend for -serve: local (HDFS-backed files) | object (S3-style chunked objects with CRC framing)")
	queueDepth := flag.Int("queue-depth", 0, "bound on queued-but-not-executing queries for -serve (0 = default 16)")
	serveWorkers := flag.Int("serve-workers", 0, "concurrent query executors for -serve (0 = default 2)")
	quota := flag.Float64("quota", 0, "default per-tenant quota in modeled seconds for -serve (0 = unlimited)")
	quotas := flag.String("quotas", "", `per-tenant quota overrides for -serve, e.g. "alice=30,bob=5" in modeled seconds (empty = none)`)
	coordAddr := flag.String("coordinator", "", "cluster coordinator daemon: listen for workers and drivers on this address, e.g. 127.0.0.1:7070, and serve until SIGTERM (empty = off)")
	workerAddr := flag.String("worker", "", "cluster worker mode: connect to the coordinator at this address and execute granted task attempts (empty = off)")
	driverAddr := flag.String("driver", "", "cluster driver mode: run the job's scheduler against the coordinator daemon at this address (empty = off)")
	journalPath := flag.String("journal", "", "coordinator journal file for crash-restart recovery; with -cluster, empty means a temp file (with -coordinator, empty disables the journal)")
	clusterN := flag.Int("cluster", 0, "local cluster mode: start a coordinator plus N real worker subprocesses and run the job across them (0 = off)")
	heartbeat := flag.Duration("heartbeat", 0, "cluster worker heartbeat interval (0 = default 100ms)")
	leaseTTL := flag.Duration("lease-ttl", 0, "cluster lease time-to-live without a renewing heartbeat (0 = default 5x heartbeat)")
	par := flag.Int("par", 0, "concurrent task attempts (0 = sequential; cluster modes default to 2x worker count)")
	flag.Parse()

	// Validate every flag before any job machinery is touched, so a typo'd
	// transport or malformed fault schedule fails in milliseconds with a
	// clear message instead of surfacing mid-job. The query-shaping flags
	// all validate through queryd.QuerySpec.Validate — the same check every
	// other execution path (resident service, cluster worker rebuilding a
	// wire spec) applies, so a bad combination rejects with identical error
	// text no matter how the query arrives.
	spec := queryd.QuerySpec{
		Side:         *side,
		Strategy:     *stratName,
		Codec:        *codecName,
		CodecWorkers: *codecWorkers,
		Curve:        *curve,
		Flush:        *flush,
		Op:           *op,
		Combine:      *combine,
		CombineNodes: *combineNodes,
		Radius:       *radius,
		Splits:       *splits,
		Reducers:     *reducers,
		Faults:       *faultSpec,
		Tenant:       *tenant,
	}
	strat, err := parseStrategy(*stratName, *codecName, *curve, *flush)
	if err != nil {
		fatal(err)
	}
	if err := validateCodecWorkers(*codecWorkers, *stratName, *codecName); err != nil {
		fatal(err)
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}
	switch *shuffle {
	case mapreduce.ShuffleMem, mapreduce.ShuffleNet, mapreduce.ShuffleTCP:
	default:
		fatal(fmt.Errorf("unknown -shuffle transport %q (want mem, net, or tcp)", *shuffle))
	}
	var inj *faults.Injector
	if *faultSpec != "" {
		inj, err = faults.NewFromSpec(*faultSpec)
		if err != nil {
			fatal(fmt.Errorf("invalid -faults schedule: %w", err))
		}
	}
	modes := 0
	for _, on := range []bool{*coordAddr != "", *workerAddr != "", *driverAddr != "", *clusterN != 0,
		*serveAddr != "", *submitAddr != "", *scrapeURL != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatal(fmt.Errorf("-coordinator, -worker, -driver, -cluster, -serve, -submit, and -scrape are mutually exclusive"))
	}
	if *clusterN < 0 {
		fatal(fmt.Errorf("-cluster wants a positive worker count, got %d", *clusterN))
	}
	if *journalPath != "" && *coordAddr == "" && *clusterN == 0 {
		fatal(fmt.Errorf("-journal belongs to the coordinator; use it with -coordinator or -cluster"))
	}
	clusterMode := *driverAddr != "" || *clusterN > 0
	if *combine && *combineNodes == 0 && *clusterN > 0 {
		// One combine buffer per worker process: each worker's map attempts
		// pool in its own node group, the cluster analog of a per-node
		// buffer shared by all of a node's mappers.
		*combineNodes = *clusterN
	}
	if (clusterMode || *coordAddr != "" || *workerAddr != "") && *shuffle != mapreduce.ShuffleMem {
		fatal(fmt.Errorf("cluster modes use the in-memory shuffle; -shuffle %s runs single-process only", *shuffle))
	}

	if *scrapeURL != "" {
		runScrape(*scrapeURL)
		return
	}
	if *serveAddr != "" {
		runServeMode(serveConfig{
			addr:       *serveAddr,
			storeKind:  *storeKind,
			queueDepth: *queueDepth,
			workers:    *serveWorkers,
			quota:      *quota,
			quotas:     *quotas,
		})
		return
	}
	if *submitAddr != "" {
		runSubmitMode(*submitAddr, spec)
		return
	}
	if *workerAddr != "" {
		runWorkerMode(*workerAddr)
		return
	}
	if *coordAddr != "" {
		runCoordinatorMode(coordinatorConfig{
			addr:      *coordAddr,
			journal:   *journalPath,
			spec:      spec,
			heartbeat: *heartbeat,
			leaseTTL:  *leaseTTL,
			faults:    inj,
			debugAddr: *debugAddr,
		})
		return
	}

	fs, qcfg, err := experiments.MedianSetup(*side)
	if err != nil {
		fatal(err)
	}
	qcfg.NumSplits = *splits
	qcfg.NumReducers = *reducers
	qcfg.Radius = *radius
	if *op == "max" {
		qcfg.Op = scihadoop.Max
	}
	qcfg.Combine = *combine
	qcfg.CombineNodes = *combineNodes
	qcfg.OutputPath = "/out/scijob"
	qcfg.CodecWorkers = *codecWorkers
	qcfg.Faults = inj
	qcfg.Retry = mapreducePolicy(*retries, *backoff, *speculate)
	qcfg.Timeout = *timeout
	qcfg.Parallelism = *par
	var ob *obs.Observer
	if *debugAddr != "" || *traceOut != "" || *metricsOut != "" {
		ob = obs.New()
		qcfg.Obs = ob
	}
	var dbg *obs.Server
	if *debugAddr != "" {
		var err error
		dbg, err = obs.NewServer(*debugAddr, ob)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug server on http://%s (metrics, trace, pprof)\n", dbg.Addr())
	}
	if *shuffle != mapreduce.ShuffleMem {
		qcfg.Shuffle = &mapreduce.ShuffleConfig{
			Mode:          *shuffle,
			Nodes:         *nodes,
			FetchAttempts: *fetchAttempts,
			FetchTimeout:  *fetchTimeout,
		}
	}

	workers := 0
	if clusterMode {
		// The coordinator daemon owns the proc fault site (it signals real
		// worker processes, or itself for proc:coord rules); engine-level
		// sites travel to workers inside the spec. The driver's own scheduler
		// runs no attempts, so it gets no injector.
		var cl *clusterd.Client
		if *clusterN > 0 {
			addr, err := pickLoopbackAddr()
			if err != nil {
				fatal(err)
			}
			journal := *journalPath
			if journal == "" {
				dir, err := os.MkdirTemp("", "scijob-coord-")
				if err != nil {
					fatal(err)
				}
				defer os.RemoveAll(dir)
				journal = filepath.Join(dir, "coord.journal")
			}
			// Forward every spec-shaping flag so the daemon subprocess builds
			// the identical job; respawned incarnations recover from the
			// shared journal on the same fixed address.
			coordArgs := []string{
				"-coordinator", addr, "-journal", journal,
				"-side", strconv.Itoa(*side), "-strategy", *stratName,
				"-codec", *codecName, "-curve", *curve,
				"-flush", strconv.Itoa(*flush), "-op", *op,
				"-radius", strconv.Itoa(*radius), "-splits", strconv.Itoa(*splits),
				"-reducers", strconv.Itoa(*reducers),
			}
			if flagWasSet("codec-workers") {
				coordArgs = append(coordArgs, "-codec-workers", strconv.Itoa(*codecWorkers))
			}
			if *combine {
				coordArgs = append(coordArgs, "-combine", "-combine-nodes", strconv.Itoa(*combineNodes))
			}
			if *faultSpec != "" {
				coordArgs = append(coordArgs, "-faults", *faultSpec)
			}
			if *heartbeat != 0 {
				coordArgs = append(coordArgs, "-heartbeat", heartbeat.String())
			}
			if *leaseTTL != 0 {
				coordArgs = append(coordArgs, "-lease-ttl", leaseTTL.String())
			}
			sup := startCoordProc(coordArgs)
			defer sup.shutdown()
			fmt.Printf("coordinator subprocess on %s (journal %s)\n", addr, journal)
			workers = *clusterN
			pool := startLocalWorkers(addr, *clusterN)
			defer pool.shutdown()
			fmt.Printf("spawned %d worker processes\n", *clusterN)
			cl, err = dialCoordinator(addr, 10*time.Second)
			if err != nil {
				fatal(fmt.Errorf("dialing coordinator subprocess: %w", err))
			}
		} else {
			var err error
			cl, err = dialCoordinator(*driverAddr, 0)
			if err != nil {
				fatal(fmt.Errorf("dialing coordinator at %s: %w", *driverAddr, err))
			}
			workers = 4 // external workers; a guess that only sizes parallelism
		}
		defer cl.Close()
		qcfg.Remote = cl
		qcfg.Faults = nil
		if qcfg.Parallelism == 0 {
			qcfg.Parallelism = 2 * workers
		}
	}

	rep, res, err := core.RunQueryResult(fs, qcfg, strat, cluster.Paper(), *verify)
	// Flush observability before acting on the outcome: a failed job's trace
	// and metrics are exactly what a post-mortem needs, so -trace-out and
	// -metrics-out land on every exit path, not just success.
	flushObs(ob, *traceOut, *metricsOut)
	if err != nil {
		fatal(err)
	}
	sha, err := queryd.OutputSHA(fs, res)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("job: %s %s on %dx%d grid, %d splits, %d reducers\n",
		qcfg.Op, rep.Strategy, *side, *side, *splits, *reducers)
	fmt.Printf("  map output records:            %s\n", experiments.FormatBytes(rep.MapOutputRecords))
	fmt.Printf("  map output key bytes:          %s\n", experiments.FormatBytes(rep.KeyBytes))
	fmt.Printf("  map output value bytes:        %s\n", experiments.FormatBytes(rep.ValueBytes))
	fmt.Printf("  map output materialized bytes: %s\n", experiments.FormatBytes(rep.MaterializedBytes))
	fmt.Printf("  reduce shuffle bytes:          %s\n", experiments.FormatBytes(rep.ShuffleBytes))
	if *combine {
		fmt.Printf("  in-node combining:             %s records folded, %s emitted, %s saved\n",
			experiments.FormatBytes(rep.CombineMergedRecords),
			experiments.FormatBytes(rep.CombineEmittedRecords),
			experiments.FormatBytes(rep.CombineSavedBytes))
	}
	fmt.Printf("  partition key splits:          %s\n", experiments.FormatBytes(rep.PartitionSplits))
	fmt.Printf("  overlap key splits:            %s\n", experiments.FormatBytes(rep.OverlapSplits))
	fmt.Printf("  output sha256:                 %s\n", sha)
	fmt.Printf("  modeled runtime (5-node cluster): map %.1fs + reduce %.1fs = %.1fs\n",
		rep.Estimate.MapSeconds, rep.Estimate.ReduceSeconds, rep.Estimate.Total())
	if rep.ShuffleFetches > 0 {
		fmt.Printf("  shuffle transport: %d fetches, %d retries, %d resumed, %s wasted, %d breaker trips\n",
			rep.ShuffleFetches, rep.ShuffleFetchRetries, rep.ShuffleFetchesResumed,
			experiments.FormatBytes(rep.ShuffleFetchWastedBytes), rep.ShuffleBreakerTrips)
	}
	if rep.FailedAttempts > 0 || rep.TaskRetries > 0 {
		fmt.Printf("  recovery: %d failed attempts, %d retries, %d corrupt segments, %d maps recovered\n",
			rep.FailedAttempts, rep.TaskRetries, rep.CorruptSegments, rep.RecoveredMaps)
		fmt.Printf("  wasted slot time: map %.1fs + reduce %.1fs\n",
			rep.Estimate.WastedMapSeconds, rep.Estimate.WastedReduceSeconds)
	}

	if *verify {
		field := &workload.Field{Extent: qcfg.DS.Extent, Name: qcfg.DS.Var.Name}
		want := scihadoop.Reference(field, qcfg.DS.Extent, qcfg.Radius, qcfg.Op)
		bad := 0
		for k, w := range want {
			if rep.Output[k] != w {
				bad++
			}
		}
		if bad > 0 || len(rep.Output) != len(want) {
			fatal(fmt.Errorf("verification FAILED: %d/%d cells wrong, %d/%d cells present",
				bad, len(want), len(rep.Output), len(want)))
		}
		fmt.Printf("  verification: OK (%d cells match the reference)\n", len(want))
	}

	if dbg != nil {
		fmt.Printf("job done; debug server still on http://%s — ctrl-c to exit\n", dbg.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
		dbg.Close()
	}
}

// parseStrategy maps the flag spelling of a strategy to core's terms via
// the shared queryd parser — the worker process and the resident service
// re-parse the same spelling out of the wire spec, so every front end
// builds identical jobs.
func parseStrategy(name, codecName, curve string, flush int) (core.Strategy, error) {
	return queryd.ParseStrategy(name, codecName, curve, flush)
}

// validateCodecWorkers rejects a -codec-workers the job would ignore or
// misread, before any machinery starts. Negative widths are always wrong;
// an explicitly set width (flag.Visit distinguishes "-codec-workers 0" from
// an untouched default) demands a block+ transform codec to act on.
func validateCodecWorkers(n int, stratName, codecName string) error {
	if n < 0 {
		return fmt.Errorf("-codec-workers must be >= 0, got %d", n)
	}
	if !flagWasSet("codec-workers") {
		return nil
	}
	if stratName != "transform" || !strings.HasPrefix(strings.ToLower(codecName), "block+") {
		return fmt.Errorf("-codec-workers only applies to -strategy transform with a block+ codec (got -strategy %s -codec %s)", stratName, codecName)
	}
	return nil
}

// flagWasSet reports whether the named flag appeared on the command line,
// distinguishing an explicit zero from an untouched default.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// flushObs writes the requested trace and metrics files. It runs on success
// and failure alike, so a failed job still leaves its post-mortem evidence.
func flushObs(ob *obs.Observer, traceOut, metricsOut string) {
	if traceOut != "" {
		if err := writeFileWith(traceOut, ob.T().WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or Perfetto)\n", traceOut)
	}
	if metricsOut != "" {
		if err := writeFileWith(metricsOut, ob.R().WritePrometheus); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", metricsOut)
	}
}

// writeFileWith streams a writer-taking renderer into path atomically: the
// bytes land in a temp file in the same directory and rename over the
// target, so no reader — and no interrupted run — ever observes a
// truncated render.
func writeFileWith(path string, render func(w io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}

func mapreducePolicy(retries int, backoff, speculate time.Duration) mapreduce.RetryPolicy {
	return mapreduce.RetryPolicy{
		MaxAttempts:      retries,
		Backoff:          backoff,
		Speculative:      speculate > 0,
		SpeculativeAfter: speculate,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scijob:", err)
	os.Exit(1)
}
