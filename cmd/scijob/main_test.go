package main

import (
	"testing"

	"scikey/internal/core"
	"scikey/internal/queryd"
)

// goodSpec is a spec every execution path accepts; each parity case breaks
// exactly one field.
func goodSpec() queryd.QuerySpec {
	return queryd.QuerySpec{
		Side:     24,
		Strategy: "baseline",
		Op:       "median",
		Radius:   1,
		Splits:   4,
		Reducers: 2,
	}
}

// TestValidationParity: the early flag validation (queryd.QuerySpec.Validate,
// what the CLI and the resident service run before any machinery) and the
// deep path (core.BuildJob, what a cluster worker runs when it rebuilds a
// wire spec) must reject the same bad spec with the same error text — no
// flag combination may pass one gate and fail the other differently.
func TestValidationParity(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*queryd.QuerySpec)
	}{
		{"combine_nodes_without_combine", func(s *queryd.QuerySpec) { s.CombineNodes = 3 }},
		{"codec_workers_without_block_codec", func(s *queryd.QuerySpec) { s.CodecWorkers = 2 }},
		{"negative_splits", func(s *queryd.QuerySpec) { s.Splits = -1 }},
		{"negative_reducers", func(s *queryd.QuerySpec) { s.Reducers = -2 }},
		{"negative_radius", func(s *queryd.QuerySpec) { s.Radius = -1 }},
		{"combine_holistic_op", func(s *queryd.QuerySpec) { s.Combine = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := goodSpec()
			tc.mut(&spec)

			early := spec.Validate()
			if early == nil {
				t.Fatal("early validation accepted the bad spec")
			}

			fs, qcfg, strat, err := spec.Setup()
			if err != nil {
				t.Fatalf("Setup rejected the spec before BuildJob could: %v", err)
			}
			_, late := core.BuildJob(fs, qcfg, strat)
			if late == nil {
				t.Fatal("BuildJob accepted the bad spec the early path rejected")
			}
			if early.Error() != late.Error() {
				t.Fatalf("validation paths drifted:\n  early: %s\n  late:  %s", early, late)
			}
		})
	}
}

// TestValidSpecPassesBothPaths pins the inverse: a good spec clears early
// validation and builds a job.
func TestValidSpecPassesBothPaths(t *testing.T) {
	spec := goodSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("early validation rejected a good spec: %v", err)
	}
	fs, qcfg, strat, err := spec.Setup()
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	if _, err := core.BuildJob(fs, qcfg, strat); err != nil {
		t.Fatalf("BuildJob rejected a good spec: %v", err)
	}
}
