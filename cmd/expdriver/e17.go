// E17 (extension): resident query service cache behavior — a repeated-query
// mix against each Store backend, verifying that every repeat skips the map
// phase via the shared segment cache while staying byte-identical to an
// independent one-shot run. Lives in the driver (not internal/experiments)
// because queryd already imports experiments for dataset setup.
package main

import (
	"fmt"

	"scikey/internal/cluster"
	"scikey/internal/core"
	"scikey/internal/hdfs"
	"scikey/internal/obs"
	"scikey/internal/queryd"
	"scikey/internal/store"
)

// e17Row is one backend's measured service behavior.
type e17Row struct {
	Backend    string
	Submitted  int
	ColdRuns   int
	CacheHits  int64
	HitRate    float64
	Identical  bool // every repeat's sha matched its cold run AND the one-shot baseline
	MapSkipped bool // warm submissions scheduled zero new map attempts
}

// e17Specs is the repeated-query mix: three distinct queries, then a rerun
// pass over all of them. 3 cold + 5 warm = 62.5% hit rate by construction.
func e17Specs(side int) []queryd.QuerySpec {
	base := queryd.QuerySpec{Side: side, Op: "median", Radius: 1, Splits: 4, Reducers: 2}
	a := base
	a.Strategy = "baseline"
	b := base
	b.Strategy = "transform"
	b.Codec = "block+zlib"
	c := base
	c.Strategy = "aggregation"
	c.Curve = "zorder"
	return []queryd.QuerySpec{a, b, c, b, a, c, b, a}
}

// e17OneShot runs a spec with no service and no cache — the independent
// byte-identity baseline.
func e17OneShot(spec queryd.QuerySpec) (string, error) {
	fs, qcfg, strat, err := spec.Setup()
	if err != nil {
		return "", err
	}
	_, res, err := core.RunQueryResult(fs, qcfg, strat, cluster.Paper(), false)
	if err != nil {
		return "", err
	}
	return queryd.OutputSHA(fs, res)
}

// runE17 exercises the service's cache on both Store backends.
func runE17(side int) ([]e17Row, error) {
	specs := e17Specs(side)
	// One-shot baselines, one per distinct cache key.
	baseline := make(map[string]string)
	for _, spec := range specs {
		key := spec.CacheKey()
		if _, ok := baseline[key]; ok {
			continue
		}
		sha, err := e17OneShot(spec)
		if err != nil {
			return nil, err
		}
		baseline[key] = sha
	}

	backends := []struct {
		name string
		mk   func() store.Store
	}{
		{"local", func() store.Store {
			return store.NewLocal(hdfs.New(256<<20, 3, []string{"c0", "c1", "c2"}), "/store")
		}},
		{"object", func() store.Store { return store.NewObject() }},
	}

	var rows []e17Row
	for _, be := range backends {
		ob := obs.New()
		svc := queryd.New(queryd.Config{Store: be.mk(), Obs: ob})
		row := e17Row{Backend: be.name, Submitted: len(specs), Identical: true, MapSkipped: true}
		mapAttempts := func() int64 {
			return ob.R().Histogram("scikey_attempt_seconds",
				"Duration of task attempts by phase", "seconds", nil, obs.L("phase", "map")).Count()
		}
		for _, spec := range specs {
			before := mapAttempts()
			resp, err := svc.Submit(spec)
			if err != nil {
				svc.Close()
				return nil, fmt.Errorf("%s submit: %w", be.name, err)
			}
			if resp.OutputSHA != baseline[spec.CacheKey()] {
				row.Identical = false
			}
			if resp.CacheHit {
				if mapAttempts() != before {
					row.MapSkipped = false
				}
			} else {
				row.ColdRuns++
			}
		}
		row.CacheHits = ob.R().Counter("scikey_cache_hit_total", "Map-output cache hits", "").Value()
		row.HitRate = float64(row.CacheHits) / float64(len(specs)) * 100
		svc.Close()
		rows = append(rows, row)
	}
	return rows, nil
}
