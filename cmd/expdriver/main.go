// Command expdriver reruns the paper's experiments and prints
// paper-vs-measured tables. Select experiments with -run (comma-separated
// ids: e1-e9 for the paper's tables and figures, e10-e13 and a5-a8 for the
// extension experiments, a1-a4 for the ablations, or "all") and control
// the problem size with -scale:
//
//	expdriver -run all -scale full     # the paper's sizes (slow)
//	expdriver -run e3,e8               # quick subset at default scale
//	expdriver -run e13 -trace-out chaos.json   # trace the chaos soak
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"scikey/internal/core"
	"scikey/internal/experiments"
	"scikey/internal/obs"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids or 'all'")
	scale := flag.String("scale", "quick", "quick | full (full uses the paper's input sizes)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of the instrumented experiments (e4, e10, e13) to this file (empty = off)")
	codecWorkers := flag.Int("codec-workers", 0, "widest block-codec width for e4's parallel-pipeline sweep (0 = GOMAXPROCS)")
	flag.Parse()

	if *codecWorkers < 0 {
		fmt.Fprintf(os.Stderr, "expdriver: -codec-workers must be >= 0, got %d\n", *codecWorkers)
		os.Exit(1)
	}

	// A nil observer keeps every experiment on its untraced path; the
	// instrumented ones (e4, e10, e13) accept it either way.
	var ob *obs.Observer
	if *traceOut != "" {
		ob = obs.New()
	}

	full := *scale == "full"
	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	sel := func(id string) bool { return all || want[id] }

	exitErr := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "expdriver: %s: %v\n", id, err)
		os.Exit(1)
	}

	if sel("e1") {
		r := experiments.E1IntroOverhead()
		fmt.Println("== E1: introduction file-size arithmetic (Section I) ==")
		fmt.Printf("  cells=%s  data=%s bytes\n", experiments.FormatBytes(r.Cells), experiments.FormatBytes(r.DataBytes))
		fmt.Printf("  %-28s %15s %15s\n", "variable encoding", "file bytes", "paper")
		fmt.Printf("  %-28s %15s %15s\n", "4-byte index", experiments.FormatBytes(r.IndexFileBytes), "26,000,006")
		fmt.Printf("  %-28s %15s %15s\n", "Text \"windspeed1\"", experiments.FormatBytes(r.NameFileBytes), "33,000,006")
		fmt.Printf("  overhead: index %.0f%%, name %.0f%% (paper states 450%%/625%%; see EXPERIMENTS.md)\n", r.IndexOverheadPct, r.NameOverheadPct)
		fmt.Printf("  key/value ratio (name mode) = %.2f (paper: 6.75)\n\n", r.KeyValueRatio)
	}
	if sel("e2") {
		r := experiments.E2SequenceDetection()
		fmt.Println("== E2: Fig. 2 sequence detection ==")
		fmt.Printf("  detected stride=%d phase=%d delta=%#x run=%d (paper: s=47, phi=34, delta=0x0a)\n\n",
			r.Stride, r.Phase, r.Delta, r.Run)
	}
	if sel("e3") {
		n := 50
		if full {
			n = 100
		}
		rows, err := experiments.E3ByteLevelCompression(n)
		if err != nil {
			exitErr("e3", err)
		}
		fmt.Printf("== E3: Fig. 3 byte-level compression (%d^3 walk) ==\n", n)
		paper := map[string]string{
			"original": "12,000,000", "gzip": "1,630,000", "transform+gzip": "33,000",
			"bzip2": "512,000", "transform+bzip2": "~500",
		}
		fmt.Printf("  %-18s %14s %9s %16s\n", "method", "bytes", "seconds", "paper (n=100)")
		for _, r := range rows {
			fmt.Printf("  %-18s %14s %9.2f %16s\n", r.Method, experiments.FormatBytes(r.Bytes), r.Seconds, paper[r.Method])
		}
		fmt.Println()
	}
	if sel("e4") {
		ns := []int{20, 30, 40, 50}
		if full {
			ns = []int{20, 40, 60, 80, 100}
		}
		r := experiments.E4TransformTimeVsSize(ns, ob)
		fmt.Println("== E4: Fig. 4 transform time vs file size ==")
		for _, p := range r.Points {
			fmt.Printf("  %14s bytes  %8.3f s\n", experiments.FormatBytes(p.Bytes), p.Seconds)
		}
		fmt.Printf("  linear fit: %.1f MiB/s, R^2=%.4f (paper: linear)\n\n", r.MBPerSec, r.R2)

		n := ns[len(ns)-1]
		wide := *codecWorkers
		if wide == 0 {
			wide = runtime.GOMAXPROCS(0)
		}
		widths := []int{1}
		for _, w := range []int{2, wide} {
			if w > widths[len(widths)-1] {
				widths = append(widths, w)
			}
		}
		rows, err := experiments.E4ParallelPipeline(n, widths)
		if err != nil {
			exitErr("e4", err)
		}
		fmt.Printf("== E4b (extension): parallel block pipeline, transform inside block+ (%d^3 walk) ==\n", n)
		fmt.Printf("  %8s %12s %9s %10s %8s %8s %6s\n", "workers", "bytes", "seconds", "MiB/s", "blocks", "stalls", "ident")
		for _, row := range rows {
			fmt.Printf("  %8d %12s %9.3f %10.1f %8d %8d %6v\n", row.Workers,
				experiments.FormatBytes(row.Bytes), row.Seconds, row.MBPerSec,
				row.Blocks, row.EncodeStalls, row.Identical)
		}
		fmt.Println()
	}
	if sel("e5") {
		n := 50
		if full {
			n = 100
		}
		r, err := experiments.E5StrideStrategies(n)
		if err != nil {
			exitErr("e5", err)
		}
		fmt.Printf("== E5: stride strategies (%d^3 walk, bzip2 of residual) ==\n", n)
		fmt.Printf("  fixed stride 12:    %12s bytes (paper: 1,619 on its dataset)\n", experiments.FormatBytes(r.FixedStride12Bytes))
		fmt.Printf("  exhaustive (<100):  %12s bytes (paper:   701)\n", experiments.FormatBytes(r.ExhaustiveBytes))
		fmt.Printf("  adaptive:           %12s bytes (paper:   468)\n", experiments.FormatBytes(r.AdaptiveBytes))
		fmt.Printf("  brute-force slowdown: %.1fx @ max stride 100 (paper ~4x), %.1fx @ 1000 (paper ~17x)\n\n",
			r.Slowdown100, r.Slowdown1000)
	}
	if sel("e6") {
		side := 128
		if full {
			side = 512
		}
		r, err := experiments.E6TransformCodecOnMedian(side)
		if err != nil {
			exitErr("e6", err)
		}
		fmt.Printf("== E6: Section III-E sliding median with transform+zlib codec (%dx%d grid) ==\n", side, side)
		printComparison(r, "77.8%", "+106%")
	}
	if sel("e7") {
		r, err := experiments.E7AggregationDataSize()
		if err != nil {
			exitErr("e7", err)
		}
		fmt.Println("== E7: Fig. 8 key aggregation data-size decomposition (10^6-cell int grid) ==")
		for _, b := range []experiments.E7Bars{r.Original, r.Compressed} {
			fmt.Printf("  %-11s values=%12s  keys=%12s  file overhead=%12s  total=%12s (%s records)\n",
				b.Label, experiments.FormatBytes(b.ValueBytes), experiments.FormatBytes(b.KeyBytes),
				experiments.FormatBytes(b.FileOverhead), experiments.FormatBytes(b.Total()),
				experiments.FormatBytes(b.Records))
		}
		fmt.Printf("  reduction: %.1f%% (paper: up to 84.5%%, depending on data types)\n\n", r.ReductionPct)
	}
	if sel("e8") {
		side := 128
		if full {
			side = 512
		}
		r, err := experiments.E8AggregationOnMedian(side)
		if err != nil {
			exitErr("e8", err)
		}
		fmt.Printf("== E8: Section IV-D sliding median with key aggregation (%dx%d grid) ==\n", side, side)
		printComparison(r, "60.7%", "-28.5%")
	}
	if sel("e9") {
		r := experiments.E9Mechanics()
		fmt.Println("== E9: Figs. 5-7 mechanics ==")
		fmt.Printf("  Fig. 6 coalescing of {5,6,7,9,10,13}: %s\n", strings.Join(r.Fig6Ranges, " "))
		fmt.Printf("  Fig. 7 overlap split of [0,10) and [6,14): %s\n\n", strings.Join(r.Fig7Fragments, " "))
	}
	if sel("e10") {
		side := 96
		if full {
			side = 256
		}
		rows, err := experiments.E10AggregationGeometries(side, ob)
		if err != nil {
			exitErr("e10", err)
		}
		fmt.Printf("== E10 (extension): aggregation geometries on the sliding median (%dx%d) ==\n", side, side)
		fmt.Printf("  %-16s %12s %14s %16s %10s\n", "scheme", "agg pairs", "key bytes", "materialized B", "splits")
		for _, r := range rows {
			fmt.Printf("  %-16s %12s %14s %16s %10s\n", r.Scheme,
				experiments.FormatBytes(r.MapOutputRecords), experiments.FormatBytes(r.KeyBytes),
				experiments.FormatBytes(r.MaterializedBytes), experiments.FormatBytes(r.Splits))
		}
		fmt.Println()
	}
	if sel("e11") {
		n := 4096
		if full {
			n = 65536
		}
		rows, err := experiments.E11SparseKeys(n, 11)
		if err != nil {
			exitErr("e11", err)
		}
		fmt.Printf("== E11 (extension): sparse keys — Goldstein FOR pages vs the paper's schemes (%d clustered keys) ==\n", n)
		fmt.Printf("  %-18s %12s %12s\n", "scheme", "bytes", "agg pairs")
		for _, r := range rows {
			pairs := ""
			if r.Pairs > 0 {
				pairs = experiments.FormatBytes(r.Pairs)
			}
			fmt.Printf("  %-18s %12s %12s\n", r.Scheme, experiments.FormatBytes(r.Bytes), pairs)
		}
		fmt.Println()
	}
	if sel("e12") {
		side := 96
		if full {
			side = 256
		}
		r, err := experiments.E12FaultRecovery(side)
		if err != nil {
			exitErr("e12", err)
		}
		fmt.Printf("== E12 (extension): fault recovery on the sliding median (%dx%d, schedule %q) ==\n",
			side, side, experiments.E12Schedule)
		fmt.Printf("  outputs byte-identical to fault-free run: %v\n", r.OutputsIdentical)
		fmt.Printf("  payload counters identical:               %v\n", r.CountersIdentical)
		fmt.Printf("  failed attempts=%d retries=%d corrupt segments=%d maps recovered=%d\n",
			r.Faulty.FailedAttempts, r.Faulty.TaskRetries, r.Faulty.CorruptSegments, r.Faulty.RecoveredMaps)
		fmt.Printf("  wasted slot time: map %.2fs + reduce %.2fs; modeled runtime overhead %+.1f%%\n\n",
			r.Faulty.Estimate.WastedMapSeconds, r.Faulty.Estimate.WastedReduceSeconds, r.RuntimeOverheadPct)
	}
	if sel("e13") {
		side := 96
		if full {
			side = 256
		}
		r, err := experiments.E13ChaosSoak(side, ob)
		if err != nil {
			exitErr("e13", err)
		}
		fmt.Printf("== E13 (extension): networked-shuffle chaos soak on the sliding median (%dx%d) ==\n", side, side)
		fmt.Printf("  %-12s %9s %9s %9s %9s %10s %8s %6s\n",
			"schedule", "fetches", "retries", "resumed", "wasted B", "breaker", "re-maps", "ident")
		for _, run := range r.Runs {
			rep := run.Report
			fmt.Printf("  %-12s %9d %9d %9d %9s %10d %8d %6v\n",
				run.Name, rep.ShuffleFetches, rep.ShuffleFetchRetries, rep.ShuffleFetchesResumed,
				experiments.FormatBytes(rep.ShuffleFetchWastedBytes), rep.ShuffleBreakerTrips,
				rep.RecoveredMaps, run.OutputsIdentical)
		}
		fmt.Println()
	}
	if sel("e16") {
		side := 96
		if full {
			side = 256
		}
		r, err := experiments.E16InNodeCombining(side, ob)
		if err != nil {
			exitErr("e16", err)
		}
		fmt.Printf("== E16 (extension): in-node combining under the Monoid contract (%dx%d) ==\n", side, side)
		fmt.Printf("  median: combining refused at build time (holistic, no monoid):\n    %s\n", r.MedianRefusal)
		fmt.Printf("  %-12s %12s %12s %8s %10s %10s %6s\n",
			"workload", "shuffle off", "shuffle on", "reduct", "merged", "saved B", "ident")
		for _, row := range r.Rows {
			fmt.Printf("  %-12s %12s %12s %7.1f%% %10d %10s %6v\n",
				row.Workload, experiments.FormatBytes(row.ShuffleBytesOff),
				experiments.FormatBytes(row.ShuffleBytesOn), row.ReductionPct,
				row.MergedRecords, experiments.FormatBytes(row.SavedBytes), row.OutputsIdentical)
		}
		fmt.Println()
	}
	if sel("e17") {
		side := 48
		if full {
			side = 128
		}
		rows, err := runE17(side)
		if err != nil {
			exitErr("e17", err)
		}
		fmt.Printf("== E17 (extension): resident query service — segment-cache hit rate on a repeated-query mix (%dx%d) ==\n", side, side)
		fmt.Printf("  %-8s %10s %6s %6s %9s %7s %9s\n",
			"backend", "submitted", "cold", "hits", "hit rate", "ident", "map-skip")
		for _, r := range rows {
			fmt.Printf("  %-8s %10d %6d %6d %8.1f%% %7v %9v\n",
				r.Backend, r.Submitted, r.ColdRuns, r.CacheHits, r.HitRate, r.Identical, r.MapSkipped)
		}
		fmt.Println()
	}
	if sel("a5") {
		side := 96
		if full {
			side = 256
		}
		r, err := experiments.A5SplitInflation(side)
		if err != nil {
			exitErr("a5", err)
		}
		fmt.Printf("== A5 (extension): key-count inflation from splitting, recovery by re-aggregation (%dx%d) ==\n", side, side)
		fmt.Printf("  mapper aggregate pairs:        %s\n", experiments.FormatBytes(r.MapperPairs))
		fmt.Printf("  after partition splits:        %s\n", experiments.FormatBytes(r.AfterPartitionSplit))
		fmt.Printf("  after overlap splits:          %s\n", experiments.FormatBytes(r.AfterOverlapSplit))
		fmt.Printf("  reducer output pairs (plain):  %s\n", experiments.FormatBytes(r.OutputPairsPlain))
		fmt.Printf("  reducer output pairs (reagg):  %s\n\n", experiments.FormatBytes(r.OutputPairsReagg))
	}
	if sel("a1") {
		boxes := 100
		if full {
			boxes = 1000
		}
		fmt.Println("== A1: space-filling-curve comparison (random 2-D query boxes) ==")
		fmt.Printf("  %-10s %12s %14s\n", "curve", "mean runs", "ns/index")
		for _, row := range experiments.A1CurveComparison(8, boxes, 42) {
			fmt.Printf("  %-10s %12.1f %14.1f\n", row.Curve, row.MeanRuns, row.NsPerIndex)
		}
		fmt.Println()
	}
	if sel("a2") {
		side := 256
		if full {
			side = 1024
		}
		fmt.Printf("== A2: aggregation flush threshold (%dx%d row-major walk) ==\n", side, side)
		fmt.Printf("  %12s %12s %16s\n", "flush cells", "agg pairs", "key bytes/cell")
		for _, row := range experiments.A2FlushThreshold(side, []int{256, 1024, 8192, 1 << 16, 1 << 20}) {
			fmt.Printf("  %12d %12d %16.4f\n", row.FlushCells, row.PairsOut, row.BytesPerCell)
		}
		fmt.Println()
	}
	if sel("a3") {
		fmt.Println("== A3: alignment expansion vs key overlap (Section IV-C) ==")
		fmt.Printf("  %7s %11s %12s %10s\n", "align", "fragments", "equal pairs", "pad cells")
		for _, row := range experiments.A3Alignment([]uint64{1, 2, 4, 8, 16}) {
			fmt.Printf("  %7d %11d %12d %10d\n", row.Align, row.Fragments, row.EqualPairs, row.PadCells)
		}
		fmt.Println()
	}
	if sel("a6") {
		side := 96
		if full {
			side = 256
		}
		rows, err := experiments.A6LocalityReplication(side, []int{1, 2, 3, 5})
		if err != nil {
			exitErr("a6", err)
		}
		fmt.Printf("== A6 (extension): map-input locality vs HDFS replication (%dx%d, 5 nodes) ==\n", side, side)
		fmt.Printf("  %12s %12s %14s\n", "replication", "local maps", "map est (s)")
		for _, r := range rows {
			fmt.Printf("  %12d %11.0f%% %14.2f\n", r.Replication, r.LocalPct, r.MapSeconds)
		}
		fmt.Println()
	}
	if sel("a8") {
		side := 96
		if full {
			side = 192
		}
		rows, err := experiments.A8SortPhases(side)
		if err != nil {
			exitErr("a8", err)
		}
		fmt.Printf("== A8 (extension): on-disk sort-phase amplification (%dx%d, small spill buffer, merge factor 4) ==\n", side, side)
		fmt.Printf("  %-14s %16s %16s %10s\n", "scheme", "materialized B", "total disk B", "amplif.")
		for _, r := range rows {
			fmt.Printf("  %-14s %16s %16s %9.1fx\n", r.Scheme,
				experiments.FormatBytes(r.MaterializedBytes), experiments.FormatBytes(r.DiskBytes), r.Amplification)
		}
		fmt.Println()
	}
	if sel("a7") {
		rows, err := experiments.A7SettlingWindow([]int{2, 4, 8, 16, 32})
		if err != nil {
			exitErr("a7", err)
		}
		fmt.Println("== A7 (extension): settling window ('2s requirement') vs re-adaptation ==")
		fmt.Printf("  %8s %16s %16s\n", "factor", "residual zeros", "bzip2 bytes")
		for _, r := range rows {
			note := ""
			if r.MinActiveFactor == 2 {
				note = "  (paper)"
			}
			fmt.Printf("  %8d %15.1f%% %16s%s\n", r.MinActiveFactor, r.ResidualZeroPct,
				experiments.FormatBytes(r.CompressedBytes), note)
		}
		fmt.Println()
	}
	if sel("a4") {
		n := 40
		if full {
			n = 100
		}
		rows, err := experiments.A4DetectorParams(n)
		if err != nil {
			exitErr("a4", err)
		}
		fmt.Printf("== A4: detector parameter sensitivity (%d^3 walk) ==\n", n)
		fmt.Printf("  %-20s %16s %16s\n", "setting", "residual zeros", "bzip2 bytes")
		for _, row := range rows {
			fmt.Printf("  %-20s %15.1f%% %16s\n", row.Label, row.ResidualZeroPct, experiments.FormatBytes(row.CompressedBytes))
		}
		fmt.Println()
	}

	if *traceOut != "" {
		if err := writeFileWith(*traceOut, ob.T().WriteChromeTrace); err != nil {
			exitErr("trace-out", err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or Perfetto)\n", *traceOut)
	}
}

// writeFileWith streams a writer-taking renderer into a freshly created file.
func writeFileWith(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printComparison(r experiments.StrategyComparison, paperReduction, paperRuntime string) {
	fmt.Printf("  %-18s %18s %14s %12s %12s\n", "strategy", "materialized B", "records", "map est (s)", "total est (s)")
	for _, rep := range []*core.Report{r.Baseline, r.Variant} {
		fmt.Printf("  %-18s %18s %14s %12.1f %12.1f\n", rep.Strategy,
			experiments.FormatBytes(rep.MaterializedBytes), experiments.FormatBytes(rep.MapOutputRecords),
			rep.Estimate.MapSeconds, rep.Estimate.Total())
	}
	fmt.Printf("  intermediate-data reduction: %.1f%% (paper: %s)\n", r.ReductionPct, paperReduction)
	fmt.Printf("  modeled runtime delta:       %+.1f%% (paper: %s)\n\n", r.RuntimeDeltaPct, paperRuntime)
}
