// Command benchjson converts `go test -bench` text output into JSON so benchmark
// results can be committed and diffed across PRs. It reads benchmark lines
// from stdin and writes a JSON document to stdout:
//
//	go test -bench 'Shuffle' -benchmem ./... | benchjson -baseline bench_baseline.json
//
// With -baseline, each benchmark that also appears in the baseline file
// carries the baseline's numbers plus speedup ratios (current MB/s over
// baseline MB/s, baseline allocs over current allocs — both >1 means the
// change helped), making the emitted file a self-contained before/after
// record.
//
// With -max-allocs-regress N (e.g. 1.10), benchjson additionally acts as a
// CI gate: after writing the JSON it exits nonzero if any benchmark's
// allocs/op exceeds N times its baseline's. Only allocation counts are
// gated — they are deterministic for a fixed workload, unlike wall-clock
// throughput or sampled peak-memory metrics, which stay informational.
//
// With -min-mbps-ratio R (e.g. 0.25), benchmarks that report MB/s must also
// hold at least R times their baseline throughput. Wall-clock throughput is
// machine- and load-dependent, so this gate is only useful with a deliberately
// loose R — it catches order-of-magnitude collapses (a hot path quietly
// falling back to a slow reference implementation), not percentage drifts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	Baseline      *Bench  `json:"baseline,omitempty"`
	SpeedupMBPerS float64 `json:"speedup_mb_per_s,omitempty"`
	AllocsRatio   float64 `json:"allocs_ratio,omitempty"`
}

// Report is the document benchjson emits.
type Report struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []*Bench          `json:"benchmarks"`
}

// gomaxprocsSuffix strips the trailing -N goroutine-count suffix Go appends
// to benchmark names, so results match across machines with different core
// counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parseLine(line string) (*Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, false
	}
	b := &Bench{
		Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
	}
	// The rest of the line is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	return b, true
}

func parseContext(ctx map[string]string, line string) {
	for _, key := range []string{"goos", "goarch", "cpu"} {
		if rest, ok := strings.CutPrefix(line, key+": "); ok {
			ctx[key] = strings.TrimSpace(rest)
		}
	}
}

func loadBaseline(path string) (map[string]*Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]*Bench, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "JSON file of prior results to embed per-benchmark")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 0,
		"fail (exit 1) if any benchmark's allocs/op exceeds this multiple of its baseline's; 0 disables")
	minMBPerSRatio := flag.Float64("min-mbps-ratio", 0,
		"fail (exit 1) if any benchmark's MB/s falls below this fraction of its baseline's; 0 disables (use a loose fraction — wall-clock varies across machines)")
	flag.Parse()

	var baseline map[string]*Bench
	if *baselinePath != "" {
		var err error
		if baseline, err = loadBaseline(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		parseContext(rep.Context, line)
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if prior := baseline[b.Name]; prior != nil {
			// Drop the baseline's own comparison fields so they don't nest.
			flat := *prior
			flat.Baseline, flat.SpeedupMBPerS, flat.AllocsRatio = nil, 0, 0
			b.Baseline = &flat
			if prior.MBPerS > 0 && b.MBPerS > 0 {
				b.SpeedupMBPerS = round2(b.MBPerS / prior.MBPerS)
			} else if prior.NsPerOp > 0 && b.NsPerOp > 0 {
				b.SpeedupMBPerS = round2(prior.NsPerOp / b.NsPerOp)
			}
			if b.AllocsPerOp > 0 && prior.AllocsPerOp > 0 {
				b.AllocsRatio = round2(prior.AllocsPerOp / b.AllocsPerOp)
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Context) == 0 {
		rep.Context = nil
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	regressed := false
	if *maxAllocsRegress > 0 {
		for _, b := range rep.Benchmarks {
			prior := b.Baseline
			if prior == nil || prior.AllocsPerOp <= 0 || b.AllocsPerOp <= 0 {
				continue
			}
			if b.AllocsPerOp > prior.AllocsPerOp*(*maxAllocsRegress) {
				regressed = true
				fmt.Fprintf(os.Stderr, "benchjson: %s allocs/op regressed: %.0f vs baseline %.0f (limit %.2fx)\n",
					b.Name, b.AllocsPerOp, prior.AllocsPerOp, *maxAllocsRegress)
			}
		}
	}
	if *minMBPerSRatio > 0 {
		for _, b := range rep.Benchmarks {
			prior := b.Baseline
			if prior == nil || prior.MBPerS <= 0 || b.MBPerS <= 0 {
				continue
			}
			if b.MBPerS < prior.MBPerS*(*minMBPerSRatio) {
				regressed = true
				fmt.Fprintf(os.Stderr, "benchjson: %s throughput collapsed: %.1f MB/s vs baseline %.1f (floor %.2fx)\n",
					b.Name, b.MBPerS, prior.MBPerS, *minMBPerSRatio)
			}
		}
	}
	if regressed {
		os.Exit(1)
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
