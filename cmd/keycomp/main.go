// Command keycomp applies a compression codec stack to a file or stream —
// the hand tool behind Figs. 3 and 4. Examples:
//
//	keycomp -codec transform+bzip2 -in keys.bin -out keys.bin.tz
//	keycomp -codec transform+bzip2 -d -in keys.bin.tz -out keys.bin
//	keycomp -gen 100 -codec transform+gzip -out /dev/null -stats
//
// -gen n generates the n^3 grid-walk stream (Fig. 3's input) instead of
// reading -in.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"scikey/internal/codec"
	"scikey/internal/workload"
)

func main() {
	codecName := flag.String("codec", "transform+gzip", "codec: "+fmt.Sprint(codec.Names()))
	decompress := flag.Bool("d", false, "decompress instead of compress")
	inPath := flag.String("in", "", "input file (default stdin)")
	outPath := flag.String("out", "", "output file (default stdout)")
	gen := flag.Int("gen", 0, "generate an n^3 grid-walk stream as input instead of -in")
	stats := flag.Bool("stats", false, "print sizes and timing to stderr")
	flag.Parse()

	c, err := codec.Get(*codecName)
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	switch {
	case *gen > 0:
		data := workload.GridWalkTriples(*gen)
		in = &sliceReader{data: data}
	case *inPath != "":
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	inCount := &countReader{r: in}
	outCount := &countWriter{w: out}
	start := time.Now()
	if *decompress {
		r, err := c.NewReader(inCount)
		if err != nil {
			fatal(err)
		}
		if _, err := io.Copy(outCount, r); err != nil {
			fatal(err)
		}
		if err := r.Close(); err != nil {
			fatal(err)
		}
	} else {
		w := c.NewWriter(outCount)
		if _, err := io.Copy(w, inCount); err != nil {
			fatal(err)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	if *stats {
		dt := time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "codec=%s in=%d bytes out=%d bytes ratio=%.4f%% time=%.3fs\n",
			c.Name(), inCount.n, outCount.n, 100*float64(outCount.n)/float64(max(inCount.n, 1)), dt)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keycomp:", err)
	os.Exit(1)
}

type sliceReader struct{ data []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.data)
	s.data = s.data[n:]
	return n, nil
}

type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
