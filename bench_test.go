// Package scikey's root benchmarks regenerate every table and figure of
// the paper (see DESIGN.md's experiment index). Each benchmark reports the
// experiment's domain metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the numbers EXPERIMENTS.md records. BenchmarkE<n> map to the
// paper's tables/figures; BenchmarkA<n> are the DESIGN.md ablations.
package scikey

import (
	"fmt"
	"runtime"
	"testing"

	"scikey/internal/codec"
	"scikey/internal/experiments"
	"scikey/internal/predictor"
	"scikey/internal/sfc"
	"scikey/internal/workload"
)

// BenchmarkE1_IntroOverhead regenerates the introduction's intermediate
// file sizes (paper: 26,000,006 and 33,000,006 bytes; key/value 6.75).
func BenchmarkE1_IntroOverhead(b *testing.B) {
	var r experiments.E1Result
	for i := 0; i < b.N; i++ {
		r = experiments.E1IntroOverhead()
	}
	b.ReportMetric(float64(r.IndexFileBytes), "indexfile_B")
	b.ReportMetric(float64(r.NameFileBytes), "namefile_B")
	b.ReportMetric(r.KeyValueRatio, "key/value")
}

// BenchmarkE3_ByteLevelCompression regenerates the Fig. 3 table on the
// full 100^3 (12,000,000-byte) input.
func BenchmarkE3_ByteLevelCompression(b *testing.B) {
	data := workload.GridWalkTriples(100)
	for _, name := range []string{"gzip", "transform+gzip", "bzip2", "transform+bzip2"} {
		b.Run(name, func(b *testing.B) {
			c, err := codec.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			var size int
			for i := 0; i < b.N; i++ {
				comp, err := codec.Compress(c, data)
				if err != nil {
					b.Fatal(err)
				}
				size = len(comp)
			}
			b.ReportMetric(float64(size), "out_B")
		})
	}
}

// BenchmarkE4_TransformTimeVsSize regenerates Fig. 4: constant MB/s across
// sizes demonstrates the linear relationship.
func BenchmarkE4_TransformTimeVsSize(b *testing.B) {
	for _, n := range []int{20, 40, 60, 80, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := workload.GridWalkTriples(n)
			tr := predictor.NewTransformer(predictor.Config{})
			dst := make([]byte, 0, len(data))
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				dst = tr.Forward(dst[:0], data)
			}
		})
	}
}

// BenchmarkE4_BlockPipeline measures the parallel block codec around the
// steady-state transform: the Fig. 4 stream encoded as block+transform+none
// at pipeline widths 1 (the sequential reference — no goroutines), 2, and
// GOMAXPROCS. Every width emits identical bytes; the MB/s spread is the
// tentpole's speedup on the machine at hand (flat on a single-core box).
func BenchmarkE4_BlockPipeline(b *testing.B) {
	data := workload.GridWalkTriples(60)
	widths := []int{1}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		if w > widths[len(widths)-1] {
			widths = append(widths, w)
		}
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			blk := codec.NewBlock(codec.NewTransform(codec.None))
			blk.Workers = w
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Compress(blk, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransformSteadyState measures the predictor kernel in its
// locked-in regime: a long structured stream where the stride detector has
// settled, so nearly every byte should travel the batch fast path. This is
// the MB/s number the inline map→reduce transform of Section III lives or
// dies by.
func BenchmarkTransformSteadyState(b *testing.B) {
	data := workload.GridWalkTriples(60) // 2.6 MB, stride-12 structure
	cfgs := map[string]predictor.Config{
		"adaptive": {},
		"fixed12":  {Mode: predictor.Fixed, Strides: []int{12}},
	}
	for _, name := range []string{"adaptive", "fixed12"} {
		b.Run(name, func(b *testing.B) {
			tr := predictor.NewTransformer(cfgs[name])
			dst := make([]byte, 0, len(data))
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				dst = tr.Forward(dst[:0], data)
			}
		})
	}
}

// BenchmarkE5_StrideStrategies times the three stride-selection modes on
// the same stream (brute force vs adaptive is the paper's 4x/17x claim).
func BenchmarkE5_StrideStrategies(b *testing.B) {
	data := workload.GridWalkTriples(50)
	cfgs := map[string]predictor.Config{
		"fixed12":        {Mode: predictor.Fixed, Strides: []int{12}},
		"adaptive100":    {Mode: predictor.Adaptive, MaxStride: 100},
		"exhaustive100":  {Mode: predictor.Exhaustive, MaxStride: 100},
		"adaptive1000":   {Mode: predictor.Adaptive, MaxStride: 1000},
		"exhaustive1000": {Mode: predictor.Exhaustive, MaxStride: 1000},
	}
	for _, name := range []string{"fixed12", "adaptive100", "exhaustive100", "adaptive1000", "exhaustive1000"} {
		b.Run(name, func(b *testing.B) {
			tr := predictor.NewTransformer(cfgs[name])
			dst := make([]byte, 0, len(data))
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				dst = tr.Forward(dst[:0], data)
			}
		})
	}
}

// BenchmarkE6_MedianTransformCodec regenerates Section III-E (paper:
// bytes -77.8%, runtime +106%).
func BenchmarkE6_MedianTransformCodec(b *testing.B) {
	var r experiments.StrategyComparison
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E6TransformCodecOnMedian(192)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ReductionPct, "reduction_%")
	b.ReportMetric(r.RuntimeDeltaPct, "runtime_delta_%")
}

// BenchmarkE7_AggregationDataSize regenerates Fig. 8 (paper: up to 84.5%
// reduction).
func BenchmarkE7_AggregationDataSize(b *testing.B) {
	var r experiments.E7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E7AggregationDataSize()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Original.Total()), "original_B")
	b.ReportMetric(float64(r.Compressed.Total()), "compressed_B")
	b.ReportMetric(r.ReductionPct, "reduction_%")
}

// BenchmarkE8_MedianAggregation regenerates Section IV-D (paper: bytes
// -60.7%, runtime -28.5%).
func BenchmarkE8_MedianAggregation(b *testing.B) {
	var r experiments.StrategyComparison
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.E8AggregationOnMedian(192)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ReductionPct, "reduction_%")
	b.ReportMetric(r.RuntimeDeltaPct, "runtime_delta_%")
}

// BenchmarkE10_AggregationGeometries compares curve-range aggregation with
// greedy n-D box aggregation (the Fig. 5 alternative) on the median query.
func BenchmarkE10_AggregationGeometries(b *testing.B) {
	var rows []experiments.E10Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.E10AggregationGeometries(96, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheme == "curve/zorder" {
			b.ReportMetric(float64(r.MaterializedBytes), "zorder_B")
		}
		if r.Scheme == "boxes" {
			b.ReportMetric(float64(r.MaterializedBytes), "boxes_B")
		}
	}
}

// BenchmarkA5_SplitInflation measures the Section IV-B open question.
func BenchmarkA5_SplitInflation(b *testing.B) {
	var r experiments.A5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.A5SplitInflation(96)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.MapperPairs), "mapper_pairs")
	b.ReportMetric(float64(r.AfterOverlapSplit), "post_split_pairs")
	b.ReportMetric(float64(r.OutputPairsReagg), "reagg_pairs")
}

// BenchmarkA1_CurveComparison measures per-curve index cost; mean runs per
// box (the clustering metric) rides along as a reported metric.
func BenchmarkA1_CurveComparison(b *testing.B) {
	rows := experiments.A1CurveComparison(8, 200, 42)
	runs := map[string]float64{}
	for _, r := range rows {
		runs[r.Curve] = r.MeanRuns
	}
	for _, name := range []string{"zorder", "hilbert", "peano", "rowmajor"} {
		b.Run(name, func(b *testing.B) {
			c, err := sfc.ForSide(name, 2, 256)
			if err != nil {
				b.Fatal(err)
			}
			coords := make([]uint64, 0, 1024)
			for i := 0; i < 1024; i++ {
				coords = append(coords, uint64(i*2654435761)%65536)
			}
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				idx := coords[i%len(coords)]
				sink += c.Index(c.Coord(idx))
			}
			_ = sink
			b.ReportMetric(runs[name], "runs/box")
		})
	}
}

// BenchmarkA2_FlushThreshold measures aggregation at several buffer sizes.
func BenchmarkA2_FlushThreshold(b *testing.B) {
	for _, th := range []int{256, 4096, 1 << 16} {
		b.Run(fmt.Sprintf("flush=%d", th), func(b *testing.B) {
			var rows []experiments.A2Row
			for i := 0; i < b.N; i++ {
				rows = experiments.A2FlushThreshold(256, []int{th})
			}
			b.ReportMetric(float64(rows[0].PairsOut), "agg_pairs")
			b.ReportMetric(rows[0].BytesPerCell, "keyB/cell")
		})
	}
}

// BenchmarkA3_Alignment measures overlap splitting with and without
// alignment expansion.
func BenchmarkA3_Alignment(b *testing.B) {
	for _, align := range []uint64{1, 8, 16} {
		b.Run(fmt.Sprintf("align=%d", align), func(b *testing.B) {
			var rows []experiments.A3Row
			for i := 0; i < b.N; i++ {
				rows = experiments.A3Alignment([]uint64{align})
			}
			b.ReportMetric(float64(rows[0].Fragments), "fragments")
			b.ReportMetric(float64(rows[0].PadCells), "pad_cells")
		})
	}
}

// BenchmarkA4_DetectorParams sweeps the detector's tuning knobs.
func BenchmarkA4_DetectorParams(b *testing.B) {
	data := workload.GridWalkTriples(40)
	cfgs := map[string]predictor.Config{
		"cycle=64":   {SelectionCycle: 64},
		"cycle=256":  {SelectionCycle: 256},
		"cycle=4096": {SelectionCycle: 4096},
		"hit=1/2":    {HitRateNum: 1, HitRateDen: 2},
		"hit=5/6":    {HitRateNum: 5, HitRateDen: 6},
	}
	for _, name := range []string{"cycle=64", "cycle=256", "cycle=4096", "hit=1/2", "hit=5/6"} {
		b.Run(name, func(b *testing.B) {
			tr := predictor.NewTransformer(cfgs[name])
			dst := make([]byte, 0, len(data))
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Reset()
				dst = tr.Forward(dst[:0], data)
			}
		})
	}
}
