package workload

import (
	"bytes"
	"encoding/binary"
	"testing"

	"scikey/internal/grid"
	"scikey/internal/keys"
)

func TestGridWalkTriplesSize(t *testing.T) {
	// Fig. 3's input: the 100^3 walk is exactly 12,000,000 bytes.
	if got := len(GridWalkTriples(10)); got != 12000 {
		t.Errorf("10^3 walk = %d bytes, want 12000", got)
	}
	data := GridWalkTriples(3)
	// First triple is (0,0,0), second (0,0,1).
	if binary.BigEndian.Uint32(data[8:]) != 0 || binary.BigEndian.Uint32(data[20:]) != 1 {
		t.Error("walk order wrong")
	}
}

func TestGridWalkStreamRank2(t *testing.T) {
	b := grid.NewBox(grid.Coord{1, 2}, []int{2, 2})
	data := GridWalkStream(b)
	if len(data) != 4*2*4 {
		t.Fatalf("len = %d", len(data))
	}
	want := []uint32{1, 2, 1, 3, 2, 2, 2, 3}
	for i, w := range want {
		if got := binary.BigEndian.Uint32(data[i*4:]); got != w {
			t.Errorf("word %d = %d, want %d", i, got, w)
		}
	}
}

func TestKeyValueStreamSize(t *testing.T) {
	// One thousand 27-byte keys + 4-byte values = 31,000 bytes.
	codec := &keys.Codec{Rank: 4, Mode: keys.VarByName}
	box := grid.NewBox(grid.Coord{0, 0, 0, 0}, []int{1, 10, 10, 10})
	v := keys.VarRef{Name: "windspeed1"}
	val := []byte{0, 0, 0, 1}
	data := KeyValueStream(codec, v, box, func(grid.Coord) []byte { return val })
	if len(data) != 31*1000 {
		t.Errorf("stream = %d bytes, want 31000", len(data))
	}
}

func TestRecordGroups(t *testing.T) {
	marker := []byte{0xee, 0xff}
	data := RecordGroups(8, 3, 4, marker)
	wantLen := (8*3 + 2) * 4
	if len(data) != wantLen {
		t.Fatalf("len = %d, want %d", len(data), wantLen)
	}
	// Markers sit after every group.
	for g := 0; g < 4; g++ {
		off := (g+1)*(8*3) + g*2
		if !bytes.Equal(data[off:off+2], marker) {
			t.Errorf("marker missing at group %d", g)
		}
	}
	// Record counters increase monotonically.
	if binary.BigEndian.Uint32(data[0:]) != 0 || binary.BigEndian.Uint32(data[8:]) != 1 {
		t.Error("record counters wrong")
	}
}

func TestFieldDeterministic(t *testing.T) {
	f := Field{Extent: grid.NewBox(grid.Coord{0, 0}, []int{10, 10}), Name: "v"}
	c := grid.Coord{3, 4}
	if f.Value(c) != f.Value(grid.Coord{3, 4}) {
		t.Error("Value must be deterministic")
	}
	if f.Value(c) < 0 || f.Value(c) >= 1000 {
		t.Errorf("Value out of range: %d", f.Value(c))
	}
	if f.Value(grid.Coord{4, 3}) == f.Value(c) && f.Value(grid.Coord{0, 0}) == f.Value(c) {
		t.Error("field suspiciously constant")
	}
	vb := f.ValueBytes(c)
	if int32(binary.BigEndian.Uint32(vb)) != f.Value(c) {
		t.Error("ValueBytes disagrees with Value")
	}
}

func TestMultiVarStream(t *testing.T) {
	codec := &keys.Codec{Rank: 2, Mode: keys.VarByName}
	vars := []keys.VarRef{{Name: "a"}, {Name: "longername"}}
	boxes := []grid.Box{
		grid.NewBox(grid.Coord{0, 0}, []int{2, 2}),
		grid.NewBox(grid.Coord{0, 0}, []int{3, 3}),
	}
	data := MultiVarStream(codec, vars, boxes)
	// var "a": (1+1+8+4)*4 bytes; var "longername": (1+10+8+4)*9 bytes.
	want := 14*4 + 23*9
	if len(data) != want {
		t.Errorf("stream = %d bytes, want %d", len(data), want)
	}
}
