// Package workload generates the synthetic inputs of the paper's
// experiments: grid-walk coordinate streams (Fig. 3/4), serialized
// key/value record streams (Fig. 2 and the introduction), the
// fixed-length-records-with-markers stream from the stride-selection
// discussion in Section III, and deterministic value fields for the
// sliding-median query.
package workload

import (
	"encoding/binary"

	"scikey/internal/grid"
	"scikey/internal/keys"
	"scikey/internal/serial"
)

// GridWalkTriples returns the raw byte stream of int32 coordinate triples
// from walking an n×n×n grid in row-major order — the input of Fig. 3
// (n=100 gives the 12,000,000-byte file).
func GridWalkTriples(n int) []byte {
	return GridWalkStream(grid.NewBox(grid.Coord{0, 0, 0}, []int{n, n, n}))
}

// GridWalkStream serializes every coordinate of box as big-endian int32s in
// row-major order.
func GridWalkStream(box grid.Box) []byte {
	out := make([]byte, 0, box.NumCells()*int64(4*box.Rank()))
	grid.ForEach(box, func(c grid.Coord) {
		for _, x := range c {
			out = binary.BigEndian.AppendUint32(out, uint32(x))
		}
	})
	return out
}

// KeyValueStream serializes one (GridKey, value) record per cell of box
// using codec, with the per-cell value produced by val. This is the mapper
// output stream whose size the introduction quantifies.
func KeyValueStream(codec *keys.Codec, v keys.VarRef, box grid.Box, val func(grid.Coord) []byte) []byte {
	out := serial.NewDataOutput(int(box.NumCells() * 24))
	grid.ForEach(box, func(c grid.Coord) {
		codec.EncodeGrid(out, keys.GridKey{Var: v, Coord: c})
		out.Write(val(c))
	})
	return append([]byte(nil), out.Bytes()...)
}

// RecordGroups builds the stride-selection counterexample of Section III:
// groups of fixed-length records separated by small markers. "The obvious
// choice for the stride is the length of a record, but the markers break
// the stride's regularity ... The optimal stride actually turns out to be
// the size of an entire group plus a marker."
func RecordGroups(recLen, recsPerGroup, groups int, marker []byte) []byte {
	var out []byte
	counter := uint32(0)
	for g := 0; g < groups; g++ {
		for r := 0; r < recsPerGroup; r++ {
			rec := make([]byte, recLen)
			binary.BigEndian.PutUint32(rec, counter)
			counter++
			for i := 4; i < recLen; i++ {
				rec[i] = byte(i) // constant filler per offset
			}
			out = append(out, rec...)
		}
		out = append(out, marker...)
	}
	return out
}

// Field is a deterministic integer field over a grid, used as query input.
// Values are a cheap hash of the coordinate so reruns and split layouts
// always agree.
type Field struct {
	// Extent is the dataset's domain.
	Extent grid.Box
	// Name is the variable name ("windspeed1" in the paper's examples).
	Name string
}

// Value returns the int32 value at c.
func (f *Field) Value(c grid.Coord) int32 {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for _, x := range c {
		h ^= uint64(uint32(x))
		h *= 1099511628211
	}
	// Keep values small and positive so medians are easy to eyeball.
	return int32(h % 1000)
}

// ValueBytes returns the 4-byte big-endian encoding of Value(c).
func (f *Field) ValueBytes(c grid.Coord) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(f.Value(c)))
	return b[:]
}

// MultiVarStream interleaves records of several variables with different
// shapes — the "multiple variables ... may have different stride lengths
// due to different shapes" difficulty from Section III.
func MultiVarStream(codec *keys.Codec, vars []keys.VarRef, boxes []grid.Box) []byte {
	out := serial.NewDataOutput(1024)
	for i, v := range vars {
		f := Field{Extent: boxes[i], Name: v.Name}
		grid.ForEach(boxes[i], func(c grid.Coord) {
			codec.EncodeGrid(out, keys.GridKey{Var: v, Coord: c})
			out.Write(f.ValueBytes(c))
		})
	}
	return append([]byte(nil), out.Bytes()...)
}
