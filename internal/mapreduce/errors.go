package mapreduce

import (
	"errors"
	"fmt"
	"time"
)

// TimeoutError reports a job that exceeded Job.Timeout. All in-flight
// attempts were canceled and their work discarded; no partial output is
// committed beyond tasks that finished before the deadline.
type TimeoutError struct {
	Timeout time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("mapreduce: job exceeded timeout %v", e.Timeout)
}

// AttemptError reports a task that exhausted its attempt budget. It names
// the phase, task, and final failing attempt, and wraps that attempt's
// error.
type AttemptError struct {
	Phase   string // "map" or "reduce"
	Task    int
	Attempt int // the last attempt that failed (0-based)
	Err     error
}

// Error implements error.
func (e *AttemptError) Error() string {
	return fmt.Sprintf("mapreduce: %s task %d attempt %d: %v", e.Phase, e.Task, e.Attempt, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *AttemptError) Unwrap() error { return e.Err }

// ErrCorruptSegment reports that a reducer detected corruption — a CRC
// mismatch, broken IFile framing, or a codec decode failure — while reading
// the final map output segment identified by (MapTask, Partition). With
// retries enabled the engine recovers by re-executing the producing map
// task; with retries disabled the job fails with this error (wrapped in an
// AttemptError naming the detecting reduce attempt).
type ErrCorruptSegment struct {
	MapTask   int
	Partition int
	// Attempt is the map attempt that produced the corrupt segment.
	Attempt int
	Err     error
}

// Error implements error.
func (e *ErrCorruptSegment) Error() string {
	return fmt.Sprintf("mapreduce: corrupt segment from map task %d attempt %d, partition %d: %v",
		e.MapTask, e.Attempt, e.Partition, e.Err)
}

// Unwrap exposes the underlying read error.
func (e *ErrCorruptSegment) Unwrap() error { return e.Err }

// ErrAttemptCanceled aborts an attempt whose result can no longer be used:
// the phase failed fatally elsewhere, or a speculative twin already
// committed. Canceled attempts are discarded silently, never surfaced as
// job errors. Exported so Remote executors can report a revoked lease with
// the same vocabulary the in-process scheduler uses.
var ErrAttemptCanceled = errors.New("mapreduce: attempt canceled")

// errAttemptCanceled is the historical internal name.
var errAttemptCanceled = ErrAttemptCanceled
