package mapreduce

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scikey/internal/backoff"
	"scikey/internal/obs"
)

// RetryPolicy configures the attempt scheduler: how many times a task may
// fail before the job aborts, how retries back off, and whether straggler
// attempts are speculatively re-executed. The zero value reproduces the
// historical one-shot behaviour: any task failure fails the job.
type RetryPolicy struct {
	// MaxAttempts bounds the failed attempts one task may accumulate
	// before the job aborts with an AttemptError. 0 or 1 disables retries.
	// Speculative attempts do not consume the budget; only failures do.
	MaxAttempts int
	// Backoff is the base delay before the first retry; each further retry
	// doubles it. 0 retries immediately (the default, and what tests want).
	Backoff time.Duration
	// BackoffMax caps the exponential growth. 0 means uncapped.
	BackoffMax time.Duration
	// Seed drives the deterministic backoff jitter: the same
	// (seed, task, failures) always produces the same delay.
	Seed int64
	// Speculative enables re-execution of straggler attempts: when an
	// attempt runs longer than SpeculativeAfter and the job is parallel, a
	// backup attempt launches and the first finisher wins. The loser's
	// output is discarded and its work charged as waste.
	Speculative bool
	// SpeculativeAfter is the straggler threshold. Required (> 0) for
	// speculation to engage.
	SpeculativeAfter time.Duration
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts > 1 {
		return p.MaxAttempts
	}
	return 1
}

// policy converts the task-retry fields to the shared backoff policy.
func (p RetryPolicy) backoff() backoff.Policy {
	return backoff.Policy{Base: p.Backoff, Max: p.BackoffMax, Seed: p.Seed}
}

// delay computes the backoff before retrying task after the given number of
// consecutive failures, with deterministic jitter in [d/2, d).
func (p RetryPolicy) delay(task, failures int) time.Duration {
	return p.backoff().Delay(int64(task), 0, failures)
}

// stopState is a one-shot cancel signal readable both as a cheap atomic
// flag (for per-record checks on the emit path) and as a channel (for
// select-based waits).
type stopState struct {
	flag atomic.Bool
	ch   chan struct{}
	once sync.Once
}

func newStopState() *stopState { return &stopState{ch: make(chan struct{})} }

func (s *stopState) stop() {
	s.once.Do(func() {
		s.flag.Store(true)
		close(s.ch)
	})
}

func (s *stopState) stopped() bool { return s.flag.Load() }

// phaseRunner schedules the attempts of one phase's tasks: it retries
// failures within the policy's budget, backs off deterministically, runs
// speculative twins for stragglers, and guarantees commit is called exactly
// once per task — only for the winning attempt.
type phaseRunner struct {
	phase  string // "map" or "reduce", for errors and counters
	n      int
	limit  int
	policy RetryPolicy
	jc     *Counters // job-level scheduling counters

	// run executes one attempt. It must be safe for concurrent calls with
	// distinct attempts (including two live attempts of the same task) and
	// should poll canceled() to stop early once its result is unwanted.
	// sp is the attempt's span (possibly the zero span), under which the
	// attempt may open phase spans.
	run func(task, attempt int, canceled func() bool, sp obs.Span) (any, error)
	// commit installs the winning attempt's result; called once per task.
	commit func(task, attempt int, result any) error
	// discard releases a failed, canceled, or speculatively-lost attempt
	// (wasted-work accounting, temp-file cleanup). Optional.
	discard func(task, attempt int, result any, err error)
	// repair, when set, is consulted before retrying a corruption failure;
	// it returns true once the corrupted input has been regenerated.
	// Without repair (or when it fails), corruption aborts the task:
	// re-reading the same bytes cannot succeed.
	repair func(task, attempt int, err error) bool
	// onFailure observes every counted attempt failure. Optional.
	onFailure func(task, attempt int, err error)

	// jobStop, when set, is the job-wide cancel signal (deadline or fatal
	// failure in another phase); it trips this phase's stop as soon as the
	// phase is running, interrupting backoff sleeps and straggler waits.
	jobStop *stopState

	// tracer/jobSpan parent the attempt spans; attemptHist records each
	// attempt's duration. All are zero-value no-ops without an Observer.
	tracer      *obs.Tracer
	jobSpan     obs.SpanID
	attemptHist obs.Histogram

	stop *stopState
	mu   sync.Mutex
	next []int // next attempt number per task
}

func (p *phaseRunner) runAll() error {
	p.stop = newStopState()
	p.next = make([]int, p.n)
	if p.jobStop != nil {
		if p.jobStop.stopped() {
			return nil
		}
		phaseDone := make(chan struct{})
		defer close(phaseDone)
		go func() {
			select {
			case <-p.jobStop.ch:
				p.stop.stop()
			case <-phaseDone:
			}
		}()
	}
	return forEachLimitStop(p.n, p.limit, p.stop, p.runTask)
}

func (p *phaseRunner) nextAttempt(task int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	a := p.next[task]
	p.next[task]++
	return a
}

func (p *phaseRunner) discardAttempt(task, attempt int, res any, err error) {
	if p.discard != nil {
		p.discard(task, attempt, res, err)
	}
}

func (p *phaseRunner) countFailure(task, attempt int, err error) {
	if errors.Is(err, errAttemptCanceled) {
		return
	}
	if p.phase == "map" {
		p.jc.MapAttemptsFailed.Add(1)
	} else {
		p.jc.ReduceAttemptsFailed.Add(1)
	}
	if p.onFailure != nil {
		p.onFailure(task, attempt, err)
	}
}

// runTask drives one task through attempts until commit or budget
// exhaustion.
func (p *phaseRunner) runTask(task int) error {
	failures := 0
	for {
		if p.stop.stopped() {
			return nil // the phase already failed elsewhere
		}
		attempt := p.nextAttempt(task)
		res, att, err := p.runMaybeSpeculate(task, attempt)
		if err == nil {
			return p.commit(task, att, res)
		}
		if errors.Is(err, errAttemptCanceled) {
			p.discardAttempt(task, att, res, err)
			return nil
		}
		failures++
		p.countFailure(task, att, err)
		p.discardAttempt(task, att, res, err)
		if failures >= p.policy.maxAttempts() {
			return &AttemptError{Phase: p.phase, Task: task, Attempt: att, Err: err}
		}
		var ce *ErrCorruptSegment
		if errors.As(err, &ce) && (p.repair == nil || !p.repair(task, att, err)) {
			// Retrying would re-read the same corrupt bytes.
			return &AttemptError{Phase: p.phase, Task: task, Attempt: att, Err: err}
		}
		p.jc.TaskRetries.Add(1)
		if d := p.policy.delay(task, failures); d > 0 {
			p.sleepStop(d)
		}
	}
}

// sleepStop waits for d or until the phase stops, whichever is first.
func (p *phaseRunner) sleepStop(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-p.stop.ch:
	}
}

func (p *phaseRunner) speculating() bool {
	return p.policy.Speculative && p.policy.SpeculativeAfter > 0 && p.limit > 1
}

// startSpan opens an attempt span under the phase's job span.
func (p *phaseRunner) startSpan(task, attempt int, speculative bool) obs.Span {
	sp := p.tracer.Start(obs.CatAttempt, p.phase, p.jobSpan, task, attempt)
	if speculative {
		sp = sp.Speculative()
	}
	return sp
}

// attemptOutcome maps an attempt's error (and whether a nil error means its
// output was committed) to the span outcome vocabulary.
func attemptOutcome(err error, won bool) string {
	switch {
	case err == nil && won:
		return obs.OutcomeWon
	case err == nil:
		return obs.OutcomeLost
	case errors.Is(err, errAttemptCanceled):
		return obs.OutcomeCanceled
	default:
		return obs.OutcomeFailed
	}
}

// runMaybeSpeculate executes one attempt round: the given attempt, plus —
// when it straggles past SpeculativeAfter — a backup twin. The first
// finisher with a result wins; the loser is canceled, drained, and charged
// as speculative waste. Returns the winning (or last failing) attempt.
func (p *phaseRunner) runMaybeSpeculate(task, firstAttempt int) (any, int, error) {
	if !p.speculating() {
		sp := p.startSpan(task, firstAttempt, false)
		res, err := p.runOne(task, firstAttempt, nil, sp)
		sp.EndOutcome(attemptOutcome(err, true))
		return res, firstAttempt, err
	}
	type outcome struct {
		res     any
		attempt int
		err     error
		sp      obs.Span
	}
	ch := make(chan outcome, 2)
	var lostPrimary, lostBackup atomic.Bool
	start := func(attempt int, lost *atomic.Bool, speculative bool) {
		sp := p.startSpan(task, attempt, speculative)
		go func() {
			res, err := p.runOne(task, attempt, lost, sp)
			ch <- outcome{res, attempt, err, sp}
		}()
	}
	start(firstAttempt, &lostPrimary, false)
	timer := time.NewTimer(p.policy.SpeculativeAfter)
	defer timer.Stop()

	running := 1
	spawned := false
	var pending *outcome // a failed attempt held while its twin still runs
	for {
		select {
		case o := <-ch:
			running--
			if o.err != nil {
				// The attempt is definitively over whatever happens to its
				// twin; record its span now.
				o.sp.EndOutcome(attemptOutcome(o.err, false))
			}
			if o.err == nil {
				// Winner. Cancel and drain the twin before returning so no
				// attempt outlives the job.
				o.sp.EndOutcome(obs.OutcomeWon)
				lostPrimary.Store(true)
				lostBackup.Store(true)
				for running > 0 {
					loser := <-ch
					running--
					loser.sp.EndOutcome(attemptOutcome(loser.err, false))
					p.jc.SpeculativeWasted.Add(1)
					if loser.err != nil {
						p.countFailure(task, loser.attempt, loser.err)
					}
					p.discardAttempt(task, loser.attempt, loser.res, errAttemptCanceled)
				}
				if pending != nil {
					p.countFailure(task, pending.attempt, pending.err)
					p.discardAttempt(task, pending.attempt, pending.res, pending.err)
				}
				return o.res, o.attempt, nil
			}
			if running > 0 {
				pending = &o
				continue
			}
			if pending != nil {
				// Both attempts failed: surface the earlier failure, account
				// for the later one here.
				p.countFailure(task, o.attempt, o.err)
				p.discardAttempt(task, o.attempt, o.res, o.err)
				return pending.res, pending.attempt, pending.err
			}
			return o.res, o.attempt, o.err
		case <-timer.C:
			if !spawned && running == 1 && !p.stop.stopped() {
				spawned = true
				running++
				p.jc.SpeculativeAttempts.Add(1)
				start(p.nextAttempt(task), &lostBackup, true)
			}
		}
	}
}

// runOne executes a single attempt with panic containment, timing it into
// the phase's attempt-duration histogram.
func (p *phaseRunner) runOne(task, attempt int, lost *atomic.Bool, sp obs.Span) (res any, err error) {
	canceled := func() bool {
		return (lost != nil && lost.Load()) || p.stop.stopped()
	}
	t0 := time.Now()
	defer func() {
		p.attemptHist.Observe(time.Since(t0).Seconds())
		if r := recover(); r != nil {
			err = fmt.Errorf("%s task %d attempt %d panicked: %v", p.phase, task, attempt, r)
		}
	}()
	return p.run(task, attempt, canceled, sp)
}

// forEachLimit runs fn(0..n-1) with at most limit concurrent goroutines and
// returns the first error. Panics in fn are recovered and converted to
// errors in both the sequential and parallel paths. After the first
// failure, queued iterations never start.
func forEachLimit(n, limit int, fn func(i int) error) error {
	return forEachLimitStop(n, limit, newStopState(), fn)
}

// forEachLimitStop is forEachLimit with an external stop signal: the first
// failure trips it, halting queued iterations; callers may share it with
// in-flight work (e.g. task contexts) so those stop emitting too.
func forEachLimitStop(n, limit int, st *stopState, fn func(i int) error) error {
	recovered := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("mapreduce: task %d panicked: %v", i, r)
			}
		}()
		return fn(i)
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			if st.stopped() {
				break
			}
			if err := recovered(i); err != nil {
				st.stop()
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		st.stop()
	}
	sem := make(chan struct{}, limit)
loop:
	for i := 0; i < n; i++ {
		select {
		case <-st.ch:
			break loop
		case sem <- struct{}{}:
		}
		if st.stopped() {
			<-sem
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if st.stopped() {
				return
			}
			if err := recovered(i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
