package mapreduce

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/obs"
)

// Result reports a completed job: its counters, the per-task resource
// footprints for the cluster cost model, and the output file paths.
type Result struct {
	Counters *Counters
	MapTasks []cluster.Task
	// MapSpecs pairs each map task with its input volume and block hosts
	// for locality-aware estimation.
	MapSpecs    []cluster.MapSpec
	ReduceTasks []cluster.Task
	OutputPaths []string
	// MapPhaseCached reports that the map (and combine) phase was skipped:
	// the published segments came from Job.MapCache, and zero map attempts
	// ran. Output bytes and payload counters are identical either way.
	MapPhaseCached bool
	// WastedMapTasks / WastedReduceTasks are the footprints of attempts
	// whose work was discarded: failures, corruption-replaced map attempts,
	// and speculative losers. The cost model schedules them alongside the
	// committed tasks so recovery overhead shows up in the estimate.
	WastedMapTasks    []cluster.Task
	WastedReduceTasks []cluster.Task
	// CalSamples pairs each winning attempt's modeled footprint with its
	// observed wall clock, for cluster.Config.Fit.
	CalSamples []cluster.CalSample
}

// Calibrate fits the cost model's bandwidth constants to this run's
// observed attempt durations (see cluster.Config.Fit). In-process runs
// whose wall clock is all CPU have no I/O residual to fit and return an
// error; runs with real transport and disk time calibrate.
func (r *Result) Calibrate(base cluster.Config) (cluster.Config, error) {
	return base.Fit(r.CalSamples)
}

// Estimate models the job's runtime on the given cluster, treating all map
// input as node-local. Discarded attempts are charged as wasted slot time.
func (r *Result) Estimate(cfg cluster.Config) cluster.JobEstimate {
	return cfg.EstimateJobWithWaste(r.MapTasks, r.ReduceTasks, r.WastedMapTasks, r.WastedReduceTasks)
}

// EstimateLocality models the runtime with Hadoop's locality-preferring
// map scheduling over the named nodes.
func (r *Result) EstimateLocality(cfg cluster.Config, nodes []string) cluster.LocalityEstimate {
	return cfg.EstimateJobLocality(nodes, r.MapSpecs, r.ReduceTasks)
}

// Run executes the job to completion under the job's RetryPolicy: each task
// runs as a sequence of attempts, failures retry within the budget (with
// deterministic backoff), stragglers may be speculatively re-executed, and
// corrupt shuffle segments trigger re-execution of the producing map task.
// Only winning attempts contribute output, counters, and footprints; every
// discarded attempt's work is recorded as waste.
func Run(job *Job) (*Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	// jc holds the scheduling counters during the run; winning attempts'
	// payload counters merge in at the end.
	jc := &Counters{}

	// The job span roots the trace; everything below is nil-safe no-ops
	// when the job has no Observer.
	tr := job.Obs.T()
	jobName := job.Name
	if jobName == "" {
		jobName = "job"
	}
	jobSpan := tr.Start(obs.CatJob, jobName, 0, -1, -1)
	jobOutcome := "failed"
	defer func() { jobSpan.EndOutcome(jobOutcome) }()

	// jobStop is the job-wide cancel signal: the deadline timer trips it,
	// and every phase propagates it into in-flight attempts, backoff sleeps,
	// straggler waits, and shuffle fetches.
	jobStop := newStopState()
	var timedOut atomic.Bool
	if job.Timeout > 0 {
		timer := time.AfterFunc(job.Timeout, func() {
			timedOut.Store(true)
			jobStop.stop()
		})
		defer timer.Stop()
	}
	timeout := func() error {
		if timedOut.Load() {
			return &TimeoutError{Timeout: job.Timeout}
		}
		return nil
	}

	// svc is nil for the in-memory shuffle; otherwise the per-node shuffle
	// servers are live for the whole run, and committed map output is
	// published to them instead of handed to reducers directly.
	svc, err := newShuffleService(job)
	if err != nil {
		return nil, err
	}
	if svc != nil {
		defer svc.Close()
	}

	// cached, when non-nil, is a restored map phase: the map and combine
	// phases are skipped, the published segments below come from the cache,
	// and the assembly at the end replays the snapshot's footprints and
	// counters. A snapshot that doesn't fit the job's shape is a miss.
	var cached *MapPhaseSnapshot
	if job.MapCache != nil && job.CacheKey != "" {
		if snap, ok := job.MapCache.Get(job.CacheKey); ok && snap.matches(job) {
			cached = snap
		}
	}

	var (
		outMu      sync.Mutex
		tasks      = make([]*mapTask, len(job.Splits))
		mapOutputs = make([][]segment, len(job.Splits))
		wastedMaps []cluster.Task
	)
	// nb is the in-node combine buffer (nil when the job doesn't combine).
	// With combining on, committed map output is fed here instead of being
	// published raw; the combine phase between the map and reduce phases
	// merges each node group's segments and publishes the combined view.
	// A cache hit restores the post-combine view directly, so it needs no
	// buffer.
	var nb *NodeBuffer
	if cached == nil {
		nb = newNodeBuffer(job)
	}
	// publish pushes a committed map attempt's segments to its shuffle node
	// (networked shuffle) or to the coordinator's segment table (remote
	// execution) so reduce attempts fetch the freshest committed output —
	// or, when combining, feeds the node buffer, deferring all publication
	// to the combine phase (the reduce phase only starts after the map
	// barrier, so nothing fetches early).
	publish := func(t *mapTask) {
		if nb != nil {
			nb.feed(t.id, t.attempt, t.finals)
			return
		}
		if svc == nil && job.Remote == nil {
			return
		}
		parts := make([][]byte, len(t.finals))
		for p := range t.finals {
			parts[p] = t.finals[p].data
		}
		if svc != nil {
			svc.Publish(t.id, t.attempt, parts)
		}
		if job.Remote != nil {
			job.Remote.PublishRemote(t.id, t.attempt, parts)
		}
	}
	addMapWaste := func(t *mapTask) {
		if t == nil {
			return
		}
		outMu.Lock()
		wastedMaps = append(wastedMaps, t.footprint)
		outMu.Unlock()
	}

	attemptHelp := "Duration of task attempts by phase"
	mapRunner := &phaseRunner{
		phase:   "map",
		n:       len(job.Splits),
		limit:   job.parallelism(),
		policy:  job.Retry,
		jc:      jc,
		jobStop: jobStop,
		tracer:  tr,
		jobSpan: jobSpan.ID(),
		attemptHist: job.Obs.R().Histogram("scikey_attempt_seconds",
			attemptHelp, "seconds", nil, obs.L("phase", "map")),
		run: func(task, attempt int, canceled func() bool, sp obs.Span) (any, error) {
			if job.Remote != nil {
				rr, err := job.Remote.RunRemote(PhaseMap, task, attempt, canceled)
				return newRemoteMapTask(job, task, attempt, rr), err
			}
			t := newMapTask(job, task, attempt, canceled)
			t.tracer, t.span = sp.Tracer(), sp.ID()
			return t, t.run(job.Splits[task])
		},
		commit: func(task, attempt int, result any) error {
			t := result.(*mapTask)
			outMu.Lock()
			tasks[task] = t
			// With combining, mapOutputs holds the combined view installed
			// by the combine phase; raw finals live in the node buffer.
			if nb == nil {
				mapOutputs[task] = t.finals
			}
			outMu.Unlock()
			publish(t)
			return nil
		},
		discard: func(task, attempt int, result any, err error) {
			t, _ := result.(*mapTask)
			addMapWaste(t)
		},
	}
	if cached != nil {
		// Restore the cached map phase: install the published segments and
		// republish them to the shuffle service / remote segment table under
		// their original attempt numbers, exactly as the producing run did.
		// No map attempt runs and no attempt span or histogram sample is
		// recorded — "map attempts: zero" is the observable cache-hit
		// signature the differential tests assert.
		outs := cached.restoreSegments()
		outMu.Lock()
		copy(mapOutputs, outs)
		outMu.Unlock()
		if svc != nil || job.Remote != nil {
			for m, row := range outs {
				parts := make([][]byte, len(row))
				for p := range row {
					parts[p] = row[p].data
				}
				if svc != nil {
					svc.Publish(m, cached.Attempts[m], parts)
				}
				if job.Remote != nil {
					job.Remote.PublishRemote(m, cached.Attempts[m], parts)
				}
			}
		}
	} else if err := mapRunner.runAll(); err != nil {
		return nil, err
	}
	if err := timeout(); err != nil {
		return nil, err
	}

	// rerunMap re-executes map task m until an attempt succeeds (within the
	// retry budget), swapping the fresh output in and recording the replaced
	// attempt's work as waste. Callers hold repairMu.
	var repairMu sync.Mutex
	rerunMap := func(m int) bool {
		outMu.Lock()
		cur := tasks[m]
		outMu.Unlock()
		for rerun := 0; rerun < job.Retry.maxAttempts(); rerun++ {
			if jobStop.stopped() {
				return false
			}
			a := mapRunner.nextAttempt(m)
			sp := mapRunner.startSpan(m, a, false)
			res, err := mapRunner.runOne(m, a, nil, sp)
			sp.EndOutcome(attemptOutcome(err, true))
			nt, _ := res.(*mapTask)
			if err == nil {
				outMu.Lock()
				tasks[m] = nt
				if nb == nil {
					mapOutputs[m] = nt.finals
				}
				outMu.Unlock()
				publish(nt)
				addMapWaste(cur)
				jc.MapTasksRecovered.Add(1)
				jc.TaskRetries.Add(1)
				return true
			}
			mapRunner.countFailure(m, a, err)
			addMapWaste(nt)
		}
		return false
	}

	// pushGroup installs one node group's combined view — the combined row
	// under the representative task, empty rows under the other members, so
	// the (map task, partition) fetch topology is unchanged — and publishes
	// it to the shuffle service and/or remote segment table. Callers hold
	// repairMu.
	pushGroup := func(g int) {
		members := nb.members(g)
		outMu.Lock()
		for _, m := range members {
			mapOutputs[m], _ = nb.row(m)
		}
		outMu.Unlock()
		if svc == nil && job.Remote == nil {
			return
		}
		for _, m := range members {
			row, attempt := nb.row(m)
			parts := make([][]byte, len(row))
			for p := range row {
				parts[p] = row[p].data
			}
			if svc != nil {
				svc.Publish(m, attempt, parts)
			}
			if job.Remote != nil {
				job.Remote.PublishRemote(m, attempt, parts)
			}
		}
	}

	// combineGroup (re)combines a node group from the freshest committed
	// member outputs. A member segment that fails to decode mid-combine is
	// corruption: the producing task re-runs, re-feeds the buffer, and the
	// combine retries — bounded by the per-task retry budget across the
	// whole group. Callers hold repairMu.
	combineGroup := func(g int) error {
		budget := job.Retry.maxAttempts()*nb.groupSize(g) + 1
		for try := 0; try < budget; try++ {
			err := nb.combine(g)
			if err == nil {
				return nil
			}
			var ce *ErrCorruptSegment
			if !errors.As(err, &ce) || jobStop.stopped() {
				return err
			}
			jc.CorruptSegmentsDetected.Add(1)
			if !rerunMap(ce.MapTask) {
				return err
			}
		}
		return fmt.Errorf("mapreduce: job %q: combine of node group %d exhausted its retry budget", job.Name, g)
	}

	// recoverMap re-executes the map task named by a corrupt-segment report
	// — detected corruption or map output lost to an exhausted networked
	// fetch — replacing (and republishing) its output so the reducer's retry
	// reads intact bytes. With combining, the re-fed group recombines and
	// republishes before the reducer retries. Serialized: two reducers
	// hitting the same bad segment repair it once.
	recoverMap := func(ce *ErrCorruptSegment) bool {
		repairMu.Lock()
		defer repairMu.Unlock()
		outMu.Lock()
		cur := tasks[ce.MapTask]
		outMu.Unlock()
		if cur == nil {
			return false
		}
		if cur.attempt != ce.Attempt {
			// A newer attempt already replaced the reported output; the
			// reducer's retry will fetch the fresh segments.
			return true
		}
		if !rerunMap(ce.MapTask) {
			return false
		}
		if nb != nil {
			g := nb.groupOf(ce.MapTask)
			if err := combineGroup(g); err != nil {
				return false
			}
			pushGroup(g)
		}
		return true
	}

	// The combine phase: with in-node combining on, every node group's
	// committed segments merge — equal-key runs folded with the job's
	// Combiner inside MergeCut windows — and only the combined view is
	// published. Runs strictly between the map barrier and the reduce
	// phase, so reducers never see raw member segments.
	if nb != nil {
		err := func() error {
			repairMu.Lock()
			defer repairMu.Unlock()
			for g := 0; g < nb.numGroups(); g++ {
				if err := combineGroup(g); err != nil {
					return err
				}
				pushGroup(g)
			}
			return nil
		}()
		if err != nil {
			return nil, err
		}
		if err := timeout(); err != nil {
			return nil, err
		}
	}

	var (
		rtasks        = make([]*reduceTask, job.NumReducers)
		wastedReduces []cluster.Task
	)
	// committedAttempt names the current attempt of a map task, for
	// exhausted-fetch reports (the fetcher never saw the lost bytes'
	// provenance).
	committedAttempt := func(m int) int {
		if cached != nil {
			return cached.Attempts[m]
		}
		outMu.Lock()
		defer outMu.Unlock()
		if tasks[m] == nil {
			return -1
		}
		return tasks[m].attempt
	}
	var reduceRunner *phaseRunner
	reduceRunner = &phaseRunner{
		phase:   "reduce",
		n:       job.NumReducers,
		limit:   job.parallelism(),
		policy:  job.Retry,
		jc:      jc,
		jobStop: jobStop,
		tracer:  tr,
		jobSpan: jobSpan.ID(),
		attemptHist: job.Obs.R().Histogram("scikey_attempt_seconds",
			attemptHelp, "seconds", nil, obs.L("phase", "reduce")),
		run: func(task, attempt int, canceled func() bool, sp obs.Span) (any, error) {
			if job.Remote != nil {
				rr, err := job.Remote.RunRemote(PhaseReduce, task, attempt, canceled)
				return newRemoteReduceTask(job, task, attempt, rr), err
			}
			t := newReduceTask(job, task, attempt, canceled)
			t.tracer, t.span = sp.Tracer(), sp.ID()
			var src segmentSource
			if svc != nil {
				src = &netSource{
					svc:       svc,
					n:         len(job.Splits),
					stop:      reduceRunner.stop.ch,
					attemptOf: committedAttempt,
					verify:    canVerifyAtFetch(job),
				}
			} else {
				// Snapshot the map outputs under the lock: a concurrent
				// repair may be swapping a recovered task's segments in.
				outMu.Lock()
				outs := make([][]segment, len(mapOutputs))
				copy(outs, mapOutputs)
				outMu.Unlock()
				src = memSource{outs: outs}
			}
			return t, t.run(src)
		},
		commit: func(task, attempt int, result any) error {
			t := result.(*reduceTask)
			if err := t.commit(); err != nil {
				return err
			}
			outMu.Lock()
			rtasks[task] = t
			outMu.Unlock()
			return nil
		},
		discard: func(task, attempt int, result any, err error) {
			t, _ := result.(*reduceTask)
			if t == nil {
				return
			}
			t.abort()
			outMu.Lock()
			wastedReduces = append(wastedReduces, t.footprint)
			outMu.Unlock()
		},
		repair: func(task, attempt int, err error) bool {
			var ce *ErrCorruptSegment
			if !errors.As(err, &ce) {
				return false
			}
			return recoverMap(ce)
		},
		onFailure: func(task, attempt int, err error) {
			var ce *ErrCorruptSegment
			if errors.As(err, &ce) {
				jc.CorruptSegmentsDetected.Add(1)
			}
		},
	}
	if err := reduceRunner.runAll(); err != nil {
		return nil, err
	}
	if err := timeout(); err != nil {
		return nil, err
	}
	if svc != nil {
		mergeShuffleMetrics(jc, svc.Metrics())
	}
	if nb != nil {
		nb.fold(jc)
	}

	// Assemble the result from the surviving attempts only. Their private
	// counters merge into the job totals here, so a faulty run that recovers
	// reports byte-for-byte the same payload counters as a fault-free one.
	res := &Result{
		Counters:          jc,
		MapTasks:          make([]cluster.Task, len(tasks)),
		MapSpecs:          make([]cluster.MapSpec, len(tasks)),
		ReduceTasks:       make([]cluster.Task, job.NumReducers),
		OutputPaths:       make([]string, job.NumReducers),
		WastedMapTasks:    wastedMaps,
		WastedReduceTasks: wastedReduces,
	}
	if cached != nil {
		// Replay the snapshot's map-side contribution: the same payload
		// counters the producing run merged, and the same footprints and
		// calibration samples, so cost estimates and counter reports match
		// a cold run byte for byte.
		res.MapPhaseCached = true
		if err := jc.AddSnapshot(cached.Counters); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: cached map counters: %w", job.Name, err)
		}
		for i := range cached.Footprints {
			res.MapTasks[i] = cached.Footprints[i]
			res.MapSpecs[i] = cluster.MapSpec{Task: cached.Footprints[i], InputBytes: cached.InputBytes[i], Hosts: cached.Hosts[i]}
			res.CalSamples = append(res.CalSamples, calSample(cached.Footprints[i], cached.WallSeconds[i]))
		}
	} else {
		for i, t := range tasks {
			jc.Merge(t.counters())
			res.MapTasks[i] = t.footprint
			res.MapSpecs[i] = cluster.MapSpec{Task: t.footprint, InputBytes: t.ctx.inputBytes, Hosts: t.hosts}
			res.CalSamples = append(res.CalSamples, calSample(t.footprint, t.wallSeconds))
		}
	}
	for r, t := range rtasks {
		jc.Merge(t.counters())
		res.ReduceTasks[r] = t.footprint
		res.OutputPaths[r] = t.outPath
		res.CalSamples = append(res.CalSamples, calSample(t.footprint, t.wallSeconds))
	}
	if cached == nil && job.MapCache != nil && job.CacheKey != "" {
		// Store the published map state for the next identical query. The
		// cache is best-effort: a backend that cannot persist the snapshot
		// must not fail a job that already succeeded, so Put errors are
		// dropped (backends surface them through their own metrics).
		if snap, err := snapshotMapPhase(job, tasks, mapOutputs, nb); err == nil {
			_ = job.MapCache.Put(job.CacheKey, snap)
		}
	}
	publishCounters(job.Obs.R(), jc)
	jobOutcome = "ok"
	return res, nil
}

// calSample pairs one committed attempt's modeled footprint with its
// observed wall clock.
func calSample(fp cluster.Task, wallSeconds float64) cluster.CalSample {
	return cluster.CalSample{
		CPUSeconds:  fp.CPUSeconds,
		DiskBytes:   fp.DiskBytes,
		NetBytes:    fp.NetBytes,
		WallSeconds: wallSeconds,
	}
}
