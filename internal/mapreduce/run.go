package mapreduce

import (
	"fmt"
	"sync"

	"scikey/internal/cluster"
)

// Result reports a completed job: its counters, the per-task resource
// footprints for the cluster cost model, and the output file paths.
type Result struct {
	Counters *Counters
	MapTasks []cluster.Task
	// MapSpecs pairs each map task with its input volume and block hosts
	// for locality-aware estimation.
	MapSpecs    []cluster.MapSpec
	ReduceTasks []cluster.Task
	OutputPaths []string
}

// Estimate models the job's runtime on the given cluster, treating all map
// input as node-local.
func (r *Result) Estimate(cfg cluster.Config) cluster.JobEstimate {
	return cfg.EstimateJob(r.MapTasks, r.ReduceTasks)
}

// EstimateLocality models the runtime with Hadoop's locality-preferring
// map scheduling over the named nodes.
func (r *Result) EstimateLocality(cfg cluster.Config, nodes []string) cluster.LocalityEstimate {
	return cfg.EstimateJobLocality(nodes, r.MapSpecs, r.ReduceTasks)
}

// Run executes the job to completion.
func Run(job *Job) (*Result, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	counters := &Counters{}

	// Map phase.
	tasks := make([]*mapTask, len(job.Splits))
	if err := forEachLimit(len(job.Splits), job.parallelism(), func(i int) error {
		t := newMapTask(job, i, counters)
		tasks[i] = t
		return t.run(job.Splits[i])
	}); err != nil {
		return nil, err
	}

	mapOutputs := make([][]segment, len(tasks))
	mapFootprints := make([]cluster.Task, len(tasks))
	mapSpecs := make([]cluster.MapSpec, len(tasks))
	for i, t := range tasks {
		mapOutputs[i] = t.finals
		mapFootprints[i] = t.footprint
		mapSpecs[i] = cluster.MapSpec{Task: t.footprint, InputBytes: t.ctx.inputBytes, Hosts: t.hosts}
	}

	// Reduce phase.
	rtasks := make([]*reduceTask, job.NumReducers)
	if err := forEachLimit(job.NumReducers, job.parallelism(), func(r int) error {
		t := newReduceTask(job, r, counters)
		rtasks[r] = t
		return t.run(mapOutputs)
	}); err != nil {
		return nil, err
	}

	res := &Result{
		Counters:    counters,
		MapTasks:    mapFootprints,
		MapSpecs:    mapSpecs,
		ReduceTasks: make([]cluster.Task, job.NumReducers),
		OutputPaths: make([]string, job.NumReducers),
	}
	for r, t := range rtasks {
		res.ReduceTasks[r] = t.footprint
		res.OutputPaths[r] = t.outPath
	}
	return res, nil
}

// forEachLimit runs fn(0..n-1) with at most limit goroutines, returning the
// first error.
func forEachLimit(n, limit int, fn func(i int) error) error {
	if limit <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, limit)
	for i := 0; i < n; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() {
				<-sem
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("mapreduce: task %d panicked: %v", i, r)
					}
					mu.Unlock()
				}
			}()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
