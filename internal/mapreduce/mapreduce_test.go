package mapreduce

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"

	"scikey/internal/cluster"
	"scikey/internal/codec"
	"scikey/internal/hdfs"
	"scikey/internal/ifile"
	"scikey/internal/keys"
	"scikey/internal/serial"
)

func testFS() *hdfs.FileSystem {
	return hdfs.New(1<<20, 1, []string{"n0", "n1", "n2"})
}

// wordCountJob is the canonical engine smoke test.
func wordCountJob(fs *hdfs.FileSystem, docs []string, numReducers int, comb bool) *Job {
	splits := make([]Split, len(docs))
	for i, d := range docs {
		splits[i] = Split{ID: i, Data: d}
	}
	job := &Job{
		Name:        "wordcount",
		FS:          fs,
		Splits:      splits,
		NumReducers: numReducers,
		Compare:     serial.CompareBytes,
		Partition:   keys.HashPartition,
		OutputPath:  "/out",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
				doc := split.Data.(string)
				ctx.CountInput(1, int64(len(doc)))
				one := []byte{0, 0, 0, 1}
				for _, w := range strings.Fields(doc) {
					emit([]byte(w), one)
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error {
				var sum uint32
				for _, v := range values {
					sum += binary.BigEndian.Uint32(v)
				}
				var out [4]byte
				binary.BigEndian.PutUint32(out[:], sum)
				emit(key, out[:])
				return nil
			})
		},
	}
	if comb {
		job.NewCombiner = job.NewReducer
	}
	return job
}

// readOutput decodes all reducer output files into a map.
func readWordCounts(t *testing.T, fs *hdfs.FileSystem, paths []string) map[string]uint32 {
	t.Helper()
	out := make(map[string]uint32)
	for _, p := range paths {
		f, err := fs.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		r := ifile.NewReader(f)
		for {
			k, v, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out[string(k)] += binary.BigEndian.Uint32(v)
		}
		f.Close()
	}
	return out
}

func TestWordCount(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog and the quick cat",
		"fox fox fox",
	}
	for _, comb := range []bool{false, true} {
		for _, par := range []int{1, 4} {
			fs := testFS()
			job := wordCountJob(fs, docs, 3, comb)
			job.Parallelism = par
			res, err := Run(job)
			if err != nil {
				t.Fatalf("comb=%v par=%d: %v", comb, par, err)
			}
			got := readWordCounts(t, fs, res.OutputPaths)
			want := map[string]uint32{
				"the": 3, "quick": 2, "brown": 1, "fox": 4,
				"lazy": 1, "dog": 1, "and": 1, "cat": 1,
			}
			if len(got) != len(want) {
				t.Fatalf("comb=%v: got %v", comb, got)
			}
			for w, n := range want {
				if got[w] != n {
					t.Errorf("comb=%v: count[%s] = %d, want %d", comb, w, got[w], n)
				}
			}
			c := res.Counters
			if c.MapOutputRecords.Value() != 14 {
				t.Errorf("map output records = %d, want 14", c.MapOutputRecords.Value())
			}
			if c.ReduceOutputRecords.Value() != 8 {
				t.Errorf("reduce output records = %d, want 8", c.ReduceOutputRecords.Value())
			}
			if comb && c.CombineInputRecords.Value() == 0 {
				t.Error("combiner never ran")
			}
			if c.MapOutputMaterializedBytes.Value() <= 0 {
				t.Error("materialized bytes not counted")
			}
		}
	}
}

func TestCombinerReducesSpillVolume(t *testing.T) {
	docs := []string{strings.Repeat("same word again ", 500)}
	run := func(comb bool) int64 {
		fs := testFS()
		res, err := Run(wordCountJob(fs, docs, 2, comb))
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.MapOutputMaterializedBytes.Value()
	}
	plain, combined := run(false), run(true)
	if combined >= plain {
		t.Errorf("combiner did not shrink materialized bytes: %d vs %d", combined, plain)
	}
}

func TestMapOutputCodecShrinksMaterializedBytes(t *testing.T) {
	docs := []string{strings.Repeat("aaaa bbbb cccc dddd ", 300)}
	run := func(c codec.Codec) int64 {
		fs := testFS()
		job := wordCountJob(fs, docs, 2, false)
		job.MapOutputCodec = c
		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		// Output must be unaffected by the codec.
		got := readWordCounts(t, fs, res.OutputPaths)
		if got["aaaa"] != 300 {
			t.Fatalf("codec %v corrupted results: %v", c, got)
		}
		return res.Counters.MapOutputMaterializedBytes.Value()
	}
	plain := run(nil)
	zipped := run(codec.Gzip)
	if zipped >= plain {
		t.Errorf("gzip codec did not shrink map output: %d vs %d", zipped, plain)
	}
}

func TestMultipleSpills(t *testing.T) {
	// A tiny spill buffer forces many spills and a map-side merge; results
	// must be identical.
	docs := []string{strings.Repeat("alpha beta gamma delta ", 200)}
	fs := testFS()
	job := wordCountJob(fs, docs, 2, false)
	job.SpillBufferBytes = 256
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := readWordCounts(t, fs, res.OutputPaths)
	for _, w := range []string{"alpha", "beta", "gamma", "delta"} {
		if got[w] != 200 {
			t.Errorf("count[%s] = %d, want 200", w, got[w])
		}
	}
	if res.Counters.SpilledRecords.Value() <= res.Counters.MapOutputRecords.Value() {
		t.Error("expected re-spilling via merge to not lose records")
	}
}

func TestReduceSideOrdering(t *testing.T) {
	// Keys must arrive at each reducer sorted by the comparator.
	fs := testFS()
	splits := []Split{{ID: 0}, {ID: 1}, {ID: 2}}
	var seen []string
	job := &Job{
		Name:        "ordering",
		FS:          fs,
		Splits:      splits,
		NumReducers: 1,
		Compare:     serial.CompareBytes,
		Partition:   func([]byte, int) int { return 0 },
		OutputPath:  "/out",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
				for i := 9; i >= 0; i-- {
					emit([]byte(fmt.Sprintf("k%d-%d", i, split.ID)), []byte("v"))
				}
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error {
				seen = append(seen, string(key))
				return nil
			})
		},
	}
	if _, err := Run(job); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 30 {
		t.Fatalf("saw %d groups, want 30", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("reduce keys out of order: %q then %q", seen[i-1], seen[i])
		}
	}
}

func TestMergeTransformRuns(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, []string{"a b a"}, 1, false)
	var sawPairs int
	job.MergeTransform = func(pairs []KV) []KV {
		sawPairs = len(pairs)
		// Duplicate the first pair to simulate a split.
		return append([]KV{pairs[0]}, pairs...)
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if sawPairs != 3 {
		t.Errorf("merge transform saw %d pairs, want 3", sawPairs)
	}
	if res.Counters.OverlapKeySplits.Value() != 1 {
		t.Errorf("overlap splits = %d, want 1", res.Counters.OverlapKeySplits.Value())
	}
	got := readWordCounts(t, fs, res.OutputPaths)
	if got["a"] != 3 { // one duplicated
		t.Errorf("transformed count = %d, want 3", got["a"])
	}
}

func TestPartitionSplitRouting(t *testing.T) {
	// A PartitionSplit that fans every pair out to all reducers.
	fs := testFS()
	job := wordCountJob(fs, []string{"x y"}, 3, false)
	job.Partition = nil
	job.PartitionSplit = func(key, value []byte, n int) []RoutedKV {
		out := make([]RoutedKV, n)
		for i := range out {
			out[i] = RoutedKV{Partition: i, KV: KV{Key: key, Value: value}}
		}
		return out
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := readWordCounts(t, fs, res.OutputPaths)
	if got["x"] != 3 || got["y"] != 3 {
		t.Errorf("fan-out counts = %v", got)
	}
	if res.Counters.PartitionKeySplits.Value() != 4 { // 2 keys x (3-1) extra
		t.Errorf("partition splits = %d, want 4", res.Counters.PartitionKeySplits.Value())
	}
}

func TestValidation(t *testing.T) {
	fs := testFS()
	base := func() *Job { return wordCountJob(fs, []string{"a"}, 1, false) }
	mutations := map[string]func(*Job){
		"no fs":       func(j *Job) { j.FS = nil },
		"no splits":   func(j *Job) { j.Splits = nil },
		"no mapper":   func(j *Job) { j.NewMapper = nil },
		"no reducer":  func(j *Job) { j.NewReducer = nil },
		"no reducers": func(j *Job) { j.NumReducers = 0 },
		"no compare":  func(j *Job) { j.Compare = nil },
		"no routing":  func(j *Job) { j.Partition = nil },
		"no output":   func(j *Job) { j.OutputPath = "" },
	}
	for name, mutate := range mutations {
		j := base()
		mutate(j)
		if _, err := Run(j); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestMapperError(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, []string{"a"}, 1, false)
	job.NewMapper = func() Mapper {
		return MapperFunc(func(*TaskContext, Split, Emit) error {
			return fmt.Errorf("boom")
		})
	}
	if _, err := Run(job); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("mapper error not propagated: %v", err)
	}
}

func TestFootprintsPopulated(t *testing.T) {
	fs := testFS()
	res, err := Run(wordCountJob(fs, []string{"a b c", "d e f"}, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MapTasks) != 2 || len(res.ReduceTasks) != 2 {
		t.Fatalf("footprints: %d maps, %d reduces", len(res.MapTasks), len(res.ReduceTasks))
	}
	var disk, net int64
	for _, m := range res.MapTasks {
		disk += m.DiskBytes
	}
	for _, r := range res.ReduceTasks {
		net += r.NetBytes
	}
	if disk <= 0 {
		t.Error("map disk bytes not accounted")
	}
	if net != res.Counters.ReduceShuffleBytes.Value() {
		t.Errorf("net bytes %d != shuffle bytes %d", net, res.Counters.ReduceShuffleBytes.Value())
	}
}

func TestCountersString(t *testing.T) {
	fs := testFS()
	res, err := Run(wordCountJob(fs, []string{"a b"}, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Counters.String()
	if !strings.Contains(s, "Map output materialized bytes=") {
		t.Errorf("counters string missing materialized bytes: %s", s)
	}
}

// TestRoundTripBinaryValues guards against accidental string conversions in
// the data path.
func TestRoundTripBinaryValues(t *testing.T) {
	fs := testFS()
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	job := &Job{
		Name:        "binary",
		FS:          fs,
		Splits:      []Split{{ID: 0}},
		NumReducers: 1,
		Compare:     serial.CompareBytes,
		Partition:   func([]byte, int) int { return 0 },
		OutputPath:  "/out",
		NewMapper: func() Mapper {
			return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
				emit([]byte{0x00, 0xff, 0x00}, payload)
				return nil
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error {
				emit(key, values[0])
				return nil
			})
		},
		MapOutputCodec: codec.Bzip2,
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open(res.OutputPaths[0])
	r := ifile.NewReader(f)
	k, v, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k, []byte{0x00, 0xff, 0x00}) || !bytes.Equal(v, payload) {
		t.Error("binary payload corrupted")
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, []string{"a b"}, 2, false)
	job.NewReducer = func() Reducer {
		return ReducerFunc(func(*TaskContext, []byte, [][]byte, Emit) error {
			return fmt.Errorf("reduce boom")
		})
	}
	if _, err := Run(job); err == nil || !strings.Contains(err.Error(), "reduce boom") {
		t.Errorf("reducer error not propagated: %v", err)
	}
}

func TestMapperPanicBecomesErrorInParallelMode(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, []string{"a", "b", "c", "d"}, 1, false)
	job.Parallelism = 4
	job.NewMapper = func() Mapper {
		return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
			if split.ID == 2 {
				panic("map panic")
			}
			emit([]byte("k"), []byte{0, 0, 0, 1})
			return nil
		})
	}
	_, err := Run(job)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic not converted to error: %v", err)
	}
}

func TestFinalizerRuns(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, []string{"x y z"}, 1, false)
	job.NewReducer = func() Reducer { return &finishingReducer{} }
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got := readWordCounts(t, fs, res.OutputPaths)
	if got["FINAL"] != 99 {
		t.Errorf("Finish output missing: %v", got)
	}
}

type finishingReducer struct{ groups int }

func (r *finishingReducer) Reduce(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error {
	r.groups++
	return nil
}

func (r *finishingReducer) Finish(ctx *TaskContext, emit Emit) error {
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], 99)
	emit([]byte("FINAL"), out[:])
	if r.groups != 3 {
		return fmt.Errorf("saw %d groups, want 3", r.groups)
	}
	return nil
}

func TestEstimateLocalityFromResult(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, []string{"a b", "c d"}, 1, false)
	job.Splits[0].Hosts = []string{"n0"}
	job.Splits[1].Hosts = []string{"n1"}
	job.NewMapper = func() Mapper {
		return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
			ctx.CountInput(1, 1000)
			emit([]byte("k"), []byte{0, 0, 0, 1})
			return nil
		})
	}
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MapSpecs) != 2 || res.MapSpecs[0].InputBytes != 1000 {
		t.Fatalf("MapSpecs = %+v", res.MapSpecs)
	}
	est := res.EstimateLocality(clusterPaper(), []string{"n0", "n1"})
	if est.LocalTasks != 2 {
		t.Errorf("locality = %d/2", est.LocalTasks)
	}
	// Hosts that match nothing: zero locality.
	est = res.EstimateLocality(clusterPaper(), []string{"other"})
	if est.LocalTasks != 0 {
		t.Errorf("phantom locality: %d", est.LocalTasks)
	}
}

func clusterPaper() cluster.Config { return cluster.Paper() }

func TestMergeFactorMultiPass(t *testing.T) {
	// Many tiny spills with a small merge factor force extra on-disk merge
	// passes. Results must be identical; the extra passes must show up as
	// additional modeled disk traffic.
	docs := []string{strings.Repeat("w1 w2 w3 w4 w5 w6 w7 w8 ", 150)}
	run := func(factor int) (map[string]uint32, int64) {
		fs := testFS()
		job := wordCountJob(fs, docs, 2, false)
		job.SpillBufferBytes = 128 // many spills
		job.MergeFactor = factor
		res, err := Run(job)
		if err != nil {
			t.Fatal(err)
		}
		var disk int64
		for _, m := range res.MapTasks {
			disk += m.DiskBytes
		}
		for _, r := range res.ReduceTasks {
			disk += r.DiskBytes
		}
		return readWordCounts(t, fs, res.OutputPaths), disk
	}
	wideCounts, wideDisk := run(100)
	narrowCounts, narrowDisk := run(2)
	for w, n := range wideCounts {
		if narrowCounts[w] != n {
			t.Errorf("count[%s] = %d vs %d across merge factors", w, narrowCounts[w], n)
		}
	}
	if narrowDisk <= wideDisk {
		t.Errorf("factor-2 merging should cost more disk I/O: %d vs %d", narrowDisk, wideDisk)
	}
}

func BenchmarkWordCountEngine(b *testing.B) {
	docs := make([]string, 8)
	for i := range docs {
		docs[i] = strings.Repeat("alpha beta gamma delta epsilon zeta ", 200)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := testFS()
		if _, err := Run(wordCountJob(fs, docs, 4, true)); err != nil {
			b.Fatal(err)
		}
	}
}
