// Package mapreduce is an in-process MapReduce engine reproducing the
// Hadoop data path of Fig. 1: mappers read input splits, map output is
// partitioned, sorted, optionally combined, and spilled to IFile segments
// (optionally through a compression codec); reducers fetch their partitions,
// merge-sort the segments, group equal keys and reduce; output lands on the
// simulated HDFS.
//
// Two extensions implement the paper's Section IV-B changes, removing
// Hadoop's assumption that key/value pairs are atomic:
//
//   - Job.PartitionSplit lets an aggregate key that spans several reducers
//     be split at routing time instead of being routed whole.
//   - Job.MergeTransform runs over each reducer's merged, sorted stream
//     before grouping — the hook where unequal overlapping aggregate keys
//     are split along overlap boundaries (Fig. 7).
//
// A third extension goes beyond the paper: Job.Combine enables in-node
// combining — committed map outputs are pooled per node group and merged
// with a value Monoid before the shuffle, cutting shuffle bytes while the
// reduce output stays byte-identical (see Monoid, CombineConfig, and
// NodeBuffer).
//
// The engine measures, per task, the byte volumes and CPU seconds that the
// cluster cost model turns into modeled runtimes, and maintains the Hadoop
// counters the paper quotes (notably "Map output materialized bytes").
package mapreduce

import (
	"fmt"
	"time"

	"scikey/internal/codec"
	"scikey/internal/faults"
	"scikey/internal/hdfs"
	"scikey/internal/obs"
)

// KV is one serialized key/value pair.
type KV struct {
	Key   []byte
	Value []byte
}

// RoutedKV is a pair assigned to a reducer partition.
type RoutedKV struct {
	Partition int
	KV
}

// Split describes one map task's input. Data is an application payload
// (e.g. a grid.Box slab for array inputs).
type Split struct {
	ID    int
	Hosts []string
	Data  any
}

// Emit delivers one output pair from user code to the framework.
type Emit func(key, value []byte)

// Mapper transforms one input split into intermediate pairs. A fresh Mapper
// is built per task, so implementations may keep per-task state (such as an
// aggregation buffer) without locking.
type Mapper interface {
	Map(ctx *TaskContext, split Split, emit Emit) error
}

// Reducer folds the values of one intermediate key. It is also the
// interface for combiners.
//
// key and values are framework-owned and valid only for the duration of the
// Reduce call — Hadoop's iterator-reuse contract. The streaming reduce path
// recycles the backing memory for the next group; a Reducer that needs a
// key or value beyond the call (e.g. buffering for a Finalizer) must copy
// it.
type Reducer interface {
	Reduce(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(ctx *TaskContext, split Split, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(ctx *TaskContext, split Split, emit Emit) error {
	return f(ctx, split, emit)
}

// Finalizer is an optional Reducer extension: Finish runs after the last
// group of a reduce task, letting reducers that buffer output (e.g. for
// reduce-side re-aggregation of split keys, the follow-up Section IV-B
// sketches) flush their state.
type Finalizer interface {
	Finish(ctx *TaskContext, emit Emit) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error {
	return f(ctx, key, values, emit)
}

// TaskContext carries per-task services to user code.
type TaskContext struct {
	// TaskID identifies the map or reduce task.
	TaskID int
	// Attempt is this execution's attempt number, 0 for the first try.
	// Retries and speculative twins see higher numbers.
	Attempt int
	// IsMap distinguishes map from reduce tasks.
	IsMap bool
	// FS is the job filesystem, for mappers that read their split's data.
	FS *hdfs.FileSystem

	counters   *Counters
	inputBytes int64       // this task's reported input volume
	canceled   func() bool // non-nil when the scheduler may cancel this attempt
}

// Counters exposes this attempt's counters for user-code increments. The
// engine folds them into the job totals only if the attempt wins, so
// retried and speculatively-discarded attempts never double-count.
func (c *TaskContext) Counters() *Counters { return c.counters }

// Canceled reports whether this attempt's result is no longer wanted — the
// job failed fatally elsewhere, or a speculative twin already finished.
// The framework stops accepting emits once this turns true; long-running
// user code may poll it to bail out early.
func (c *TaskContext) Canceled() bool {
	return c.canceled != nil && c.canceled()
}

// CountInput records input consumed by a mapper, feeding both the
// MapInput counters and the task's modeled disk traffic.
func (c *TaskContext) CountInput(records, bytes int64) {
	c.counters.MapInputRecords.Add(records)
	c.counters.MapInputBytes.Add(bytes)
	c.inputBytes += bytes
}

// Job configures one MapReduce execution.
type Job struct {
	// Name labels the job in diagnostics.
	Name string
	// FS is the filesystem for input and output.
	FS *hdfs.FileSystem
	// Splits enumerates the map inputs.
	Splits []Split
	// NewMapper builds a mapper per map task.
	NewMapper func() Mapper
	// NewReducer builds a reducer per reduce task.
	NewReducer func() Reducer
	// NewCombiner, when non-nil, builds the map-side combiner (step 3 of
	// Fig. 1).
	NewCombiner func() Reducer
	// Combine, when non-nil, additionally enables in-node combining: after
	// the map phase, committed map outputs are pooled per node group and
	// runs of equal keys are folded with the configured Monoid before
	// anything is published to the shuffle. See CombineConfig for the
	// grouping, windowing, and byte-identity contract.
	Combine *CombineConfig
	// NumReducers is the reduce-partition count.
	NumReducers int
	// Compare is the intermediate-key sort and grouping comparator.
	Compare func(a, b []byte) int
	// Partition routes one key to a reducer. Ignored when PartitionSplit
	// is set.
	Partition func(key []byte, numReducers int) int
	// PartitionSplit, when set, may split a pair across reducers
	// (Section IV-B, case one). It must emit fragments in key order.
	PartitionSplit func(key, value []byte, numReducers int) []RoutedKV
	// MergeTransform, when set, rewrites each reducer's merged sorted
	// stream before grouping (Section IV-B, case two: overlap splitting).
	// The streaming reduce path feeds it bounded windows of the stream (cut
	// by MergeCut; the whole stream when MergeCut is nil), so the slice
	// signature keeps working without materializing the partition.
	MergeTransform func(pairs []KV) []KV
	// MergeCut, set alongside MergeTransform, builds one cut predicate per
	// reduce attempt. The predicate is fed every merged key in stream order
	// and returns true when that key starts an independent window: the
	// transform's output for everything before it cannot be affected by
	// this key or any later one. Overlap splitting already works in such
	// windows (transitively-overlapping clusters), so the streaming path
	// stays byte-identical while its lookahead stays bounded. Nil keeps
	// correctness for arbitrary transforms by buffering the entire stream
	// as one window.
	MergeCut func() func(key []byte) bool
	// ReferenceReduce selects the historical materialize-then-group reduce
	// path (the whole partition as one in-memory slice) instead of the
	// streaming one. Outputs and payload counters are byte-identical either
	// way; the differential suite and the peak-memory benchmarks run both.
	ReferenceReduce bool
	// MapOutputCodec compresses spill segments ("Map output materialized
	// bytes" is measured after this codec). Nil means no compression.
	MapOutputCodec codec.Codec
	// OutputPath is the HDFS directory for reducer output files.
	OutputPath string
	// SpillBufferBytes bounds the in-memory map output buffer before a
	// sort-and-spill (Hadoop's io.sort.mb). Default 16 MiB.
	SpillBufferBytes int
	// MergeFactor bounds how many segments one merge pass combines
	// (Hadoop's io.sort.factor); more segments than this trigger extra
	// on-disk merge passes whose I/O the cost model charges. Default 10.
	MergeFactor int
	// Parallelism caps concurrently executing tasks. Default 1: tasks run
	// sequentially, which keeps per-task CPU measurements clean for the
	// cost model. Benchmarks wanting wall-clock speed can raise it.
	Parallelism int
	// Retry configures the attempt scheduler: per-task retry budgets,
	// deterministic backoff, and speculative execution. The zero value
	// keeps the historical fail-fast behaviour.
	Retry RetryPolicy
	// Faults optionally injects deterministic failures into task attempts,
	// IFile segments, and codec streams — the harness recovery tests and
	// chaos runs use. Nil disables injection.
	Faults *faults.Injector
	// Shuffle selects the map→reduce segment transport. Nil (or mode "mem")
	// hands committed segments to reducers in-process; the net modes run
	// the full shufflenet data path — per-node servers, CRC-framed chunked
	// responses, deadlines, retries with resume, circuit breakers — over
	// in-process pipes ("net") or loopback TCP ("tcp").
	Shuffle *ShuffleConfig
	// Timeout bounds the whole job's wall-clock time. When it expires, all
	// in-flight attempts (including their backoff and straggler waits) are
	// interrupted and Run returns a *TimeoutError. 0 means no limit.
	Timeout time.Duration
	// Remote, when non-nil, delegates task attempt execution to an external
	// control plane — the cluster coordinator hands each attempt to a worker
	// process as a lease and returns its result (or its loss). The attempt
	// scheduler, retry budgets, speculation, and first-finisher commit run
	// unchanged on the coordinator, so recovered cluster runs stay
	// byte-identical to single-process ones. Mutually exclusive with a
	// networked Shuffle: map output travels through the coordinator's
	// segment channel instead.
	Remote Remote
	// MapCache, when non-nil together with a non-empty CacheKey, lets the
	// run reuse a previously published map phase: before scheduling any map
	// attempts the engine asks the cache for CacheKey, and on a hit restores
	// the published segments, footprints, and map-side counters, skipping
	// the map and combine phases entirely (Result.MapPhaseCached reports
	// this; zero map attempts run). On a miss the job runs normally and, on
	// success, stores its published map state under CacheKey. The caller
	// owns key derivation: a key must cover every input that shapes map
	// output bytes — dataset, splits, transform, codec. Mutually exclusive
	// with Faults: a faulty run's recovery machinery must re-execute real
	// map attempts, and caching its output would mix fault schedules.
	MapCache MapOutputCache
	// CacheKey names this job's map output in MapCache. Empty disables
	// caching even when MapCache is set.
	CacheKey string
	// Obs, when non-nil, records the run: a job → attempt → phase span tree
	// in the tracer (attempt spans carry won/lost/failed/canceled outcomes)
	// and the job counters, attempt-duration histograms, and shuffle
	// transport metrics in the registry. Nil disables all of it; either way
	// the job's output bytes and payload counters are identical.
	Obs *obs.Observer
}

func (j *Job) validate() error {
	switch {
	case j.FS == nil:
		return fmt.Errorf("mapreduce: job %q needs FS", j.Name)
	case len(j.Splits) == 0:
		return fmt.Errorf("mapreduce: job %q has no splits", j.Name)
	case j.NewMapper == nil || j.NewReducer == nil:
		return fmt.Errorf("mapreduce: job %q needs mapper and reducer", j.Name)
	case j.NumReducers <= 0:
		return fmt.Errorf("mapreduce: job %q needs NumReducers > 0", j.Name)
	case j.Compare == nil:
		return fmt.Errorf("mapreduce: job %q needs Compare", j.Name)
	case j.Partition == nil && j.PartitionSplit == nil:
		return fmt.Errorf("mapreduce: job %q needs Partition or PartitionSplit", j.Name)
	case j.OutputPath == "":
		return fmt.Errorf("mapreduce: job %q needs OutputPath", j.Name)
	}
	if j.Shuffle != nil {
		if err := j.Shuffle.validate(); err != nil {
			return fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
		}
	}
	if j.Combine != nil {
		if j.Combine.Combiner == nil {
			return fmt.Errorf("mapreduce: job %q: Combine needs a Combiner", j.Name)
		}
		if j.Combine.Nodes < 0 {
			return fmt.Errorf("mapreduce: job %q: Combine.Nodes must be >= 0, got %d", j.Name, j.Combine.Nodes)
		}
	}
	if j.MapCache != nil && j.CacheKey != "" && j.Faults != nil {
		return fmt.Errorf("mapreduce: job %q: MapCache and Faults are mutually exclusive (cached map output would mix fault schedules)", j.Name)
	}
	if j.Remote != nil && j.Shuffle.networked() {
		return fmt.Errorf("mapreduce: job %q: remote execution and a networked shuffle are mutually exclusive (map output travels through the coordinator)", j.Name)
	}
	return nil
}

func (j *Job) spillLimit() int {
	if j.SpillBufferBytes > 0 {
		return j.SpillBufferBytes
	}
	return 16 << 20
}

func (j *Job) mergeFactor() int {
	if j.MergeFactor >= 2 {
		return j.MergeFactor
	}
	return 10
}

func (j *Job) parallelism() int {
	if j.Parallelism > 0 {
		return j.Parallelism
	}
	return 1
}

func (j *Job) codec() codec.Codec {
	if j.MapOutputCodec != nil {
		return j.MapOutputCodec
	}
	return codec.None
}
