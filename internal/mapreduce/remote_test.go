package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"scikey/internal/hdfs"
)

// loopbackRemote implements Remote by running attempts in-process through
// the same RunMapAttempt/RunReduceAttempt entry points a worker process
// uses, against a separate "worker-side" job instance with its own
// filesystem — the cluster data path minus the TCP. failOnce lists attempt
// coordinates ("map/task/attempt") whose first execution is reported as a
// lost lease after the work ran, charging the footprint as waste exactly
// like a worker killed after Started.
type loopbackRemote struct {
	workerJob func() *Job

	mu   sync.Mutex
	segs map[int]*struct {
		attempt int
		parts   [][]byte
	}
	failOnce map[string]bool
	runs     int
}

func newLoopbackRemote(workerJob func() *Job) *loopbackRemote {
	return &loopbackRemote{
		workerJob: workerJob,
		segs: make(map[int]*struct {
			attempt int
			parts   [][]byte
		}),
		failOnce: make(map[string]bool),
	}
}

func (r *loopbackRemote) RunRemote(phase string, task, attempt int, canceled func() bool) (*RemoteResult, error) {
	r.mu.Lock()
	r.runs++
	r.mu.Unlock()
	job := r.workerJob()
	var rr *RemoteResult
	var err error
	switch phase {
	case PhaseMap:
		rr, err = RunMapAttempt(job, task, attempt, canceled)
	case PhaseReduce:
		rr, err = RunReduceAttempt(job, task, attempt, canceled, r.fetch)
	default:
		return nil, fmt.Errorf("unknown phase %q", phase)
	}
	key := fmt.Sprintf("%s/%d/%d", phase, task, attempt)
	r.mu.Lock()
	lose := r.failOnce[key]
	delete(r.failOnce, key)
	r.mu.Unlock()
	if lose {
		// The worker did the work and died before reporting: the
		// coordinator sees only a lapsed lease plus the footprint charge.
		return &RemoteResult{Footprint: rr.Footprint, WallSeconds: rr.WallSeconds},
			errors.New("lease expired: worker heartbeat lapsed")
	}
	return rr, err
}

func (r *loopbackRemote) PublishRemote(mapTask, attempt int, parts [][]byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.segs[mapTask]; ok && e.attempt > attempt {
		return
	}
	r.segs[mapTask] = &struct {
		attempt int
		parts   [][]byte
	}{attempt, parts}
}

func (r *loopbackRemote) fetch(mapTask, part int) ([]byte, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.segs[mapTask]
	if !ok {
		return nil, 0, fmt.Errorf("map task %d not published", mapTask)
	}
	return e.parts[part], e.attempt, nil
}

var remoteDocs = []string{
	"the quick brown fox jumps over the lazy dog",
	"pack my box with five dozen liquor jugs",
	"the five boxing wizards jump quickly",
	"how vexingly quick daft zebras jump",
}

// runRemoteJob runs the word-count job with a loopback Remote and returns
// the result plus the coordinator-side filesystem.
func runRemoteJob(t *testing.T, par int, failOnce ...string) (*hdfs.FileSystem, *Result, *loopbackRemote) {
	t.Helper()
	fs := testFS()
	job := wordCountJob(fs, remoteDocs, 3, true)
	job.Parallelism = par
	job.Retry = RetryPolicy{MaxAttempts: 3}
	remote := newLoopbackRemote(func() *Job {
		return wordCountJob(testFS(), remoteDocs, 3, true)
	})
	for _, k := range failOnce {
		remote.failOnce[k] = true
	}
	job.Remote = remote
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	return fs, res, remote
}

// remotePayloadCounters is the prefix of the snapshot rows that describe
// the data path (as opposed to scheduler bookkeeping like retry counts):
// everything before MapAttemptsFailed.
func remotePayloadCounters(res *Result) []*Counter {
	rows := res.Counters.rows()
	for i, r := range rows {
		if r == &res.Counters.MapAttemptsFailed {
			return rows[:i]
		}
	}
	return rows
}

// outputsAndCounters fingerprints a run: every output file's bytes plus the
// full payload-counter snapshot.
func outputsAndCounters(t *testing.T, fs *hdfs.FileSystem, res *Result) ([][]byte, []int64) {
	t.Helper()
	outs := make([][]byte, len(res.OutputPaths))
	for i, p := range res.OutputPaths {
		data, err := fs.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = data
	}
	return outs, res.Counters.Snapshot()
}

// TestRemoteExecutionByteIdentical: the remote data path (attempts executed
// against separate per-worker job instances, segments travelling through
// the coordinator's store) produces exactly the bytes and payload counters
// of the in-process reference run.
func TestRemoteExecutionByteIdentical(t *testing.T) {
	refFS := testFS()
	refJob := wordCountJob(refFS, remoteDocs, 3, true)
	refRes, err := Run(refJob)
	if err != nil {
		t.Fatal(err)
	}
	refOuts, refCounts := outputsAndCounters(t, refFS, refRes)

	for _, par := range []int{1, 3} {
		fs, res, remote := runRemoteJob(t, par)
		outs, counts := outputsAndCounters(t, fs, res)
		for i := range refOuts {
			if !bytes.Equal(outs[i], refOuts[i]) {
				t.Errorf("par=%d: output %d differs from in-process run (%d vs %d bytes)",
					par, i, len(outs[i]), len(refOuts[i]))
			}
		}
		for i := range refCounts {
			if counts[i] != refCounts[i] {
				t.Errorf("par=%d: counter %d = %d, want %d", par, i, counts[i], refCounts[i])
			}
		}
		wantRuns := len(remoteDocs) + 3 // every attempt ran remotely
		if remote.runs != wantRuns {
			t.Errorf("par=%d: %d remote runs, want %d", par, remote.runs, wantRuns)
		}
		if len(res.WastedMapTasks)+len(res.WastedReduceTasks) != 0 {
			t.Errorf("par=%d: clean run charged waste", par)
		}
	}
}

// TestRemoteLeaseLossRetriesAndChargesWaste: a lease lost mid-map and one
// lost mid-reduce retry under fresh attempts; output stays byte-identical
// and the lost attempts' footprints land in the waste ledger.
func TestRemoteLeaseLossRetriesAndChargesWaste(t *testing.T) {
	refFS, refRes, _ := runRemoteJob(t, 1)
	refOuts, refCounts := outputsAndCounters(t, refFS, refRes)

	fs, res, _ := runRemoteJob(t, 2, "map/1/0", "reduce/2/0")
	outs, counts := outputsAndCounters(t, fs, res)
	for i := range refOuts {
		if !bytes.Equal(outs[i], refOuts[i]) {
			t.Errorf("output %d differs after lease losses", i)
		}
	}
	// Payload counters (everything up to the scheduler bookkeeping rows)
	// must match the clean run exactly: lost attempts never double-count.
	payload := len(remotePayloadCounters(res))
	for i := 0; i < payload; i++ {
		if counts[i] != refCounts[i] {
			t.Errorf("counter %d = %d, want %d (lost attempts must not double-count)", i, counts[i], refCounts[i])
		}
	}
	if res.Counters.MapAttemptsFailed.Value() != 1 || res.Counters.ReduceAttemptsFailed.Value() != 1 {
		t.Errorf("failure bookkeeping = %d map, %d reduce; want 1 and 1",
			res.Counters.MapAttemptsFailed.Value(), res.Counters.ReduceAttemptsFailed.Value())
	}
	if len(res.WastedMapTasks) != 1 || len(res.WastedReduceTasks) != 1 {
		t.Fatalf("waste ledger = %d map, %d reduce entries; want 1 and 1",
			len(res.WastedMapTasks), len(res.WastedReduceTasks))
	}
	if res.WastedMapTasks[0].CPUSeconds <= 0 && res.WastedMapTasks[0].DiskBytes <= 0 {
		t.Error("lost map attempt charged an empty footprint")
	}
}

// TestRemoteExhaustedBudgetFails: a lease that keeps lapsing consumes the
// retry budget and surfaces as an AttemptError naming the task.
func TestRemoteExhaustedBudgetFails(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, remoteDocs, 2, false)
	job.Retry = RetryPolicy{MaxAttempts: 2}
	remote := newLoopbackRemote(func() *Job {
		return wordCountJob(testFS(), remoteDocs, 2, false)
	})
	remote.failOnce["map/0/0"] = true
	remote.failOnce["map/0/1"] = true
	job.Remote = remote
	_, err := Run(job)
	var ae *AttemptError
	if !errors.As(err, &ae) || ae.Phase != "map" || ae.Task != 0 {
		t.Fatalf("exhausted budget returned %v, want AttemptError for map task 0", err)
	}
	if !strings.Contains(err.Error(), "lease expired") {
		t.Errorf("error %v does not surface the lease loss", err)
	}
}

// TestRemoteRejectsNetworkedShuffle: the two transports are mutually
// exclusive; validation must say so before any task runs.
func TestRemoteRejectsNetworkedShuffle(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, remoteDocs, 2, false)
	job.Shuffle = &ShuffleConfig{Mode: "net"}
	job.Remote = newLoopbackRemote(func() *Job { return nil })
	_, err := Run(job)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("networked shuffle + remote accepted: %v", err)
	}
}
