package mapreduce_test

import (
	"fmt"

	"scikey/internal/mapreduce"
)

// topKReducer buffers the heaviest group across a reduce task and emits it
// from Finish — the pattern that makes the iterator-reuse contract bite.
type topKReducer struct {
	bestKey []byte
	best    int
}

// Reduce demonstrates the Reducer iterator-reuse contract: key and values
// alias framework-owned memory that is recycled for the next group, so a
// reducer that retains either past the call MUST copy. Storing key itself
// (r.bestKey = key) would leave bestKey pointing at bytes the engine
// overwrites; the append below takes an owned copy. TestReducerRetention is
// the vet-style check that scans the tree for the uncopied form.
func (r *topKReducer) Reduce(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emit) error {
	if len(values) > r.best {
		r.best = len(values)
		r.bestKey = append(r.bestKey[:0], key...) // copy: key is only valid during this call
	}
	return nil
}

// Finish implements mapreduce.Finalizer, emitting the buffered group.
func (r *topKReducer) Finish(ctx *mapreduce.TaskContext, emit mapreduce.Emit) error {
	if r.bestKey != nil {
		emit(r.bestKey, []byte{byte(r.best)})
	}
	return nil
}

// ExampleReducer shows a Reducer that buffers state across groups under the
// iterator-reuse contract: retained keys are copied, never aliased.
func ExampleReducer() {
	r := &topKReducer{}
	// The engine calls Reduce once per group; the backing array of key is
	// reused between calls, which is exactly why Reduce must copy.
	backing := []byte("aa")
	_ = r.Reduce(nil, backing, [][]byte{{1}, {2}}, nil)
	copy(backing, "zz") // the engine recycles the buffer for the next group
	_ = r.Reduce(nil, backing, [][]byte{{3}}, nil)
	_ = r.Finish(nil, func(k, v []byte) { fmt.Printf("%s %d\n", k, v[0]) })
	// Output: aa 2
}
