package mapreduce

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"scikey/internal/hdfs"
	"scikey/internal/obs"
)

// memCache is the reference MapOutputCache: an in-memory map with Clone on
// both sides so cached snapshots never alias job memory.
type memCache struct {
	mu   sync.Mutex
	m    map[string]*MapPhaseSnapshot
	hits int
	puts int
}

func (c *memCache) Get(key string) (*MapPhaseSnapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.hits++
	return s.Clone(), true
}

func (c *memCache) Put(key string, snap *MapPhaseSnapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*MapPhaseSnapshot)
	}
	c.m[key] = snap.Clone()
	c.puts++
	return nil
}

var cacheDocs = []string{
	"the quick brown fox jumps over the lazy dog",
	"pack my box with five dozen liquor jugs",
	"the five boxing wizards jump quickly over the dog",
	"sphinx of black quartz judge my vow the fox",
	"how vexingly quick daft zebras jump over jugs",
	"the dog and the fox box quickly with the wizards",
}

// rawOutputs reads each output file's exact bytes.
func rawOutputs(t *testing.T, fs *hdfs.FileSystem, paths []string) [][]byte {
	t.Helper()
	out := make([][]byte, len(paths))
	for i, p := range paths {
		data, err := fs.ReadAll(p)
		if err != nil {
			t.Fatalf("read output %s: %v", p, err)
		}
		out[i] = data
	}
	return out
}

// payloadSnapshot extracts the counters that must be byte-identical between
// a cold run and a cache-hit run: everything except the scheduling and
// shuffle-transport rows, which legitimately differ when no map attempts run.
func payloadSnapshot(c *Counters) map[string]int64 {
	return map[string]int64{
		"MapInputRecords":            c.MapInputRecords.Value(),
		"MapInputBytes":              c.MapInputBytes.Value(),
		"MapOutputRecords":           c.MapOutputRecords.Value(),
		"MapOutputBytes":             c.MapOutputBytes.Value(),
		"MapOutputKeyBytes":          c.MapOutputKeyBytes.Value(),
		"MapOutputValueBytes":        c.MapOutputValueBytes.Value(),
		"MapOutputMaterializedBytes": c.MapOutputMaterializedBytes.Value(),
		"CombineInputRecords":        c.CombineInputRecords.Value(),
		"CombineOutputRecords":       c.CombineOutputRecords.Value(),
		"SpilledRecords":             c.SpilledRecords.Value(),
		"ReduceShuffleBytes":         c.ReduceShuffleBytes.Value(),
		"ReduceInputGroups":          c.ReduceInputGroups.Value(),
		"ReduceInputRecords":         c.ReduceInputRecords.Value(),
		"ReduceOutputRecords":        c.ReduceOutputRecords.Value(),
		"ReduceOutputBytes":          c.ReduceOutputBytes.Value(),
		"CombineMergedRecords":       c.CombineMergedRecords.Value(),
		"CombineEmittedRecords":      c.CombineEmittedRecords.Value(),
		"CombineSavedBytes":          c.CombineSavedBytes.Value(),
	}
}

// mapAttemptCount reads the map-phase attempt histogram — the observable
// proof that a cache hit scheduled zero map attempts.
func mapAttemptCount(o *obs.Observer) int64 {
	return o.R().Histogram("scikey_attempt_seconds",
		"Duration of task attempts by phase", "seconds", nil, obs.L("phase", "map")).Count()
}

// TestMapCacheDifferential: a second run under the same cache key must skip
// the map phase (zero map attempts) and produce output bytes and payload
// counters identical to the cold run — across the plain, map-side-combiner,
// in-node-combine, and networked-shuffle configurations.
func TestMapCacheDifferential(t *testing.T) {
	cases := []struct {
		name string
		mut  func(job *Job)
	}{
		{"plain", func(job *Job) {}},
		{"map_side_combiner", func(job *Job) { job.NewCombiner = job.NewReducer }},
		{"in_node_combine", func(job *Job) {
			job.Combine = &CombineConfig{Combiner: SumInt32, Nodes: 2}
		}},
		{"net_shuffle", func(job *Job) {
			job.Shuffle = &ShuffleConfig{Mode: ShuffleNet, Nodes: 3}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cache := &memCache{}
			run := func() (*Result, [][]byte, *obs.Observer) {
				fs := testFS()
				job := wordCountJob(fs, cacheDocs, 3, false)
				tc.mut(job)
				job.MapCache = cache
				job.CacheKey = "wordcount/" + tc.name
				o := obs.New()
				job.Obs = o
				res, err := Run(job)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				return res, rawOutputs(t, fs, res.OutputPaths), o
			}

			cold, coldOut, coldObs := run()
			if cold.MapPhaseCached {
				t.Fatal("cold run reported MapPhaseCached")
			}
			if cache.puts != 1 {
				t.Fatalf("cold run made %d cache puts; want 1", cache.puts)
			}
			if n := mapAttemptCount(coldObs); n != int64(len(cacheDocs)) {
				t.Fatalf("cold run recorded %d map attempts; want %d", n, len(cacheDocs))
			}

			warm, warmOut, warmObs := run()
			if !warm.MapPhaseCached {
				t.Fatal("warm run did not report MapPhaseCached")
			}
			if cache.hits != 1 {
				t.Fatalf("cache hits = %d after warm run; want 1", cache.hits)
			}
			if cache.puts != 1 {
				t.Fatalf("warm run re-put into the cache (puts = %d)", cache.puts)
			}
			if n := mapAttemptCount(warmObs); n != 0 {
				t.Fatalf("warm run recorded %d map attempts; want 0", n)
			}

			if len(coldOut) != len(warmOut) {
				t.Fatalf("output file count differs: cold %d warm %d", len(coldOut), len(warmOut))
			}
			for i := range coldOut {
				if !bytes.Equal(coldOut[i], warmOut[i]) {
					t.Fatalf("output file %d differs between cold and warm run", i)
				}
			}
			cp, wp := payloadSnapshot(cold.Counters), payloadSnapshot(warm.Counters)
			for k, v := range cp {
				if wp[k] != v {
					t.Errorf("counter %s: cold %d warm %d", k, v, wp[k])
				}
			}

			// The cost-model inputs replay too: identical footprints mean
			// identical estimates, so admission control prices hot and cold
			// queries off the same samples.
			if len(warm.MapTasks) != len(cold.MapTasks) {
				t.Fatalf("MapTasks length differs: cold %d warm %d", len(cold.MapTasks), len(warm.MapTasks))
			}
			for i := range cold.MapTasks {
				if cold.MapTasks[i] != warm.MapTasks[i] {
					t.Errorf("MapTasks[%d] differs: cold %+v warm %+v", i, cold.MapTasks[i], warm.MapTasks[i])
				}
			}
		})
	}
}

// TestMapCacheShapeMismatchIsMiss: a snapshot stored under a colliding key
// for a different job shape must be ignored, not crash the run.
func TestMapCacheShapeMismatchIsMiss(t *testing.T) {
	cache := &memCache{}
	fs := testFS()
	job := wordCountJob(fs, cacheDocs, 3, false)
	job.MapCache, job.CacheKey = cache, "shared-key"
	if _, err := Run(job); err != nil {
		t.Fatalf("cold run: %v", err)
	}

	// Same key, fewer reducers: shape mismatch → miss → fresh run + re-put.
	fs2 := testFS()
	job2 := wordCountJob(fs2, cacheDocs, 2, false)
	job2.MapCache, job2.CacheKey = cache, "shared-key"
	res, err := Run(job2)
	if err != nil {
		t.Fatalf("mismatched run: %v", err)
	}
	if res.MapPhaseCached {
		t.Fatal("shape-mismatched snapshot was restored")
	}
	if cache.puts != 2 {
		t.Fatalf("cache puts = %d; want 2 (mismatch overwrites)", cache.puts)
	}
}

// TestMapCacheFaultsRejected: caching plus fault injection must fail
// validation rather than cache a faulty run's output.
func TestMapCacheFaultsRejected(t *testing.T) {
	job := wordCountJob(testFS(), cacheDocs, 2, false)
	job.MapCache, job.CacheKey = &memCache{}, "k"
	job.Faults = mustInjector(t, "map:0:error@0")
	_, err := Run(job)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Run with MapCache+Faults = %v; want mutual-exclusion error", err)
	}
}
