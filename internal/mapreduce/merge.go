package mapreduce

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"

	"scikey/internal/codec"
	"scikey/internal/faults"
	"scikey/internal/ifile"
)

// segment is one sorted run of intermediate pairs in its on-disk form
// (IFile framing, optionally compressed). Final map output segments carry
// their provenance (src, attempt) so a reducer that detects corruption can
// name — and re-execute — the producing map attempt; engine-internal runs
// (spills, merge passes) use src -1.
type segment struct {
	data    []byte
	records int64
	src     int // producing map task, or -1 for engine-internal segments
	attempt int // producing map attempt (meaningful when src >= 0)
}

// readEnv bundles what the segment read path needs: the codec, the optional
// fault injector, and the reading attempt's coordinates for fault rules and
// corruption reports.
type readEnv struct {
	codec codec.Codec
	inj   *faults.Injector
	// attempt is the reading (reduce) attempt, for codec-site fault rules.
	attempt int
	// part is the reducer partition being read, or -1 on the map side.
	part int
}

// wrapErr classifies a segment read error. Injected transient errors pass
// through (the scheduler retries the reading attempt); anything else from a
// provenance-tagged segment — CRC mismatch, broken framing, codec decode
// failure — is corruption of that map task's output.
func (e readEnv) wrapErr(src, srcAttempt int, err error) error {
	if err == nil || src < 0 || faults.IsTransient(err) {
		return err
	}
	return &ErrCorruptSegment{MapTask: src, Partition: e.part, Attempt: srcAttempt, Err: err}
}

// writeSegment encodes sorted pairs through the codec into IFile form.
func writeSegment(pairs []KV, c codec.Codec) (segment, error) {
	var buf bytes.Buffer
	cw := c.NewWriter(&buf)
	iw := ifile.NewWriter(cw)
	for _, p := range pairs {
		if err := iw.Append(p.Key, p.Value); err != nil {
			return segment{}, err
		}
	}
	if err := iw.Close(); err != nil {
		return segment{}, err
	}
	if err := cw.Close(); err != nil {
		return segment{}, err
	}
	return segment{data: buf.Bytes(), records: int64(len(pairs)), src: -1}, nil
}

// segIter streams the records of one segment.
type segIter struct {
	rc  io.ReadCloser
	ir  *ifile.Reader
	env readEnv
	// src/attempt are the segment's provenance, for corruption reports.
	src        int
	srcAttempt int
	// cur holds copies of the current record (the ifile reader reuses its
	// buffers).
	cur KV
	ok  bool
	err error
}

func openSegment(seg segment, env readEnv) (*segIter, error) {
	var raw io.Reader = bytes.NewReader(seg.data)
	raw = env.inj.WrapSegmentRead(seg.src, env.attempt, len(seg.data), raw)
	rc, err := env.codec.NewReader(raw)
	if err != nil {
		return nil, env.wrapErr(seg.src, seg.attempt, err)
	}
	it := &segIter{rc: rc, ir: ifile.NewReader(rc), env: env, src: seg.src, srcAttempt: seg.attempt}
	it.advance()
	return it, it.err
}

func (it *segIter) advance() {
	k, v, err := it.ir.Next()
	if err == io.EOF {
		it.ok = false
		it.rc.Close()
		return
	}
	if err != nil {
		it.err = it.env.wrapErr(it.src, it.srcAttempt, err)
		it.ok = false
		it.rc.Close()
		return
	}
	it.cur = KV{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)}
	it.ok = true
}

// mergeHeap orders segment iterators by their current key.
type mergeHeap struct {
	its []*segIter
	cmp func(a, b []byte) int
}

func (h *mergeHeap) Len() int { return len(h.its) }

func (h *mergeHeap) Less(i, j int) bool {
	return h.cmp(h.its[i].cur.Key, h.its[j].cur.Key) < 0
}

func (h *mergeHeap) Swap(i, j int) { h.its[i], h.its[j] = h.its[j], h.its[i] }

func (h *mergeHeap) Push(x any) { h.its = append(h.its, x.(*segIter)) }

func (h *mergeHeap) Pop() any {
	old := h.its
	n := len(old)
	it := old[n-1]
	h.its = old[:n-1]
	return it
}

// mergeSegments k-way merges sorted segments into one sorted in-memory run,
// the reducer-side "merge sort" of Fig. 1 step 5. Reading every segment to
// its end also verifies each stream's IFile CRC, so corruption anywhere in
// a fetched segment surfaces here as an ErrCorruptSegment.
func mergeSegments(segs []segment, env readEnv, cmp func(a, b []byte) int) ([]KV, error) {
	h := &mergeHeap{cmp: cmp}
	var total int64
	for _, s := range segs {
		if len(s.data) == 0 {
			continue
		}
		it, err := openSegment(s, env)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: opening segment: %w", err)
		}
		if it.ok {
			h.its = append(h.its, it)
		}
		total += s.records
	}
	heap.Init(h)
	out := make([]KV, 0, total)
	for h.Len() > 0 {
		it := h.its[0]
		out = append(out, it.cur)
		it.advance()
		if it.err != nil {
			return nil, it.err
		}
		if it.ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out, nil
}

// mergeDown repeatedly merges batches of up to factor segments into single
// segments until at most target remain — Hadoop's multi-pass on-disk merge
// (io.sort.factor), the "multiple on-disk sort phases" of Fig. 1 step 5.
// Every intermediate pass re-reads and re-writes its inputs; acct receives
// those byte counts so the cost model sees why bulky intermediate data
// hurts twice.
func mergeDown(segs []segment, env readEnv, cmp func(a, b []byte) int, factor, target int, acct func(read, written, records int64)) ([]segment, error) {
	if factor < 2 {
		factor = 2
	}
	if target < 1 {
		target = 1
	}
	for len(segs) > target {
		n := min(factor, len(segs))
		// Hadoop merges the smallest segments first to minimize rewriting.
		sortSegmentsBySize(segs)
		batch := segs[:n]
		var read int64
		for _, s := range batch {
			read += int64(len(s.data))
		}
		pairs, err := mergeSegments(batch, env, cmp)
		if err != nil {
			return nil, err
		}
		merged, err := writeSegment(pairs, env.codec)
		if err != nil {
			return nil, err
		}
		if acct != nil {
			acct(read, int64(len(merged.data)), merged.records)
		}
		segs = append([]segment{merged}, segs[n:]...)
	}
	return segs, nil
}

func sortSegmentsBySize(segs []segment) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && len(segs[j].data) < len(segs[j-1].data); j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// groupReduce walks a sorted run, invoking red once per group of equal keys
// (per cmp), as Hadoop's reduce-phase grouping iterator does. It aborts
// between groups when the attempt is canceled.
func groupReduce(ctx *TaskContext, pairs []KV, cmp func(a, b []byte) int, red Reducer, emit Emit, counters *Counters, isCombine bool) error {
	for i := 0; i < len(pairs); {
		if ctx.Canceled() {
			return errAttemptCanceled
		}
		j := i + 1
		for j < len(pairs) && cmp(pairs[i].Key, pairs[j].Key) == 0 {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, pairs[k].Value)
		}
		if counters != nil && !isCombine {
			counters.ReduceInputGroups.Add(1)
		}
		if err := red.Reduce(ctx, pairs[i].Key, values, emit); err != nil {
			return err
		}
		i = j
	}
	return nil
}
