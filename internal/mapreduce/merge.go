package mapreduce

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"sync"

	"scikey/internal/bufpool"
	"scikey/internal/codec"
	"scikey/internal/faults"
	"scikey/internal/ifile"
)

// segment is one sorted run of intermediate pairs in its on-disk form
// (IFile framing, optionally compressed). Final map output segments carry
// their provenance (src, attempt) so a reducer that detects corruption can
// name — and re-execute — the producing map attempt; engine-internal runs
// (spills, merge passes) use src -1.
type segment struct {
	data    []byte
	records int64
	src     int // producing map task, or -1 for engine-internal segments
	attempt int // producing map attempt (meaningful when src >= 0)
}

// readEnv bundles what the segment read path needs: the codec, the optional
// fault injector, and the reading attempt's coordinates for fault rules and
// corruption reports.
type readEnv struct {
	codec codec.Codec
	inj   *faults.Injector
	// attempt is the reading (reduce) attempt, for codec-site fault rules.
	attempt int
	// part is the reducer partition being read, or -1 on the map side.
	part int
	// arena, when non-nil, receives the record copies the merge produces
	// instead of per-record heap allocations. The caller owns the arena's
	// lifetime: merged pairs are only valid until it is reset or recycled.
	arena *kvArena
}

// kvArena bump-allocates record copies into one contiguous buffer,
// replacing the two heap allocations per merged record on the shuffle hot
// path. Growth abandons the old backing array to the already-handed-out
// slices (they stay valid), so reset/recycle only after every pair copied
// from the arena is dead.
type kvArena struct{ buf []byte }

func (a *kvArena) copy(p []byte) []byte {
	n := len(a.buf)
	a.buf = append(a.buf, p...)
	return a.buf[n : n+len(p) : n+len(p)]
}

func (a *kvArena) reset() { a.buf = a.buf[:0] }

// writerPools / readerPools cache codec stream state (a gzip writer alone is
// ~800 KiB) per codec instance across the thousands of segments a job
// writes and reads.
var (
	writerPools sync.Map // codec.Codec -> *codec.WriterPool
	readerPools sync.Map // codec.Codec -> *codec.ReaderPool
)

func writerPoolFor(c codec.Codec) *codec.WriterPool {
	if v, ok := writerPools.Load(c); ok {
		return v.(*codec.WriterPool)
	}
	v, _ := writerPools.LoadOrStore(c, codec.NewWriterPool(c))
	return v.(*codec.WriterPool)
}

func readerPoolFor(c codec.Codec) *codec.ReaderPool {
	if v, ok := readerPools.Load(c); ok {
		return v.(*codec.ReaderPool)
	}
	v, _ := readerPools.LoadOrStore(c, codec.NewReaderPool(c))
	return v.(*codec.ReaderPool)
}

// wrapErr classifies a segment read error. Injected transient errors pass
// through (the scheduler retries the reading attempt); anything else from a
// provenance-tagged segment — CRC mismatch, broken framing, codec decode
// failure — is corruption of that map task's output.
func (e readEnv) wrapErr(src, srcAttempt int, err error) error {
	if err == nil || src < 0 || faults.IsTransient(err) {
		return err
	}
	return &ErrCorruptSegment{MapTask: src, Partition: e.part, Attempt: srcAttempt, Err: err}
}

// appendWriter is an io.Writer over a growable byte slice, the pooled
// replacement for a per-segment bytes.Buffer.
type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// segWriterState bundles the per-writeSegment scaffolding (output sink and
// IFile framing state) so the steady-state spill/merge loop allocates only
// the segment bytes it actually keeps.
type segWriterState struct {
	aw appendWriter
	iw ifile.Writer
}

var segWriterStatePool = sync.Pool{New: func() any { return new(segWriterState) }}

// writeSegment encodes sorted pairs through the codec into IFile form. The
// returned segment's storage comes from the buffer pool; hand it to
// recycleSegment once it is merged away.
func writeSegment(pairs []KV, c codec.Codec) (segment, error) {
	// Upper-bound the encoded size (payload + max framing + trailer) so the
	// pooled output buffer never regrows through unpooled reallocations.
	est := ifile.TrailerLen
	for _, p := range pairs {
		est += len(p.Key) + len(p.Value) + ifile.RecordOverhead(len(p.Key), len(p.Value))
	}
	sw := segWriterStatePool.Get().(*segWriterState)
	sw.aw.buf = bufpool.Get(est)
	cw := writerPoolFor(c).Get(&sw.aw)
	sw.iw.Reset(cw)
	fail := func(err error) (segment, error) {
		// Mid-stream writers carry unknown state; drop rather than pool.
		bufpool.Put(sw.aw.buf)
		sw.aw.buf = nil
		segWriterStatePool.Put(sw)
		return segment{}, err
	}
	for _, p := range pairs {
		if err := sw.iw.Append(p.Key, p.Value); err != nil {
			return fail(err)
		}
	}
	if err := sw.iw.Close(); err != nil {
		return fail(err)
	}
	if err := cw.Close(); err != nil {
		return fail(err)
	}
	writerPoolFor(c).Put(cw)
	data := sw.aw.buf
	sw.aw.buf = nil
	segWriterStatePool.Put(sw)
	return segment{data: data, records: int64(len(pairs)), src: -1}, nil
}

// recycleSegment returns an engine-internal segment's backing storage to
// the buffer pool. Final map outputs (src >= 0) are never recycled: retried
// and speculative reduce attempts re-read them.
func recycleSegment(seg segment) {
	if seg.src < 0 {
		bufpool.Put(seg.data)
	}
}

// segIter streams the records of one segment. Iterators are pooled: the
// embedded bytes.Reader, IFile reader (with its buffered reader and
// key/value scratch) and the codec reader survive from segment to segment.
type segIter struct {
	br  bytes.Reader
	rc  io.ReadCloser
	ir  ifile.Reader
	env readEnv
	// src/attempt are the segment's provenance, for corruption reports.
	src        int
	srcAttempt int
	// cur holds copies of the current record (the ifile reader reuses its
	// buffers).
	cur KV
	ok  bool
	err error
}

var segIterPool = sync.Pool{New: func() any { return new(segIter) }}

func openSegment(seg segment, env readEnv) (*segIter, error) {
	it := segIterPool.Get().(*segIter)
	it.br.Reset(seg.data)
	var raw io.Reader = &it.br
	raw = env.inj.WrapSegmentRead(seg.src, env.attempt, len(seg.data), raw)
	rc, err := readerPoolFor(env.codec).Get(raw)
	if err != nil {
		it.release()
		return nil, env.wrapErr(seg.src, seg.attempt, err)
	}
	it.rc = rc
	it.ir.Reset(rc)
	it.env = env
	it.src, it.srcAttempt = seg.src, seg.attempt
	it.err = nil
	it.advance()
	return it, it.err
}

// release returns a cleanly-exhausted iterator (and its codec reader) to
// the pools. It must not be called while cur is still referenced.
func (it *segIter) release() {
	if it.rc != nil {
		readerPoolFor(it.env.codec).Put(it.rc)
		it.rc = nil
	}
	it.env = readEnv{}
	it.cur = KV{}
	segIterPool.Put(it)
}

func (it *segIter) advance() {
	k, v, err := it.ir.Next()
	if err == io.EOF {
		it.ok = false
		it.rc.Close()
		return
	}
	if err != nil {
		it.err = it.env.wrapErr(it.src, it.srcAttempt, err)
		it.ok = false
		it.rc.Close()
		return
	}
	if a := it.env.arena; a != nil {
		it.cur = KV{Key: a.copy(k), Value: a.copy(v)}
	} else {
		it.cur = KV{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)}
	}
	it.ok = true
}

// mergeHeap orders segment iterators by their current key.
type mergeHeap struct {
	its []*segIter
	cmp func(a, b []byte) int
}

func (h *mergeHeap) Len() int { return len(h.its) }

func (h *mergeHeap) Less(i, j int) bool {
	return h.cmp(h.its[i].cur.Key, h.its[j].cur.Key) < 0
}

func (h *mergeHeap) Swap(i, j int) { h.its[i], h.its[j] = h.its[j], h.its[i] }

func (h *mergeHeap) Push(x any) { h.its = append(h.its, x.(*segIter)) }

func (h *mergeHeap) Pop() any {
	old := h.its
	n := len(old)
	it := old[n-1]
	h.its = old[:n-1]
	return it
}

// mergeSegments k-way merges sorted segments into one sorted in-memory run,
// the reducer-side "merge sort" of Fig. 1 step 5. Reading every segment to
// its end also verifies each stream's IFile CRC, so corruption anywhere in
// a fetched segment surfaces here as an ErrCorruptSegment.
func mergeSegments(segs []segment, env readEnv, cmp func(a, b []byte) int) ([]KV, error) {
	h := &mergeHeap{cmp: cmp}
	var total int64
	for _, s := range segs {
		if len(s.data) == 0 {
			continue
		}
		it, err := openSegment(s, env)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: opening segment: %w", err)
		}
		if it.ok {
			h.its = append(h.its, it)
		} else {
			it.release()
		}
		total += s.records
	}
	heap.Init(h)
	out := make([]KV, 0, total)
	for h.Len() > 0 {
		it := h.its[0]
		out = append(out, it.cur)
		it.advance()
		if it.err != nil {
			return nil, it.err
		}
		if it.ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h).(*segIter).release()
		}
	}
	return out, nil
}

// mergeDown repeatedly merges batches of up to factor segments into single
// segments until at most target remain — Hadoop's multi-pass on-disk merge
// (io.sort.factor), the "multiple on-disk sort phases" of Fig. 1 step 5.
// Every intermediate pass re-reads and re-writes its inputs; acct receives
// those byte counts so the cost model sees why bulky intermediate data
// hurts twice.
func mergeDown(segs []segment, env readEnv, cmp func(a, b []byte) int, factor, target int, acct func(read, written, records int64)) ([]segment, error) {
	if factor < 2 {
		factor = 2
	}
	if target < 1 {
		target = 1
	}
	if len(segs) <= target {
		return segs, nil
	}
	// Each pass's merged pairs live only until the rewritten segment exists,
	// so they go through one pooled arena, reset per pass; the consumed
	// engine-internal input segments are recycled the same way.
	arena := &kvArena{buf: bufpool.Get(64 << 10)}
	defer func() { bufpool.Put(arena.buf) }()
	env.arena = arena
	for len(segs) > target {
		arena.reset()
		n := min(factor, len(segs))
		// Hadoop merges the smallest segments first to minimize rewriting.
		sortSegmentsBySize(segs)
		batch := segs[:n]
		var read int64
		for _, s := range batch {
			read += int64(len(s.data))
		}
		pairs, err := mergeSegments(batch, env, cmp)
		if err != nil {
			return nil, err
		}
		merged, err := writeSegment(pairs, env.codec)
		if err != nil {
			return nil, err
		}
		if acct != nil {
			acct(read, int64(len(merged.data)), merged.records)
		}
		for _, s := range batch {
			recycleSegment(s)
		}
		segs = append([]segment{merged}, segs[n:]...)
	}
	return segs, nil
}

func sortSegmentsBySize(segs []segment) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && len(segs[j].data) < len(segs[j-1].data); j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// groupReduce walks a sorted run, invoking red once per group of equal keys
// (per cmp), as Hadoop's reduce-phase grouping iterator does. It aborts
// between groups when the attempt is canceled.
func groupReduce(ctx *TaskContext, pairs []KV, cmp func(a, b []byte) int, red Reducer, emit Emit, counters *Counters, isCombine bool) error {
	for i := 0; i < len(pairs); {
		if ctx.Canceled() {
			return errAttemptCanceled
		}
		j := i + 1
		for j < len(pairs) && cmp(pairs[i].Key, pairs[j].Key) == 0 {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, pairs[k].Value)
		}
		if counters != nil && !isCombine {
			counters.ReduceInputGroups.Add(1)
		}
		if err := red.Reduce(ctx, pairs[i].Key, values, emit); err != nil {
			return err
		}
		i = j
	}
	return nil
}
