package mapreduce

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"slices"
	"sync"

	"scikey/internal/bufpool"
	"scikey/internal/codec"
	"scikey/internal/faults"
	"scikey/internal/ifile"
)

// segment is one sorted run of intermediate pairs in its on-disk form
// (IFile framing, optionally compressed). Final map output segments carry
// their provenance (src, attempt) so a reducer that detects corruption can
// name — and re-execute — the producing map attempt; engine-internal runs
// (spills, merge passes) use src -1.
type segment struct {
	data    []byte
	records int64
	src     int // producing map task, or -1 for engine-internal segments
	attempt int // producing map attempt (meaningful when src >= 0)
}

// readEnv bundles what the segment read path needs: the codec, the optional
// fault injector, and the reading attempt's coordinates for fault rules and
// corruption reports.
type readEnv struct {
	codec codec.Codec
	inj   *faults.Injector
	// attempt is the reading (reduce) attempt, for codec-site fault rules.
	attempt int
	// part is the reducer partition being read, or -1 on the map side.
	part int
	// arena, when non-nil, receives the record copies the merge produces
	// instead of per-record heap allocations. The caller owns the arena's
	// lifetime: merged pairs are only valid until it is reset or recycled.
	arena *kvArena
	// borrow, when set, skips record copies entirely: each iterator's
	// current pair aliases its IFile reader's scratch buffers and is valid
	// only until that iterator advances. The merge-pass rewrite loop runs in
	// this mode — it consumes each record before pulling the next — so a
	// pass allocates nothing per record.
	borrow bool
}

// kvArena bump-allocates record copies into one contiguous buffer,
// replacing the two heap allocations per merged record on the shuffle hot
// path. Growth abandons the old backing array to the already-handed-out
// slices (they stay valid), so reset/recycle only after every pair copied
// from the arena is dead.
type kvArena struct{ buf []byte }

func (a *kvArena) copy(p []byte) []byte {
	n := len(a.buf)
	a.buf = append(a.buf, p...)
	return a.buf[n : n+len(p) : n+len(p)]
}

func (a *kvArena) reset() { a.buf = a.buf[:0] }

// writerPools / readerPools cache codec stream state (a gzip writer alone is
// ~800 KiB) per codec instance across the thousands of segments a job
// writes and reads.
var (
	writerPools sync.Map // codec.Codec -> *codec.WriterPool
	readerPools sync.Map // codec.Codec -> *codec.ReaderPool
)

func writerPoolFor(c codec.Codec) *codec.WriterPool {
	if v, ok := writerPools.Load(c); ok {
		return v.(*codec.WriterPool)
	}
	v, _ := writerPools.LoadOrStore(c, codec.NewWriterPool(c))
	return v.(*codec.WriterPool)
}

func readerPoolFor(c codec.Codec) *codec.ReaderPool {
	if v, ok := readerPools.Load(c); ok {
		return v.(*codec.ReaderPool)
	}
	v, _ := readerPools.LoadOrStore(c, codec.NewReaderPool(c))
	return v.(*codec.ReaderPool)
}

// wrapErr classifies a segment read error. Injected transient errors pass
// through (the scheduler retries the reading attempt); anything else from a
// provenance-tagged segment — CRC mismatch, broken framing, codec decode
// failure — is corruption of that map task's output.
func (e readEnv) wrapErr(src, srcAttempt int, err error) error {
	if err == nil || src < 0 || faults.IsTransient(err) {
		return err
	}
	return &ErrCorruptSegment{MapTask: src, Partition: e.part, Attempt: srcAttempt, Err: err}
}

// appendWriter is an io.Writer over a growable byte slice, the pooled
// replacement for a per-segment bytes.Buffer.
type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// segWriterState bundles the per-writeSegment scaffolding (output sink and
// IFile framing state) so the steady-state spill/merge loop allocates only
// the segment bytes it actually keeps.
type segWriterState struct {
	aw appendWriter
	iw ifile.Writer
}

var segWriterStatePool = sync.Pool{New: func() any { return new(segWriterState) }}

// writeSegment encodes sorted pairs through the codec into IFile form. The
// returned segment's storage comes from the buffer pool; hand it to
// recycleSegment once it is merged away.
func writeSegment(pairs []KV, c codec.Codec) (segment, error) {
	// Upper-bound the encoded size (payload + max framing + trailer) so the
	// pooled output buffer never regrows through unpooled reallocations.
	est := ifile.TrailerLen
	for _, p := range pairs {
		est += len(p.Key) + len(p.Value) + ifile.RecordOverhead(len(p.Key), len(p.Value))
	}
	sw := segWriterStatePool.Get().(*segWriterState)
	sw.aw.buf = bufpool.Get(est)
	cw := writerPoolFor(c).Get(&sw.aw)
	sw.iw.Reset(cw)
	fail := func(err error) (segment, error) {
		// Mid-stream writers carry unknown state; drop rather than pool.
		bufpool.Put(sw.aw.buf)
		sw.aw.buf = nil
		segWriterStatePool.Put(sw)
		return segment{}, err
	}
	for _, p := range pairs {
		if err := sw.iw.Append(p.Key, p.Value); err != nil {
			return fail(err)
		}
	}
	if err := sw.iw.Close(); err != nil {
		return fail(err)
	}
	if err := cw.Close(); err != nil {
		return fail(err)
	}
	writerPoolFor(c).Put(cw)
	data := sw.aw.buf
	sw.aw.buf = nil
	segWriterStatePool.Put(sw)
	return segment{data: data, records: int64(len(pairs)), src: -1}, nil
}

// writeSegmentStream encodes a sorted record stream through the codec into
// IFile form — writeSegment's streaming twin, used by merge passes so a
// rewritten segment never exists as a pair slice. sizeHint seeds the pooled
// output buffer (the merge pass passes its input bytes, an upper bound for
// the uncompressed codec); the buffer still grows if the hint is short.
func writeSegmentStream(src kvStream, c codec.Codec, sizeHint int) (segment, error) {
	sw := segWriterStatePool.Get().(*segWriterState)
	sw.aw.buf = bufpool.Get(sizeHint)
	cw := writerPoolFor(c).Get(&sw.aw)
	sw.iw.Reset(cw)
	fail := func(err error) (segment, error) {
		// Mid-stream writers carry unknown state; drop rather than pool.
		bufpool.Put(sw.aw.buf)
		sw.aw.buf = nil
		segWriterStatePool.Put(sw)
		return segment{}, err
	}
	var records int64
	for {
		kv, ok, err := src.next()
		if err != nil {
			return fail(err)
		}
		if !ok {
			break
		}
		if err := sw.iw.Append(kv.Key, kv.Value); err != nil {
			return fail(err)
		}
		records++
	}
	if err := sw.iw.Close(); err != nil {
		return fail(err)
	}
	if err := cw.Close(); err != nil {
		return fail(err)
	}
	writerPoolFor(c).Put(cw)
	data := sw.aw.buf
	sw.aw.buf = nil
	segWriterStatePool.Put(sw)
	return segment{data: data, records: records, src: -1}, nil
}

// recycleSegment returns an engine-internal segment's backing storage to
// the buffer pool. Final map outputs (src >= 0) are never recycled: retried
// and speculative reduce attempts re-read them.
func recycleSegment(seg segment) {
	if seg.src < 0 {
		bufpool.Put(seg.data)
	}
}

// segIter streams the records of one segment. Iterators are pooled: the
// embedded bytes.Reader, IFile reader (with its buffered reader and
// key/value scratch) and the codec reader survive from segment to segment.
type segIter struct {
	br  bytes.Reader
	rc  io.ReadCloser
	ir  ifile.Reader
	env readEnv
	// src/attempt are the segment's provenance, for corruption reports.
	src        int
	srcAttempt int
	// cur holds copies of the current record (the ifile reader reuses its
	// buffers).
	cur KV
	ok  bool
	err error
}

var segIterPool = sync.Pool{New: func() any { return new(segIter) }}

func openSegment(seg segment, env readEnv) (*segIter, error) {
	it := segIterPool.Get().(*segIter)
	it.br.Reset(seg.data)
	var raw io.Reader = &it.br
	raw = env.inj.WrapSegmentRead(seg.src, env.attempt, len(seg.data), raw)
	rc, err := readerPoolFor(env.codec).Get(raw)
	if err != nil {
		it.release()
		return nil, env.wrapErr(seg.src, seg.attempt, err)
	}
	it.rc = rc
	it.ir.Reset(rc)
	it.env = env
	it.src, it.srcAttempt = seg.src, seg.attempt
	it.err = nil
	it.advance()
	return it, it.err
}

// release returns an iterator (and its codec reader) to the pools,
// exhausted, failed, or abandoned mid-stream alike — the reader pool fully
// reinitializes pooled readers on Get, so partially-consumed codec state is
// safe to recycle. It must not be called while cur is still referenced.
func (it *segIter) release() {
	if it.rc != nil {
		readerPoolFor(it.env.codec).Put(it.rc)
		it.rc = nil
	}
	it.env = readEnv{}
	it.cur = KV{}
	segIterPool.Put(it)
}

func (it *segIter) advance() {
	k, v, err := it.ir.Next()
	if err == io.EOF {
		it.ok = false
		it.rc.Close()
		return
	}
	if err != nil {
		it.err = it.env.wrapErr(it.src, it.srcAttempt, err)
		it.ok = false
		it.rc.Close()
		return
	}
	switch {
	case it.env.borrow:
		it.cur = KV{Key: k, Value: v}
	case it.env.arena != nil:
		a := it.env.arena
		it.cur = KV{Key: a.copy(k), Value: a.copy(v)}
	default:
		it.cur = KV{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)}
	}
	it.ok = true
}

// mergeHeap orders segment iterators by their current key.
type mergeHeap struct {
	its []*segIter
	cmp func(a, b []byte) int
}

func (h *mergeHeap) Len() int { return len(h.its) }

func (h *mergeHeap) Less(i, j int) bool {
	return h.cmp(h.its[i].cur.Key, h.its[j].cur.Key) < 0
}

func (h *mergeHeap) Swap(i, j int) { h.its[i], h.its[j] = h.its[j], h.its[i] }

func (h *mergeHeap) Push(x any) { h.its = append(h.its, x.(*segIter)) }

func (h *mergeHeap) Pop() any {
	old := h.its
	n := len(old)
	it := old[n-1]
	h.its = old[:n-1]
	return it
}

// kvStream is a pull iterator over a sorted record run — the shape the
// whole reduce path now consumes, so one partition is never materialized as
// a slice. next returns the next record until (KV{}, false, nil) at end of
// stream; after an error or end of stream the stream must not be advanced
// again. close releases pooled resources and is idempotent; it must be
// called exactly when no previously returned record is still referenced
// (streams that hand out owned copies can be closed any time).
type kvStream interface {
	next() (KV, bool, error)
	close()
}

// sliceStream adapts an in-memory sorted run to kvStream — the compat shim
// for callers that still materialize (the combiner's sorted buffer, the
// reference reduce path).
type sliceStream struct {
	pairs []KV
	pos   int
}

func (s *sliceStream) next() (KV, bool, error) {
	if s.pos >= len(s.pairs) {
		return KV{}, false, nil
	}
	kv := s.pairs[s.pos]
	s.pos++
	return kv, true, nil
}

func (s *sliceStream) close() {}

// mergeStream is the pull-based k-way merge over sorted segments — the
// reducer-side "merge sort" of Fig. 1 step 5 as a stream, so a reduce
// attempt holds one record per open segment (O(mergeFactor · record))
// instead of the whole partition. Reading every segment to its end also
// verifies each stream's IFile CRC, so corruption anywhere in a fetched
// segment surfaces from next as an ErrCorruptSegment.
type mergeStream struct {
	h mergeHeap
	// pending marks that the heap head's cur was handed out by the last
	// next call and the iterator must advance before the next record is
	// chosen — deferred so borrow-mode callers can use the record first.
	pending bool
	closed  bool
}

// newMergeStream opens every segment and primes the heap. On error all
// already-opened iterators are released back to their pools.
// validateSegments scans each provenance-tagged segment (src >= 0) to its
// end in borrow mode — no record copies — forcing the codec and IFile CRC
// checks before any record is handed to user code. The streaming reduce
// path runs this over its final merge level: the materialized reference
// path validated implicitly by reading every segment up front, and
// reducers are entitled to that ordering — a corrupted map output must
// surface as an ErrCorruptSegment naming the producing attempt, never as
// whatever user code does with garbage bytes mid-stream. Engine-internal
// segments (src < 0) were produced by this attempt from already-validated
// inputs and are skipped. Returns the bytes read, for disk accounting.
func validateSegments(segs []segment, env readEnv) (int64, error) {
	env.borrow = true
	env.arena = nil
	var read int64
	for _, seg := range segs {
		if seg.src < 0 || len(seg.data) == 0 {
			continue
		}
		it, err := openSegment(seg, env)
		if err != nil {
			if it != nil {
				it.release()
			}
			return read, err
		}
		for it.ok {
			it.advance()
		}
		err = it.err
		it.release()
		if err != nil {
			return read, err
		}
		read += int64(len(seg.data))
	}
	return read, nil
}

func newMergeStream(segs []segment, env readEnv, cmp func(a, b []byte) int) (*mergeStream, error) {
	m := &mergeStream{h: mergeHeap{cmp: cmp}}
	for _, s := range segs {
		if len(s.data) == 0 {
			continue
		}
		it, err := openSegment(s, env)
		if err != nil {
			// A first-record decode error hands back the iterator; it is
			// not in the heap yet, so close() alone would strand it.
			if it != nil {
				it.release()
			}
			m.close()
			return nil, fmt.Errorf("mapreduce: opening segment: %w", err)
		}
		if it.ok {
			m.h.its = append(m.h.its, it)
		} else {
			it.release()
		}
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *mergeStream) next() (KV, bool, error) {
	if m.pending {
		m.pending = false
		it := m.h.its[0]
		it.advance()
		if it.err != nil {
			err := it.err
			m.close()
			return KV{}, false, err
		}
		if it.ok {
			heap.Fix(&m.h, 0)
		} else {
			heap.Pop(&m.h).(*segIter).release()
		}
	}
	if len(m.h.its) == 0 {
		return KV{}, false, nil
	}
	m.pending = true
	return m.h.its[0].cur, true, nil
}

// close releases every iterator still in the heap — including survivors of
// a mid-merge error, which previously leaked their pooled codec readers.
func (m *mergeStream) close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, it := range m.h.its {
		it.release()
	}
	m.h.its = nil
	m.pending = false
}

// mergeSegments k-way merges sorted segments into one sorted in-memory run.
// It is the materializing reference form of mergeStream: the streaming
// reduce path replaced it in production, but the differential suite and the
// ReferenceReduce job mode keep running it to prove the streams byte-equal.
func mergeSegments(segs []segment, env readEnv, cmp func(a, b []byte) int) ([]KV, error) {
	var total int64
	for _, s := range segs {
		total += s.records
	}
	m, err := newMergeStream(segs, env, cmp)
	if err != nil {
		return nil, err
	}
	defer m.close()
	out := make([]KV, 0, total)
	for {
		kv, ok, err := m.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, kv)
	}
}

// mergeDown repeatedly merges batches of up to factor segments into single
// segments until at most target remain — Hadoop's multi-pass on-disk merge
// (io.sort.factor), the "multiple on-disk sort phases" of Fig. 1 step 5.
// Every intermediate pass re-reads and re-writes its inputs; acct receives
// those byte counts so the cost model sees why bulky intermediate data
// hurts twice.
func mergeDown(segs []segment, env readEnv, cmp func(a, b []byte) int, factor, target int, acct func(read, written, records int64)) ([]segment, error) {
	if factor < 2 {
		factor = 2
	}
	if target < 1 {
		target = 1
	}
	// Each pass streams borrowed records straight from the batch's codec
	// readers into the rewritten segment — every record is appended to the
	// output before its iterator advances, so a pass holds one in-flight
	// record per input segment and materializes nothing.
	env.borrow = true
	env.arena = nil
	for len(segs) > target {
		n := min(factor, len(segs))
		// Hadoop merges the smallest segments first to minimize rewriting.
		sortSegmentsBySize(segs)
		batch := segs[:n]
		var read int64
		for _, s := range batch {
			read += int64(len(s.data))
		}
		m, err := newMergeStream(batch, env, cmp)
		if err != nil {
			return nil, err
		}
		merged, err := writeSegmentStream(m, env.codec, int(read)+ifile.TrailerLen)
		m.close()
		if err != nil {
			return nil, err
		}
		if acct != nil {
			acct(read, int64(len(merged.data)), merged.records)
		}
		for _, s := range batch {
			recycleSegment(s)
		}
		segs = append([]segment{merged}, segs[n:]...)
	}
	return segs, nil
}

// sortSegmentsBySize orders segments smallest-first, stably. mergeDown
// re-sorts before every pass, so this must not go quadratic when a reducer
// fetches segments far in excess of the merge factor.
func sortSegmentsBySize(segs []segment) {
	slices.SortStableFunc(segs, func(a, b segment) int {
		return len(a.data) - len(b.data)
	})
}

// groupReduce walks a sorted record stream, invoking red once per group of
// equal keys (per cmp), as Hadoop's reduce-phase grouping iterator does.
// Only the current group is held in memory. It aborts between groups when
// the attempt is canceled, and — when bail is non-nil — when bail reports a
// downstream error, so a failed reduce-output write stops the attempt
// promptly instead of reducing on into a dead writer.
//
// With borrowed set the stream's records are valid only until its next pull
// (a borrow-mode merge aliasing decoder scratch); each record is then landed
// in a group-owned arena the moment it arrives. Two arenas ping-pong: the
// current group's key and values accumulate in one while a group boundary
// copies the next group's first record into the other, so Reduce always
// reads live memory while the stream advances underneath — and the
// per-record heap copies the non-borrowed path pays disappear. Arguments
// passed to Reduce are only valid during the call in either mode (Hadoop's
// iterator-reuse contract).
func groupReduce(ctx *TaskContext, src kvStream, cmp func(a, b []byte) int, red Reducer, emit Emit, counters *Counters, isCombine bool, bail func() error, borrowed bool) error {
	var ga, gb *kvArena // current group arena, boundary arena
	if borrowed {
		ga, gb = &kvArena{}, &kvArena{}
	}
	cur, ok, err := src.next()
	if err != nil {
		return err
	}
	if ok && borrowed {
		cur = KV{Key: ga.copy(cur.Key), Value: ga.copy(cur.Value)}
	}
	for ok {
		if ctx.Canceled() {
			return errAttemptCanceled
		}
		if bail != nil {
			if err := bail(); err != nil {
				return err
			}
		}
		key := cur.Key
		values := [][]byte{cur.Value}
		ok = false
		for {
			nxt, more, err := src.next()
			if err != nil {
				return err
			}
			if !more {
				break
			}
			if cmp(key, nxt.Key) != 0 {
				if borrowed {
					gb.reset()
					nxt = KV{Key: gb.copy(nxt.Key), Value: gb.copy(nxt.Value)}
				}
				cur, ok = nxt, true
				break
			}
			if borrowed {
				nxt.Value = ga.copy(nxt.Value)
			}
			values = append(values, nxt.Value)
		}
		if counters != nil && !isCombine {
			counters.ReduceInputGroups.Add(1)
		}
		if err := red.Reduce(ctx, key, values, emit); err != nil {
			return err
		}
		// The finished group's arena becomes the next boundary scratch; the
		// next group's first record already lives in the other one.
		if borrowed {
			ga, gb = gb, ga
		}
	}
	return nil
}

// countStream counts records as they drain — ReduceInputRecords advances
// with the stream now, not after a full materialization, but a fully
// drained attempt lands on exactly the reference path's total.
type countStream struct {
	src kvStream
	n   *Counter
}

func (s *countStream) next() (KV, bool, error) {
	kv, ok, err := s.src.next()
	if ok {
		s.n.Add(1)
	}
	return kv, ok, err
}

func (s *countStream) close() { s.src.close() }

// transformStream adapts the whole-slice MergeTransform hook to the
// streaming reduce: it buffers a bounded lookahead window of records,
// closes the window where the job's cut predicate says later keys cannot
// interact with it, runs the transform over that window, and streams the
// rewritten records out. With a nil cut the whole stream is one window —
// the exact legacy behavior for transforms with unknown locality. The
// transform keeps its func([]KV) []KV signature either way; windows are
// never reused as backing storage since the transform may retain its
// argument (an identity transform returns it unchanged).
//
// The split counter is settled once at end of stream: windows partition
// the input, so the summed output-minus-input surplus equals the surplus
// the reference path measures over the whole partition.
type transformStream struct {
	src       kvStream
	transform func([]KV) []KV
	cut       func(key []byte) bool
	splits    *Counter

	out     []KV
	pos     int
	pending KV
	have    bool
	eof     bool
	counted bool

	totalIn  int64
	totalOut int64
}

func (t *transformStream) next() (KV, bool, error) {
	for {
		if t.pos < len(t.out) {
			kv := t.out[t.pos]
			t.pos++
			return kv, true, nil
		}
		if t.eof && !t.have {
			if !t.counted {
				t.counted = true
				if t.splits != nil {
					if d := t.totalOut - t.totalIn; d > 0 {
						t.splits.Add(d)
					}
				}
			}
			return KV{}, false, nil
		}
		if err := t.fill(); err != nil {
			return KV{}, false, err
		}
	}
}

// fill gathers the next window and runs the transform over it. The cut
// predicate sees every key exactly once, in stream order; returning true
// seals the window before that key, which becomes the next window's first
// record.
func (t *transformStream) fill() error {
	var window []KV
	if t.have {
		window = append(window, t.pending)
		t.pending, t.have = KV{}, false
	}
	for !t.eof {
		kv, ok, err := t.src.next()
		if err != nil {
			return err
		}
		if !ok {
			t.eof = true
			break
		}
		if t.cut != nil && t.cut(kv.Key) && len(window) > 0 {
			t.pending, t.have = kv, true
			break
		}
		window = append(window, kv)
	}
	if len(window) == 0 {
		t.out, t.pos = nil, 0
		return nil
	}
	t.out, t.pos = t.transform(window), 0
	t.totalIn += int64(len(window))
	t.totalOut += int64(len(t.out))
	return nil
}

func (t *transformStream) close() { t.src.close() }
