package mapreduce

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"

	"scikey/internal/codec"
	"scikey/internal/ifile"
)

// segment is one sorted run of intermediate pairs in its on-disk form
// (IFile framing, optionally compressed).
type segment struct {
	data    []byte
	records int64
}

// writeSegment encodes sorted pairs through the codec into IFile form.
func writeSegment(pairs []KV, c codec.Codec) (segment, error) {
	var buf bytes.Buffer
	cw := c.NewWriter(&buf)
	iw := ifile.NewWriter(cw)
	for _, p := range pairs {
		if err := iw.Append(p.Key, p.Value); err != nil {
			return segment{}, err
		}
	}
	if err := iw.Close(); err != nil {
		return segment{}, err
	}
	if err := cw.Close(); err != nil {
		return segment{}, err
	}
	return segment{data: buf.Bytes(), records: int64(len(pairs))}, nil
}

// segIter streams the records of one segment.
type segIter struct {
	rc io.ReadCloser
	ir *ifile.Reader
	// cur holds copies of the current record (the ifile reader reuses its
	// buffers).
	cur KV
	ok  bool
	err error
}

func openSegment(seg segment, c codec.Codec) (*segIter, error) {
	rc, err := c.NewReader(bytes.NewReader(seg.data))
	if err != nil {
		return nil, err
	}
	it := &segIter{rc: rc, ir: ifile.NewReader(rc)}
	it.advance()
	return it, it.err
}

func (it *segIter) advance() {
	k, v, err := it.ir.Next()
	if err == io.EOF {
		it.ok = false
		it.rc.Close()
		return
	}
	if err != nil {
		it.err = err
		it.ok = false
		it.rc.Close()
		return
	}
	it.cur = KV{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)}
	it.ok = true
}

// mergeHeap orders segment iterators by their current key.
type mergeHeap struct {
	its []*segIter
	cmp func(a, b []byte) int
}

func (h *mergeHeap) Len() int { return len(h.its) }

func (h *mergeHeap) Less(i, j int) bool {
	return h.cmp(h.its[i].cur.Key, h.its[j].cur.Key) < 0
}

func (h *mergeHeap) Swap(i, j int) { h.its[i], h.its[j] = h.its[j], h.its[i] }

func (h *mergeHeap) Push(x any) { h.its = append(h.its, x.(*segIter)) }

func (h *mergeHeap) Pop() any {
	old := h.its
	n := len(old)
	it := old[n-1]
	h.its = old[:n-1]
	return it
}

// mergeSegments k-way merges sorted segments into one sorted in-memory run,
// the reducer-side "merge sort" of Fig. 1 step 5.
func mergeSegments(segs []segment, c codec.Codec, cmp func(a, b []byte) int) ([]KV, error) {
	h := &mergeHeap{cmp: cmp}
	var total int64
	for _, s := range segs {
		if len(s.data) == 0 {
			continue
		}
		it, err := openSegment(s, c)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: opening segment: %w", err)
		}
		if it.ok {
			h.its = append(h.its, it)
		}
		total += s.records
	}
	heap.Init(h)
	out := make([]KV, 0, total)
	for h.Len() > 0 {
		it := h.its[0]
		out = append(out, it.cur)
		it.advance()
		if it.err != nil {
			return nil, it.err
		}
		if it.ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out, nil
}

// mergeDown repeatedly merges batches of up to factor segments into single
// segments until at most target remain — Hadoop's multi-pass on-disk merge
// (io.sort.factor), the "multiple on-disk sort phases" of Fig. 1 step 5.
// Every intermediate pass re-reads and re-writes its inputs; acct receives
// those byte counts so the cost model sees why bulky intermediate data
// hurts twice.
func mergeDown(segs []segment, c codec.Codec, cmp func(a, b []byte) int, factor, target int, acct func(read, written, records int64)) ([]segment, error) {
	if factor < 2 {
		factor = 2
	}
	if target < 1 {
		target = 1
	}
	for len(segs) > target {
		n := min(factor, len(segs))
		// Hadoop merges the smallest segments first to minimize rewriting.
		sortSegmentsBySize(segs)
		batch := segs[:n]
		var read int64
		for _, s := range batch {
			read += int64(len(s.data))
		}
		pairs, err := mergeSegments(batch, c, cmp)
		if err != nil {
			return nil, err
		}
		merged, err := writeSegment(pairs, c)
		if err != nil {
			return nil, err
		}
		if acct != nil {
			acct(read, int64(len(merged.data)), merged.records)
		}
		segs = append([]segment{merged}, segs[n:]...)
	}
	return segs, nil
}

func sortSegmentsBySize(segs []segment) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && len(segs[j].data) < len(segs[j-1].data); j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// groupReduce walks a sorted run, invoking red once per group of equal keys
// (per cmp), as Hadoop's reduce-phase grouping iterator does.
func groupReduce(ctx *TaskContext, pairs []KV, cmp func(a, b []byte) int, red Reducer, emit Emit, counters *Counters, isCombine bool) error {
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && cmp(pairs[i].Key, pairs[j].Key) == 0 {
			j++
		}
		values := make([][]byte, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, pairs[k].Value)
		}
		if counters != nil && !isCombine {
			counters.ReduceInputGroups.Add(1)
		}
		if err := red.Reduce(ctx, pairs[i].Key, values, emit); err != nil {
			return err
		}
		i = j
	}
	return nil
}
