package mapreduce

import (
	"strings"
	"testing"
)

// TestReduceOutputWriteFaultRetries regresses the reduce emit panic: an
// injected failure writing a reducer's output file used to crash the worker
// goroutine outright. It must instead fail the attempt so the scheduler
// retries it, converging on output byte-identical to a fault-free run.
func TestReduceOutputWriteFaultRetries(t *testing.T) {
	cleanFS, cleanRes, err := runFaultJob(t, "", RetryPolicy{}, 1)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Parallelism = 1
	job.Retry = RetryPolicy{MaxAttempts: 2}
	job.Faults = mustInjector(t, "out:*:error@0")
	res, err := Run(job)
	if err != nil {
		t.Fatalf("faulty run did not recover: %v", err)
	}
	want := readRawOutputs(t, cleanFS, cleanRes.OutputPaths)
	got := readRawOutputs(t, fs, res.OutputPaths)
	if len(want) != len(got) {
		t.Fatalf("partition counts differ: clean %d, faulty %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("partition %d output differs after recovery", i)
		}
	}
	c := res.Counters
	// Both reducers' first attempts hit the @0 rule and fail.
	if c.ReduceAttemptsFailed.Value() != 2 {
		t.Errorf("failed reduce attempts = %d, want 2", c.ReduceAttemptsFailed.Value())
	}
	if c.TaskRetries.Value() != 2 {
		t.Errorf("task retries = %d, want 2", c.TaskRetries.Value())
	}
	if fired := job.Faults.Fired()["out/error"]; fired != 2 {
		t.Errorf("out/error fired %d times, want 2", fired)
	}
	wantCounters := cleanRes.Counters
	if got, want := c.ReduceOutputRecords.Value(), wantCounters.ReduceOutputRecords.Value(); got != want {
		t.Errorf("reduce output records = %d, want %d", got, want)
	}
	if got, want := c.ReduceOutputBytes.Value(), wantCounters.ReduceOutputBytes.Value(); got != want {
		t.Errorf("reduce output bytes = %d, want %d", got, want)
	}
}

// TestReduceOutputWriteFaultExhaustsBudget: when every attempt's output
// writes fail, the job must surface the write error — not panic, not hang.
func TestReduceOutputWriteFaultExhaustsBudget(t *testing.T) {
	_, _, err := runFaultJob(t, "out:0:error@*", RetryPolicy{MaxAttempts: 2}, 1)
	if err == nil {
		t.Fatal("job succeeded despite persistent reduce output faults")
	}
	if !strings.Contains(err.Error(), "reduce output write") {
		t.Errorf("error does not name the failing write: %v", err)
	}
}

// TestCorruptionValidatedBeforeReducer pins the streaming path's
// validate-then-reduce ordering: a reducer must never see bytes the
// segment's trailing CRC would reject. The reducer here panics on any
// record that is not word-count shaped; with an injected corrupt segment
// the job must still classify the corruption (re-executing the producing
// map) rather than surface a reducer panic on garbage input.
func TestCorruptionValidatedBeforeReducer(t *testing.T) {
	strict := func(job *Job) {
		inner := job.NewReducer
		job.NewReducer = func() Reducer {
			red := inner()
			return ReducerFunc(func(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error {
				for _, b := range key {
					if b < 'a' || b > 'z' {
						panic("reducer fed a corrupt key")
					}
				}
				for _, v := range values {
					if len(v) != 4 {
						panic("reducer fed a corrupt value")
					}
				}
				return red.Reduce(ctx, key, values, emit)
			})
		}
	}
	cleanFS := testFS()
	clean := wordCountJob(cleanFS, faultDocs, 2, false)
	strict(clean)
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	// Try several corruption targets so at least one schedule lands flips
	// inside record payload (not framing) — the case only pre-validation
	// catches before user code runs.
	classified := false
	for _, spec := range []string{
		"seed=1;segment:0.0:corrupt@0", "seed=2;segment:1.0:corrupt@0",
		"seed=3;segment:2.1:corrupt@0", "seed=4;segment:0.1:corrupt=64@0",
	} {
		fs := testFS()
		job := wordCountJob(fs, faultDocs, 2, false)
		strict(job)
		job.Retry = RetryPolicy{MaxAttempts: 3}
		job.Faults = mustInjector(t, spec)
		res, err := Run(job)
		if err != nil {
			t.Fatalf("%s: job did not recover: %v", spec, err)
		}
		want := readRawOutputs(t, cleanFS, cleanRes.OutputPaths)
		got := readRawOutputs(t, fs, res.OutputPaths)
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("%s: partition %d output differs after recovery", spec, i)
			}
		}
		if res.Counters.CorruptSegmentsDetected.Value() > 0 {
			classified = true
		}
	}
	if !classified {
		t.Error("no schedule was classified as segment corruption; test exercises nothing")
	}
}
