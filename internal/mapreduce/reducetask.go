package mapreduce

import (
	"fmt"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/ifile"
)

// reduceTask executes one reducer: fetch its partition's segments from
// every map output, merge-sort them, apply the SciHadoop merge transform
// (overlap splitting), group, reduce, and write output to HDFS (steps 4-7
// of Fig. 1).
type reduceTask struct {
	job       *Job
	id        int
	ctx       *TaskContext
	footprint cluster.Task
	outPath   string
}

func newReduceTask(job *Job, id int, counters *Counters) *reduceTask {
	return &reduceTask{
		job: job,
		id:  id,
		ctx: &TaskContext{TaskID: id, IsMap: false, FS: job.FS, counters: counters},
	}
}

func (t *reduceTask) run(mapOutputs [][]segment) error {
	c := t.ctx.counters

	// Shuffle: fetch this partition's final segment from every map. The
	// bytes cross the network and are staged on local disk (write + later
	// read during the merge).
	var segs []segment
	for _, finals := range mapOutputs {
		seg := finals[t.id]
		if len(seg.data) == 0 {
			continue
		}
		segs = append(segs, seg)
		n := int64(len(seg.data))
		c.ReduceShuffleBytes.Add(n)
		t.footprint.NetBytes += n
		t.footprint.DiskBytes += 2 * n
	}

	start := time.Now()
	// Reduce-side multi-pass merge: more fetched segments than the merge
	// factor force extra on-disk passes first — the mechanism by which
	// intermediate-data volume "possibly requir[es] multiple on-disk sort
	// phases" (Fig. 1 step 5) and taxes reducers beyond the shuffle.
	segs, err := mergeDown(segs, t.job.codec(), t.job.Compare,
		t.job.mergeFactor(), t.job.mergeFactor(), func(read, written, _ int64) {
			t.footprint.DiskBytes += read + written
		})
	if err != nil {
		return fmt.Errorf("mapreduce: reduce task %d merge pass: %w", t.id, err)
	}
	pairs, err := mergeSegments(segs, t.job.codec(), t.job.Compare)
	if err != nil {
		return fmt.Errorf("mapreduce: reduce task %d merge: %w", t.id, err)
	}
	c.ReduceInputRecords.Add(int64(len(pairs)))

	if t.job.MergeTransform != nil {
		before := len(pairs)
		pairs = t.job.MergeTransform(pairs)
		if d := len(pairs) - before; d > 0 {
			c.OverlapKeySplits.Add(int64(d))
		}
	}

	t.outPath = fmt.Sprintf("%s/part-%05d", t.job.OutputPath, t.id)
	w, err := t.job.FS.Create(t.outPath)
	if err != nil {
		return err
	}
	iw := ifile.NewWriter(w)
	var outBytes int64
	emit := func(k, v []byte) {
		c.ReduceOutputRecords.Add(1)
		outBytes += int64(len(k) + len(v))
		if err := iw.Append(k, v); err != nil {
			panic(fmt.Sprintf("mapreduce: reduce output write: %v", err))
		}
	}
	red := t.job.NewReducer()
	if err := groupReduce(t.ctx, pairs, t.job.Compare, red, emit, c, false); err != nil {
		return fmt.Errorf("mapreduce: reduce task %d: %w", t.id, err)
	}
	if f, ok := red.(Finalizer); ok {
		if err := f.Finish(t.ctx, emit); err != nil {
			return fmt.Errorf("mapreduce: reduce task %d finish: %w", t.id, err)
		}
	}
	if err := iw.Close(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	c.ReduceOutputBytes.Add(outBytes)
	t.footprint.CPUSeconds += time.Since(start).Seconds()
	t.footprint.DiskBytes += iw.Stats().Total()
	return nil
}
