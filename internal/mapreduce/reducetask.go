package mapreduce

import (
	"fmt"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/faults"
	"scikey/internal/ifile"
	"scikey/internal/obs"
)

// reduceTask executes one attempt of a reducer: fetch its partition's
// segments from every map output, merge-sort them (verifying IFile CRCs
// along the way), apply the SciHadoop merge transform (overlap splitting),
// group, reduce, and write output to HDFS (steps 4-7 of Fig. 1).
//
// Output lands in an attempt-private temp file; the scheduler renames it to
// the final part path only for the winning attempt (Hadoop's output
// committer), so retries and speculative twins never collide.
type reduceTask struct {
	job       *Job
	id        int
	attempt   int
	ctx       *TaskContext
	footprint cluster.Task
	tmpPath   string
	outPath   string

	// remote marks an attempt executed in a worker process: its output
	// arrived as bytes (remoteData) instead of a local temp file, and commit
	// materializes them at the final path directly.
	remote     bool
	remoteData []byte

	// tracer/span parent this attempt's phase spans (zero when the job has
	// no Observer); wallSeconds is the attempt's wall-clock duration, a
	// cost-model calibration sample if the attempt wins.
	tracer      *obs.Tracer
	span        obs.SpanID
	wallSeconds float64
}

func newReduceTask(job *Job, id, attempt int, canceled func() bool) *reduceTask {
	return &reduceTask{
		job:     job,
		id:      id,
		attempt: attempt,
		ctx: &TaskContext{
			TaskID:   id,
			Attempt:  attempt,
			IsMap:    false,
			FS:       job.FS,
			counters: &Counters{},
			canceled: canceled,
		},
		tmpPath: fmt.Sprintf("%s/_attempt/part-%05d-%d", job.OutputPath, id, attempt),
		outPath: fmt.Sprintf("%s/part-%05d", job.OutputPath, id),
	}
}

// counters returns this attempt's private counters, merged into the job
// totals only if the attempt commits.
func (t *reduceTask) counters() *Counters { return t.ctx.counters }

// commit promotes this attempt's temp output to the final part path. A
// remote attempt's bytes came back over the wire; they land at the final
// path in one write, the coordinator-side half of the output committer.
func (t *reduceTask) commit() error {
	if t.remote {
		return t.job.FS.WriteFile(t.outPath, t.remoteData)
	}
	return t.job.FS.Rename(t.tmpPath, t.outPath)
}

// abort discards this attempt's temp output, if any was materialized.
// Remote attempts have no coordinator-side temp file.
func (t *reduceTask) abort() {
	if t.remote {
		return
	}
	_ = t.job.FS.Delete(t.tmpPath)
}

func (t *reduceTask) run(src segmentSource) error {
	wallStart := time.Now()
	defer func() { t.wallSeconds = time.Since(wallStart).Seconds() }()
	c := t.ctx.counters
	if err := t.job.Faults.Attempt(faults.SiteReduce, t.id, t.attempt); err != nil {
		return fmt.Errorf("mapreduce: reduce task %d: %w", t.id, err)
	}

	// Shuffle: fetch this partition's final segment from every map. The
	// bytes cross the network and are staged on local disk (write + later
	// read during the merge). Wasted transport bytes — verified data a
	// retried or exhausted fetch had to discard — still crossed the wire,
	// so they join the footprint without touching the payload counters.
	fetchSpan := t.tracer.Start(obs.CatPhase, "fetch", t.span, t.id, t.attempt)
	defer fetchSpan.End() // explicit End below makes this a failure-path no-op
	var segs []segment
	for m := 0; m < src.numMaps(); m++ {
		if t.ctx.Canceled() {
			return errAttemptCanceled
		}
		seg, wasted, err := src.fetch(m, t.id)
		t.footprint.NetBytes += wasted
		if err != nil {
			return fmt.Errorf("mapreduce: reduce task %d shuffle: %w", t.id, err)
		}
		if len(seg.data) == 0 {
			continue
		}
		segs = append(segs, seg)
		n := int64(len(seg.data))
		c.ReduceShuffleBytes.Add(n)
		t.footprint.NetBytes += n
		t.footprint.DiskBytes += 2 * n
	}
	fetchSpan.End()

	start := time.Now()
	defer func() {
		t.footprint.CPUSeconds += time.Since(start).Seconds()
	}()
	mergeSpan := t.tracer.Start(obs.CatPhase, "merge", t.span, t.id, t.attempt)
	defer mergeSpan.End()
	env := readEnv{codec: t.job.codec(), inj: t.job.Faults, attempt: t.attempt, part: t.id}
	// Reduce-side multi-pass merge: more fetched segments than the merge
	// factor force extra on-disk passes first — the mechanism by which
	// intermediate-data volume "possibly requir[es] multiple on-disk sort
	// phases" (Fig. 1 step 5) and taxes reducers beyond the shuffle.
	// Reading every fetched segment to its end also verifies its IFile
	// CRC; a mismatch surfaces as an ErrCorruptSegment naming the
	// producing map attempt.
	segs, err := mergeDown(segs, env, t.job.Compare,
		t.job.mergeFactor(), t.job.mergeFactor(), func(read, written, _ int64) {
			t.footprint.DiskBytes += read + written
		})
	if err != nil {
		return fmt.Errorf("mapreduce: reduce task %d merge pass: %w", t.id, err)
	}
	// The final merge level is a stream: grouping pulls records out of the
	// k-way merge one at a time, so peak memory is one record per open
	// segment plus the current group — never the partition. ReferenceReduce
	// keeps the historical materialized form for differential proof.
	// ReduceInputRecords and the MergeTransform split surplus accumulate as
	// the stream drains; fully drained (winning) attempts land on exactly
	// the reference totals.
	var stream kvStream
	if t.job.ReferenceReduce {
		pairs, err := mergeSegments(segs, env, t.job.Compare)
		if err != nil {
			return fmt.Errorf("mapreduce: reduce task %d merge: %w", t.id, err)
		}
		// Engine-internal merge-pass intermediates are fully copied into
		// pairs now; fetched map outputs (src >= 0) stay untouched for
		// retries.
		for _, s := range segs {
			recycleSegment(s)
		}
		c.ReduceInputRecords.Add(int64(len(pairs)))
		if t.job.MergeTransform != nil {
			before := len(pairs)
			pairs = t.job.MergeTransform(pairs)
			if d := len(pairs) - before; d > 0 {
				c.OverlapKeySplits.Add(int64(d))
			}
		}
		stream = &sliceStream{pairs: pairs}
	} else {
		// Validate the final level's fetched segments before any record can
		// reach the reducer: grouping interleaves with decoding from here
		// on, and user code must never see bytes the trailing CRC would
		// have rejected.
		read, err := validateSegments(segs, env)
		t.footprint.DiskBytes += read
		if err != nil {
			return fmt.Errorf("mapreduce: reduce task %d merge: %w", t.id, err)
		}
		// With no merge transform in the way, the final merge runs in
		// borrow mode: records alias decoder scratch (fetched chunk memory
		// decodes straight through, no per-record heap copies) and
		// groupReduce lands each record in its group arena on arrival.
		// transformStream buffers whole windows of records, so it keeps
		// the owning merge.
		fenv := env
		fenv.borrow = t.job.MergeTransform == nil
		ms, err := newMergeStream(segs, fenv, t.job.Compare)
		if err != nil {
			return fmt.Errorf("mapreduce: reduce task %d merge: %w", t.id, err)
		}
		// Merge-pass intermediates stay alive while the stream reads them;
		// recycle only once it is closed. Fetched map outputs (src >= 0)
		// stay untouched for retries.
		defer func() {
			ms.close()
			for _, s := range segs {
				recycleSegment(s)
			}
		}()
		stream = &countStream{src: ms, n: &c.ReduceInputRecords}
		if t.job.MergeTransform != nil {
			var cut func(key []byte) bool
			if t.job.MergeCut != nil {
				cut = t.job.MergeCut()
			}
			stream = &transformStream{
				src:       stream,
				transform: t.job.MergeTransform,
				cut:       cut,
				splits:    &c.OverlapKeySplits,
			}
		}
	}
	mergeSpan.End()

	w, err := t.job.FS.Create(t.tmpPath)
	if err != nil {
		return err
	}
	// Always materialize the temp file (Close is idempotent) so abort can
	// clean up after a failed or canceled attempt.
	defer w.Close()
	iw := ifile.NewWriter(t.job.Faults.WrapReduceOutput(t.id, t.attempt, w))
	var outBytes int64
	var emitErr error
	emit := func(k, v []byte) {
		if emitErr != nil || t.ctx.Canceled() {
			return
		}
		if err := iw.Append(k, v); err != nil {
			// An output write failure (disk full, injected out-site fault)
			// fails this attempt — the scheduler retries it — instead of
			// panicking the process.
			emitErr = fmt.Errorf("reduce output write: %w", err)
			return
		}
		c.ReduceOutputRecords.Add(1)
		outBytes += int64(len(k) + len(v))
	}
	reduceSpan := t.tracer.Start(obs.CatPhase, "reduce", t.span, t.id, t.attempt)
	defer reduceSpan.End()
	red := t.job.NewReducer()
	bail := func() error { return emitErr }
	borrowed := !t.job.ReferenceReduce && t.job.MergeTransform == nil
	if err := groupReduce(t.ctx, stream, t.job.Compare, red, emit, c, false, bail, borrowed); err != nil {
		return fmt.Errorf("mapreduce: reduce task %d: %w", t.id, err)
	}
	if f, ok := red.(Finalizer); ok {
		if err := f.Finish(t.ctx, emit); err != nil {
			return fmt.Errorf("mapreduce: reduce task %d finish: %w", t.id, err)
		}
	}
	if emitErr != nil {
		return fmt.Errorf("mapreduce: reduce task %d: %w", t.id, emitErr)
	}
	if t.ctx.Canceled() {
		return errAttemptCanceled
	}
	if err := iw.Close(); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	reduceSpan.End()
	c.ReduceOutputBytes.Add(outBytes)
	t.footprint.DiskBytes += iw.Stats().Total()
	return nil
}
