package mapreduce

import (
	"fmt"
	"testing"

	"scikey/internal/codec"
)

// TestBlockCodecDifferential proves the parallel block codec is invisible to
// the engine: for every pipeline width the job's output files and payload
// counters are byte-identical to the materialized reference path — across
// shuffle transports and under fault schedules that force retries, segment
// corruption, and codec errors. The framing is position-determined, so
// widths 1 (sequential in-line), 2, and 4 must all produce the same
// intermediate bytes; any divergence is an ordering or reassembly bug in the
// pipeline, not data-dependent flakiness.
func TestBlockCodecDifferential(t *testing.T) {
	blockCodec := func(workers int) codec.Codec {
		blk := codec.NewBlock(codec.NewTransform(codec.Zlib))
		// Small blocks force many frames through the pipeline even on
		// word-count-sized segments.
		blk.BlockBytes = 1 << 10
		blk.Workers = workers
		return blk
	}
	variants := []struct {
		name     string
		shuffle  *ShuffleConfig
		spec     string
		policy   RetryPolicy
		parallel int
	}{
		{name: "mem"},
		{name: "net", parallel: 2,
			shuffle: &ShuffleConfig{Mode: ShuffleNet, Nodes: 2, FetchAttempts: 4}},
		{name: "tcp", parallel: 2,
			shuffle: &ShuffleConfig{Mode: ShuffleTCP, Nodes: 2, FetchAttempts: 4}},
		{name: "mem-faults",
			spec:   "seed=9;map:1:error@0;segment:0.1:corrupt@0;codec:2:error@0",
			policy: RetryPolicy{MaxAttempts: 3}},
		{name: "net-faults", parallel: 2,
			shuffle: &ShuffleConfig{Mode: ShuffleNet, Nodes: 2, FetchAttempts: 4},
			spec:    "seed=3;net:1:cut@0;net:0.1:corrupt@0",
			policy:  RetryPolicy{MaxAttempts: 3}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			ref := diffCase{name: v.name, codec: blockCodec(1), shuffle: v.shuffle,
				spec: v.spec, policy: v.policy, parallel: v.parallel}
			refOuts, refCounters := runDiff(t, ref, true)
			for _, workers := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					dc := ref
					dc.codec = blockCodec(workers)
					outs, counters := runDiff(t, dc, false)
					if len(outs) != len(refOuts) {
						t.Fatalf("partition counts differ: reference %d, workers=%d %d",
							len(refOuts), workers, len(outs))
					}
					for i := range refOuts {
						if outs[i] != refOuts[i] {
							t.Errorf("partition %d output bytes differ (reference %d B, workers=%d %d B)",
								i, len(refOuts[i]), workers, len(outs[i]))
						}
					}
					for name, want := range refCounters {
						if got := counters[name]; got != want {
							t.Errorf("counter %s: workers=%d %d, reference %d", name, workers, got, want)
						}
					}
				})
			}
		})
	}
}
