package mapreduce

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/faults"
	"scikey/internal/obs"
)

// mapTask executes one attempt of a mapper: collect, partition (splitting
// aggregate keys when configured), sort, combine, spill, and merge spills
// into one final segment per partition. Each attempt owns its buffers and
// counters, so concurrent attempts of the same task (retries racing
// speculative twins) never share state; the scheduler commits exactly one.
//
// Spilling is pipelined: when the collection buffer fills, the filled
// partition buffers are swapped out and handed to a single background
// worker that sorts, combines, transforms and compresses them while the
// mapper keeps collecting the next spill's records. One worker draining a
// one-slot queue keeps spill segments in exactly the order a synchronous
// spill would produce (the output bytes are identical) and bounds the
// attempt at roughly three spill buffers of memory.
type mapTask struct {
	job     *Job
	id      int
	attempt int
	ctx     *TaskContext

	parts    []partBuffer
	buffered int
	spills   [][]segment // per partition; owned by the spill worker until drained

	// Spill pipeline state. spillErr and spillBytes are written only by the
	// worker goroutine and read only after drainSpills observes spillDone.
	spillCh     chan []partBuffer
	spillDone   chan struct{}
	spillClosed bool
	spillErr    error
	spillBytes  int64

	footprint cluster.Task
	hosts     []string
	finals    []segment // one per partition after finalize

	// tracer/span parent this attempt's phase spans (zero when the job has
	// no Observer); wallSeconds is the attempt's wall-clock duration, a
	// cost-model calibration sample if the attempt wins.
	tracer      *obs.Tracer
	span        obs.SpanID
	wallSeconds float64
}

// partBuffer collects one partition's records. Key/value copies
// bump-allocate into the arena, so steady-state collection costs no
// per-record heap allocations.
type partBuffer struct {
	pairs []KV
	arena kvArena
	bytes int
}

// partBufferPool recycles whole partition-buffer sets (including each
// buffer's pairs slice and arena storage) between spills and attempts.
var partBufferPool sync.Pool

func getPartBuffers(n int) []partBuffer {
	if v := partBufferPool.Get(); v != nil {
		if parts := *(v.(*[]partBuffer)); len(parts) == n {
			return parts
		}
	}
	return make([]partBuffer, n)
}

func putPartBuffers(parts []partBuffer) {
	for i := range parts {
		pb := &parts[i]
		clear(pb.pairs) // drop record references so the pool pins no arenas
		pb.pairs = pb.pairs[:0]
		pb.arena.reset()
		pb.bytes = 0
	}
	v := new([]partBuffer)
	*v = parts
	partBufferPool.Put(v)
}

func newMapTask(job *Job, id, attempt int, canceled func() bool) *mapTask {
	return &mapTask{
		job:     job,
		id:      id,
		attempt: attempt,
		ctx: &TaskContext{
			TaskID:   id,
			Attempt:  attempt,
			IsMap:    true,
			FS:       job.FS,
			counters: &Counters{},
			canceled: canceled,
		},
		parts:  getPartBuffers(job.NumReducers),
		spills: make([][]segment, job.NumReducers),
	}
}

// counters returns this attempt's private counters, merged into the job
// totals only if the attempt commits.
func (t *mapTask) counters() *Counters { return t.ctx.counters }

func (t *mapTask) run(split Split) error {
	start := time.Now()
	// Charge elapsed compute on every exit so failed attempts still show
	// up as wasted work in the cost model.
	defer func() {
		t.footprint.CPUSeconds += time.Since(start).Seconds()
		t.wallSeconds = time.Since(start).Seconds()
	}()
	// Never leave the spill worker running, whatever exit path is taken.
	defer t.drainSpills()
	t.hosts = split.Hosts
	if err := t.job.Faults.Attempt(faults.SiteMap, t.id, t.attempt); err != nil {
		return fmt.Errorf("mapreduce: map task %d: %w", t.id, err)
	}
	mapper := t.job.NewMapper()
	sp := t.tracer.Start(obs.CatPhase, "map", t.span, t.id, t.attempt)
	err := mapper.Map(t.ctx, split, t.emit)
	sp.End()
	if err != nil {
		return fmt.Errorf("mapreduce: map task %d: %w", t.id, err)
	}
	if t.ctx.Canceled() {
		return errAttemptCanceled
	}
	if err := t.finalize(); err != nil {
		return err
	}
	// Input scan and final output both travel through the local disk (the
	// locality-aware estimate may later re-route the input bytes).
	t.footprint.DiskBytes += t.ctx.inputBytes
	return nil
}

// emit is the mapper-facing output path (step 2 of Fig. 1). Once the
// attempt is canceled it stops accepting records: a discarded attempt must
// not keep buffering and spilling.
func (t *mapTask) emit(key, value []byte) {
	if t.ctx.Canceled() {
		return
	}
	c := t.ctx.counters
	c.MapOutputRecords.Add(1)
	c.MapOutputBytes.Add(int64(len(key) + len(value)))
	c.MapOutputKeyBytes.Add(int64(len(key)))
	c.MapOutputValueBytes.Add(int64(len(value)))

	if t.job.PartitionSplit != nil {
		routed := t.job.PartitionSplit(key, value, t.job.NumReducers)
		if len(routed) > 1 {
			c.PartitionKeySplits.Add(int64(len(routed) - 1))
		}
		for _, r := range routed {
			t.buffer(r.Partition, r.Key, r.Value)
		}
		return
	}
	t.buffer(t.job.Partition(key, t.job.NumReducers), key, value)
}

func (t *mapTask) buffer(part int, key, value []byte) {
	if part < 0 || part >= t.job.NumReducers {
		panic(fmt.Sprintf("mapreduce: partition %d out of [0,%d)", part, t.job.NumReducers))
	}
	// Copy: mappers legitimately reuse their serialization buffers.
	pb := &t.parts[part]
	kv := KV{Key: pb.arena.copy(key), Value: pb.arena.copy(value)}
	pb.pairs = append(pb.pairs, kv)
	pb.bytes += len(kv.Key) + len(kv.Value)
	t.buffered += len(kv.Key) + len(kv.Value)
	if t.buffered >= t.job.spillLimit() {
		// Spill failures (like combiner errors) surface at finalize.
		t.enqueueSpill()
	}
}

// enqueueSpill hands the filled partition buffers to the spill worker and
// installs fresh ones. The one-slot queue means a second enqueue while a
// spill is in flight blocks — the pipeline never holds more than one
// collecting, one queued, and one in-flight buffer set.
func (t *mapTask) enqueueSpill() {
	if t.spillCh == nil {
		t.spillCh = make(chan []partBuffer, 1)
		t.spillDone = make(chan struct{})
		go t.spillWorker()
	}
	parts := t.parts
	t.parts = getPartBuffers(t.job.NumReducers)
	t.buffered = 0
	t.spillCh <- parts
}

// spillWorker drains queued spills in FIFO order. The first error is sticky
// — later spills are skipped (their buffers still recycled) and the error
// is reported by drainSpills.
func (t *mapTask) spillWorker() {
	defer close(t.spillDone)
	for parts := range t.spillCh {
		if t.spillErr == nil {
			if err := t.spillParts(parts); err != nil {
				t.spillErr = err
			}
		}
		putPartBuffers(parts)
	}
}

// drainSpills shuts down the spill pipeline (idempotently) and returns its
// sticky error. After it returns, spills, spillErr and spillBytes are safe
// to read from the caller's goroutine.
func (t *mapTask) drainSpills() error {
	if t.spillCh == nil {
		return nil
	}
	if !t.spillClosed {
		t.spillClosed = true
		close(t.spillCh)
	}
	<-t.spillDone
	return t.spillErr
}

// spillParts sorts, combines and writes each partition buffer as a segment
// (steps 2-3 of Fig. 1). It runs on the spill worker goroutine; everything
// it touches is either worker-owned until drainSpills (spills, spillBytes)
// or concurrency-safe (counters, the buffer pools).
func (t *mapTask) spillParts(parts []partBuffer) error {
	sp := t.tracer.Start(obs.CatPhase, "spill", t.span, t.id, t.attempt)
	defer sp.End()
	c := t.ctx.counters
	for p := range parts {
		pb := &parts[p]
		if len(pb.pairs) == 0 {
			continue
		}
		sort.SliceStable(pb.pairs, func(i, j int) bool {
			return t.job.Compare(pb.pairs[i].Key, pb.pairs[j].Key) < 0
		})
		pairs := pb.pairs
		if t.job.NewCombiner != nil {
			combined, err := t.combine(pairs)
			if err != nil {
				return err
			}
			pairs = combined
		}
		cs := t.tracer.Start(obs.CatPhase, "codec", sp.ID(), t.id, t.attempt)
		seg, err := writeSegment(pairs, t.job.codec())
		cs.End()
		if err != nil {
			return err
		}
		c.SpilledRecords.Add(int64(len(pairs)))
		t.spillBytes += int64(len(seg.data))
		t.spills[p] = append(t.spills[p], seg)
	}
	return nil
}

func (t *mapTask) combine(pairs []KV) ([]KV, error) {
	c := t.ctx.counters
	c.CombineInputRecords.Add(int64(len(pairs)))
	out := make([]KV, 0, len(pairs))
	emit := func(k, v []byte) {
		out = append(out, KV{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
	}
	comb := t.job.NewCombiner()
	if err := groupReduce(t.ctx, &sliceStream{pairs: pairs}, t.job.Compare, comb, emit, c, true, nil, false); err != nil {
		return nil, err
	}
	c.CombineOutputRecords.Add(int64(len(out)))
	// The combiner must preserve key order for the segment to stay sorted.
	sort.SliceStable(out, func(i, j int) bool {
		return t.job.Compare(out[i].Key, out[j].Key) < 0
	})
	return out, nil
}

// finalize flushes the last buffer, drains the spill pipeline, and merges
// multi-spill partitions into one segment each — concurrently across
// partitions, since they share nothing — producing the task's final map
// output, tagged with this attempt's provenance. Segment-site fault rules
// bit-flip the materialized bytes here — silently, exactly like at-rest
// disk corruption: the counters record the intact size and nothing notices
// until a reducer's CRC check.
func (t *mapTask) finalize() error {
	tail := false
	for p := range t.parts {
		if len(t.parts[p].pairs) > 0 {
			tail = true
			break
		}
	}
	if t.spillCh != nil {
		// A worker is running: route the tail through it to keep spill
		// order, then wait it out.
		if tail {
			t.enqueueSpill()
		}
		if err := t.drainSpills(); err != nil {
			return err
		}
	} else if tail {
		if err := t.spillParts(t.parts); err != nil {
			return err
		}
		putPartBuffers(t.parts)
		t.parts = nil
	}
	t.footprint.DiskBytes += t.spillBytes
	t.spillBytes = 0

	ms := t.tracer.Start(obs.CatPhase, "merge", t.span, t.id, t.attempt)
	defer ms.End()
	c := t.ctx.counters
	env := readEnv{codec: t.job.codec(), part: -1}
	t.finals = make([]segment, t.job.NumReducers)
	diskDelta := make([]int64, t.job.NumReducers)
	merr := make([]error, t.job.NumReducers)
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for p := range t.spills {
		segs := t.spills[p]
		switch len(segs) {
		case 0:
			// empty partition: no segment
		case 1:
			t.finals[p] = segs[0]
		default:
			// Multi-pass merge down to a single final segment. Hadoop
			// counts records written during merge passes as spilled
			// records too.
			wg.Add(1)
			sem <- struct{}{}
			go func(p int, segs []segment) {
				defer wg.Done()
				defer func() { <-sem }()
				merged, err := mergeDown(segs, env, t.job.Compare,
					t.job.mergeFactor(), 1, func(read, written, records int64) {
						diskDelta[p] += read + written
						c.SpilledRecords.Add(records)
					})
				if err != nil {
					merr[p] = err
					return
				}
				t.finals[p] = merged[0]
			}(p, segs)
		}
	}
	wg.Wait()
	for _, err := range merr {
		if err != nil {
			return err
		}
	}
	for p := range t.finals {
		t.footprint.DiskBytes += diskDelta[p]
		c.MapOutputMaterializedBytes.Add(int64(len(t.finals[p].data)))
		t.finals[p].src = t.id
		t.finals[p].attempt = t.attempt
		if data, ok := t.job.Faults.CorruptSegment(t.id, p, t.attempt, t.finals[p].data); ok {
			t.finals[p].data = data
		}
	}
	t.spills = nil
	return nil
}
