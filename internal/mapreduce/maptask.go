package mapreduce

import (
	"fmt"
	"sort"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/faults"
)

// mapTask executes one attempt of a mapper: collect, partition (splitting
// aggregate keys when configured), sort, combine, spill, and merge spills
// into one final segment per partition. Each attempt owns its buffers and
// counters, so concurrent attempts of the same task (retries racing
// speculative twins) never share state; the scheduler commits exactly one.
type mapTask struct {
	job     *Job
	id      int
	attempt int
	ctx     *TaskContext

	parts    []partBuffer
	buffered int
	spills   [][]segment // per partition

	footprint cluster.Task
	hosts     []string
	finals    []segment // one per partition after finalize
}

type partBuffer struct {
	pairs []KV
	bytes int
}

func newMapTask(job *Job, id, attempt int, canceled func() bool) *mapTask {
	return &mapTask{
		job:     job,
		id:      id,
		attempt: attempt,
		ctx: &TaskContext{
			TaskID:   id,
			Attempt:  attempt,
			IsMap:    true,
			FS:       job.FS,
			counters: &Counters{},
			canceled: canceled,
		},
		parts:  make([]partBuffer, job.NumReducers),
		spills: make([][]segment, job.NumReducers),
	}
}

// counters returns this attempt's private counters, merged into the job
// totals only if the attempt commits.
func (t *mapTask) counters() *Counters { return t.ctx.counters }

func (t *mapTask) run(split Split) error {
	start := time.Now()
	// Charge elapsed compute on every exit so failed attempts still show
	// up as wasted work in the cost model.
	defer func() {
		t.footprint.CPUSeconds += time.Since(start).Seconds()
	}()
	t.hosts = split.Hosts
	if err := t.job.Faults.Attempt(faults.SiteMap, t.id, t.attempt); err != nil {
		return fmt.Errorf("mapreduce: map task %d: %w", t.id, err)
	}
	mapper := t.job.NewMapper()
	if err := mapper.Map(t.ctx, split, t.emit); err != nil {
		return fmt.Errorf("mapreduce: map task %d: %w", t.id, err)
	}
	if t.ctx.Canceled() {
		return errAttemptCanceled
	}
	if err := t.finalize(); err != nil {
		return err
	}
	// Input scan and final output both travel through the local disk (the
	// locality-aware estimate may later re-route the input bytes).
	t.footprint.DiskBytes += t.ctx.inputBytes
	return nil
}

// emit is the mapper-facing output path (step 2 of Fig. 1). Once the
// attempt is canceled it stops accepting records: a discarded attempt must
// not keep buffering and spilling.
func (t *mapTask) emit(key, value []byte) {
	if t.ctx.Canceled() {
		return
	}
	c := t.ctx.counters
	c.MapOutputRecords.Add(1)
	c.MapOutputBytes.Add(int64(len(key) + len(value)))
	c.MapOutputKeyBytes.Add(int64(len(key)))
	c.MapOutputValueBytes.Add(int64(len(value)))

	if t.job.PartitionSplit != nil {
		routed := t.job.PartitionSplit(key, value, t.job.NumReducers)
		if len(routed) > 1 {
			c.PartitionKeySplits.Add(int64(len(routed) - 1))
		}
		for _, r := range routed {
			t.buffer(r.Partition, r.Key, r.Value)
		}
		return
	}
	t.buffer(t.job.Partition(key, t.job.NumReducers), key, value)
}

func (t *mapTask) buffer(part int, key, value []byte) {
	if part < 0 || part >= t.job.NumReducers {
		panic(fmt.Sprintf("mapreduce: partition %d out of [0,%d)", part, t.job.NumReducers))
	}
	// Copy: mappers legitimately reuse their serialization buffers.
	kv := KV{Key: append([]byte(nil), key...), Value: append([]byte(nil), value...)}
	pb := &t.parts[part]
	pb.pairs = append(pb.pairs, kv)
	pb.bytes += len(kv.Key) + len(kv.Value)
	t.buffered += len(kv.Key) + len(kv.Value)
	if t.buffered >= t.job.spillLimit() {
		if err := t.spill(); err != nil {
			// Spill failures surface at finalize; record and drop.
			panic(fmt.Sprintf("mapreduce: spill failed: %v", err))
		}
	}
}

// spill sorts, combines and writes each partition buffer as a segment
// (steps 2-3 of Fig. 1).
func (t *mapTask) spill() error {
	c := t.ctx.counters
	for p := range t.parts {
		pb := &t.parts[p]
		if len(pb.pairs) == 0 {
			continue
		}
		sort.SliceStable(pb.pairs, func(i, j int) bool {
			return t.job.Compare(pb.pairs[i].Key, pb.pairs[j].Key) < 0
		})
		pairs := pb.pairs
		if t.job.NewCombiner != nil {
			combined, err := t.combine(pairs)
			if err != nil {
				return err
			}
			pairs = combined
		}
		seg, err := writeSegment(pairs, t.job.codec())
		if err != nil {
			return err
		}
		c.SpilledRecords.Add(int64(len(pairs)))
		t.footprint.DiskBytes += int64(len(seg.data))
		t.spills[p] = append(t.spills[p], seg)
		t.parts[p] = partBuffer{}
	}
	t.buffered = 0
	return nil
}

func (t *mapTask) combine(pairs []KV) ([]KV, error) {
	c := t.ctx.counters
	c.CombineInputRecords.Add(int64(len(pairs)))
	out := make([]KV, 0, len(pairs))
	emit := func(k, v []byte) {
		out = append(out, KV{Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
	}
	comb := t.job.NewCombiner()
	if err := groupReduce(t.ctx, pairs, t.job.Compare, comb, emit, c, true); err != nil {
		return nil, err
	}
	c.CombineOutputRecords.Add(int64(len(out)))
	// The combiner must preserve key order for the segment to stay sorted.
	sort.SliceStable(out, func(i, j int) bool {
		return t.job.Compare(out[i].Key, out[j].Key) < 0
	})
	return out, nil
}

// finalize flushes the last buffer and merges multi-spill partitions into
// one segment each, producing the task's final map output, tagged with this
// attempt's provenance. Segment-site fault rules bit-flip the materialized
// bytes here — silently, exactly like at-rest disk corruption: the counters
// record the intact size and nothing notices until a reducer's CRC check.
func (t *mapTask) finalize() error {
	if err := t.spill(); err != nil {
		return err
	}
	c := t.ctx.counters
	env := readEnv{codec: t.job.codec(), part: -1}
	t.finals = make([]segment, t.job.NumReducers)
	for p := range t.spills {
		segs := t.spills[p]
		switch len(segs) {
		case 0:
			// empty partition: no segment
		case 1:
			t.finals[p] = segs[0]
		default:
			// Multi-pass merge down to a single final segment. Hadoop
			// counts records written during merge passes as spilled
			// records too.
			merged, err := mergeDown(segs, env, t.job.Compare,
				t.job.mergeFactor(), 1, func(read, written, records int64) {
					t.footprint.DiskBytes += read + written
					c.SpilledRecords.Add(records)
				})
			if err != nil {
				return err
			}
			t.finals[p] = merged[0]
		}
		c.MapOutputMaterializedBytes.Add(int64(len(t.finals[p].data)))
		t.finals[p].src = t.id
		t.finals[p].attempt = t.attempt
		if data, ok := t.job.Faults.CorruptSegment(t.id, p, t.attempt, t.finals[p].data); ok {
			t.finals[p].data = data
		}
	}
	t.spills = nil
	return nil
}
