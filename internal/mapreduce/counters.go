package mapreduce

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Counter is a concurrency-safe job counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counters are the job-wide statistics, mirroring the Hadoop counters the
// paper reports. "Map output materialized bytes" — the paper's headline
// metric — is the post-codec, post-framing size of the final per-partition
// map output segments.
type Counters struct {
	MapInputRecords Counter
	MapInputBytes   Counter

	MapOutputRecords Counter
	// MapOutputBytes counts serialized key+value bytes before framing and
	// compression (Hadoop's "Map output bytes").
	MapOutputBytes Counter
	// MapOutputKeyBytes / MapOutputValueBytes decompose MapOutputBytes the
	// way Fig. 8 does.
	MapOutputKeyBytes   Counter
	MapOutputValueBytes Counter
	// MapOutputMaterializedBytes is the on-disk size of final map output.
	MapOutputMaterializedBytes Counter

	CombineInputRecords  Counter
	CombineOutputRecords Counter
	SpilledRecords       Counter

	// PartitionKeySplits counts aggregate keys split at routing time;
	// OverlapKeySplits counts reduce-side overlap splits. Both are zero
	// for vanilla Hadoop jobs.
	PartitionKeySplits Counter
	OverlapKeySplits   Counter

	ReduceShuffleBytes  Counter
	ReduceInputGroups   Counter
	ReduceInputRecords  Counter
	ReduceOutputRecords Counter
	ReduceOutputBytes   Counter

	// Fault-tolerance counters. Payload counters above reflect only
	// committed (winning) attempts; the ones below describe the recovery
	// machinery itself and are maintained by the attempt scheduler.

	// MapAttemptsFailed / ReduceAttemptsFailed count attempts that ended
	// in an error or panic (including injected faults).
	MapAttemptsFailed    Counter
	ReduceAttemptsFailed Counter
	// TaskRetries counts re-executions granted after a failed attempt.
	TaskRetries Counter
	// SpeculativeAttempts counts backup attempts launched for stragglers;
	// SpeculativeWasted counts attempts whose twin finished first.
	SpeculativeAttempts Counter
	SpeculativeWasted   Counter
	// CorruptSegmentsDetected counts shuffle reads that failed the IFile
	// CRC (or framing/codec decode) check.
	CorruptSegmentsDetected Counter
	// MapTasksRecovered counts map tasks re-executed to replace corrupt
	// output segments (or segments lost to exhausted shuffle fetches).
	MapTasksRecovered Counter

	// Networked-shuffle counters, populated from the shuffle service's
	// metrics when the job runs with Job.Shuffle in a net mode. Like the
	// other scheduling counters they describe the transport's recovery
	// work; the payload counters above stay byte-identical to an
	// in-memory fault-free run.

	// ShuffleFetches counts segment fetches issued by reducers.
	ShuffleFetches Counter
	// ShuffleFetchRetries counts fetch attempts beyond each fetch's first.
	ShuffleFetchRetries Counter
	// ShuffleFetchesResumed counts fetches that resumed mid-segment from a
	// verified byte offset instead of restarting from zero.
	ShuffleFetchesResumed Counter
	// ShuffleFetchWastedBytes counts verified bytes a fetch had to discard
	// (attempt-change resets and exhausted fetches).
	ShuffleFetchWastedBytes Counter
	// ShuffleBreakerTrips counts per-node circuit breakers opened.
	ShuffleBreakerTrips Counter

	// In-node combining counters (Job.Combine), distinct from the map-side
	// CombineInput/OutputRecords pair: they describe the node-level combine
	// phase between the map barrier and the shuffle, from each node group's
	// most recent combine (recovery recombines replace, never double-count).

	// CombineMergedRecords counts records folded away by in-node combining
	// (input records minus emitted records across all node groups).
	CombineMergedRecords Counter
	// CombineEmittedRecords counts records the combined segments carry.
	CombineEmittedRecords Counter
	// CombineSavedBytes is the raw member segment bytes minus the combined
	// segment bytes — the shuffle traffic in-node combining removed. It can
	// go slightly negative when nothing merges (re-framing overhead).
	CombineSavedBytes Counter
}

// Merge adds every counter of o into c. The engine gives each attempt its
// own Counters and merges only the winning attempt's, so failed and
// speculatively-discarded attempts never skew the job totals.
func (c *Counters) Merge(o *Counters) {
	dst, src := c.rows(), o.rows()
	for i := range dst {
		dst[i].Add(src[i].Value())
	}
}

// rows lists the counters in render order.
func (c *Counters) rows() []*Counter {
	return []*Counter{
		&c.MapInputRecords, &c.MapInputBytes,
		&c.MapOutputRecords, &c.MapOutputBytes,
		&c.MapOutputKeyBytes, &c.MapOutputValueBytes,
		&c.MapOutputMaterializedBytes,
		&c.CombineInputRecords, &c.CombineOutputRecords, &c.SpilledRecords,
		&c.PartitionKeySplits, &c.OverlapKeySplits,
		&c.ReduceShuffleBytes, &c.ReduceInputGroups,
		&c.ReduceInputRecords, &c.ReduceOutputRecords, &c.ReduceOutputBytes,
		&c.MapAttemptsFailed, &c.ReduceAttemptsFailed, &c.TaskRetries,
		&c.SpeculativeAttempts, &c.SpeculativeWasted,
		&c.CorruptSegmentsDetected, &c.MapTasksRecovered,
		&c.ShuffleFetches, &c.ShuffleFetchRetries, &c.ShuffleFetchesResumed,
		&c.ShuffleFetchWastedBytes, &c.ShuffleBreakerTrips,
		// Appended at the end so older snapshots stay prefix-compatible in
		// render order (the wire form still length-checks exactly).
		&c.CombineMergedRecords, &c.CombineEmittedRecords, &c.CombineSavedBytes,
	}
}

// Snapshot returns every counter's value in the fixed rows() order — the
// wire form a worker process ships an attempt's private counters in. A
// snapshot restored with AddSnapshot on the coordinator merges exactly like
// an in-process attempt's counters, so cluster runs keep the byte-identity
// invariant.
func (c *Counters) Snapshot() []int64 {
	rows := c.rows()
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r.Value()
	}
	return out
}

// AddSnapshot adds a Snapshot's values into c. Snapshots from a different
// engine version (wrong length) are rejected rather than misattributed.
func (c *Counters) AddSnapshot(vs []int64) error {
	rows := c.rows()
	if len(vs) != len(rows) {
		return fmt.Errorf("mapreduce: counter snapshot has %d values, want %d", len(vs), len(rows))
	}
	for i, r := range rows {
		r.Add(vs[i])
	}
	return nil
}

// String renders the counters in Hadoop's log style.
func (c *Counters) String() string {
	var sb strings.Builder
	row := func(name string, v int64) {
		fmt.Fprintf(&sb, "    %s=%d\n", name, v)
	}
	sb.WriteString("  Counters:\n")
	row("Map input records", c.MapInputRecords.Value())
	row("Map input bytes", c.MapInputBytes.Value())
	row("Map output records", c.MapOutputRecords.Value())
	row("Map output bytes", c.MapOutputBytes.Value())
	row("Map output key bytes", c.MapOutputKeyBytes.Value())
	row("Map output value bytes", c.MapOutputValueBytes.Value())
	row("Map output materialized bytes", c.MapOutputMaterializedBytes.Value())
	row("Combine input records", c.CombineInputRecords.Value())
	row("Combine output records", c.CombineOutputRecords.Value())
	row("Spilled records", c.SpilledRecords.Value())
	row("Partition key splits", c.PartitionKeySplits.Value())
	row("Overlap key splits", c.OverlapKeySplits.Value())
	row("Reduce shuffle bytes", c.ReduceShuffleBytes.Value())
	row("Reduce input groups", c.ReduceInputGroups.Value())
	row("Reduce input records", c.ReduceInputRecords.Value())
	row("Reduce output records", c.ReduceOutputRecords.Value())
	row("Reduce output bytes", c.ReduceOutputBytes.Value())
	row("Failed map attempts", c.MapAttemptsFailed.Value())
	row("Failed reduce attempts", c.ReduceAttemptsFailed.Value())
	row("Task retries", c.TaskRetries.Value())
	row("Speculative attempts", c.SpeculativeAttempts.Value())
	row("Speculative wasted attempts", c.SpeculativeWasted.Value())
	row("Corrupt segments detected", c.CorruptSegmentsDetected.Value())
	row("Map tasks recovered", c.MapTasksRecovered.Value())
	row("Shuffle fetches", c.ShuffleFetches.Value())
	row("Shuffle fetch retries", c.ShuffleFetchRetries.Value())
	row("Shuffle fetches resumed", c.ShuffleFetchesResumed.Value())
	row("Shuffle fetch wasted bytes", c.ShuffleFetchWastedBytes.Value())
	row("Shuffle breaker trips", c.ShuffleBreakerTrips.Value())
	row("Node combine merged records", c.CombineMergedRecords.Value())
	row("Node combine emitted records", c.CombineEmittedRecords.Value())
	row("Node combine saved bytes", c.CombineSavedBytes.Value())
	return sb.String()
}
