package mapreduce

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"scikey/internal/codec"
	"scikey/internal/ifile"
	"scikey/internal/shufflenet"
)

// Shuffle transport modes.
const (
	// ShuffleMem hands committed segments to reducers in-process (the
	// historical data path; the byte-identity baseline).
	ShuffleMem = "mem"
	// ShuffleNet runs the networked shuffle over in-process pipes:
	// deterministic and fast, but every transport failure mode is real.
	ShuffleNet = "net"
	// ShuffleTCP runs the networked shuffle over loopback TCP sockets.
	ShuffleTCP = "tcp"
)

// ShuffleConfig selects and tunes the shuffle transport. The zero value of
// every field takes the shufflenet default.
type ShuffleConfig struct {
	// Mode is ShuffleMem (default when empty), ShuffleNet, or ShuffleTCP.
	Mode string
	// Nodes is the simulated shuffle-server count; map task t serves from
	// node t % Nodes.
	Nodes int
	// FetchTimeout is the per-attempt deadline for one segment fetch.
	FetchTimeout time.Duration
	// FetchAttempts bounds one segment fetch's attempts; when they exhaust,
	// the map output counts as lost and the producing map task re-executes.
	FetchAttempts int
	// PerNodeFetchers caps concurrent fetches against one node.
	PerNodeFetchers int
	// BreakerThreshold is the consecutive-failure count that opens a node's
	// circuit breaker (negative disables breakers).
	BreakerThreshold int
	// ChunkBytes is the CRC-framed response chunk size — the granularity of
	// verified-offset resume.
	ChunkBytes int
}

func (sc *ShuffleConfig) validate() error {
	switch sc.Mode {
	case "", ShuffleMem, ShuffleNet, ShuffleTCP:
		return nil
	}
	return fmt.Errorf("shuffle mode %q is not %s|%s|%s", sc.Mode, ShuffleMem, ShuffleNet, ShuffleTCP)
}

// networked reports whether the job shuffles over shufflenet.
func (sc *ShuffleConfig) networked() bool {
	return sc != nil && (sc.Mode == ShuffleNet || sc.Mode == ShuffleTCP)
}

// newShuffleService starts the job's shuffle service, or returns nil for the
// in-memory mode. Fetch retries ride the job's deterministic backoff policy.
func newShuffleService(job *Job) (*shufflenet.Service, error) {
	if !job.Shuffle.networked() {
		return nil, nil
	}
	sc := job.Shuffle
	var tr shufflenet.Transport
	if sc.Mode == ShuffleTCP {
		tr = shufflenet.NewTCPTransport()
	} else {
		tr = shufflenet.NewMemTransport()
	}
	svc, err := shufflenet.NewService(shufflenet.Config{
		Transport:        tr,
		Nodes:            sc.Nodes,
		ChunkBytes:       sc.ChunkBytes,
		FetchTimeout:     sc.FetchTimeout,
		FetchAttempts:    sc.FetchAttempts,
		Backoff:          job.Retry.backoff(),
		PerNodeFetchers:  sc.PerNodeFetchers,
		BreakerThreshold: sc.BreakerThreshold,
		Injector:         job.Faults,
		Obs:              job.Obs,
	})
	if err != nil {
		return nil, err
	}
	if err := svc.Start(); err != nil {
		return nil, err
	}
	return svc, nil
}

// segmentSource is a reduce attempt's view of the map outputs: one committed
// final segment per (map task, partition). fetch also reports wasted network
// bytes — verified data the transport had to discard — charged to the
// attempt's footprint.
type segmentSource interface {
	numMaps() int
	fetch(m, part int) (segment, int64, error)
}

// memSource serves a snapshot of the in-memory map outputs: the historical
// zero-copy hand-off.
type memSource struct {
	outs [][]segment
}

func (s memSource) numMaps() int { return len(s.outs) }

func (s memSource) fetch(m, part int) (segment, int64, error) {
	return s.outs[m][part], 0, nil
}

// netSource fetches segments through the shuffle service. Failures
// translate into the engine's existing recovery vocabulary: an exhausted
// fetch means the map output is lost, which is the same repair problem as a
// corrupt segment — re-execute the producer and retry the reducer.
type netSource struct {
	svc  *shufflenet.Service
	n    int
	stop <-chan struct{}
	// attemptOf names the currently committed attempt of a map task, for
	// exhaustion reports (the transport never saw the segment's bytes).
	attemptOf func(m int) int
	// verify enables fetch-time IFile verification (only sound for
	// uncompressed segments — compressed ones are checked by the merge's
	// decode path).
	verify bool
}

func (s *netSource) numMaps() int { return s.n }

func (s *netSource) fetch(m, part int) (segment, int64, error) {
	res, err := s.svc.Fetch(s.stop, m, part)
	if err != nil {
		if errors.Is(err, shufflenet.ErrCanceled) {
			return segment{}, res.WastedBytes, errAttemptCanceled
		}
		var fe *shufflenet.FetchError
		if errors.As(err, &fe) {
			return segment{}, res.WastedBytes, &ErrCorruptSegment{
				MapTask: m, Partition: part, Attempt: s.attemptOf(m), Err: err,
			}
		}
		return segment{}, res.WastedBytes, err
	}
	seg := segment{data: res.Data, src: m, attempt: res.Attempt}
	if s.verify && len(res.Data) > 0 {
		st, err := ifile.VerifyStream(bytes.NewReader(res.Data))
		if err != nil {
			// The transport delivered what the node stored, faithfully —
			// this is producer-side corruption caught at fetch time.
			return segment{}, res.WastedBytes, &ErrCorruptSegment{
				MapTask: m, Partition: part, Attempt: res.Attempt, Err: err,
			}
		}
		seg.records = st.Records
	}
	return seg, res.WastedBytes, nil
}

// canVerifyAtFetch reports whether fetched segments are plain IFile streams
// the fetcher can verify without decoding.
func canVerifyAtFetch(job *Job) bool {
	return job.codec() == codec.None
}

// mergeShuffleMetrics folds the transport's end-of-run metrics into the job
// counters.
func mergeShuffleMetrics(jc *Counters, m shufflenet.MetricsSnapshot) {
	jc.ShuffleFetches.Add(m.Fetches)
	jc.ShuffleFetchRetries.Add(m.Retries)
	jc.ShuffleFetchesResumed.Add(m.Resumes)
	jc.ShuffleFetchWastedBytes.Add(m.WastedBytes)
	jc.ShuffleBreakerTrips.Add(m.BreakerTrips)
}
