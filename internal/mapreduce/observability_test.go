package mapreduce

import (
	"strings"
	"testing"
	"time"

	"scikey/internal/obs"
)

// TestObservabilityByteIdentity is the obs package's engine-wide invariant:
// attaching an Observer never alters the data path. Output bytes and payload
// counters must be byte-identical with tracing on or off — on clean runs and
// on runs that exercise retries and corruption recovery.
func TestObservabilityByteIdentity(t *testing.T) {
	type variant struct {
		name   string
		spec   string
		policy RetryPolicy
	}
	for _, v := range []variant{
		{"clean", "", RetryPolicy{}},
		{"faulty", "map:1:error@0;segment:2.0:corrupt@0", RetryPolicy{MaxAttempts: 3}},
	} {
		t.Run(v.name, func(t *testing.T) {
			run := func(ob *obs.Observer) (*Result, []string) {
				fs := testFS()
				job := wordCountJob(fs, faultDocs, 2, false)
				job.Parallelism = 2
				job.Retry = v.policy
				job.Obs = ob
				if v.spec != "" {
					job.Faults = mustInjector(t, v.spec)
				}
				res, err := Run(job)
				if err != nil {
					t.Fatalf("run (obs=%v): %v", ob != nil, err)
				}
				return res, readRawOutputs(t, fs, res.OutputPaths)
			}
			plain, plainOut := run(nil)
			ob := obs.New()
			traced, tracedOut := run(ob)

			for i := range plainOut {
				if plainOut[i] != tracedOut[i] {
					t.Errorf("output %d differs between traced and untraced runs", i)
				}
			}
			p, q := plain.Counters, traced.Counters
			pairs := []struct {
				name string
				a, b int64
			}{
				{"map output records", p.MapOutputRecords.Value(), q.MapOutputRecords.Value()},
				{"materialized bytes", p.MapOutputMaterializedBytes.Value(), q.MapOutputMaterializedBytes.Value()},
				{"shuffle bytes", p.ReduceShuffleBytes.Value(), q.ReduceShuffleBytes.Value()},
				{"reduce output bytes", p.ReduceOutputBytes.Value(), q.ReduceOutputBytes.Value()},
				{"spilled records", p.SpilledRecords.Value(), q.SpilledRecords.Value()},
			}
			for _, pr := range pairs {
				if pr.a != pr.b {
					t.Errorf("%s: untraced %d, traced %d", pr.name, pr.a, pr.b)
				}
			}
			if len(ob.T().Events()) == 0 {
				t.Error("traced run recorded no spans")
			}
		})
	}
}

// TestCountersMergeUnderSpeculation: with concurrent speculative attempts,
// only winners merge payload counters, so the published scikey_* series
// match the (speculation-free) reference values exactly — no double counting
// from the losing twins.
func TestCountersMergeUnderSpeculation(t *testing.T) {
	ref, _, err := runShuffleJob(t, nil, "", RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}

	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Parallelism = 3
	job.Retry = RetryPolicy{
		MaxAttempts:      2,
		Speculative:      true,
		SpeculativeAfter: 5 * time.Millisecond,
	}
	job.Faults = mustInjector(t, "map:0:slow=150ms@0")
	ob := obs.New()
	job.Obs = ob
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SpeculativeAttempts.Value() == 0 {
		t.Fatal("no speculation happened; the test exercises nothing")
	}

	r := ob.R()
	read := func(name string) int64 { return r.Counter(name, "", "").Value() }
	c := ref.Counters
	for _, m := range []struct {
		name string
		want int64
	}{
		{"scikey_map_output_records_total", c.MapOutputRecords.Value()},
		{"scikey_map_output_materialized_bytes_total", c.MapOutputMaterializedBytes.Value()},
		{"scikey_reduce_shuffle_bytes_total", c.ReduceShuffleBytes.Value()},
		{"scikey_reduce_output_records_total", c.ReduceOutputRecords.Value()},
	} {
		if got := read(m.name); got != m.want {
			t.Errorf("%s = %d, want %d (speculative losers must not merge)", m.name, got, m.want)
		}
	}
	if got := read("scikey_speculative_attempts_total"); got != res.Counters.SpeculativeAttempts.Value() {
		t.Errorf("scikey_speculative_attempts_total = %d, counters say %d",
			got, res.Counters.SpeculativeAttempts.Value())
	}
	// Every attempt — winner, loser, or failure — lands one sample in the
	// attempt-duration histogram.
	mapAttempts := r.Histogram("scikey_attempt_seconds", "", "seconds", nil, obs.L("phase", "map")).Count()
	wantAttempts := int64(len(faultDocs)) + res.Counters.SpeculativeAttempts.Value() +
		res.Counters.MapAttemptsFailed.Value()
	if mapAttempts < int64(len(faultDocs)) || mapAttempts > wantAttempts {
		t.Errorf("map attempt histogram count = %d, want within [%d, %d]",
			mapAttempts, len(faultDocs), wantAttempts)
	}
}

// TestTraceDistinguishesAttemptFates runs a job with an injected failure and
// a straggler and asserts the trace tells the outcomes apart: a failed
// attempt, the winning retry, a speculative twin pair with exactly one
// winner, and phase spans parented beneath attempt spans.
func TestTraceDistinguishesAttemptFates(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Parallelism = 3
	job.Retry = RetryPolicy{
		MaxAttempts:      3,
		Speculative:      true,
		SpeculativeAfter: 5 * time.Millisecond,
	}
	job.Faults = mustInjector(t, "map:1:error@0;map:0:slow=150ms@0")
	ob := obs.New()
	job.Obs = ob
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SpeculativeAttempts.Value() == 0 || res.Counters.TaskRetries.Value() == 0 {
		t.Fatal("schedule fired neither speculation nor a retry")
	}

	evs := ob.T().Events()
	attempts := map[obs.SpanID]obs.Event{}
	var jobEv *obs.Event
	outcomes := map[string]int{}
	specWins, specLosses := 0, 0
	for i, ev := range evs {
		switch ev.Cat {
		case obs.CatJob:
			jobEv = &evs[i]
		case obs.CatAttempt:
			attempts[ev.ID] = ev
			outcomes[ev.Outcome]++
			if ev.Speculative || (ev.Name == "map" && ev.Task == 0) {
				switch ev.Outcome {
				case obs.OutcomeWon:
					specWins++
				case obs.OutcomeLost, obs.OutcomeCanceled:
					specLosses++
				}
			}
		}
	}
	if jobEv == nil || jobEv.Outcome != "ok" {
		t.Errorf("job span = %+v, want outcome ok", jobEv)
	}
	if outcomes[obs.OutcomeFailed] == 0 {
		t.Errorf("no failed attempt span despite an injected error: %v", outcomes)
	}
	if outcomes[obs.OutcomeWon] < len(faultDocs)+job.NumReducers {
		t.Errorf("won attempts = %d, want at least one per task: %v", outcomes[obs.OutcomeWon], outcomes)
	}
	if specWins == 0 || specLosses == 0 {
		t.Errorf("straggler pair not distinguishable: %d winners, %d losers", specWins, specLosses)
	}

	// Phase spans nest under attempt spans (or under another phase span —
	// per-partition codec spans sit beneath spill) and cover the pipeline
	// stages.
	phaseIDs := map[obs.SpanID]bool{}
	for _, ev := range evs {
		if ev.Cat == obs.CatPhase {
			phaseIDs[ev.ID] = true
		}
	}
	phases := map[string]bool{}
	for _, ev := range evs {
		if ev.Cat != obs.CatPhase {
			continue
		}
		if _, ok := attempts[ev.Parent]; !ok && !phaseIDs[ev.Parent] {
			t.Errorf("phase span %q not parented under an attempt or phase", ev.Name)
		}
		phases[ev.Name] = true
	}
	for _, want := range []string{"map", "spill", "codec", "fetch", "merge", "reduce"} {
		if !phases[want] {
			t.Errorf("no %q phase span recorded (have %v)", want, phases)
		}
	}
}

// TestCalibrateFromResult: every committed attempt leaves a calibration
// sample, and Result.Calibrate either fits positive bandwidths or returns
// the documented no-usable-samples error (in-process attempts are CPU-bound,
// so wall ≈ cpu leaves no I/O residual to fit) — never a broken config.
func TestCalibrateFromResult(t *testing.T) {
	res, _, err := runShuffleJob(t, nil, "", RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(faultDocs) + 2; len(res.CalSamples) != want {
		t.Errorf("calibration samples = %d, want %d (one per committed attempt)",
			len(res.CalSamples), want)
	}
	for i, s := range res.CalSamples {
		if s.WallSeconds <= 0 {
			t.Errorf("sample %d has no wall clock: %+v", i, s)
		}
	}
	base := clusterPaper()
	got, err := res.Calibrate(base)
	if err != nil {
		// Legitimate for an in-memory run; the config must come back intact.
		if got.DiskMBps != base.DiskMBps || got.NetMBps != base.NetMBps {
			t.Errorf("failed calibration altered the config: %+v", got)
		}
	} else if got.DiskMBps <= 0 || got.NetMBps <= 0 {
		t.Errorf("calibrated bandwidths not positive: %+v", got)
	}
}

// TestShuffleMetricsExposition: a networked-shuffle run exposes per-node
// fetch-latency histograms and the transport counters in the Prometheus
// rendering.
func TestShuffleMetricsExposition(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Shuffle = &ShuffleConfig{Mode: ShuffleNet, Nodes: 2}
	ob := obs.New()
	job.Obs = ob
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.ShuffleFetches.Value() == 0 {
		t.Fatal("networked run recorded no fetches")
	}
	var sb strings.Builder
	if err := ob.R().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`scikey_shuffle_fetch_seconds_bucket{node="0",le="+Inf"}`,
		`scikey_shuffle_fetch_seconds_count{node="1"}`,
		"scikey_shuffle_fetches_total",
		`scikey_attempt_seconds_count{phase="reduce"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The per-node histogram counts sum to the fetch total.
	var histTotal int64
	for _, node := range []string{"0", "1"} {
		histTotal += ob.R().Histogram("scikey_shuffle_fetch_seconds", "", "seconds", nil,
			obs.L("node", node)).Count()
	}
	if histTotal != res.Counters.ShuffleFetches.Value() {
		t.Errorf("fetch histogram samples = %d, fetches counter = %d",
			histTotal, res.Counters.ShuffleFetches.Value())
	}
}
