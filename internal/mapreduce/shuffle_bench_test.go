package mapreduce

import (
	"testing"

	"scikey/internal/codec"
)

// benchPairs builds n sorted key/value pairs shaped like the paper's
// serialized-key workload: fixed-width big-endian-ish keys with small
// values, so the transform codec has structure to exploit.
func benchPairs(n int) []KV {
	pairs := make([]KV, n)
	for i := 0; i < n; i++ {
		key := make([]byte, 12)
		key[0] = byte(i >> 24)
		key[1] = byte(i >> 16)
		key[2] = byte(i >> 8)
		key[3] = byte(i)
		copy(key[4:], "gridkey.")
		val := make([]byte, 8)
		val[7] = byte(i)
		pairs[i] = KV{Key: key, Value: val}
	}
	return pairs
}

// BenchmarkWriteSegmentPooled measures the steady-state segment write path:
// one sorted spill buffer encoded through the codec into IFile form, with
// the segment's backing storage recycled the way the map-side spill/merge
// loop does. allocs/op is the headline metric.
func BenchmarkWriteSegmentPooled(b *testing.B) {
	pairs := benchPairs(4096)
	for _, name := range []string{"none", "gzip", "transform+gzip"} {
		b.Run(name, func(b *testing.B) {
			c, err := codec.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			var bytes int64
			for _, p := range pairs {
				bytes += int64(len(p.Key) + len(p.Value))
			}
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seg, err := writeSegment(pairs, c)
				if err != nil {
					b.Fatal(err)
				}
				recycleSegment(seg)
			}
		})
	}
}

// BenchmarkMapSpillPipeline measures one full map attempt with several
// spills plus the final per-partition merge — the pipelined hot path of the
// map side. The spill buffer is kept small so a run produces many spill
// segments per partition and real merge work.
func BenchmarkMapSpillPipeline(b *testing.B) {
	const records = 20000
	for _, name := range []string{"gzip", "transform+gzip"} {
		b.Run(name, func(b *testing.B) {
			c, err := codec.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			job := &Job{
				Name:             "spill-bench",
				NumReducers:      4,
				Compare:          func(a, b []byte) int { return compareBytes(a, b) },
				Partition:        func(key []byte, n int) int { return int(key[3]) % n },
				MapOutputCodec:   c,
				SpillBufferBytes: 64 << 10,
			}
			pairs := benchPairs(records)
			var bytes int64
			for _, p := range pairs {
				bytes += int64(len(p.Key) + len(p.Value))
			}
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := newMapTask(job, 0, 0, nil)
				for _, p := range pairs {
					t.emit(p.Key, p.Value)
				}
				if err := t.finalize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMergeSegments measures the reducer-side k-way merge of many
// compressed segments, the other half of the shuffle hot path.
func BenchmarkMergeSegments(b *testing.B) {
	const nSegs = 8
	c, err := codec.Get("gzip")
	if err != nil {
		b.Fatal(err)
	}
	var segs []segment
	var bytes int64
	for s := 0; s < nSegs; s++ {
		pairs := benchPairs(2048)
		seg, err := writeSegment(pairs, c)
		if err != nil {
			b.Fatal(err)
		}
		segs = append(segs, seg)
		bytes += int64(len(seg.data))
	}
	// Merge through an arena, the way the engine's merge passes do.
	arena := &kvArena{}
	env := readEnv{codec: c, part: -1, arena: arena}
	cmp := func(a, b []byte) int { return compareBytes(a, b) }
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.reset()
		if _, err := mergeSegments(segs, env, cmp); err != nil {
			b.Fatal(err)
		}
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
