package mapreduce

import "scikey/internal/obs"

// publishCounters copies a completed job's Counters into the metrics
// registry as scikey_* counter series (a nil registry no-ops). The mapping
// below is the single source of the metric names documented in DESIGN.md
// §7; registry counters accumulate, so an Observer shared across jobs (an
// experiment driver, a long-lived scijob process) reports fleet totals.
func publishCounters(r *obs.Registry, c *Counters) {
	if r == nil || c == nil {
		return
	}
	pub := func(name, help string, unit string, v int64) {
		r.Counter(name, help, unit).Add(v)
	}
	pub("scikey_map_input_records_total", "Map input records", "", c.MapInputRecords.Value())
	pub("scikey_map_input_bytes_total", "Map input bytes", "bytes", c.MapInputBytes.Value())
	pub("scikey_map_output_records_total", "Map output records", "", c.MapOutputRecords.Value())
	pub("scikey_map_output_bytes_total", "Serialized map output bytes before framing and compression", "bytes", c.MapOutputBytes.Value())
	pub("scikey_map_output_key_bytes_total", "Key share of map output bytes", "bytes", c.MapOutputKeyBytes.Value())
	pub("scikey_map_output_value_bytes_total", "Value share of map output bytes", "bytes", c.MapOutputValueBytes.Value())
	pub("scikey_map_output_materialized_bytes_total", "On-disk size of final map output (the paper's headline metric)", "bytes", c.MapOutputMaterializedBytes.Value())
	pub("scikey_combine_input_records_total", "Records entering map-side combiners", "", c.CombineInputRecords.Value())
	pub("scikey_combine_output_records_total", "Records leaving map-side combiners", "", c.CombineOutputRecords.Value())
	pub("scikey_spilled_records_total", "Records written during spills and merge passes", "", c.SpilledRecords.Value())
	pub("scikey_partition_key_splits_total", "Aggregate keys split at routing time", "", c.PartitionKeySplits.Value())
	pub("scikey_overlap_key_splits_total", "Reduce-side overlap splits", "", c.OverlapKeySplits.Value())
	pub("scikey_reduce_shuffle_bytes_total", "Segment bytes fetched by reducers", "bytes", c.ReduceShuffleBytes.Value())
	pub("scikey_reduce_input_groups_total", "Distinct key groups reduced", "", c.ReduceInputGroups.Value())
	pub("scikey_reduce_input_records_total", "Records entering reducers", "", c.ReduceInputRecords.Value())
	pub("scikey_reduce_output_records_total", "Records written by reducers", "", c.ReduceOutputRecords.Value())
	pub("scikey_reduce_output_bytes_total", "Bytes written by reducers", "bytes", c.ReduceOutputBytes.Value())
	pub("scikey_map_attempts_failed_total", "Map attempts that ended in an error or panic", "", c.MapAttemptsFailed.Value())
	pub("scikey_reduce_attempts_failed_total", "Reduce attempts that ended in an error or panic", "", c.ReduceAttemptsFailed.Value())
	pub("scikey_task_retries_total", "Re-executions granted after failed attempts", "", c.TaskRetries.Value())
	pub("scikey_speculative_attempts_total", "Backup attempts launched for stragglers", "", c.SpeculativeAttempts.Value())
	pub("scikey_speculative_wasted_total", "Attempts whose twin finished first", "", c.SpeculativeWasted.Value())
	pub("scikey_corrupt_segments_detected_total", "Shuffle reads failing CRC or decode checks", "", c.CorruptSegmentsDetected.Value())
	pub("scikey_map_tasks_recovered_total", "Map tasks re-executed to replace corrupt or lost output", "", c.MapTasksRecovered.Value())
	pub("scikey_shuffle_fetches_total", "Segment fetches issued by reducers", "", c.ShuffleFetches.Value())
	pub("scikey_shuffle_fetch_retries_total", "Fetch attempts beyond each fetch's first", "", c.ShuffleFetchRetries.Value())
	pub("scikey_shuffle_fetches_resumed_total", "Fetches resumed from a verified byte offset", "", c.ShuffleFetchesResumed.Value())
	pub("scikey_shuffle_fetch_wasted_bytes_total", "Verified bytes fetches had to discard", "bytes", c.ShuffleFetchWastedBytes.Value())
	pub("scikey_shuffle_breaker_trips_total", "Per-node circuit breakers opened", "", c.ShuffleBreakerTrips.Value())
	pub("scikey_combine_merged_records_total", "Records folded away by in-node combining", "", c.CombineMergedRecords.Value())
	pub("scikey_combine_emitted_records_total", "Records carried by in-node combined segments", "", c.CombineEmittedRecords.Value())
	pub("scikey_combine_saved_bytes_total", "Shuffle bytes removed by in-node combining", "bytes", c.CombineSavedBytes.Value())
}
