package mapreduce

// Vet-style enforcement of the Reducer iterator-reuse contract (see the
// Reducer doc and ExampleReducer): key and values alias framework-owned
// memory recycled after each Reduce call, so storing them — or a values
// element, or a subslice — into anything that outlives the call is a
// use-after-recycle bug. TestReducerRetention parses every Go file in the
// repository, finds reducer-shaped functions (a []byte param followed by a
// [][]byte param — Reduce methods, ReducerFunc literals, and combiner
// functions alike), and fails on assignments that retain those params
// uncopied through a field or other non-local destination. Copies
// (append(dst[:0], key...), bytes.Clone, string(key), decoding) all change
// the expression shape and pass.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// reducerShaped reports whether a function signature looks like a Reduce
// body, returning the key and values parameter names. The shape — some
// param of type []byte immediately followed by one of type [][]byte — is
// exactly the (key, values) pair of Reducer, ReducerFunc, and combiners.
func reducerShaped(ft *ast.FuncType) (keyName, valuesName string, ok bool) {
	if ft.Params == nil {
		return "", "", false
	}
	// Flatten grouped params (a, b []byte) into one name-type list.
	type param struct {
		name string
		typ  ast.Expr
	}
	var flat []param
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			flat = append(flat, param{"", f.Type})
			continue
		}
		for _, n := range f.Names {
			flat = append(flat, param{n.Name, f.Type})
		}
	}
	isByteSlice := func(e ast.Expr, depth int) bool {
		for i := 0; i < depth; i++ {
			arr, ok := e.(*ast.ArrayType)
			if !ok || arr.Len != nil {
				return false
			}
			e = arr.Elt
		}
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "byte"
	}
	for i := 0; i+1 < len(flat); i++ {
		if isByteSlice(flat[i].typ, 1) && isByteSlice(flat[i+1].typ, 2) {
			return flat[i].name, flat[i+1].name, true
		}
	}
	return "", "", false
}

// retainsParam reports whether expr is the parameter itself, an element of
// it, or a subslice — the aliasing forms whose storage the engine recycles.
// Anything wrapped in a call (append copy, bytes.Clone, string conversion,
// a decoder) builds new storage and is fine.
func retainsParam(expr ast.Expr, names map[string]bool) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return names[e.Name]
	case *ast.IndexExpr:
		return retainsParam(e.X, names)
	case *ast.SliceExpr:
		return retainsParam(e.X, names)
	case *ast.ParenExpr:
		return retainsParam(e.X, names)
	}
	return false
}

// checkReducerBody walks one reducer-shaped function body and reports
// assignments that store key/values (or aliases of them) into a destination
// that can outlive the call: a selector (struct field), an index into a
// captured container, or a dereference.
func checkReducerBody(fset *token.FileSet, body *ast.BlockStmt, keyName, valuesName string, report func(string)) {
	names := map[string]bool{}
	if keyName != "" && keyName != "_" {
		names[keyName] = true
	}
	if valuesName != "" && valuesName != "_" {
		names[valuesName] = true
	}
	if len(names) == 0 {
		return
	}
	escaping := func(lhs ast.Expr) bool {
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		// A nested function with its own key/values params shadows ours.
		if fl, ok := n.(*ast.FuncLit); ok {
			if k, v, ok := reducerShaped(fl.Type); ok && (k == keyName || v == valuesName) {
				return false
			}
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if retainsParam(rhs, names) && escaping(as.Lhs[i]) {
				report(fmt.Sprintf("%s: reducer retains framework-owned %s without copying (iterator-reuse contract; see the Reducer doc and ExampleReducer)",
					fset.Position(as.Pos()), types.ExprString(rhs)))
			}
		}
		return true
	})
}

// TestReducerRetention scans the whole repository for reducer-shaped
// functions that retain their key/values parameters uncopied.
func TestReducerRetention(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if k, v, ok := reducerShaped(ft); ok {
				checkReducerBody(fset, body, k, v, func(msg string) { t.Error(msg) })
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
