package mapreduce

import (
	"bytes"
	"fmt"
	"testing"

	"scikey/internal/codec"
)

// dupTransform duplicates every pair — a merge transform whose output is
// decomposable under any stream windowing, so the differential suite can
// compare whole-stream and windowed execution on the same job.
func dupTransform(pairs []KV) []KV {
	out := make([]KV, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p, p)
	}
	return out
}

// keyChangeCut cuts the merged stream at every key change: valid for any
// per-record transform, and the tightest possible window, so it exercises
// the transform adapter's pending-record handoff hard.
func keyChangeCut() func(key []byte) bool {
	var last []byte
	started := false
	return func(k []byte) bool {
		cut := started && !bytes.Equal(last, k)
		last = append(last[:0], k...)
		started = true
		return cut
	}
}

// diffCase is one streaming-vs-reference configuration.
type diffCase struct {
	name      string
	codec     codec.Codec
	comb      bool
	transform bool // install dupTransform
	cut       bool // ... with the per-key window cut
	spec      string
	policy    RetryPolicy
	shuffle   *ShuffleConfig
	reducers  int
	docs      []string
	// routeAll0, when set, sends every key to partition 0 so the other
	// partitions exercise the empty-stream path end to end.
	routeAll0 bool
	parallel  int
}

func (dc diffCase) build(t *testing.T, reference bool) *Job {
	t.Helper()
	fs := testFS()
	docs := dc.docs
	if docs == nil {
		docs = faultDocs
	}
	reducers := dc.reducers
	if reducers == 0 {
		reducers = 2
	}
	job := wordCountJob(fs, docs, reducers, dc.comb)
	job.MapOutputCodec = dc.codec
	job.ReferenceReduce = reference
	job.Retry = dc.policy
	job.Shuffle = dc.shuffle
	job.Faults = mustInjector(t, dc.spec)
	if dc.parallel > 0 {
		job.Parallelism = dc.parallel
	}
	if dc.transform {
		job.MergeTransform = dupTransform
		if dc.cut {
			job.MergeCut = keyChangeCut
		}
	}
	if dc.routeAll0 {
		job.Partition = func([]byte, int) int { return 0 }
	}
	return job
}

// runDiff executes the case and returns the raw per-partition output bytes
// plus the counters the two paths must agree on.
func runDiff(t *testing.T, dc diffCase, reference bool) ([]string, map[string]int64) {
	t.Helper()
	job := dc.build(t, reference)
	res, err := Run(job)
	if err != nil {
		t.Fatalf("%s (reference=%v): %v", dc.name, reference, err)
	}
	outs := readRawOutputs(t, job.FS, res.OutputPaths)
	c := res.Counters
	counters := map[string]int64{
		"ReduceInputRecords":  c.ReduceInputRecords.Value(),
		"ReduceInputGroups":   c.ReduceInputGroups.Value(),
		"ReduceOutputRecords": c.ReduceOutputRecords.Value(),
		"ReduceOutputBytes":   c.ReduceOutputBytes.Value(),
		"OverlapKeySplits":    c.OverlapKeySplits.Value(),
		"SpilledRecords":      c.SpilledRecords.Value(),
		"MapOutputRecords":    c.MapOutputRecords.Value(),
	}
	return outs, counters
}

// TestStreamingReduceDifferential proves the streaming reduce path emits
// byte-identical output files — and identical payload counters — to the
// materialized reference path across codecs, combiner, merge transforms
// (whole-stream and windowed), chaos schedules, and degenerate partitions.
func TestStreamingReduceDifferential(t *testing.T) {
	manyDocs := append(append([]string(nil), faultDocs...),
		"sphinx of black quartz judge my vow",
		"the five boxing wizards jump quickly",
		"jackdaws love my big sphinx of quartz",
	)
	cases := []diffCase{
		{name: "codec-none", codec: nil},
		{name: "codec-gzip", codec: codec.Gzip},
		{name: "codec-bzip2", codec: codec.Bzip2},
		{name: "combiner", codec: codec.Gzip, comb: true},
		{name: "transform-whole-stream", codec: codec.Gzip, transform: true},
		{name: "transform-windowed", codec: nil, transform: true, cut: true},
		{name: "transform-windowed-bzip2", codec: codec.Bzip2, transform: true, cut: true},
		{name: "multi-pass-merge", codec: nil, docs: manyDocs, reducers: 1},
		{name: "single-segment", codec: nil, docs: faultDocs[:1], reducers: 1},
		{name: "empty-partitions", codec: nil, reducers: 3, routeAll0: true},
		{name: "empty-partitions-transform", codec: nil, reducers: 3, routeAll0: true,
			transform: true, cut: true},
		{name: "chaos-local", codec: codec.Gzip, transform: true,
			spec:   "seed=9;map:1:error@0;segment:0.1:corrupt@0;codec:2:error@0",
			policy: RetryPolicy{MaxAttempts: 3}},
		{name: "chaos-net", codec: nil, parallel: 2,
			shuffle: &ShuffleConfig{Mode: ShuffleNet, Nodes: 2, FetchAttempts: 4},
			spec:    "seed=3;net:1:cut@0;net:0.1:corrupt@0",
			policy:  RetryPolicy{MaxAttempts: 3}},
	}
	for _, dc := range cases {
		t.Run(dc.name, func(t *testing.T) {
			refOuts, refCounters := runDiff(t, dc, true)
			strOuts, strCounters := runDiff(t, dc, false)
			if len(refOuts) != len(strOuts) {
				t.Fatalf("partition counts differ: reference %d, streaming %d",
					len(refOuts), len(strOuts))
			}
			for i := range refOuts {
				if refOuts[i] != strOuts[i] {
					t.Errorf("partition %d output bytes differ (reference %d B, streaming %d B)",
						i, len(refOuts[i]), len(strOuts[i]))
				}
			}
			for name, want := range refCounters {
				if got := strCounters[name]; got != want {
					t.Errorf("counter %s: streaming %d, reference %d", name, got, want)
				}
			}
		})
	}
}

// TestTransformStreamWindows checks the transform adapter
// at the unit level: windows must partition the stream in order, every
// record must pass through exactly once, and the split counter must settle
// on the whole-stream surplus.
func TestTransformStreamWindows(t *testing.T) {
	var pairs []KV
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%02d", i/2)) // two records per key
		pairs = append(pairs, KV{Key: k, Value: []byte{byte(i)}})
	}
	var c Counter
	var windows [][]KV
	ts := &transformStream{
		src: &sliceStream{pairs: pairs},
		transform: func(w []KV) []KV {
			cp := append([]KV(nil), w...)
			windows = append(windows, cp)
			return dupTransform(w)
		},
		cut:    keyChangeCut(),
		splits: &c,
	}
	var got []KV
	for {
		kv, ok, err := ts.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, kv)
	}
	ts.close()
	if len(windows) != 5 {
		t.Errorf("got %d windows, want 5 (one per distinct key)", len(windows))
	}
	for _, w := range windows {
		if len(w) != 2 {
			t.Errorf("window size %d, want 2", len(w))
		}
	}
	if len(got) != 20 {
		t.Fatalf("drained %d records, want 20", len(got))
	}
	for i, kv := range got {
		want := pairs[i/2]
		if !bytes.Equal(kv.Key, want.Key) || !bytes.Equal(kv.Value, want.Value) {
			t.Fatalf("record %d = %q/%v, want %q/%v", i, kv.Key, kv.Value, want.Key, want.Value)
		}
	}
	if c.Value() != 10 {
		t.Errorf("split surplus = %d, want 10", c.Value())
	}
}
