package mapreduce

import (
	"errors"
	"math"
	"testing"
	"time"
)

// runShuffleJob runs the word-count fault job over the given shuffle
// transport.
func runShuffleJob(t *testing.T, sc *ShuffleConfig, spec string, policy RetryPolicy) (*Result, []string, error) {
	t.Helper()
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Retry = policy
	job.Shuffle = sc
	if spec != "" {
		job.Faults = mustInjector(t, spec)
	}
	res, err := Run(job)
	if err != nil {
		return nil, nil, err
	}
	return res, readRawOutputs(t, fs, res.OutputPaths), nil
}

// cleanBaseline runs the fault-free in-memory job: the byte-identity
// reference for every networked variant.
func cleanBaseline(t *testing.T) (*Result, []string) {
	t.Helper()
	res, out, err := runShuffleJob(t, nil, "", RetryPolicy{})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return res, out
}

// TestNetShuffleCleanByteIdentical: with no faults, every shuffle mode
// produces byte-identical output and identical payload counters.
func TestNetShuffleCleanByteIdentical(t *testing.T) {
	clean, want := cleanBaseline(t)
	for _, mode := range []string{ShuffleMem, ShuffleNet, ShuffleTCP} {
		t.Run(mode, func(t *testing.T) {
			res, out, err := runShuffleJob(t, &ShuffleConfig{Mode: mode}, "", RetryPolicy{})
			if err != nil {
				t.Fatalf("%s run: %v", mode, err)
			}
			for i := range want {
				if out[i] != want[i] {
					t.Errorf("output %d differs from in-memory run", i)
				}
			}
			c, cc := res.Counters, clean.Counters
			if got, want := c.ReduceShuffleBytes.Value(), cc.ReduceShuffleBytes.Value(); got != want {
				t.Errorf("reduce shuffle bytes = %d, in-memory run = %d", got, want)
			}
			if got, want := c.MapOutputMaterializedBytes.Value(), cc.MapOutputMaterializedBytes.Value(); got != want {
				t.Errorf("materialized bytes = %d, in-memory run = %d", got, want)
			}
			if mode != ShuffleMem {
				if c.ShuffleFetches.Value() == 0 {
					t.Error("networked run recorded no shuffle fetches")
				}
				if c.ShuffleFetchRetries.Value() != 0 || c.ShuffleFetchWastedBytes.Value() != 0 {
					t.Errorf("clean run shows transport waste: retries=%d wasted=%d",
						c.ShuffleFetchRetries.Value(), c.ShuffleFetchWastedBytes.Value())
				}
			}
		})
	}
}

// TestNetShuffleFaultMatrix is the acceptance matrix: every network fault
// site, crossed with the retry policies, must still yield byte-identical
// output — with the recovery work visible in the shuffle counters.
func TestNetShuffleFaultMatrix(t *testing.T) {
	_, want := cleanBaseline(t)

	policies := map[string]RetryPolicy{
		"immediate": {MaxAttempts: 3},
		"backoff":   {MaxAttempts: 3, Backoff: 5 * time.Millisecond, BackoffMax: 40 * time.Millisecond, Seed: 17},
	}
	faults := []struct {
		name string
		spec string
		// resumes marks faults that interrupt mid-segment, where the retry
		// must resume from a verified offset rather than refetch.
		resumes bool
	}{
		{name: "refuse", spec: "net:*:refuse@0"},
		{name: "cut", spec: "net:*:cut@0", resumes: true},
		{name: "stall", spec: "net:*:stall=300ms@0"},
		{name: "truncate", spec: "net:*:truncate@0", resumes: true},
		{name: "corrupt", spec: "net:*:corrupt@0"},
		{name: "mixed", spec: "seed=3;net:0:cut@0;net:1:truncate@0;net:2:refuse@0"},
	}
	for pname, policy := range policies {
		for _, f := range faults {
			t.Run(pname+"/"+f.name, func(t *testing.T) {
				// Small chunks so mid-segment faults leave a verified prefix
				// behind — the thing resume exists to exploit.
				sc := &ShuffleConfig{Mode: ShuffleNet, FetchTimeout: 80 * time.Millisecond, ChunkBytes: 16}
				res, out, err := runShuffleJob(t, sc, f.spec, policy)
				if err != nil {
					t.Fatalf("faulty networked run failed: %v", err)
				}
				for i := range want {
					if out[i] != want[i] {
						t.Errorf("output %d differs from fault-free in-memory run", i)
					}
				}
				c := res.Counters
				if c.ShuffleFetchRetries.Value() == 0 {
					t.Error("injected fault never forced a fetch retry")
				}
				if f.resumes {
					if c.ShuffleFetchesResumed.Value() == 0 {
						t.Error("mid-segment fault recovered without a resume")
					}
				}
			})
		}
	}
}

// TestNetShuffleNodeOutageRecovers: a node-down window exhausts fetch
// budgets; the engine treats the map output as lost, re-executes the
// producing map task, republishes, and the reducer's retried fetch lands
// once the outage lifts — with byte-identical final output.
func TestNetShuffleNodeOutageRecovers(t *testing.T) {
	_, want := cleanBaseline(t)
	sc := &ShuffleConfig{
		Mode:             ShuffleNet,
		FetchAttempts:    2,
		BreakerThreshold: -1, // isolate the lost-output path from breaker timing
	}
	policy := RetryPolicy{MaxAttempts: 8, Backoff: 10 * time.Millisecond, BackoffMax: 200 * time.Millisecond, Seed: 5}
	res, out, err := runShuffleJob(t, sc, "node:0:down=120ms", policy)
	if err != nil {
		t.Fatalf("node outage not survived: %v", err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output %d differs from fault-free in-memory run", i)
		}
	}
	c := res.Counters
	if c.MapTasksRecovered.Value() == 0 {
		t.Error("lost map output never re-executed its producer")
	}
	if c.ShuffleFetchRetries.Value() == 0 {
		t.Error("outage forced no fetch retries")
	}
	if len(res.WastedMapTasks) == 0 {
		t.Error("replaced map attempt's work not charged as waste")
	}
}

// TestNetShuffleExhaustionWithoutRetriesFails: when fetches exhaust and the
// task-retry budget is spent, the job fails with the lost segment's typed
// error naming the producing map task.
func TestNetShuffleExhaustionWithoutRetriesFails(t *testing.T) {
	sc := &ShuffleConfig{Mode: ShuffleNet, FetchAttempts: 2, BreakerThreshold: -1}
	_, _, err := runShuffleJob(t, sc, "net:1:refuse@*", RetryPolicy{})
	if err == nil {
		t.Fatal("expected a permanently refused fetch to fail the job")
	}
	var ce *ErrCorruptSegment
	if !errors.As(err, &ce) {
		t.Fatalf("error chain has no ErrCorruptSegment: %v", err)
	}
	if ce.MapTask != 1 {
		t.Errorf("lost output blamed on map %d, want 1", ce.MapTask)
	}
}

// TestNetShuffleSegmentCorruptionAtRest: producer-side (at-rest) corruption
// travels faithfully over the wire, is detected at fetch time, and recovers
// through the existing re-execute-the-producer path.
func TestNetShuffleSegmentCorruptionAtRest(t *testing.T) {
	_, want := cleanBaseline(t)
	sc := &ShuffleConfig{Mode: ShuffleNet}
	res, out, err := runShuffleJob(t, sc, "seed=7;segment:2.0:corrupt@0", RetryPolicy{MaxAttempts: 3})
	if err != nil {
		t.Fatalf("at-rest corruption not recovered over the network: %v", err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("output %d differs from fault-free in-memory run", i)
		}
	}
	c := res.Counters
	if c.CorruptSegmentsDetected.Value() == 0 {
		t.Error("corruption never detected")
	}
	if c.MapTasksRecovered.Value() == 0 {
		t.Error("corrupt segment's producer never re-executed")
	}
}

// TestJobTimeoutCancelsAttempts: a deadline interrupts in-flight attempts
// and Run returns the typed timeout error promptly.
func TestJobTimeoutCancelsAttempts(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Timeout = 50 * time.Millisecond
	job.NewMapper = func() Mapper {
		return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
			deadline := time.Now().Add(5 * time.Second)
			for !ctx.Canceled() && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			return nil
		})
	}
	start := time.Now()
	_, err := Run(job)
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Timeout != job.Timeout {
		t.Errorf("TimeoutError.Timeout = %v, want %v", te.Timeout, job.Timeout)
	}
	if elapsed > 2*time.Second {
		t.Errorf("timeout took %v to take effect", elapsed)
	}
}

// TestJobTimeoutInterruptsBackoff: the deadline must cut a pending retry
// backoff short — a ten-minute delay cannot stall the exit.
func TestJobTimeoutInterruptsBackoff(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Timeout = 80 * time.Millisecond
	job.Retry = RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Minute}
	job.Faults = mustInjector(t, "map:0:error@*")
	start := time.Now()
	_, err := Run(job)
	elapsed := time.Since(start)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("backoff sleep survived the deadline for %v", elapsed)
	}
}

// TestJobTimeoutNotTriggeredOnFastJob: a generous deadline leaves a healthy
// run untouched.
func TestJobTimeoutNotTriggeredOnFastJob(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Timeout = 30 * time.Second
	if _, err := Run(job); err != nil {
		t.Fatalf("deadline leaked into a healthy run: %v", err)
	}
}

// TestRetryPolicyDelayTable pins RetryPolicy.delay's edges: jitter bounds,
// BackoffMax capping, doubling, and saturation at deep failure counts.
func TestRetryPolicyDelayTable(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name     string
		policy   RetryPolicy
		task     int
		failures int
		lo, hi   time.Duration // want delay in [lo, hi); lo==hi means exact
	}{
		{"no failures yet", RetryPolicy{Backoff: 10 * ms}, 0, 0, 0, 0},
		{"zero base", RetryPolicy{}, 0, 3, 0, 0},
		{"negative failures", RetryPolicy{Backoff: 10 * ms}, 0, -1, 0, 0},
		{"first retry", RetryPolicy{Backoff: 10 * ms}, 0, 1, 5 * ms, 10 * ms},
		{"doubles", RetryPolicy{Backoff: 10 * ms}, 0, 3, 20 * ms, 40 * ms},
		{"cap engages", RetryPolicy{Backoff: 10 * ms, BackoffMax: 25 * ms}, 0, 3, 25 * ms / 2, 25 * ms},
		{"cap below base", RetryPolicy{Backoff: 10 * ms, BackoffMax: 4 * ms}, 0, 1, 2 * ms, 4 * ms},
		// A failure count deep enough to overflow naive shifting must
		// saturate at the cap, not wrap.
		{"saturates", RetryPolicy{Backoff: 10 * ms, BackoffMax: time.Second}, 0, 200, time.Second / 2, time.Second},
		{"saturates uncapped", RetryPolicy{Backoff: 10 * ms}, 0, 200, time.Hour, math.MaxInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.policy.delay(tc.task, tc.failures)
			if d != tc.policy.delay(tc.task, tc.failures) {
				t.Fatal("delay is not deterministic")
			}
			if tc.lo == tc.hi {
				if d != tc.lo {
					t.Fatalf("delay = %v, want exactly %v", d, tc.lo)
				}
				return
			}
			if d < tc.lo || d >= tc.hi {
				t.Fatalf("delay = %v, want in [%v, %v)", d, tc.lo, tc.hi)
			}
		})
	}
}

// TestShuffleConfigValidation rejects unknown modes.
func TestShuffleConfigValidation(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Shuffle = &ShuffleConfig{Mode: "carrier-pigeon"}
	if _, err := Run(job); err == nil {
		t.Fatal("bogus shuffle mode accepted")
	}
}
