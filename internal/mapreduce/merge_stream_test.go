package mapreduce

import (
	"bytes"
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"scikey/internal/codec"
)

// countingCodec wraps a codec and counts successful reader constructions —
// the instrument of the leak-regression tests. Each instance gets its own
// engine-level reader pool (the pools are keyed per codec instance), so the
// counts see exactly this test's traffic: once the pool is warm, a fixed
// merge workload must construct zero new readers, however it fails.
type countingCodec struct {
	inner   codec.Codec
	created atomic.Int64
}

func (c *countingCodec) Name() string                         { return "counting+" + c.inner.Name() }
func (c *countingCodec) NewWriter(w io.Writer) io.WriteCloser { return c.inner.NewWriter(w) }

func (c *countingCodec) NewReader(r io.Reader) (io.ReadCloser, error) {
	rc, err := c.inner.NewReader(r)
	if err != nil {
		return nil, err
	}
	c.created.Add(1)
	return &countingReader{rc}, nil
}

// leakIters / leakSlack size the leak assertions: after warmup each failing
// run is repeated leakIters times, and the tests tolerate up to leakSlack
// fresh reader constructions. Under the race detector sync.Pool drops ~25%
// of Puts at random, so a leak-free run still constructs ~1-2 readers per
// iteration (~36 total, ~5 constructions of standard deviation); a leak
// strands every reader in the heap, ~5-6 per iteration (≥120 total). The
// slack sits >4 sigma above the noise and far below the leak signature.
const (
	leakIters = 24
	leakSlack = 3 * leakIters
)

// countingReader forwards Reset so the wrapped reader stays poolable.
type countingReader struct{ io.ReadCloser }

func (r *countingReader) Reset(src io.Reader) error {
	return r.ReadCloser.(interface{ Reset(io.Reader) error }).Reset(src)
}

// leakSegments builds n interleaved sorted segments of m records each.
func leakSegments(t *testing.T, c codec.Codec, n, m int, keyf func(i, s int) string) []segment {
	t.Helper()
	segs := make([]segment, 0, n)
	for s := 0; s < n; s++ {
		pairs := make([]KV, 0, m)
		for i := 0; i < m; i++ {
			pairs = append(pairs, KV{Key: []byte(keyf(i, s)), Value: []byte{byte(s), byte(i)}})
		}
		seg, err := writeSegment(pairs, c)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
	}
	return segs
}

// TestMergeAdvanceErrorReleasesReaders regresses the mid-merge leak: a
// segment that fails partway through decoding used to strand every other
// iterator still in the heap, so their pooled codec readers were never
// returned. With the fix, repeated failing merges run entirely from the
// warm pool.
func TestMergeAdvanceErrorReleasesReaders(t *testing.T) {
	cc := &countingCodec{inner: codec.Gzip}
	// The corrupt segment's keys sort first, so it fails while the other
	// five iterators are all still live in the heap.
	segs := leakSegments(t, cc, 6, 40, func(i, s int) string {
		if s == 5 {
			return fmt.Sprintf("a%03d", i)
		}
		return fmt.Sprintf("z%03d-%d", i, s)
	})
	mid := len(segs[5].data) / 2
	for i := 0; i < 8; i++ {
		segs[5].data[mid+i] ^= 0xA5
	}
	env := readEnv{codec: cc}
	run := func() {
		if _, err := mergeSegments(segs, env, bytes.Compare); err == nil {
			t.Fatal("expected merge error from corrupted segment")
		}
	}
	run() // warm the pools
	base := cc.created.Load()
	for i := 0; i < leakIters; i++ {
		run()
	}
	if grown := cc.created.Load() - base; grown > leakSlack {
		t.Errorf("codec readers leaked: %d constructed across %d failing merges, want ~0", grown, leakIters)
	}
}

// TestMergeOpenErrorReleasesReaders regresses the open-path leak: when a
// later segment fails to open (bad codec header), the iterators opened
// before it must still be released.
func TestMergeOpenErrorReleasesReaders(t *testing.T) {
	cc := &countingCodec{inner: codec.Gzip}
	segs := leakSegments(t, cc, 6, 10, func(i, s int) string {
		return fmt.Sprintf("k%03d-%d", i, s)
	})
	// Destroy the last segment's gzip header so opening it fails after the
	// first five are already in the heap.
	segs[5].data[0] ^= 0xFF
	segs[5].data[1] ^= 0xFF
	env := readEnv{codec: cc}
	run := func() {
		if _, err := mergeSegments(segs, env, bytes.Compare); err == nil {
			t.Fatal("expected open error from corrupted gzip header")
		}
	}
	run()
	base := cc.created.Load()
	for i := 0; i < leakIters; i++ {
		run()
	}
	if grown := cc.created.Load() - base; grown > leakSlack {
		t.Errorf("codec readers leaked: %d constructed across %d failing opens, want ~0", grown, leakIters)
	}
}

// TestMergeStreamAbandonReleasesReaders: closing a partially-drained merge
// stream (as a failed reduce attempt does) must return every reader to the
// pool even though none of the iterators is exhausted.
func TestMergeStreamAbandonReleasesReaders(t *testing.T) {
	cc := &countingCodec{inner: codec.Gzip}
	segs := leakSegments(t, cc, 5, 30, func(i, s int) string {
		return fmt.Sprintf("k%03d-%d", i, s)
	})
	env := readEnv{codec: cc}
	run := func() {
		m, err := newMergeStream(segs, env, bytes.Compare)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := m.next(); err != nil || !ok {
				t.Fatalf("next: ok=%v err=%v", ok, err)
			}
		}
		m.close()
	}
	run()
	base := cc.created.Load()
	for i := 0; i < leakIters; i++ {
		run()
	}
	if grown := cc.created.Load() - base; grown > leakSlack {
		t.Errorf("codec readers leaked: %d constructed across %d abandoned streams, want ~0", grown, leakIters)
	}
}

// TestSortSegmentsBySizeStable pins the smallest-first, stable contract the
// merge pass depends on (equal-size segments keep their arrival order, so
// passes stay deterministic).
func TestSortSegmentsBySizeStable(t *testing.T) {
	sizes := []int{5, 3, 5, 0, 3}
	segs := make([]segment, len(sizes))
	for i, n := range sizes {
		segs[i] = segment{data: make([]byte, n), records: int64(i)}
	}
	sortSegmentsBySize(segs)
	want := []int64{3, 1, 4, 0, 2}
	for i, w := range want {
		if segs[i].records != w {
			t.Fatalf("position %d: segment %d, want %d (order %v)", i, segs[i].records, w, segs)
		}
	}
}

// TestMergeDownManySegments drives the multi-pass merge with far more
// segments than the factor — the regime where the per-pass re-sort runs
// repeatedly — and checks the surviving segment holds every record in
// order.
func TestMergeDownManySegments(t *testing.T) {
	var want []string
	var segs []segment
	for s := 0; s < 40; s++ {
		m := s%7 + 1
		pairs := make([]KV, 0, m)
		for i := 0; i < m; i++ {
			k := fmt.Sprintf("key-%02d-%02d", i, s)
			pairs = append(pairs, KV{Key: []byte(k), Value: []byte{byte(s)}})
			want = append(want, k)
		}
		seg, err := writeSegment(pairs, codec.None)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, seg)
	}
	env := readEnv{codec: codec.None}
	var passes int
	out, err := mergeDown(segs, env, bytes.Compare, 3, 1, func(read, written, records int64) {
		passes++
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("mergeDown left %d segments, want 1", len(out))
	}
	if passes < 19 {
		t.Errorf("only %d merge passes for 40 segments at factor 3", passes)
	}
	pairs, err := mergeSegments(out, env, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(want) {
		t.Fatalf("merged %d records, want %d", len(pairs), len(want))
	}
	for i := 1; i < len(pairs); i++ {
		if bytes.Compare(pairs[i-1].Key, pairs[i].Key) > 0 {
			t.Fatalf("output out of order at %d: %q > %q", i, pairs[i-1].Key, pairs[i].Key)
		}
	}
	got := make(map[string]int)
	for _, p := range pairs {
		got[string(p.Key)]++
	}
	for _, k := range want {
		if got[k] == 0 {
			t.Fatalf("record %q missing from merged output", k)
		}
		got[k]--
	}
}
