package mapreduce

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"scikey/internal/codec"
)

// laneValue encodes lanes as the big-endian int32 array every built-in
// combiner folds.
func laneValue(lanes ...int32) []byte {
	out := make([]byte, 0, 4*len(lanes))
	for _, l := range lanes {
		out = binary.BigEndian.AppendUint32(out, uint32(l))
	}
	return out
}

// randomLanes draws a lane array of the given width from the full int32
// range, the domain the monoid laws must hold over.
func randomLanes(rng *rand.Rand, width int) []byte {
	lanes := make([]int32, width)
	for i := range lanes {
		lanes[i] = int32(rng.Uint32())
	}
	return laneValue(lanes...)
}

// mustMerge clones both operands before merging — Merge may consume a in
// place, and law checks reuse operands across expressions.
func mustMerge(t *testing.T, m Monoid, a, b []byte) []byte {
	t.Helper()
	out, err := m.Merge(bytes.Clone(a), bytes.Clone(b))
	if err != nil {
		t.Fatalf("Merge(%x, %x): %v", a, b, err)
	}
	return out
}

// TestCombinerLaws property-checks every built-in combiner for the three
// laws node-level combining relies on — associativity, identity (both
// sides), and commutativity — across lane widths including the empty value.
func TestCombinerLaws(t *testing.T) {
	combiners := BuiltinCombiners()
	if len(combiners) == 0 {
		t.Fatal("no built-in combiners registered")
	}
	for _, c := range combiners {
		t.Run(c.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5c1))
			for _, width := range []int{0, 1, 2, 9, 64} {
				for trial := 0; trial < 64; trial++ {
					a := randomLanes(rng, width)
					b := randomLanes(rng, width)
					cc := randomLanes(rng, width)

					ab_c := mustMerge(t, c, mustMerge(t, c, a, b), cc)
					a_bc := mustMerge(t, c, a, mustMerge(t, c, b, cc))
					if !bytes.Equal(ab_c, a_bc) {
						t.Fatalf("associativity broken at width %d: (a·b)·c=%x a·(b·c)=%x", width, ab_c, a_bc)
					}

					ab := mustMerge(t, c, a, b)
					ba := mustMerge(t, c, b, a)
					if !bytes.Equal(ab, ba) {
						t.Fatalf("commutativity broken at width %d: a·b=%x b·a=%x", width, ab, ba)
					}

					if got := mustMerge(t, c, c.Identity(), a); !bytes.Equal(got, a) {
						t.Fatalf("left identity broken at width %d: e·a=%x a=%x", width, got, a)
					}
					if got := mustMerge(t, c, a, c.Identity()); !bytes.Equal(got, a) {
						t.Fatalf("right identity broken at width %d: a·e=%x a=%x", width, got, a)
					}
				}
			}
		})
	}
}

// TestCombinerFolds pins the fold semantics the laws alone do not fix.
func TestCombinerFolds(t *testing.T) {
	cases := []struct {
		c    Combiner
		a, b []int32
		want []int32
	}{
		{MaxInt32, []int32{3, -8, 7}, []int32{5, -9, 7}, []int32{5, -8, 7}},
		{MinInt32, []int32{3, -8, 7}, []int32{5, -9, 7}, []int32{3, -9, 7}},
		{SumInt32, []int32{3, -8, 1 << 30}, []int32{5, -9, 1 << 30}, []int32{8, -17, -1 << 31}},
	}
	for _, tc := range cases {
		got := mustMerge(t, tc.c, laneValue(tc.a...), laneValue(tc.b...))
		if want := laneValue(tc.want...); !bytes.Equal(got, want) {
			t.Errorf("%s: Merge(%v, %v) = %x, want %x", tc.c.Name(), tc.a, tc.b, got, want)
		}
	}
}

// TestCombinerMergeErrors: mismatched lane counts are corruption-grade
// errors, not silent truncation.
func TestCombinerMergeErrors(t *testing.T) {
	if _, err := MaxInt32.Merge(laneValue(1, 2), laneValue(1)); err == nil {
		t.Error("lane-count mismatch not rejected")
	}
	if _, err := MaxInt32.Merge([]byte{1, 2, 3}, []byte{4, 5, 6}); err == nil {
		t.Error("non-int32-aligned values not rejected")
	}
}

// TestCombinerByName: the wire names round-trip and unknown names fail.
func TestCombinerByName(t *testing.T) {
	for _, c := range BuiltinCombiners() {
		got, err := CombinerByName(c.Name())
		if err != nil {
			t.Fatalf("CombinerByName(%q): %v", c.Name(), err)
		}
		if got != c {
			t.Errorf("CombinerByName(%q) returned a different combiner", c.Name())
		}
	}
	if _, err := CombinerByName("median"); err == nil {
		t.Error("unknown combiner name not rejected")
	}
}

// combineJob is a minimal job carrying just what NodeBuffer and
// combineStream consult: splits, partitions, compare, codec, combine config.
func combineJob(splits, reducers, nodes int, cut func() func([]byte) bool) *Job {
	sp := make([]Split, splits)
	for i := range sp {
		sp[i] = Split{ID: i}
	}
	return &Job{
		Splits:      sp,
		NumReducers: reducers,
		Compare:     bytes.Compare,
		MergeCut:    cut,
		Combine:     &CombineConfig{Combiner: SumInt32, Nodes: nodes},
	}
}

// mustWriteSegment materializes sorted pairs as a segment attributed to a
// map attempt.
func mustWriteSegment(t *testing.T, pairs []KV, src, attempt int) segment {
	t.Helper()
	seg, err := writeSegment(pairs, codec.None)
	if err != nil {
		t.Fatal(err)
	}
	seg.src, seg.attempt = src, attempt
	return seg
}

// drainStream collects a kvStream into owned records.
func drainStream(t *testing.T, s kvStream) []KV {
	t.Helper()
	var out []KV
	for {
		kv, ok, err := s.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, KV{Key: bytes.Clone(kv.Key), Value: bytes.Clone(kv.Value)})
	}
}

// TestCombineStreamFoldsRuns: equal-key runs fold into one record, distinct
// keys pass through, and the record accounting matches.
func TestCombineStreamFoldsRuns(t *testing.T) {
	segA := mustWriteSegment(t, []KV{
		{Key: []byte("a"), Value: laneValue(1)},
		{Key: []byte("b"), Value: laneValue(10)},
		{Key: []byte("c"), Value: laneValue(100)},
	}, 0, 0)
	segB := mustWriteSegment(t, []KV{
		{Key: []byte("a"), Value: laneValue(2)},
		{Key: []byte("a"), Value: laneValue(4)},
		{Key: []byte("c"), Value: laneValue(200)},
	}, 1, 0)
	ms, err := newMergeStream([]segment{segA, segB}, readEnv{codec: codec.None, borrow: true}, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	cs := &combineStream{src: ms, cmp: bytes.Compare, m: SumInt32}
	defer cs.close()
	got := drainStream(t, cs)
	want := []KV{
		{Key: []byte("a"), Value: laneValue(7)},
		{Key: []byte("b"), Value: laneValue(10)},
		{Key: []byte("c"), Value: laneValue(300)},
	}
	if len(got) != len(want) {
		t.Fatalf("combined stream has %d records, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Errorf("record %d = (%q, %x), want (%q, %x)", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
	if cs.inRecords != 6 || cs.outRecords != 3 {
		t.Errorf("record accounting = %d in / %d out, want 6/3", cs.inRecords, cs.outRecords)
	}
}

// TestCombineStreamRespectsCuts: a key starting a new MergeCut window is
// never folded into the pending run, even when it equals the pending key —
// the invariant keeping windowed merge transforms byte-identical.
func TestCombineStreamRespectsCuts(t *testing.T) {
	segA := mustWriteSegment(t, []KV{
		{Key: []byte("a"), Value: laneValue(1)},
		{Key: []byte("a"), Value: laneValue(2)},
	}, 0, 0)
	segB := mustWriteSegment(t, []KV{
		{Key: []byte("a"), Value: laneValue(4)},
	}, 1, 0)
	ms, err := newMergeStream([]segment{segA, segB}, readEnv{codec: codec.None, borrow: true}, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	// Cut before the third key: two equal keys share the first window, the
	// third starts its own and must stay a separate record.
	seen := 0
	cut := func(key []byte) bool {
		seen++
		return seen == 3
	}
	cs := &combineStream{src: ms, cmp: bytes.Compare, m: SumInt32, cut: cut}
	defer cs.close()
	got := drainStream(t, cs)
	if len(got) != 2 {
		t.Fatalf("cut window ignored: got %d records %v, want 2", len(got), got)
	}
	if !bytes.Equal(got[0].Value, laneValue(3)) || !bytes.Equal(got[1].Value, laneValue(4)) {
		t.Errorf("window fold wrong: values %x / %x, want lanes 3 / 4", got[0].Value, got[1].Value)
	}
	if seen != 3 {
		t.Errorf("cut predicate saw %d keys, want every incoming key once (3)", seen)
	}
}

// TestNodeBufferCombine drives the buffer directly: grouped feeds, the
// representative/empty-row publication shape, duplicate folding across
// members, and stats overwriting on recombine.
func TestNodeBufferCombine(t *testing.T) {
	job := combineJob(4, 2, 2, nil)
	nb := newNodeBuffer(job)
	if nb == nil {
		t.Fatal("newNodeBuffer returned nil for a combining job")
	}
	if nb.numGroups() != 2 {
		t.Fatalf("numGroups = %d, want 2", nb.numGroups())
	}
	if got := nb.members(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("members(0) = %v, want [0 2]", got)
	}

	// Tasks 0 and 2 share group 0 and both emit key "k" to partition 0.
	feed := func(task, attempt int, lane int32) {
		finals := make([]segment, job.NumReducers)
		finals[0] = mustWriteSegment(t, []KV{{Key: []byte("k"), Value: laneValue(lane)}}, task, attempt)
		nb.feed(task, attempt, finals)
	}
	feed(0, 0, 5)
	feed(2, 0, 7)
	if err := nb.combine(0); err != nil {
		t.Fatal(err)
	}

	repRow, attempt := nb.row(0)
	if attempt != 0 {
		t.Errorf("representative attempt = %d, want 0", attempt)
	}
	pairs, err := mergeSegments([]segment{repRow[0]}, readEnv{codec: codec.None}, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || !bytes.Equal(pairs[0].Value, laneValue(12)) {
		t.Fatalf("combined row = %v, want one record with lane 12", pairs)
	}
	if repRow[0].src != 0 {
		t.Errorf("combined segment src = %d, want representative 0", repRow[0].src)
	}
	memberRow, _ := nb.row(2)
	for p, seg := range memberRow {
		if len(seg.data) != 0 {
			t.Errorf("non-representative row partition %d not empty (%d bytes)", p, len(seg.data))
		}
	}

	// Re-feeding a member (a recovery re-execution) dirties the group; the
	// recombine folds the fresh value and overwrites — not accumulates —
	// the group stats.
	var before Counters
	nb.fold(&before)
	feed(2, 1, 9)
	if err := nb.combine(0); err != nil {
		t.Fatal(err)
	}
	repRow, _ = nb.row(0)
	pairs, err = mergeSegments([]segment{repRow[0]}, readEnv{codec: codec.None}, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || !bytes.Equal(pairs[0].Value, laneValue(14)) {
		t.Fatalf("recombined row = %v, want one record with lane 14", pairs)
	}
	var after Counters
	nb.fold(&after)
	if got, want := after.CombineMergedRecords.Value(), before.CombineMergedRecords.Value(); got != want {
		t.Errorf("recombine accumulated stats: merged %d, want still %d", got, want)
	}

	// A clean group's combine is a no-op.
	if err := nb.combine(0); err != nil {
		t.Fatal(err)
	}
}

// TestCombineGroupCount pins the node-group resolution: explicit wins,
// networked defaults to the shuffle node count, and groups never exceed the
// map task count.
func TestCombineGroupCount(t *testing.T) {
	j := combineJob(10, 1, 0, nil)
	if got := j.combineGroupCount(); got != 1 {
		t.Errorf("in-memory default groups = %d, want 1", got)
	}
	j.Combine.Nodes = 4
	if got := j.combineGroupCount(); got != 4 {
		t.Errorf("explicit groups = %d, want 4", got)
	}
	j.Combine.Nodes = 64
	if got := j.combineGroupCount(); got != 10 {
		t.Errorf("groups not clamped to splits: %d, want 10", got)
	}
	j.Combine.Nodes = 0
	j.Shuffle = &ShuffleConfig{Mode: ShuffleNet}
	if got := j.combineGroupCount(); got != 3 {
		t.Errorf("networked default groups = %d, want shufflenet default 3", got)
	}
	j.Shuffle.Nodes = 5
	if got := j.combineGroupCount(); got != 5 {
		t.Errorf("networked groups = %d, want Shuffle.Nodes 5", got)
	}
}

// TestCombineValidate: combining without a combiner, or with a negative
// node count, fails validation up front.
func TestCombineValidate(t *testing.T) {
	job := wordCountJob(testFS(), faultDocs, 2, false)
	job.Combine = &CombineConfig{}
	if _, err := Run(job); err == nil {
		t.Error("nil Combiner accepted")
	}
	job.Combine = &CombineConfig{Combiner: SumInt32, Nodes: -1}
	if _, err := Run(job); err == nil {
		t.Error("negative Nodes accepted")
	}
}

// runCombineWordCount runs the wordcount job with in-node combining
// configured (nodes groups) and the given fault spec.
func runCombineWordCount(t *testing.T, nodes int, spec string, policy RetryPolicy) (*Counters, []string) {
	t.Helper()
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Combine = &CombineConfig{Combiner: SumInt32, Nodes: nodes}
	job.Retry = policy
	if spec != "" {
		job.Faults = mustInjector(t, spec)
	}
	res, err := Run(job)
	if err != nil {
		t.Fatalf("combining run (nodes=%d, faults=%q) failed: %v", nodes, spec, err)
	}
	return res.Counters, readRawOutputs(t, fs, res.OutputPaths)
}

// TestCombineDifferential is the engine-level byte-identity proof: the same
// job with in-node combining off, on with one group, and on with several
// groups produces byte-identical reducer output files, identical map-side
// and reduce-output payload counters, and strictly fewer shuffle bytes and
// reduce input records when duplicates fold.
func TestCombineDifferential(t *testing.T) {
	fs := testFS()
	ref := wordCountJob(fs, faultDocs, 2, false)
	refRes, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	refOut := readRawOutputs(t, fs, refRes.OutputPaths)
	rc := refRes.Counters

	for _, nodes := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			c, out := runCombineWordCount(t, nodes, "", RetryPolicy{})
			if len(out) != len(refOut) {
				t.Fatalf("output file count %d, want %d", len(out), len(refOut))
			}
			for i := range out {
				if out[i] != refOut[i] {
					t.Errorf("output file %d differs from uncombined run", i)
				}
			}
			// Payload counters the combine phase must not disturb.
			same := []struct {
				name      string
				got, want int64
			}{
				{"MapOutputRecords", c.MapOutputRecords.Value(), rc.MapOutputRecords.Value()},
				{"MapOutputBytes", c.MapOutputBytes.Value(), rc.MapOutputBytes.Value()},
				{"MapOutputMaterializedBytes", c.MapOutputMaterializedBytes.Value(), rc.MapOutputMaterializedBytes.Value()},
				{"ReduceInputGroups", c.ReduceInputGroups.Value(), rc.ReduceInputGroups.Value()},
				{"ReduceOutputRecords", c.ReduceOutputRecords.Value(), rc.ReduceOutputRecords.Value()},
				{"ReduceOutputBytes", c.ReduceOutputBytes.Value(), rc.ReduceOutputBytes.Value()},
			}
			for _, s := range same {
				if s.got != s.want {
					t.Errorf("%s = %d, uncombined run = %d", s.name, s.got, s.want)
				}
			}
			// Combining must actually shrink the shuffle: the docs share
			// words, so every group has cross-task duplicates to fold.
			if got, want := c.ReduceShuffleBytes.Value(), rc.ReduceShuffleBytes.Value(); got >= want {
				t.Errorf("ReduceShuffleBytes = %d, want < uncombined %d", got, want)
			}
			if got, want := c.ReduceInputRecords.Value(), rc.ReduceInputRecords.Value(); got >= want {
				t.Errorf("ReduceInputRecords = %d, want < uncombined %d", got, want)
			}
			if c.CombineMergedRecords.Value() <= 0 {
				t.Error("CombineMergedRecords = 0: the differential exercises nothing")
			}
			if got := c.CombineEmittedRecords.Value(); got != c.ReduceInputRecords.Value() {
				t.Errorf("CombineEmittedRecords = %d, want = ReduceInputRecords %d", got, c.ReduceInputRecords.Value())
			}
			if got, want := c.CombineSavedBytes.Value(), rc.ReduceShuffleBytes.Value()-c.ReduceShuffleBytes.Value(); got != want {
				t.Errorf("CombineSavedBytes = %d, want shuffle delta %d", got, want)
			}
		})
	}
}

// TestCombineRecoversCorruptCombinedSegment corrupts the combined segment at
// reduce time: provenance names the group representative, whose re-execution
// re-feeds the buffer, the group recombines, and the job finishes with
// fault-free bytes and undisturbed payload counters.
func TestCombineRecoversCorruptCombinedSegment(t *testing.T) {
	clean, cleanOut := runCombineWordCount(t, 1, "", RetryPolicy{})
	// With one node group, task 0 is the only representative: every
	// non-empty reduce fetch reads its segments.
	c, out := runCombineWordCount(t, 1, "seed=7;segment:0.0:corrupt@0", RetryPolicy{MaxAttempts: 3})
	for i := range out {
		if out[i] != cleanOut[i] {
			t.Errorf("output file %d differs from fault-free combining run", i)
		}
	}
	if c.CorruptSegmentsDetected.Value() == 0 {
		t.Error("corruption not detected: the fault exercised nothing")
	}
	if c.MapTasksRecovered.Value() == 0 {
		t.Error("no map task recovered for the corrupt combined segment")
	}
	if got, want := c.ReduceShuffleBytes.Value(), clean.ReduceShuffleBytes.Value(); got != want {
		t.Errorf("recovered ReduceShuffleBytes = %d, fault-free = %d", got, want)
	}
	if got, want := c.CombineSavedBytes.Value(), clean.CombineSavedBytes.Value(); got != want {
		t.Errorf("recovered CombineSavedBytes = %d, fault-free = %d", got, want)
	}
}

// TestRemoteCombineByteIdentical runs the combining job over the remote
// execution path: map attempts execute in loopback "worker" processes, the
// driver-side combine phase pools their committed output, and pushGroup's
// PublishRemote leg ships combined segments (and the members' empty rows) to
// the segment store reducers fetch from. Output must be byte-identical to
// the uncombined remote run, with the combined topology visible in the
// store: only representatives hold data.
func TestRemoteCombineByteIdentical(t *testing.T) {
	refFS, refRes, _ := runRemoteJob(t, 2)
	refOuts := readRawOutputs(t, refFS, refRes.OutputPaths)

	fs := testFS()
	job := wordCountJob(fs, remoteDocs, 3, true)
	job.Parallelism = 2
	job.Retry = RetryPolicy{MaxAttempts: 3}
	job.Combine = &CombineConfig{Combiner: SumInt32, Nodes: 2}
	remote := newLoopbackRemote(func() *Job {
		return wordCountJob(testFS(), remoteDocs, 3, true)
	})
	job.Remote = remote
	res, err := Run(job)
	if err != nil {
		t.Fatal(err)
	}
	outs := readRawOutputs(t, fs, res.OutputPaths)
	for i := range refOuts {
		if outs[i] != refOuts[i] {
			t.Errorf("output %d differs from uncombined remote run", i)
		}
	}
	c := res.Counters
	if c.CombineMergedRecords.Value() <= 0 {
		t.Error("remote combining folded nothing; test exercises nothing")
	}
	if got, want := c.ReduceShuffleBytes.Value(), refRes.Counters.ReduceShuffleBytes.Value(); got >= want {
		t.Errorf("remote ReduceShuffleBytes = %d, want < uncombined %d", got, want)
	}
	// Groups are {0,2} and {1,3}: tasks 2 and 3 publish only empty parts.
	remote.mu.Lock()
	defer remote.mu.Unlock()
	for _, member := range []int{2, 3} {
		e, ok := remote.segs[member]
		if !ok {
			t.Errorf("member task %d published nothing", member)
			continue
		}
		for p, data := range e.parts {
			if len(data) != 0 {
				t.Errorf("member task %d partition %d holds %d bytes, want empty", member, p, len(data))
			}
		}
	}
	for _, rep := range []int{0, 1} {
		e, ok := remote.segs[rep]
		if !ok {
			t.Errorf("representative task %d published nothing", rep)
			continue
		}
		var bytes int
		for _, data := range e.parts {
			bytes += len(data)
		}
		if bytes == 0 {
			t.Errorf("representative task %d published no combined data", rep)
		}
	}
}
