package mapreduce

import (
	"fmt"

	"scikey/internal/cluster"
)

// SegmentSnapshot is one published map-output segment in cacheable form:
// the framed IFile bytes plus the provenance (producing task and attempt)
// the shuffle and corruption-recovery paths key on.
type SegmentSnapshot struct {
	Data    []byte
	Records int64
	Src     int
	Attempt int
}

// MapPhaseSnapshot captures everything the reduce phase consumes from a
// finished map phase — the published per-task, per-partition segments (the
// post-combine view when the job combines in-node), the attempt numbers
// they were published under, the winning attempts' cost-model footprints,
// and the map side's contribution to the job counters (payload counters
// merged from the winning attempts plus the in-node combine accounting,
// in Counters.Snapshot wire order).
//
// A job that restores a snapshot skips its map and combine phases entirely
// and still assembles a Result whose output bytes, payload counters, and
// cost-model inputs are identical to the run that produced the snapshot —
// the invariant the differential tests pin.
type MapPhaseSnapshot struct {
	// Segments[task][partition] is the published map output view.
	Segments [][]SegmentSnapshot
	// Attempts[task] is the attempt number task's segments were published
	// under (the shuffle service indexes segments by it).
	Attempts []int
	// Footprints, InputBytes, Hosts, WallSeconds describe the winning map
	// attempts for Result.MapTasks / MapSpecs / CalSamples.
	Footprints  []cluster.Task
	InputBytes  []int64
	Hosts       [][]string
	WallSeconds []float64
	// Counters is the map side's counter contribution in Snapshot order.
	Counters []int64
	// NumReducers is the partition count the segments were routed for; a
	// snapshot only fits a job with the same value.
	NumReducers int
}

// MapOutputCache stores MapPhaseSnapshots by cache key. Get reports a miss
// as ok=false; corrupt or stale entries must surface as misses, never as
// errors that fail the job (the engine falls back to running the map
// phase). Implementations are safe for concurrent use.
type MapOutputCache interface {
	Get(key string) (*MapPhaseSnapshot, bool)
	Put(key string, snap *MapPhaseSnapshot) error
}

// matches reports whether the snapshot fits the job's shape. A mismatch
// (different split or reducer count under a colliding key) is treated as a
// cache miss.
func (s *MapPhaseSnapshot) matches(job *Job) bool {
	n := len(job.Splits)
	return s != nil &&
		len(s.Segments) == n && len(s.Attempts) == n &&
		len(s.Footprints) == n && len(s.InputBytes) == n &&
		len(s.Hosts) == n && len(s.WallSeconds) == n &&
		s.NumReducers == job.NumReducers
}

// Clone deep-copies the snapshot, including segment bytes, so cached state
// never aliases live job memory.
func (s *MapPhaseSnapshot) Clone() *MapPhaseSnapshot {
	c := &MapPhaseSnapshot{
		Segments:    make([][]SegmentSnapshot, len(s.Segments)),
		Attempts:    append([]int(nil), s.Attempts...),
		Footprints:  append([]cluster.Task(nil), s.Footprints...),
		InputBytes:  append([]int64(nil), s.InputBytes...),
		Hosts:       make([][]string, len(s.Hosts)),
		WallSeconds: append([]float64(nil), s.WallSeconds...),
		Counters:    append([]int64(nil), s.Counters...),
		NumReducers: s.NumReducers,
	}
	for i, row := range s.Segments {
		c.Segments[i] = make([]SegmentSnapshot, len(row))
		for p, seg := range row {
			c.Segments[i][p] = SegmentSnapshot{
				Data:    append([]byte(nil), seg.Data...),
				Records: seg.Records,
				Src:     seg.Src,
				Attempt: seg.Attempt,
			}
		}
	}
	for i, h := range s.Hosts {
		c.Hosts[i] = append([]string(nil), h...)
	}
	return c
}

// Bytes sums the snapshot's segment payload sizes — what a byte-budgeted
// cache charges for holding it.
func (s *MapPhaseSnapshot) Bytes() int64 {
	var n int64
	for _, row := range s.Segments {
		for _, seg := range row {
			n += int64(len(seg.Data))
		}
	}
	return n
}

// restoreSegments converts the snapshot's published view back into engine
// segments, ready for mapOutputs.
func (s *MapPhaseSnapshot) restoreSegments() [][]segment {
	outs := make([][]segment, len(s.Segments))
	for i, row := range s.Segments {
		outs[i] = make([]segment, len(row))
		for p, seg := range row {
			outs[i][p] = segment{
				data:    seg.Data,
				records: seg.Records,
				src:     seg.Src,
				attempt: seg.Attempt,
			}
		}
	}
	return outs
}

// snapshotMapPhase captures a finished run's published map state for the
// cache: mapOutputs is the published (post-combine) view, tasks the winning
// attempts, nb the combine buffer when the job combined. Segment bytes are
// copied, so the snapshot stays valid after the job's memory is reused.
func snapshotMapPhase(job *Job, tasks []*mapTask, mapOutputs [][]segment, nb *NodeBuffer) (*MapPhaseSnapshot, error) {
	n := len(tasks)
	snap := &MapPhaseSnapshot{
		Segments:    make([][]SegmentSnapshot, n),
		Attempts:    make([]int, n),
		Footprints:  make([]cluster.Task, n),
		InputBytes:  make([]int64, n),
		Hosts:       make([][]string, n),
		WallSeconds: make([]float64, n),
		NumReducers: job.NumReducers,
	}
	mapSide := &Counters{}
	for i, t := range tasks {
		if t == nil {
			return nil, fmt.Errorf("mapreduce: job %q: map task %d has no committed attempt to snapshot", job.Name, i)
		}
		row := mapOutputs[i]
		snap.Segments[i] = make([]SegmentSnapshot, len(row))
		for p, seg := range row {
			snap.Segments[i][p] = SegmentSnapshot{
				Data:    append([]byte(nil), seg.data...),
				Records: seg.records,
				Src:     seg.src,
				Attempt: seg.attempt,
			}
		}
		if nb != nil {
			_, snap.Attempts[i] = nb.row(i)
		} else {
			snap.Attempts[i] = t.attempt
		}
		snap.Footprints[i] = t.footprint
		snap.InputBytes[i] = t.ctx.inputBytes
		snap.Hosts[i] = append([]string(nil), t.hosts...)
		snap.WallSeconds[i] = t.wallSeconds
		mapSide.Merge(t.counters())
	}
	if nb != nil {
		nb.fold(mapSide)
	}
	snap.Counters = mapSide.Snapshot()
	return snap, nil
}
