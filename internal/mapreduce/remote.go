package mapreduce

import (
	"fmt"

	"scikey/internal/cluster"
)

// Phase names a task phase for remote executors.
const (
	PhaseMap    = "map"
	PhaseReduce = "reduce"
)

// Remote delegates task attempt execution to an external control plane —
// the cluster coordinator, which grants the attempt as a lease to a worker
// process and waits for its completion. The attempt scheduler stays the
// single source of truth for retries, speculation, and first-finisher
// commit; a Remote only changes *where* one attempt's bytes are produced.
//
// RunRemote blocks until the attempt completes, fails, loses its lease
// (worker death, heartbeat lapse), or canceled() turns true. On failure it
// may still return a partial RemoteResult carrying the attempt's footprint
// so the scheduler charges the lost work as waste. PublishRemote installs a
// committed map attempt's per-partition segments where reduce workers can
// fetch them; the engine calls it for every committed or recovered map task.
type Remote interface {
	RunRemote(phase string, task, attempt int, canceled func() bool) (*RemoteResult, error)
	PublishRemote(mapTask, attempt int, parts [][]byte)
}

// RemoteResult is one remotely executed attempt's outcome: the bytes the
// attempt materialized plus the bookkeeping the engine needs to keep
// recovered runs byte-identical to fault-free ones (per-attempt counters,
// cost-model footprint, calibration wall clock).
type RemoteResult struct {
	// Parts holds a map attempt's final per-partition segments.
	Parts [][]byte
	// Output holds a reduce attempt's materialized output file.
	Output []byte
	// Counters is the attempt's private counter snapshot (Counters.Snapshot);
	// the engine merges it only if the attempt wins.
	Counters []int64
	// Footprint is the attempt's modeled resource usage. Failed attempts may
	// report a partial footprint, charged as waste.
	Footprint cluster.Task
	// InputBytes is a map attempt's reported input volume (locality model).
	InputBytes int64
	// Hosts are the block hosts of a map attempt's split.
	Hosts []string
	// WallSeconds is the attempt's wall-clock duration (calibration sample).
	WallSeconds float64
}

// RemoteFetch retrieves one committed map output segment for a remotely
// executing reduce attempt. It returns the segment bytes (possibly empty)
// and the map attempt that produced them.
type RemoteFetch func(mapTask, part int) (data []byte, attempt int, err error)

// RunMapAttempt executes one map task attempt of job in this process and
// packages its committed output for the wire — the worker-process half of a
// Remote executor. The attempt runs exactly the in-process data path
// (collect, partition, sort, combine, spill, merge, fault injection), so a
// cluster run's bytes are identical to a single-process run's.
func RunMapAttempt(job *Job, task, attempt int, canceled func() bool) (*RemoteResult, error) {
	if task < 0 || task >= len(job.Splits) {
		return nil, fmt.Errorf("mapreduce: map task %d out of range [0,%d)", task, len(job.Splits))
	}
	t := newMapTask(job, task, attempt, canceled)
	if err := t.run(job.Splits[task]); err != nil {
		return &RemoteResult{Footprint: t.footprint, WallSeconds: t.wallSeconds}, err
	}
	parts := make([][]byte, len(t.finals))
	for p := range t.finals {
		parts[p] = t.finals[p].data
	}
	return &RemoteResult{
		Parts:       parts,
		Counters:    t.counters().Snapshot(),
		Footprint:   t.footprint,
		InputBytes:  t.ctx.inputBytes,
		Hosts:       t.hosts,
		WallSeconds: t.wallSeconds,
	}, nil
}

// RunReduceAttempt executes one reduce task attempt of job in this process,
// fetching map output segments through fetch — the worker-process half of a
// Remote executor. Corruption detected while merging surfaces as the same
// *ErrCorruptSegment the in-process path produces, naming the producing map
// attempt, so the coordinator can re-execute the producer. The attempt's
// materialized output is returned as bytes; the coordinator commits them
// under the first-finisher rule.
func RunReduceAttempt(job *Job, task, attempt int, canceled func() bool, fetch RemoteFetch) (*RemoteResult, error) {
	if task < 0 || task >= job.NumReducers {
		return nil, fmt.Errorf("mapreduce: reduce task %d out of range [0,%d)", task, job.NumReducers)
	}
	t := newReduceTask(job, task, attempt, canceled)
	if err := t.run(&remoteFetchSource{n: len(job.Splits), do: fetch}); err != nil {
		t.abort()
		return &RemoteResult{Footprint: t.footprint, WallSeconds: t.wallSeconds}, err
	}
	data, err := job.FS.ReadAll(t.tmpPath)
	if err != nil {
		t.abort()
		return &RemoteResult{Footprint: t.footprint, WallSeconds: t.wallSeconds}, err
	}
	t.abort() // the temp file's bytes travel back to the coordinator
	return &RemoteResult{
		Output:      data,
		Counters:    t.counters().Snapshot(),
		Footprint:   t.footprint,
		WallSeconds: t.wallSeconds,
	}, nil
}

// remoteFetchSource adapts a RemoteFetch to the reduce path's segment
// source. Fetched segments carry the producing attempt's provenance so CRC
// failures name the right map attempt.
type remoteFetchSource struct {
	n  int
	do RemoteFetch
}

func (s *remoteFetchSource) numMaps() int { return s.n }

func (s *remoteFetchSource) fetch(m, part int) (segment, int64, error) {
	data, attempt, err := s.do(m, part)
	if err != nil {
		return segment{}, 0, err
	}
	return segment{data: data, src: m, attempt: attempt}, 0, nil
}

// newRemoteMapTask wraps a remotely executed map attempt's result in the
// scheduler's task shape. rr may be nil (total failure with no report); a
// partial result still carries the footprint charged as waste.
func newRemoteMapTask(job *Job, id, attempt int, rr *RemoteResult) *mapTask {
	t := &mapTask{
		job:     job,
		id:      id,
		attempt: attempt,
		ctx: &TaskContext{
			TaskID:   id,
			Attempt:  attempt,
			IsMap:    true,
			FS:       job.FS,
			counters: &Counters{},
		},
	}
	if rr == nil {
		return t
	}
	_ = t.ctx.counters.AddSnapshot(rr.Counters) // length-checked by the wire layer
	t.ctx.inputBytes = rr.InputBytes
	t.hosts = rr.Hosts
	t.footprint = rr.Footprint
	t.wallSeconds = rr.WallSeconds
	if rr.Parts != nil {
		t.finals = make([]segment, len(rr.Parts))
		for p, data := range rr.Parts {
			t.finals[p] = segment{data: data, src: id, attempt: attempt}
		}
	}
	return t
}

// newRemoteReduceTask wraps a remotely executed reduce attempt's result in
// the scheduler's task shape; commit writes the returned output bytes to the
// task's final path.
func newRemoteReduceTask(job *Job, id, attempt int, rr *RemoteResult) *reduceTask {
	t := newReduceTask(job, id, attempt, nil)
	t.remote = true
	if rr == nil {
		return t
	}
	_ = t.ctx.counters.AddSnapshot(rr.Counters) // length-checked by the wire layer
	t.footprint = rr.Footprint
	t.wallSeconds = rr.WallSeconds
	t.remoteData = rr.Output
	return t
}
