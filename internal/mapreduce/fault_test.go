package mapreduce

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scikey/internal/faults"
	"scikey/internal/hdfs"
)

func mustInjector(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	inj, err := faults.NewFromSpec(spec)
	if err != nil {
		t.Fatalf("bad fault spec %q: %v", spec, err)
	}
	return inj
}

// faultDocs feeds every reducer from every mapper so any partition's segment
// is a meaningful corruption target.
var faultDocs = []string{
	"the quick brown fox jumps over the lazy dog",
	"pack my box with five dozen liquor jugs",
	"how vexingly quick daft zebras jump",
}

func runFaultJob(t *testing.T, spec string, policy RetryPolicy, parallelism int) (*hdfs.FileSystem, *Result, error) {
	t.Helper()
	fs := testFS()
	job := wordCountJob(fs, faultDocs, 2, false)
	job.Parallelism = parallelism
	job.Retry = policy
	job.Faults = mustInjector(t, spec)
	res, err := Run(job)
	return fs, res, err
}

// readRawOutputs returns the exact bytes of each output file, for
// byte-identical comparisons between faulty and fault-free runs.
func readRawOutputs(t *testing.T, fs *hdfs.FileSystem, paths []string) []string {
	t.Helper()
	out := make([]string, len(paths))
	for i, p := range paths {
		data, err := fs.ReadAll(p)
		if err != nil {
			t.Fatalf("reading %s: %v", p, err)
		}
		out[i] = string(data)
	}
	return out
}

// TestMapperPanicBecomesErrorSequential is the sequential twin of the
// parallel panic test: the one-goroutine path must contain panics too.
func TestMapperPanicBecomesErrorSequential(t *testing.T) {
	fs := testFS()
	job := wordCountJob(fs, []string{"a", "b", "c", "d"}, 1, false)
	job.Parallelism = 1
	job.NewMapper = func() Mapper {
		return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
			if split.ID == 2 {
				panic("map panic")
			}
			emit([]byte("k"), []byte{0, 0, 0, 1})
			return nil
		})
	}
	_, err := Run(job)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic not converted to error: %v", err)
	}
}

// TestRetryRecoversTransientMapError kills map task 1's first attempt; with a
// retry budget the job must succeed with fault-free output and account the
// failure.
func TestRetryRecoversTransientMapError(t *testing.T) {
	_, clean, err := runFaultJob(t, "", RetryPolicy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, res, err := runFaultJob(t, "map:1:error@0", RetryPolicy{MaxAttempts: 2}, 1)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	got := readWordCounts(t, fs, res.OutputPaths)
	if got["quick"] != 2 || got["the"] != 2 {
		t.Errorf("recovered output wrong: %v", got)
	}
	c := res.Counters
	if c.MapAttemptsFailed.Value() != 1 {
		t.Errorf("failed map attempts = %d, want 1", c.MapAttemptsFailed.Value())
	}
	if c.TaskRetries.Value() != 1 {
		t.Errorf("task retries = %d, want 1", c.TaskRetries.Value())
	}
	// Payload counters must match the fault-free run exactly: the failed
	// attempt's partial work must not leak into the totals.
	if got, want := c.MapOutputRecords.Value(), clean.Counters.MapOutputRecords.Value(); got != want {
		t.Errorf("map output records = %d, fault-free run = %d", got, want)
	}
	if got, want := c.MapOutputMaterializedBytes.Value(), clean.Counters.MapOutputMaterializedBytes.Value(); got != want {
		t.Errorf("materialized bytes = %d, fault-free run = %d", got, want)
	}
	if len(res.WastedMapTasks) != 1 {
		t.Errorf("wasted map tasks = %d, want 1", len(res.WastedMapTasks))
	}
}

// TestRetryRecoversMapPanic: injected panics are contained and retried like
// errors.
func TestRetryRecoversMapPanic(t *testing.T) {
	fs, res, err := runFaultJob(t, "map:0:panic@0", RetryPolicy{MaxAttempts: 3}, 1)
	if err != nil {
		t.Fatalf("retry did not recover from panic: %v", err)
	}
	if got := readWordCounts(t, fs, res.OutputPaths); got["the"] != 2 {
		t.Errorf("output after panic recovery: %v", got)
	}
	if res.Counters.MapAttemptsFailed.Value() != 1 {
		t.Errorf("failed attempts = %d, want 1", res.Counters.MapAttemptsFailed.Value())
	}
}

// TestRetryRecoversReduceError: a failing reduce attempt leaves no partial
// output behind and the retry commits cleanly.
func TestRetryRecoversReduceError(t *testing.T) {
	fs, res, err := runFaultJob(t, "reduce:0:error@0", RetryPolicy{MaxAttempts: 2}, 1)
	if err != nil {
		t.Fatalf("reduce retry did not recover: %v", err)
	}
	if got := readWordCounts(t, fs, res.OutputPaths); got["quick"] != 2 {
		t.Errorf("output after reduce recovery: %v", got)
	}
	if res.Counters.ReduceAttemptsFailed.Value() != 1 {
		t.Errorf("failed reduce attempts = %d, want 1", res.Counters.ReduceAttemptsFailed.Value())
	}
	for _, p := range fs.List() {
		if strings.Contains(p, "_attempt") {
			t.Errorf("leaked attempt temp file: %s", p)
		}
	}
}

// TestNoRetryFailsWithTypedError: the same fault schedule with retries
// disabled must fail with an AttemptError naming the task and attempt, and
// the injected cause must remain inspectable.
func TestNoRetryFailsWithTypedError(t *testing.T) {
	_, _, err := runFaultJob(t, "map:1:error@0", RetryPolicy{}, 1)
	if err == nil {
		t.Fatal("expected failure with retries disabled")
	}
	var ae *AttemptError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an AttemptError: %v", err)
	}
	if ae.Phase != "map" || ae.Task != 1 || ae.Attempt != 0 {
		t.Errorf("AttemptError = %+v, want map task 1 attempt 0", ae)
	}
	if !faults.IsTransient(err) {
		t.Errorf("injected cause not inspectable through the chain: %v", err)
	}
}

// TestCorruptSegmentRecovery is the headline acceptance check: a schedule
// that kills one map attempt AND silently corrupts one materialized segment
// must still produce byte-identical output to the fault-free run, with the
// recovery visible only in the fault counters.
func TestCorruptSegmentRecovery(t *testing.T) {
	cleanFS, clean, err := runFaultJob(t, "", RetryPolicy{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := "seed=7;map:1:error@0;segment:2.0:corrupt@0"
	fs, res, err := runFaultJob(t, spec, RetryPolicy{MaxAttempts: 3}, 1)
	if err != nil {
		t.Fatalf("corruption recovery failed: %v", err)
	}

	wantOut := readRawOutputs(t, cleanFS, clean.OutputPaths)
	gotOut := readRawOutputs(t, fs, res.OutputPaths)
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Errorf("output %s differs from fault-free run", res.OutputPaths[i])
		}
	}
	c := res.Counters
	if c.CorruptSegmentsDetected.Value() == 0 {
		t.Error("corruption was never detected — schedule did not fire?")
	}
	if c.MapTasksRecovered.Value() == 0 {
		t.Error("no map task re-executed for corruption recovery")
	}
	if c.MapAttemptsFailed.Value() == 0 {
		t.Error("injected map failure not counted")
	}
	// The paper's headline counter must be unpolluted by discarded attempts.
	if got, want := c.MapOutputMaterializedBytes.Value(), clean.Counters.MapOutputMaterializedBytes.Value(); got != want {
		t.Errorf("materialized bytes = %d, fault-free run = %d", got, want)
	}
	if got, want := c.ReduceOutputRecords.Value(), clean.Counters.ReduceOutputRecords.Value(); got != want {
		t.Errorf("reduce output records = %d, fault-free run = %d", got, want)
	}
	if len(res.WastedMapTasks) == 0 {
		t.Error("corrupt attempt's work not recorded as waste")
	}
}

// TestCorruptSegmentWithoutRetriesFails: without a retry budget, corruption
// is fatal and the typed error names the producing map task.
func TestCorruptSegmentWithoutRetriesFails(t *testing.T) {
	_, _, err := runFaultJob(t, "seed=7;segment:2.0:corrupt@0", RetryPolicy{}, 1)
	if err == nil {
		t.Fatal("expected corruption to fail the job without retries")
	}
	var ce *ErrCorruptSegment
	if !errors.As(err, &ce) {
		t.Fatalf("error chain has no ErrCorruptSegment: %v", err)
	}
	if ce.MapTask != 2 || ce.Attempt != 0 {
		t.Errorf("corruption blamed on map %d attempt %d, want map 2 attempt 0", ce.MapTask, ce.Attempt)
	}
}

// TestSpeculativeExecution: a straggling map attempt is raced by a backup;
// the first finisher wins and the loser is charged as waste.
func TestSpeculativeExecution(t *testing.T) {
	policy := RetryPolicy{
		MaxAttempts:      2,
		Speculative:      true,
		SpeculativeAfter: 10 * time.Millisecond,
	}
	fs, res, err := runFaultJob(t, "map:0:slow=300ms@0", policy, 2)
	if err != nil {
		t.Fatalf("speculative run failed: %v", err)
	}
	if got := readWordCounts(t, fs, res.OutputPaths); got["the"] != 2 {
		t.Errorf("speculative output wrong: %v", got)
	}
	c := res.Counters
	if c.SpeculativeAttempts.Value() == 0 {
		t.Error("no speculative attempt launched for the straggler")
	}
	if c.SpeculativeWasted.Value() == 0 {
		t.Error("losing attempt not recorded as speculative waste")
	}
	if len(res.WastedMapTasks) == 0 {
		t.Error("speculative loser's footprint not recorded")
	}
}

// TestBackoffDeterministic: the retry delay is a pure function of
// (seed, task, failures), jittered within [base/2, base).
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond, BackoffMax: time.Second, Seed: 42}
	for task := 0; task < 3; task++ {
		for failures := 1; failures <= 4; failures++ {
			d1 := p.delay(task, failures)
			d2 := p.delay(task, failures)
			if d1 != d2 {
				t.Fatalf("delay(%d,%d) not deterministic: %v vs %v", task, failures, d1, d2)
			}
			base := p.Backoff << (failures - 1)
			if base > p.BackoffMax {
				base = p.BackoffMax
			}
			if d1 < base/2 || d1 >= base {
				t.Errorf("delay(%d,%d) = %v outside [%v,%v)", task, failures, d1, base/2, base)
			}
		}
	}
	if p.delay(0, 0) != 0 {
		t.Error("no failures must mean no delay")
	}
	if (RetryPolicy{MaxAttempts: 3}).delay(0, 2) != 0 {
		t.Error("zero base backoff must retry immediately")
	}
	// Different seeds should shift the jitter for at least one slot.
	q := p
	q.Seed = 43
	var moved bool
	for task := 0; task < 8 && !moved; task++ {
		moved = p.delay(task, 1) != q.delay(task, 1)
	}
	if !moved {
		t.Error("seed does not influence jitter")
	}
}

// TestWastedWorkCharged: recovery overhead must surface in the cluster
// estimate, not silently vanish.
func TestWastedWorkCharged(t *testing.T) {
	_, res, err := runFaultJob(t, "map:1:error@0", RetryPolicy{MaxAttempts: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	est := res.Estimate(clusterPaper())
	if est.WastedMapSeconds <= 0 {
		t.Errorf("wasted map seconds = %v, want > 0", est.WastedMapSeconds)
	}
	base := clusterPaper().EstimateJob(res.MapTasks, res.ReduceTasks)
	if est.MapSeconds < base.MapSeconds {
		t.Errorf("waste-charged map phase %v shorter than committed-only %v", est.MapSeconds, base.MapSeconds)
	}
}

// TestEarlyTerminationSequential: after the first failure, queued tasks must
// never start.
func TestEarlyTerminationSequential(t *testing.T) {
	fs := testFS()
	var started atomic.Int32
	job := wordCountJob(fs, []string{"a", "b", "c", "d"}, 1, false)
	job.NewMapper = func() Mapper {
		return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
			started.Add(1)
			if split.ID == 1 {
				return fmt.Errorf("boom")
			}
			emit([]byte("k"), []byte{0, 0, 0, 1})
			return nil
		})
	}
	if _, err := Run(job); err == nil {
		t.Fatal("expected failure")
	}
	if n := started.Load(); n != 2 {
		t.Errorf("%d mappers started, want 2 (tasks after the failure must not run)", n)
	}
}

// TestCancellationReachesInFlightAttempts: a failure in one task must cancel
// attempts already running, and a canceled attempt's emits are dropped.
func TestCancellationReachesInFlightAttempts(t *testing.T) {
	fs := testFS()
	var sawCancel atomic.Bool
	job := wordCountJob(fs, []string{"a", "b"}, 1, false)
	job.Parallelism = 2
	job.NewMapper = func() Mapper {
		return MapperFunc(func(ctx *TaskContext, split Split, emit Emit) error {
			if split.ID == 1 {
				time.Sleep(5 * time.Millisecond)
				return fmt.Errorf("boom")
			}
			deadline := time.Now().Add(5 * time.Second)
			for !ctx.Canceled() {
				if time.Now().After(deadline) {
					return fmt.Errorf("cancel signal never arrived")
				}
				time.Sleep(time.Millisecond)
			}
			sawCancel.Store(true)
			emit([]byte("late"), []byte{0, 0, 0, 1}) // must be dropped
			return nil
		})
	}
	_, err := Run(job)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected the failing task's error, got: %v", err)
	}
	if !sawCancel.Load() {
		t.Error("in-flight attempt never observed cancellation")
	}
}
