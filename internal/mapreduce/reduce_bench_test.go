package mapreduce

import (
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"scikey/internal/codec"
	"scikey/internal/ifile"
)

// benchReduceSegments builds nSegs interleaved sorted runs totaling n
// records, the shape a reducer's fetched map outputs arrive in.
func benchReduceSegments(b *testing.B, n, nSegs int) []segment {
	b.Helper()
	all := benchPairs(n)
	segs := make([]segment, 0, nSegs)
	for s := 0; s < nSegs; s++ {
		var pairs []KV
		for i := s; i < n; i += nSegs {
			pairs = append(pairs, all[i])
		}
		seg, err := writeSegment(pairs, codec.None)
		if err != nil {
			b.Fatal(err)
		}
		segs = append(segs, seg)
	}
	return segs
}

// heapSampler watches HeapAlloc from a background goroutine so a benchmark
// can report its peak live heap over a baseline. Sampling cannot catch every
// transient spike, but a reduce path that materializes the whole partition
// holds its peak for most of the run — exactly what the samples see.
type heapSampler struct {
	base uint64
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &heapSampler{base: ms.HeapAlloc, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(100 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak.Load() {
					s.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return s
}

// finish stops sampling and returns peak bytes over the baseline.
func (s *heapSampler) finish() float64 {
	close(s.stop)
	<-s.done
	peak := s.peak.Load()
	if peak < s.base {
		return 0
	}
	return float64(peak - s.base)
}

// BenchmarkReducePath compares the streaming reduce pipeline against the
// materialized reference path at two partition sizes. allocs/op is the gated
// headline; peak-B (sampled live heap over baseline) is the memory-model
// evidence — flat across sizes for stream, scaling with the partition for
// reference.
func BenchmarkReducePath(b *testing.B) {
	cmp := func(a, b []byte) int { return compareBytes(a, b) }
	red := ReducerFunc(func(ctx *TaskContext, key []byte, values [][]byte, emit Emit) error {
		var n byte
		for _, v := range values {
			n += v[len(v)-1]
		}
		emit(key, []byte{n})
		return nil
	})
	for _, size := range []struct {
		name string
		n    int
	}{{"8k", 8192}, {"64k", 65536}} {
		segs := benchReduceSegments(b, size.n, 8)
		env := readEnv{codec: codec.None, part: -1}
		// The production streaming path borrows decoder scratch straight
		// through the merge into groupReduce's group arenas.
		benv := env
		benv.borrow = true
		var iw ifile.Writer
		emit := func(k, v []byte) {
			if err := iw.Append(k, v); err != nil {
				b.Fatal(err)
			}
		}
		b.Run("stream/"+size.name, func(b *testing.B) {
			b.ReportAllocs()
			sampler := startHeapSampler()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := &TaskContext{counters: &Counters{}}
				m, err := newMergeStream(segs, benv, cmp)
				if err != nil {
					b.Fatal(err)
				}
				iw.Reset(io.Discard)
				if err := groupReduce(ctx, m, cmp, red, emit, ctx.counters, false, nil, true); err != nil {
					b.Fatal(err)
				}
				m.close()
			}
			b.StopTimer()
			b.ReportMetric(sampler.finish(), "peak-B")
		})
		b.Run("reference/"+size.name, func(b *testing.B) {
			b.ReportAllocs()
			sampler := startHeapSampler()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := &TaskContext{counters: &Counters{}}
				pairs, err := mergeSegments(segs, env, cmp)
				if err != nil {
					b.Fatal(err)
				}
				iw.Reset(io.Discard)
				src := &sliceStream{pairs: pairs}
				if err := groupReduce(ctx, src, cmp, red, emit, ctx.counters, false, nil, false); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(sampler.finish(), "peak-B")
		})
	}
}
