package mapreduce

// In-node combining ("In-node Combiners", arXiv:1511.04861): instead of
// combining only inside each map task, committed map outputs are pooled per
// node group and merged once more — with the value monoid — before anything
// crosses the shuffle. The algebraic contract making that safe is the
// monoid ("Monoidify!", arXiv:1304.7544): an associative merge with an
// identity can be applied per task, per node, or not at all, and the reduce
// output is the same bytes either way. DESIGN.md "Combiner algebra" is the
// authoritative spec for the laws, the MergeCut/cluster-boundary
// interaction, and the byte-identity argument.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Monoid is the algebraic contract for mergeable aggregate values: a binary
// Merge that is associative — Merge(Merge(a,b),c) == Merge(a,Merge(b,c)) —
// with Identity as its neutral element — Merge(Identity(),x) == x ==
// Merge(x,Identity()). The engine additionally requires commutativity
// (Merge(a,b) == Merge(b,a)) for node-level combining: the k-way merge
// interleaves equal keys from different tasks in heap order, not emission
// order, so the fold order of a key's values is not stable across
// groupings. Every built-in combiner satisfies all three laws
// (TestCombinerLaws holds them property-style).
//
// Ownership: Merge folds b into a and returns the result. It may reuse a's
// backing storage (callers must treat a as consumed) and must not retain b,
// which may alias decoder scratch that is recycled on the next record.
type Monoid interface {
	// Identity returns the neutral aggregate. Built-ins return nil: the
	// empty byte slice merges with any value of any lane width.
	Identity() []byte
	// Merge folds b into a and returns the combined aggregate, or an error
	// when the two values are not mergeable (e.g. mismatched lane counts).
	Merge(a, b []byte) ([]byte, error)
}

// Combiner is a named Monoid. The name is the wire form: job specs carry it
// across process boundaries and CombinerByName resolves it back, so a
// cluster worker and the driver agree on the exact merge semantics.
type Combiner interface {
	Monoid
	// Name identifies the combiner in job specs and diagnostics.
	Name() string
}

// laneCombiner folds equal-length values lane by lane, each lane a
// big-endian int32 — the element encoding every scihadoop value uses (one
// lane for simple keys, Range.Len()/NumCells lanes for aggregate and box
// keys). Values for equal keys always carry the same lane count, so a
// length mismatch is a corruption-grade error, not a valid merge.
type laneCombiner struct {
	name string
	fold func(a, b int32) int32
}

// Name implements Combiner.
func (l *laneCombiner) Name() string { return l.name }

// Identity implements Monoid: nil merges with any lane width.
func (l *laneCombiner) Identity() []byte { return nil }

// Merge implements Monoid, folding b into a lane by lane in place.
func (l *laneCombiner) Merge(a, b []byte) ([]byte, error) {
	if len(b) == 0 {
		return a, nil
	}
	if len(a) == 0 {
		return append(a, b...), nil
	}
	if len(a) != len(b) || len(a)%4 != 0 {
		return nil, fmt.Errorf("mapreduce: combiner %s: cannot merge %d-byte and %d-byte values", l.name, len(a), len(b))
	}
	for i := 0; i < len(a); i += 4 {
		va := int32(binary.BigEndian.Uint32(a[i:]))
		vb := int32(binary.BigEndian.Uint32(b[i:]))
		binary.BigEndian.PutUint32(a[i:], uint32(l.fold(va, vb)))
	}
	return a, nil
}

// Built-in combiners, all lane-wise over big-endian int32 values. Max and
// min model distributive window operators (the paper's max query); sum
// models additive partial aggregates. Holistic operators like the paper's
// median have no monoid — that absence is the point of Section III: no
// combiner can shrink a holistic query's intermediate data, only key/value
// encoding can.
var (
	// MaxInt32 keeps the lane-wise maximum ("max32").
	MaxInt32 Combiner = &laneCombiner{name: "max32", fold: func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	}}
	// MinInt32 keeps the lane-wise minimum ("min32").
	MinInt32 Combiner = &laneCombiner{name: "min32", fold: func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	}}
	// SumInt32 adds lanes with wrap-around ("sum32").
	SumInt32 Combiner = &laneCombiner{name: "sum32", fold: func(a, b int32) int32 {
		return a + b
	}}
)

// builtinCombiners indexes the built-ins by wire name.
var builtinCombiners = map[string]Combiner{
	MaxInt32.Name(): MaxInt32,
	MinInt32.Name(): MinInt32,
	SumInt32.Name(): SumInt32,
}

// CombinerByName resolves a combiner wire name (see Combiner.Name) to its
// implementation — how a job spec's combine setting is rebuilt in a worker
// process.
func CombinerByName(name string) (Combiner, error) {
	if c, ok := builtinCombiners[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("mapreduce: unknown combiner %q", name)
}

// BuiltinCombiners returns every built-in combiner, sorted by name — the
// enumeration the combiner-law property tests range over.
func BuiltinCombiners() []Combiner {
	names := make([]string, 0, len(builtinCombiners))
	for n := range builtinCombiners {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Combiner, len(names))
	for i, n := range names {
		out[i] = builtinCombiners[n]
	}
	return out
}

// CombineConfig enables in-node combining on a Job: after the map phase
// commits, the engine groups map tasks into node groups (task t joins group
// t % groups), k-way merges each group's committed segments per partition,
// folds runs of equal keys with the Combiner, and publishes the combined
// segment in place of the members' raw ones. Combining never crosses a
// MergeCut window boundary: the job's cut predicate runs over each combined
// stream, so keys in independent windows stay separate and the reduce-side
// windowed transform sees the same window structure it would uncombined —
// the byte-identity argument in DESIGN.md "Combiner algebra".
//
// Jobs with a MergeTransform must use a Combiner whose merge commutes with
// the transform (lane-wise folds commute with the key-splitting rewrites,
// since slicing a folded value equals folding the slices); jobs without a
// monoid for their reduce operator (holistic operators like median) must
// not set Combine at all.
type CombineConfig struct {
	// Combiner is the value monoid. Required.
	Combiner Combiner
	// Nodes is the node-group count: how many per-node combine buffers the
	// run simulates. 0 means one group per shuffle node for networked
	// shuffles (mirroring shufflenet's placement), otherwise a single
	// group; cluster drivers set it to the worker count so there is one
	// combine buffer per worker process. Grouping only changes which
	// duplicates meet — the monoid laws make the reduce output identical
	// for every value.
	Nodes int
}

// combineGroupCount resolves the node-group count for this job: an explicit
// Combine.Nodes wins; otherwise networked shuffles combine per shuffle node
// (matching shufflenet's "map task t serves from node t % Nodes" placement,
// default 3) and everything else uses one group. Never more groups than
// map tasks.
func (j *Job) combineGroupCount() int {
	n := j.Combine.Nodes
	if n <= 0 {
		n = 1
		if j.Shuffle.networked() {
			if n = j.Shuffle.Nodes; n <= 0 {
				n = 3 // shufflenet's default node count
			}
		}
	}
	if n > len(j.Splits) {
		n = len(j.Splits)
	}
	return n
}

// NodeBuffer is the shared per-node combine buffer: every committed map
// attempt on a node feeds its final segments in, and the node's combined
// output is merged from the freshest committed member outputs on demand.
// One NodeBuffer instance serves all of a run's node groups.
//
// Concurrency contract: all methods are safe for concurrent use; a single
// mutex serializes them. feed is called by committing map attempts (and by
// recovery re-executions) and only records the new output, marking the
// task's group dirty — it never blocks on a merge. combine(g) does the
// heavy work under the same lock, so feeds arriving mid-combine wait and
// then re-dirty the group; the engine re-runs combine(g) after any member
// re-execution, so a published combined segment always reflects the
// committed attempts of every member. The raw member segments stay in the
// buffer as the durable source of truth: corruption found while combining
// names the true producing attempt (and the engine re-runs it), while
// corruption of a published combined segment names the group's
// representative task, whose re-execution re-feeds and re-combines.
type NodeBuffer struct {
	job    *Job
	groups int

	mu    sync.Mutex
	raw   []nodeInput // per map task: freshest committed finals
	rows  [][]segment // per map task: the published (combined) view
	dirty []bool      // per group: raw changed since last combine
	stats []nodeStats // per group: last combine's record/byte accounting
}

// nodeInput is one member task's freshest committed output.
type nodeInput struct {
	attempt int
	finals  []segment
	ok      bool
}

// nodeStats accounts one group's most recent combine. Recombines after a
// member re-execution overwrite the group's stats, so the job-level fold
// reflects exactly the published segments.
type nodeStats struct {
	in, out            int64 // records entering / leaving the combine merge
	rawBytes, outBytes int64 // member segment bytes vs combined segment bytes
}

// newNodeBuffer builds the run's combine buffer, or nil when the job does
// not combine.
func newNodeBuffer(job *Job) *NodeBuffer {
	if job.Combine == nil {
		return nil
	}
	n, g := len(job.Splits), job.combineGroupCount()
	return &NodeBuffer{
		job:    job,
		groups: g,
		raw:    make([]nodeInput, n),
		rows:   make([][]segment, n),
		dirty:  make([]bool, g),
		stats:  make([]nodeStats, g),
	}
}

// groupOf names the node group a map task feeds.
func (b *NodeBuffer) groupOf(task int) int { return task % b.groups }

// numGroups is the node-group count.
func (b *NodeBuffer) numGroups() int { return b.groups }

// members lists a group's map tasks in ascending order. The first member is
// the group's representative: combined segments are published under its
// task id (and its committed attempt), the other members publish empty
// segments, so the (map task, partition) fetch topology — and with it every
// shuffle transport and the corruption-recovery provenance — is unchanged.
func (b *NodeBuffer) members(g int) []int {
	var out []int
	for t := g; t < len(b.raw); t += b.groups {
		out = append(out, t)
	}
	return out
}

// groupSize counts a group's members.
func (b *NodeBuffer) groupSize(g int) int { return len(b.members(g)) }

// feed records a committed map attempt's final segments, replacing any
// earlier attempt's, and marks the task's group for (re)combining.
func (b *NodeBuffer) feed(task, attempt int, finals []segment) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.raw[task] = nodeInput{attempt: attempt, finals: finals, ok: true}
	b.dirty[b.groupOf(task)] = true
}

// row returns a task's published view — the combined row for a group
// representative, an all-empty row for other members — plus the attempt
// number it was published under.
func (b *NodeBuffer) row(task int) ([]segment, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rows[task], b.raw[task].attempt
}

// combine merges group g's committed member segments per partition —
// folding runs of equal keys with the job's Combiner inside MergeCut
// windows — and installs the combined rows. A clean group is a no-op.
// Errors from a member segment that fails to decode surface as
// *ErrCorruptSegment naming the producing map attempt; the engine re-runs
// it, feeds the fresh output, and calls combine again.
func (b *NodeBuffer) combine(g int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.dirty[g] {
		return nil
	}
	members := b.members(g)
	rep := members[0]
	nparts := b.job.NumReducers
	combined := make([]segment, nparts)
	var st nodeStats
	for p := 0; p < nparts; p++ {
		var segs []segment
		var rawBytes int64
		for _, m := range members {
			if !b.raw[m].ok || p >= len(b.raw[m].finals) {
				continue
			}
			seg := b.raw[m].finals[p]
			if len(seg.data) == 0 {
				continue
			}
			segs = append(segs, seg)
			rawBytes += int64(len(seg.data))
		}
		if len(segs) == 0 {
			continue
		}
		// The members' raw segments are read in borrow mode — combineStream
		// owns its pending copies — without fault injection: the bytes were
		// already written (corruption is in the data); injected transient
		// read faults keep firing where they always did, at the reduce
		// attempts. Validate-then-combine, mirroring the reduce side's
		// validate-then-reduce: each member segment is scanned to its end
		// first, forcing the codec and IFile CRC checks, so corruption
		// surfaces as an ErrCorruptSegment naming the producing attempt —
		// never as the Combiner choking on (or worse, folding) a
		// garbage-but-parseable record the trailer check hasn't reached yet.
		env := readEnv{codec: b.job.codec(), part: p, borrow: true}
		if _, err := validateSegments(segs, env); err != nil {
			return err
		}
		ms, err := newMergeStream(segs, env, b.job.Compare)
		if err != nil {
			return err
		}
		var cut func(key []byte) bool
		if b.job.MergeCut != nil {
			cut = b.job.MergeCut()
		}
		cs := &combineStream{src: ms, cmp: b.job.Compare, m: b.job.Combine.Combiner, cut: cut}
		seg, err := writeSegmentStream(cs, b.job.codec(), int(rawBytes))
		cs.close()
		if err != nil {
			return err
		}
		// The combined segment carries the representative's provenance:
		// reduce-side corruption re-runs the representative, whose commit
		// re-feeds this buffer and recombines the group.
		seg.src, seg.attempt = rep, b.raw[rep].attempt
		combined[p] = seg
		st.in += cs.inRecords
		st.out += cs.outRecords
		st.rawBytes += rawBytes
		st.outBytes += int64(len(seg.data))
	}
	for _, m := range members {
		if m == rep {
			b.rows[m] = combined
		} else {
			b.rows[m] = make([]segment, nparts)
		}
	}
	b.stats[g] = st
	b.dirty[g] = false
	return nil
}

// fold adds the buffer's combine accounting — from each group's most recent
// combine, so recombined groups count once — into the job counters.
func (b *NodeBuffer) fold(jc *Counters) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var st nodeStats
	for _, s := range b.stats {
		st.in += s.in
		st.out += s.out
		st.rawBytes += s.rawBytes
		st.outBytes += s.outBytes
	}
	jc.CombineMergedRecords.Add(st.in - st.out)
	jc.CombineEmittedRecords.Add(st.out)
	jc.CombineSavedBytes.Add(st.rawBytes - st.outBytes)
}

// combineStream folds runs of equal keys in a sorted stream with a monoid,
// never across a cut-window boundary: the cut predicate (the job's MergeCut,
// fed every incoming key once, in stream order) marks keys that start an
// independent window, and a pending aggregate is flushed — not merged —
// when one arrives. Input records may be borrow-mode (valid only until the
// next pull); the stream owns its pending and emitted copies, and each
// emitted record stays valid until the next call, which is all
// writeSegmentStream needs.
type combineStream struct {
	src kvStream
	cmp func(a, b []byte) int
	m   Monoid
	cut func(key []byte) bool

	pendKey, pendVal []byte // accumulating run (owned)
	emitKey, emitVal []byte // last emitted record's backing (owned, reused)
	have             bool
	eof              bool

	inRecords  int64
	outRecords int64
}

func (s *combineStream) next() (KV, bool, error) {
	for {
		if s.eof {
			if s.have {
				s.have = false
				s.outRecords++
				return KV{Key: s.pendKey, Value: s.pendVal}, true, nil
			}
			return KV{}, false, nil
		}
		kv, ok, err := s.src.next()
		if err != nil {
			return KV{}, false, err
		}
		if !ok {
			s.eof = true
			continue
		}
		s.inRecords++
		startsWindow := s.cut != nil && s.cut(kv.Key)
		if s.have && !startsWindow && s.cmp(s.pendKey, kv.Key) == 0 {
			merged, err := s.m.Merge(s.pendVal, kv.Value)
			if err != nil {
				return KV{}, false, err
			}
			s.pendVal = merged
			continue
		}
		if s.have {
			// Flush the finished run, stash the new key. The emitted copy
			// lives in its own buffers so the pending pair can keep
			// accumulating while the caller consumes it.
			s.emitKey = append(s.emitKey[:0], s.pendKey...)
			s.emitVal = append(s.emitVal[:0], s.pendVal...)
			s.pendKey = append(s.pendKey[:0], kv.Key...)
			s.pendVal = append(s.pendVal[:0], kv.Value...)
			s.outRecords++
			return KV{Key: s.emitKey, Value: s.emitVal}, true, nil
		}
		s.pendKey = append(s.pendKey[:0], kv.Key...)
		s.pendVal = append(s.pendVal[:0], kv.Value...)
		s.have = true
	}
}

func (s *combineStream) close() { s.src.close() }
