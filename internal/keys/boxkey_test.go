package keys

import (
	"testing"

	"scikey/internal/grid"
	"scikey/internal/serial"
)

func TestBoxKeyRoundTrip(t *testing.T) {
	for _, mode := range []VarMode{VarNone, VarByIndex, VarByName} {
		c := &Codec{Rank: 3, Mode: mode}
		k := BoxKey{
			Var: VarRef{Name: "windspeed1", Index: 2},
			Box: grid.NewBox(grid.Coord{-1, 5, 0}, []int{10, 2, 7}),
		}
		enc := c.BoxKeyBytes(k)
		got, err := c.DecodeBox(serial.NewDataInput(enc))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !got.Box.Equal(k.Box) {
			t.Errorf("mode %v: box = %v, want %v", mode, got.Box, k.Box)
		}
	}
}

func TestBoxKeySizes(t *testing.T) {
	// The introduction's (corner, size) pitch: constant key cost no matter
	// how many cells the box covers. Rank 2, no variable: 16 bytes.
	c := &Codec{Rank: 2, Mode: VarNone}
	small := BoxKey{Box: grid.NewBox(grid.Coord{0, 0}, []int{1, 1})}
	huge := BoxKey{Box: grid.NewBox(grid.Coord{0, 0}, []int{100000, 100000})}
	if a, b := len(c.BoxKeyBytes(small)), len(c.BoxKeyBytes(huge)); a != 16 || b != 16 {
		t.Errorf("box key sizes = %d, %d; want constant 16", a, b)
	}
}

func TestCompareBox(t *testing.T) {
	mk := func(c0, c1, s0, s1 int) BoxKey {
		return BoxKey{Box: grid.NewBox(grid.Coord{c0, c1}, []int{s0, s1})}
	}
	if CompareBox(mk(0, 0, 1, 1), mk(0, 1, 1, 1)) >= 0 {
		t.Error("corner must dominate")
	}
	if CompareBox(mk(0, 0, 1, 1), mk(0, 0, 1, 2)) >= 0 {
		t.Error("size breaks corner ties")
	}
	if CompareBox(mk(3, 4, 5, 6), mk(3, 4, 5, 6)) != 0 {
		t.Error("equal keys must compare 0")
	}
	a := BoxKey{Var: VarRef{Index: 0}, Box: grid.NewBox(grid.Coord{9, 9}, []int{1, 1})}
	b := BoxKey{Var: VarRef{Index: 1}, Box: grid.NewBox(grid.Coord{0, 0}, []int{1, 1})}
	if CompareBox(a, b) >= 0 {
		t.Error("variable must dominate box")
	}
}

func TestRawCompareBox(t *testing.T) {
	c := &Codec{Rank: 2, Mode: VarByName}
	a := c.BoxKeyBytes(BoxKey{Var: VarRef{Name: "v"}, Box: grid.NewBox(grid.Coord{-5, 0}, []int{2, 2})})
	b := c.BoxKeyBytes(BoxKey{Var: VarRef{Name: "v"}, Box: grid.NewBox(grid.Coord{0, 0}, []int{2, 2})})
	// Negative corners must still order correctly.
	if c.RawCompareBox(a, b) >= 0 || c.RawCompareBox(b, a) <= 0 || c.RawCompareBox(a, a) != 0 {
		t.Error("RawCompareBox ordering wrong")
	}
}

func TestDecodeBoxRejectsNegativeSize(t *testing.T) {
	c := &Codec{Rank: 1, Mode: VarNone}
	out := serial.NewDataOutput(8)
	out.WriteI32(0)
	out.WriteI32(-3)
	if _, err := c.DecodeBox(serial.NewDataInput(out.Bytes())); err == nil {
		t.Error("negative size must fail")
	}
}

func TestEncodeBoxRankMismatchPanics(t *testing.T) {
	c := &Codec{Rank: 2, Mode: VarNone}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.BoxKeyBytes(BoxKey{Box: grid.NewBox(grid.Coord{0}, []int{1})})
}
