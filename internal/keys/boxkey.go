package keys

import (
	"fmt"

	"scikey/internal/grid"
	"scikey/internal/serial"
)

// BoxKey is the n-dimensional aggregate key of the paper's introduction:
// "keys are represented in aggregate as a (corner, size) pair". Section IV
// sidesteps this representation ("aggregation directly in the keys'
// N-dimensional space ... is difficult", Fig. 5) in favor of curve ranges;
// the boxagg package implements the greedy n-D alternative and uses these
// keys.
type BoxKey struct {
	Var VarRef
	Box grid.Box
}

// String renders the key for diagnostics.
func (k BoxKey) String() string {
	v := k.Var.Name
	if v == "" {
		v = fmt.Sprintf("var%d", k.Var.Index)
	}
	return v + k.Box.String()
}

// EncodeBox appends k's byte form: [var][corner i32 x rank][size i32 x rank].
func (c *Codec) EncodeBox(out *serial.DataOutput, k BoxKey) {
	if k.Box.Rank() != c.Rank {
		panic(fmt.Sprintf("keys: BoxKey rank %d, codec rank %d", k.Box.Rank(), c.Rank))
	}
	c.writeVar(out, k.Var)
	for _, x := range k.Box.Corner {
		out.WriteI32(int32(x))
	}
	for _, s := range k.Box.Size {
		out.WriteI32(int32(s))
	}
}

// BoxKeyBytes returns a fresh encoding of k.
func (c *Codec) BoxKeyBytes(k BoxKey) []byte {
	out := serial.NewDataOutput(8*c.Rank + 16)
	c.EncodeBox(out, k)
	return out.Bytes()
}

// DecodeBox parses a BoxKey from in.
func (c *Codec) DecodeBox(in *serial.DataInput) (BoxKey, error) {
	v, err := c.readVar(in)
	if err != nil {
		return BoxKey{}, err
	}
	corner := make(grid.Coord, c.Rank)
	for i := range corner {
		x, err := in.ReadI32()
		if err != nil {
			return BoxKey{}, err
		}
		corner[i] = int(x)
	}
	size := make([]int, c.Rank)
	for i := range size {
		s, err := in.ReadI32()
		if err != nil {
			return BoxKey{}, err
		}
		if s < 0 {
			return BoxKey{}, fmt.Errorf("keys: negative box size %d", s)
		}
		size[i] = int(s)
	}
	return BoxKey{Var: v, Box: grid.Box{Corner: corner, Size: size}}, nil
}

// CompareBox orders BoxKeys by variable, then corner (row-major), then
// size. Sorting by corner first lets the reduce-side sweep find overlaps.
func CompareBox(a, b BoxKey) int {
	if c := compareVar(a.Var, b.Var); c != 0 {
		return c
	}
	if c := a.Box.Corner.Compare(b.Box.Corner); c != 0 {
		return c
	}
	for i := range a.Box.Size {
		if a.Box.Size[i] != b.Box.Size[i] {
			if a.Box.Size[i] < b.Box.Size[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// RawCompareBox compares encoded BoxKeys.
func (c *Codec) RawCompareBox(a, b []byte) int {
	ka, err := c.DecodeBox(serial.NewDataInput(a))
	if err != nil {
		return serial.CompareBytes(a, b)
	}
	kb, err := c.DecodeBox(serial.NewDataInput(b))
	if err != nil {
		return serial.CompareBytes(a, b)
	}
	return CompareBox(ka, kb)
}
