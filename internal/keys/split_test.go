package keys

import (
	"bytes"
	"math/rand"
	"testing"

	"scikey/internal/sfc"
)

// mkPair builds an AggPair over [lo,hi) whose value payload encodes each
// index as a single tag byte, so value routing can be verified exactly.
func mkPair(lo, hi uint64, tag byte) AggPair {
	vals := make([]byte, hi-lo)
	for i := range vals {
		vals[i] = tag
	}
	return AggPair{Key: AggKey{Range: sfc.IndexRange{Lo: lo, Hi: hi}}, Values: vals}
}

func TestSplitAt(t *testing.T) {
	p := AggPair{
		Key:    AggKey{Range: sfc.IndexRange{Lo: 10, Hi: 14}},
		Values: []byte{1, 1, 2, 2, 3, 3, 4, 4}, // elemSize 2
	}
	l, r := p.SplitAt(12, 2)
	if l.Key.Range != (sfc.IndexRange{Lo: 10, Hi: 12}) || r.Key.Range != (sfc.IndexRange{Lo: 12, Hi: 14}) {
		t.Fatalf("ranges: %v / %v", l.Key.Range, r.Key.Range)
	}
	if !bytes.Equal(l.Values, []byte{1, 1, 2, 2}) || !bytes.Equal(r.Values, []byte{3, 3, 4, 4}) {
		t.Errorf("values: %v / %v", l.Values, r.Values)
	}
	defer func() {
		if recover() == nil {
			t.Error("SplitAt at boundary must panic")
		}
	}()
	p.SplitAt(10, 2)
}

func TestRangePartitioner(t *testing.T) {
	rp := RangePartitioner{Total: 100, NumReducers: 4}
	if rp.PartitionOf(0) != 0 || rp.PartitionOf(24) != 0 || rp.PartitionOf(25) != 1 ||
		rp.PartitionOf(99) != 3 || rp.PartitionOf(1000) != 3 {
		t.Error("PartitionOf boundaries wrong")
	}
	b := rp.Boundaries()
	if len(b) != 3 || b[0] != 25 || b[1] != 50 || b[2] != 75 {
		t.Errorf("Boundaries = %v", b)
	}
	// Partition assignment must be monotone in the index.
	last := 0
	for i := uint64(0); i < 100; i++ {
		p := rp.PartitionOf(i)
		if p < last || p >= 4 {
			t.Fatalf("non-monotone partition %d at %d", p, i)
		}
		last = p
	}
}

func TestSplitForPartition(t *testing.T) {
	rp := RangePartitioner{Total: 100, NumReducers: 4}
	// Range [20,60) spans shards 0,1,2 → must split at 25 and 50.
	p := mkPair(20, 60, 7)
	frags := rp.SplitForPartition(p, 1)
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3: %v", len(frags), frags)
	}
	wantRanges := []sfc.IndexRange{{Lo: 20, Hi: 25}, {Lo: 25, Hi: 50}, {Lo: 50, Hi: 60}}
	wantParts := []int{0, 1, 2}
	var totalVals int
	for i, f := range frags {
		if f.Pair.Key.Range != wantRanges[i] || f.Partition != wantParts[i] {
			t.Errorf("fragment %d = %v part %d, want %v part %d",
				i, f.Pair.Key.Range, f.Partition, wantRanges[i], wantParts[i])
		}
		totalVals += len(f.Pair.Values)
		for _, v := range f.Pair.Values {
			if v != 7 {
				t.Error("value bytes corrupted")
			}
		}
	}
	if totalVals != 40 {
		t.Errorf("values total %d, want 40", totalVals)
	}
	// A range inside one shard is not split.
	whole := rp.SplitForPartition(mkPair(30, 40, 1), 1)
	if len(whole) != 1 || whole[0].Partition != 1 {
		t.Errorf("in-shard pair split: %v", whole)
	}
}

func TestSplitOverlapsFig7(t *testing.T) {
	// Fig. 7: two unequal overlapping ranges split on the overlap
	// boundaries so the shared sub-range appears as two equal keys.
	a := mkPair(0, 10, 'a')
	b := mkPair(6, 14, 'b')
	out := SplitOverlaps([]AggPair{a, b}, 1)
	want := []struct {
		r   sfc.IndexRange
		tag byte
	}{
		{sfc.IndexRange{Lo: 0, Hi: 6}, 'a'},
		{sfc.IndexRange{Lo: 6, Hi: 10}, 'a'},
		{sfc.IndexRange{Lo: 6, Hi: 10}, 'b'},
		{sfc.IndexRange{Lo: 10, Hi: 14}, 'b'},
	}
	if len(out) != len(want) {
		t.Fatalf("got %d fragments: %v", len(out), out)
	}
	for i, w := range want {
		if out[i].Key.Range != w.r {
			t.Errorf("fragment %d = %v, want %v", i, out[i].Key.Range, w.r)
		}
		for _, v := range out[i].Values {
			if v != w.tag {
				t.Errorf("fragment %d carries value %q, want %q", i, v, w.tag)
			}
		}
	}
}

func TestSplitOverlapsDisjointPassThrough(t *testing.T) {
	in := []AggPair{mkPair(0, 5, 1), mkPair(5, 9, 2), mkPair(20, 30, 3)}
	out := SplitOverlaps(in, 1)
	if len(out) != 3 {
		t.Fatalf("disjoint input must pass through, got %v", out)
	}
	for i := range in {
		if out[i].Key.Range != in[i].Key.Range {
			t.Errorf("fragment %d = %v", i, out[i].Key.Range)
		}
	}
}

func TestSplitOverlapsVarBoundary(t *testing.T) {
	// Overlapping ranges of different variables must not be split.
	a := AggPair{Key: AggKey{Var: VarRef{Index: 0}, Range: sfc.IndexRange{Lo: 0, Hi: 10}}, Values: make([]byte, 10)}
	b := AggPair{Key: AggKey{Var: VarRef{Index: 1}, Range: sfc.IndexRange{Lo: 5, Hi: 15}}, Values: make([]byte, 10)}
	out := SplitOverlaps([]AggPair{a, b}, 1)
	if len(out) != 2 {
		t.Fatalf("cross-variable split happened: %v", out)
	}
}

func TestSplitOverlapsProperty(t *testing.T) {
	// Random overlapping inputs: after splitting, (1) every pair of output
	// ranges is equal or disjoint, (2) outputs are sorted with equal keys
	// adjacent, (3) each input's index->value mapping is preserved.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		in := make([]AggPair, 0, n)
		for i := 0; i < n; i++ {
			lo := uint64(rng.Intn(40))
			hi := lo + 1 + uint64(rng.Intn(15))
			in = append(in, mkPair(lo, hi, byte('a'+i)))
		}
		sortAgg(in)
		out := SplitOverlaps(in, 1)
		// (1) equal-or-disjoint.
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				ri, rj := out[i].Key.Range, out[j].Key.Range
				if ri != rj && ri.Overlaps(rj) {
					t.Fatalf("trial %d: ranges %v and %v overlap unequally", trial, ri, rj)
				}
			}
		}
		// (2) sorted.
		for i := 1; i < len(out); i++ {
			if CompareAgg(out[i-1].Key, out[i].Key) > 0 {
				t.Fatalf("trial %d: output not sorted at %d", trial, i)
			}
		}
		// (3) value preservation: count (index, tag) pairs on both sides.
		type cell struct {
			idx uint64
			tag byte
		}
		count := func(ps []AggPair) map[cell]int {
			m := make(map[cell]int)
			for _, p := range ps {
				for k := uint64(0); k < p.Key.Range.Len(); k++ {
					m[cell{p.Key.Range.Lo + k, p.Values[k]}]++
				}
			}
			return m
		}
		want, got := count(in), count(out)
		if len(want) != len(got) {
			t.Fatalf("trial %d: cell multiset size changed", trial)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("trial %d: cell %v count %d, want %d", trial, k, got[k], v)
			}
		}
	}
}

func sortAgg(ps []AggPair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && CompareAgg(ps[j].Key, ps[j-1].Key) < 0; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func TestHashPartition(t *testing.T) {
	counts := make([]int, 5)
	for i := 0; i < 1000; i++ {
		k := []byte{byte(i), byte(i >> 8), 0x55}
		p := HashPartition(k, 5)
		if p < 0 || p >= 5 {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	for r, c := range counts {
		if c < 100 {
			t.Errorf("reducer %d got only %d of 1000 keys (poor dispersion)", r, c)
		}
	}
	// Deterministic.
	if HashPartition([]byte("abc"), 7) != HashPartition([]byte("abc"), 7) {
		t.Error("HashPartition must be deterministic")
	}
}

func BenchmarkSplitOverlaps(b *testing.B) {
	// A realistic halo cluster: 32 ranges with pairwise overlaps.
	var in []AggPair
	for i := 0; i < 32; i++ {
		lo := uint64(i * 40)
		in = append(in, mkPair(lo, lo+60, byte(i)))
	}
	sortAgg(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SplitOverlaps(in, 1)
	}
}

func BenchmarkSplitForPartition(b *testing.B) {
	rp := RangePartitioner{Total: 1 << 20, NumReducers: 16}
	p := mkPair(1000, 200000, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.SplitForPartition(p, 1)
	}
}
