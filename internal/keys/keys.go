// Package keys defines the intermediate key types exchanged between mappers
// and reducers, their serialized forms, orderings, and the splitting algebra
// that the paper adds to Hadoop (Section IV-B): aggregate keys are not
// atomic, so they must be splittable at the partitioner (when one aggregate
// routes to several reducers) and at the reducer (when unequal aggregates
// overlap, Fig. 7).
//
// Two key shapes exist:
//
//   - GridKey: one grid cell — a variable reference plus an n-dimensional
//     coordinate. This is Hadoop's natural per-cell key and the source of
//     the paper's 450-625% intermediate-data overhead.
//   - AggKey: a contiguous range of space-filling-curve indices for one
//     variable. Its value payload is the concatenation of the cell values
//     in curve order, so the key cost is amortized over the whole range.
package keys

import (
	"fmt"

	"scikey/internal/grid"
	"scikey/internal/serial"
	"scikey/internal/sfc"
)

// VarMode selects how a key's variable reference is serialized — the
// difference between the introduction's 26,000,006-byte (4-byte index) and
// 33,000,006-byte ("windspeed1" Text) intermediate files.
type VarMode byte

const (
	// VarNone omits the variable from the byte form (single-variable jobs).
	VarNone VarMode = iota
	// VarByIndex serializes the variable as a 4-byte int index.
	VarByIndex
	// VarByName serializes the variable as Text (VInt length + bytes).
	VarByName
)

// String returns the mode name.
func (m VarMode) String() string {
	switch m {
	case VarNone:
		return "none"
	case VarByIndex:
		return "index"
	case VarByName:
		return "name"
	}
	return fmt.Sprintf("VarMode(%d)", byte(m))
}

// VarRef identifies a variable both ways; Codec picks the byte form.
type VarRef struct {
	Name  string
	Index int32
}

// GridKey addresses one cell of one variable's grid.
type GridKey struct {
	Var   VarRef
	Coord grid.Coord
}

// AggKey addresses a contiguous run of curve indices of one variable.
type AggKey struct {
	Var   VarRef
	Range sfc.IndexRange
}

// Codec serializes and compares keys for a fixed job configuration: the
// grid rank and variable mode are job-level constants in SciHadoop, exactly
// as a Hadoop key class is fixed per job.
type Codec struct {
	// Rank is the grid dimensionality for GridKeys.
	Rank int
	// Mode selects the variable byte form.
	Mode VarMode
	// Names maps variable indices back to names when Mode == VarByIndex.
	// Optional; used only for pretty-printing decoded keys.
	Names []string
}

func (c *Codec) writeVar(out *serial.DataOutput, v VarRef) {
	switch c.Mode {
	case VarNone:
	case VarByIndex:
		out.WriteI32(v.Index)
	case VarByName:
		out.WriteText(v.Name)
	}
}

func (c *Codec) readVar(in *serial.DataInput) (VarRef, error) {
	switch c.Mode {
	case VarNone:
		return VarRef{}, nil
	case VarByIndex:
		idx, err := in.ReadI32()
		if err != nil {
			return VarRef{}, err
		}
		v := VarRef{Index: idx}
		if int(idx) >= 0 && int(idx) < len(c.Names) {
			v.Name = c.Names[idx]
		}
		return v, nil
	case VarByName:
		name, err := in.ReadText()
		return VarRef{Name: name}, err
	}
	return VarRef{}, fmt.Errorf("keys: bad VarMode %d", c.Mode)
}

// EncodeGrid appends k's byte form to out: [var][coord0 i32]...[coordN i32].
// With VarByName and "windspeed1" in 4-D this is the paper's 27-byte key
// (6.75x a 4-byte value).
func (c *Codec) EncodeGrid(out *serial.DataOutput, k GridKey) {
	if len(k.Coord) != c.Rank {
		panic(fmt.Sprintf("keys: GridKey rank %d, codec rank %d", len(k.Coord), c.Rank))
	}
	c.writeVar(out, k.Var)
	for _, x := range k.Coord {
		out.WriteI32(int32(x))
	}
}

// GridKeyBytes returns a fresh encoding of k.
func (c *Codec) GridKeyBytes(k GridKey) []byte {
	out := serial.NewDataOutput(c.GridKeySize(k))
	c.EncodeGrid(out, k)
	return out.Bytes()
}

// GridKeySize returns the encoded size of k without encoding it.
func (c *Codec) GridKeySize(k GridKey) int {
	n := 4 * c.Rank
	switch c.Mode {
	case VarByIndex:
		n += 4
	case VarByName:
		n += 1 + len(k.Var.Name) // VInt(len) is 1 byte for names < 128 chars
	}
	return n
}

// DecodeGrid parses a GridKey from in.
func (c *Codec) DecodeGrid(in *serial.DataInput) (GridKey, error) {
	v, err := c.readVar(in)
	if err != nil {
		return GridKey{}, err
	}
	coord := make(grid.Coord, c.Rank)
	for i := range coord {
		x, err := in.ReadI32()
		if err != nil {
			return GridKey{}, err
		}
		coord[i] = int(x)
	}
	return GridKey{Var: v, Coord: coord}, nil
}

// EncodeAgg appends k's byte form to out: [var][lo u64][hi u64]. The
// (corner, size)-style constant cost of Section I: 16 bytes plus the
// variable, independent of how many cells the range covers.
func (c *Codec) EncodeAgg(out *serial.DataOutput, k AggKey) {
	c.writeVar(out, k.Var)
	out.WriteU64(k.Range.Lo)
	out.WriteU64(k.Range.Hi)
}

// AggKeyBytes returns a fresh encoding of k.
func (c *Codec) AggKeyBytes(k AggKey) []byte {
	out := serial.NewDataOutput(24)
	c.EncodeAgg(out, k)
	return out.Bytes()
}

// DecodeAgg parses an AggKey from in.
func (c *Codec) DecodeAgg(in *serial.DataInput) (AggKey, error) {
	v, err := c.readVar(in)
	if err != nil {
		return AggKey{}, err
	}
	lo, err := in.ReadU64()
	if err != nil {
		return AggKey{}, err
	}
	hi, err := in.ReadU64()
	if err != nil {
		return AggKey{}, err
	}
	return AggKey{Var: v, Range: sfc.IndexRange{Lo: lo, Hi: hi}}, nil
}

// CompareGrid orders GridKeys by variable then coordinate (row-major).
func CompareGrid(a, b GridKey) int {
	if c := compareVar(a.Var, b.Var); c != 0 {
		return c
	}
	return a.Coord.Compare(b.Coord)
}

// CompareAgg orders AggKeys by variable, then Lo, then Hi. Sorting by Lo
// first is what lets the reduce-side merge discover overlaps with a
// bounded-lookahead sweep.
func CompareAgg(a, b AggKey) int {
	if c := compareVar(a.Var, b.Var); c != 0 {
		return c
	}
	switch {
	case a.Range.Lo < b.Range.Lo:
		return -1
	case a.Range.Lo > b.Range.Lo:
		return 1
	case a.Range.Hi < b.Range.Hi:
		return -1
	case a.Range.Hi > b.Range.Hi:
		return 1
	}
	return 0
}

func compareVar(a, b VarRef) int {
	switch {
	case a.Index < b.Index:
		return -1
	case a.Index > b.Index:
		return 1
	case a.Name < b.Name:
		return -1
	case a.Name > b.Name:
		return 1
	}
	return 0
}

// RawCompareGrid compares two encoded GridKeys without deserializing. Raw
// byte comparison is semantically correct for the coordinate section only
// when coordinates are non-negative (big-endian two's complement breaks
// lexicographic order at the sign bit), so this decodes; the engine treats
// it as the grouping comparator.
func (c *Codec) RawCompareGrid(a, b []byte) int {
	ka, err := c.DecodeGrid(serial.NewDataInput(a))
	if err != nil {
		return serial.CompareBytes(a, b)
	}
	kb, err := c.DecodeGrid(serial.NewDataInput(b))
	if err != nil {
		return serial.CompareBytes(a, b)
	}
	return CompareGrid(ka, kb)
}

// RawCompareAgg compares two encoded AggKeys without full deserialization.
func (c *Codec) RawCompareAgg(a, b []byte) int {
	ka, err := c.DecodeAgg(serial.NewDataInput(a))
	if err != nil {
		return serial.CompareBytes(a, b)
	}
	kb, err := c.DecodeAgg(serial.NewDataInput(b))
	if err != nil {
		return serial.CompareBytes(a, b)
	}
	return CompareAgg(ka, kb)
}

// String renders a GridKey for diagnostics.
func (k GridKey) String() string {
	if k.Var.Name != "" {
		return k.Var.Name + k.Coord.String()
	}
	return fmt.Sprintf("var%d%s", k.Var.Index, k.Coord)
}

// String renders an AggKey for diagnostics.
func (k AggKey) String() string {
	v := k.Var.Name
	if v == "" {
		v = fmt.Sprintf("var%d", k.Var.Index)
	}
	return fmt.Sprintf("%s[%d,%d)", v, k.Range.Lo, k.Range.Hi)
}

// MetadataStrides derives candidate byte-transform strides from dataset
// metadata, the alternative stride-selection method Section III sketches:
// "the dimensionality of the data, the length of the variable name, and the
// shape of the data" determine the serialized record length. It returns the
// record stride for a raw key/value stream and for IFile-framed records
// (two extra VInt length bytes for small records), plus 2x multiples, which
// capture interleaved two-variable streams.
func (c *Codec) MetadataStrides(varName string, valSize int) []int {
	keySize := c.GridKeySize(GridKey{
		Var:   VarRef{Name: varName},
		Coord: make(grid.Coord, c.Rank),
	})
	raw := keySize + valSize
	framed := raw + 2
	return []int{raw, framed, 2 * raw, 2 * framed}
}

// AlignRange expands r outward to multiples of align (Section IV-C: keys
// are allowed to contain empty space so that overlapping keys are more
// likely to be exactly equal, reducing splits).
func AlignRange(r sfc.IndexRange, align uint64) sfc.IndexRange {
	if align <= 1 {
		return r
	}
	lo := r.Lo / align * align
	hi := (r.Hi + align - 1) / align * align
	return sfc.IndexRange{Lo: lo, Hi: hi}
}
