package keys

import (
	"testing"

	"scikey/internal/grid"
	"scikey/internal/serial"
	"scikey/internal/sfc"
)

func TestGridKeyEncodedSizes(t *testing.T) {
	// The introduction's byte accounting: in 4-D, a key with a 4-byte
	// variable index is 20 bytes; with Text "windspeed1" it is 27 bytes
	// (6.75x a 4-byte value).
	coord := grid.Coord{0, 1, 2, 3}
	byIndex := &Codec{Rank: 4, Mode: VarByIndex}
	k := GridKey{Var: VarRef{Name: "windspeed1", Index: 0}, Coord: coord}
	if got := len(byIndex.GridKeyBytes(k)); got != 20 {
		t.Errorf("index-mode key = %d bytes, want 20", got)
	}
	byName := &Codec{Rank: 4, Mode: VarByName}
	if got := len(byName.GridKeyBytes(k)); got != 27 {
		t.Errorf("name-mode key = %d bytes, want 27", got)
	}
	none := &Codec{Rank: 4, Mode: VarNone}
	if got := len(none.GridKeyBytes(k)); got != 16 {
		t.Errorf("no-var key = %d bytes, want 16", got)
	}
	for _, c := range []*Codec{byIndex, byName, none} {
		if got := c.GridKeySize(k); got != len(c.GridKeyBytes(k)) {
			t.Errorf("GridKeySize mode=%v = %d, want %d", c.Mode, got, len(c.GridKeyBytes(k)))
		}
	}
}

func TestGridKeyRoundTrip(t *testing.T) {
	for _, mode := range []VarMode{VarNone, VarByIndex, VarByName} {
		c := &Codec{Rank: 3, Mode: mode, Names: []string{"temp", "windspeed1"}}
		k := GridKey{Var: VarRef{Name: "windspeed1", Index: 1}, Coord: grid.Coord{-1, 5, 99}}
		enc := c.GridKeyBytes(k)
		got, err := c.DecodeGrid(serial.NewDataInput(enc))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !got.Coord.Equal(k.Coord) {
			t.Errorf("mode %v: coord %v, want %v", mode, got.Coord, k.Coord)
		}
		switch mode {
		case VarByIndex:
			if got.Var.Index != 1 || got.Var.Name != "windspeed1" {
				t.Errorf("index mode: var = %+v", got.Var)
			}
		case VarByName:
			if got.Var.Name != "windspeed1" {
				t.Errorf("name mode: var = %+v", got.Var)
			}
		}
	}
}

func TestAggKeyRoundTrip(t *testing.T) {
	c := &Codec{Rank: 2, Mode: VarByName}
	k := AggKey{Var: VarRef{Name: "v"}, Range: sfc.IndexRange{Lo: 5, Hi: 14}}
	enc := c.AggKeyBytes(k)
	if len(enc) != 2+16 {
		t.Errorf("agg key = %d bytes, want 18", len(enc))
	}
	got, err := c.DecodeAgg(serial.NewDataInput(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Var.Name != "v" || got.Range != k.Range {
		t.Errorf("decoded %v, want %v", got, k)
	}
}

func TestCompareGrid(t *testing.T) {
	a := GridKey{Var: VarRef{Name: "a"}, Coord: grid.Coord{1, 2}}
	b := GridKey{Var: VarRef{Name: "b"}, Coord: grid.Coord{0, 0}}
	if CompareGrid(a, b) >= 0 {
		t.Error("variable must dominate coordinate")
	}
	c := GridKey{Var: VarRef{Name: "a"}, Coord: grid.Coord{1, 3}}
	if CompareGrid(a, c) >= 0 || CompareGrid(c, a) <= 0 || CompareGrid(a, a) != 0 {
		t.Error("coordinate ordering wrong")
	}
}

func TestCompareAgg(t *testing.T) {
	mk := func(lo, hi uint64) AggKey { return AggKey{Range: sfc.IndexRange{Lo: lo, Hi: hi}} }
	if CompareAgg(mk(1, 5), mk(2, 3)) >= 0 {
		t.Error("Lo must dominate")
	}
	if CompareAgg(mk(1, 3), mk(1, 5)) >= 0 {
		t.Error("Hi breaks Lo ties")
	}
	if CompareAgg(mk(1, 5), mk(1, 5)) != 0 {
		t.Error("equal keys must compare 0")
	}
	varA := AggKey{Var: VarRef{Index: 0}, Range: sfc.IndexRange{Lo: 9, Hi: 10}}
	varB := AggKey{Var: VarRef{Index: 1}, Range: sfc.IndexRange{Lo: 0, Hi: 1}}
	if CompareAgg(varA, varB) >= 0 {
		t.Error("variable must dominate range")
	}
}

func TestRawComparators(t *testing.T) {
	c := &Codec{Rank: 2, Mode: VarByName}
	g1 := c.GridKeyBytes(GridKey{Var: VarRef{Name: "v"}, Coord: grid.Coord{-1, 0}})
	g2 := c.GridKeyBytes(GridKey{Var: VarRef{Name: "v"}, Coord: grid.Coord{0, 0}})
	// Negative coordinates break naive byte comparison; the raw comparator
	// must still order (-1,0) before (0,0).
	if c.RawCompareGrid(g1, g2) >= 0 {
		t.Error("RawCompareGrid must handle negative coordinates")
	}
	a1 := c.AggKeyBytes(AggKey{Var: VarRef{Name: "v"}, Range: sfc.IndexRange{Lo: 3, Hi: 9}})
	a2 := c.AggKeyBytes(AggKey{Var: VarRef{Name: "v"}, Range: sfc.IndexRange{Lo: 4, Hi: 5}})
	if c.RawCompareAgg(a1, a2) >= 0 || c.RawCompareAgg(a2, a1) <= 0 || c.RawCompareAgg(a1, a1) != 0 {
		t.Error("RawCompareAgg ordering wrong")
	}
}

func TestAlignRange(t *testing.T) {
	r := sfc.IndexRange{Lo: 5, Hi: 14}
	got := AlignRange(r, 8)
	want := sfc.IndexRange{Lo: 0, Hi: 16}
	if got != want {
		t.Errorf("AlignRange = %v, want %v", got, want)
	}
	if AlignRange(r, 1) != r || AlignRange(r, 0) != r {
		t.Error("align <= 1 must be identity")
	}
	// Already aligned ranges are unchanged.
	if got := AlignRange(sfc.IndexRange{Lo: 8, Hi: 16}, 8); got != (sfc.IndexRange{Lo: 8, Hi: 16}) {
		t.Errorf("aligned range changed: %v", got)
	}
}

func TestMetadataStrides(t *testing.T) {
	// Rank-3 "windspeed1" key: 11 (Text) + 12 (coords) = 23 bytes; with a
	// 4-byte value the raw record stride is 27 and the IFile-framed one 29.
	c := &Codec{Rank: 3, Mode: VarByName}
	got := c.MetadataStrides("windspeed1", 4)
	want := []int{27, 29, 54, 58}
	if len(got) != len(want) {
		t.Fatalf("strides = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stride %d = %d, want %d", i, got[i], want[i])
		}
	}
}
