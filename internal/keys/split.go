package keys

import (
	"fmt"
	"hash/fnv"
	"sort"

	"scikey/internal/sfc"
)

// AggPair couples an aggregate key with its packed value payload: one
// ElemSize-byte value per curve index in Key.Range, in curve order.
type AggPair struct {
	Key    AggKey
	Values []byte
}

// ValuesFor returns the value bytes for the sub-range [lo, hi) of p, which
// must lie inside p's range.
func (p AggPair) ValuesFor(lo, hi uint64, elemSize int) []byte {
	if lo < p.Key.Range.Lo || hi > p.Key.Range.Hi || lo > hi {
		panic(fmt.Sprintf("keys: sub-range [%d,%d) outside %v", lo, hi, p.Key.Range))
	}
	off := (lo - p.Key.Range.Lo) * uint64(elemSize)
	end := (hi - p.Key.Range.Lo) * uint64(elemSize)
	return p.Values[off:end]
}

// SplitAt cuts p into [Lo, at) and [at, Hi). at must lie strictly inside
// the range.
func (p AggPair) SplitAt(at uint64, elemSize int) (AggPair, AggPair) {
	r := p.Key.Range
	if at <= r.Lo || at >= r.Hi {
		panic(fmt.Sprintf("keys: split point %d outside (%d,%d)", at, r.Lo, r.Hi))
	}
	left := AggPair{
		Key:    AggKey{Var: p.Key.Var, Range: sfc.IndexRange{Lo: r.Lo, Hi: at}},
		Values: p.ValuesFor(r.Lo, at, elemSize),
	}
	right := AggPair{
		Key:    AggKey{Var: p.Key.Var, Range: sfc.IndexRange{Lo: at, Hi: r.Hi}},
		Values: p.ValuesFor(at, r.Hi, elemSize),
	}
	return left, right
}

// RangePartitioner assigns contiguous shards of the curve index space
// [0, Total) to reducers, so that aggregate keys usually route whole.
type RangePartitioner struct {
	// Total is the size of the curve index space (2^(rank*bits)).
	Total uint64
	// NumReducers is the shard count.
	NumReducers int
}

// PartitionOf returns the reducer owning idx.
func (rp RangePartitioner) PartitionOf(idx uint64) int {
	if idx >= rp.Total {
		idx = rp.Total - 1
	}
	// idx * R may overflow; shard by width instead.
	width := rp.Total / uint64(rp.NumReducers)
	if width == 0 {
		width = 1
	}
	p := int(idx / width)
	if p >= rp.NumReducers {
		p = rp.NumReducers - 1
	}
	return p
}

// Boundaries returns the interior shard boundaries (NumReducers-1 points);
// an aggregate key must be split wherever one of these falls strictly
// inside its range.
func (rp RangePartitioner) Boundaries() []uint64 {
	width := rp.Total / uint64(rp.NumReducers)
	if width == 0 {
		width = 1
	}
	var out []uint64
	for r := 1; r < rp.NumReducers; r++ {
		b := uint64(r) * width
		if b >= rp.Total {
			break
		}
		out = append(out, b)
	}
	return out
}

// SplitForPartition splits p at every shard boundary inside its range and
// returns the fragments with their reducer assignments, in curve order.
// This is the first of the two split cases in Section IV-B: "A mapper may
// generate an aggregate key whose simple keys do not all route to the same
// reducer."
func (rp RangePartitioner) SplitForPartition(p AggPair, elemSize int) []PartitionedPair {
	r := p.Key.Range
	first := rp.PartitionOf(r.Lo)
	last := rp.PartitionOf(r.Hi - 1)
	if first == last {
		return []PartitionedPair{{Partition: first, Pair: p}}
	}
	var out []PartitionedPair
	rest := p
	for _, b := range rp.Boundaries() {
		if b <= rest.Key.Range.Lo {
			continue
		}
		if b >= rest.Key.Range.Hi {
			break
		}
		left, right := rest.SplitAt(b, elemSize)
		out = append(out, PartitionedPair{Partition: rp.PartitionOf(left.Key.Range.Lo), Pair: left})
		rest = right
	}
	out = append(out, PartitionedPair{Partition: rp.PartitionOf(rest.Key.Range.Lo), Pair: rest})
	return out
}

// PartitionedPair is an AggPair routed to one reducer.
type PartitionedPair struct {
	Partition int
	Pair      AggPair
}

// HashPartition assigns an encoded simple key to a reducer by FNV-1a hash,
// Hadoop's default HashPartitioner behaviour for independent keys.
func HashPartition(key []byte, numReducers int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(numReducers))
}

// SplitOverlaps takes AggPairs sorted by CompareAgg and splits unequal
// overlapping keys along the overlap boundaries (Fig. 7), so that after
// splitting, any two output ranges of the same variable are either equal or
// disjoint. Equal output keys are adjacent, ready for grouped reduction.
//
// The sweep is streaming in the sense of Section IV-D: it buffers only one
// "cluster" of transitively overlapping keys at a time (bounded by the
// overlap depth, e.g. halo width in the sliding-median query), not the
// whole stream.
func SplitOverlaps(in []AggPair, elemSize int) []AggPair {
	out := make([]AggPair, 0, len(in))
	var cluster []AggPair
	var clusterMaxHi uint64
	flush := func() {
		out = append(out, splitCluster(cluster, elemSize)...)
		cluster = cluster[:0]
		clusterMaxHi = 0
	}
	for _, p := range in {
		if len(cluster) > 0 &&
			(p.Key.Var != cluster[0].Key.Var || p.Key.Range.Lo >= clusterMaxHi) {
			flush()
		}
		cluster = append(cluster, p)
		if p.Key.Range.Hi > clusterMaxHi {
			clusterMaxHi = p.Key.Range.Hi
		}
	}
	if len(cluster) > 0 {
		flush()
	}
	return out
}

// splitCluster splits every member of a transitively-overlapping cluster at
// every other member's boundaries, then returns the fragments in sorted
// order.
func splitCluster(cluster []AggPair, elemSize int) []AggPair {
	if len(cluster) == 1 {
		return []AggPair{cluster[0]}
	}
	// Collect the distinct cut points.
	cuts := make([]uint64, 0, 2*len(cluster))
	for _, p := range cluster {
		cuts = append(cuts, p.Key.Range.Lo, p.Key.Range.Hi)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = dedupU64(cuts)

	var frags []AggPair
	for _, p := range cluster {
		rest := p
		for _, c := range cuts {
			r := rest.Key.Range
			if c <= r.Lo {
				continue
			}
			if c >= r.Hi {
				break
			}
			left, right := rest.SplitAt(c, elemSize)
			frags = append(frags, left)
			rest = right
		}
		frags = append(frags, rest)
	}
	sort.Slice(frags, func(i, j int) bool {
		return CompareAgg(frags[i].Key, frags[j].Key) < 0
	})
	return frags
}

func dedupU64(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
