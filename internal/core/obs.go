package core

import (
	"scikey/internal/codec"
	"scikey/internal/obs"
	"scikey/internal/predictor"
)

// predictorStatsFunc builds the codec.Transform.StatsFunc that publishes
// predictor telemetry into the observer's registry. The transform reports
// once per compressed segment (at writer Close, on the spill worker
// goroutine), so the counters accumulate across segments while the
// active-set gauge tracks the latest segment's final state. Returns nil
// when there is no observer, keeping the codec path untouched.
func predictorStatsFunc(o *obs.Observer) func(predictor.Stats) {
	if o == nil {
		return nil
	}
	r := o.R()
	active := r.Gauge("scikey_predictor_active_strides",
		"Active-set size at the end of the most recent transformed segment", "")
	bytes := r.Counter("scikey_predictor_bytes_total",
		"Bytes run through the predictive transform", "bytes")
	predicted := r.Counter("scikey_predictor_predicted_bytes_total",
		"Bytes emitted as prediction residuals", "bytes")
	evictions := r.Counter("scikey_predictor_evictions_total",
		"Strides evicted from the active set", "")
	admissions := r.Counter("scikey_predictor_admissions_total",
		"Evicted strides re-admitted to the active set", "")
	hits := r.Counter("scikey_predictor_seq_hits_total",
		"Sequence-table hits across active strides (hit ratio numerator)", "")
	checks := r.Counter("scikey_predictor_seq_checks_total",
		"Sequence-table checks across active strides (hit ratio denominator)", "")
	return func(s predictor.Stats) {
		active.Set(int64(s.ActiveStrides))
		bytes.Add(s.Bytes)
		predicted.Add(s.PredictedBytes)
		evictions.Add(s.Evictions)
		admissions.Add(s.Admissions)
		hits.Add(s.SeqHits)
		checks.Add(s.SeqChecks)
	}
}

// publishBlockMetrics merges the parallel block pipeline's counters into the
// observer's registry once, after a job completes. The pipeline's own
// counters are plain atomics (the codec package stays observer-free); this
// bridge is how their totals reach /metrics. Both nils are tolerated.
func publishBlockMetrics(o *obs.Observer, m *codec.BlockMetrics) {
	if o == nil || m == nil {
		return
	}
	r := o.R()
	r.Counter("scikey_block_codec_blocks_encoded_total",
		"Blocks pushed through the parallel block codec's encode pipeline", "").Add(m.BlocksEncoded.Load())
	r.Counter("scikey_block_codec_blocks_decoded_total",
		"Blocks pushed through the parallel block codec's decode pipeline", "").Add(m.BlocksDecoded.Load())
	r.Counter("scikey_block_codec_encode_stalls_total",
		"Encode submissions that waited for the ordered-reassembly ring (writer ahead of workers)", "").Add(m.EncodeStalls.Load())
	r.Counter("scikey_block_codec_decode_stalls_total",
		"Decode pulls that waited for the prefetching pipeline (consumer ahead of workers)", "").Add(m.DecodeStalls.Load())
}
