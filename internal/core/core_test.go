package core

import (
	"testing"

	"scikey/internal/cluster"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/scihadoop"
	"scikey/internal/workload"
)

func setup(t *testing.T, side int) (*hdfs.FileSystem, scihadoop.QueryConfig, *workload.Field) {
	t.Helper()
	extent := grid.NewBox(grid.Coord{0, 0}, []int{side, side})
	fs := hdfs.New(1<<20, 1, []string{"n0", "n1", "n2", "n3", "n4"})
	ds := scihadoop.Dataset{Path: "/data/w.arr", Var: keys.VarRef{Name: "windspeed1"}, Extent: extent}
	field := &workload.Field{Extent: extent, Name: ds.Var.Name}
	if err := scihadoop.Store(fs, ds, field); err != nil {
		t.Fatal(err)
	}
	return fs, scihadoop.QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3}, field
}

func TestAllStrategiesAgree(t *testing.T) {
	fs, qcfg, field := setup(t, 20)
	want := scihadoop.Reference(field, qcfg.DS.Extent, 1, scihadoop.Median)
	clus := cluster.Paper()
	strategies := []Strategy{
		{Kind: Baseline},
		{Kind: ByteTransform},
		{Kind: ByteTransform, Codec: "gzip"},
		{Kind: Aggregation},
		{Kind: Aggregation, Curve: "hilbert"},
		{Kind: BoxAggregation},
	}
	reports := make([]*Report, len(strategies))
	for i, s := range strategies {
		q := qcfg
		q.OutputPath = "/out/" + s.Name()
		rep, err := RunQuery(fs, q, s, clus, true)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		reports[i] = rep
		if len(rep.Output) != len(want) {
			t.Fatalf("%s: %d cells, want %d", s.Name(), len(rep.Output), len(want))
		}
		for k, w := range want {
			if rep.Output[k] != w {
				t.Fatalf("%s: cell %s = %d, want %d", s.Name(), k, rep.Output[k], w)
			}
		}
	}

	base := reports[0]
	// Rank-2 keys are 19 bytes ("windspeed1" Text + two int32 coords) vs
	// 4-byte values: a 4.75x key/value ratio.
	if base.KeyBytes*4 != base.ValueBytes*19 {
		t.Errorf("baseline key/value bytes = %d/%d, want exact 19:4 ratio",
			base.KeyBytes, base.ValueBytes)
	}
	// ByteTransform shrinks materialized bytes, leaves record count alone.
	bt := reports[1]
	if bt.MaterializedBytes >= base.MaterializedBytes {
		t.Errorf("transform did not shrink bytes: %d vs %d", bt.MaterializedBytes, base.MaterializedBytes)
	}
	if bt.MapOutputRecords != base.MapOutputRecords {
		t.Error("transform must not change record count")
	}
	// Aggregation shrinks both records and bytes, and performs splits.
	agg := reports[3]
	if agg.MaterializedBytes >= base.MaterializedBytes {
		t.Errorf("aggregation did not shrink bytes: %d vs %d", agg.MaterializedBytes, base.MaterializedBytes)
	}
	if agg.MapOutputRecords >= base.MapOutputRecords {
		t.Error("aggregation must shrink record count")
	}
	if agg.OverlapSplits == 0 {
		t.Error("aggregation must split overlapping keys")
	}
	if r := agg.Reduction(base); r <= 0 || r > 1 {
		t.Errorf("Reduction = %f", r)
	}
	if base.Reduction(base) != 0 {
		t.Error("self-reduction must be 0")
	}
	_ = base.RuntimeDelta(base)
}

func TestStrategyNames(t *testing.T) {
	cases := map[string]Strategy{
		"baseline":            {Kind: Baseline},
		"transform+zlib":      {Kind: ByteTransform},
		"transform+bzip2":     {Kind: ByteTransform, Codec: "bzip2"},
		"aggregation/zorder":  {Kind: Aggregation},
		"aggregation/hilbert": {Kind: Aggregation, Curve: "hilbert"},
		"aggregation/boxes":   {Kind: BoxAggregation},
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
	if Baseline.String() != "baseline" || ByteTransform.String() != "byte-transform" ||
		Aggregation.String() != "aggregation" || BoxAggregation.String() != "box-aggregation" {
		t.Error("kind strings wrong")
	}
}

func TestUnknownCodecFails(t *testing.T) {
	fs, qcfg, _ := setup(t, 8)
	_, err := RunQuery(fs, qcfg, Strategy{Kind: ByteTransform, Codec: "nope"}, cluster.Paper(), false)
	if err == nil {
		t.Error("unknown codec must error")
	}
}

func TestNoDecodeSkipsOutput(t *testing.T) {
	fs, qcfg, _ := setup(t, 8)
	rep, err := RunQuery(fs, qcfg, Strategy{Kind: Baseline}, cluster.Paper(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output != nil {
		t.Error("output should not be decoded")
	}
	if rep.Estimate.Total() <= 0 {
		t.Error("estimate missing")
	}
}
