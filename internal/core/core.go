// Package core is the top-level API of the library: it names the paper's
// three intermediate-data strategies, runs a sliding-window query under any
// of them on the simulated cluster, and reports the quantities the paper's
// evaluation tables are built from — intermediate byte volumes (decomposed
// into keys, values, and file overhead), key-split counts, and modeled
// runtimes.
//
// The three strategies:
//
//   - Baseline: Hadoop as-is — one simple key per cell, no compression.
//   - ByteTransform (Section III): keep simple keys, but compress spills
//     with the predictive byte transform stacked on a generic codec
//     ("a custom compression module" via Hadoop's pluggable codecs).
//   - Aggregation (Section IV): aggregate keys on a space-filling curve
//     with partition- and overlap-time key splitting.
package core

import (
	"fmt"
	"strings"

	"scikey/internal/cluster"
	"scikey/internal/codec"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/scihadoop"
)

// StrategyKind enumerates the intermediate-data handling approaches.
type StrategyKind int

const (
	// Baseline is unmodified Hadoop behaviour.
	Baseline StrategyKind = iota
	// ByteTransform is Section III: simple keys + transform codec.
	ByteTransform
	// Aggregation is Section IV: aggregate keys + key splitting.
	Aggregation
	// BoxAggregation aggregates directly in n-dimensional space with
	// (corner, size) keys — the Fig. 5 alternative, built by this
	// repository's boxagg extension.
	BoxAggregation
)

// String names the kind.
func (k StrategyKind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case ByteTransform:
		return "byte-transform"
	case Aggregation:
		return "aggregation"
	case BoxAggregation:
		return "box-aggregation"
	}
	return fmt.Sprintf("StrategyKind(%d)", int(k))
}

// Strategy selects and parameterizes an approach.
type Strategy struct {
	Kind StrategyKind
	// Codec names the generic codec under the transform (ByteTransform
	// only; default "zlib", the paper's choice in Section III-E). A
	// "block+" prefix (e.g. "block+zlib") wraps the whole transform stack
	// in the parallel block pipeline — each block runs the predictive
	// transform and the generic codec independently on a worker, with
	// QueryConfig.CodecWorkers setting the width.
	Codec string
	// Curve names the space-filling curve (Aggregation only; default
	// "zorder").
	Curve string
	// FlushCells bounds the aggregation buffer (Aggregation only).
	FlushCells int
}

// Name renders a stable label for reports.
func (s Strategy) Name() string {
	switch s.Kind {
	case ByteTransform:
		c := s.Codec
		if c == "" {
			c = "zlib"
		}
		return "transform+" + c
	case Aggregation:
		c := s.Curve
		if c == "" {
			c = "zorder"
		}
		return "aggregation/" + c
	case BoxAggregation:
		return "aggregation/boxes"
	}
	return "baseline"
}

// Report is the outcome of one strategy run: exact byte accounting from the
// engine counters plus the modeled runtime.
type Report struct {
	Strategy string
	// MapOutputRecords is the intermediate pair count.
	MapOutputRecords int64
	// KeyBytes / ValueBytes decompose the serialized map output (Fig. 8's
	// "Keys" and "Values" bars).
	KeyBytes   int64
	ValueBytes int64
	// MaterializedBytes is "Map output materialized bytes" — on-disk
	// intermediate data after framing and any codec.
	MaterializedBytes int64
	// ShuffleBytes crossed the network to reducers.
	ShuffleBytes int64
	// PartitionSplits and OverlapSplits count the Section IV-B key splits.
	PartitionSplits int64
	OverlapSplits   int64
	// CombineMergedRecords / CombineEmittedRecords / CombineSavedBytes
	// describe in-node combining (QueryConfig.Combine; all zero when off):
	// records folded away, records the combined segments still carry, and
	// shuffle bytes removed versus the raw per-task segments.
	CombineMergedRecords  int64
	CombineEmittedRecords int64
	CombineSavedBytes     int64
	// FailedAttempts, TaskRetries, CorruptSegments, and RecoveredMaps
	// describe the recovery machinery's activity; all zero on a clean run.
	FailedAttempts  int64
	TaskRetries     int64
	CorruptSegments int64
	RecoveredMaps   int64
	// ShuffleFetches through ShuffleBreakerTrips describe the networked
	// shuffle transport's work; all zero under the in-memory shuffle.
	ShuffleFetches          int64
	ShuffleFetchRetries     int64
	ShuffleFetchesResumed   int64
	ShuffleFetchWastedBytes int64
	ShuffleBreakerTrips     int64
	// MapPhaseCached reports that the run restored its map output from
	// QueryConfig.MapCache instead of executing map attempts.
	MapPhaseCached bool
	// Estimate is the modeled runtime on the configured cluster, including
	// slot time wasted on discarded attempts.
	Estimate cluster.JobEstimate
	// Output holds the decoded per-cell results when requested.
	Output scihadoop.CellResults
}

// JobPlan is a fully built query job plus the machinery to decode its
// output: what RunQuery executes, and what a cluster worker process
// rebuilds from the job spec so its attempts produce the coordinator's
// exact bytes.
type JobPlan struct {
	Job    *mapreduce.Job
	Codec  *keys.Codec
	Decode func(*mapreduce.Result) (scihadoop.CellResults, error)
	// BlockMetrics is the parallel block pipeline's traffic/stall counters
	// when the strategy uses a block+ codec; nil otherwise. RunQuery
	// publishes them into the observer after the job completes.
	BlockMetrics *codec.BlockMetrics
}

// ValidateQuery checks a query configuration against a strategy without
// building anything. BuildJob calls it first, so every execution path — the
// one-shot CLI, the resident query service, and a coordinator rebuilding a
// job from a wire spec — rejects a bad configuration with the same error
// text. Front-ends wanting to fail before touching datasets or daemons call
// it directly.
func ValidateQuery(qcfg scihadoop.QueryConfig, strat Strategy) error {
	if qcfg.NumSplits < 0 {
		return fmt.Errorf("core: NumSplits must be >= 0, got %d", qcfg.NumSplits)
	}
	if qcfg.NumReducers < 0 {
		return fmt.Errorf("core: NumReducers must be >= 0, got %d", qcfg.NumReducers)
	}
	if qcfg.Radius < 0 {
		return fmt.Errorf("core: Radius must be >= 0, got %d", qcfg.Radius)
	}
	if qcfg.CodecWorkers < 0 {
		return fmt.Errorf("core: CodecWorkers must be >= 0, got %d", qcfg.CodecWorkers)
	}
	if qcfg.CodecWorkers > 0 &&
		(strat.Kind != ByteTransform || !strings.HasPrefix(strings.ToLower(strat.Codec), "block+")) {
		return fmt.Errorf("core: CodecWorkers is set but strategy %q has no block+ codec", strat.Name())
	}
	if qcfg.CombineNodes < 0 {
		return fmt.Errorf("core: CombineNodes must be >= 0, got %d", qcfg.CombineNodes)
	}
	if qcfg.CombineNodes > 0 && !qcfg.Combine {
		return fmt.Errorf("core: CombineNodes is set but combining is off")
	}
	if qcfg.Combine {
		// Fail fast with the operator's own diagnosis (holistic operators
		// have no monoid) before any dataset machinery is touched.
		if _, err := scihadoop.CombinerFor(qcfg.Op); err != nil {
			return err
		}
	}
	return nil
}

// BuildJob constructs the query job for a strategy without running it.
func BuildJob(fs *hdfs.FileSystem, qcfg scihadoop.QueryConfig, strat Strategy) (*JobPlan, error) {
	if err := ValidateQuery(qcfg, strat); err != nil {
		return nil, err
	}
	switch strat.Kind {
	case Baseline, ByteTransform:
		var bm *codec.BlockMetrics
		if strat.Kind == ByteTransform {
			inner := strat.Codec
			if inner == "" {
				inner = "zlib"
			}
			rest, blocked := strings.CutPrefix(strings.ToLower(inner), "block+")
			if blocked {
				inner = rest
			}
			base, cerr := codec.Get(inner)
			if cerr != nil {
				return nil, cerr
			}
			t := codec.NewTransform(base)
			t.StatsFunc = predictorStatsFunc(qcfg.Obs)
			if blocked {
				// block+ wraps the WHOLE transform stack: each block runs
				// the predictive transform and the generic codec on its own
				// worker, so the expensive predictor parallelizes too.
				blk := codec.NewBlock(t)
				blk.Workers = qcfg.CodecWorkers
				bm = new(codec.BlockMetrics)
				blk.Metrics = bm
				qcfg.MapOutputCodec = blk
			} else {
				qcfg.MapOutputCodec = t
			}
		}
		job, kc, err := scihadoop.SimpleKeyJob(fs, qcfg)
		if err != nil {
			return nil, err
		}
		return &JobPlan{Job: job, Codec: kc, BlockMetrics: bm, Decode: func(r *mapreduce.Result) (scihadoop.CellResults, error) {
			return scihadoop.ReadSimpleOutput(fs, r, kc)
		}}, nil
	case Aggregation:
		if strat.Curve != "" {
			qcfg.Curve = strat.Curve
		}
		if strat.FlushCells > 0 {
			qcfg.FlushCells = strat.FlushCells
		}
		job, m, err := scihadoop.AggKeyJob(fs, qcfg)
		if err != nil {
			return nil, err
		}
		kc := outputCodec(qcfg)
		return &JobPlan{Job: job, Codec: kc, Decode: func(r *mapreduce.Result) (scihadoop.CellResults, error) {
			return scihadoop.ReadAggOutput(fs, r, kc, m)
		}}, nil
	case BoxAggregation:
		if strat.FlushCells > 0 {
			qcfg.FlushCells = strat.FlushCells
		}
		job, err := scihadoop.BoxKeyJob(fs, qcfg)
		if err != nil {
			return nil, err
		}
		kc := outputCodec(qcfg)
		return &JobPlan{Job: job, Codec: kc, Decode: func(r *mapreduce.Result) (scihadoop.CellResults, error) {
			return scihadoop.ReadBoxOutput(fs, r, kc)
		}}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy kind %v", strat.Kind)
	}
}

// RunQuery executes the query under the strategy and gathers a Report.
// When decodeOutput is false the (possibly large) output map stays nil.
func RunQuery(fs *hdfs.FileSystem, qcfg scihadoop.QueryConfig, strat Strategy, clus cluster.Config, decodeOutput bool) (*Report, error) {
	rep, _, err := RunQueryResult(fs, qcfg, strat, clus, decodeOutput)
	return rep, err
}

// RunQueryResult is RunQuery plus the raw engine Result, for callers that
// need the output paths or calibration samples — the query service hashes
// output files and re-fits its cost model from them.
func RunQueryResult(fs *hdfs.FileSystem, qcfg scihadoop.QueryConfig, strat Strategy, clus cluster.Config, decodeOutput bool) (*Report, *mapreduce.Result, error) {
	plan, err := BuildJob(fs, qcfg, strat)
	if err != nil {
		return nil, nil, err
	}

	res, err := mapreduce.Run(plan.Job)
	if err != nil {
		return nil, nil, err
	}
	publishBlockMetrics(qcfg.Obs, plan.BlockMetrics)
	c := res.Counters
	rep := &Report{
		Strategy:                strat.Name(),
		MapOutputRecords:        c.MapOutputRecords.Value(),
		KeyBytes:                c.MapOutputKeyBytes.Value(),
		ValueBytes:              c.MapOutputValueBytes.Value(),
		MaterializedBytes:       c.MapOutputMaterializedBytes.Value(),
		ShuffleBytes:            c.ReduceShuffleBytes.Value(),
		PartitionSplits:         c.PartitionKeySplits.Value(),
		OverlapSplits:           c.OverlapKeySplits.Value(),
		CombineMergedRecords:    c.CombineMergedRecords.Value(),
		CombineEmittedRecords:   c.CombineEmittedRecords.Value(),
		CombineSavedBytes:       c.CombineSavedBytes.Value(),
		FailedAttempts:          c.MapAttemptsFailed.Value() + c.ReduceAttemptsFailed.Value(),
		TaskRetries:             c.TaskRetries.Value(),
		CorruptSegments:         c.CorruptSegmentsDetected.Value(),
		RecoveredMaps:           c.MapTasksRecovered.Value(),
		ShuffleFetches:          c.ShuffleFetches.Value(),
		ShuffleFetchRetries:     c.ShuffleFetchRetries.Value(),
		ShuffleFetchesResumed:   c.ShuffleFetchesResumed.Value(),
		ShuffleFetchWastedBytes: c.ShuffleFetchWastedBytes.Value(),
		ShuffleBreakerTrips:     c.ShuffleBreakerTrips.Value(),
		MapPhaseCached:          res.MapPhaseCached,
		Estimate:                res.Estimate(clus),
	}
	if decodeOutput {
		out, derr := plan.Decode(res)
		if derr != nil {
			return nil, nil, derr
		}
		rep.Output = out
	}
	return rep, res, nil
}

// outputCodec builds the key codec matching a query's output encoding.
func outputCodec(qcfg scihadoop.QueryConfig) *keys.Codec {
	mode := qcfg.KeyMode
	if mode == 0 {
		mode = keys.VarByName
	}
	return &keys.Codec{Rank: qcfg.DS.Extent.Rank(), Mode: mode}
}

// Reduction returns the fractional decrease of this report's materialized
// bytes versus a baseline report (0.778 means "reduced by 77.8%", the
// paper's Section III-E headline).
func (r *Report) Reduction(baseline *Report) float64 {
	if baseline.MaterializedBytes == 0 {
		return 0
	}
	return 1 - float64(r.MaterializedBytes)/float64(baseline.MaterializedBytes)
}

// RuntimeDelta returns the relative modeled-runtime change versus baseline:
// +1.06 means 106% slower (Section III-E), -0.285 means 28.5% faster
// (Section IV-D).
func (r *Report) RuntimeDelta(baseline *Report) float64 {
	b := baseline.Estimate.Total()
	if b == 0 {
		return 0
	}
	return r.Estimate.Total()/b - 1
}
