package core

import (
	"strings"
	"testing"

	"scikey/internal/cluster"
	"scikey/internal/obs"
)

// TestPredictorMetricsPublished: a transform-strategy run with an Observer
// exposes the predictor telemetry (byte throughput, prediction coverage, and
// the active-set gauge) without changing the run's byte accounting.
func TestPredictorMetricsPublished(t *testing.T) {
	fs, qcfg, _ := setup(t, 20)
	qcfg.OutputPath = "/out/obs-off"
	plain, err := RunQuery(fs, qcfg, Strategy{Kind: ByteTransform}, cluster.Paper(), false)
	if err != nil {
		t.Fatal(err)
	}

	ob := obs.New()
	qcfg.Obs = ob
	qcfg.OutputPath = "/out/obs-on"
	traced, err := RunQuery(fs, qcfg, Strategy{Kind: ByteTransform}, cluster.Paper(), false)
	if err != nil {
		t.Fatal(err)
	}
	if traced.MaterializedBytes != plain.MaterializedBytes {
		t.Errorf("observer changed materialized bytes: %d vs %d",
			traced.MaterializedBytes, plain.MaterializedBytes)
	}

	r := ob.R()
	bytes := r.Counter("scikey_predictor_bytes_total", "", "bytes").Value()
	if bytes == 0 {
		t.Error("predictor processed no bytes according to the registry")
	}
	predicted := r.Counter("scikey_predictor_predicted_bytes_total", "", "bytes").Value()
	if predicted <= 0 || predicted > bytes {
		t.Errorf("predicted bytes = %d of %d, want within (0, total]", predicted, bytes)
	}
	checks := r.Counter("scikey_predictor_seq_checks_total", "", "").Value()
	hits := r.Counter("scikey_predictor_seq_hits_total", "", "").Value()
	if checks == 0 || hits > checks {
		t.Errorf("sequence hit ratio broken: %d hits / %d checks", hits, checks)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE scikey_predictor_active_strides gauge",
		"scikey_predictor_bytes_total",
		"scikey_map_output_materialized_bytes_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
