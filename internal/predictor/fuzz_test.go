package predictor

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip drives arbitrary byte streams and detector parameters
// through Forward+Inverse: the pair must always be lossless.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("windspeed1windspeed1windspeed1"), 10, 3)
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3}, 4, 1)
	f.Add([]byte{}, 1, 2)
	f.Fuzz(func(t *testing.T, data []byte, maxStride, runThreshold int) {
		if maxStride < 1 || maxStride > 64 || runThreshold < 1 || runThreshold > 8 {
			t.Skip()
		}
		cfg := Config{MaxStride: maxStride, RunThreshold: runThreshold}
		res := NewTransformer(cfg).Forward(nil, data)
		if len(res) != len(data) {
			t.Fatalf("residual %d bytes, input %d", len(res), len(data))
		}
		back := NewTransformer(cfg).Inverse(nil, res)
		if !bytes.Equal(back, data) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
