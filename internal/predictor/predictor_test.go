package predictor

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// gridWalkStream serializes int32 triples from walking an n×n×n grid, the
// input of Fig. 3.
func gridWalkStream(n int) []byte {
	out := make([]byte, 0, n*n*n*12)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				out = binary.BigEndian.AppendUint32(out, uint32(x))
				out = binary.BigEndian.AppendUint32(out, uint32(y))
				out = binary.BigEndian.AppendUint32(out, uint32(z))
			}
		}
	}
	return out
}

func roundTrip(t *testing.T, cfg Config, data []byte) []byte {
	t.Helper()
	fwd := NewTransformer(cfg)
	res := fwd.Forward(nil, data)
	if len(res) != len(data) {
		t.Fatalf("residual length %d != input %d", len(res), len(data))
	}
	inv := NewTransformer(cfg)
	back := inv.Inverse(nil, res)
	if !bytes.Equal(back, data) {
		for i := range data {
			if back[i] != data[i] {
				t.Fatalf("roundtrip diverges at byte %d: got %#x want %#x (cfg %+v)", i, back[i], data[i], cfg)
			}
		}
	}
	return res
}

func TestRoundTripModes(t *testing.T) {
	data := gridWalkStream(12)
	for _, cfg := range []Config{
		{Mode: Adaptive},
		{Mode: Adaptive, MaxStride: 20},
		{Mode: Exhaustive, MaxStride: 50},
		{Mode: Fixed, Strides: []int{12}},
		{Mode: Fixed, Strides: []int{5, 12, 24}},
	} {
		roundTrip(t, cfg, data)
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(5000)
		data := make([]byte, n)
		rng.Read(data)
		roundTrip(t, Config{Mode: Adaptive, MaxStride: 30}, data)
	}
}

func TestRoundTripAdversarial(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{1, 2, 3},
		bytes.Repeat([]byte{7}, 10000),         // constant
		bytes.Repeat([]byte{0, 1, 2, 3}, 2500), // short period
		bytes.Repeat([]byte{0xff, 0x00}, 5000), // alternating extremes
		func() []byte { // ramp with wraparound
			b := make([]byte, 4096)
			for i := range b {
				b[i] = byte(i * 3)
			}
			return b
		}(),
	}
	for i, data := range cases {
		for _, cfg := range []Config{{Mode: Adaptive}, {Mode: Exhaustive, MaxStride: 16}} {
			got := roundTrip(t, cfg, data)
			_ = got
			_ = i
		}
	}
}

func TestRoundTripChunked(t *testing.T) {
	// Feeding the stream in arbitrary chunks must not change the output.
	data := gridWalkStream(10)
	whole := NewTransformer(Config{}).Forward(nil, data)

	chunked := NewTransformer(Config{})
	var res []byte
	rng := rand.New(rand.NewSource(2))
	for off := 0; off < len(data); {
		n := 1 + rng.Intn(997)
		if off+n > len(data) {
			n = len(data) - off
		}
		res = chunked.Forward(res, data[off:off+n])
		off += n
	}
	if !bytes.Equal(res, whole) {
		t.Fatal("chunked Forward differs from whole-stream Forward")
	}
	inv := NewTransformer(Config{})
	var back []byte
	for off := 0; off < len(res); {
		n := 1 + rng.Intn(511)
		if off+n > len(res) {
			n = len(res) - off
		}
		back = inv.Inverse(back, res[off:off+n])
		off += n
	}
	if !bytes.Equal(back, data) {
		t.Fatal("chunked Inverse failed to reconstruct")
	}
}

func TestResidualMostlyZero(t *testing.T) {
	// On a regular grid walk the transform should predict the vast
	// majority of bytes exactly, leaving a residual stream dominated by
	// zeros — the property that makes gzip 50x more effective (Fig. 3).
	data := gridWalkStream(20) // 96000 bytes, stride 12 structure
	res := NewTransformer(Config{}).Forward(nil, data)
	zeros := 0
	for _, b := range res {
		if b == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(res))
	if frac < 0.95 {
		t.Errorf("residual only %.1f%% zero; transform is not predicting the grid walk", frac*100)
	}
}

func TestFig2SequenceDetection(t *testing.T) {
	// Fig. 2's encoded key stream: 47-byte records where one byte advances
	// by δ=0x0a each record. After a few records the detector's best
	// sequence must be stride 47 with delta 0x0a.
	const recLen = 47
	const hot = 34
	var data []byte
	for r := 0; r < 60; r++ {
		rec := make([]byte, recLen)
		copy(rec, "....windspeed1.....")
		rec[hot] = byte(0x10 + 0x0a*r)
		data = append(data, rec...)
	}
	tr := NewTransformer(Config{})
	tr.Forward(nil, data)
	// Walk one more record byte-by-byte; at the hot phase the best
	// sequence must be (47, hot, 0x0a) with a long run.
	next := make([]byte, recLen)
	copy(next, "....windspeed1.....")
	next[hot] = byte((0x10 + 0x0a*60) % 256)
	for i := 0; i < hot; i++ {
		tr.Forward(nil, next[i:i+1])
	}
	stride, phase, delta, run := tr.BestSequence()
	if stride != recLen {
		t.Errorf("best stride = %d, want %d", stride, recLen)
	}
	if phase != hot%recLen {
		t.Errorf("best phase = %d, want %d", phase, hot)
	}
	if delta != 0x0a {
		t.Errorf("best delta = %#x, want 0x0a", delta)
	}
	if run < 10 {
		t.Errorf("run = %d, want a long run", run)
	}
}

func TestAdaptiveShrinksActiveSetOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 64<<10)
	rng.Read(data)
	tr := NewTransformer(Config{MaxStride: 100})
	tr.Forward(nil, data)
	active := tr.ActiveStrides()
	// Random bytes match any delta with probability 1/256, far below 5/6:
	// nearly everything must be evicted (re-admissions keep a few alive).
	if len(active) > 10 {
		t.Errorf("active set still has %d strides on random data: %v", len(active), active)
	}
}

func TestExhaustiveKeepsAllStrides(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := make([]byte, 8<<10)
	rng.Read(data)
	tr := NewTransformer(Config{Mode: Exhaustive, MaxStride: 60})
	tr.Forward(nil, data)
	if got := len(tr.ActiveStrides()); got != 60 {
		t.Errorf("exhaustive active set = %d strides, want 60", got)
	}
}

func TestReset(t *testing.T) {
	data := gridWalkStream(8)
	tr := NewTransformer(Config{})
	first := tr.Forward(nil, data)
	tr.Reset()
	second := tr.Forward(nil, data)
	if !bytes.Equal(first, second) {
		t.Error("Reset must restore initial state")
	}
}

func TestFixedStrideSingle(t *testing.T) {
	// The Section III discussion: a single user-specified stride of 12
	// captures most of the structure of the int32-triple walk.
	data := gridWalkStream(16)
	res := NewTransformer(Config{Mode: Fixed, Strides: []int{12}}).Forward(nil, data)
	zeros := 0
	for _, b := range res {
		if b == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / float64(len(res)); frac < 0.9 {
		t.Errorf("fixed stride 12 residual only %.1f%% zero", frac*100)
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("fixed without strides", func() { NewTransformer(Config{Mode: Fixed}) })
	mustPanic("negative stride", func() { NewTransformer(Config{Mode: Fixed, Strides: []int{-1}}) })
	mustPanic("negative MaxStride", func() { NewTransformer(Config{MaxStride: -5}) })
}

func TestModeString(t *testing.T) {
	if Adaptive.String() != "adaptive" || Exhaustive.String() != "exhaustive" || Fixed.String() != "fixed" {
		t.Error("mode names wrong")
	}
}

func BenchmarkForwardAdaptive(b *testing.B) {
	data := gridWalkStream(32)
	tr := NewTransformer(Config{})
	dst := make([]byte, 0, len(data))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		dst = tr.Forward(dst[:0], data)
	}
}

func BenchmarkForwardExhaustive(b *testing.B) {
	data := gridWalkStream(32)
	tr := NewTransformer(Config{Mode: Exhaustive})
	dst := make([]byte, 0, len(data))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		dst = tr.Forward(dst[:0], data)
	}
}

func TestMetadataDerivedStrideCompetitive(t *testing.T) {
	// Section III: strides can be derived from metadata instead of
	// detected. On a clean single-variable key stream the metadata-derived
	// fixed stride should predict almost as well as the adaptive detector.
	rec := make([]byte, 27) // rank-3 "windspeed1" record: 23-byte key + 4-byte value
	copy(rec, "\x0awindspeed1")
	var data []byte
	for i := 0; i < 4000; i++ {
		rec[22] = byte(i)      // z coordinate low byte
		rec[21] = byte(i >> 8) // carries
		data = append(data, rec...)
	}
	zeros := func(cfg Config) float64 {
		res := NewTransformer(cfg).Forward(nil, data)
		n := 0
		for _, b := range res {
			if b == 0 {
				n++
			}
		}
		return float64(n) / float64(len(res))
	}
	meta := zeros(Config{Mode: Fixed, Strides: []int{27, 29, 54, 58}})
	adaptive := zeros(Config{})
	if meta < 0.9 {
		t.Errorf("metadata stride predicted only %.1f%% of bytes", meta*100)
	}
	if adaptive < 0.9 {
		t.Errorf("adaptive predicted only %.1f%% of bytes", adaptive*100)
	}
}

func TestMultiVariableStreamRoundTrip(t *testing.T) {
	// The Section III difficulty: multiple variables with different shapes
	// produce different stride lengths in one stream. The transform must
	// stay lossless and still squeeze out most of the redundancy.
	var data []byte
	for _, rec := range []struct {
		name string
		n    int
	}{{"a", 1000}, {"muchlongername", 800}, {"mid", 1200}} {
		unit := make([]byte, 1+len(rec.name)+8+4)
		unit[0] = byte(len(rec.name))
		copy(unit[1:], rec.name)
		for i := 0; i < rec.n; i++ {
			unit[len(unit)-5] = byte(i >> 8)
			unit[len(unit)-4] = byte(i)
			data = append(data, unit...)
		}
	}
	zeros := func(cfg Config) float64 {
		res := roundTrip(t, cfg, data)
		n := 0
		for _, b := range res {
			if b == 0 {
				n++
			}
		}
		return float64(n) / float64(len(res))
	}
	// With the paper's 2s settling window, a re-admitted stride pays a
	// full period of delta-relearning misses and is re-evicted before its
	// hit rate recovers, so adaptation across variable transitions is
	// partial. A longer window (the paper calls 2s "tunable") fixes it —
	// quantified fully in the A7 ablation.
	if frac := zeros(Config{MaxStride: 60}); frac < 0.55 {
		t.Errorf("default settling: residual only %.1f%% zero", frac*100)
	}
	if frac := zeros(Config{MaxStride: 60, MinActiveFactor: 8}); frac < 0.85 {
		t.Errorf("8s settling: residual only %.1f%% zero", frac*100)
	}
}
