// Package predictor implements the semantically-informed byte-level
// transform of Section III: a streaming predictive coder that detects
// linear byte sequences in serialized key streams and replaces each byte
// with the delta from its prediction, making the result far more
// compressible by a generic codec (gzip/bzip2).
//
// A sequence is defined by a stride s and phase φ (= byte offset mod s) and
// carries a difference δ, meaning x[φ+ks] = x[φ+(k-1)s] + δ for most k
// (equation 1). For each incoming byte the coder consults the sequences of
// the strides in the *active set*, picks the one with the longest run
// length, and — if that run exceeds a threshold — predicts
//
//	x̂[i] = x[i-s] + δ        (equation 2)
//
// emitting y[i] = x[i] - x̂[i] (equation 3, byte arithmetic mod 256). The
// inverse transform replays the identical decision procedure against the
// reconstructed stream (equation 4), so no side information is needed.
//
// Active-set management (Section III-A): all strides up to MaxStride start
// active; a stride whose hit rate falls below HitRateNum/HitRateDen after
// being active for at least 2s bytes is evicted; every SelectionCycle bytes
// one evicted stride is re-admitted, preferring those out of the set the
// longest, with a stride of s eligible only once every s cycles.
package predictor

import "fmt"

// Mode selects the stride-detection strategy.
type Mode int

const (
	// Adaptive is the paper's algorithm: dynamic active set.
	Adaptive Mode = iota
	// Exhaustive keeps every stride active forever (the "brute force"
	// baseline that is 4x slower at MaxStride 100 and 17x at 1000).
	Exhaustive
	// Fixed restricts detection to an explicit stride list (the
	// user-specified alternative discussed in Section III).
	Fixed
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Adaptive:
		return "adaptive"
	case Exhaustive:
		return "exhaustive"
	case Fixed:
		return "fixed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes a Transformer. The zero value is completed by
// Default values matching the paper's implementation.
type Config struct {
	// Mode selects adaptive, exhaustive, or fixed-stride detection.
	Mode Mode
	// MaxStride bounds the stride search (full set = 1..MaxStride).
	// Default 100.
	MaxStride int
	// Strides lists the strides for Fixed mode.
	Strides []int
	// RunThreshold is the run length a sequence must exceed before its
	// prediction is used. Default 2.
	RunThreshold int
	// HitRateNum/HitRateDen is the eviction threshold. Default 5/6.
	HitRateNum, HitRateDen int
	// MinActiveFactor: a stride s must be active for at least
	// MinActiveFactor*s bytes before it can be evicted, letting its hit
	// rate settle. Default 2 (the paper's "2s requirement", which it notes
	// is tunable). Caveat: a re-admitted stride spends its first s bytes
	// relearning deltas, so at 2s its hit rate tops out near 1/2 — below
	// the 5/6 eviction threshold — and it is evicted again. Streams whose
	// structure changes mid-flight (multiple variables with different
	// shapes, Section III) re-adapt much better with a factor of 8+; see
	// the A7 ablation.
	MinActiveFactor int
	// SelectionCycle is the number of bytes between re-admissions of
	// evicted strides. Default 256.
	SelectionCycle int
}

func (c Config) withDefaults() Config {
	if c.MaxStride == 0 {
		c.MaxStride = 100
	}
	if c.RunThreshold == 0 {
		c.RunThreshold = 2
	}
	if c.HitRateNum == 0 || c.HitRateDen == 0 {
		c.HitRateNum, c.HitRateDen = 5, 6
	}
	if c.MinActiveFactor == 0 {
		c.MinActiveFactor = 2
	}
	if c.SelectionCycle == 0 {
		c.SelectionCycle = 256
	}
	if c.Mode == Fixed {
		maxS := 0
		for _, s := range c.Strides {
			if s <= 0 {
				panic(fmt.Sprintf("predictor: non-positive stride %d", s))
			}
			if s > maxS {
				maxS = s
			}
		}
		if maxS == 0 {
			panic("predictor: Fixed mode requires strides")
		}
		c.MaxStride = maxS
	}
	if c.MaxStride < 1 {
		panic("predictor: MaxStride must be >= 1")
	}
	return c
}

// seqEntry is the per-(stride, phase) state: the last difference seen and
// how many consecutive bytes it has held.
type seqEntry struct {
	delta byte
	run   int32
}

// strideState tracks one stride of the full set.
type strideState struct {
	stride int
	seqs   []seqEntry // one per phase
	active bool
	// phase is pos mod stride and back is (pos - stride) mod MaxStride,
	// maintained incrementally while the stride is active (recomputed on
	// admission) so the per-byte hot loops avoid division.
	phase int
	back  int
	// activatedAt is the byte index at which the stride (re)entered the
	// active set; hit accounting restarts there.
	activatedAt int64
	hits, total int64
	// evictedAtCycle is the selection cycle at which the stride left the
	// active set (for longest-out priority).
	evictedAtCycle int64
	// lastSelectedCycle enforces the once-every-s-cycles eligibility rule.
	lastSelectedCycle int64
}

// Transformer applies the forward or inverse transform. A single instance
// must be used for one direction on one stream; it is not safe for
// concurrent use.
type Transformer struct {
	cfg     Config
	strides []*strideState
	actives []*strideState // current active set, dense
	window  []byte         // ring buffer of the last MaxStride original bytes
	wpos    int            // ring index of the most recently written byte
	pos     int64          // bytes processed
	cycle   int64          // selection cycles elapsed
}

// NewTransformer returns a Transformer for cfg (zero-value fields take the
// paper's defaults).
func NewTransformer(cfg Config) *Transformer {
	cfg = cfg.withDefaults()
	t := &Transformer{cfg: cfg, window: make([]byte, cfg.MaxStride), wpos: cfg.MaxStride - 1}
	inFixed := func(s int) bool {
		for _, f := range cfg.Strides {
			if f == s {
				return true
			}
		}
		return false
	}
	for s := 1; s <= cfg.MaxStride; s++ {
		if cfg.Mode == Fixed && !inFixed(s) {
			continue
		}
		st := &strideState{
			stride:            s,
			seqs:              make([]seqEntry, s),
			active:            true,
			back:              (cfg.MaxStride - s) % cfg.MaxStride,
			lastSelectedCycle: -int64(s), // immediately eligible
		}
		t.strides = append(t.strides, st)
		t.actives = append(t.actives, st)
	}
	return t
}

// Reset returns the transformer to its initial state for a new stream.
func (t *Transformer) Reset() {
	t.pos = 0
	t.cycle = 0
	t.wpos = t.cfg.MaxStride - 1
	t.actives = t.actives[:0]
	for _, st := range t.strides {
		for i := range st.seqs {
			st.seqs[i] = seqEntry{}
		}
		st.active = true
		st.activatedAt = 0
		st.hits, st.total = 0, 0
		st.phase = 0
		st.back = (t.cfg.MaxStride - st.stride) % t.cfg.MaxStride
		st.evictedAtCycle = 0
		st.lastSelectedCycle = -int64(st.stride)
		t.actives = append(t.actives, st)
	}
	for i := range t.window {
		t.window[i] = 0
	}
}

// predict returns the predicted value for the next byte and whether a
// prediction is made. It must be called before step records the byte.
func (t *Transformer) predict() (byte, bool) {
	var best *strideState
	var bestRun int32 = -1
	for _, st := range t.actives {
		if t.pos < int64(st.stride) {
			continue
		}
		e := &st.seqs[st.phase]
		if e.run > bestRun {
			bestRun = e.run
			best = st
		}
	}
	if best == nil || bestRun <= int32(t.cfg.RunThreshold) {
		return 0, false
	}
	return t.window[best.back] + best.seqs[best.phase].delta, true
}

// step records original byte x at the current position, updating sequence
// tables, hit rates, the active set, and the history window.
func (t *Transformer) step(x byte) {
	max := t.cfg.MaxStride
	for _, st := range t.actives {
		if t.pos >= int64(st.stride) {
			d := x - t.window[st.back]
			e := &st.seqs[st.phase]
			if d == e.delta {
				e.run++
				st.hits++
			} else {
				e.delta = d
				e.run = 0
			}
			st.total++
		}
		if st.phase++; st.phase == st.stride {
			st.phase = 0
		}
		if st.back++; st.back == max {
			st.back = 0
		}
	}
	if t.wpos++; t.wpos == max {
		t.wpos = 0
	}
	t.window[t.wpos] = x
	t.pos++

	if t.cfg.Mode == Adaptive {
		t.evict()
		if t.pos%int64(t.cfg.SelectionCycle) == 0 {
			t.cycle++
			t.admit()
		}
	}
}

// evict removes active strides whose hit rate has fallen below the
// threshold after the 2s settling period.
func (t *Transformer) evict() {
	kept := t.actives[:0]
	for _, st := range t.actives {
		if t.pos-st.activatedAt >= int64(t.cfg.MinActiveFactor*st.stride) &&
			st.total > 0 &&
			st.hits*int64(t.cfg.HitRateDen) < st.total*int64(t.cfg.HitRateNum) {
			st.active = false
			st.evictedAtCycle = t.cycle
			continue
		}
		kept = append(kept, st)
	}
	t.actives = kept
}

// admit re-adds the evicted stride that has been out the longest among
// those eligible this cycle.
func (t *Transformer) admit() {
	var pick *strideState
	for _, st := range t.strides {
		if st.active {
			continue
		}
		if t.cycle-st.lastSelectedCycle < int64(st.stride) {
			continue
		}
		if pick == nil || st.evictedAtCycle < pick.evictedAtCycle {
			pick = st
		}
	}
	if pick == nil {
		return
	}
	pick.active = true
	pick.activatedAt = t.pos
	pick.hits, pick.total = 0, 0
	// Recompute the incremental indices the stride missed while evicted.
	max := int64(t.cfg.MaxStride)
	pick.phase = int(t.pos % int64(pick.stride))
	pick.back = int(((t.pos-int64(pick.stride))%max + max) % max)
	pick.lastSelectedCycle = t.cycle
	t.actives = append(t.actives, pick)
}

// Forward transforms original bytes src, appending the residual stream to
// dst and returning it. Chunks may be fed incrementally; state carries
// across calls.
func (t *Transformer) Forward(dst, src []byte) []byte {
	for _, x := range src {
		if p, ok := t.predict(); ok {
			dst = append(dst, x-p)
		} else {
			dst = append(dst, x)
		}
		t.step(x)
	}
	return dst
}

// Inverse reconstructs original bytes from residual bytes src, appending to
// dst. It replays exactly the decision procedure of Forward against the
// reconstructed history, so a fresh Transformer with the same Config
// inverts any Forward stream.
func (t *Transformer) Inverse(dst, src []byte) []byte {
	for _, y := range src {
		var x byte
		if p, ok := t.predict(); ok {
			x = y + p
		} else {
			x = y
		}
		dst = append(dst, x)
		t.step(x)
	}
	return dst
}

// ActiveStrides returns the strides currently in the active set, for
// diagnostics and tests.
func (t *Transformer) ActiveStrides() []int {
	out := make([]int, 0, len(t.actives))
	for _, st := range t.actives {
		out = append(out, st.stride)
	}
	return out
}

// BestSequence reports the stride, phase, delta and run length of the
// longest-running sequence at the current position — the (δ=0x0a, s=47,
// φ=34) detection of Fig. 2 is observable through this.
func (t *Transformer) BestSequence() (stride, phase int, delta byte, run int32) {
	var bestRun int32 = -1
	for _, st := range t.actives {
		if t.pos < int64(st.stride) {
			continue
		}
		e := st.seqs[st.phase]
		if e.run > bestRun {
			bestRun = e.run
			stride, phase, delta, run = st.stride, st.phase, e.delta, e.run
		}
	}
	return stride, phase, delta, run
}
