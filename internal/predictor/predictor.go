// Package predictor implements the semantically-informed byte-level
// transform of Section III: a streaming predictive coder that detects
// linear byte sequences in serialized key streams and replaces each byte
// with the delta from its prediction, making the result far more
// compressible by a generic codec (gzip/bzip2).
//
// A sequence is defined by a stride s and phase φ (= byte offset mod s) and
// carries a difference δ, meaning x[φ+ks] = x[φ+(k-1)s] + δ for most k
// (equation 1). For each incoming byte the coder consults the sequences of
// the strides in the *active set*, picks the one with the longest run
// length, and — if that run exceeds a threshold — predicts
//
//	x̂[i] = x[i-s] + δ        (equation 2)
//
// emitting y[i] = x[i] - x̂[i] (equation 3, byte arithmetic mod 256). The
// inverse transform replays the identical decision procedure against the
// reconstructed stream (equation 4), so no side information is needed.
//
// Active-set management (Section III-A): all strides up to MaxStride start
// active; a stride whose hit rate falls below HitRateNum/HitRateDen after
// being active for at least 2s bytes is evicted; every SelectionCycle bytes
// one evicted stride is re-admitted, preferring those out of the set the
// longest, with a stride of s eligible only once every s cycles.
//
// # Implementation
//
// Transformer is the production kernel. It is byte-for-byte equivalent to
// the scalar algorithm retained in reference.go (the oracle the
// differential tests and FuzzEquivalence check against) but restructured
// for throughput:
//
//   - Per-stride state lives in flat, index-addressed slices (one shared
//     delta array and one shared run array, offset per stride) instead of
//     per-stride heap objects, killing the pointer chase in the hot loops.
//
//   - Eviction is amortized: from the current counters of each active
//     stride an exact lower bound on the first position at which the
//     eviction predicate could possibly hold (assuming worst-case misses)
//     is maintained, and the per-byte eviction sweep is skipped until that
//     horizon. In steady state the horizon sits many thousands of bytes
//     out, so the sweep effectively runs at selection-cycle granularity
//     instead of per byte — with identical results, since the predicate
//     provably cannot fire in between.
//
//   - Forward processes warm streams in batches by loop interchange:
//     instead of visiting every active stride for each byte, it visits
//     every byte for each active stride, keeping one stride's sequence
//     table hot in cache across a whole batch. A per-byte best-run/best-
//     prediction table reproduces the reference's argmax (same iteration
//     order, same strict-greater tie-break), and per-stride eviction is
//     simulated at the exact byte it would fire. Batches stop at selection-
//     cycle boundaries so admissions happen at the same positions as the
//     reference. Inverse cannot be loop-interchanged (each reconstructed
//     byte feeds the history the next byte needs) and stays scalar.
package predictor

import "fmt"

// Mode selects the stride-detection strategy.
type Mode int

const (
	// Adaptive is the paper's algorithm: dynamic active set.
	Adaptive Mode = iota
	// Exhaustive keeps every stride active forever (the "brute force"
	// baseline that is 4x slower at MaxStride 100 and 17x at 1000).
	Exhaustive
	// Fixed restricts detection to an explicit stride list (the
	// user-specified alternative discussed in Section III).
	Fixed
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Adaptive:
		return "adaptive"
	case Exhaustive:
		return "exhaustive"
	case Fixed:
		return "fixed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes a Transformer. The zero value is completed by
// Default values matching the paper's implementation.
type Config struct {
	// Mode selects adaptive, exhaustive, or fixed-stride detection.
	Mode Mode
	// MaxStride bounds the stride search (full set = 1..MaxStride).
	// Default 100.
	MaxStride int
	// Strides lists the strides for Fixed mode.
	Strides []int
	// RunThreshold is the run length a sequence must exceed before its
	// prediction is used. Default 2.
	RunThreshold int
	// HitRateNum/HitRateDen is the eviction threshold. Default 5/6.
	HitRateNum, HitRateDen int
	// MinActiveFactor: a stride s must be active for at least
	// MinActiveFactor*s bytes before it can be evicted, letting its hit
	// rate settle. Default 2 (the paper's "2s requirement", which it notes
	// is tunable). Caveat: a re-admitted stride spends its first s bytes
	// relearning deltas, so at 2s its hit rate tops out near 1/2 — below
	// the 5/6 eviction threshold — and it is evicted again. Streams whose
	// structure changes mid-flight (multiple variables with different
	// shapes, Section III) re-adapt much better with a factor of 8+; see
	// the A7 ablation.
	MinActiveFactor int
	// SelectionCycle is the number of bytes between re-admissions of
	// evicted strides. Default 256.
	SelectionCycle int
}

func (c Config) withDefaults() Config {
	if c.MaxStride == 0 {
		c.MaxStride = 100
	}
	if c.RunThreshold == 0 {
		c.RunThreshold = 2
	}
	if c.HitRateNum == 0 || c.HitRateDen == 0 {
		c.HitRateNum, c.HitRateDen = 5, 6
	}
	if c.MinActiveFactor == 0 {
		c.MinActiveFactor = 2
	}
	if c.SelectionCycle == 0 {
		c.SelectionCycle = 256
	}
	if c.Mode == Fixed {
		maxS := 0
		for _, s := range c.Strides {
			if s <= 0 {
				panic(fmt.Sprintf("predictor: non-positive stride %d", s))
			}
			if s > maxS {
				maxS = s
			}
		}
		if maxS == 0 {
			panic("predictor: Fixed mode requires strides")
		}
		c.MaxStride = maxS
	}
	if c.MaxStride < 1 {
		panic("predictor: MaxStride must be >= 1")
	}
	return c
}

// batchCap bounds one forward batch, and with it the per-byte scratch
// tables. Adaptive batches are already capped by the selection cycle; this
// bound only matters for Fixed/Exhaustive streams.
const batchCap = 1 << 12

// strideState is one stride of the full set. Sequence tables live outside
// the struct, in the Transformer's flat delta/run arrays at [seqOff,
// seqOff+stride).
type strideState struct {
	stride int32
	// phase is pos mod stride and back is (pos - stride) mod MaxStride,
	// maintained incrementally while the stride is active (recomputed on
	// admission) so the hot loops avoid division.
	phase int32
	back  int32
	// seqOff is this stride's base index into the shared deltas/runs.
	seqOff int32
	active bool
	// activatedAt is the byte index at which the stride (re)entered the
	// active set; hit accounting restarts there.
	activatedAt int64
	hits, total int64
	// evictedAtCycle is the selection cycle at which the stride left the
	// active set (for longest-out priority).
	evictedAtCycle int64
	// lastSelectedCycle enforces the once-every-s-cycles eligibility rule.
	lastSelectedCycle int64
}

// Transformer applies the forward or inverse transform. A single instance
// must be used for one direction on one stream; it is not safe for
// concurrent use.
type Transformer struct {
	cfg     Config
	strides []strideState
	// deltas/runs hold every stride's per-phase sequence state, flattened:
	// stride i's phase p lives at strides[i].seqOff+p.
	deltas  []byte
	runs    []int32
	actives []int32 // indices into strides; current active set, dense
	window  []byte  // ring buffer of the last MaxStride original bytes
	wpos    int     // ring index of the most recently written byte
	pos     int64   // bytes processed
	cycle   int64   // selection cycles elapsed
	// evictCheckAt is an exact lower bound on the next position at which
	// any active stride could satisfy the eviction predicate; the scalar
	// path skips the eviction sweep until pos reaches it.
	evictCheckAt int64
	// Telemetry counters (see Stats). All are maintained on cold paths —
	// eviction, admission, and the batch emit loop — never per byte per
	// stride.
	evictions  int64
	admissions int64
	predicted  int64
	// bestRun/bestPred are the forward batch's per-byte argmax scratch.
	bestRun  []int32
	bestPred []byte
}

// NewTransformer returns a Transformer for cfg (zero-value fields take the
// paper's defaults).
func NewTransformer(cfg Config) *Transformer {
	cfg = cfg.withDefaults()
	t := &Transformer{cfg: cfg, window: make([]byte, cfg.MaxStride), wpos: cfg.MaxStride - 1}
	inFixed := func(s int) bool {
		for _, f := range cfg.Strides {
			if f == s {
				return true
			}
		}
		return false
	}
	off := int32(0)
	for s := 1; s <= cfg.MaxStride; s++ {
		if cfg.Mode == Fixed && !inFixed(s) {
			continue
		}
		t.strides = append(t.strides, strideState{
			stride:            int32(s),
			seqOff:            off,
			active:            true,
			back:              int32((cfg.MaxStride - s) % cfg.MaxStride),
			lastSelectedCycle: -int64(s), // immediately eligible
		})
		off += int32(s)
		t.actives = append(t.actives, int32(len(t.strides)-1))
	}
	t.deltas = make([]byte, off)
	t.runs = make([]int32, off)
	t.updateEvictHorizon()
	return t
}

// Reset returns the transformer to its initial state for a new stream.
func (t *Transformer) Reset() {
	t.pos = 0
	t.cycle = 0
	t.wpos = t.cfg.MaxStride - 1
	t.actives = t.actives[:0]
	for i := range t.strides {
		st := &t.strides[i]
		st.active = true
		st.activatedAt = 0
		st.hits, st.total = 0, 0
		st.phase = 0
		st.back = int32((t.cfg.MaxStride - int(st.stride)) % t.cfg.MaxStride)
		st.evictedAtCycle = 0
		st.lastSelectedCycle = -int64(st.stride)
		t.actives = append(t.actives, int32(i))
	}
	for i := range t.deltas {
		t.deltas[i] = 0
	}
	for i := range t.runs {
		t.runs[i] = 0
	}
	for i := range t.window {
		t.window[i] = 0
	}
	t.evictions, t.admissions, t.predicted = 0, 0, 0
	t.updateEvictHorizon()
}

// predict returns the predicted value for the next byte and whether a
// prediction is made. It must be called before step records the byte.
func (t *Transformer) predict() (byte, bool) {
	bestIdx := int32(-1)
	var bestRun int32 = -1
	for _, si := range t.actives {
		st := &t.strides[si]
		if t.pos < int64(st.stride) {
			continue
		}
		if r := t.runs[st.seqOff+st.phase]; r > bestRun {
			bestRun = r
			bestIdx = si
		}
	}
	if bestIdx < 0 || bestRun <= int32(t.cfg.RunThreshold) {
		return 0, false
	}
	st := &t.strides[bestIdx]
	return t.window[st.back] + t.deltas[st.seqOff+st.phase], true
}

// step records original byte x at the current position, updating sequence
// tables, hit rates, the active set, and the history window.
func (t *Transformer) step(x byte) {
	max := int32(t.cfg.MaxStride)
	for _, si := range t.actives {
		st := &t.strides[si]
		if t.pos >= int64(st.stride) {
			d := x - t.window[st.back]
			e := st.seqOff + st.phase
			if d == t.deltas[e] {
				t.runs[e]++
				st.hits++
			} else {
				t.deltas[e] = d
				t.runs[e] = 0
			}
			st.total++
		}
		if st.phase++; st.phase == st.stride {
			st.phase = 0
		}
		if st.back++; st.back == max {
			st.back = 0
		}
	}
	if t.wpos++; t.wpos == t.cfg.MaxStride {
		t.wpos = 0
	}
	t.window[t.wpos] = x
	t.pos++

	if t.cfg.Mode == Adaptive {
		if t.pos >= t.evictCheckAt {
			t.evictSweep()
		}
		if t.pos%int64(t.cfg.SelectionCycle) == 0 {
			t.cycle++
			t.admit()
			t.updateEvictHorizon()
		}
	}
}

// evictSweep removes active strides whose hit rate has fallen below the
// threshold after the settling period, then re-derives the horizon.
func (t *Transformer) evictSweep() {
	num, den := int64(t.cfg.HitRateNum), int64(t.cfg.HitRateDen)
	factor := int64(t.cfg.MinActiveFactor)
	kept := t.actives[:0]
	for _, si := range t.actives {
		st := &t.strides[si]
		if t.pos-st.activatedAt >= factor*int64(st.stride) &&
			st.total > 0 &&
			st.hits*den < st.total*num {
			st.active = false
			st.evictedAtCycle = t.cycle
			t.evictions++
			continue
		}
		kept = append(kept, si)
	}
	t.actives = kept
	t.updateEvictHorizon()
}

// evictBound returns the smallest k >= 1 such that st could possibly
// satisfy the eviction predicate after processing k more bytes from the
// current position, assuming the worst case (every future byte a miss).
// Until pos+k the predicate provably cannot hold, so eviction checks may be
// skipped — this is what amortizes the reference's per-byte evict() without
// changing a single decision.
func (t *Transformer) evictBound(st *strideState) int64 {
	num, den := int64(t.cfg.HitRateNum), int64(t.cfg.HitRateDen)
	s := int64(st.stride)
	k := int64(t.cfg.MinActiveFactor)*s - (t.pos - st.activatedAt)
	// Counter bound: eviction needs hits*den < total'*num, i.e. total' must
	// reach floor(hits*den/num)+1; each future byte adds one to total once
	// the stride is warm (pos >= stride).
	if needT := st.hits*den/num + 1 - st.total; needT > 0 {
		kc := needT
		if t.pos < s {
			kc += s - t.pos // the first s-pos bytes don't update counters
		}
		if kc > k {
			k = kc
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

// updateEvictHorizon recomputes evictCheckAt from the active set's current
// counters.
func (t *Transformer) updateEvictHorizon() {
	if t.cfg.Mode != Adaptive {
		t.evictCheckAt = int64(^uint64(0) >> 1) // never
		return
	}
	next := int64(^uint64(0) >> 1)
	for _, si := range t.actives {
		if h := t.pos + t.evictBound(&t.strides[si]); h < next {
			next = h
		}
	}
	t.evictCheckAt = next
}

// admit re-adds the evicted stride that has been out the longest among
// those eligible this cycle.
func (t *Transformer) admit() {
	pick := -1
	for i := range t.strides {
		st := &t.strides[i]
		if st.active {
			continue
		}
		if t.cycle-st.lastSelectedCycle < int64(st.stride) {
			continue
		}
		if pick < 0 || st.evictedAtCycle < t.strides[pick].evictedAtCycle {
			pick = i
		}
	}
	if pick < 0 {
		return
	}
	st := &t.strides[pick]
	st.active = true
	st.activatedAt = t.pos
	st.hits, st.total = 0, 0
	t.admissions++
	// Recompute the incremental indices the stride missed while evicted.
	max := int64(t.cfg.MaxStride)
	st.phase = int32(t.pos % int64(st.stride))
	st.back = int32(((t.pos-int64(st.stride))%max + max) % max)
	st.lastSelectedCycle = t.cycle
	t.actives = append(t.actives, int32(pick))
}

// Forward transforms original bytes src, appending the residual stream to
// dst and returning it. Chunks may be fed incrementally; state carries
// across calls.
//
// Once the stream is warm (pos >= MaxStride) bytes travel the batched
// stride-major fast path; the scalar path only covers the warmup prefix.
func (t *Transformer) Forward(dst, src []byte) []byte {
	i := 0
	for i < len(src) {
		if n := t.forwardBatch(&dst, src, i); n > 0 {
			i += n
			continue
		}
		x := src[i]
		if p, ok := t.predict(); ok {
			dst = append(dst, x-p)
			t.predicted++
		} else {
			dst = append(dst, x)
		}
		t.step(x)
		i++
	}
	return dst
}

// forwardBatch processes up to batchCap bytes of src[i:] stride-major and
// returns how many bytes it consumed (0 when the stream is still warming
// up). The batch never crosses a selection-cycle boundary, so admissions
// happen at exactly the reference's positions; per-stride eviction is
// simulated at the exact byte the reference would evict.
func (t *Transformer) forwardBatch(dst *[]byte, src []byte, i int) int {
	maxS := t.cfg.MaxStride
	if t.pos < int64(maxS) {
		return 0
	}
	L := len(src) - i
	adaptive := t.cfg.Mode == Adaptive
	if adaptive {
		if tb := t.cfg.SelectionCycle - int(t.pos%int64(t.cfg.SelectionCycle)); tb < L {
			L = tb
		}
	}
	if L > batchCap {
		L = batchCap
	}
	if cap(t.bestRun) < L {
		t.bestRun = make([]int32, L)
		t.bestPred = make([]byte, L)
	}
	bestRun := t.bestRun[:L]
	bestPred := t.bestPred[:L]
	for j := range bestRun {
		bestRun[j] = -1
	}

	evicted := false
	b := src[i : i+L]
	runs, deltas, window := t.runs, t.deltas, t.window
	for _, si := range t.actives {
		st := &t.strides[si]
		// evictFrom is the first batch byte index at which the eviction
		// predicate could fire (exact lower bound); when it lies inside the
		// batch the stride takes the byte-major path that simulates
		// eviction at the exact byte, otherwise no check is needed at all.
		evictFrom := L
		if adaptive {
			if k := t.evictBound(st); k <= int64(L) {
				evictFrom = int(k) - 1
			}
		}
		if evictFrom < L {
			if t.forwardStrideEvictable(st, b, bestRun, bestPred, evictFrom) {
				evicted = true
			}
			continue
		}
		s := int(st.stride)
		off := int(st.seqOff)
		ph := int(st.phase)
		back := int(st.back)
		hits := 0
		// Phase-major: each (stride, phase) sequence entry is visited at
		// batch offsets r, r+s, r+2s, … — walking one phase at a time
		// keeps its run and delta in registers. The first visit still
		// predates the batch's own bytes, so it reads the history ring;
		// later visits read src directly.
		for r := 0; r < s && r < L; r++ {
			q := ph + r
			if q >= s {
				q -= s
			}
			e := off + q
			run := runs[e]
			delta := deltas[e]
			wb := back + r
			if wb >= maxS {
				wb -= maxS
			}
			prev := window[wb]
			cur := b[r]
			if run > bestRun[r] {
				bestRun[r] = run
				bestPred[r] = prev + delta
			}
			if cur-prev == delta {
				run++
				hits++
			} else {
				delta = cur - prev
				run = 0
			}
			for j := r + s; j < L; j += s {
				prev = b[j-s]
				cur = b[j]
				if run > bestRun[j] {
					bestRun[j] = run
					bestPred[j] = prev + delta
				}
				if cur-prev == delta {
					run++
					hits++
				} else {
					delta = cur - prev
					run = 0
				}
			}
			runs[e] = run
			deltas[e] = delta
		}
		st.hits += int64(hits)
		st.total += int64(L)
		st.phase = int32((ph + L) % s)
		st.back = int32((back + L) % maxS)
	}
	if evicted {
		kept := t.actives[:0]
		for _, si := range t.actives {
			if t.strides[si].active {
				kept = append(kept, si)
			}
		}
		t.actives = kept
	}

	// Emit the residuals from the per-byte argmax. bestRun == -1 marks "no
	// active stride" and must never predict, so the threshold is clamped to
	// at least -1 (matching the reference's best == nil guard even for
	// pathological negative RunThresholds).
	thr := int32(t.cfg.RunThreshold)
	if thr < -1 {
		thr = -1
	}
	n := len(*dst)
	out := append(*dst, src[i:i+L]...)
	o := out[n : n+L]
	predicted := int64(0)
	for j := 0; j < L; j++ {
		if bestRun[j] > thr {
			o[j] -= bestPred[j]
			predicted++
		}
	}
	t.predicted += predicted
	*dst = out

	// Advance the history window by the batch's last min(L, MaxStride)
	// original bytes: the byte at batch offset j belongs at ring slot
	// (wpos+1+j) mod MaxStride.
	start := L - min(L, maxS)
	w := (t.wpos + start) % maxS
	for j := start; j < L; j++ {
		if w++; w == maxS {
			w = 0
		}
		t.window[w] = src[i+j]
	}
	t.wpos = w
	t.pos += int64(L)

	if adaptive {
		if t.pos%int64(t.cfg.SelectionCycle) == 0 {
			t.cycle++
			t.admit()
		}
		t.updateEvictHorizon()
	}
	return L
}

// forwardStrideEvictable is the byte-major fallback for a stride whose
// eviction horizon lies inside the current batch: it replays the batch one
// byte at a time so the eviction predicate fires at exactly the byte the
// reference would evict at. From evictFrom on, the settling clause already
// holds (evictBound guarantees it), so only the counter clause is tested.
// Returns whether the stride was evicted.
func (t *Transformer) forwardStrideEvictable(st *strideState, b []byte, bestRun []int32, bestPred []byte, evictFrom int) bool {
	maxS := t.cfg.MaxStride
	num, den := int64(t.cfg.HitRateNum), int64(t.cfg.HitRateDen)
	s := int(st.stride)
	off := int(st.seqOff)
	ph := int(st.phase)
	back := int(st.back)
	hits, total := st.hits, st.total
	evicted := false
	for j := 0; j < len(b); j++ {
		var prev byte
		if j >= s {
			prev = b[j-s]
		} else {
			prev = t.window[back]
		}
		e := off + ph
		if r := t.runs[e]; r > bestRun[j] {
			bestRun[j] = r
			bestPred[j] = prev + t.deltas[e]
		}
		if d := b[j] - prev; d == t.deltas[e] {
			t.runs[e]++
			hits++
		} else {
			t.deltas[e] = d
			t.runs[e] = 0
		}
		total++
		if ph++; ph == s {
			ph = 0
		}
		if back++; back == maxS {
			back = 0
		}
		if j >= evictFrom && hits*den < total*num {
			st.active = false
			st.evictedAtCycle = t.cycle
			t.evictions++
			evicted = true
			break
		}
	}
	st.phase = int32(ph)
	st.back = int32(back)
	st.hits, st.total = hits, total
	return evicted
}

// Inverse reconstructs original bytes from residual bytes src, appending to
// dst. It replays exactly the decision procedure of Forward against the
// reconstructed history, so a fresh Transformer with the same Config
// inverts any Forward stream.
//
// Inverse stays on the scalar path: each reconstructed byte becomes the
// history the next byte's prediction needs, so the stride-major loop
// interchange of the forward batch does not apply.
func (t *Transformer) Inverse(dst, src []byte) []byte {
	for _, y := range src {
		var x byte
		if p, ok := t.predict(); ok {
			x = y + p
			t.predicted++
		} else {
			x = y
		}
		dst = append(dst, x)
		t.step(x)
	}
	return dst
}

// Stats is the transformer's adaptive-set telemetry for one stream (i.e.
// since construction or the last Reset). Eviction/admission churn and the
// prediction rate are the observable face of Section III-A's active-set
// management; the metrics registry surfaces them per job.
type Stats struct {
	// Bytes is the stream position: bytes transformed so far.
	Bytes int64
	// ActiveStrides is the current active-set size.
	ActiveStrides int
	// Evictions counts strides removed from the active set; Admissions
	// counts evicted strides re-admitted by the selection cycle.
	Evictions  int64
	Admissions int64
	// PredictedBytes counts bytes that traveled as prediction residuals
	// (the rest passed through untransformed).
	PredictedBytes int64
	// SeqHits / SeqChecks aggregate the active strides' sequence-table hit
	// accounting (each stride's window restarts at its last activation).
	SeqHits   int64
	SeqChecks int64
}

// HitRatio is the active set's aggregate sequence hit rate, 0 when no
// checks have happened yet.
func (s Stats) HitRatio() float64 {
	if s.SeqChecks == 0 {
		return 0
	}
	return float64(s.SeqHits) / float64(s.SeqChecks)
}

// Stats reads the transformer's telemetry. It walks the active set (cold
// path, allocation-free) and may be called at any point in a stream.
func (t *Transformer) Stats() Stats {
	s := Stats{
		Bytes:          t.pos,
		ActiveStrides:  len(t.actives),
		Evictions:      t.evictions,
		Admissions:     t.admissions,
		PredictedBytes: t.predicted,
	}
	for _, si := range t.actives {
		st := &t.strides[si]
		s.SeqHits += st.hits
		s.SeqChecks += st.total
	}
	return s
}

// ActiveStrides returns the strides currently in the active set, for
// diagnostics and tests.
func (t *Transformer) ActiveStrides() []int {
	out := make([]int, 0, len(t.actives))
	for _, si := range t.actives {
		out = append(out, int(t.strides[si].stride))
	}
	return out
}

// BestSequence reports the stride, phase, delta and run length of the
// longest-running sequence at the current position — the (δ=0x0a, s=47,
// φ=34) detection of Fig. 2 is observable through this.
func (t *Transformer) BestSequence() (stride, phase int, delta byte, run int32) {
	var bestRun int32 = -1
	for _, si := range t.actives {
		st := &t.strides[si]
		if t.pos < int64(st.stride) {
			continue
		}
		e := st.seqOff + st.phase
		if r := t.runs[e]; r > bestRun {
			bestRun = r
			stride, phase, delta, run = int(st.stride), int(st.phase), t.deltas[e], r
		}
	}
	return stride, phase, delta, run
}
