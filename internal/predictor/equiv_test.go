package predictor

import (
	"bytes"
	"math/rand"
	"testing"
)

// equivConfigs are the detector parameterizations the differential suite
// sweeps: the paper's defaults, small and large search bounds, every mode,
// aggressive and lazy selection cycles, and a settling factor that makes
// eviction/re-admission churn.
func equivConfigs() []Config {
	return []Config{
		{},
		{MaxStride: 13},
		{MaxStride: 40, SelectionCycle: 32},
		{MaxStride: 25, SelectionCycle: 7, MinActiveFactor: 8},
		{MaxStride: 30, HitRateNum: 1, HitRateDen: 2},
		{MaxStride: 20, RunThreshold: 1},
		{Mode: Exhaustive, MaxStride: 33},
		{Mode: Fixed, Strides: []int{12}},
		{Mode: Fixed, Strides: []int{5, 12, 24}},
		{Mode: Fixed, Strides: []int{1}},
	}
}

// equivStreams are the input shapes: the paper's grid walk, random noise
// (max eviction churn), constant and short-period streams (max fast-path
// residency), a structure change mid-stream, and tiny/empty edges.
func equivStreams() map[string][]byte {
	rng := rand.New(rand.NewSource(41))
	random := make([]byte, 40<<10)
	rng.Read(random)
	ramp := make([]byte, 8192)
	for i := range ramp {
		ramp[i] = byte(i * 5)
	}
	multi := append([]byte{}, gridWalkStream(10)...)
	multi = append(multi, random[:4096]...)
	multi = append(multi, bytes.Repeat([]byte{3, 1, 4, 1, 5, 9}, 2000)...)
	return map[string][]byte{
		"grid":     gridWalkStream(14),
		"random":   random,
		"constant": bytes.Repeat([]byte{0x42}, 30000),
		"period4":  bytes.Repeat([]byte{9, 8, 7, 6}, 8000),
		"ramp":     ramp,
		"multi":    multi,
		"tiny":     {1, 2, 3},
		"empty":    nil,
	}
}

// diffCheck runs Transformer and Reference over the same stream with the
// same chunking and fails on any divergence in output bytes or final
// active-set state.
func diffCheck(t *testing.T, cfg Config, data []byte, chunks []int) {
	t.Helper()
	fast := NewTransformer(cfg)
	ref := NewReference(cfg)
	var fwdFast, fwdRef []byte
	feed := func(fn func(chunk []byte)) {
		off := 0
		ci := 0
		for off < len(data) {
			n := len(data) - off
			if len(chunks) > 0 {
				if c := chunks[ci%len(chunks)]; c < n {
					n = c
				}
				ci++
			}
			fn(data[off : off+n])
			off += n
		}
	}
	feed(func(chunk []byte) {
		fwdFast = fast.Forward(fwdFast, chunk)
		fwdRef = ref.Forward(fwdRef, chunk)
	})
	if !bytes.Equal(fwdFast, fwdRef) {
		for i := range fwdRef {
			if fwdFast[i] != fwdRef[i] {
				t.Fatalf("Forward diverges at byte %d/%d: got %#x want %#x (cfg %+v)",
					i, len(data), fwdFast[i], fwdRef[i], cfg)
			}
		}
		t.Fatalf("Forward length mismatch: %d vs %d", len(fwdFast), len(fwdRef))
	}
	if got, want := fast.ActiveStrides(), ref.ActiveStrides(); !equalInts(got, want) {
		t.Fatalf("active set diverges after Forward: got %v want %v (cfg %+v)", got, want, cfg)
	}

	invFast := NewTransformer(cfg)
	invRef := NewReference(cfg)
	var backFast, backRef []byte
	feedRes := func(fn func(chunk []byte)) {
		off := 0
		ci := 0
		for off < len(fwdRef) {
			n := len(fwdRef) - off
			if len(chunks) > 0 {
				if c := chunks[ci%len(chunks)]; c < n {
					n = c
				}
				ci++
			}
			fn(fwdRef[off : off+n])
			off += n
		}
	}
	feedRes(func(chunk []byte) {
		backFast = invFast.Inverse(backFast, chunk)
		backRef = invRef.Inverse(backRef, chunk)
	})
	if !bytes.Equal(backFast, data) {
		t.Fatalf("fast Inverse failed to reconstruct (cfg %+v)", cfg)
	}
	if !bytes.Equal(backRef, data) {
		t.Fatalf("reference Inverse failed to reconstruct (cfg %+v)", cfg)
	}
	if got, want := invFast.ActiveStrides(), invRef.ActiveStrides(); !equalInts(got, want) {
		t.Fatalf("active set diverges after Inverse: got %v want %v (cfg %+v)", got, want, cfg)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEquivalenceTable sweeps configs × streams × chunkings.
func TestEquivalenceTable(t *testing.T) {
	chunkings := [][]int{
		nil,            // whole stream at once
		{1},            // byte at a time
		{7, 256, 3, 1}, // ragged, straddling cycle boundaries
		{4096},
	}
	for name, data := range equivStreams() {
		for ci, chunks := range chunkings {
			for _, cfg := range equivConfigs() {
				diffCheck(t, cfg, data, chunks)
			}
			_ = ci
		}
		_ = name
	}
}

// TestEquivalenceResetReuse checks that a Reset transformer replays exactly
// like a fresh reference — the codec pool reuses transformers this way.
func TestEquivalenceResetReuse(t *testing.T) {
	data := gridWalkStream(12)
	for _, cfg := range equivConfigs() {
		fast := NewTransformer(cfg)
		// Dirty the state with an unrelated stream, then Reset.
		fast.Forward(nil, bytes.Repeat([]byte{1, 2, 250}, 4000))
		fast.Reset()
		got := fast.Forward(nil, data)
		want := NewReference(cfg).Forward(nil, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("post-Reset Forward diverges from fresh reference (cfg %+v)", cfg)
		}
		fast.Reset()
		back := fast.Inverse(nil, want)
		if !bytes.Equal(back, data) {
			t.Fatalf("post-Reset Inverse failed (cfg %+v)", cfg)
		}
	}
}

// TestEquivalenceLongAdaptive runs a long adaptive stream whose structure
// shifts, forcing many evictions, re-admissions, and fast-path entry/exit
// transitions.
func TestEquivalenceLongAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var data []byte
	for block := 0; block < 12; block++ {
		switch block % 3 {
		case 0:
			data = append(data, gridWalkStream(8)...)
		case 1:
			chunk := make([]byte, 10000)
			rng.Read(chunk)
			data = append(data, chunk...)
		case 2:
			unit := make([]byte, 17)
			copy(unit, "varname_")
			for i := 0; i < 1200; i++ {
				unit[15] = byte(i >> 8)
				unit[16] = byte(i)
				data = append(data, unit...)
			}
		}
	}
	for _, cfg := range []Config{{}, {MaxStride: 50, SelectionCycle: 64}, {MaxStride: 34, MinActiveFactor: 8}} {
		diffCheck(t, cfg, data, []int{5000, 1, 997})
	}
}

// FuzzEquivalence drives arbitrary streams, parameters, and chunk sizes
// through both implementations: outputs must match byte-for-byte and the
// pair must stay lossless.
func FuzzEquivalence(f *testing.F) {
	f.Add([]byte("windspeed1windspeed1windspeed1"), 10, 3, 16, 0, 64)
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3}, 4, 1, 8, 1, 3)
	f.Add([]byte{}, 1, 2, 256, 2, 1)
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4, 5}, 400), 30, 2, 32, 0, 2000)
	f.Fuzz(func(t *testing.T, data []byte, maxStride, runThreshold, cycle, mode, chunk int) {
		if maxStride < 1 || maxStride > 48 || runThreshold < 1 || runThreshold > 8 {
			t.Skip()
		}
		if cycle < 1 || cycle > 512 || chunk < 1 {
			t.Skip()
		}
		cfg := Config{
			MaxStride:      maxStride,
			RunThreshold:   runThreshold,
			SelectionCycle: cycle,
		}
		switch mode % 3 {
		case 1:
			cfg.Mode = Exhaustive
		case 2:
			cfg.Mode = Fixed
			cfg.Strides = []int{1 + maxStride/3, maxStride}
		}
		fast := NewTransformer(cfg)
		ref := NewReference(cfg)
		var resFast, resRef []byte
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			resFast = fast.Forward(resFast, data[off:end])
			resRef = ref.Forward(resRef, data[off:end])
		}
		if !bytes.Equal(resFast, resRef) {
			t.Fatal("Forward diverges from reference")
		}
		back := NewTransformer(cfg).Inverse(nil, resFast)
		if !bytes.Equal(back, data) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
