package predictor

// This file retains the original scalar implementation of the Section III
// transform, verbatim, as the package's executable specification. The
// optimized Transformer must produce byte-identical output; the differential
// tests and FuzzEquivalence drive both implementations over the same streams
// and fail on the first diverging byte. Keep this file boring: any
// "optimization" applied here would silently weaken the oracle.

// refSeqEntry is the per-(stride, phase) state: the last difference seen and
// how many consecutive bytes it has held.
type refSeqEntry struct {
	delta byte
	run   int32
}

// refStrideState tracks one stride of the full set.
type refStrideState struct {
	stride int
	seqs   []refSeqEntry // one per phase
	active bool
	// phase is pos mod stride and back is (pos - stride) mod MaxStride,
	// maintained incrementally while the stride is active (recomputed on
	// admission) so the per-byte hot loops avoid division.
	phase int
	back  int
	// activatedAt is the byte index at which the stride (re)entered the
	// active set; hit accounting restarts there.
	activatedAt int64
	hits, total int64
	// evictedAtCycle is the selection cycle at which the stride left the
	// active set (for longest-out priority).
	evictedAtCycle int64
	// lastSelectedCycle enforces the once-every-s-cycles eligibility rule.
	lastSelectedCycle int64
}

// Reference applies the forward or inverse transform with the original
// per-byte scalar algorithm. It is the semantic oracle for Transformer and
// is deliberately unoptimized.
type Reference struct {
	cfg     Config
	strides []*refStrideState
	actives []*refStrideState // current active set, dense
	window  []byte            // ring buffer of the last MaxStride original bytes
	wpos    int               // ring index of the most recently written byte
	pos     int64             // bytes processed
	cycle   int64             // selection cycles elapsed
}

// NewReference returns a Reference for cfg (zero-value fields take the
// paper's defaults).
func NewReference(cfg Config) *Reference {
	cfg = cfg.withDefaults()
	t := &Reference{cfg: cfg, window: make([]byte, cfg.MaxStride), wpos: cfg.MaxStride - 1}
	inFixed := func(s int) bool {
		for _, f := range cfg.Strides {
			if f == s {
				return true
			}
		}
		return false
	}
	for s := 1; s <= cfg.MaxStride; s++ {
		if cfg.Mode == Fixed && !inFixed(s) {
			continue
		}
		st := &refStrideState{
			stride:            s,
			seqs:              make([]refSeqEntry, s),
			active:            true,
			back:              (cfg.MaxStride - s) % cfg.MaxStride,
			lastSelectedCycle: -int64(s), // immediately eligible
		}
		t.strides = append(t.strides, st)
		t.actives = append(t.actives, st)
	}
	return t
}

// Reset returns the reference to its initial state for a new stream.
func (t *Reference) Reset() {
	t.pos = 0
	t.cycle = 0
	t.wpos = t.cfg.MaxStride - 1
	t.actives = t.actives[:0]
	for _, st := range t.strides {
		for i := range st.seqs {
			st.seqs[i] = refSeqEntry{}
		}
		st.active = true
		st.activatedAt = 0
		st.hits, st.total = 0, 0
		st.phase = 0
		st.back = (t.cfg.MaxStride - st.stride) % t.cfg.MaxStride
		st.evictedAtCycle = 0
		st.lastSelectedCycle = -int64(st.stride)
		t.actives = append(t.actives, st)
	}
	for i := range t.window {
		t.window[i] = 0
	}
}

// predict returns the predicted value for the next byte and whether a
// prediction is made. It must be called before step records the byte.
func (t *Reference) predict() (byte, bool) {
	var best *refStrideState
	var bestRun int32 = -1
	for _, st := range t.actives {
		if t.pos < int64(st.stride) {
			continue
		}
		e := &st.seqs[st.phase]
		if e.run > bestRun {
			bestRun = e.run
			best = st
		}
	}
	if best == nil || bestRun <= int32(t.cfg.RunThreshold) {
		return 0, false
	}
	return t.window[best.back] + best.seqs[best.phase].delta, true
}

// step records original byte x at the current position, updating sequence
// tables, hit rates, the active set, and the history window.
func (t *Reference) step(x byte) {
	max := t.cfg.MaxStride
	for _, st := range t.actives {
		if t.pos >= int64(st.stride) {
			d := x - t.window[st.back]
			e := &st.seqs[st.phase]
			if d == e.delta {
				e.run++
				st.hits++
			} else {
				e.delta = d
				e.run = 0
			}
			st.total++
		}
		if st.phase++; st.phase == st.stride {
			st.phase = 0
		}
		if st.back++; st.back == max {
			st.back = 0
		}
	}
	if t.wpos++; t.wpos == max {
		t.wpos = 0
	}
	t.window[t.wpos] = x
	t.pos++

	if t.cfg.Mode == Adaptive {
		t.evict()
		if t.pos%int64(t.cfg.SelectionCycle) == 0 {
			t.cycle++
			t.admit()
		}
	}
}

// evict removes active strides whose hit rate has fallen below the
// threshold after the 2s settling period.
func (t *Reference) evict() {
	kept := t.actives[:0]
	for _, st := range t.actives {
		if t.pos-st.activatedAt >= int64(t.cfg.MinActiveFactor*st.stride) &&
			st.total > 0 &&
			st.hits*int64(t.cfg.HitRateDen) < st.total*int64(t.cfg.HitRateNum) {
			st.active = false
			st.evictedAtCycle = t.cycle
			continue
		}
		kept = append(kept, st)
	}
	t.actives = kept
}

// admit re-adds the evicted stride that has been out the longest among
// those eligible this cycle.
func (t *Reference) admit() {
	var pick *refStrideState
	for _, st := range t.strides {
		if st.active {
			continue
		}
		if t.cycle-st.lastSelectedCycle < int64(st.stride) {
			continue
		}
		if pick == nil || st.evictedAtCycle < pick.evictedAtCycle {
			pick = st
		}
	}
	if pick == nil {
		return
	}
	pick.active = true
	pick.activatedAt = t.pos
	pick.hits, pick.total = 0, 0
	// Recompute the incremental indices the stride missed while evicted.
	max := int64(t.cfg.MaxStride)
	pick.phase = int(t.pos % int64(pick.stride))
	pick.back = int(((t.pos-int64(pick.stride))%max + max) % max)
	pick.lastSelectedCycle = t.cycle
	t.actives = append(t.actives, pick)
}

// Forward transforms original bytes src, appending the residual stream to
// dst and returning it. Chunks may be fed incrementally; state carries
// across calls.
func (t *Reference) Forward(dst, src []byte) []byte {
	for _, x := range src {
		if p, ok := t.predict(); ok {
			dst = append(dst, x-p)
		} else {
			dst = append(dst, x)
		}
		t.step(x)
	}
	return dst
}

// Inverse reconstructs original bytes from residual bytes src, appending to
// dst. It replays exactly the decision procedure of Forward against the
// reconstructed history, so a fresh Reference with the same Config inverts
// any Forward stream.
func (t *Reference) Inverse(dst, src []byte) []byte {
	for _, y := range src {
		var x byte
		if p, ok := t.predict(); ok {
			x = y + p
		} else {
			x = y
		}
		dst = append(dst, x)
		t.step(x)
	}
	return dst
}

// ActiveStrides returns the strides currently in the active set.
func (t *Reference) ActiveStrides() []int {
	out := make([]int, 0, len(t.actives))
	for _, st := range t.actives {
		out = append(out, st.stride)
	}
	return out
}
