package boxagg

import (
	"bytes"
	"math/rand"
	"testing"

	"scikey/internal/grid"
	"scikey/internal/keys"
)

func collect(dst *[]Pair) func(Pair) {
	return func(p Pair) { *dst = append(*dst, p) }
}

func TestGreedyBoxesFullRectangle(t *testing.T) {
	// A complete rectangle of cells must collapse to exactly one box.
	box := grid.NewBox(grid.Coord{2, 3}, []int{4, 5})
	var coords []grid.Coord
	grid.ForEach(box, func(c grid.Coord) { coords = append(coords, c.Clone()) })
	boxes := GreedyBoxes(coords)
	if len(boxes) != 1 || !boxes[0].Equal(box) {
		t.Fatalf("GreedyBoxes = %v, want [%v]", boxes, box)
	}
}

func TestGreedyBoxes3D(t *testing.T) {
	box := grid.NewBox(grid.Coord{0, 0, 0}, []int{3, 4, 5})
	var coords []grid.Coord
	grid.ForEach(box, func(c grid.Coord) { coords = append(coords, c.Clone()) })
	boxes := GreedyBoxes(coords)
	if len(boxes) != 1 || !boxes[0].Equal(box) {
		t.Fatalf("3-D cube did not collapse: %v", boxes)
	}
}

func TestGreedyBoxesLShape(t *testing.T) {
	// Fig. 5's ambiguity: an L of cells decomposes into two boxes either
	// way; greedy must cover exactly, disjointly, with two boxes.
	var coords []grid.Coord
	grid.ForEach(grid.NewBox(grid.Coord{0, 0}, []int{2, 3}), func(c grid.Coord) {
		coords = append(coords, c.Clone())
	})
	grid.ForEach(grid.NewBox(grid.Coord{2, 0}, []int{1, 1}), func(c grid.Coord) {
		coords = append(coords, c.Clone())
	})
	sortCoords(coords)
	boxes := GreedyBoxes(coords)
	checkExactCover(t, boxes, coords)
	if len(boxes) != 2 {
		t.Errorf("L-shape used %d boxes, want 2: %v", len(boxes), boxes)
	}
}

func TestGreedyBoxesProperty(t *testing.T) {
	// Random cell sets: boxes must cover every cell exactly once.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		set := map[string]grid.Coord{}
		for i := 0; i < 1+rng.Intn(60); i++ {
			c := grid.Coord{rng.Intn(8), rng.Intn(8)}
			set[c.String()] = c
		}
		coords := make([]grid.Coord, 0, len(set))
		for _, c := range set {
			coords = append(coords, c)
		}
		sortCoords(coords)
		boxes := GreedyBoxes(coords)
		checkExactCover(t, boxes, coords)
	}
}

func sortCoords(cs []grid.Coord) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Compare(cs[j-1]) < 0; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func checkExactCover(t *testing.T, boxes []grid.Box, coords []grid.Coord) {
	t.Helper()
	covered := map[string]int{}
	for _, b := range boxes {
		grid.ForEach(b, func(c grid.Coord) { covered[c.String()]++ })
	}
	if len(covered) != len(coords) {
		t.Fatalf("boxes cover %d cells, want %d (boxes %v)", len(covered), len(coords), boxes)
	}
	for _, c := range coords {
		if covered[c.String()] != 1 {
			t.Fatalf("cell %v covered %d times", c, covered[c.String()])
		}
	}
}

func TestAggregatorPayloadOrder(t *testing.T) {
	var pairs []Pair
	agg := New(Config{Var: keys.VarRef{Name: "v"}, ElemSize: 1, Emit: collect(&pairs)})
	// 2x2 square added out of order; payload must come out row-major.
	agg.Add(grid.Coord{1, 1}, []byte{4})
	agg.Add(grid.Coord{0, 0}, []byte{1})
	agg.Add(grid.Coord{1, 0}, []byte{3})
	agg.Add(grid.Coord{0, 1}, []byte{2})
	agg.Close()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	if !pairs[0].Key.Box.Equal(grid.NewBox(grid.Coord{0, 0}, []int{2, 2})) {
		t.Errorf("box = %v", pairs[0].Key.Box)
	}
	if !bytes.Equal(pairs[0].Values, []byte{1, 2, 3, 4}) {
		t.Errorf("values = %v", pairs[0].Values)
	}
	if s := agg.Stats(); s.CellsIn != 4 || s.PairsOut != 1 || s.Flushes != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAggregatorDuplicateLayers(t *testing.T) {
	var pairs []Pair
	agg := New(Config{ElemSize: 1, Emit: collect(&pairs)})
	agg.Add(grid.Coord{0, 0}, []byte{1})
	agg.Add(grid.Coord{0, 0}, []byte{2})
	agg.Add(grid.Coord{0, 1}, []byte{9})
	agg.Close()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	// Layer 1: the 1x2 run; layer 2: the duplicate cell.
	if pairs[0].Key.Box.NumCells() != 2 || pairs[1].Key.Box.NumCells() != 1 {
		t.Errorf("layering wrong: %v", pairs)
	}
}

func TestExtractAndSubPair(t *testing.T) {
	box := grid.NewBox(grid.Coord{0, 0}, []int{2, 3})
	vals := []byte{0, 1, 2, 10, 11, 12} // row-major, elemSize 1
	p := Pair{Key: keys.BoxKey{Box: box}, Values: vals}
	sub := grid.NewBox(grid.Coord{0, 1}, []int{2, 2})
	got := Extract(p, sub, 1)
	if !bytes.Equal(got, []byte{1, 2, 11, 12}) {
		t.Errorf("Extract = %v", got)
	}
	sp := SubPair(p, sub, 1)
	if !sp.Key.Box.Equal(sub) {
		t.Errorf("SubPair box = %v", sp.Key.Box)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extract outside the box must panic")
		}
	}()
	Extract(p, grid.NewBox(grid.Coord{0, 0}, []int{3, 3}), 1)
}

func TestSlabPartitioner(t *testing.T) {
	domain := grid.NewBox(grid.Coord{-1, -1}, []int{12, 12})
	sp := NewSlabPartitioner(domain, 3)
	if len(sp.Slabs) != 3 {
		t.Fatalf("slabs = %v", sp.Slabs)
	}
	// A box spanning all three slabs splits into three row bands.
	box := grid.NewBox(grid.Coord{-1, 2}, []int{12, 3})
	vals := make([]byte, box.NumCells())
	for i := range vals {
		vals[i] = byte(i)
	}
	p := Pair{Key: keys.BoxKey{Box: box}, Values: vals}
	frags := sp.SplitForPartition(p, 1)
	if len(frags) != 3 {
		t.Fatalf("fragments = %v", frags)
	}
	var cells int64
	seen := map[byte]bool{}
	for i, f := range frags {
		if f.Partition != i {
			t.Errorf("fragment %d routed to %d", i, f.Partition)
		}
		cells += f.Pair.Key.Box.NumCells()
		for _, v := range f.Pair.Values {
			if seen[v] {
				t.Fatalf("value %d duplicated", v)
			}
			seen[v] = true
		}
	}
	if cells != box.NumCells() {
		t.Errorf("fragments cover %d cells, want %d", cells, box.NumCells())
	}
	// A box inside one slab is untouched.
	inside := Pair{Key: keys.BoxKey{Box: grid.NewBox(grid.Coord{0, 0}, []int{2, 2})}, Values: make([]byte, 4)}
	if got := sp.SplitForPartition(inside, 1); len(got) != 1 {
		t.Errorf("in-slab box split: %v", got)
	}
}

func TestSplitOverlapsFig7Boxes(t *testing.T) {
	// The paper's own overlap example: (-1,-1)..(10,10) and (-1,9)..(10,20)
	// overlap in (-1,9)..(10,10).
	mk := func(lo0, lo1, hi0, hi1 int, tag byte) Pair {
		b := grid.BoxFromCorners(grid.Coord{lo0, lo1}, grid.Coord{hi0, hi1})
		vals := bytes.Repeat([]byte{tag}, int(b.NumCells()))
		return Pair{Key: keys.BoxKey{Box: b}, Values: vals}
	}
	a := mk(-1, -1, 10, 10, 'a')
	b := mk(-1, 9, 10, 20, 'b')
	in := []Pair{a, b}
	sortByKey(in)
	out := SplitOverlaps(in, 1)
	// The overlap region must appear exactly twice, as equal boxes.
	overlap := grid.BoxFromCorners(grid.Coord{-1, 9}, grid.Coord{10, 10})
	equalCount := 0
	var total int64
	for _, f := range out {
		total += f.Key.Box.NumCells()
		if f.Key.Box.Equal(overlap) {
			equalCount++
		}
	}
	if equalCount != 2 {
		t.Errorf("overlap region appears %d times, want 2 (out=%v)", equalCount, out)
	}
	if total != a.Key.Box.NumCells()+b.Key.Box.NumCells() {
		t.Errorf("fragments cover %d cells, want %d", total, a.Key.Box.NumCells()+b.Key.Box.NumCells())
	}
	// Equal-or-disjoint.
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			bi, bj := out[i].Key.Box, out[j].Key.Box
			if !bi.Equal(bj) && bi.Overlaps(bj) {
				t.Errorf("fragments %v and %v overlap unequally", bi, bj)
			}
		}
	}
}

func TestSplitOverlapsValuesPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		var in []Pair
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			b := grid.NewBox(grid.Coord{rng.Intn(10), rng.Intn(10)}, []int{1 + rng.Intn(6), 1 + rng.Intn(6)})
			vals := make([]byte, b.NumCells())
			for j := range vals {
				vals[j] = byte('a' + i)
			}
			in = append(in, Pair{Key: keys.BoxKey{Box: b}, Values: vals})
		}
		sortByKey(in)
		out := SplitOverlaps(in, 1)
		type cell struct {
			pos string
			tag byte
		}
		count := func(ps []Pair) map[cell]int {
			m := map[cell]int{}
			for _, p := range ps {
				i := 0
				grid.ForEach(p.Key.Box, func(c grid.Coord) {
					m[cell{c.String(), p.Values[i]}]++
					i++
				})
			}
			return m
		}
		want, got := count(in), count(out)
		if len(want) != len(got) {
			t.Fatalf("trial %d: multiset size changed", trial)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("trial %d: cell %v count %d, want %d", trial, k, got[k], v)
			}
		}
		// Equal-or-disjoint.
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				bi, bj := out[i].Key.Box, out[j].Key.Box
				if !bi.Equal(bj) && bi.Overlaps(bj) {
					t.Fatalf("trial %d: %v and %v overlap unequally", trial, bi, bj)
				}
			}
		}
	}
}

func sortByKey(ps []Pair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && keys.CompareBox(ps[j].Key, ps[j-1].Key) < 0; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("no emit", func() { New(Config{ElemSize: 1}) })
	mustPanic("no elem", func() { New(Config{Emit: func(Pair) {}}) })
	agg := New(Config{ElemSize: 2, Emit: func(Pair) {}})
	mustPanic("bad val", func() { agg.Add(grid.Coord{0}, []byte{1}) })
}
