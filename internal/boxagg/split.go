package boxagg

import (
	"fmt"
	"sort"

	"scikey/internal/grid"
	"scikey/internal/keys"
)

// Extract returns the value payload of sub, which must lie inside p's box,
// gathered into sub's own row-major order.
func Extract(p Pair, sub grid.Box, elemSize int) []byte {
	if !p.Key.Box.ContainsBox(sub) {
		panic(fmt.Sprintf("boxagg: %v not inside %v", sub, p.Key.Box))
	}
	out := make([]byte, 0, sub.NumCells()*int64(elemSize))
	grid.ForEach(sub, func(c grid.Coord) {
		off := grid.RowMajorIndex(p.Key.Box, c) * int64(elemSize)
		out = append(out, p.Values[off:off+int64(elemSize)]...)
	})
	return out
}

// SubPair returns the fragment of p covering sub.
func SubPair(p Pair, sub grid.Box, elemSize int) Pair {
	return Pair{
		Key:    keys.BoxKey{Var: p.Key.Var, Box: sub.Clone()},
		Values: Extract(p, sub, elemSize),
	}
}

// SlabPartitioner routes box keys to reducers that own contiguous slabs of
// the output domain along dimension 0 (the n-D analogue of the curve range
// partitioner).
type SlabPartitioner struct {
	Slabs []grid.Box
}

// NewSlabPartitioner slices domain into numReducers dim-0 slabs.
func NewSlabPartitioner(domain grid.Box, numReducers int) SlabPartitioner {
	return SlabPartitioner{Slabs: grid.Partition(domain, numReducers)}
}

// PartitionOf returns the slab owning coordinate c, clamping outsiders to
// the nearest slab.
func (sp SlabPartitioner) PartitionOf(c grid.Coord) int {
	for i, s := range sp.Slabs {
		if c[0] < s.Corner[0]+s.Size[0] {
			return i
		}
	}
	return len(sp.Slabs) - 1
}

// SplitForPartition intersects p with each reducer slab (Section IV-B case
// one, box flavor). Cells outside every slab are attached to the nearest
// slab's fragment only when they fall before the first or after the last
// boundary; interior cells always land in a slab.
func (sp SlabPartitioner) SplitForPartition(p Pair, elemSize int) []RoutedPair {
	var out []RoutedPair
	box := p.Key.Box
	for i, slab := range sp.Slabs {
		lo := slab.Corner[0]
		hi := slab.Corner[0] + slab.Size[0]
		if i == 0 {
			lo = box.Corner[0] // catch halo cells below the domain
		}
		if i == len(sp.Slabs)-1 {
			hi = box.Corner[0] + box.Size[0] // and above it
		}
		if hi <= lo {
			continue
		}
		// Clip only along dim 0: a slab owns every cell whose first
		// coordinate falls in its band, including halo columns.
		clip := box.Clone()
		if clip.Corner[0] < lo {
			clip.Size[0] -= lo - clip.Corner[0]
			clip.Corner[0] = lo
		}
		if clip.Corner[0]+clip.Size[0] > hi {
			clip.Size[0] = hi - clip.Corner[0]
		}
		if clip.Size[0] <= 0 || clip.Empty() {
			continue
		}
		out = append(out, RoutedPair{Partition: i, Pair: SubPair(p, clip, elemSize)})
	}
	return out
}

// RoutedPair is a Pair assigned to one reducer.
type RoutedPair struct {
	Partition int
	Pair      Pair
}

// SplitOverlaps takes Pairs sorted by keys.CompareBox and splits unequal
// overlapping boxes along arrangement cuts (the n-D generalization of
// Fig. 7): within each cluster of transitively dim-0-overlapping boxes,
// every member is fragmented at every other member's boundaries in every
// dimension, so all surviving boxes of a variable are equal or disjoint.
func SplitOverlaps(in []Pair, elemSize int) []Pair {
	out := make([]Pair, 0, len(in))
	var cluster []Pair
	maxHi := 0
	flush := func() {
		out = append(out, splitCluster(cluster, elemSize)...)
		cluster = cluster[:0]
	}
	for _, p := range in {
		if len(cluster) > 0 &&
			(p.Key.Var != cluster[0].Key.Var || p.Key.Box.Corner[0] >= maxHi) {
			flush()
		}
		if len(cluster) == 0 {
			maxHi = p.Key.Box.Corner[0] + p.Key.Box.Size[0]
		} else if hi := p.Key.Box.Corner[0] + p.Key.Box.Size[0]; hi > maxHi {
			maxHi = hi
		}
		cluster = append(cluster, p)
	}
	if len(cluster) > 0 {
		flush()
	}
	return out
}

func splitCluster(cluster []Pair, elemSize int) []Pair {
	if len(cluster) == 1 {
		return []Pair{cluster[0]}
	}
	// Check whether any pair actually overlaps; dim-0 clustering is
	// conservative.
	overlapping := false
	for i := 0; i < len(cluster) && !overlapping; i++ {
		for j := i + 1; j < len(cluster); j++ {
			if cluster[i].Key.Box.Overlaps(cluster[j].Key.Box) {
				overlapping = true
				break
			}
		}
	}
	if !overlapping {
		return cluster
	}
	rank := cluster[0].Key.Box.Rank()
	// Arrangement cuts per dimension.
	cuts := make([][]int, rank)
	for d := 0; d < rank; d++ {
		set := map[int]bool{}
		for _, p := range cluster {
			set[p.Key.Box.Corner[d]] = true
			set[p.Key.Box.Corner[d]+p.Key.Box.Size[d]] = true
		}
		for v := range set {
			cuts[d] = append(cuts[d], v)
		}
		sort.Ints(cuts[d])
	}
	var frags []Pair
	for _, p := range cluster {
		frags = append(frags, fragment(p, cuts, elemSize)...)
	}
	sort.SliceStable(frags, func(i, j int) bool {
		return keys.CompareBox(frags[i].Key, frags[j].Key) < 0
	})
	return frags
}

// fragment cuts p's box into the arrangement cells it covers.
func fragment(p Pair, cuts [][]int, elemSize int) []Pair {
	box := p.Key.Box
	// Per-dimension interval lists clipped to the box.
	type iv struct{ lo, hi int }
	ivs := make([][]iv, box.Rank())
	for d := range ivs {
		lo := box.Corner[d]
		hi := lo + box.Size[d]
		prev := lo
		for _, c := range cuts[d] {
			if c <= prev {
				continue
			}
			if c >= hi {
				break
			}
			ivs[d] = append(ivs[d], iv{prev, c})
			prev = c
		}
		ivs[d] = append(ivs[d], iv{prev, hi})
	}
	var out []Pair
	idx := make([]int, box.Rank())
	for {
		sub := grid.Box{Corner: make(grid.Coord, box.Rank()), Size: make([]int, box.Rank())}
		for d, i := range idx {
			sub.Corner[d] = ivs[d][i].lo
			sub.Size[d] = ivs[d][i].hi - ivs[d][i].lo
		}
		if sub.Equal(box) {
			out = append(out, p) // no cuts inside: keep the original
		} else {
			out = append(out, SubPair(p, sub, elemSize))
		}
		d := box.Rank() - 1
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < len(ivs[d]) {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			return out
		}
	}
}
