// Package boxagg aggregates intermediate keys directly in their
// n-dimensional space, the road not taken in Section IV-A: "Ideally,
// aggregation would be performed directly in the keys' N-dimensional
// space. Unfortunately, this is difficult (see Fig. 5). Individual keys may
// join together in multiple ways to form aggregate keys ... We suspect (but
// have not proven) that this is an NP-hard problem."
//
// This package implements the pragmatic greedy answer: buffered cells are
// first coalesced into maximal runs along the last dimension, then adjacent
// runs with identical cross-sections are merged dimension by dimension into
// boxes — the (corner, size) aggregate keys of the paper's introduction.
// Greedy box decomposition is not optimal (that is the suspected-NP-hard
// part) but is linearithmic and usually within a small factor.
//
// The split algebra mirrors the curve-range case: boxes are split along
// reducer slab boundaries at partition time and along arrangement cuts at
// reduce time, so that any two surviving boxes of a variable are either
// identical or disjoint.
package boxagg

import (
	"fmt"
	"sort"

	"scikey/internal/grid"
	"scikey/internal/keys"
)

// Pair couples a box key with its packed values: one ElemSize-byte value
// per cell, in row-major order within the box.
type Pair struct {
	Key    keys.BoxKey
	Values []byte
}

// Config parameterizes an Aggregator.
type Config struct {
	// Var tags emitted keys.
	Var keys.VarRef
	// ElemSize is the fixed per-cell value size.
	ElemSize int
	// FlushCells bounds the buffer; default 1 << 16.
	FlushCells int
	// Emit receives each aggregate pair.
	Emit func(Pair)
}

// Stats reports aggregation effectiveness.
type Stats struct {
	CellsIn  int64
	PairsOut int64
	Flushes  int64
}

type entry struct {
	coord grid.Coord
	val   []byte
}

// Aggregator buffers cells and emits greedy n-D boxes. Build one per map
// task; not safe for concurrent use.
type Aggregator struct {
	cfg   Config
	buf   []entry
	stats Stats
}

// New returns an Aggregator for cfg.
func New(cfg Config) *Aggregator {
	if cfg.ElemSize <= 0 {
		panic("boxagg: ElemSize must be positive")
	}
	if cfg.Emit == nil {
		panic("boxagg: Emit is required")
	}
	if cfg.FlushCells <= 0 {
		cfg.FlushCells = 1 << 16
	}
	return &Aggregator{cfg: cfg, buf: make([]entry, 0, cfg.FlushCells)}
}

// Add buffers one cell; val is copied.
func (a *Aggregator) Add(c grid.Coord, val []byte) {
	if len(val) != a.cfg.ElemSize {
		panic(fmt.Sprintf("boxagg: value is %d bytes, want %d", len(val), a.cfg.ElemSize))
	}
	a.buf = append(a.buf, entry{coord: c.Clone(), val: append([]byte(nil), val...)})
	a.stats.CellsIn++
	if len(a.buf) >= a.cfg.FlushCells {
		a.Flush()
	}
}

// Flush drains the buffer. Duplicate coordinates are layered exactly as in
// the curve aggregator: the i-th occurrence of a coordinate joins the i-th
// greedy pass.
func (a *Aggregator) Flush() {
	if len(a.buf) == 0 {
		return
	}
	a.stats.Flushes++
	sort.SliceStable(a.buf, func(i, j int) bool {
		return a.buf[i].coord.Compare(a.buf[j].coord) < 0
	})
	rest := a.buf
	layer := make([]entry, 0, len(rest))
	var carry []entry
	for len(rest) > 0 {
		layer = layer[:0]
		carry = carry[:0]
		for _, e := range rest {
			if n := len(layer); n > 0 && layer[n-1].coord.Equal(e.coord) {
				carry = append(carry, e)
			} else {
				layer = append(layer, e)
			}
		}
		a.emitLayer(layer)
		rest = append(rest[:0], carry...)
	}
	a.buf = a.buf[:0]
}

// emitLayer greedily boxes a layer of strictly distinct sorted coords.
func (a *Aggregator) emitLayer(layer []entry) {
	boxes := GreedyBoxes(coordsOf(layer))
	// Index the layer's values for payload assembly.
	es := a.cfg.ElemSize
	lookup := make(map[string][]byte, len(layer))
	for _, e := range layer {
		lookup[e.coord.String()] = e.val
	}
	for _, b := range boxes {
		vals := make([]byte, 0, b.NumCells()*int64(es))
		grid.ForEach(b, func(c grid.Coord) {
			vals = append(vals, lookup[c.String()]...)
		})
		a.cfg.Emit(Pair{Key: keys.BoxKey{Var: a.cfg.Var, Box: b}, Values: vals})
		a.stats.PairsOut++
	}
}

func coordsOf(layer []entry) []grid.Coord {
	out := make([]grid.Coord, len(layer))
	for i, e := range layer {
		out[i] = e.coord
	}
	return out
}

// Close flushes remaining cells.
func (a *Aggregator) Close() { a.Flush() }

// Stats returns aggregation statistics.
func (a *Aggregator) Stats() Stats { return a.stats }

// GreedyBoxes decomposes a sorted set of distinct coordinates into disjoint
// boxes: maximal runs along the last dimension, then dimension-by-dimension
// merging of boxes with identical cross-sections. Coords must be sorted in
// row-major order with no duplicates.
func GreedyBoxes(coords []grid.Coord) []grid.Box {
	if len(coords) == 0 {
		return nil
	}
	rank := len(coords[0])
	// Runs along the last dimension.
	var boxes []grid.Box
	for i := 0; i < len(coords); {
		j := i + 1
		for j < len(coords) && runContinues(coords[j-1], coords[j], rank) {
			j++
		}
		size := make([]int, rank)
		for d := range size {
			size[d] = 1
		}
		size[rank-1] = j - i
		boxes = append(boxes, grid.Box{Corner: coords[i].Clone(), Size: size})
		i = j
	}
	// Merge along each remaining dimension, innermost outward.
	for d := rank - 2; d >= 0; d-- {
		boxes = mergeAlong(boxes, d)
	}
	return boxes
}

func runContinues(prev, cur grid.Coord, rank int) bool {
	for d := 0; d < rank-1; d++ {
		if prev[d] != cur[d] {
			return false
		}
	}
	return cur[rank-1] == prev[rank-1]+1
}

// mergeAlong merges boxes that are identical except for adjacency in
// dimension d.
func mergeAlong(boxes []grid.Box, d int) []grid.Box {
	sort.Slice(boxes, func(i, j int) bool {
		return lessIgnoringDimLast(boxes[i], boxes[j], d)
	})
	out := boxes[:0]
	for _, b := range boxes {
		if n := len(out); n > 0 && mergeable(out[n-1], b, d) {
			out[n-1].Size[d] += b.Size[d]
			continue
		}
		out = append(out, b)
	}
	return out
}

// lessIgnoringDimLast orders boxes so that candidates for merging along d
// are adjacent: compare every dimension's (corner, size) except d first,
// then d's corner.
func lessIgnoringDimLast(a, b grid.Box, d int) bool {
	for i := range a.Corner {
		if i == d {
			continue
		}
		if a.Corner[i] != b.Corner[i] {
			return a.Corner[i] < b.Corner[i]
		}
		if a.Size[i] != b.Size[i] {
			return a.Size[i] < b.Size[i]
		}
	}
	return a.Corner[d] < b.Corner[d]
}

func mergeable(a, b grid.Box, d int) bool {
	for i := range a.Corner {
		if i == d {
			continue
		}
		if a.Corner[i] != b.Corner[i] || a.Size[i] != b.Size[i] {
			return false
		}
	}
	return b.Corner[d] == a.Corner[d]+a.Size[d]
}
