// Package codec provides the pluggable compression interface modeled on
// Hadoop's CompressionCodec — the extension point Section III exploits:
// "our first approach was to take advantage of Hadoop's pluggable
// compression and write a custom compression module."
//
// Available codecs: none, gzip, zlib, bzip2 (this repository's encoder),
// and "transform+X" stacks that run the Section III predictive transform
// before a generic codec. Any name accepts a "block+" prefix wrapping the
// stack in the parallel block pipeline (independent fixed-size blocks,
// ordered reassembly across a worker pool — see Block).
package codec

import (
	"bytes"
	stdbzip2 "compress/bzip2"
	"compress/gzip"
	"compress/zlib"
	"fmt"
	"io"
	"sort"
	"strings"

	"scikey/internal/bzip2"
	"scikey/internal/predictor"
)

// Codec creates compressing writers and decompressing readers.
type Codec interface {
	// Name identifies the codec ("gzip", "transform+bzip2", ...).
	Name() string
	// NewWriter returns a stream compressor; Close flushes the codec
	// framing but not the underlying writer.
	NewWriter(w io.Writer) io.WriteCloser
	// NewReader returns a stream decompressor.
	NewReader(r io.Reader) (io.ReadCloser, error)
}

// None is the identity codec.
var None Codec = noneCodec{}

type noneCodec struct{}

func (noneCodec) Name() string { return "none" }

func (noneCodec) NewWriter(w io.Writer) io.WriteCloser { return &nopWriteCloser{w} }

func (noneCodec) NewReader(r io.Reader) (io.ReadCloser, error) {
	return &nopReadCloser{r}, nil
}

type nopWriteCloser struct{ io.Writer }

func (*nopWriteCloser) Close() error { return nil }

func (w *nopWriteCloser) Reset(dst io.Writer) { w.Writer = dst }

type nopReadCloser struct{ io.Reader }

func (*nopReadCloser) Close() error { return nil }

func (r *nopReadCloser) Reset(src io.Reader) error {
	r.Reader = src
	return nil
}

// Gzip wraps compress/gzip at the default level.
var Gzip Codec = gzipCodec{}

type gzipCodec struct{}

func (gzipCodec) Name() string { return "gzip" }

func (gzipCodec) NewWriter(w io.Writer) io.WriteCloser { return gzip.NewWriter(w) }

func (gzipCodec) NewReader(r io.Reader) (io.ReadCloser, error) {
	return gzip.NewReader(r)
}

// Zlib wraps compress/zlib — Hadoop's built-in DefaultCodec (zlib/deflate),
// the codec used in the Section III-E cluster experiment.
var Zlib Codec = zlibCodec{}

type zlibCodec struct{}

func (zlibCodec) Name() string { return "zlib" }

func (zlibCodec) NewWriter(w io.Writer) io.WriteCloser { return zlib.NewWriter(w) }

func (zlibCodec) NewReader(r io.Reader) (io.ReadCloser, error) {
	return zlib.NewReader(r)
}

// Bzip2 compresses with this repository's encoder and decompresses with the
// standard library.
var Bzip2 Codec = bzip2Codec{}

type bzip2Codec struct{}

func (bzip2Codec) Name() string { return "bzip2" }

func (bzip2Codec) NewWriter(w io.Writer) io.WriteCloser { return bzip2.NewWriter(w) }

func (bzip2Codec) NewReader(r io.Reader) (io.ReadCloser, error) {
	return io.NopCloser(stdbzip2.NewReader(r)), nil
}

// Transform stacks the Section III predictive byte transform in front of an
// inner codec. The transform is lossless, 1:1 in length, and streaming, so
// the stack composes like any other codec.
type Transform struct {
	Inner Codec
	// Cfg parameterizes the predictor; the zero value uses the paper's
	// defaults (adaptive, MaxStride 100).
	Cfg predictor.Config
	// StatsFunc, when non-nil, receives the transformer's telemetry once
	// per compressed stream, at writer Close. Pooled writers reset the
	// transformer on reuse, so each report covers exactly one stream
	// (one IFile segment in the engine). Must be safe for concurrent
	// calls: spill writers run on worker goroutines.
	StatsFunc func(predictor.Stats)
}

// NewTransform stacks the transform over inner with default parameters.
func NewTransform(inner Codec) *Transform { return &Transform{Inner: inner} }

// Name implements Codec.
func (t *Transform) Name() string { return "transform+" + t.Inner.Name() }

// NewWriter implements Codec.
func (t *Transform) NewWriter(w io.Writer) io.WriteCloser {
	return &transformWriter{
		inner: t.Inner.NewWriter(w),
		tr:    predictor.NewTransformer(t.Cfg),
		stats: t.StatsFunc,
	}
}

// NewReader implements Codec.
func (t *Transform) NewReader(r io.Reader) (io.ReadCloser, error) {
	inner, err := t.Inner.NewReader(r)
	if err != nil {
		return nil, err
	}
	return &transformReader{
		inner: inner,
		tr:    predictor.NewTransformer(t.Cfg),
	}, nil
}

type transformWriter struct {
	inner io.WriteCloser
	tr    *predictor.Transformer
	stats func(predictor.Stats)
	buf   []byte
}

func (w *transformWriter) Write(p []byte) (int, error) {
	w.buf = w.tr.Forward(w.buf[:0], p)
	n, err := w.inner.Write(w.buf)
	if err != nil {
		// The transform is 1:1 in length, so the n transformed bytes the
		// inner writer accepted correspond exactly to the first n input
		// bytes — report that partial count, per the io.Writer contract.
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return len(p), nil
}

func (w *transformWriter) Close() error {
	if w.stats != nil {
		w.stats(w.tr.Stats())
	}
	return w.inner.Close()
}

// Reset rebinds the writer to a new destination and restarts the transform
// stream, retaining the transformer and scratch buffer. It must only be
// called when the inner writer is resettable (see poolableWriter).
func (w *transformWriter) Reset(dst io.Writer) {
	w.inner.(interface{ Reset(io.Writer) }).Reset(dst)
	w.tr.Reset()
}

type transformReader struct {
	inner io.ReadCloser
	tr    *predictor.Transformer
	buf   []byte
}

func (r *transformReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if cap(r.buf) < len(p) {
		r.buf = make([]byte, len(p))
	}
	n, err := r.inner.Read(r.buf[:len(p)])
	if n > 0 {
		out := r.tr.Inverse(p[:0], r.buf[:n])
		_ = out // Inverse appends exactly n bytes into p's storage
	}
	return n, err
}

func (r *transformReader) Close() error { return r.inner.Close() }

// Reset rebinds the reader to a new source stream, retaining the
// transformer and scratch buffer. It must only be called when the inner
// reader is resettable (see poolableReader).
func (r *transformReader) Reset(src io.Reader) error {
	if err := resetReader(r.inner, src); err != nil {
		return err
	}
	r.tr.Reset()
	return nil
}

// registry of named codecs for CLIs and experiment drivers.
func registry() map[string]func() Codec {
	return map[string]func() Codec{
		"none":            func() Codec { return None },
		"gzip":            func() Codec { return Gzip },
		"zlib":            func() Codec { return Zlib },
		"bzip2":           func() Codec { return Bzip2 },
		"transform+gzip":  func() Codec { return NewTransform(Gzip) },
		"transform+zlib":  func() Codec { return NewTransform(Zlib) },
		"transform+bzip2": func() Codec { return NewTransform(Bzip2) },
		"transform+none":  func() Codec { return NewTransform(None) },
	}
}

// Get returns the codec registered under name. A "block+" prefix wraps any
// registered codec in the parallel block pipeline with default block size
// and GOMAXPROCS workers (e.g. "block+transform+bzip2"); tune via the Block
// fields.
func Get(name string) (Codec, error) {
	lname := strings.ToLower(name)
	if rest, ok := strings.CutPrefix(lname, "block+"); ok {
		inner, err := Get(rest)
		if err != nil {
			return nil, err
		}
		return NewBlock(inner), nil
	}
	f, ok := registry()[lname]
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (have %s, optionally prefixed block+)", name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// Names lists the registered codec names, sorted.
func Names() []string {
	r := registry()
	out := make([]string, 0, len(r))
	for n := range r {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Compress runs data through c in one shot.
func Compress(c Codec, data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := c.NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress inverts Compress.
func Decompress(c Codec, data []byte) ([]byte, error) {
	r, err := c.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
