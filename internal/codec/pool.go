package codec

import (
	"compress/zlib"
	"io"
	"sync"
)

// The shuffle opens and closes a codec stream per segment, thousands of
// times per job; a fresh gzip writer alone is ~800 KiB of compressor state.
// WriterPool and ReaderPool recycle codec streams whose concrete types can
// be rebound to a new underlying stream (gzip, zlib, the identity codec,
// and transform stacks over those). Codecs without a reset facility (bzip2)
// transparently fall back to fresh construction, so a pool is always safe
// to use regardless of codec.

// writerRebinder matches resettable compressors: *gzip.Writer,
// *zlib.Writer, *nopWriteCloser, and *transformWriter over one of those.
type writerRebinder interface {
	Reset(io.Writer)
}

// readerRebinder matches resettable decompressors: *gzip.Reader,
// *nopReadCloser, and *transformReader over a resettable inner reader.
// (*zlib reader resets are dispatched separately via zlib.Resetter, whose
// Reset takes a dictionary argument.)
type readerRebinder interface {
	Reset(io.Reader) error
}

// resetReader rebinds rc to src whichever reset interface it implements.
// Returns false, nil when rc is not resettable.
func resetReader(rc io.ReadCloser, src io.Reader) error {
	switch r := rc.(type) {
	case readerRebinder:
		return r.Reset(src)
	case zlib.Resetter:
		return r.Reset(src, nil)
	}
	// Unreachable for pooled readers: Put files only resettable ones.
	panic("codec: resetReader on non-resettable reader")
}

func poolableWriter(wc io.WriteCloser) bool {
	if tw, ok := wc.(*transformWriter); ok {
		_, ok = tw.inner.(writerRebinder)
		return ok
	}
	_, ok := wc.(writerRebinder)
	return ok
}

func poolableReader(rc io.ReadCloser) bool {
	if tr, ok := rc.(*transformReader); ok {
		return poolableReader(tr.inner)
	}
	switch rc.(type) {
	case readerRebinder, zlib.Resetter:
		return true
	}
	return false
}

// WriterPool recycles one codec's compressing writers.
type WriterPool struct {
	c Codec
	p sync.Pool
}

// NewWriterPool returns a pool of c's writers.
func NewWriterPool(c Codec) *WriterPool { return &WriterPool{c: c} }

// Get returns a writer compressing to dst, reusing a pooled one when
// possible. Close it before Put, as usual.
func (p *WriterPool) Get(dst io.Writer) io.WriteCloser {
	if v := p.p.Get(); v != nil {
		wc := v.(io.WriteCloser)
		wc.(writerRebinder).Reset(dst)
		return wc
	}
	return p.c.NewWriter(dst)
}

// Put returns a closed writer to the pool; non-resettable writers are
// dropped.
func (p *WriterPool) Put(wc io.WriteCloser) {
	if wc != nil && poolableWriter(wc) {
		p.p.Put(wc)
	}
}

// ReaderPool recycles one codec's decompressing readers.
type ReaderPool struct {
	c Codec
	p sync.Pool
}

// NewReaderPool returns a pool of c's readers.
func NewReaderPool(c Codec) *ReaderPool { return &ReaderPool{c: c} }

// Get returns a reader decompressing src, reusing a pooled one when
// possible. Errors mirror Codec.NewReader (e.g. a bad stream header).
func (p *ReaderPool) Get(src io.Reader) (io.ReadCloser, error) {
	if v := p.p.Get(); v != nil {
		rc := v.(io.ReadCloser)
		if err := resetReader(rc, src); err != nil {
			return nil, err
		}
		return rc, nil
	}
	return p.c.NewReader(src)
}

// Put returns a reader to the pool; non-resettable readers are dropped.
func (p *ReaderPool) Put(rc io.ReadCloser) {
	if rc != nil && poolableReader(rc) {
		p.p.Put(rc)
	}
}
