package codec

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// blockInners are the inner stacks the pipeline is used with in anger.
func blockInners() map[string]func() Codec {
	return map[string]func() Codec{
		"none":            func() Codec { return None },
		"zlib":            func() Codec { return Zlib },
		"transform+zlib":  func() Codec { return NewTransform(Zlib) },
		"transform+bzip2": func() Codec { return NewTransform(Bzip2) },
	}
}

func blockTestInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 40000)
	rng.Read(random)
	return map[string][]byte{
		"empty":    nil,
		"tiny":     []byte("x"),
		"oneblock": gridWalkStream(9),
		"exact":    make([]byte, 4096), // multiple of the 1 KiB/4 KiB sizes below
		"gridwalk": gridWalkStream(20),
		"random":   random,
	}
}

// TestBlockByteIdenticalAcrossWorkers is the core determinism contract:
// framing is position-determined, so every worker count emits the same
// bytes, and any worker count decodes any other's output.
func TestBlockByteIdenticalAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	for innerName, mk := range blockInners() {
		for _, bb := range []int{1 << 10, 4096, DefaultBlockBytes} {
			for label, data := range blockTestInputs() {
				var want []byte
				for _, w := range workerCounts {
					b := &Block{Inner: mk(), BlockBytes: bb, Workers: w}
					comp, err := Compress(b, data)
					if err != nil {
						t.Fatalf("%s/bb=%d/%s/w=%d: %v", innerName, bb, label, w, err)
					}
					if want == nil {
						want = comp
					} else if !bytes.Equal(want, comp) {
						t.Fatalf("%s/bb=%d/%s: workers=%d bytes differ from workers=1", innerName, bb, label, w)
					}
				}
				// Cross-decode: every worker count reads the shared bytes.
				for _, w := range workerCounts {
					b := &Block{Inner: mk(), BlockBytes: bb, Workers: w}
					back, err := Decompress(b, want)
					if err != nil {
						t.Fatalf("%s/bb=%d/%s/w=%d decode: %v", innerName, bb, label, w, err)
					}
					if !bytes.Equal(back, data) {
						t.Fatalf("%s/bb=%d/%s/w=%d roundtrip mismatch", innerName, bb, label, w)
					}
				}
			}
		}
	}
}

// TestBlockChunkedWriteInvariance: block boundaries depend on stream
// position only, never on how the caller chunks Write calls.
func TestBlockChunkedWriteInvariance(t *testing.T) {
	data := gridWalkStream(16)
	b := &Block{Inner: NewTransform(Zlib), BlockBytes: 3000, Workers: 3}
	oneShot, err := Compress(b, data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := b.NewWriter(&buf)
	for i := 0; i < len(data); {
		n := 577
		if i+n > len(data) {
			n = len(data) - i
		}
		if _, err := w.Write(data[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(oneShot, buf.Bytes()) {
		t.Fatal("chunked writes changed the encoded bytes")
	}
}

// TestBlockPooledReuse: block streams recycle through the generic codec
// pools (Reset(io.Writer) / Reset(io.Reader) error) byte-identically.
func TestBlockPooledReuse(t *testing.T) {
	b := &Block{Inner: NewTransform(Zlib), BlockBytes: 2048, Workers: 4}
	wp, rp := NewWriterPool(b), NewReaderPool(b)
	data := gridWalkStream(14)
	var want []byte
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		w := wp.Get(&buf)
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		wp.Put(w)
		if want == nil {
			want = append([]byte(nil), buf.Bytes()...)
		} else if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("pooled writer round %d produced different bytes", i)
		}
		r, err := rp.Get(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		back, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		rp.Put(r)
		if !bytes.Equal(back, data) {
			t.Fatalf("pooled reader round %d mismatch", i)
		}
	}
}

// errAfterReader fails with errBoom once limit bytes have been served —
// the same shape as the faults package's codec-site injection.
var errBoom = errors.New("boom")

type errAfterReader struct {
	r     io.Reader
	limit int
}

func (e *errAfterReader) Read(p []byte) (int, error) {
	if e.limit <= 0 {
		return 0, errBoom
	}
	if len(p) > e.limit {
		p = p[:e.limit]
	}
	n, err := e.r.Read(p)
	e.limit -= n
	if err == io.EOF {
		err = errBoom
	}
	return n, err
}

// TestBlockErrorParityAcrossWorkers: an injected source fault surfaces the
// same error after the same delivered prefix for every worker count —
// the parallel prefetcher may hit the fault early in wall time, but results
// are consumed strictly in frame order.
func TestBlockErrorParityAcrossWorkers(t *testing.T) {
	data := gridWalkStream(18)
	b := &Block{Inner: NewTransform(Zlib), BlockBytes: 2000, Workers: 1}
	comp, err := Compress(b, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 5, len(comp) / 3, len(comp) / 2, len(comp) - 4} {
		type outcome struct {
			prefix []byte
			err    error
		}
		var want *outcome
		for _, w := range []int{1, 2, 4} {
			b := &Block{Inner: NewTransform(Zlib), BlockBytes: 2000, Workers: w}
			r, err := b.NewReader(&errAfterReader{r: bytes.NewReader(comp), limit: limit})
			if err != nil {
				t.Fatal(err)
			}
			prefix, rerr := io.ReadAll(r)
			r.Close()
			if rerr == nil {
				t.Fatalf("limit=%d w=%d: fault did not surface", limit, w)
			}
			got := &outcome{prefix: prefix, err: rerr}
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(want.prefix, got.prefix) {
				t.Fatalf("limit=%d w=%d: delivered prefix %d bytes, workers=1 delivered %d",
					limit, w, len(got.prefix), len(want.prefix))
			}
			if !errors.Is(got.err, errBoom) != !errors.Is(want.err, errBoom) ||
				got.err.Error() != want.err.Error() {
				t.Fatalf("limit=%d w=%d: error %v, workers=1 got %v", limit, w, got.err, want.err)
			}
		}
	}
}

// TestBlockCorruptStream: truncation, header garbage, payload corruption,
// and over-long inner streams all error out instead of returning bad bytes.
func TestBlockCorruptStream(t *testing.T) {
	data := gridWalkStream(12)
	b := &Block{Inner: Zlib, BlockBytes: 1500, Workers: 2}
	comp, err := Compress(b, data)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated-mid-frame":  comp[:len(comp)/2],
		"missing-end-marker":   comp[:len(comp)-8],
		"empty":                {},
		"garbage-header":       append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, comp...),
		"zero-comp-len":        {0, 0, 0, 5, 0, 0, 0, 0},
		"huge-raw-len":         {0xff, 0, 0, 0, 0, 0, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8},
		"short-declared-003":   flipDeclaredRawLen(comp, -3),
		"corrupt-payload-byte": flipPayloadByte(comp),
	}
	for name, stream := range cases {
		for _, w := range []int{1, 4} {
			b := &Block{Inner: Zlib, BlockBytes: 1500, Workers: w}
			if _, err := Decompress(b, stream); err == nil {
				t.Errorf("%s w=%d: corrupt stream decoded without error", name, w)
			}
		}
	}
}

// flipDeclaredRawLen rewrites the first frame's rawLen by delta, making the
// inner stream longer than declared.
func flipDeclaredRawLen(comp []byte, delta int) []byte {
	out := append([]byte(nil), comp...)
	raw := int(out[0])<<24 | int(out[1])<<16 | int(out[2])<<8 | int(out[3])
	raw += delta
	out[0], out[1], out[2], out[3] = byte(raw>>24), byte(raw>>16), byte(raw>>8), byte(raw)
	return out
}

func flipPayloadByte(comp []byte) []byte {
	out := append([]byte(nil), comp...)
	out[8+len(out)/3] ^= 0x40
	return out
}

// TestBlockAbandonedReader: closing mid-stream (the merge abandon path)
// must tear the pipeline down without deadlocking or leaking buffers.
func TestBlockAbandonedReader(t *testing.T) {
	data := gridWalkStream(24)
	b := &Block{Inner: NewTransform(Zlib), BlockBytes: 1 << 10, Workers: 4}
	comp, err := Compress(b, data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r, err := b.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 100)
		if _, err := io.ReadFull(r, buf); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBlockMetrics: traffic counters see every block on both sides.
func TestBlockMetrics(t *testing.T) {
	m := &BlockMetrics{}
	b := &Block{Inner: Zlib, BlockBytes: 1000, Workers: 2, Metrics: m}
	data := make([]byte, 10500) // 11 blocks
	comp, err := Compress(b, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(b, comp); err != nil {
		t.Fatal(err)
	}
	if got := m.BlocksEncoded.Load(); got != 11 {
		t.Errorf("BlocksEncoded = %d, want 11", got)
	}
	if got := m.BlocksDecoded.Load(); got != 11 {
		t.Errorf("BlocksDecoded = %d, want 11", got)
	}
}

// TestBlockGet: registry integration via the block+ prefix.
func TestBlockGet(t *testing.T) {
	c, err := Get("block+transform+bzip2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "block+transform+bzip2" {
		t.Fatalf("Name = %q", c.Name())
	}
	if _, err := Get("block+nope"); err == nil {
		t.Error("block+unknown must error")
	}
	if _, err := Get("block+"); err == nil {
		t.Error("bare block+ must error")
	}
	data := gridWalkStream(10)
	comp, err := Compress(c, data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decompress(c, comp)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("block+transform+bzip2 roundtrip: %v", err)
	}
}

// FuzzBlockRoundTrip: random payloads, block sizes, and worker counts must
// roundtrip and stay byte-identical to the sequential reference encode.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), 64, uint8(2))
	f.Add(gridWalkStream(6), 1000, uint8(4))
	f.Add([]byte{}, 1, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, blockBytes int, workers uint8) {
		if blockBytes <= 0 || blockBytes > 1<<20 {
			blockBytes = 1 + (blockBytes&0xffff+0x10000)%0xffff
		}
		w := int(workers%8) + 1
		ref := &Block{Inner: NewTransform(Zlib), BlockBytes: blockBytes, Workers: 1}
		par := &Block{Inner: NewTransform(Zlib), BlockBytes: blockBytes, Workers: w}
		want, err := Compress(ref, data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Compress(par, data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d encode differs from sequential (bb=%d)", w, blockBytes)
		}
		back, err := Decompress(par, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
