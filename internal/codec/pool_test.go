package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestWriterPoolRoundTrip: every registered codec must produce identical,
// decodable output through a pooled writer reused several times.
func TestWriterPoolRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh12345678"), 512)
	for _, name := range Names() {
		c, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Compress(c, data)
		if err != nil {
			t.Fatal(err)
		}
		wp := NewWriterPool(c)
		rp := NewReaderPool(c)
		for round := 0; round < 3; round++ {
			var buf bytes.Buffer
			w := wp.Get(&buf)
			if _, err := w.Write(data); err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			wp.Put(w)
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s round %d: pooled writer output differs from fresh writer", name, round)
			}
			r, err := rp.Get(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("%s round %d: %v", name, round, err)
			}
			r.Close()
			rp.Put(r)
			if !bytes.Equal(got, data) {
				t.Fatalf("%s round %d: pooled reader did not reconstruct input", name, round)
			}
		}
	}
}

// errAfter accepts n bytes then fails.
type errAfter struct {
	n   int
	err error
}

func (w *errAfter) Write(p []byte) (int, error) {
	if len(p) <= w.n {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

// TestTransformWriterPartialWrite: when the inner writer accepts only part
// of the transformed bytes, Write must report the corresponding count of
// consumed input bytes, not zero (the 1:1 transform makes them equal).
func TestTransformWriterPartialWrite(t *testing.T) {
	boom := errors.New("disk full")
	inner := &errAfter{n: 10, err: boom}
	w := NewTransform(None).NewWriter(inner)
	n, err := w.Write(make([]byte, 64))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n != 10 {
		t.Fatalf("n = %d, want 10", n)
	}
}
