package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"scikey/internal/bufpool"
)

// The block pipeline splits a stream into independent fixed-size blocks and
// runs the inner codec (typically transform+X) over them on a worker pool.
// The predictive transform is self-synchronizing and bzip2 is
// block-structured, so restarting the inner stream every BlockBytes of raw
// input costs a little ratio and buys embarrassing parallelism.
//
// Framing is position-determined, never scheduling-determined: block
// boundaries fall at exact multiples of BlockBytes of raw input, and each
// block is a complete, independent inner-codec stream. The encoded bytes are
// therefore identical for every worker count — workers only change who
// compresses a block, not what the block is.
//
// Wire format, all lengths big-endian:
//
//	stream := block* end
//	block  := rawLen u32 | compLen u32 | comp[compLen]
//	end    := rawLen=0 compLen=0 (eight zero bytes)

// DefaultBlockBytes is the raw-input block size when Block.BlockBytes is 0.
// 256 KiB keeps per-block codec restart cost under ~1% while giving a
// GOMAXPROCS-sized pool plenty of blocks to overlap on real segments.
const DefaultBlockBytes = 256 << 10

// maxBlockLen bounds the frame lengths a reader will believe, so a corrupt
// header cannot ask for a multi-gigabyte allocation. It matches the largest
// bufpool size class.
const maxBlockLen = 64 << 20

// BlockMetrics counts block-pipeline traffic and stalls. Stalls measure
// pipeline occupancy: an encode stall means the ordered-reassembly ring was
// full of still-compressing blocks (writer ahead of workers); a decode stall
// means the consumer outran the prefetching decoder.
type BlockMetrics struct {
	BlocksEncoded atomic.Int64
	BlocksDecoded atomic.Int64
	EncodeStalls  atomic.Int64
	DecodeStalls  atomic.Int64
}

// Block runs Inner over independent fixed-size blocks on a worker pool with
// ordered reassembly. It implements Codec; Name() is "block+<inner>".
// A Block must be used by pointer and is safe for concurrent use; writers
// and readers it creates are each single-goroutine like any codec stream.
type Block struct {
	// Inner compresses each block as one complete stream.
	Inner Codec
	// BlockBytes is the raw bytes per block (default DefaultBlockBytes).
	// It is part of the wire layout: both sides see the same bytes for any
	// value, but the value chosen at encode time determines the frames.
	BlockBytes int
	// Workers is the pipeline width: 0 means GOMAXPROCS, 1 means
	// sequential in-line encode/decode (the differential reference — no
	// goroutines at all), n>1 means n workers.
	Workers int
	// Metrics, when non-nil, receives traffic and stall counts.
	Metrics *BlockMetrics

	initPools sync.Once
	wpool     *WriterPool
	rpool     *ReaderPool
}

// NewBlock wraps inner with default block size and GOMAXPROCS workers.
func NewBlock(inner Codec) *Block { return &Block{Inner: inner} }

// Name implements Codec.
func (b *Block) Name() string { return "block+" + b.Inner.Name() }

func (b *Block) blockBytes() int {
	if b.BlockBytes <= 0 {
		return DefaultBlockBytes
	}
	return b.BlockBytes
}

func (b *Block) workers() int {
	if b.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return b.Workers
}

// pools lazily builds the inner-codec stream pools shared by all of this
// Block's writers, readers, and their workers.
func (b *Block) pools() (*WriterPool, *ReaderPool) {
	b.initPools.Do(func() {
		b.wpool = NewWriterPool(b.Inner)
		b.rpool = NewReaderPool(b.Inner)
	})
	return b.wpool, b.rpool
}

// NewWriter implements Codec.
func (b *Block) NewWriter(w io.Writer) io.WriteCloser {
	b.pools()
	return &blockWriter{b: b, dst: w}
}

// NewReader implements Codec. The reader validates frames lazily: a corrupt
// stream surfaces on Read, not here.
func (b *Block) NewReader(r io.Reader) (io.ReadCloser, error) {
	b.pools()
	return &blockReader{b: b, src: r, br: new(bytes.Reader)}, nil
}

// sliceWriter accumulates a compressed block in a bufpool buffer.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// encodeBlock compresses one raw block as a complete inner stream into a
// bufpool buffer. Safe for concurrent calls (workers share the pools).
func (b *Block) encodeBlock(raw []byte, sw *sliceWriter) ([]byte, error) {
	sw.buf = bufpool.Get(len(raw)/2 + 64)[:0]
	w := b.wpool.Get(sw)
	_, err := w.Write(raw)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	b.wpool.Put(w)
	if err != nil {
		bufpool.Put(sw.buf)
		sw.buf = nil
		return nil, err
	}
	if m := b.Metrics; m != nil {
		m.BlocksEncoded.Add(1)
	}
	comp := sw.buf
	sw.buf = nil
	return comp, nil
}

// decodeBlock inflates one compressed block, verifying the inner stream
// holds exactly rawLen bytes. br is a caller-owned scratch bytes.Reader so
// each worker reuses one. Safe for concurrent calls.
func (b *Block) decodeBlock(br *bytes.Reader, comp []byte, rawLen int) ([]byte, error) {
	br.Reset(comp)
	rc, err := b.rpool.Get(br)
	if err != nil {
		return nil, err
	}
	out := bufpool.Get(rawLen)[:rawLen]
	_, err = io.ReadFull(rc, out)
	if err == nil {
		var one [1]byte
		if n, terr := io.ReadFull(rc, one[:]); n != 0 {
			err = fmt.Errorf("codec: block stream longer than declared %d bytes", rawLen)
		} else if terr != io.EOF {
			err = terr
		}
	}
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	b.rpool.Put(rc)
	if err != nil {
		bufpool.Put(out)
		return nil, err
	}
	if m := b.Metrics; m != nil {
		m.BlocksDecoded.Add(1)
	}
	return out, nil
}

// encJob hands one raw block to an encode worker; the 1-buffered res channel
// is the block's reassembly slot.
type encJob struct {
	raw []byte
	res chan encResult
}

type encResult struct {
	rawLen int
	comp   []byte
	err    error
}

// blockWriter buffers raw input to BlockBytes boundaries and compresses each
// block — inline when Workers is 1 (or when a tiny stream closes before the
// pool was ever needed), otherwise on the worker pool with an ordered ring
// of one pending slot per worker bounding memory to ~2·workers blocks.
type blockWriter struct {
	b   *Block
	dst io.Writer
	err error

	raw     []byte           // current block being filled (bufpool)
	ring    []chan encResult // FIFO of in-flight blocks, ≤ workers entries
	jobs    chan encJob
	wg      sync.WaitGroup
	started bool
	sw      sliceWriter // inline-encode scratch
	hdr     [8]byte
}

func (w *blockWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	consumed := 0
	bb := w.b.blockBytes()
	for len(p) > 0 {
		if w.raw == nil {
			w.raw = bufpool.Get(bb)[:0]
		}
		n := bb - len(w.raw)
		if n > len(p) {
			n = len(p)
		}
		w.raw = append(w.raw, p[:n]...)
		consumed += n
		p = p[n:]
		if len(w.raw) == bb {
			if err := w.flushBlock(false); err != nil {
				w.fail(err)
				return consumed, err
			}
		}
	}
	return consumed, nil
}

// flushBlock ships the current raw block. closing flushes inline when the
// pool never started (tiny streams skip goroutines entirely).
func (w *blockWriter) flushBlock(closing bool) error {
	raw := w.raw
	w.raw = nil
	if len(raw) == 0 {
		bufpool.Put(raw)
		return nil
	}
	if w.b.workers() == 1 || (closing && !w.started) {
		comp, err := w.b.encodeBlock(raw, &w.sw)
		bufpool.Put(raw)
		if err != nil {
			return err
		}
		err = w.writeFrame(len(raw), comp)
		bufpool.Put(comp)
		return err
	}
	w.startWorkers()
	if len(w.ring) == w.b.workers() {
		if err := w.drainOldest(); err != nil {
			return err
		}
	}
	res := make(chan encResult, 1)
	w.ring = append(w.ring, res)
	w.jobs <- encJob{raw: raw, res: res}
	return nil
}

func (w *blockWriter) startWorkers() {
	if w.started {
		return
	}
	w.started = true
	w.jobs = make(chan encJob)
	for i := 0; i < w.b.workers(); i++ {
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			var sw sliceWriter
			for j := range w.jobs {
				comp, err := w.b.encodeBlock(j.raw, &sw)
				rl := len(j.raw)
				bufpool.Put(j.raw)
				j.res <- encResult{rawLen: rl, comp: comp, err: err}
			}
		}()
	}
}

// drainOldest pops the oldest in-flight block, in order, and writes its
// frame. Blocking here is the writer outrunning the pool — an encode stall.
func (w *blockWriter) drainOldest() error {
	res := w.ring[0]
	w.ring = w.ring[1:]
	var r encResult
	select {
	case r = <-res:
	default:
		if m := w.b.Metrics; m != nil {
			m.EncodeStalls.Add(1)
		}
		r = <-res
	}
	if r.err != nil {
		return r.err
	}
	err := w.writeFrame(r.rawLen, r.comp)
	bufpool.Put(r.comp)
	return err
}

func (w *blockWriter) writeFrame(rawLen int, comp []byte) error {
	binary.BigEndian.PutUint32(w.hdr[0:4], uint32(rawLen))
	binary.BigEndian.PutUint32(w.hdr[4:8], uint32(len(comp)))
	if _, err := w.dst.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.dst.Write(comp)
	return err
}

// fail records a sticky error and releases everything in flight.
func (w *blockWriter) fail(err error) {
	w.err = err
	for _, res := range w.ring {
		if r := <-res; r.comp != nil {
			bufpool.Put(r.comp)
		}
	}
	w.ring = nil
	w.stopWorkers()
}

func (w *blockWriter) stopWorkers() {
	if !w.started {
		return
	}
	close(w.jobs)
	w.wg.Wait()
	w.jobs = nil
	w.started = false
}

// Close flushes the final partial block, drains the ring in order, stops the
// workers, and writes the end marker. The underlying writer is not closed.
func (w *blockWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flushBlock(true); err != nil {
		w.fail(err)
		return err
	}
	for len(w.ring) > 0 {
		if err := w.drainOldest(); err != nil {
			w.fail(err)
			return err
		}
	}
	w.stopWorkers()
	var end [8]byte
	if _, err := w.dst.Write(end[:]); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Reset rebinds the writer to a new destination stream for pooled reuse.
func (w *blockWriter) Reset(dst io.Writer) {
	if w.raw != nil {
		bufpool.Put(w.raw)
		w.raw = nil
	}
	w.dst = dst
	w.err = nil
}

type decJob struct {
	comp   []byte
	rawLen int
	res    chan decResult
}

type decResult struct {
	out []byte
	err error // io.EOF for the end marker
}

// blockReader decodes a block stream. Workers==1 reads and inflates frames
// in line. Otherwise a fetch goroutine reads frames sequentially from the
// source (so fault and corruption positions match the sequential reader
// exactly) and fans decode jobs out to a worker pool; results are consumed
// strictly in frame order, so errors surface at the same output offset for
// every worker count.
type blockReader struct {
	b   *Block
	src io.Reader
	err error // sticky, io.EOF included

	cur []byte // decoded current block (bufpool)
	pos int

	// sequential path scratch
	br  *bytes.Reader
	hdr [8]byte

	// parallel pipeline
	started bool
	results chan chan decResult
	stop    chan struct{}
	wg      sync.WaitGroup
}

func (r *blockReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for r.pos == len(r.cur) {
		if r.cur != nil {
			bufpool.Put(r.cur)
			r.cur = nil
		}
		var out []byte
		var err error
		if r.b.workers() == 1 {
			out, err = r.nextSeq()
		} else {
			out, err = r.nextPar()
		}
		if err != nil {
			r.err = err
			return 0, err
		}
		r.cur, r.pos = out, 0
	}
	n := copy(p, r.cur[r.pos:])
	r.pos += n
	return n, nil
}

// readFrame reads and validates one frame header from src. It returns
// io.EOF exactly at the end marker; a source that ends anywhere else is
// corrupt and surfaces as io.ErrUnexpectedEOF.
func readFrame(src io.Reader, hdr *[8]byte) (rawLen, compLen int, err error) {
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, err
	}
	rawLen = int(binary.BigEndian.Uint32(hdr[0:4]))
	compLen = int(binary.BigEndian.Uint32(hdr[4:8]))
	if rawLen == 0 && compLen == 0 {
		return 0, 0, io.EOF
	}
	if rawLen == 0 || compLen == 0 || rawLen > maxBlockLen || compLen > maxBlockLen {
		return 0, 0, fmt.Errorf("codec: corrupt block frame header (raw=%d comp=%d)", rawLen, compLen)
	}
	return rawLen, compLen, nil
}

func (r *blockReader) nextSeq() ([]byte, error) {
	rawLen, compLen, err := readFrame(r.src, &r.hdr)
	if err != nil {
		return nil, err
	}
	comp := bufpool.Get(compLen)[:compLen]
	if _, err := io.ReadFull(r.src, comp); err != nil {
		bufpool.Put(comp)
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	out, err := r.b.decodeBlock(r.br, comp, rawLen)
	bufpool.Put(comp)
	return out, err
}

func (r *blockReader) nextPar() ([]byte, error) {
	if !r.started {
		r.startPipeline()
	}
	res := <-r.results
	var d decResult
	select {
	case d = <-res:
	default:
		if m := r.b.Metrics; m != nil {
			m.DecodeStalls.Add(1)
		}
		d = <-res
	}
	if d.err != nil {
		return nil, d.err
	}
	return d.out, nil
}

// startPipeline spawns the frame fetcher and decode workers. The fetcher is
// the only goroutine touching the source; it pushes each block's result slot
// into the ordered results queue before dispatching the decode, then stops
// at the first terminal frame (end marker or read error), delivering that
// terminal as the final in-order result.
func (r *blockReader) startPipeline() {
	r.started = true
	n := r.b.workers()
	r.results = make(chan chan decResult, n)
	r.stop = make(chan struct{})
	jobs := make(chan decJob)
	for i := 0; i < n; i++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			br := new(bytes.Reader)
			for j := range jobs {
				out, err := r.b.decodeBlock(br, j.comp, j.rawLen)
				bufpool.Put(j.comp)
				j.res <- decResult{out: out, err: err}
			}
		}()
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(jobs)
		var hdr [8]byte
		for {
			rawLen, compLen, err := readFrame(r.src, &hdr)
			if err == nil {
				comp := bufpool.Get(compLen)[:compLen]
				if _, rerr := io.ReadFull(r.src, comp); rerr != nil {
					bufpool.Put(comp)
					if rerr == io.EOF {
						rerr = io.ErrUnexpectedEOF
					}
					err = rerr
				} else {
					res := make(chan decResult, 1)
					select {
					case r.results <- res:
					case <-r.stop:
						bufpool.Put(comp)
						return
					}
					select {
					case jobs <- decJob{comp: comp, rawLen: rawLen, res: res}:
					case <-r.stop:
						bufpool.Put(comp)
						res <- decResult{}
						return
					}
					continue
				}
			}
			res := make(chan decResult, 1)
			res <- decResult{err: err}
			select {
			case r.results <- res:
			case <-r.stop:
			}
			return
		}
	}()
}

// shutdown tears the pipeline down (safe mid-stream: abandoned merges close
// readers early) and recycles every buffer still in flight.
func (r *blockReader) shutdown() {
	if r.started {
		close(r.stop)
		r.wg.Wait()
	drain:
		for {
			select {
			case res := <-r.results:
				select {
				case d := <-res:
					if d.out != nil {
						bufpool.Put(d.out)
					}
				default:
				}
			default:
				break drain
			}
		}
		r.results = nil
		r.stop = nil
		r.started = false
	}
	if r.cur != nil {
		bufpool.Put(r.cur)
		r.cur = nil
	}
	r.pos = 0
}

// Close stops the pipeline; the underlying reader is not closed.
func (r *blockReader) Close() error {
	r.shutdown()
	return nil
}

// Reset rebinds the reader to a new source stream for pooled reuse.
func (r *blockReader) Reset(src io.Reader) error {
	r.shutdown()
	r.src = src
	r.err = nil
	return nil
}
