package codec

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
)

func gridWalkStream(n int) []byte {
	out := make([]byte, 0, n*n*n*12)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				out = binary.BigEndian.AppendUint32(out, uint32(x))
				out = binary.BigEndian.AppendUint32(out, uint32(y))
				out = binary.BigEndian.AppendUint32(out, uint32(z))
			}
		}
	}
	return out
}

func TestAllCodecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 10000)
	rng.Read(random)
	inputs := map[string][]byte{
		"empty":    nil,
		"tiny":     []byte("x"),
		"text":     bytes.Repeat([]byte("the quick brown fox "), 500),
		"random":   random,
		"gridwalk": gridWalkStream(12),
		"zeros":    make([]byte, 50000),
	}
	for _, name := range Names() {
		c, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for label, data := range inputs {
			comp, err := Compress(c, data)
			if err != nil {
				t.Fatalf("%s/%s compress: %v", name, label, err)
			}
			back, err := Decompress(c, comp)
			if err != nil {
				t.Fatalf("%s/%s decompress: %v", name, label, err)
			}
			if !bytes.Equal(back, data) {
				t.Errorf("%s/%s roundtrip mismatch", name, label)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("lz77"); err == nil {
		t.Error("unknown codec must error")
	}
	c, err := Get("TRANSFORM+GZIP") // case-insensitive
	if err != nil || c.Name() != "transform+gzip" {
		t.Errorf("Get uppercase: %v, %v", c, err)
	}
}

func TestTransformImprovesGzipOnKeyStreams(t *testing.T) {
	// The core claim of Section III (Fig. 3): on grid-walk key streams the
	// transform dramatically improves the downstream codec. gzip alone
	// achieves ~13% on this input; transform+gzip lands near 0.3%.
	data := gridWalkStream(40) // 768,000 bytes
	plain, err := Compress(Gzip, data)
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := Compress(NewTransform(Gzip), data)
	if err != nil {
		t.Fatal(err)
	}
	if len(stacked)*10 > len(plain) {
		t.Errorf("transform+gzip = %d bytes vs gzip = %d; expected >10x improvement",
			len(stacked), len(plain))
	}
}

func TestTransformSynergyWithBzip2(t *testing.T) {
	// "the transform appears to be synergistic with bzip2" — stacking must
	// improve on plain bzip2 for the structured stream.
	data := gridWalkStream(30)
	plain, err := Compress(Bzip2, data)
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := Compress(NewTransform(Bzip2), data)
	if err != nil {
		t.Fatal(err)
	}
	if len(stacked) >= len(plain) {
		t.Errorf("transform+bzip2 = %d bytes vs bzip2 = %d; expected improvement",
			len(stacked), len(plain))
	}
}

func TestStreamingChunkedReads(t *testing.T) {
	data := gridWalkStream(15)
	for _, name := range []string{"gzip", "transform+gzip", "transform+bzip2"} {
		c, _ := Get(name)
		comp, err := Compress(c, data)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.NewReader(bytes.NewReader(comp))
		if err != nil {
			t.Fatal(err)
		}
		// Read in odd-sized chunks.
		var back []byte
		buf := make([]byte, 777)
		for {
			n, err := r.Read(buf)
			back = append(back, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if !bytes.Equal(back, data) {
			t.Errorf("%s chunked read mismatch", name)
		}
	}
}

func TestStreamingChunkedWrites(t *testing.T) {
	data := gridWalkStream(15)
	rng := rand.New(rand.NewSource(7))
	for _, name := range []string{"zlib", "transform+zlib"} {
		c, _ := Get(name)
		var buf bytes.Buffer
		w := c.NewWriter(&buf)
		for off := 0; off < len(data); {
			n := 1 + rng.Intn(1000)
			if off+n > len(data) {
				n = len(data) - off
			}
			if _, err := w.Write(data[off : off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		back, err := Decompress(c, buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Errorf("%s chunked write mismatch", name)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Errorf("expected 8 codecs, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names must be sorted")
		}
	}
}
