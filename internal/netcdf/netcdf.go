// Package netcdf implements a subset of the NetCDF classic file format
// (CDF-1), the container SciHadoop's array queries actually read: the
// original SciHadoop paper processes NetCDF data, and this paper's
// "windspeed1" examples are NetCDF-style variables over named dimensions.
//
// Supported: fixed-size (non-record) dimensions, NC_INT and NC_FLOAT
// variables, global and per-variable text/numeric attributes. Unsupported:
// the unlimited record dimension and byte/short/double payloads — none of
// which the experiments need. Files written here follow the on-disk spec
// (big-endian, 4-byte alignment, CDF-1 32-bit offsets) so external NetCDF
// tooling can read them.
package netcdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Type tags from the classic format.
const (
	ncByte   = 1
	ncChar   = 2
	ncShort  = 3
	ncInt    = 4
	ncFloat  = 5
	ncDouble = 6

	tagDimension = 0x0a
	tagVariable  = 0x0b
	tagAttribute = 0x0c
)

// Dim is a named fixed-size dimension.
type Dim struct {
	Name string
	Len  int
}

// Attr is an attribute: Text set for NC_CHAR attributes, Values for NC_INT.
type Attr struct {
	Name   string
	Text   string
	Values []int32
}

// Var is one variable over a list of dimensions (by index into File.Dims).
type Var struct {
	Name  string
	Dims  []int
	Attrs []Attr
	// Float selects NC_FLOAT storage; otherwise NC_INT.
	Float bool
	// Int32s holds the row-major payload; float payloads are stored as
	// IEEE bits in the same slice.
	Int32s []int32
	// begin is the on-disk payload offset (filled when read or written).
	begin int64
}

// Shape returns the variable's per-dimension lengths.
func (v *Var) Shape(f *File) []int {
	out := make([]int, len(v.Dims))
	for i, d := range v.Dims {
		out[i] = f.Dims[d].Len
	}
	return out
}

// NumCells returns the number of elements.
func (v *Var) NumCells(f *File) int64 {
	n := int64(1)
	for _, s := range v.Shape(f) {
		n *= int64(s)
	}
	return n
}

// Begin returns the byte offset of the variable's payload within the file.
func (v *Var) Begin() int64 { return v.begin }

// File is an in-memory NetCDF dataset.
type File struct {
	Dims  []Dim
	Attrs []Attr
	Vars  []*Var
}

// VarByName finds a variable.
func (f *File) VarByName(name string) (*Var, bool) {
	for _, v := range f.Vars {
		if v.Name == name {
			return v, true
		}
	}
	return nil, false
}

func pad4(n int) int { return (4 - n%4) % 4 }

type writer struct {
	w   io.Writer
	n   int64
	err error
}

func (w *writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
	w.n += int64(len(p))
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.write(b[:])
}

func (w *writer) name(s string) {
	w.u32(uint32(len(s)))
	w.write([]byte(s))
	w.write(make([]byte, pad4(len(s))))
}

func (w *writer) attrs(attrs []Attr) {
	if len(attrs) == 0 {
		w.u32(0) // ABSENT tag
		w.u32(0)
		return
	}
	w.u32(tagAttribute)
	w.u32(uint32(len(attrs)))
	for _, a := range attrs {
		w.name(a.Name)
		if a.Text != "" || len(a.Values) == 0 {
			w.u32(ncChar)
			w.u32(uint32(len(a.Text)))
			w.write([]byte(a.Text))
			w.write(make([]byte, pad4(len(a.Text))))
			continue
		}
		w.u32(ncInt)
		w.u32(uint32(len(a.Values)))
		for _, v := range a.Values {
			w.u32(uint32(v))
		}
	}
}

// headerSize computes the byte size of the header so variable begin
// offsets can be assigned before writing.
func (f *File) headerSize() int64 {
	n := int64(4 + 4) // magic + numrecs
	sizeAttrs := func(attrs []Attr) int64 {
		s := int64(8)
		for _, a := range attrs {
			s += int64(4 + len(a.Name) + pad4(len(a.Name)))
			s += 8 // type + nelems
			if a.Text != "" || len(a.Values) == 0 {
				s += int64(len(a.Text) + pad4(len(a.Text)))
			} else {
				s += int64(4 * len(a.Values))
			}
		}
		return s
	}
	n += 8 // dim tag + count
	for _, d := range f.Dims {
		n += int64(4+len(d.Name)+pad4(len(d.Name))) + 4
	}
	n += sizeAttrs(f.Attrs)
	n += 8 // var tag + count
	for _, v := range f.Vars {
		n += int64(4 + len(v.Name) + pad4(len(v.Name)))
		n += int64(4 + 4*len(v.Dims))
		n += sizeAttrs(v.Attrs)
		n += 4 + 4 + 4 // nc_type + vsize + begin (CDF-1)
	}
	return n
}

// WriteTo serializes the file in CDF-1 layout.
func (f *File) WriteTo(out io.Writer) (int64, error) {
	// Assign begin offsets.
	off := f.headerSize()
	for _, v := range f.Vars {
		v.begin = off
		size := v.NumCells(f) * 4
		off += size + int64(pad4(int(size%4)))
	}
	if off > math.MaxUint32 {
		return 0, errors.New("netcdf: file exceeds CDF-1 32-bit offsets")
	}

	w := &writer{w: out}
	w.write([]byte{'C', 'D', 'F', 1})
	w.u32(0) // numrecs: no record dimension
	if len(f.Dims) == 0 {
		w.u32(0)
		w.u32(0)
	} else {
		w.u32(tagDimension)
		w.u32(uint32(len(f.Dims)))
		for _, d := range f.Dims {
			w.name(d.Name)
			w.u32(uint32(d.Len))
		}
	}
	w.attrs(f.Attrs)
	if len(f.Vars) == 0 {
		w.u32(0)
		w.u32(0)
	} else {
		w.u32(tagVariable)
		w.u32(uint32(len(f.Vars)))
		for _, v := range f.Vars {
			w.name(v.Name)
			w.u32(uint32(len(v.Dims)))
			for _, d := range v.Dims {
				w.u32(uint32(d))
			}
			w.attrs(v.Attrs)
			if v.Float {
				w.u32(ncFloat)
			} else {
				w.u32(ncInt)
			}
			size := v.NumCells(f) * 4
			w.u32(uint32(size))
			w.u32(uint32(v.begin))
		}
	}
	if w.err == nil && w.n != f.headerSize() {
		return w.n, fmt.Errorf("netcdf: header accounting bug: wrote %d, computed %d", w.n, f.headerSize())
	}
	for _, v := range f.Vars {
		if int64(len(v.Int32s)) != v.NumCells(f) {
			return w.n, fmt.Errorf("netcdf: variable %s has %d cells, shape needs %d",
				v.Name, len(v.Int32s), v.NumCells(f))
		}
		for _, x := range v.Int32s {
			w.u32(uint32(x))
		}
	}
	return w.n, w.err
}

type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) name() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.pos+n+pad4(n) > len(r.b) {
		r.err = io.ErrUnexpectedEOF
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n + pad4(n)
	return s
}

func (r *reader) attrs() []Attr {
	tag := r.u32()
	count := int(r.u32())
	if tag == 0 {
		if count != 0 {
			r.err = errors.New("netcdf: malformed ABSENT attribute list")
		}
		return nil
	}
	if tag != tagAttribute {
		r.err = fmt.Errorf("netcdf: expected attribute tag, got %#x", tag)
		return nil
	}
	out := make([]Attr, 0, count)
	for i := 0; i < count && r.err == nil; i++ {
		a := Attr{Name: r.name()}
		typ := r.u32()
		n := int(r.u32())
		switch typ {
		case ncChar:
			if r.pos+n+pad4(n) > len(r.b) {
				r.err = io.ErrUnexpectedEOF
				return nil
			}
			a.Text = string(r.b[r.pos : r.pos+n])
			r.pos += n + pad4(n)
		case ncInt:
			for j := 0; j < n; j++ {
				a.Values = append(a.Values, int32(r.u32()))
			}
		default:
			r.err = fmt.Errorf("netcdf: unsupported attribute type %d", typ)
		}
		out = append(out, a)
	}
	return out
}

// Parse decodes a CDF-1 byte image, header and payloads.
func Parse(b []byte) (*File, error) {
	f, err := ParseHeader(b)
	if err != nil {
		return nil, err
	}
	for _, v := range f.Vars {
		n := v.NumCells(f)
		end := v.begin + n*4
		if v.begin < 0 || end > int64(len(b)) {
			return nil, fmt.Errorf("netcdf: variable %s payload [%d,%d) outside file", v.Name, v.begin, end)
		}
		v.Int32s = make([]int32, n)
		for i := int64(0); i < n; i++ {
			v.Int32s[i] = int32(binary.BigEndian.Uint32(b[v.begin+i*4:]))
		}
	}
	return f, nil
}

// ParseHeader decodes only the metadata, leaving payloads unread — what an
// input format does before handing slab offsets to map tasks. b need only
// contain the header bytes.
func ParseHeader(b []byte) (*File, error) {
	r := &reader{b: b}
	if len(b) < 8 || b[0] != 'C' || b[1] != 'D' || b[2] != 'F' {
		return nil, errors.New("netcdf: bad magic")
	}
	if b[3] != 1 {
		return nil, fmt.Errorf("netcdf: unsupported CDF version %d", b[3])
	}
	r.pos = 4
	if numrecs := r.u32(); numrecs != 0 {
		return nil, errors.New("netcdf: record dimensions not supported")
	}
	f := &File{}
	tag := r.u32()
	count := int(r.u32())
	if tag == tagDimension {
		for i := 0; i < count && r.err == nil; i++ {
			d := Dim{Name: r.name(), Len: int(r.u32())}
			if d.Len == 0 {
				return nil, errors.New("netcdf: record dimension (length 0) not supported")
			}
			f.Dims = append(f.Dims, d)
		}
	} else if tag != 0 || count != 0 {
		return nil, fmt.Errorf("netcdf: expected dimension list, got tag %#x", tag)
	}
	f.Attrs = r.attrs()
	tag = r.u32()
	count = int(r.u32())
	if tag == tagVariable {
		for i := 0; i < count && r.err == nil; i++ {
			v := &Var{Name: r.name()}
			nd := int(r.u32())
			for j := 0; j < nd; j++ {
				id := int(r.u32())
				if id < 0 || id >= len(f.Dims) {
					return nil, fmt.Errorf("netcdf: variable %s references dimension %d", v.Name, id)
				}
				v.Dims = append(v.Dims, id)
			}
			v.Attrs = r.attrs()
			typ := r.u32()
			switch typ {
			case ncInt:
			case ncFloat:
				v.Float = true
			default:
				return nil, fmt.Errorf("netcdf: unsupported variable type %d", typ)
			}
			r.u32() // vsize (recomputable)
			v.begin = int64(r.u32())
			f.Vars = append(f.Vars, v)
		}
	} else if tag != 0 || count != 0 {
		return nil, fmt.Errorf("netcdf: expected variable list, got tag %#x", tag)
	}
	if r.err != nil {
		return nil, r.err
	}
	return f, nil
}

// Float32At interprets cell i of a float variable.
func (v *Var) Float32At(i int64) float32 {
	return math.Float32frombits(uint32(v.Int32s[i]))
}
