package netcdf

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func sampleFile() *File {
	f := &File{
		Dims: []Dim{{Name: "time", Len: 2}, {Name: "y", Len: 3}, {Name: "x", Len: 4}},
		Attrs: []Attr{
			{Name: "title", Text: "windspeed sample"},
			{Name: "version", Values: []int32{3}},
		},
	}
	vals := make([]int32, 2*3*4)
	for i := range vals {
		vals[i] = int32(i * 10)
	}
	f.Vars = append(f.Vars, &Var{
		Name:   "windspeed1",
		Dims:   []int{0, 1, 2},
		Attrs:  []Attr{{Name: "units", Text: "m/s"}},
		Int32s: vals,
	})
	f.Vars = append(f.Vars, &Var{
		Name:   "mask",
		Dims:   []int{1, 2},
		Int32s: make([]int32, 3*4),
	})
	return f
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dims) != 3 || got.Dims[2].Name != "x" || got.Dims[2].Len != 4 {
		t.Errorf("dims = %v", got.Dims)
	}
	if len(got.Attrs) != 2 || got.Attrs[0].Text != "windspeed sample" || got.Attrs[1].Values[0] != 3 {
		t.Errorf("attrs = %v", got.Attrs)
	}
	v, ok := got.VarByName("windspeed1")
	if !ok {
		t.Fatal("windspeed1 missing")
	}
	if v.Attrs[0].Name != "units" || v.Attrs[0].Text != "m/s" {
		t.Errorf("var attrs = %v", v.Attrs)
	}
	if got := v.Shape(got); got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Errorf("shape = %v", got)
	}
	for i, want := range f.Vars[0].Int32s {
		if v.Int32s[i] != want {
			t.Fatalf("cell %d = %d, want %d", i, v.Int32s[i], want)
		}
	}
	if _, ok := got.VarByName("nope"); ok {
		t.Error("VarByName on missing name")
	}
}

func TestOnDiskLayout(t *testing.T) {
	// Check the first bytes against the spec by hand: magic, numrecs,
	// NC_DIMENSION tag, dimension count.
	f := &File{Dims: []Dim{{Name: "x", Len: 7}}}
	f.Vars = append(f.Vars, &Var{Name: "v", Dims: []int{0}, Int32s: make([]int32, 7)})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.Equal(b[:4], []byte{'C', 'D', 'F', 1}) {
		t.Errorf("magic = %v", b[:4])
	}
	if binary.BigEndian.Uint32(b[4:]) != 0 {
		t.Error("numrecs != 0")
	}
	if binary.BigEndian.Uint32(b[8:]) != tagDimension || binary.BigEndian.Uint32(b[12:]) != 1 {
		t.Error("dimension list header wrong")
	}
	// Name "x": length 1 then 'x' plus 3 padding bytes.
	if binary.BigEndian.Uint32(b[16:]) != 1 || b[20] != 'x' || b[21] != 0 || b[23] != 0 {
		t.Error("name encoding wrong")
	}
	if binary.BigEndian.Uint32(b[24:]) != 7 {
		t.Error("dim length wrong")
	}
	// The variable payload begins where the header says it does.
	v := f.Vars[0]
	if v.Begin() <= 0 || v.Begin()+7*4 != int64(len(b)) {
		t.Errorf("begin = %d, file = %d bytes", v.Begin(), len(b))
	}
}

func TestFloatVariable(t *testing.T) {
	f := &File{Dims: []Dim{{Name: "x", Len: 2}}}
	bits := []int32{int32(math.Float32bits(1.5)), int32(math.Float32bits(-2.25))}
	f.Vars = append(f.Vars, &Var{Name: "f", Dims: []int{0}, Float: true, Int32s: bits})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	v := got.Vars[0]
	if !v.Float {
		t.Error("float flag lost")
	}
	if v.Float32At(0) != 1.5 || v.Float32At(1) != -2.25 {
		t.Errorf("floats = %v, %v", v.Float32At(0), v.Float32At(1))
	}
}

func TestHeaderOnlyParse(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	hdrLen := f.headerSize()
	hdr, err := ParseHeader(buf.Bytes()[:hdrLen])
	if err != nil {
		t.Fatal(err)
	}
	v, ok := hdr.VarByName("windspeed1")
	if !ok || v.Int32s != nil {
		t.Errorf("header parse loaded payloads: %v", v)
	}
	if v.Begin() != f.Vars[0].Begin() {
		t.Errorf("begin = %d, want %d", v.Begin(), f.Vars[0].Begin())
	}
}

func TestEmptyFile(t *testing.T) {
	f := &File{}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Dims) != 0 || len(got.Vars) != 0 || len(got.Attrs) != 0 {
		t.Errorf("empty file parsed as %+v", got)
	}
}

func TestParseErrors(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		sampleFile().WriteTo(&buf)
		return buf.Bytes()
	}()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   {'X', 'D', 'F', 1, 0, 0, 0, 0},
		"bad version": {'C', 'D', 'F', 2, 0, 0, 0, 0},
		"truncated":   good[:20],
	}
	for name, b := range cases {
		if _, err := Parse(b); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Payload size mismatch on write.
	bad := &File{Dims: []Dim{{Name: "x", Len: 5}}}
	bad.Vars = append(bad.Vars, &Var{Name: "v", Dims: []int{0}, Int32s: make([]int32, 3)})
	if _, err := bad.WriteTo(&bytes.Buffer{}); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestUnnamedPadding(t *testing.T) {
	// Names whose lengths are multiples of 4 take no padding; verify both
	// paths roundtrip.
	f := &File{Dims: []Dim{{Name: "abcd", Len: 2}, {Name: "xyz", Len: 3}}}
	f.Vars = append(f.Vars, &Var{Name: "data", Dims: []int{0, 1}, Int32s: make([]int32, 6)})
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims[0].Name != "abcd" || got.Dims[1].Name != "xyz" {
		t.Errorf("dims = %v", got.Dims)
	}
}
