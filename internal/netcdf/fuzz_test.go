package netcdf

import (
	"bytes"
	"testing"
)

// FuzzParse must never panic on malformed headers.
func FuzzParse(f *testing.F) {
	var buf bytes.Buffer
	nc := &File{Dims: []Dim{{Name: "x", Len: 3}}}
	nc.Vars = append(nc.Vars, &Var{Name: "v", Dims: []int{0}, Int32s: make([]int32, 3)})
	nc.WriteTo(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("CDF\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		f, err := Parse(data)
		if err == nil && f == nil {
			t.Fatal("nil file without error")
		}
	})
}
