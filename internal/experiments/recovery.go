package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"scikey/internal/cluster"
	"scikey/internal/core"
	"scikey/internal/faults"
	"scikey/internal/hdfs"
	"scikey/internal/mapreduce"
)

// E12Schedule is the default chaos schedule for E12: kill map task 1's first
// attempt and silently corrupt map task 2's partition-0 output segment.
const E12Schedule = "seed=11;map:1:error@0;segment:2.0:corrupt@0"

// E12Result compares the sliding-median query run fault-free against the
// same query under a deterministic fault schedule with recovery enabled.
type E12Result struct {
	Clean  *core.Report
	Faulty *core.Report
	// OutputsIdentical is true when every output part file of the faulty run
	// is byte-for-byte equal to the fault-free run's.
	OutputsIdentical bool
	// CountersIdentical is true when the payload byte counters (notably
	// "Map output materialized bytes") match the fault-free run.
	CountersIdentical bool
	// RuntimeOverheadPct is the modeled runtime increase from wasted
	// attempts (the recovery tax on the paper's cluster).
	RuntimeOverheadPct float64
}

// E12FaultRecovery is the robustness experiment: a seeded fault schedule
// kills one map attempt and corrupts one materialized IFile segment, and the
// attempt scheduler plus corruption-safe shuffle must reconstruct the exact
// fault-free result — same output bytes, same payload counters — paying only
// wasted slot time.
func E12FaultRecovery(side int) (E12Result, error) {
	clus := cluster.Paper()
	run := func(outPath, spec string) (*core.Report, *hdfs.FileSystem, error) {
		fs, qcfg, err := MedianSetup(side)
		if err != nil {
			return nil, nil, err
		}
		qcfg.OutputPath = outPath
		if spec != "" {
			inj, err := faults.NewFromSpec(spec)
			if err != nil {
				return nil, nil, err
			}
			qcfg.Faults = inj
			qcfg.Retry = mapreduce.RetryPolicy{MaxAttempts: 3, Seed: 11}
		}
		rep, err := core.RunQuery(fs, qcfg, core.Strategy{Kind: core.Baseline}, clus, false)
		return rep, fs, err
	}

	clean, cleanFS, err := run("/out/clean", "")
	if err != nil {
		return E12Result{}, err
	}
	faulty, faultyFS, err := run("/out/faulty", E12Schedule)
	if err != nil {
		return E12Result{}, fmt.Errorf("faulty run did not recover: %w", err)
	}
	if faulty.TaskRetries == 0 || faulty.CorruptSegments == 0 {
		return E12Result{}, fmt.Errorf("schedule %q fired no recoverable faults", E12Schedule)
	}

	identical, err := outputsEqual(cleanFS, "/out/clean/", faultyFS, "/out/faulty/")
	if err != nil {
		return E12Result{}, err
	}
	return E12Result{
		Clean:            clean,
		Faulty:           faulty,
		OutputsIdentical: identical,
		CountersIdentical: clean.MaterializedBytes == faulty.MaterializedBytes &&
			clean.ShuffleBytes == faulty.ShuffleBytes &&
			clean.MapOutputRecords == faulty.MapOutputRecords,
		RuntimeOverheadPct: 100 * faulty.RuntimeDelta(clean),
	}, nil
}

// outputsEqual compares the part files under two output prefixes byte for
// byte.
func outputsEqual(afs *hdfs.FileSystem, aPrefix string, bfs *hdfs.FileSystem, bPrefix string) (bool, error) {
	parts := func(fs *hdfs.FileSystem, prefix string) map[string][]byte {
		out := make(map[string][]byte)
		for _, p := range fs.List() {
			if strings.HasPrefix(p, prefix) {
				data, err := fs.ReadAll(p)
				if err == nil {
					out[strings.TrimPrefix(p, prefix)] = data
				}
			}
		}
		return out
	}
	a, b := parts(afs, aPrefix), parts(bfs, bPrefix)
	if len(a) == 0 || len(a) != len(b) {
		return false, fmt.Errorf("experiments: output file counts differ: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			return false, nil
		}
	}
	return true, nil
}
