package experiments

import (
	"math/rand"
	"sort"

	"scikey/internal/aggregate"
	"scikey/internal/cluster"
	"scikey/internal/codec"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/obs"
	"scikey/internal/scihadoop"
	"scikey/internal/serial"
	"scikey/internal/sfc"
	"scikey/internal/sparsekeys"
	"scikey/internal/workload"
)

// E10Row compares one aggregation geometry on the sliding-median workload.
type E10Row struct {
	// Scheme is "curve/<name>" or "boxes" (greedy n-D, the Fig. 5 road not
	// taken) or "simple" (no aggregation).
	Scheme string
	// MapOutputRecords is the aggregate-pair count leaving mappers.
	MapOutputRecords int64
	// KeyBytes is the serialized key volume.
	KeyBytes int64
	// MaterializedBytes is the on-disk intermediate volume.
	MaterializedBytes int64
	// PartitionSplits + OverlapSplits measure splitting work.
	Splits int64
}

// E10AggregationGeometries runs the sliding median under every aggregation
// geometry: simple keys, curve ranges on all four curves, and greedy n-D
// boxes. All runs produce identical query results (covered by unit tests);
// this experiment compares their intermediate-data footprints. When ob is
// non-nil every geometry's job traces into it (one job span per scheme);
// nil disables observability.
func E10AggregationGeometries(side int, ob *obs.Observer) ([]E10Row, error) {
	fs, qcfg, err := MedianSetup(side)
	if err != nil {
		return nil, err
	}
	qcfg.Obs = ob
	var rows []E10Row
	add := func(scheme string, res *mapreduce.Result) {
		c := res.Counters
		rows = append(rows, E10Row{
			Scheme:            scheme,
			MapOutputRecords:  c.MapOutputRecords.Value(),
			KeyBytes:          c.MapOutputKeyBytes.Value(),
			MaterializedBytes: c.MapOutputMaterializedBytes.Value(),
			Splits:            c.PartitionKeySplits.Value() + c.OverlapKeySplits.Value(),
		})
	}

	scfg := qcfg
	scfg.OutputPath = "/out/e10-simple"
	sjob, _, err := scihadoop.SimpleKeyJob(fs, scfg)
	if err != nil {
		return nil, err
	}
	sres, err := mapreduce.Run(sjob)
	if err != nil {
		return nil, err
	}
	add("simple", sres)

	for _, curve := range []string{"zorder", "hilbert", "peano", "rowmajor"} {
		ccfg := qcfg
		ccfg.Curve = curve
		ccfg.OutputPath = "/out/e10-" + curve
		job, _, err := scihadoop.AggKeyJob(fs, ccfg)
		if err != nil {
			return nil, err
		}
		res, err := mapreduce.Run(job)
		if err != nil {
			return nil, err
		}
		add("curve/"+curve, res)
	}

	bcfg := qcfg
	bcfg.OutputPath = "/out/e10-boxes"
	bjob, err := scihadoop.BoxKeyJob(fs, bcfg)
	if err != nil {
		return nil, err
	}
	bres, err := mapreduce.Run(bjob)
	if err != nil {
		return nil, err
	}
	add("boxes", bres)
	return rows, nil
}

// A5Result quantifies the open question at the end of Section IV-B: how
// much does key splitting increase the key count, and does further
// (reduce-side) aggregation win it back?
type A5Result struct {
	// MapperPairs left the aggregation library.
	MapperPairs int64
	// AfterPartitionSplit is the pair count entering the shuffle.
	AfterPartitionSplit int64
	// AfterOverlapSplit is the pair count entering grouping.
	AfterOverlapSplit int64
	// OutputPairsPlain is the reducer output key count without
	// re-aggregation; OutputPairsReagg with it.
	OutputPairsPlain int64
	OutputPairsReagg int64
}

// A5SplitInflation measures the split-driven key-count inflation of the
// sliding-median job and the recovery from reduce-side re-aggregation.
func A5SplitInflation(side int) (A5Result, error) {
	fs, qcfg, err := MedianSetup(side)
	if err != nil {
		return A5Result{}, err
	}
	run := func(reagg bool, path string) (*mapreduce.Result, error) {
		cfg := qcfg
		cfg.Reaggregate = reagg
		cfg.OutputPath = path
		job, _, err := scihadoop.AggKeyJob(fs, cfg)
		if err != nil {
			return nil, err
		}
		return mapreduce.Run(job)
	}
	plain, err := run(false, "/out/a5-plain")
	if err != nil {
		return A5Result{}, err
	}
	reagg, err := run(true, "/out/a5-reagg")
	if err != nil {
		return A5Result{}, err
	}
	c := plain.Counters
	return A5Result{
		MapperPairs:         c.MapOutputRecords.Value(),
		AfterPartitionSplit: c.MapOutputRecords.Value() + c.PartitionKeySplits.Value(),
		AfterOverlapSplit:   c.ReduceInputRecords.Value() + c.OverlapKeySplits.Value(),
		OutputPairsPlain:    c.ReduceOutputRecords.Value(),
		OutputPairsReagg:    reagg.Counters.ReduceOutputRecords.Value(),
	}, nil
}

// A6Row reports map-input locality at one HDFS replication factor.
type A6Row struct {
	Replication int
	// LocalPct is the fraction of map tasks scheduled on a node holding
	// their input block.
	LocalPct float64
	// MapSeconds is the locality-aware modeled map-phase time.
	MapSeconds float64
}

// A6LocalityReplication sweeps the HDFS replication factor and reports how
// map-input locality and the modeled map phase respond on the paper's
// 5-node cluster.
func A6LocalityReplication(side int, replications []int) ([]A6Row, error) {
	var out []A6Row
	for _, rep := range replications {
		extent := grid.NewBox(grid.Coord{0, 0}, []int{side, side})
		nodes := []string{"node0", "node1", "node2", "node3", "node4"}
		fs := hdfs.New(256<<10, rep, nodes)
		ds := scihadoop.Dataset{
			Path:   "/data/windspeed1.arr",
			Var:    keys.VarRef{Name: "windspeed1"},
			Extent: extent,
		}
		field := &workload.Field{Extent: extent, Name: ds.Var.Name}
		if err := scihadoop.Store(fs, ds, field); err != nil {
			return nil, err
		}
		cfg := scihadoop.QueryConfig{DS: ds, NumSplits: 10, NumReducers: 5, OutputPath: "/out/a6"}
		job, _, err := scihadoop.AggKeyJob(fs, cfg)
		if err != nil {
			return nil, err
		}
		res, err := mapreduce.Run(job)
		if err != nil {
			return nil, err
		}
		est := res.EstimateLocality(cluster.Paper(), nodes)
		pct := 0.0
		if est.TotalTasks > 0 {
			pct = 100 * float64(est.LocalTasks) / float64(est.TotalTasks)
		}
		out = append(out, A6Row{Replication: rep, LocalPct: pct, MapSeconds: est.MapSeconds})
	}
	return out, nil
}

// E11Row measures one key-compression scheme on a sparse key set.
type E11Row struct {
	Scheme string
	Bytes  int64
	// Pairs is the aggregate-pair count for the aggregation row (sparse
	// data defeats range coalescing; this shows by how much).
	Pairs int64
}

// E11SparseKeys quantifies Section V's closing observation: the paper's
// schemes target dense keys, and for sparse data Goldstein-style
// frame-of-reference compression is the right tool. A clustered-sparse key
// set (occupancy ~0.1%) is encoded four ways.
func E11SparseKeys(nKeys int, seed int64) ([]E11Row, error) {
	rng := rand.New(rand.NewSource(seed))
	// Clusters of nearby cells at random far-apart centers, visited
	// cluster by cluster — the spatially-correlated arrival order sparse
	// scientific keys actually have. Dedup preserves that order; a global
	// row-major sort would scatter clusters across FOR pages.
	coords := make([]grid.Coord, 0, nKeys)
	seen := make(map[string]bool, nKeys)
	cx, cy := 0, 0
	for i := 0; i < nKeys; i++ {
		if i%256 == 0 {
			cx, cy = rng.Intn(1<<24), rng.Intn(1<<24)
		}
		c := grid.Coord{cx + rng.Intn(64), cy + rng.Intn(64)}
		if !seen[c.String()] {
			seen[c.String()] = true
			coords = append(coords, c)
		}
	}
	// Index order: Goldstein's pages hold keys in index order, and sorting
	// sparse keys along a space-filling curve keeps each spatial cluster
	// contiguous, so FOR pages align with clusters.
	zc := sfc.NewZOrder(2, 24)
	sort.Slice(coords, func(i, j int) bool { return zc.Index(coords[i]) < zc.Index(coords[j]) })

	// (a) raw GridKeys (coordinates only, the Fig. 8 style).
	kc := &keys.Codec{Rank: 2, Mode: keys.VarNone}
	out := serial.NewDataOutput(len(coords) * 8)
	for _, c := range coords {
		kc.EncodeGrid(out, keys.GridKey{Coord: c})
	}
	raw := append([]byte(nil), out.Bytes()...)
	rows := []E11Row{{Scheme: "raw keys", Bytes: int64(len(raw))}}

	// (b) the Section III transform + gzip over the raw key stream.
	tg, err := codec.Get("transform+gzip")
	if err != nil {
		return nil, err
	}
	comp, err := codec.Compress(tg, raw)
	if err != nil {
		return nil, err
	}
	rows = append(rows, E11Row{Scheme: "transform+gzip", Bytes: int64(len(comp))})

	// (c) curve-range aggregation: sparse keys rarely coalesce.
	mapping, err := aggregate.MappingFor("zorder", grid.NewBox(grid.Coord{0, 0}, []int{1 << 25, 1 << 25}))
	if err != nil {
		return nil, err
	}
	var aggPairs, aggBytes int64
	agg := aggregate.New(aggregate.Config{
		Mapping:  mapping,
		ElemSize: 1,
		Emit: func(p keys.AggPair) {
			aggPairs++
			aggBytes += int64(len(kc.AggKeyBytes(p.Key)))
		},
	})
	for _, c := range coords {
		agg.Add(c, []byte{0})
	}
	agg.Close()
	rows = append(rows, E11Row{Scheme: "curve aggregation", Bytes: aggBytes, Pairs: aggPairs})

	// (d) Goldstein-style frame-of-reference pages. Pages smaller than the
	// spatial clusters keep most pages inside one cluster (a page that
	// straddles two far-apart clusters pays full-width offsets).
	s := sparsekeys.Measure(coords, 64)
	rows = append(rows, E11Row{Scheme: "FOR pages", Bytes: int64(s.EncodedBytes)})
	return rows, nil
}

// A8Row reports the on-disk sort-phase amplification of one strategy.
type A8Row struct {
	Scheme string
	// MaterializedBytes is the final map-output volume.
	MaterializedBytes int64
	// DiskBytes is all modeled disk traffic (input, spills, merge passes,
	// shuffle staging, output).
	DiskBytes int64
	// Amplification is DiskBytes / MaterializedBytes: how many times each
	// intermediate byte crosses a disk.
	Amplification float64
}

// A8SortPhases quantifies the paper's second-order claim — "reducing
// intermediate data can ... speed up a write/read cycle on the Mapper hard
// drives, reduce network transfer sizes, and possibly several read/write
// cycles on the Reducer hard drives" (Section II-A). With a small spill
// buffer and merge factor, each strategy's intermediate bytes are
// multiplied by multi-pass merges; aggregation shrinks both the bytes and
// the number of passes.
func A8SortPhases(side int) ([]A8Row, error) {
	fs, qcfg, err := MedianSetup(side)
	if err != nil {
		return nil, err
	}
	const (
		spill  = 128 << 10
		factor = 4
	)
	run := func(scheme string, job *mapreduce.Job) (A8Row, error) {
		job.SpillBufferBytes = spill
		job.MergeFactor = factor
		res, err := mapreduce.Run(job)
		if err != nil {
			return A8Row{}, err
		}
		var disk int64
		for _, m := range res.MapTasks {
			disk += m.DiskBytes
		}
		for _, r := range res.ReduceTasks {
			disk += r.DiskBytes
		}
		mat := res.Counters.MapOutputMaterializedBytes.Value()
		row := A8Row{Scheme: scheme, MaterializedBytes: mat, DiskBytes: disk}
		if mat > 0 {
			row.Amplification = float64(disk) / float64(mat)
		}
		return row, nil
	}
	scfg := qcfg
	scfg.OutputPath = "/out/a8-simple"
	sjob, _, err := scihadoop.SimpleKeyJob(fs, scfg)
	if err != nil {
		return nil, err
	}
	srow, err := run("simple", sjob)
	if err != nil {
		return nil, err
	}
	acfg := qcfg
	acfg.OutputPath = "/out/a8-agg"
	ajob, _, err := scihadoop.AggKeyJob(fs, acfg)
	if err != nil {
		return nil, err
	}
	arow, err := run("aggregation", ajob)
	if err != nil {
		return nil, err
	}
	return []A8Row{srow, arow}, nil
}
