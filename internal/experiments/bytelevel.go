// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each experiment
// returns a structured result so the same code backs the expdriver CLI,
// the root benchmarks, and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"time"

	"scikey/internal/codec"
	"scikey/internal/grid"
	"scikey/internal/ifile"
	"scikey/internal/keys"
	"scikey/internal/obs"
	"scikey/internal/predictor"
	"scikey/internal/serial"
	"scikey/internal/stats"
	"scikey/internal/workload"
)

// E1Result reproduces the introduction's intermediate-file arithmetic.
type E1Result struct {
	Cells          int64
	DataBytes      int64 // raw value payload (4 bytes per cell)
	IndexFileBytes int64 // variable as 4-byte index
	NameFileBytes  int64 // variable as Text "windspeed1"
	// Overheads are (file-data)/data as percentages: the paper quotes 450%
	// and 625%.
	IndexOverheadPct float64
	NameOverheadPct  float64
	// KeyValueRatio is key bytes / value bytes in name mode (paper: 6.75).
	KeyValueRatio float64
}

// E1IntroOverhead writes one million (key, float32) records through the
// IFile writer in both variable modes. Paper values: 26,000,006 and
// 33,000,006 bytes.
func E1IntroOverhead() E1Result {
	shape := grid.NewBox(grid.Coord{0, 0, 0, 0}, []int{1, 100, 100, 100})
	run := func(mode keys.VarMode) (int64, int64) {
		kc := &keys.Codec{Rank: 4, Mode: mode}
		cw := &countWriter{}
		w := ifile.NewWriter(cw)
		out := serial.NewDataOutput(32)
		val := []byte{0, 0, 0, 0}
		var keyBytes int64
		grid.ForEach(shape, func(c grid.Coord) {
			out.Reset()
			kc.EncodeGrid(out, keys.GridKey{Var: keys.VarRef{Name: "windspeed1", Index: 3}, Coord: c})
			keyBytes += int64(out.Len())
			w.Append(out.Bytes(), val)
		})
		w.Close()
		return cw.n, keyBytes
	}
	idxBytes, _ := run(keys.VarByIndex)
	nameBytes, nameKeyBytes := run(keys.VarByName)
	cells := shape.NumCells()
	data := cells * 4
	return E1Result{
		Cells:            cells,
		DataBytes:        data,
		IndexFileBytes:   idxBytes,
		NameFileBytes:    nameBytes,
		IndexOverheadPct: 100 * float64(idxBytes-data) / float64(data),
		NameOverheadPct:  100 * float64(nameBytes-data) / float64(data),
		KeyValueRatio:    float64(nameKeyBytes) / float64(data),
	}
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// E2Result is the Fig. 2 sequence detection outcome.
type E2Result struct {
	Stride int
	Phase  int
	Delta  byte
	Run    int32
}

// E2SequenceDetection feeds the Fig. 2-style key stream (47-byte records,
// one byte advancing by 0x0a) and reports the detector's best sequence.
// Paper values: δ=0x0a, s=47, φ=34.
func E2SequenceDetection() E2Result {
	const recLen, hot = 47, 34
	tr := predictor.NewTransformer(predictor.Config{})
	rec := make([]byte, recLen)
	copy(rec, "....windspeed1.....")
	for r := 0; r < 60; r++ {
		rec[hot] = byte((0x10 + 0x0a*r) % 256)
		tr.Forward(nil, rec)
	}
	// Advance to the hot phase of the next record.
	rec[hot] = byte((0x10 + 0x0a*60) % 256)
	tr.Forward(nil, rec[:hot])
	s, p, d, run := tr.BestSequence()
	return E2Result{Stride: s, Phase: p, Delta: d, Run: run}
}

// E3Row is one line of the Fig. 3 table.
type E3Row struct {
	Method  string
	Bytes   int64
	Seconds float64
}

// E3ByteLevelCompression reruns Fig. 3: the n^3 grid-walk stream through
// gzip and bzip2 with and without the transform. n=100 reproduces the
// paper's 12,000,000-byte input.
func E3ByteLevelCompression(n int) ([]E3Row, error) {
	data := workload.GridWalkTriples(n)
	rows := []E3Row{{Method: "original", Bytes: int64(len(data))}}
	for _, name := range []string{"gzip", "transform+gzip", "bzip2", "transform+bzip2"} {
		c, err := codec.Get(name)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		comp, err := codec.Compress(c, data)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E3Row{Method: name, Bytes: int64(len(comp)), Seconds: time.Since(t0).Seconds()})
	}
	return rows, nil
}

// E4Point is one sample of the Fig. 4 transform-time-vs-size plot.
type E4Point struct {
	Bytes   int64
	Seconds float64
}

// E4Result carries the samples and the linearity check.
type E4Result struct {
	Points []E4Point
	// MBPerSec is the fitted throughput.
	MBPerSec float64
	// R2 should be ~1: "the time to transform the data is linear in the
	// file size".
	R2 float64
}

// E4TransformTimeVsSize sweeps n^3 walks for the given ns and fits
// time ~ size. When ob is non-nil each sweep point records a "transform"
// phase span plus a sample in the scikey_transform_seconds histogram; a nil
// ob disables observability.
func E4TransformTimeVsSize(ns []int, ob *obs.Observer) E4Result {
	hist := ob.R().Histogram("scikey_transform_seconds",
		"Wall time of one forward byte-transform pass", "seconds", obs.DefTimeBuckets)
	var res E4Result
	var xs, ys []float64
	for i, n := range ns {
		data := workload.GridWalkTriples(n)
		tr := predictor.NewTransformer(predictor.Config{})
		dst := make([]byte, 0, len(data))
		sp := ob.T().Start(obs.CatPhase, "transform", 0, i, 0)
		t0 := time.Now()
		tr.Forward(dst, data)
		dt := time.Since(t0).Seconds()
		sp.End()
		hist.Observe(dt)
		res.Points = append(res.Points, E4Point{Bytes: int64(len(data)), Seconds: dt})
		xs = append(xs, float64(len(data)))
		ys = append(ys, dt)
	}
	slope, _, r2 := stats.LinearFit(xs, ys)
	res.R2 = r2
	if slope > 0 {
		res.MBPerSec = 1 / (slope * (1 << 20))
	}
	return res
}

// E4PipelineRow is one sample of the parallel block-pipeline sweep: the n^3
// walk pushed through block+transform+none at one worker width.
type E4PipelineRow struct {
	Workers      int
	Bytes        int64
	Seconds      float64
	MBPerSec     float64
	Blocks       int64
	EncodeStalls int64
	// Identical reports whether this width's output is byte-identical to
	// the first width swept (callers lead with workers=1, the sequential
	// reference) — it must always be true; the framing is
	// position-determined.
	Identical bool
}

// E4ParallelPipeline extends Fig. 4's throughput question to the parallel
// block codec: the same n^3 walk is encoded through the predictive transform
// inside the block pipeline at each worker width. The inner codec is
// transform+none so the sweep isolates what the tentpole parallelizes — the
// transform itself — from generic-codec cost. Outputs are checked
// byte-identical against the sequential reference at every width.
func E4ParallelPipeline(n int, workerCounts []int) ([]E4PipelineRow, error) {
	data := workload.GridWalkTriples(n)
	var ref []byte
	rows := make([]E4PipelineRow, 0, len(workerCounts))
	for i, w := range workerCounts {
		var m codec.BlockMetrics
		blk := codec.NewBlock(codec.NewTransform(codec.None))
		blk.Workers = w
		blk.Metrics = &m
		t0 := time.Now()
		comp, err := codec.Compress(blk, data)
		dt := time.Since(t0).Seconds()
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		if i == 0 {
			ref = comp
		}
		row := E4PipelineRow{
			Workers:      w,
			Bytes:        int64(len(data)),
			Seconds:      dt,
			Blocks:       m.BlocksEncoded.Load(),
			EncodeStalls: m.EncodeStalls.Load(),
			Identical:    string(comp) == string(ref),
		}
		if dt > 0 {
			row.MBPerSec = float64(len(data)) / dt / (1 << 20)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E5Result compares stride-selection strategies (Section III's discussion).
type E5Result struct {
	// Compressed sizes (bzip2 of the residual) under each strategy.
	FixedStride12Bytes int64
	ExhaustiveBytes    int64
	AdaptiveBytes      int64
	// Slowdown of brute force relative to adaptive at two stride caps
	// (paper: ~4x at 100, ~17x at 1000).
	Slowdown100  float64
	Slowdown1000 float64
}

// E5StrideStrategies runs the three detection modes over the n^3 walk and
// times exhaustive-vs-adaptive at stride caps 100 and 1000.
func E5StrideStrategies(n int) (E5Result, error) {
	data := workload.GridWalkTriples(n)
	residualSize := func(cfg predictor.Config) (int64, error) {
		res := predictor.NewTransformer(cfg).Forward(make([]byte, 0, len(data)), data)
		comp, err := codec.Compress(codec.Bzip2, res)
		return int64(len(comp)), err
	}
	var out E5Result
	var err error
	if out.FixedStride12Bytes, err = residualSize(predictor.Config{Mode: predictor.Fixed, Strides: []int{12}}); err != nil {
		return out, err
	}
	if out.ExhaustiveBytes, err = residualSize(predictor.Config{Mode: predictor.Exhaustive, MaxStride: 100}); err != nil {
		return out, err
	}
	if out.AdaptiveBytes, err = residualSize(predictor.Config{Mode: predictor.Adaptive, MaxStride: 100}); err != nil {
		return out, err
	}

	timeMode := func(cfg predictor.Config) float64 {
		tr := predictor.NewTransformer(cfg)
		dst := make([]byte, 0, len(data))
		t0 := time.Now()
		tr.Forward(dst, data)
		return time.Since(t0).Seconds()
	}
	out.Slowdown100 = timeMode(predictor.Config{Mode: predictor.Exhaustive, MaxStride: 100}) /
		timeMode(predictor.Config{Mode: predictor.Adaptive, MaxStride: 100})
	out.Slowdown1000 = timeMode(predictor.Config{Mode: predictor.Exhaustive, MaxStride: 1000}) /
		timeMode(predictor.Config{Mode: predictor.Adaptive, MaxStride: 1000})
	return out, nil
}

// FormatBytes renders byte counts with thousands separators.
func FormatBytes(n int64) string {
	s := fmt.Sprintf("%d", n)
	out := make([]byte, 0, len(s)+len(s)/3)
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 && c != '-' {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
