package experiments

import (
	"math/rand"
	"time"

	"scikey/internal/aggregate"
	"scikey/internal/codec"
	"scikey/internal/grid"
	"scikey/internal/keys"
	"scikey/internal/predictor"
	"scikey/internal/sfc"
	"scikey/internal/workload"
)

func sfcRange(lo, hi uint64) sfc.IndexRange { return sfc.IndexRange{Lo: lo, Hi: hi} }

// A1Row compares one curve's clustering and cost (the Section IV-A
// trade-off: "Moon et al. have shown the Hilbert curve to have better
// clustering properties than the Z-order curve, but the Hilbert curve has
// more overhead").
type A1Row struct {
	Curve string
	// MeanRuns is the average number of contiguous index runs per random
	// query box (lower = better clustering = fewer aggregate keys).
	MeanRuns float64
	// NsPerIndex is the per-point mapping cost.
	NsPerIndex float64
}

// A1CurveComparison samples random boxes in a 2^bits square. The Peano
// curve rides along on the smallest power-of-3 cube covering that square.
func A1CurveComparison(bits, boxes int, seed int64) []A1Row {
	rng := rand.New(rand.NewSource(seed))
	side := 1 << uint(bits)
	type q struct{ x, y, w, h int }
	qs := make([]q, boxes)
	for i := range qs {
		w, h := 2+rng.Intn(14), 2+rng.Intn(14)
		qs[i] = q{rng.Intn(side - w), rng.Intn(side - h), w, h}
	}
	var out []A1Row
	for _, name := range []string{"zorder", "hilbert", "peano", "rowmajor"} {
		c, err := sfc.ForSide(name, 2, side)
		if err != nil {
			panic(err)
		}
		totalRuns := 0
		var cells int64
		t0 := time.Now()
		for _, b := range qs {
			box := grid.NewBox(grid.Coord{b.x, b.y}, []int{b.w, b.h})
			totalRuns += sfc.ClusterCount(c, box)
			cells += box.NumCells()
		}
		dt := time.Since(t0)
		out = append(out, A1Row{
			Curve:      name,
			MeanRuns:   float64(totalRuns) / float64(boxes),
			NsPerIndex: float64(dt.Nanoseconds()) / float64(cells),
		})
	}
	return out
}

// A2Row measures aggregation effectiveness at one flush threshold.
type A2Row struct {
	FlushCells int
	PairsOut   int64
	// BytesPerCell is the aggregate key+range overhead amortized per cell.
	BytesPerCell float64
}

// A2FlushThreshold sweeps buffer sizes over a row-major walk of a square
// grid — "this slightly reduces the effectiveness of aggregation ... but
// the effect should be minimal".
func A2FlushThreshold(side int, thresholds []int) []A2Row {
	domain := grid.NewBox(grid.Coord{0, 0}, []int{side, side})
	mapping, err := aggregate.MappingFor("rowmajor", domain)
	if err != nil {
		panic(err)
	}
	kc := &keys.Codec{Rank: 2, Mode: keys.VarNone}
	var out []A2Row
	for _, th := range thresholds {
		var keyBytes int64
		var pairs int64
		agg := aggregate.New(aggregate.Config{
			Mapping:    mapping,
			ElemSize:   4,
			FlushCells: th,
			Emit: func(p keys.AggPair) {
				pairs++
				keyBytes += int64(len(kc.AggKeyBytes(p.Key)))
			},
		})
		val := []byte{0, 0, 0, 0}
		grid.ForEach(domain, func(c grid.Coord) { agg.Add(c, val) })
		agg.Close()
		out = append(out, A2Row{
			FlushCells:   th,
			PairsOut:     pairs,
			BytesPerCell: float64(keyBytes) / float64(domain.NumCells()),
		})
	}
	return out
}

// A3Row measures how alignment expansion changes key overlap (Section
// IV-C: expanding keys to a predetermined alignment increases the
// probability that overlapping keys are exactly equal, trading padding).
type A3Row struct {
	Align uint64
	// Fragments after overlap splitting (fewer = less splitting work).
	Fragments int
	// EqualPairs counts fragments whose range matches another fragment
	// exactly (reducible together without splitting).
	EqualPairs int
	// PadCells is the alignment padding cost.
	PadCells int64
}

// A3Alignment emulates two neighboring mappers' halo outputs on a 1-D
// curve: mapper A covers rows [0,10), mapper B rows [10,20); both emit a
// halo row into the other's territory. Alignment is applied to each
// mapper's ranges before overlap splitting.
func A3Alignment(aligns []uint64) []A3Row {
	domain := grid.NewBox(grid.Coord{-1}, []int{22})
	mapping, err := aggregate.MappingFor("rowmajor", domain)
	if err != nil {
		panic(err)
	}
	emitRanges := func(lo, hi int, align uint64) ([]keys.AggPair, int64) {
		var pairs []keys.AggPair
		agg := aggregate.New(aggregate.Config{
			Mapping:  mapping,
			ElemSize: 1,
			Align:    align,
			Emit:     func(p keys.AggPair) { pairs = append(pairs, p) },
		})
		for i := lo; i < hi; i++ {
			agg.Add(grid.Coord{i}, []byte{1})
		}
		agg.Close()
		return pairs, agg.Stats().PadCells
	}
	var out []A3Row
	for _, align := range aligns {
		// Mapper A outputs [-1, 11), mapper B outputs [9, 21).
		a, padA := emitRanges(-1, 11, align)
		b, padB := emitRanges(9, 21, align)
		all := append(a, b...)
		sortPairs(all)
		frags := keys.SplitOverlaps(all, 1)
		equal := 0
		for i := range frags {
			for j := range frags {
				if i != j && frags[i].Key.Range == frags[j].Key.Range {
					equal++
					break
				}
			}
		}
		out = append(out, A3Row{Align: align, Fragments: len(frags), EqualPairs: equal, PadCells: padA + padB})
	}
	return out
}

func sortPairs(ps []keys.AggPair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && keys.CompareAgg(ps[j].Key, ps[j-1].Key) < 0; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// A4Row measures detector sensitivity to one parameter setting.
type A4Row struct {
	Label           string
	SelectionCycle  int
	HitRateNum      int
	ResidualZeroPct float64
	CompressedBytes int64
}

// A4DetectorParams sweeps the selection-cycle length and hit-rate
// threshold over the grid-walk stream, reporting the bzip2-compressed
// residual size for each.
func A4DetectorParams(n int) ([]A4Row, error) {
	data := workload.GridWalkTriples(n)
	type cfg struct {
		label string
		c     predictor.Config
	}
	cfgs := []cfg{
		{"cycle=64", predictor.Config{SelectionCycle: 64}},
		{"cycle=256 (paper)", predictor.Config{SelectionCycle: 256}},
		{"cycle=4096", predictor.Config{SelectionCycle: 4096}},
		{"hit=1/2", predictor.Config{HitRateNum: 1, HitRateDen: 2}},
		{"hit=5/6 (paper)", predictor.Config{HitRateNum: 5, HitRateDen: 6}},
		{"hit=99/100", predictor.Config{HitRateNum: 99, HitRateDen: 100}},
	}
	var out []A4Row
	for _, c := range cfgs {
		res := predictor.NewTransformer(c.c).Forward(make([]byte, 0, len(data)), data)
		zeros := 0
		for _, b := range res {
			if b == 0 {
				zeros++
			}
		}
		comp, err := codec.Compress(codec.Bzip2, res)
		if err != nil {
			return nil, err
		}
		full := c.c
		out = append(out, A4Row{
			Label:           c.label,
			SelectionCycle:  full.SelectionCycle,
			HitRateNum:      full.HitRateNum,
			ResidualZeroPct: 100 * float64(zeros) / float64(len(res)),
			CompressedBytes: int64(len(comp)),
		})
	}
	return out, nil
}

// A7Row measures stride re-adaptation at one settling-window factor.
type A7Row struct {
	// MinActiveFactor is the settling window in stride-lengths (paper: 2).
	MinActiveFactor int
	// ResidualZeroPct over a stream whose record shape changes twice.
	ResidualZeroPct float64
	// CompressedBytes is the bzip2 size of the residual.
	CompressedBytes int64
}

// A7SettlingWindow sweeps the "2s requirement" of Section III-A on a
// variable-transition stream (three variables with different record
// shapes). With the paper's factor of 2, a re-admitted stride pays a full
// period of delta-relearning misses and gets re-evicted before its hit rate
// clears 5/6, so the detector adapts poorly after each transition; larger
// windows fix it at negligible cost on stable streams.
func A7SettlingWindow(factors []int) ([]A7Row, error) {
	var data []byte
	for _, rec := range []struct {
		name string
		n    int
	}{{"a", 4000}, {"muchlongername", 3000}, {"mid", 4500}} {
		unit := make([]byte, 1+len(rec.name)+8+4)
		unit[0] = byte(len(rec.name))
		copy(unit[1:], rec.name)
		for i := 0; i < rec.n; i++ {
			unit[len(unit)-5] = byte(i >> 8)
			unit[len(unit)-4] = byte(i)
			data = append(data, unit...)
		}
	}
	var out []A7Row
	for _, f := range factors {
		res := predictor.NewTransformer(predictor.Config{MaxStride: 60, MinActiveFactor: f}).
			Forward(make([]byte, 0, len(data)), data)
		zeros := 0
		for _, b := range res {
			if b == 0 {
				zeros++
			}
		}
		comp, err := codec.Compress(codec.Bzip2, res)
		if err != nil {
			return nil, err
		}
		out = append(out, A7Row{
			MinActiveFactor: f,
			ResidualZeroPct: 100 * float64(zeros) / float64(len(res)),
			CompressedBytes: int64(len(comp)),
		})
	}
	return out, nil
}
