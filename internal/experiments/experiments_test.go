package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"scikey/internal/mapreduce"
	"scikey/internal/obs"
	"scikey/internal/scihadoop"
)

func TestE1IntroOverheadExact(t *testing.T) {
	if testing.Short() {
		t.Skip("writes 59 MB")
	}
	r := E1IntroOverhead()
	if r.Cells != 1_000_000 || r.DataBytes != 4_000_000 {
		t.Fatalf("setup wrong: %+v", r)
	}
	// The paper's exact file sizes.
	if r.IndexFileBytes != 26_000_006 {
		t.Errorf("index file = %d, want 26000006", r.IndexFileBytes)
	}
	if r.NameFileBytes != 33_000_006 {
		t.Errorf("name file = %d, want 33000006", r.NameFileBytes)
	}
	// The abstract's 6.75 key/value ratio.
	if r.KeyValueRatio != 6.75 {
		t.Errorf("key/value ratio = %f, want 6.75", r.KeyValueRatio)
	}
	// Overheads follow from the sizes: (26M-4M)/4M and (33M-4M)/4M.
	if r.IndexOverheadPct < 549 || r.IndexOverheadPct > 551 {
		t.Errorf("index overhead = %f%%", r.IndexOverheadPct)
	}
	if r.NameOverheadPct < 724 || r.NameOverheadPct > 726 {
		t.Errorf("name overhead = %f%%", r.NameOverheadPct)
	}
}

func TestE2SequenceDetection(t *testing.T) {
	r := E2SequenceDetection()
	if r.Stride != 47 {
		t.Errorf("stride = %d, want 47", r.Stride)
	}
	if r.Phase != 34 {
		t.Errorf("phase = %d, want 34", r.Phase)
	}
	if r.Delta != 0x0a {
		t.Errorf("delta = %#x, want 0x0a", r.Delta)
	}
	if r.Run < 10 {
		t.Errorf("run = %d, want long", r.Run)
	}
}

func TestE3Shape(t *testing.T) {
	rows, err := E3ByteLevelCompression(30)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, r := range rows {
		byName[r.Method] = r.Bytes
	}
	if byName["original"] != 30*30*30*12 {
		t.Errorf("original = %d", byName["original"])
	}
	// Fig. 3's orderings: transform+X crushes X; bzip2 beats gzip; the
	// stacked bzip2 is the smallest of all.
	if !(byName["transform+gzip"]*10 < byName["gzip"]) {
		t.Errorf("transform+gzip (%d) should be >10x smaller than gzip (%d)",
			byName["transform+gzip"], byName["gzip"])
	}
	if !(byName["transform+bzip2"] < byName["bzip2"]) {
		t.Errorf("transform+bzip2 (%d) should beat bzip2 (%d)",
			byName["transform+bzip2"], byName["bzip2"])
	}
	if !(byName["transform+bzip2"] <= byName["transform+gzip"]) {
		t.Errorf("stacked bzip2 (%d) should be smallest (gzip %d)",
			byName["transform+bzip2"], byName["transform+gzip"])
	}
}

func TestE4Linearity(t *testing.T) {
	r := E4TransformTimeVsSize([]int{16, 24, 32, 40}, nil)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.MBPerSec <= 0 {
		t.Errorf("throughput = %f", r.MBPerSec)
	}
	// Timing noise makes strict linearity flaky in CI; require a sane fit.
	if r.R2 < 0.5 {
		t.Errorf("R² = %f; transform time should be roughly linear in size", r.R2)
	}
}

func TestE5StrideStrategies(t *testing.T) {
	r, err := E5StrideStrategies(24)
	if err != nil {
		t.Fatal(err)
	}
	if r.FixedStride12Bytes <= 0 || r.ExhaustiveBytes <= 0 || r.AdaptiveBytes <= 0 {
		t.Fatalf("sizes missing: %+v", r)
	}
	// The brute force detector must be slower (paper: 4x at max stride
	// 100, 17x at 1000). The stride-cap scaling only emerges on inputs
	// large enough to amortize warmup, so at test scale we only assert
	// the direction.
	if r.Slowdown100 < 1 {
		t.Errorf("slowdown@100 = %f, want > 1", r.Slowdown100)
	}
	if r.Slowdown1000 < 1 {
		t.Errorf("slowdown@1000 = %f, want > 1", r.Slowdown1000)
	}
}

func TestE6TransformCodec(t *testing.T) {
	r, err := E6TransformCodecOnMedian(48)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReductionPct <= 0 || r.ReductionPct >= 100 {
		t.Errorf("reduction = %f%%", r.ReductionPct)
	}
	if r.Variant.MaterializedBytes >= r.Baseline.MaterializedBytes {
		t.Error("transform codec did not shrink intermediate data")
	}
}

func TestE7AggregationDataSize(t *testing.T) {
	if testing.Short() {
		t.Skip("writes 22 MB")
	}
	r, err := E7AggregationDataSize()
	if err != nil {
		t.Fatal(err)
	}
	o := r.Original
	// Fig. 8's original bars: 4-byte values, 16-byte coordinate keys and
	// 2 framing bytes per million records.
	if o.ValueBytes != 4_000_000 || o.KeyBytes != 16_000_000 || o.FileOverhead != 2_000_006 {
		t.Errorf("original bars = %+v", o)
	}
	c := r.Compressed
	if c.ValueBytes != 4_000_000 {
		t.Errorf("compressed values = %d; aggregation must not touch values", c.ValueBytes)
	}
	if c.KeyBytes >= o.KeyBytes/100 {
		t.Errorf("compressed keys = %d; expected >100x key reduction", c.KeyBytes)
	}
	if r.ReductionPct < 75 {
		t.Errorf("reduction = %f%%, expected Fig. 8's ~80%% regime", r.ReductionPct)
	}
}

func TestE8Aggregation(t *testing.T) {
	r, err := E8AggregationOnMedian(48)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReductionPct <= 0 {
		t.Errorf("aggregation reduction = %f%%", r.ReductionPct)
	}
	if r.Variant.OverlapSplits == 0 || r.Variant.PartitionSplits == 0 {
		t.Errorf("key splitting idle: %+v", r.Variant)
	}
	// Deterministic shape checks only: aggregation must shrink both the
	// record count and the bytes. (The runtime ordering vs the transform —
	// aggregation wins, transform loses — holds at full scale and is
	// recorded in EXPERIMENTS.md; at this test size the modeled times are
	// dominated by measured-CPU noise, so asserting on them is flaky.)
	if r.Variant.MapOutputRecords >= r.Baseline.MapOutputRecords {
		t.Errorf("aggregation records %d >= baseline %d",
			r.Variant.MapOutputRecords, r.Baseline.MapOutputRecords)
	}
	if r.Variant.MaterializedBytes >= r.Baseline.MaterializedBytes {
		t.Errorf("aggregation bytes %d >= baseline %d",
			r.Variant.MaterializedBytes, r.Baseline.MaterializedBytes)
	}
}

func TestE9Mechanics(t *testing.T) {
	r := E9Mechanics()
	if len(r.Fig6Ranges) != 3 || !strings.Contains(r.Fig6Ranges[0], "[5,8)") {
		t.Errorf("Fig6 ranges = %v", r.Fig6Ranges)
	}
	want := []string{"[0,6)", "[6,10)", "[6,10)", "[10,14)"}
	if len(r.Fig7Fragments) != 4 {
		t.Fatalf("Fig7 fragments = %v", r.Fig7Fragments)
	}
	for i, w := range want {
		if !strings.Contains(r.Fig7Fragments[i], w) {
			t.Errorf("fragment %d = %s, want %s", i, r.Fig7Fragments[i], w)
		}
	}
}

func TestA1CurveComparison(t *testing.T) {
	rows := A1CurveComparison(6, 40, 1)
	byName := map[string]A1Row{}
	for _, r := range rows {
		byName[r.Curve] = r
	}
	if !(byName["hilbert"].MeanRuns <= byName["zorder"].MeanRuns) {
		t.Errorf("hilbert runs (%f) should not exceed zorder (%f)",
			byName["hilbert"].MeanRuns, byName["zorder"].MeanRuns)
	}
	for name, r := range byName {
		if r.MeanRuns <= 0 || r.NsPerIndex <= 0 {
			t.Errorf("%s row empty: %+v", name, r)
		}
	}
}

func TestA2FlushThreshold(t *testing.T) {
	rows := A2FlushThreshold(64, []int{64, 512, 4096, 1 << 16})
	for i := 1; i < len(rows); i++ {
		if rows[i].PairsOut > rows[i-1].PairsOut {
			t.Errorf("bigger buffer produced more pairs: %+v then %+v", rows[i-1], rows[i])
		}
	}
	if last := rows[len(rows)-1]; last.PairsOut != 1 {
		t.Errorf("unbounded buffer should yield one pair, got %d", last.PairsOut)
	}
}

func TestA3Alignment(t *testing.T) {
	rows := A3Alignment([]uint64{1, 4, 8})
	if rows[0].PadCells != 0 {
		t.Errorf("align=1 should not pad, got %d", rows[0].PadCells)
	}
	for _, r := range rows[1:] {
		if r.PadCells == 0 {
			t.Errorf("align=%d should pad", r.Align)
		}
	}
	for _, r := range rows {
		if r.Fragments <= 0 {
			t.Errorf("row %+v has no fragments", r)
		}
	}
}

func TestA4DetectorParams(t *testing.T) {
	rows, err := A4DetectorParams(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	original := int64(20 * 20 * 20 * 12)
	for _, r := range rows {
		if r.CompressedBytes <= 0 || r.CompressedBytes >= original {
			t.Errorf("%s: compressed = %d", r.Label, r.CompressedBytes)
		}
		if r.ResidualZeroPct < 50 {
			t.Errorf("%s: residual only %f%% zero", r.Label, r.ResidualZeroPct)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		26000006: "26,000,006",
		-12345:   "-12,345",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestE10AggregationGeometries(t *testing.T) {
	rows, err := E10AggregationGeometries(40, nil)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]E10Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	if len(byScheme) != 6 {
		t.Fatalf("schemes = %v", rows)
	}
	simple := byScheme["simple"]
	for name, r := range byScheme {
		if name == "simple" {
			continue
		}
		if r.MapOutputRecords >= simple.MapOutputRecords {
			t.Errorf("%s: %d records vs simple %d", name, r.MapOutputRecords, simple.MapOutputRecords)
		}
		if r.KeyBytes >= simple.KeyBytes {
			t.Errorf("%s: %d key bytes vs simple %d", name, r.KeyBytes, simple.KeyBytes)
		}
		if r.Splits == 0 {
			t.Errorf("%s: no key splits recorded", name)
		}
	}
	if simple.Splits != 0 {
		t.Error("simple keys must never split")
	}
}

func TestA5SplitInflation(t *testing.T) {
	r, err := A5SplitInflation(40)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.MapperPairs <= r.AfterPartitionSplit) {
		t.Errorf("partition split cannot shrink pairs: %+v", r)
	}
	if !(r.AfterPartitionSplit <= r.AfterOverlapSplit) {
		t.Errorf("overlap split cannot shrink pairs: %+v", r)
	}
	if !(r.OutputPairsReagg < r.OutputPairsPlain) {
		t.Errorf("re-aggregation must shrink output pairs: %+v", r)
	}
}

func TestA6LocalityReplication(t *testing.T) {
	rows, err := A6LocalityReplication(40, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// More replicas can only improve locality; full replication hits 100%.
	for i := 1; i < len(rows); i++ {
		if rows[i].LocalPct < rows[i-1].LocalPct {
			t.Errorf("locality fell with more replicas: %+v then %+v", rows[i-1], rows[i])
		}
	}
	if rows[2].LocalPct != 100 {
		t.Errorf("replication 5 on 5 nodes: locality = %f%%, want 100%%", rows[2].LocalPct)
	}
	for _, r := range rows {
		if r.MapSeconds <= 0 {
			t.Errorf("replication %d: MapSeconds = %f", r.Replication, r.MapSeconds)
		}
	}
}

func TestA7SettlingWindow(t *testing.T) {
	rows, err := A7SettlingWindow([]int{2, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// The finding: longer settling windows adapt better across variable
	// transitions.
	if !(rows[2].ResidualZeroPct > rows[0].ResidualZeroPct) {
		t.Errorf("factor 32 (%.1f%%) should beat factor 2 (%.1f%%)",
			rows[2].ResidualZeroPct, rows[0].ResidualZeroPct)
	}
	for _, r := range rows {
		if r.CompressedBytes <= 0 {
			t.Errorf("row %+v missing compressed size", r)
		}
	}
}

func TestE11SparseKeys(t *testing.T) {
	rows, err := E11SparseKeys(4096, 11)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]E11Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	raw := byScheme["raw keys"]
	forPages := byScheme["FOR pages"]
	aggRow := byScheme["curve aggregation"]
	if forPages.Bytes >= raw.Bytes/2 {
		t.Errorf("FOR pages (%d B) should beat raw keys (%d B) by >2x", forPages.Bytes, raw.Bytes)
	}
	// Sparse data defeats range coalescing: nearly one pair per key, and
	// 16-byte range keys make it *bigger* than the raw 8-byte coords.
	if aggRow.Pairs < int64(float64(raw.Bytes/8)*0.5) {
		t.Errorf("aggregation coalesced suspiciously well on sparse keys: %d pairs", aggRow.Pairs)
	}
	if aggRow.Bytes <= raw.Bytes {
		t.Errorf("curve aggregation should blow up on sparse keys: %d vs raw %d", aggRow.Bytes, raw.Bytes)
	}
}

func TestA8SortPhases(t *testing.T) {
	rows, err := A8SortPhases(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	simple, agg := rows[0], rows[1]
	if agg.DiskBytes >= simple.DiskBytes {
		t.Errorf("aggregation disk traffic (%d) should be below simple (%d)", agg.DiskBytes, simple.DiskBytes)
	}
	for _, r := range rows {
		if r.Amplification < 1 {
			t.Errorf("%s: amplification %f < 1", r.Scheme, r.Amplification)
		}
	}
}

func TestE12FaultRecovery(t *testing.T) {
	r, err := E12FaultRecovery(48)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OutputsIdentical {
		t.Error("recovered output differs from the fault-free run")
	}
	if !r.CountersIdentical {
		t.Errorf("payload counters differ: clean materialized %d vs faulty %d",
			r.Clean.MaterializedBytes, r.Faulty.MaterializedBytes)
	}
	if r.Faulty.TaskRetries == 0 || r.Faulty.CorruptSegments == 0 || r.Faulty.RecoveredMaps == 0 {
		t.Errorf("recovery counters did not fire: %+v", r.Faulty)
	}
	if r.Faulty.Estimate.WastedMapSeconds <= 0 {
		t.Error("recovery charged no wasted map slot time")
	}
	if r.RuntimeOverheadPct < 0 {
		t.Errorf("recovery made the modeled runtime faster? %+v%%", r.RuntimeOverheadPct)
	}
}

func TestE13ChaosSoak(t *testing.T) {
	ob := obs.New()
	r, err := E13ChaosSoak(48, ob)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != len(E13Schedules) {
		t.Fatalf("ran %d schedules, want %d", len(r.Runs), len(E13Schedules))
	}
	for _, run := range r.Runs {
		if !run.OutputsIdentical {
			t.Errorf("%s: output differs from the fault-free in-memory run", run.Name)
		}
		if run.Report.MaterializedBytes != r.Clean.MaterializedBytes ||
			run.Report.ShuffleBytes != r.Clean.ShuffleBytes {
			t.Errorf("%s: payload counters drifted: materialized %d vs %d, shuffle %d vs %d",
				run.Name, run.Report.MaterializedBytes, r.Clean.MaterializedBytes,
				run.Report.ShuffleBytes, r.Clean.ShuffleBytes)
		}
		if run.Report.ShuffleFetches == 0 {
			t.Errorf("%s: no networked fetches recorded", run.Name)
		}
	}

	// The shared observer saw every run: one "ok" job span per run (clean +
	// chaos schedules), and the chaos runs' recovery work shows up as failed
	// or retried attempt spans — the trace distinguishes chaos from success.
	jobSpans, okJobs, failedAttempts, wonAttempts := 0, 0, 0, 0
	for _, ev := range ob.T().Events() {
		switch ev.Cat {
		case obs.CatJob:
			jobSpans++
			if ev.Outcome == "ok" {
				okJobs++
			}
		case obs.CatAttempt:
			switch ev.Outcome {
			case obs.OutcomeFailed:
				failedAttempts++
			case obs.OutcomeWon:
				wonAttempts++
			}
		}
	}
	if want := len(E13Schedules) + 1; jobSpans != want || okJobs != want {
		t.Errorf("job spans = %d (%d ok), want %d of each", jobSpans, okJobs, want)
	}
	if failedAttempts == 0 {
		t.Error("chaos left no failed attempt spans in the trace")
	}
	if wonAttempts == 0 {
		t.Error("no winning attempt spans recorded")
	}
	// The networked runs also populated the per-node fetch histograms.
	var fetchSamples int64
	for node := 0; node < 8; node++ {
		fetchSamples += ob.R().Histogram("scikey_shuffle_fetch_seconds", "", "seconds", nil,
			obs.L("node", strconv.Itoa(node))).Count()
	}
	if fetchSamples == 0 {
		t.Error("no shuffle fetch latency samples recorded")
	}
}

func TestE16InNodeCombining(t *testing.T) {
	r, err := E16InNodeCombining(40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.MedianRefusal == "" {
		t.Error("median combining was not refused")
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %+v, want 3 workloads", r.Rows)
	}
	for _, row := range r.Rows {
		if !row.OutputsIdentical {
			t.Errorf("%s: combined output differs from uncombined", row.Workload)
		}
		if row.MergedRecords <= 0 {
			t.Errorf("%s: combining folded nothing", row.Workload)
		}
		if row.ShuffleBytesOn >= row.ShuffleBytesOff {
			t.Errorf("%s: shuffle bytes %d with combining, %d without — no reduction",
				row.Workload, row.ShuffleBytesOn, row.ShuffleBytesOff)
		}
		if got, want := row.SavedBytes, row.ShuffleBytesOff-row.ShuffleBytesOn; got != want {
			t.Errorf("%s: SavedBytes = %d, shuffle delta = %d", row.Workload, got, want)
		}
	}
}

// TestCombinedShuffleGateAgg is the bench-gate's combining entry (see
// Makefile bench-gate): on the aggregation workload, a combined run must
// shuffle no more bytes than an uncombined run — and, since aggregate map
// output carries within-task duplicate keys, strictly fewer — while staying
// byte-identical. A regression that makes combining inflate or corrupt the
// shuffle fails CI here.
func TestCombinedShuffleGateAgg(t *testing.T) {
	fs, qcfg, err := MedianSetup(40)
	if err != nil {
		t.Fatal(err)
	}
	run := func(combine bool) (int64, string) {
		cfg := qcfg
		cfg.Op = scihadoop.Max
		cfg.Combine = combine
		cfg.CombineNodes = 1
		cfg.OutputPath = fmt.Sprintf("/out/gate-agg-%v", combine)
		job, _, err := scihadoop.AggKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mapreduce.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.ReduceShuffleBytes.Value(), cfg.OutputPath
	}
	off, offPath := run(false)
	on, onPath := run(true)
	if on > off {
		t.Errorf("combined shuffle bytes %d exceed uncombined %d on the agg workload", on, off)
	}
	if on >= off {
		t.Errorf("combining saved nothing on the agg workload: %d vs %d", on, off)
	}
	identical, err := outputsEqual(fs, offPath, fs, onPath)
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Error("combined agg output differs from uncombined")
	}
}
