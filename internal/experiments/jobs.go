package experiments

import (
	"scikey/internal/aggregate"
	"scikey/internal/cluster"
	"scikey/internal/core"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/ifile"
	"scikey/internal/keys"
	"scikey/internal/scihadoop"
	"scikey/internal/serial"
	"scikey/internal/workload"
)

// MedianSetup materializes a windspeed1 field of side x side cells on a
// fresh simulated HDFS, mirroring the paper's sliding-median evaluation
// input (scaled from their 8000-class grid to laptop size).
func MedianSetup(side int) (*hdfs.FileSystem, scihadoop.QueryConfig, error) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{side, side})
	fs := hdfs.New(64<<20, 3, []string{"node0", "node1", "node2", "node3", "node4"})
	ds := scihadoop.Dataset{
		Path:   "/data/windspeed1.arr",
		Var:    keys.VarRef{Name: "windspeed1"},
		Extent: extent,
	}
	field := &workload.Field{Extent: extent, Name: ds.Var.Name}
	if err := scihadoop.Store(fs, ds, field); err != nil {
		return nil, scihadoop.QueryConfig{}, err
	}
	// The paper's job shape: 10 map slots worth of splits, 5 reducers.
	return fs, scihadoop.QueryConfig{DS: ds, NumSplits: 10, NumReducers: 5}, nil
}

// StrategyComparison is the shared E6/E8 result: a strategy versus the
// uncompressed baseline on the sliding-median query.
type StrategyComparison struct {
	Baseline *core.Report
	Variant  *core.Report
	// ReductionPct is the materialized-bytes reduction (paper: 77.8% for
	// transform+zlib, 60.7% for aggregation).
	ReductionPct float64
	// RuntimeDeltaPct is the modeled runtime change (paper: +106% for
	// transform+zlib, -28.5% for aggregation).
	RuntimeDeltaPct float64
}

func compareStrategies(side int, variant core.Strategy) (StrategyComparison, error) {
	fs, qcfg, err := MedianSetup(side)
	if err != nil {
		return StrategyComparison{}, err
	}
	clus := cluster.Paper()
	bcfg := qcfg
	bcfg.OutputPath = "/out/baseline"
	base, err := core.RunQuery(fs, bcfg, core.Strategy{Kind: core.Baseline}, clus, false)
	if err != nil {
		return StrategyComparison{}, err
	}
	vcfg := qcfg
	vcfg.OutputPath = "/out/variant"
	rep, err := core.RunQuery(fs, vcfg, variant, clus, false)
	if err != nil {
		return StrategyComparison{}, err
	}
	return StrategyComparison{
		Baseline:        base,
		Variant:         rep,
		ReductionPct:    100 * rep.Reduction(base),
		RuntimeDeltaPct: 100 * rep.RuntimeDelta(base),
	}, nil
}

// E6TransformCodecOnMedian is Section III-E: sliding median with the
// transform+zlib map-output codec versus no codec.
func E6TransformCodecOnMedian(side int) (StrategyComparison, error) {
	return compareStrategies(side, core.Strategy{Kind: core.ByteTransform, Codec: "zlib"})
}

// E8AggregationOnMedian is Section IV-D: sliding median with key
// aggregation versus simple keys.
func E8AggregationOnMedian(side int) (StrategyComparison, error) {
	return compareStrategies(side, core.Strategy{Kind: core.Aggregation, Curve: "zorder"})
}

// E7Bars is one Fig. 8 bar: the byte decomposition of an intermediate file.
type E7Bars struct {
	Label      string
	ValueBytes int64
	KeyBytes   int64
	// FileOverhead is record framing plus the stream trailer.
	FileOverhead int64
	Records      int64
}

// Total sums the bar segments.
func (b E7Bars) Total() int64 { return b.ValueBytes + b.KeyBytes + b.FileOverhead }

// E7Result compares the original and aggregated encodings (Fig. 8).
type E7Result struct {
	Original   E7Bars
	Compressed E7Bars
	// ReductionPct is the total-size reduction (paper: up to 84.5%,
	// depending on data types).
	ReductionPct float64
}

// E7AggregationDataSize writes one (coordinate key, int32) record per cell
// of a 4-D million-cell grid, then the aggregated equivalent, and
// decomposes both files into Fig. 8's values / keys / file-overhead bars.
// The ideal case: one mapper, whole grid, row-major traversal.
func E7AggregationDataSize() (E7Result, error) {
	shape := grid.NewBox(grid.Coord{0, 0, 0, 0}, []int{1, 100, 100, 100})
	kc := &keys.Codec{Rank: 4, Mode: keys.VarNone}
	field := &workload.Field{Extent: shape, Name: "ints"}

	// Original: one record per cell, 16-byte coordinate key + 4-byte int.
	cw := &countWriter{}
	w := ifile.NewWriter(cw)
	out := serial.NewDataOutput(32)
	grid.ForEach(shape, func(c grid.Coord) {
		out.Reset()
		kc.EncodeGrid(out, keys.GridKey{Coord: c})
		w.Append(out.Bytes(), field.ValueBytes(c))
	})
	w.Close()
	os := w.Stats()
	orig := E7Bars{
		Label:        "original",
		ValueBytes:   os.ValBytes,
		KeyBytes:     os.KeyBytes,
		FileOverhead: os.FrameBytes + os.TrailerBytes,
		Records:      os.Records,
	}

	// Compressed: aggregate the same cells (row-major curve follows the
	// traversal, so the ideal case collapses to very few ranges).
	mapping, err := aggregate.MappingFor("rowmajor", shape)
	if err != nil {
		return E7Result{}, err
	}
	cw2 := &countWriter{}
	w2 := ifile.NewWriter(cw2)
	var aggErr error
	agg := aggregate.New(aggregate.Config{
		Mapping:  mapping,
		ElemSize: 4,
		// Match the paper's bounded buffer: aggregation works on subsets
		// "due to memory limitations".
		FlushCells: 1 << 16,
		Emit: func(p keys.AggPair) {
			if err := w2.Append(kc.AggKeyBytes(p.Key), p.Values); err != nil && aggErr == nil {
				aggErr = err
			}
		},
	})
	grid.ForEach(shape, func(c grid.Coord) { agg.Add(c, field.ValueBytes(c)) })
	agg.Close()
	w2.Close()
	if aggErr != nil {
		return E7Result{}, aggErr
	}
	cs := w2.Stats()
	comp := E7Bars{
		Label:        "compressed",
		ValueBytes:   cs.ValBytes,
		KeyBytes:     cs.KeyBytes,
		FileOverhead: cs.FrameBytes + cs.TrailerBytes,
		Records:      cs.Records,
	}
	return E7Result{
		Original:     orig,
		Compressed:   comp,
		ReductionPct: 100 * (1 - float64(comp.Total())/float64(orig.Total())),
	}, nil
}

// E9Result demonstrates the Figs. 5-7 mechanics.
type E9Result struct {
	// Fig6Ranges are the coalesced ranges of the cells {5,6,7,9,10,13}.
	Fig6Ranges []string
	// Fig7Fragments are the overlap-split fragments of [0,10) and [6,14).
	Fig7Fragments []string
}

// E9Mechanics runs the two worked examples from the figures.
func E9Mechanics() E9Result {
	var out E9Result
	mapping, _ := aggregate.MappingFor("rowmajor", grid.NewBox(grid.Coord{0}, []int{16}))
	agg := aggregate.New(aggregate.Config{
		Mapping:  mapping,
		ElemSize: 1,
		Emit: func(p keys.AggPair) {
			out.Fig6Ranges = append(out.Fig6Ranges, p.Key.String())
		},
	})
	for _, i := range []int{5, 6, 7, 9, 10, 13} {
		agg.Add(grid.Coord{i}, []byte{byte(i)})
	}
	agg.Close()

	mk := func(lo, hi uint64) keys.AggPair {
		return keys.AggPair{
			Key:    keys.AggKey{Range: sfcRange(lo, hi)},
			Values: make([]byte, hi-lo),
		}
	}
	for _, f := range keys.SplitOverlaps([]keys.AggPair{mk(0, 10), mk(6, 14)}, 1) {
		out.Fig7Fragments = append(out.Fig7Fragments, f.Key.String())
	}
	return out
}
