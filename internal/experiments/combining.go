package experiments

// E16 measures what in-node combining buys: the shuffle-byte reduction of
// folding duplicate intermediate keys per node group before the shuffle, and
// — just as important for the paper's argument — what it cannot buy. The
// paper's sliding median is holistic: no monoid can merge partial windows,
// so combining is refused at build time and only key/value encoding (the
// paper's Sections III-IV) can shrink the median query's intermediate data.
// The distributive max query runs the same dataset under every key geometry
// with combining off and on, proving the output bytes identical and
// recording the shuffle reduction.

import (
	"fmt"

	"scikey/internal/mapreduce"
	"scikey/internal/obs"
	"scikey/internal/scihadoop"
)

// E16Row compares one max workload with in-node combining off and on.
type E16Row struct {
	// Workload is "max/simple", "max/agg", or "max/boxes".
	Workload string
	// ShuffleBytesOff / ShuffleBytesOn are segment bytes fetched by
	// reducers without and with combining.
	ShuffleBytesOff int64
	ShuffleBytesOn  int64
	// ReductionPct is the shuffle-byte reduction from combining.
	ReductionPct float64
	// MergedRecords counts records folded away; SavedBytes the segment
	// bytes removed (the engine's scikey_combine_* counters).
	MergedRecords int64
	SavedBytes    int64
	// OutputsIdentical: the combined run's output files are byte-identical
	// to the uncombined run's.
	OutputsIdentical bool
}

// E16Result is the in-node combining experiment.
type E16Result struct {
	// MedianRefusal is the build-time error for the paper's median query
	// with combining requested: holistic operators have no value monoid,
	// so their intermediate data is irreducible by combining — the very
	// premise of the paper's encoding-based attack.
	MedianRefusal string
	// Rows are the distributive max workloads, one per key geometry.
	Rows []E16Row
}

// E16InNodeCombining runs the combining experiment on a side×side dataset.
// All map tasks share one combine buffer (CombineNodes=1): the runs are
// in-process, so the single-node grouping is the honest placement, and it
// lets the simple-key workload — whose per-task duplicates the map-side
// combiner already folds — meet its cross-task halo duplicates.
func E16InNodeCombining(side int, ob *obs.Observer) (E16Result, error) {
	fs, qcfg, err := MedianSetup(side)
	if err != nil {
		return E16Result{}, err
	}
	qcfg.Obs = ob

	var out E16Result
	medCfg := qcfg
	medCfg.Op = scihadoop.Median
	medCfg.Combine = true
	if _, _, err := scihadoop.SimpleKeyJob(fs, medCfg); err == nil {
		return E16Result{}, fmt.Errorf("e16: median accepted combining; holistic refusal is broken")
	} else {
		out.MedianRefusal = err.Error()
	}

	build := func(cfg scihadoop.QueryConfig, kind string) (*mapreduce.Job, error) {
		switch kind {
		case "simple":
			job, _, err := scihadoop.SimpleKeyJob(fs, cfg)
			return job, err
		case "agg":
			job, _, err := scihadoop.AggKeyJob(fs, cfg)
			return job, err
		default:
			job, err := scihadoop.BoxKeyJob(fs, cfg)
			return job, err
		}
	}

	for _, kind := range []string{"simple", "agg", "boxes"} {
		run := func(combine bool) (*mapreduce.Counters, string, error) {
			cfg := qcfg
			cfg.Op = scihadoop.Max
			cfg.Combine = combine
			cfg.CombineNodes = 1
			if !combine {
				cfg.CombineNodes = 0
			}
			cfg.OutputPath = fmt.Sprintf("/out/e16-%s-%v", kind, combine)
			job, err := build(cfg, kind)
			if err != nil {
				return nil, "", err
			}
			res, err := mapreduce.Run(job)
			if err != nil {
				return nil, "", err
			}
			return res.Counters, cfg.OutputPath, nil
		}
		off, offPath, err := run(false)
		if err != nil {
			return E16Result{}, fmt.Errorf("e16 %s uncombined: %w", kind, err)
		}
		on, onPath, err := run(true)
		if err != nil {
			return E16Result{}, fmt.Errorf("e16 %s combined: %w", kind, err)
		}
		identical, err := outputsEqual(fs, offPath, fs, onPath)
		if err != nil {
			return E16Result{}, err
		}
		so, sn := off.ReduceShuffleBytes.Value(), on.ReduceShuffleBytes.Value()
		row := E16Row{
			Workload:         "max/" + kind,
			ShuffleBytesOff:  so,
			ShuffleBytesOn:   sn,
			MergedRecords:    on.CombineMergedRecords.Value(),
			SavedBytes:       on.CombineSavedBytes.Value(),
			OutputsIdentical: identical,
		}
		if so > 0 {
			row.ReductionPct = 100 * float64(so-sn) / float64(so)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
