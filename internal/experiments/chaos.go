package experiments

import (
	"fmt"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/core"
	"scikey/internal/faults"
	"scikey/internal/hdfs"
	"scikey/internal/mapreduce"
	"scikey/internal/obs"
)

// E13Schedules are the chaos-soak fault schedules: each exercises a
// different networked-shuffle failure mode, and every run must still produce
// output byte-identical to the fault-free in-memory shuffle.
var E13Schedules = []struct {
	Name     string
	Schedule string
}{
	// Every segment's first fetch attempt is cut mid-chunk: the retry must
	// resume from the verified prefix.
	{"cut-all", "seed=13;net:*:cut@0"},
	// Probabilistic mixture of refused connections and short server stalls.
	{"flaky", "seed=13;net:*:refuse@0%0.5;net:*:stall=40ms@1%0.3"},
	// Truncated streams plus in-flight corruption caught by chunk CRCs.
	{"dirty", "seed=13;net:*:truncate@0%0.5;net:*:corrupt@1%0.3"},
	// A whole node vanishes for a window: fetch budgets exhaust, the engine
	// declares the map output lost and re-executes the producer.
	{"node-outage", "seed=13;node:1:down=60ms"},
}

// E13Run is one chaos schedule's outcome.
type E13Run struct {
	Name     string
	Schedule string
	Report   *core.Report
	// OutputsIdentical is true when every output part file matches the
	// fault-free in-memory run byte for byte.
	OutputsIdentical bool
}

// E13Result is the chaos soak: the clean in-memory baseline plus one run per
// schedule over the networked shuffle.
type E13Result struct {
	Clean *core.Report
	Runs  []E13Run
}

// E13ChaosSoak runs the sliding-median query over the networked shuffle
// transport under each chaos schedule and checks the robustness invariant:
// with a sufficient retry budget, deadlines + retry/backoff + partial-fetch
// resume + producer re-execution reconstruct the exact fault-free result, so
// chaos shows up only in the transport and waste counters — never in the
// output bytes or payload counters.
//
// When ob is non-nil every run (clean baseline and each chaos schedule)
// traces into it, so the resulting timeline shows retried, speculative, and
// faulted attempt spans side by side with the clean run; nil disables
// observability.
func E13ChaosSoak(side int, ob *obs.Observer) (E13Result, error) {
	clus := cluster.Paper()
	run := func(outPath, schedule string, sc *mapreduce.ShuffleConfig) (*core.Report, *hdfs.FileSystem, error) {
		fs, qcfg, err := MedianSetup(side)
		if err != nil {
			return nil, nil, err
		}
		qcfg.OutputPath = outPath
		qcfg.Shuffle = sc
		qcfg.Obs = ob
		if schedule != "" {
			inj, err := faults.NewFromSpec(schedule)
			if err != nil {
				return nil, nil, err
			}
			qcfg.Faults = inj
			qcfg.Retry = mapreduce.RetryPolicy{
				MaxAttempts: 8,
				Backoff:     5 * time.Millisecond,
				BackoffMax:  100 * time.Millisecond,
				Seed:        13,
			}
		}
		rep, err := core.RunQuery(fs, qcfg, core.Strategy{Kind: core.Baseline}, clus, false)
		return rep, fs, err
	}

	clean, cleanFS, err := run("/out/clean", "", nil)
	if err != nil {
		return E13Result{}, err
	}

	res := E13Result{Clean: clean}
	for _, s := range E13Schedules {
		sc := &mapreduce.ShuffleConfig{
			Mode: mapreduce.ShuffleNet,
			// Small chunks make mid-stream faults land inside transfers, so
			// resume-from-verified-offset actually carries bytes forward.
			ChunkBytes:    1024,
			FetchAttempts: 3,
		}
		out := "/out/chaos-" + s.Name
		rep, fs, err := run(out, s.Schedule, sc)
		if err != nil {
			return E13Result{}, fmt.Errorf("chaos schedule %q not survived: %w", s.Name, err)
		}
		if rep.ShuffleFetchRetries == 0 && rep.RecoveredMaps == 0 {
			return E13Result{}, fmt.Errorf("chaos schedule %q fired no faults", s.Name)
		}
		identical, err := outputsEqual(cleanFS, "/out/clean/", fs, out+"/")
		if err != nil {
			return E13Result{}, err
		}
		res.Runs = append(res.Runs, E13Run{
			Name:             s.Name,
			Schedule:         s.Schedule,
			Report:           rep,
			OutputsIdentical: identical,
		})
	}
	return res, nil
}
