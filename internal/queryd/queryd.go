package queryd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"scikey/internal/cluster"
	"scikey/internal/core"
	"scikey/internal/hdfs"
	"scikey/internal/mapreduce"
	"scikey/internal/obs"
	"scikey/internal/store"
)

// QuotaError is the typed admission rejection: the tenant's remaining quota
// cannot absorb the query's predicted cost. It is returned immediately at
// Submit — a rejected query never occupies a queue slot.
type QuotaError struct {
	Tenant           string
	PredictedSeconds float64
	RemainingSeconds float64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("queryd: tenant %q over quota: predicted cost %.2fs exceeds remaining quota %.2fs",
		e.Tenant, e.PredictedSeconds, e.RemainingSeconds)
}

// QueueFullError is the typed backpressure rejection: the bounded job queue
// has no free slot. Submit fails fast instead of blocking the caller.
type QueueFullError struct {
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("queryd: job queue full (depth %d)", e.Depth)
}

// ErrClosed reports a Submit after Close.
var errClosed = fmt.Errorf("queryd: service is closed")

// Config parameterizes a Service.
type Config struct {
	// Store backs the shared segment cache. Nil disables caching.
	Store store.Store
	// Obs records service metrics (scikey_cache_*, scikey_tenant_*) and the
	// executed jobs' traces. Nil disables observability.
	Obs *obs.Observer
	// Cluster is the base cost model for admission pricing. The zero value
	// means cluster.Paper(). The service re-fits its bandwidths from
	// completed runs' calibration samples as evidence accumulates.
	Cluster cluster.Config
	// QueueDepth bounds queued-but-not-executing queries (default 16).
	QueueDepth int
	// Workers is the executor goroutine count (default 2).
	Workers int
	// DefaultQuotaSeconds is each tenant's modeled-seconds budget when not
	// listed in Quotas (0 means unlimited).
	DefaultQuotaSeconds float64
	// Quotas overrides per-tenant budgets in modeled seconds.
	Quotas map[string]float64
}

// Response reports one completed query.
type Response struct {
	// Report is the full strategy report (output cells omitted).
	Report *core.Report `json:"report"`
	// OutputSHA is the hex sha256 over the job's output files in partition
	// order — the byte-identity handle differential tests compare.
	OutputSHA string `json:"output_sha"`
	// CacheHit reports that the map phase was restored from the segment
	// cache rather than executed.
	CacheHit bool `json:"cache_hit"`
	// PredictedSeconds is the admission-time cost estimate; ChargedSeconds
	// is the observed modeled cost debited from the tenant's quota.
	PredictedSeconds float64 `json:"predicted_seconds"`
	ChargedSeconds   float64 `json:"charged_seconds"`
	// Tenant echoes the accounting tenant ("default" when unset).
	Tenant string `json:"tenant"`
}

// tenantState tracks one tenant's quota spend.
type tenantState struct {
	quota float64 // modeled seconds; <= 0 means unlimited
	spent float64

	submitted obs.Counter
	rejected  obs.Counter
	completed obs.Counter
	failed    obs.Counter
	costMS    obs.Counter
}

// Service is the resident query daemon: admission control in Submit, a
// bounded queue feeding executor goroutines, and a shared segment cache
// that lets identical queries skip the map phase.
type Service struct {
	cfg   Config
	cache *SegmentCache
	queue chan *request
	wg    sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	tenants map[string]*tenantState
	clus    cluster.Config // current (possibly re-fit) cost model
	samples []cluster.CalSample
	// costByKey remembers the observed modeled cost of completed cache
	// keys: the best admission predictor for a repeated query is the last
	// identical run.
	costByKey map[string]float64
	// flights serializes cold executions per cache key (singleflight): two
	// identical queries racing on a cold key run exactly one map phase —
	// the second waits, then hits the cache the first just filled.
	flights map[string]*sync.Mutex

	// holdExec, when non-nil (tests only), gates executors: each request
	// blocks here before running, letting a test fill the queue
	// deterministically.
	holdExec chan struct{}
}

// request is one admitted query waiting for an executor.
type request struct {
	spec QuerySpec
	done chan result
}

type result struct {
	resp *Response
	err  error
}

// New starts a Service.
func New(cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Cluster == (cluster.Config{}) {
		cfg.Cluster = cluster.Paper()
	}
	s := &Service{
		cfg:       cfg,
		queue:     make(chan *request, cfg.QueueDepth),
		tenants:   make(map[string]*tenantState),
		clus:      cfg.Cluster,
		costByKey: make(map[string]float64),
		flights:   make(map[string]*sync.Mutex),
	}
	if cfg.Store != nil {
		s.cache = NewSegmentCache(cfg.Store, cfg.Obs.R())
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Close drains the queue and stops the executors. Queued requests still
// complete; new Submits fail.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// tenant returns (creating if needed) the named tenant's state. Callers
// hold s.mu.
func (s *Service) tenant(name string) *tenantState {
	if name == "" {
		name = "default"
	}
	t, ok := s.tenants[name]
	if !ok {
		quota := s.cfg.DefaultQuotaSeconds
		if q, ok := s.cfg.Quotas[name]; ok {
			quota = q
		}
		reg := s.cfg.Obs.R()
		lbl := obs.L("tenant", name)
		t = &tenantState{
			quota:     quota,
			submitted: reg.Counter("scikey_tenant_submitted_total", "Queries submitted per tenant", "", lbl),
			rejected:  reg.Counter("scikey_tenant_rejected_total", "Queries rejected at admission per tenant (quota or queue)", "", lbl),
			completed: reg.Counter("scikey_tenant_completed_total", "Queries completed per tenant", "", lbl),
			failed:    reg.Counter("scikey_tenant_failed_total", "Queries failed during execution per tenant", "", lbl),
			costMS:    reg.Counter("scikey_tenant_cost_ms_total", "Modeled cost charged per tenant, in milliseconds", "ms", lbl),
		}
		s.tenants[name] = t
	}
	return t
}

// predictCost estimates a spec's modeled cost in seconds, for admission.
// A completed identical query (same cache key) is the best predictor; for
// unseen keys the cost model prices the dataset's byte volume — every map
// task scans its slice of side²·4 input bytes, and the reduce side moves a
// window-multiplied volume — a deliberately coarse prior that re-fit
// bandwidths sharpen over time.
func (s *Service) predictCost(spec QuerySpec) float64 {
	s.mu.Lock()
	clus := s.clus
	known, ok := s.costByKey[spec.CacheKey()]
	s.mu.Unlock()
	if ok && spec.CacheKey() != "" {
		return known
	}
	inputBytes := int64(spec.Side) * int64(spec.Side) * 4
	splits, reducers := spec.Splits, spec.Reducers
	if splits <= 0 {
		splits = 10
	}
	if reducers <= 0 {
		reducers = 5
	}
	radius := spec.Radius
	if radius <= 0 {
		radius = 1
	}
	window := int64(2*radius+1) * int64(2*radius+1)
	maps := make([]cluster.Task, splits)
	for i := range maps {
		per := inputBytes / int64(splits)
		maps[i] = cluster.Task{DiskBytes: per * (1 + window), NetBytes: 0}
	}
	reds := make([]cluster.Task, reducers)
	for i := range reds {
		per := inputBytes * window / int64(reducers)
		reds[i] = cluster.Task{DiskBytes: per, NetBytes: per}
	}
	return clus.EstimateJob(maps, reds).Total()
}

// Submit validates, admits, enqueues, and waits for one query. Rejections
// are typed: *QuotaError when predicted cost exceeds the tenant's remaining
// quota, *QueueFullError when the bounded queue is full. Both return
// immediately — a rejected or failed query never stalls the caller.
func (s *Service) Submit(spec QuerySpec) (*Response, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Faults != "" {
		return nil, fmt.Errorf("queryd: fault injection is not accepted by the resident service; run faulty jobs one-shot")
	}
	predicted := s.predictCost(spec)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClosed
	}
	t := s.tenant(spec.Tenant)
	t.submitted.Add(1)
	if t.quota > 0 {
		remaining := t.quota - t.spent
		if predicted > remaining {
			t.rejected.Add(1)
			s.mu.Unlock()
			return nil, &QuotaError{
				Tenant:           tenantName(spec.Tenant),
				PredictedSeconds: predicted,
				RemainingSeconds: remaining,
			}
		}
	}
	s.mu.Unlock()

	req := &request{spec: spec, done: make(chan result, 1)}
	select {
	case s.queue <- req:
	default:
		s.mu.Lock()
		t.rejected.Add(1)
		s.mu.Unlock()
		return nil, &QueueFullError{Depth: s.cfg.QueueDepth}
	}
	r := <-req.done
	if r.resp != nil {
		r.resp.PredictedSeconds = predicted
	}
	return r.resp, r.err
}

func tenantName(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// executor drains the queue until Close.
func (s *Service) executor() {
	defer s.wg.Done()
	for req := range s.queue {
		if s.holdExec != nil {
			<-s.holdExec
		}
		resp, err := s.run(req.spec)
		req.done <- result{resp: resp, err: err}
	}
}

// flight returns the singleflight mutex for a cache key.
func (s *Service) flight(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.flights[key]
	if !ok {
		m = &sync.Mutex{}
		s.flights[key] = m
	}
	return m
}

// run executes one admitted query. Cold identical queries serialize per
// cache key so exactly one runs the map phase; everything else (different
// keys, warm keys) runs concurrently up to the worker count.
func (s *Service) run(spec QuerySpec) (*Response, error) {
	key := spec.CacheKey()
	if s.cache != nil && key != "" {
		// Warm path: a cached snapshot means no map work, so skip the
		// flight lock and run immediately.
		if _, ok := s.cache.store.Stat(storeKey(key)); ok != nil {
			// Cold: serialize with other cold submissions of the same key.
			m := s.flight(key)
			m.Lock()
			defer m.Unlock()
		}
	}
	return s.execute(spec, key)
}

// execute builds and runs the job, hashes its output, and settles quota
// accounting.
func (s *Service) execute(spec QuerySpec, key string) (*Response, error) {
	fs, qcfg, strat, err := spec.Setup()
	if err != nil {
		return nil, err
	}
	qcfg.Obs = s.cfg.Obs
	if s.cache != nil && key != "" {
		qcfg.MapCache = s.cache
		qcfg.CacheKey = key
	}
	s.mu.Lock()
	clus := s.clus
	t := s.tenant(spec.Tenant)
	s.mu.Unlock()

	rep, res, err := core.RunQueryResult(fs, qcfg, strat, clus, false)
	if err != nil {
		s.mu.Lock()
		t.failed.Add(1)
		s.mu.Unlock()
		return nil, err
	}
	sha, err := OutputSHA(fs, res)
	if err != nil {
		return nil, err
	}

	charged := rep.Estimate.Total()
	s.mu.Lock()
	t.spent += charged
	t.completed.Add(1)
	t.costMS.Add(int64(charged * 1000))
	if key != "" {
		s.costByKey[key] = charged
	}
	// Recalibrate the cost model as real samples accumulate; Fit errors
	// (all-CPU runs with no I/O residual) keep the current model.
	s.samples = append(s.samples, res.CalSamples...)
	if fitted, err := s.clus.Fit(s.samples); err == nil {
		s.clus = fitted
	}
	s.mu.Unlock()

	return &Response{
		Report:    rep,
		OutputSHA: sha,
		CacheHit:  rep.MapPhaseCached,
		// PredictedSeconds is stamped by Submit.
		ChargedSeconds: charged,
		Tenant:         tenantName(spec.Tenant),
	}, nil
}

// TenantSpent reports a tenant's accumulated modeled-seconds charge.
func (s *Service) TenantSpent(tenant string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenantName(tenant)]; ok {
		return t.spent
	}
	return 0
}

// OutputSHA hashes a result's output files — partition order, contents
// only — into the byte-identity handle one-shot runs print and service
// responses carry.
func OutputSHA(fs *hdfs.FileSystem, res *mapreduce.Result) (string, error) {
	h := sha256.New()
	paths := append([]string(nil), res.OutputPaths...)
	sort.Strings(paths)
	for _, p := range paths {
		data, err := fs.ReadAll(p)
		if err != nil {
			return "", fmt.Errorf("queryd: hashing output %s: %w", p, err)
		}
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
