// Package queryd is the resident multi-tenant query service: a long-lived
// daemon that accepts sliding-window query specs, prices them with the
// calibrated cluster cost model before admission, bounds concurrent work
// with a job queue, and reuses published map output across identical
// queries through a shared segment cache over a pluggable store.Store —
// repeated queries over a hot (dataset, split, transform, codec) key skip
// the map phase entirely while returning byte-identical results.
package queryd

import (
	"fmt"
	"strings"

	"scikey/internal/core"
	"scikey/internal/experiments"
	"scikey/internal/faults"
	"scikey/internal/hdfs"
	"scikey/internal/scihadoop"
)

// QuerySpec is the wire description of one query — the same JSON shape the
// cluster coordinator pushes to workers, extended with the submitting
// tenant. It carries exactly the inputs needed to rebuild the job
// deterministically: dataset generation is a pure function of Side, so
// every process (one-shot CLI, service executor, cluster worker) that sets
// up the same spec reads byte-identical input and produces byte-identical
// output.
type QuerySpec struct {
	Side     int    `json:"side"`
	Strategy string `json:"strategy"`
	Codec    string `json:"codec,omitempty"`
	// CodecWorkers sets the block+ codec's pipeline width. Any width
	// produces the same bytes (position-determined framing), so it shapes
	// wall-clock only — and is excluded from the cache key for the same
	// reason.
	CodecWorkers int    `json:"codec_workers,omitempty"`
	Curve        string `json:"curve,omitempty"`
	Flush        int    `json:"flush,omitempty"`
	Op           string `json:"op"`
	// Combine/CombineNodes enable in-node combining. Both travel in the
	// spec so every process builds the identical job.
	Combine      bool `json:"combine,omitempty"`
	CombineNodes int  `json:"combine_nodes,omitempty"`
	Radius       int  `json:"radius"`
	Splits       int  `json:"splits"`
	Reducers     int  `json:"reducers"`
	// Faults is the full fault schedule string. A spec with faults is never
	// cached (fault schedules and cached output don't mix) and is rejected
	// by the service.
	Faults string `json:"faults,omitempty"`
	// Tenant names the submitting tenant for quota accounting. Empty means
	// the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// ParseStrategy maps the CLI/wire spelling of a strategy to core's terms.
// Every front end parses the same spelling through here, so the one-shot
// CLI, the service, and cluster workers cannot drift.
func ParseStrategy(name, codecName, curve string, flush int) (core.Strategy, error) {
	switch name {
	case "baseline":
		return core.Strategy{Kind: core.Baseline}, nil
	case "transform":
		return core.Strategy{Kind: core.ByteTransform, Codec: codecName}, nil
	case "aggregation":
		return core.Strategy{Kind: core.Aggregation, Curve: curve, FlushCells: flush}, nil
	case "boxes":
		return core.Strategy{Kind: core.BoxAggregation, FlushCells: flush}, nil
	default:
		return core.Strategy{}, fmt.Errorf("unknown strategy %q (want baseline, transform, aggregation, or boxes)", name)
	}
}

// ParsedStrategy resolves the spec's strategy fields.
func (s QuerySpec) ParsedStrategy() (core.Strategy, error) {
	return ParseStrategy(s.Strategy, s.Codec, s.Curve, s.Flush)
}

// queryConfig builds the spec's QueryConfig shape without any dataset
// machinery — what validation needs.
func (s QuerySpec) queryConfig() (scihadoop.QueryConfig, error) {
	qcfg := scihadoop.QueryConfig{
		NumSplits:    s.Splits,
		NumReducers:  s.Reducers,
		Radius:       s.Radius,
		CodecWorkers: s.CodecWorkers,
		Combine:      s.Combine,
		CombineNodes: s.CombineNodes,
	}
	switch s.Op {
	case "median", "":
		qcfg.Op = scihadoop.Median
	case "max":
		qcfg.Op = scihadoop.Max
	default:
		return qcfg, fmt.Errorf("unknown op %q (want median or max)", s.Op)
	}
	return qcfg, nil
}

// Validate rejects a spec every execution path would reject, with the same
// error text core.BuildJob produces — the contract that keeps one-shot
// early validation and wire-spec validation identical.
func (s QuerySpec) Validate() error {
	strat, err := s.ParsedStrategy()
	if err != nil {
		return err
	}
	if s.Side <= 0 {
		return fmt.Errorf("queryd: side must be > 0, got %d", s.Side)
	}
	qcfg, err := s.queryConfig()
	if err != nil {
		return err
	}
	if s.Faults != "" {
		if _, err := faults.NewFromSpec(s.Faults); err != nil {
			return err
		}
	}
	return core.ValidateQuery(qcfg, strat)
}

// Setup rebuilds the filesystem, query config, and strategy the spec names.
// Every execution path goes through here, so no two sides can drift.
func (s QuerySpec) Setup() (*hdfs.FileSystem, scihadoop.QueryConfig, core.Strategy, error) {
	strat, err := s.ParsedStrategy()
	if err != nil {
		return nil, scihadoop.QueryConfig{}, core.Strategy{}, err
	}
	fs, qcfg, err := experiments.MedianSetup(s.Side)
	if err != nil {
		return nil, scihadoop.QueryConfig{}, core.Strategy{}, err
	}
	shape, err := s.queryConfig()
	if err != nil {
		return nil, scihadoop.QueryConfig{}, core.Strategy{}, err
	}
	qcfg.NumSplits = shape.NumSplits
	qcfg.NumReducers = shape.NumReducers
	qcfg.Radius = shape.Radius
	qcfg.CodecWorkers = shape.CodecWorkers
	qcfg.Op = shape.Op
	qcfg.Combine = shape.Combine
	qcfg.CombineNodes = shape.CombineNodes
	qcfg.OutputPath = "/out/scijob"
	if s.Faults != "" {
		inj, err := faults.NewFromSpec(s.Faults)
		if err != nil {
			return nil, scihadoop.QueryConfig{}, core.Strategy{}, err
		}
		qcfg.Faults = inj
	}
	return fs, qcfg, strat, nil
}

// CacheKey derives the spec's map-output cache key: a canonical string over
// every input that shapes published map-output bytes — dataset (side),
// strategy+codec, operator, curve, flush threshold, window radius, split
// and reducer counts, and the in-node combining configuration. It
// deliberately EXCLUDES CodecWorkers (block+ framing is
// position-determined: every width yields identical bytes), Tenant (cache
// entries are shared across tenants — same bytes either way), and returns
// "" for a spec with faults, disabling caching (fault schedules must
// execute real attempts).
func (s QuerySpec) CacheKey() string {
	if s.Faults != "" {
		return ""
	}
	strat, err := s.ParsedStrategy()
	if err != nil {
		return ""
	}
	op := s.Op
	if op == "" {
		op = "median"
	}
	// Normalize the defaults BuildJob applies, so "transform" and
	// "transform -codec zlib" (identical bytes) share a key.
	cdc := strings.ToLower(strat.Codec)
	if strat.Kind == core.ByteTransform && cdc == "" {
		cdc = "zlib"
	}
	return fmt.Sprintf("v1|side=%d|strat=%s|codec=%s|op=%s|curve=%s|flush=%d|radius=%d|splits=%d|reducers=%d|combine=%t|combine-nodes=%d",
		s.Side, s.Strategy, cdc, op, strat.Curve,
		s.Flush, s.Radius, s.Splits, s.Reducers, s.Combine, s.CombineNodes)
}
