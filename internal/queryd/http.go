package queryd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
)

// Server exposes a Service over HTTP: POST /query executes a QuerySpec,
// GET /metrics scrapes Prometheus text, GET /healthz answers liveness.
type Server struct {
	svc *Service
	ln  net.Listener
	srv *http.Server
}

// NewServer binds addr (pass host:0 for an ephemeral port) and serves in
// the background until Close.
func NewServer(addr string, svc *Service) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("queryd: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	s := &Server{svc: svc, ln: ln, srv: &http.Server{Handler: mux}}
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address — the concrete port when addr was :0.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP listener and then the service (draining its queue).
func (s *Server) Close() {
	_ = s.srv.Close()
	s.svc.Close()
}

// errorBody is the JSON error envelope, carrying the typed-rejection kind
// so clients can branch without parsing message text.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var spec QuerySpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad query spec: " + err.Error()})
		return
	}
	resp, err := s.svc.Submit(spec)
	if err != nil {
		var qe *QuotaError
		var fe *QueueFullError
		switch {
		case errors.As(err, &qe):
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Kind: "quota"})
		case errors.As(err, &fe):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), Kind: "queue_full"})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.svc.cfg.Obs.R()
	if reg == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
