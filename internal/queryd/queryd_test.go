package queryd

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/core"
	"scikey/internal/hdfs"
	"scikey/internal/obs"
	"scikey/internal/store"
)

// testSpec is the small-but-real query every service test submits: explicit
// splits/reducers so the cache key is fully pinned.
func testSpec() QuerySpec {
	return QuerySpec{
		Side:     24,
		Strategy: "transform",
		Codec:    "block+zlib",
		Op:       "median",
		Radius:   1,
		Splits:   4,
		Reducers: 2,
	}
}

// serviceBackends builds one fresh Store per pluggable backend.
func serviceBackends() map[string]func() store.Store {
	return map[string]func() store.Store{
		"local": func() store.Store {
			fs := hdfs.New(64<<20, 3, []string{"s0", "s1", "s2"})
			return store.NewLocal(fs, "/store")
		},
		"object": func() store.Store { return store.NewObject() },
	}
}

// mapAttempts reads the map-phase attempt histogram count — zero added
// attempts is the observable proof that a run skipped the map phase.
func mapAttempts(o *obs.Observer) int64 {
	return o.R().Histogram("scikey_attempt_seconds",
		"Duration of task attempts by phase", "seconds", nil, obs.L("phase", "map")).Count()
}

// oneShotSHA runs the spec outside any service — the independent baseline a
// cached response must match byte for byte.
func oneShotSHA(t *testing.T, spec QuerySpec) string {
	t.Helper()
	fs, qcfg, strat, err := spec.Setup()
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	_, res, err := core.RunQueryResult(fs, qcfg, strat, cluster.Paper(), false)
	if err != nil {
		t.Fatalf("one-shot run: %v", err)
	}
	sha, err := OutputSHA(fs, res)
	if err != nil {
		t.Fatalf("one-shot sha: %v", err)
	}
	return sha
}

// TestServiceCacheHitBothBackends: on each Store backend, a repeated
// identical query must skip the map phase (CacheHit, zero new map attempts)
// and return output byte-identical to both the cold run and an independent
// one-shot execution.
func TestServiceCacheHitBothBackends(t *testing.T) {
	spec := testSpec()
	want := oneShotSHA(t, spec)
	for name, mk := range serviceBackends() {
		t.Run(name, func(t *testing.T) {
			ob := obs.New()
			svc := New(Config{Store: mk(), Obs: ob})
			defer svc.Close()

			cold, err := svc.Submit(spec)
			if err != nil {
				t.Fatalf("cold submit: %v", err)
			}
			if cold.CacheHit {
				t.Fatal("cold run reported a cache hit")
			}
			if cold.OutputSHA != want {
				t.Fatalf("cold sha %s != one-shot sha %s", cold.OutputSHA, want)
			}
			after := mapAttempts(ob)
			if after != int64(spec.Splits) {
				t.Fatalf("cold run scheduled %d map attempts, want %d", after, spec.Splits)
			}

			warm, err := svc.Submit(spec)
			if err != nil {
				t.Fatalf("warm submit: %v", err)
			}
			if !warm.CacheHit {
				t.Fatal("warm run missed the cache")
			}
			if warm.OutputSHA != want {
				t.Fatalf("warm sha %s != one-shot sha %s", warm.OutputSHA, want)
			}
			if n := mapAttempts(ob); n != after {
				t.Fatalf("warm run scheduled %d new map attempts, want 0", n-after)
			}
			if hits := ob.R().Counter("scikey_cache_hit_total", "Map-output cache hits", "").Value(); hits != 1 {
				t.Fatalf("scikey_cache_hit_total = %d, want 1", hits)
			}
		})
	}
}

// TestServiceColdRaceSingleflight: two identical queries racing on a cold
// key must run exactly one map phase — the loser waits on the per-key
// flight lock, then restores the winner's freshly cached segments — and
// both must return byte-identical output.
func TestServiceColdRaceSingleflight(t *testing.T) {
	spec := testSpec()
	ob := obs.New()
	svc := New(Config{Store: store.NewObject(), Obs: ob, Workers: 2})
	defer svc.Close()

	var wg sync.WaitGroup
	resps := make([]*Response, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = svc.Submit(spec)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	if resps[0].OutputSHA != resps[1].OutputSHA {
		t.Fatalf("racers diverged: %s vs %s", resps[0].OutputSHA, resps[1].OutputSHA)
	}
	if n := mapAttempts(ob); n != int64(spec.Splits) {
		t.Fatalf("race ran %d map attempts total, want exactly %d (one map phase)", n, spec.Splits)
	}
	hit := 0
	for _, r := range resps {
		if r.CacheHit {
			hit++
		}
	}
	if hit != 1 {
		t.Fatalf("%d racers hit the cache, want exactly 1 (the flight loser)", hit)
	}
}

// TestServiceQuotaRejection: a tenant whose remaining quota is below the
// predicted cost gets an immediate typed *QuotaError — not a stall, not a
// queue slot — while a tenant with headroom sails through.
func TestServiceQuotaRejection(t *testing.T) {
	spec := testSpec()
	spec.Tenant = "starved"
	svc := New(Config{
		Store:  store.NewObject(),
		Obs:    obs.New(),
		Quotas: map[string]float64{"starved": 1e-12},
	})
	defer svc.Close()

	done := make(chan struct{})
	var resp *Response
	var err error
	go func() {
		resp, err = svc.Submit(spec)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("over-quota submit stalled instead of rejecting")
	}
	if resp != nil {
		t.Fatal("over-quota submit returned a response")
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("error %v (%T) is not a *QuotaError", err, err)
	}
	if qe.Tenant != "starved" || qe.PredictedSeconds <= qe.RemainingSeconds {
		t.Fatalf("quota error fields inconsistent: %+v", qe)
	}
	if spent := svc.TenantSpent("starved"); spent != 0 {
		t.Fatalf("rejected tenant was charged %v seconds", spent)
	}

	// An unlimited tenant runs the same spec fine and gets charged.
	spec.Tenant = "funded"
	if _, err := svc.Submit(spec); err != nil {
		t.Fatalf("funded submit: %v", err)
	}
	if spent := svc.TenantSpent("funded"); spent <= 0 {
		t.Fatal("completed query charged nothing")
	}
}

// TestServiceQueueFull: with one executor held and the one-slot queue
// occupied, the next submit fails fast with a typed *QueueFullError; the
// held work still completes once released.
func TestServiceQueueFull(t *testing.T) {
	svc := New(Config{Store: store.NewObject(), Obs: obs.New(), Workers: 1, QueueDepth: 1})
	defer svc.Close()
	hold := make(chan struct{})
	svc.holdExec = hold

	spec := testSpec()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	submit := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = svc.Submit(spec)
		}()
	}

	// First query: wait until the (held) executor has drained it from the
	// queue. Second query: wait until it occupies the only queue slot.
	submit(0)
	waitFor(t, func() bool { return len(svc.queue) == 0 })
	submit(1)
	waitFor(t, func() bool { return len(svc.queue) == 1 })

	_, err := svc.Submit(spec)
	var fe *QueueFullError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v (%T) is not a *QueueFullError", err, err)
	}
	if fe.Depth != 1 {
		t.Fatalf("QueueFullError.Depth = %d, want 1", fe.Depth)
	}

	close(hold)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("held query %d failed: %v", i, err)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServiceRejectsFaultSpecs: fault schedules and cached output don't
// mix, so the resident service refuses them outright.
func TestServiceRejectsFaultSpecs(t *testing.T) {
	svc := New(Config{Obs: obs.New()})
	defer svc.Close()
	spec := testSpec()
	spec.Faults = "map:0:error@0"
	if _, err := svc.Submit(spec); err == nil || !strings.Contains(err.Error(), "fault injection") {
		t.Fatalf("faulty spec error = %v, want fault-injection rejection", err)
	}
}

// TestHTTPServer drives the full HTTP surface: POST /query twice (second is
// a cache hit with identical sha), typed 429 on quota exhaustion, and
// /metrics exposing the cache-hit counter.
func TestHTTPServer(t *testing.T) {
	svc := New(Config{
		Store:  store.NewObject(),
		Obs:    obs.New(),
		Quotas: map[string]float64{"starved": 1e-12},
	})
	srv, err := NewServer("127.0.0.1:0", svc)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr()

	post := func(spec QuerySpec) (*http.Response, []byte) {
		t.Helper()
		body, _ := json.Marshal(spec)
		resp, err := http.Post(url+"/query", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("POST /query: %v", err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		return resp, data
	}

	var cold, warm Response
	hr, body := post(testSpec())
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("cold POST: %d %s", hr.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatalf("cold decode: %v", err)
	}
	hr, body = post(testSpec())
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("warm POST: %d %s", hr.StatusCode, body)
	}
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatalf("warm decode: %v", err)
	}
	if !warm.CacheHit || warm.OutputSHA != cold.OutputSHA {
		t.Fatalf("warm response hit=%v sha=%s, want hit with sha %s", warm.CacheHit, warm.OutputSHA, cold.OutputSHA)
	}

	starved := testSpec()
	starved.Tenant = "starved"
	hr, body = post(starved)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota POST: %d %s, want 429", hr.StatusCode, body)
	}
	var eb struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Kind != "quota" {
		t.Fatalf("quota error kind = %q (err %v), want \"quota\"", eb.Kind, err)
	}

	mr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mr.Body.Close()
	metrics, _ := io.ReadAll(mr.Body)
	if !strings.Contains(string(metrics), "scikey_cache_hit_total 1") {
		t.Fatalf("metrics missing scikey_cache_hit_total 1:\n%s", metrics)
	}
}
