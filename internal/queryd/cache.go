package queryd

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"scikey/internal/cluster"
	"scikey/internal/mapreduce"
	"scikey/internal/obs"
	"scikey/internal/store"
)

// snapMagic and snapVersion open every encoded snapshot; a decode checks
// both plus a whole-blob CRC trailer before trusting any field, and any
// mismatch is a miss, never a failed query.
const (
	snapMagic   = 0x53434d53 // "SCMS"
	snapVersion = 1
)

// SegmentCache is the service's shared map-output cache: an engine-facing
// mapreduce.MapOutputCache that serializes MapPhaseSnapshots into a
// store.Store, one object per cache key. Swapping the backend (local HDFS
// directory vs S3-style object store) never changes the cached bytes.
type SegmentCache struct {
	store store.Store

	hits         obs.Counter
	misses       obs.Counter
	puts         obs.Counter
	decodeErrors obs.Counter
	entries      obs.Gauge
	bytes        obs.Gauge

	mu         sync.Mutex
	entryCount int64
	byteCount  int64
}

// NewSegmentCache builds a cache over s, registering its metric series in
// reg (nil disables metrics).
func NewSegmentCache(s store.Store, reg *obs.Registry) *SegmentCache {
	c := &SegmentCache{
		store:        s,
		hits:         reg.Counter("scikey_cache_hit_total", "Map-output cache hits", ""),
		misses:       reg.Counter("scikey_cache_miss_total", "Map-output cache misses", ""),
		puts:         reg.Counter("scikey_cache_put_total", "Map-output cache stores", ""),
		decodeErrors: reg.Counter("scikey_cache_decode_errors_total", "Cached snapshots that failed integrity checks (treated as misses)", ""),
		entries:      reg.Gauge("scikey_cache_entries", "Map-output cache entries stored by this process", ""),
		bytes:        reg.Gauge("scikey_cache_bytes", "Segment payload bytes held by this process's cache entries", ""),
	}
	// Adopt entries a previous incarnation left in a durable backend.
	if keys, err := s.List(cacheKeyPrefix); err == nil {
		for _, k := range keys {
			if n, err := s.Stat(k); err == nil {
				c.entryCount++
				c.byteCount += n
			}
		}
		c.entries.Set(c.entryCount)
		c.bytes.Set(c.byteCount)
	}
	return c
}

// cacheKeyPrefix namespaces cache objects inside the store.
const cacheKeyPrefix = "segcache/"

// storeKey hashes the engine cache key into a flat object name: keys are
// long canonical strings, and hashing keeps backends path-safe.
func storeKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return cacheKeyPrefix + hex.EncodeToString(sum[:])
}

// Get implements mapreduce.MapOutputCache. Store misses and snapshots that
// fail integrity checks both report a miss.
func (c *SegmentCache) Get(key string) (*mapreduce.MapPhaseSnapshot, bool) {
	if c == nil {
		return nil, false
	}
	blob, err := c.store.Get(storeKey(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	snap, err := decodeSnapshot(blob)
	if err != nil {
		c.decodeErrors.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return snap, true
}

// Put implements mapreduce.MapOutputCache.
func (c *SegmentCache) Put(key string, snap *mapreduce.MapPhaseSnapshot) error {
	if c == nil {
		return nil
	}
	sk := storeKey(key)
	prevBytes, statErr := c.store.Stat(sk)
	existed := statErr == nil
	if err := c.store.Put(sk, encodeSnapshot(snap)); err != nil {
		return err
	}
	n, err := c.store.Stat(sk)
	if err != nil {
		n = 0
	}
	c.puts.Add(1)
	c.mu.Lock()
	if existed {
		c.byteCount -= prevBytes
	} else {
		c.entryCount++
	}
	c.byteCount += n
	entries, bytes := c.entryCount, c.byteCount
	c.mu.Unlock()
	c.entries.Set(entries)
	c.bytes.Set(bytes)
	return nil
}

// encodeSnapshot serializes a snapshot: header, per-task rows, counters,
// and a CRC32 trailer over everything before it.
func encodeSnapshot(s *mapreduce.MapPhaseSnapshot) []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.BigEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.BigEndian.AppendUint64(b, v) }
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(v string) { u32(uint32(len(v))); b = append(b, v...) }
	bytes := func(v []byte) { u32(uint32(len(v))); b = append(b, v...) }

	u32(snapMagic)
	u32(snapVersion)
	u32(uint32(len(s.Segments)))
	u32(uint32(s.NumReducers))
	for i := range s.Segments {
		u32(uint32(s.Attempts[i]))
		i64(s.Footprints[i].DiskBytes)
		i64(s.Footprints[i].NetBytes)
		f64(s.Footprints[i].CPUSeconds)
		i64(s.InputBytes[i])
		f64(s.WallSeconds[i])
		u32(uint32(len(s.Hosts[i])))
		for _, h := range s.Hosts[i] {
			str(h)
		}
		u32(uint32(len(s.Segments[i])))
		for _, seg := range s.Segments[i] {
			i64(seg.Records)
			i64(int64(seg.Src))
			i64(int64(seg.Attempt))
			bytes(seg.Data)
		}
	}
	u32(uint32(len(s.Counters)))
	for _, v := range s.Counters {
		i64(v)
	}
	u32(crc32.ChecksumIEEE(b))
	return b
}

// decodeSnapshot parses an encoded snapshot, verifying magic, version, and
// the CRC trailer. Every length is bounds-checked so a truncated or corrupt
// blob errors instead of panicking.
func decodeSnapshot(b []byte) (*mapreduce.MapPhaseSnapshot, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("queryd: snapshot too short")
	}
	body, trailer := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != trailer {
		return nil, fmt.Errorf("queryd: snapshot CRC mismatch")
	}
	off := 0
	var derr error
	need := func(n int) bool {
		if derr != nil || off+n > len(body) {
			if derr == nil {
				derr = fmt.Errorf("queryd: snapshot truncated at offset %d", off)
			}
			return false
		}
		return true
	}
	u32 := func() uint32 {
		if !need(4) {
			return 0
		}
		v := binary.BigEndian.Uint32(body[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		if !need(8) {
			return 0
		}
		v := binary.BigEndian.Uint64(body[off:])
		off += 8
		return v
	}
	i64 := func() int64 { return int64(u64()) }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	str := func() string {
		n := int(u32())
		if !need(n) {
			return ""
		}
		v := string(body[off : off+n])
		off += n
		return v
	}
	bs := func() []byte {
		n := int(u32())
		if !need(n) {
			return nil
		}
		v := append([]byte(nil), body[off:off+n]...)
		off += n
		return v
	}

	if u32() != snapMagic {
		return nil, fmt.Errorf("queryd: bad snapshot magic")
	}
	if v := u32(); v != snapVersion {
		return nil, fmt.Errorf("queryd: unsupported snapshot version %d", v)
	}
	n := int(u32())
	s := &mapreduce.MapPhaseSnapshot{NumReducers: int(u32())}
	const maxTasks = 1 << 20
	if n < 0 || n > maxTasks {
		return nil, fmt.Errorf("queryd: implausible task count %d", n)
	}
	s.Segments = make([][]mapreduce.SegmentSnapshot, n)
	s.Attempts = make([]int, n)
	s.Footprints = make([]cluster.Task, n)
	s.InputBytes = make([]int64, n)
	s.Hosts = make([][]string, n)
	s.WallSeconds = make([]float64, n)
	for i := 0; i < n && derr == nil; i++ {
		s.Attempts[i] = int(u32())
		s.Footprints[i] = cluster.Task{DiskBytes: i64(), NetBytes: i64(), CPUSeconds: f64()}
		s.InputBytes[i] = i64()
		s.WallSeconds[i] = f64()
		nh := int(u32())
		if nh < 0 || nh > maxTasks {
			return nil, fmt.Errorf("queryd: implausible host count %d", nh)
		}
		for h := 0; h < nh && derr == nil; h++ {
			s.Hosts[i] = append(s.Hosts[i], str())
		}
		np := int(u32())
		if np < 0 || np > maxTasks {
			return nil, fmt.Errorf("queryd: implausible partition count %d", np)
		}
		s.Segments[i] = make([]mapreduce.SegmentSnapshot, 0, np)
		for p := 0; p < np && derr == nil; p++ {
			seg := mapreduce.SegmentSnapshot{Records: i64()}
			seg.Src = int(i64())
			seg.Attempt = int(i64())
			seg.Data = bs()
			s.Segments[i] = append(s.Segments[i], seg)
		}
	}
	nc := int(u32())
	if nc < 0 || nc > maxTasks {
		return nil, fmt.Errorf("queryd: implausible counter count %d", nc)
	}
	for i := 0; i < nc && derr == nil; i++ {
		s.Counters = append(s.Counters, i64())
	}
	if derr != nil {
		return nil, derr
	}
	if off != len(body) {
		return nil, fmt.Errorf("queryd: %d trailing snapshot bytes", len(body)-off)
	}
	return s, nil
}
