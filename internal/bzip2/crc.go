// Package bzip2 implements a bzip2 compressor. The Go standard library only
// decompresses bzip2; reproducing the paper's Fig. 3 (gzip vs bzip2, with
// and without the predictive transform) requires an encoder, so this
// package provides one: RLE1, Burrows-Wheeler transform via prefix-doubling
// rotation sort, move-to-front, zero-run (RUNA/RUNB) encoding, and
// multi-table canonical Huffman coding, bit-compatible with the reference
// format. Output round-trips through compress/bzip2.
package bzip2

// bzip2 uses the "plain" (non-reflected) CRC-32 with polynomial 0x04c11db7,
// initial value 0xffffffff and a final complement, processing each byte
// MSB-first. This differs from IEEE CRC-32 (hash/crc32), which is
// bit-reflected.

var crcTable [256]uint32

func init() {
	const poly = 0x04c11db7
	for i := 0; i < 256; i++ {
		c := uint32(i) << 24
		for j := 0; j < 8; j++ {
			if c&0x80000000 != 0 {
				c = c<<1 ^ poly
			} else {
				c <<= 1
			}
		}
		crcTable[i] = c
	}
}

// crc32 accumulates bzip2's CRC over p, starting from state c (pass
// 0xffffffff initially; complement the final state).
type blockCRC uint32

func newBlockCRC() blockCRC { return 0xffffffff }

func (c blockCRC) update(p []byte) blockCRC {
	v := uint32(c)
	for _, b := range p {
		v = v<<8 ^ crcTable[byte(v>>24)^b]
	}
	return blockCRC(v)
}

func (c blockCRC) updateByteRun(b byte, n int) blockCRC {
	v := uint32(c)
	for i := 0; i < n; i++ {
		v = v<<8 ^ crcTable[byte(v>>24)^b]
	}
	return blockCRC(v)
}

func (c blockCRC) sum() uint32 { return ^uint32(c) }

// combineStreamCRC folds a finished block's CRC into the running stream
// CRC: rotate left one bit, then XOR.
func combineStreamCRC(stream, block uint32) uint32 {
	return (stream<<1 | stream>>31) ^ block
}
