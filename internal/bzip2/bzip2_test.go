package bzip2

import (
	"bytes"
	stdbzip2 "compress/bzip2"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
)

// roundTrip compresses data and decodes it with the standard library's
// decompressor, the strongest available check of format conformance.
func roundTrip(t *testing.T, data []byte, level int) []byte {
	t.Helper()
	comp, err := Compress(data, level)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	back, err := io.ReadAll(stdbzip2.NewReader(bytes.NewReader(comp)))
	if err != nil {
		t.Fatalf("stdlib decode (input %d bytes, level %d): %v", len(data), level, err)
	}
	if !bytes.Equal(back, data) {
		for i := range data {
			if i >= len(back) || back[i] != data[i] {
				t.Fatalf("mismatch at byte %d of %d (level %d)", i, len(data), level)
			}
		}
		t.Fatalf("decoded %d bytes, want %d", len(back), len(data))
	}
	return comp
}

func TestEmpty(t *testing.T) {
	roundTrip(t, nil, 9)
	roundTrip(t, []byte{}, 1)
}

func TestSmallStrings(t *testing.T) {
	cases := []string{
		"a",
		"ab",
		"banana",
		"abracadabra",
		"hello, hello, hello, world",
		"mississippi",
		"\x00",
		"\x00\x00\x00\x00",
		"to be or not to be that is the question",
	}
	for _, s := range cases {
		for _, lvl := range []int{1, 9} {
			roundTrip(t, []byte(s), lvl)
		}
	}
}

func TestAllByteValues(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	roundTrip(t, data, 9)
	// And descending, repeated.
	var desc []byte
	for r := 0; r < 5; r++ {
		for i := 255; i >= 0; i-- {
			desc = append(desc, byte(i))
		}
	}
	roundTrip(t, desc, 9)
}

func TestRunLengths(t *testing.T) {
	// RLE1 boundary cases: runs of length 3, 4, 5, 255, 256, 259, 1000.
	for _, n := range []int{1, 2, 3, 4, 5, 8, 254, 255, 256, 259, 260, 511, 1000} {
		data := bytes.Repeat([]byte{'x'}, n)
		roundTrip(t, data, 9)
		// Runs embedded in other content.
		mixed := append([]byte("head"), data...)
		mixed = append(mixed, []byte("tail")...)
		roundTrip(t, mixed, 9)
	}
}

func TestHighlyRepetitive(t *testing.T) {
	// All-zero megabyte: worst case for naive rotation sorts and the shape
	// of post-transform residual streams.
	data := make([]byte, 1<<20)
	comp := roundTrip(t, data, 9)
	if len(comp) > 200 {
		t.Errorf("1 MiB of zeros compressed to %d bytes; expected tiny output", len(comp))
	}
}

func TestPeriodicData(t *testing.T) {
	// Periodic strings make all rotations compare equal beyond the period;
	// exercises the prefix-doubling termination path.
	data := bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 20000)
	roundTrip(t, data, 1)
}

func TestRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 10, 1000, 100000, 300000} {
		data := make([]byte, n)
		rng.Read(data)
		comp := roundTrip(t, data, 1)
		if n >= 1000 && len(comp) < n {
			t.Errorf("random data (%d bytes) 'compressed' to %d — too good to be true", n, len(comp))
		}
	}
}

func TestMultiBlock(t *testing.T) {
	// 350 KB at level 1 forces four blocks, exercising the stream CRC
	// combination.
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 350_000)
	for i := range data {
		data[i] = byte('a' + rng.Intn(4))
	}
	roundTrip(t, data, 1)
}

func TestTextCompressionRatio(t *testing.T) {
	// bzip2 must beat 50% on skewed text-like data.
	rng := rand.New(rand.NewSource(3))
	words := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog"}
	var buf bytes.Buffer
	for buf.Len() < 200_000 {
		buf.WriteString(words[rng.Intn(len(words))])
		buf.WriteByte(' ')
	}
	comp := roundTrip(t, buf.Bytes(), 9)
	if ratio := float64(len(comp)) / float64(buf.Len()); ratio > 0.25 {
		t.Errorf("text compressed to %.1f%%, expected < 25%%", ratio*100)
	}
}

func TestGridWalkStream(t *testing.T) {
	// The Fig. 3 input: int32 triples from a grid walk.
	var data []byte
	for x := 0; x < 30; x++ {
		for y := 0; y < 30; y++ {
			for z := 0; z < 30; z++ {
				data = binary.BigEndian.AppendUint32(data, uint32(x))
				data = binary.BigEndian.AppendUint32(data, uint32(y))
				data = binary.BigEndian.AppendUint32(data, uint32(z))
			}
		}
	}
	comp := roundTrip(t, data, 9)
	if ratio := float64(len(comp)) / float64(len(data)); ratio > 0.10 {
		t.Errorf("grid walk compressed to %.1f%%, expected < 10%%", ratio*100)
	}
}

func TestStreamingWrites(t *testing.T) {
	// Byte-at-a-time writes must produce a valid stream identical in
	// content to a single write.
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 50_000)
	for i := range data {
		data[i] = byte('a' + rng.Intn(3))
	}
	var buf bytes.Buffer
	w := NewWriterLevel(&buf, 1)
	for _, b := range data {
		if _, err := w.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(stdbzip2.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("streaming write roundtrip failed")
	}
}

func TestWriteAfterClose(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("Write after Close must fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestInvalidLevel(t *testing.T) {
	for _, lvl := range []int{0, 10, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %d must panic", lvl)
				}
			}()
			NewWriterLevel(io.Discard, lvl)
		}()
	}
}

func TestBWTKnown(t *testing.T) {
	// Classic example: rotations of "banana" sorted give last column
	// "nnbaaa" with the original at row 3.
	last, ptr := bwTransform([]byte("banana"))
	if string(last) != "nnbaaa" {
		t.Errorf("bwt(banana) = %q, want nnbaaa", last)
	}
	if ptr != 3 {
		t.Errorf("origPtr = %d, want 3", ptr)
	}
}

func TestBWTTinyInputs(t *testing.T) {
	if last, ptr := bwTransform(nil); last != nil || ptr != 0 {
		t.Error("bwt(nil) wrong")
	}
	if last, ptr := bwTransform([]byte{42}); len(last) != 1 || last[0] != 42 || ptr != 0 {
		t.Error("bwt(single) wrong")
	}
}

func TestBWTAllRotationsSorted(t *testing.T) {
	// Property: reconstruct the sorted rotations from the BWT and verify
	// order, on random small inputs (including repetitive ones).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte('a' + rng.Intn(3))
		}
		last, ptr := bwTransform(data)
		// Build all rotations, sort them stably, compare last column.
		rots := make([][]byte, n)
		for i := 0; i < n; i++ {
			rots[i] = append(append([]byte{}, data[i:]...), data[:i]...)
		}
		sortRots(rots)
		for i := range rots {
			if rots[i][n-1] != last[i] {
				t.Fatalf("trial %d: last[%d] = %q, want %q (data %q)", trial, i, last[i], rots[i][n-1], data)
			}
		}
		if !bytes.Equal(rots[ptr], data) {
			t.Fatalf("trial %d: origPtr %d does not index the original rotation", trial, ptr)
		}
	}
}

func sortRots(rots [][]byte) {
	for i := 1; i < len(rots); i++ {
		for j := i; j > 0 && bytes.Compare(rots[j], rots[j-1]) < 0; j-- {
			rots[j], rots[j-1] = rots[j-1], rots[j]
		}
	}
}

func TestCanonicalCodesPrefixFree(t *testing.T) {
	freq := []int{100, 50, 20, 20, 5, 1, 1, 1}
	lengths := buildLengths(freq, maxCodeLen)
	codes := canonicalCodes(lengths)
	for i := range codes {
		for j := range codes {
			if i == j {
				continue
			}
			li, lj := uint(lengths[i]), uint(lengths[j])
			if li <= lj && codes[i] == codes[j]>>(lj-li) {
				t.Fatalf("code %d (len %d) is a prefix of code %d (len %d)", i, li, j, lj)
			}
		}
	}
}

func TestBuildLengthsCap(t *testing.T) {
	// Exponential frequencies force long codes; the cap must hold.
	freq := make([]int, 40)
	f := 1
	for i := range freq {
		freq[i] = f
		if f < 1<<40 {
			f *= 2
		}
	}
	lengths := buildLengths(freq, maxCodeLen)
	// Kraft inequality must hold with equality (complete code).
	var kraft float64
	for _, l := range lengths {
		if l == 0 || l > maxCodeLen {
			t.Fatalf("length %d out of range", l)
		}
		kraft += 1 / float64(uint64(1)<<l)
	}
	if kraft > 1.0000001 {
		t.Errorf("Kraft sum %f > 1: not a valid code", kraft)
	}
}

func TestCRC(t *testing.T) {
	// bzip2's CRC of "123456789" with poly 0x04c11db7 (unreflected) is the
	// CRC-32/BZIP2 check value 0xfc891918.
	c := newBlockCRC().update([]byte("123456789"))
	if c.sum() != 0xfc891918 {
		t.Errorf("crc = %#x, want 0xfc891918", c.sum())
	}
	// updateByteRun must agree with update.
	a := newBlockCRC().update([]byte("aaaa"))
	b := newBlockCRC().updateByteRun('a', 4)
	if a.sum() != b.sum() {
		t.Error("updateByteRun disagrees with update")
	}
}

func BenchmarkCompressGridWalk(b *testing.B) {
	var data []byte
	for x := 0; x < 40; x++ {
		for y := 0; y < 40; y++ {
			for z := 0; z < 40; z++ {
				data = binary.BigEndian.AppendUint32(data, uint32(x))
				data = binary.BigEndian.AppendUint32(data, uint32(y))
				data = binary.BigEndian.AppendUint32(data, uint32(z))
			}
		}
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWriterReset: a reset writer must emit a byte-identical fresh stream,
// even after a dirty (unclosed) previous stream — the contract the codec
// pools rely on.
func TestWriterReset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 300000)
	rng.Read(data)
	want, err := Compress(data, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriterLevel(io.Discard, 6)
	if _, err := w.Write([]byte("abandoned stream, never closed")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		w.Reset(&buf)
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("round %d: reset stream differs from fresh stream", i)
		}
	}
}
