package bzip2

import (
	"errors"
	"fmt"
	"io"
)

const (
	blockMagic  = 0x314159265359 // 48-bit pi
	streamMagic = 0x177245385090 // 48-bit sqrt(pi)
)

// Writer is a streaming bzip2 compressor implementing io.WriteCloser.
type Writer struct {
	out        io.Writer
	bw         *bitWriter
	level      int // 1..9; block size = level * 100000
	blockLimit int

	block    []byte // RLE1-encoded content of the current block
	blockCRC blockCRC
	setIn    symbolSet
	stream   uint32 // combined stream CRC

	runByte byte
	runLen  int

	headerDone bool
	closed     bool
}

// DefaultLevel matches the bzip2 command-line default block size (900k).
const DefaultLevel = 9

// NewWriter returns a compressor at DefaultLevel writing to w.
func NewWriter(w io.Writer) *Writer { return NewWriterLevel(w, DefaultLevel) }

// NewWriterLevel returns a compressor with a level*100k block size.
// Level must be in [1, 9].
func NewWriterLevel(w io.Writer, level int) *Writer {
	if level < 1 || level > 9 {
		panic(fmt.Sprintf("bzip2: invalid level %d", level))
	}
	return &Writer{
		out:        w,
		bw:         newBitWriter(w),
		level:      level,
		blockLimit: level * 100000,
		blockCRC:   newBlockCRC(),
	}
}

// Reset discards the writer's state and rebinds it to out, starting a fresh
// bzip2 stream at the same level. It retains the block and bit buffers, so
// pooled writers (codec.WriterPool) restart streams allocation-free — the
// parallel block codec opens one stream per block and leans on this.
func (w *Writer) Reset(out io.Writer) {
	w.out = out
	w.bw.reset(out)
	w.block = w.block[:0]
	w.blockCRC = newBlockCRC()
	w.setIn = symbolSet{}
	w.stream = 0
	w.runByte, w.runLen = 0, 0
	w.headerDone = false
	w.closed = false
}

// Write compresses p. Data is buffered per block; nothing may appear on the
// underlying writer until a block fills or Close is called.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("bzip2: write after Close")
	}
	for _, b := range p {
		if w.runLen > 0 && b == w.runByte {
			w.runLen++
			if w.runLen == 255 {
				if err := w.emitRun(); err != nil {
					return 0, err
				}
			}
			continue
		}
		if err := w.emitRun(); err != nil {
			return 0, err
		}
		w.runByte = b
		w.runLen = 1
	}
	return len(p), w.bw.err
}

// emitRun writes the pending RLE1 run into the current block.
func (w *Writer) emitRun() error {
	n := w.runLen
	w.runLen = 0
	if n == 0 {
		return nil
	}
	b := w.runByte
	var unit [5]byte
	var unitLen int
	if n < 4 {
		for i := 0; i < n; i++ {
			unit[i] = b
		}
		unitLen = n
	} else {
		unit[0], unit[1], unit[2], unit[3] = b, b, b, b
		unit[4] = byte(n - 4)
		unitLen = 5
	}
	if len(w.block)+unitLen > w.blockLimit {
		if err := w.flushBlock(); err != nil {
			return err
		}
	}
	w.block = append(w.block, unit[:unitLen]...)
	w.setIn.add(unit[:unitLen])
	w.blockCRC = w.blockCRC.updateByteRun(b, n)
	return nil
}

func (w *Writer) writeHeader() {
	if w.headerDone {
		return
	}
	w.headerDone = true
	w.bw.writeBits(uint64('B'), 8)
	w.bw.writeBits(uint64('Z'), 8)
	w.bw.writeBits(uint64('h'), 8)
	w.bw.writeBits(uint64('0'+w.level), 8)
}

// flushBlock compresses and emits the buffered block.
func (w *Writer) flushBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	w.writeHeader()
	bw := w.bw

	crc := w.blockCRC.sum()
	w.stream = combineStreamCRC(w.stream, crc)

	last, origPtr := bwTransform(w.block)
	used := w.setIn.used()
	syms, alphaSize := mtfRLE2(last, used)
	lengths, selectors := assignTables(syms, alphaSize)
	nGroups := len(lengths)

	bw.writeBits(blockMagic, 48)
	bw.writeBits(uint64(crc), 32)
	bw.writeBit(0) // not randomized
	bw.writeBits(uint64(origPtr), 24)
	writeSymbolMap(bw, &w.setIn)
	bw.writeBits(uint64(nGroups), 3)
	bw.writeBits(uint64(len(selectors)), 15)

	// Selectors, move-to-front coded, each value in unary.
	var mtf [6]uint8
	for i := 0; i < nGroups; i++ {
		mtf[i] = uint8(i)
	}
	for _, s := range selectors {
		var j int
		for mtf[j] != s {
			j++
		}
		copy(mtf[1:j+1], mtf[:j])
		mtf[0] = s
		for k := 0; k < j; k++ {
			bw.writeBit(1)
		}
		bw.writeBit(0)
	}

	// Code-length tables, delta coded.
	for _, tbl := range lengths {
		cur := tbl[0]
		bw.writeBits(uint64(cur), 5)
		for _, l := range tbl {
			for cur < l {
				bw.writeBits(0b10, 2) // increment
				cur++
			}
			for cur > l {
				bw.writeBits(0b11, 2) // decrement
				cur--
			}
			bw.writeBit(0)
		}
	}

	// The symbol stream.
	codes := make([][]uint32, nGroups)
	for g := range codes {
		codes[g] = canonicalCodes(lengths[g])
	}
	for i, s := range syms {
		t := selectors[i/groupSize]
		bw.writeBits(uint64(codes[t][s]), uint(lengths[t][s]))
	}

	w.block = w.block[:0]
	w.blockCRC = newBlockCRC()
	w.setIn = symbolSet{}
	return bw.err
}

// Close flushes pending data, writes the stream footer, and finalizes the
// output. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.emitRun(); err != nil {
		return err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	w.writeHeader() // empty stream still carries a header
	w.bw.writeBits(streamMagic, 48)
	w.bw.writeBits(uint64(w.stream), 32)
	return w.bw.close()
}

// Compress is a convenience one-shot helper.
func Compress(data []byte, level int) ([]byte, error) {
	var buf writerBuffer
	w := NewWriterLevel(&buf, level)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
