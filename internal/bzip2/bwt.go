package bzip2

// bwTransform computes the Burrows-Wheeler transform of data by sorting all
// cyclic rotations (bzip2 sorts rotations, not sentinel-terminated
// suffixes). It uses Manber-Myers prefix doubling with radix sort, which is
// O(n log n) regardless of repetitiveness — important because the streams
// this package compresses (post-transform key residuals) are long runs of
// identical bytes, the worst case for comparison-based rotation sorts.
//
// It returns the last column and the row index of the original string.
func bwTransform(data []byte) (last []byte, origPtr int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	if n == 1 {
		return []byte{data[0]}, 0
	}
	sa := make([]int, n)   // rotation start indices, sorted so far
	rank := make([]int, n) // current rank of each rotation
	tmp := make([]int, n)  // scratch: next ranks / radix output
	cnt := make([]int, max(n+1, 256))

	// Initial sort by first byte (counting sort).
	for i := 0; i < n; i++ {
		cnt[data[i]]++
	}
	for i := 1; i < 256; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := n - 1; i >= 0; i-- {
		cnt[data[i]]--
		sa[cnt[data[i]]] = i
	}
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		rank[sa[i]] = rank[sa[i-1]]
		if data[sa[i]] != data[sa[i-1]] {
			rank[sa[i]]++
		}
	}

	sa2 := make([]int, n)
	for k := 1; rank[sa[n-1]] != n-1; k <<= 1 {
		// Sort by (rank[i], rank[i+k mod n]) with two counting passes.
		// Pass 1: by second key. A rotation starting at i has second key
		// rank[(i+k)%n]; generating sa2 in second-key order means listing
		// i = (j - k) mod n for j in rank order — but we need stability in
		// the *second key*, so sort indices by rank[(i+k)%n] directly.
		maxR := n
		clear(cnt[:maxR+1])
		for i := 0; i < n; i++ {
			cnt[rank[(i+k)%n]]++
		}
		for i := 1; i <= maxR; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			r := rank[(i+k)%n]
			cnt[r]--
			sa2[cnt[r]] = i
		}
		// Pass 2: stable counting sort of sa2 by first key rank[i].
		clear(cnt[:maxR+1])
		for i := 0; i < n; i++ {
			cnt[rank[i]]++
		}
		for i := 1; i <= maxR; i++ {
			cnt[i] += cnt[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			r := rank[sa2[i]]
			cnt[r]--
			sa[cnt[r]] = sa2[i]
		}
		// Recompute ranks.
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			a, b := sa[i-1], sa[i]
			tmp[b] = tmp[a]
			if rank[a] != rank[b] || rank[(a+k)%n] != rank[(b+k)%n] {
				tmp[b]++
			}
		}
		rank, tmp = tmp, rank
		if k >= n {
			break
		}
	}

	last = make([]byte, n)
	for i, start := range sa {
		last[i] = data[(start+n-1)%n]
		if start == 0 {
			origPtr = i
		}
	}
	return last, origPtr
}
