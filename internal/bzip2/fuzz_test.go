package bzip2

import (
	"bytes"
	stdbzip2 "compress/bzip2"
	"io"
	"testing"
)

// FuzzCompress compresses arbitrary inputs and requires the standard
// library decoder to reproduce them exactly.
func FuzzCompress(f *testing.F) {
	f.Add([]byte("banana"), 1)
	f.Add([]byte{}, 9)
	f.Add(bytes.Repeat([]byte{0}, 300), 5)
	f.Fuzz(func(t *testing.T, data []byte, level int) {
		if level < 1 || level > 9 {
			t.Skip()
		}
		comp, err := Compress(data, level)
		if err != nil {
			t.Fatal(err)
		}
		back, err := io.ReadAll(stdbzip2.NewReader(bytes.NewReader(comp)))
		if err != nil {
			t.Fatalf("stdlib rejected our stream: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
