package bzip2

import "io"

// bitWriter packs bits MSB-first, the bit order of the bzip2 format.
type bitWriter struct {
	w    io.Writer
	bits uint64
	n    uint // number of pending bits in the high part of bits
	buf  []byte
	err  error
}

func newBitWriter(w io.Writer) *bitWriter {
	return &bitWriter{w: w, buf: make([]byte, 0, 4096)}
}

// reset rebinds the bit writer to a new destination, keeping the buffer.
func (bw *bitWriter) reset(w io.Writer) {
	bw.w = w
	bw.bits = 0
	bw.n = 0
	bw.buf = bw.buf[:0]
	bw.err = nil
}

// writeBits appends the low n bits of v (n <= 48).
func (bw *bitWriter) writeBits(v uint64, n uint) {
	if bw.err != nil {
		return
	}
	bw.bits |= (v & (1<<n - 1)) << (64 - bw.n - n)
	bw.n += n
	for bw.n >= 8 {
		bw.buf = append(bw.buf, byte(bw.bits>>56))
		bw.bits <<= 8
		bw.n -= 8
		if len(bw.buf) >= 4096 {
			bw.flushBuf()
		}
	}
}

func (bw *bitWriter) writeBit(b uint) { bw.writeBits(uint64(b), 1) }

func (bw *bitWriter) flushBuf() {
	if bw.err != nil || len(bw.buf) == 0 {
		bw.buf = bw.buf[:0]
		return
	}
	_, bw.err = bw.w.Write(bw.buf)
	bw.buf = bw.buf[:0]
}

// close pads the final partial byte with zero bits and flushes.
func (bw *bitWriter) close() error {
	if bw.n > 0 {
		bw.buf = append(bw.buf, byte(bw.bits>>56))
		bw.bits = 0
		bw.n = 0
	}
	bw.flushBuf()
	return bw.err
}
