package bzip2

// MTF + zero-run-length stage. After the BWT, bzip2 move-to-front encodes
// the last column over the alphabet of bytes actually present, then
// replaces runs of zeros with RUNA/RUNB digits (bijective base 2) and
// appends an end-of-block symbol:
//
//	symbol 0        = RUNA (zero-run digit worth 1*2^i)
//	symbol 1        = RUNB (zero-run digit worth 2*2^i)
//	symbol k+1      = MTF value k   (k >= 1)
//	symbol nUsed+1  = EOB
const (
	runA = 0
	runB = 1
)

// symbolSet records which byte values occur in a block.
type symbolSet [256]bool

func (s *symbolSet) add(p []byte) {
	for _, b := range p {
		s[b] = true
	}
}

// used returns the present byte values in increasing order.
func (s *symbolSet) used() []byte {
	out := make([]byte, 0, 256)
	for v := 0; v < 256; v++ {
		if s[v] {
			out = append(out, byte(v))
		}
	}
	return out
}

// mtfRLE2 encodes bwt (whose bytes all belong to used) into the MTF/RLE2
// symbol stream, including the trailing EOB. alphaSize = len(used) + 2.
func mtfRLE2(bwt []byte, used []byte) (syms []uint16, alphaSize int) {
	alphaSize = len(used) + 2
	eob := uint16(alphaSize - 1)
	// MTF list over the used alphabet.
	list := make([]byte, len(used))
	copy(list, used)

	syms = make([]uint16, 0, len(bwt)/2+8)
	zeroRun := 0
	flushZeros := func() {
		// Bijective base-2: run r > 0 becomes digits in {RUNA=1, RUNB=2}.
		r := zeroRun
		for r > 0 {
			if r&1 == 1 {
				syms = append(syms, runA)
				r = (r - 1) >> 1
			} else {
				syms = append(syms, runB)
				r = (r - 2) >> 1
			}
		}
		zeroRun = 0
	}
	for _, b := range bwt {
		// Find b's position in the MTF list and move it to the front.
		var pos int
		for list[pos] != b {
			pos++
		}
		if pos == 0 {
			zeroRun++
			continue
		}
		copy(list[1:pos+1], list[:pos])
		list[0] = b
		flushZeros()
		syms = append(syms, uint16(pos+1))
	}
	flushZeros()
	syms = append(syms, eob)
	return syms, alphaSize
}

// writeSymbolMap emits the two-level 16+16x16 bit map of used byte values.
func writeSymbolMap(bw *bitWriter, set *symbolSet) {
	var ranges uint16
	for r := 0; r < 16; r++ {
		for v := 0; v < 16; v++ {
			if set[r*16+v] {
				ranges |= 1 << (15 - r)
				break
			}
		}
	}
	bw.writeBits(uint64(ranges), 16)
	for r := 0; r < 16; r++ {
		if ranges&(1<<(15-r)) == 0 {
			continue
		}
		var bits uint16
		for v := 0; v < 16; v++ {
			if set[r*16+v] {
				bits |= 1 << (15 - v)
			}
		}
		bw.writeBits(uint64(bits), 16)
	}
}
