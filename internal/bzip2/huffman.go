package bzip2

import "sort"

// Huffman stage. bzip2 codes the MTF/RLE2 symbol stream with 2-6 tables,
// switching tables every groupSize symbols; a selector per group names the
// table. Code lengths are limited to maxCodeLen by frequency scaling, as in
// the reference implementation.

const (
	groupSize  = 50
	maxCodeLen = 17 // encoder limit (format allows 20)
	nIters     = 4  // refinement passes over group assignments
)

// buildLengths computes Huffman code lengths for freq, capped at maxLen.
// Zero frequencies are treated as one so every symbol gets a code, as the
// format requires lengths for the whole alphabet.
func buildLengths(freq []int, maxLen int) []uint8 {
	n := len(freq)
	lengths := make([]uint8, n)
	if n == 1 {
		lengths[0] = 1
		return lengths
	}
	w := make([]int64, n)
	for i, f := range freq {
		if f <= 0 {
			f = 1
		}
		w[i] = int64(f)
	}
	parent := make([]int, 2*n) // tree nodes: 0..n-1 leaves, then internals
	order := make([]int, n)    // leaf indices sorted by weight
	weight := make([]int64, 2*n)
	for {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if w[order[a]] != w[order[b]] {
				return w[order[a]] < w[order[b]]
			}
			return order[a] < order[b]
		})
		for i := 0; i < n; i++ {
			weight[i] = w[i]
		}
		// Two-queue merge: leaves (sorted) and internal nodes (created in
		// nondecreasing weight order).
		leafAt, internAt, internEnd := 0, n, n
		next := func() int {
			if leafAt < n && (internAt >= internEnd || weight[order[leafAt]] <= weight[internAt]) {
				leafAt++
				return order[leafAt-1]
			}
			internAt++
			return internAt - 1
		}
		nodes := 0
		for leafAt < n || internEnd-internAt > 1 {
			a := next()
			b := next()
			weight[internEnd] = weight[a] + weight[b]
			parent[a] = internEnd
			parent[b] = internEnd
			internEnd++
			nodes++
		}
		root := internEnd - 1
		parent[root] = -1
		tooLong := false
		for i := 0; i < n; i++ {
			depth := 0
			for p := i; parent[p] != -1; p = parent[p] {
				depth++
			}
			lengths[i] = uint8(depth)
			if depth > maxLen {
				tooLong = true
			}
		}
		if !tooLong {
			return lengths
		}
		// Flatten the distribution and retry (bzlib's strategy).
		for i := range w {
			w[i] = w[i]/2 + 1
		}
	}
}

// canonicalCodes assigns canonical codes to lengths: symbols sorted by
// (length, symbol value) receive sequential codes, shifting left when the
// length increases — matching the decoder in compress/bzip2.
func canonicalCodes(lengths []uint8) []uint32 {
	n := len(lengths)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if lengths[order[a]] != lengths[order[b]] {
			return lengths[order[a]] < lengths[order[b]]
		}
		return order[a] < order[b]
	})
	codes := make([]uint32, n)
	code := uint32(0)
	prevLen := lengths[order[0]]
	for _, sym := range order {
		code <<= lengths[sym] - prevLen
		prevLen = lengths[sym]
		codes[sym] = code
		code++
	}
	return codes
}

// chooseNumTables mirrors bzlib's table-count heuristic.
func chooseNumTables(nSyms int) int {
	switch {
	case nSyms < 200:
		return 2
	case nSyms < 600:
		return 3
	case nSyms < 1200:
		return 4
	case nSyms < 2400:
		return 5
	}
	return 6
}

// assignTables computes the Huffman tables and per-group selectors for the
// symbol stream, by iterative refinement: start from a frequency-band
// partition, then repeatedly (a) assign each 50-symbol group to its
// cheapest table and (b) rebuild each table from the groups it won.
func assignTables(syms []uint16, alphaSize int) (lengths [][]uint8, selectors []uint8) {
	freq := make([]int, alphaSize)
	for _, s := range syms {
		freq[s]++
	}
	nGroups := chooseNumTables(len(syms))

	// Initial tables: carve the alphabet into nGroups frequency bands and
	// make each table cheap inside its band, expensive outside.
	lengths = make([][]uint8, nGroups)
	remFreq := len(syms)
	gs := 0
	for g := 0; g < nGroups; g++ {
		target := remFreq / (nGroups - g)
		ge := gs
		acc := 0
		for ge < alphaSize && (acc < target || ge == gs) {
			acc += freq[ge]
			ge++
		}
		if g == nGroups-1 {
			ge = alphaSize
			// acc no longer needed exactly; band covers the tail
		}
		tbl := make([]uint8, alphaSize)
		for s := 0; s < alphaSize; s++ {
			if s >= gs && s < ge {
				tbl[s] = 3
			} else {
				tbl[s] = 15
			}
		}
		lengths[g] = tbl
		remFreq -= acc
		gs = ge
	}

	nSel := (len(syms) + groupSize - 1) / groupSize
	selectors = make([]uint8, nSel)
	rfreq := make([][]int, nGroups)
	for g := range rfreq {
		rfreq[g] = make([]int, alphaSize)
	}
	for iter := 0; iter < nIters; iter++ {
		for g := range rfreq {
			clearInts(rfreq[g])
		}
		for grp := 0; grp < nSel; grp++ {
			lo := grp * groupSize
			hi := min(lo+groupSize, len(syms))
			best, bestCost := 0, int(^uint(0)>>1)
			for t := 0; t < nGroups; t++ {
				cost := 0
				for _, s := range syms[lo:hi] {
					cost += int(lengths[t][s])
				}
				if cost < bestCost {
					best, bestCost = t, cost
				}
			}
			selectors[grp] = uint8(best)
			for _, s := range syms[lo:hi] {
				rfreq[best][s]++
			}
		}
		for t := 0; t < nGroups; t++ {
			lengths[t] = buildLengths(rfreq[t], maxCodeLen)
		}
	}
	return lengths, selectors
}

func clearInts(s []int) {
	for i := range s {
		s[i] = 0
	}
}
