package cluster

import (
	"errors"
	"fmt"
)

// CalSample is one task attempt's measured execution, the raw material for
// calibrating the cost model against a real run. The engine records one per
// committed attempt (wall clock, measured CPU seconds, and the attempt's
// disk/network byte footprint); Fit turns a batch of them into bandwidth
// constants.
type CalSample struct {
	// CPUSeconds is the attempt's measured compute time (map/reduce
	// function, codec, transform, sort).
	CPUSeconds float64
	// DiskBytes and NetBytes are the attempt's I/O footprint, identical in
	// meaning to Task.DiskBytes/Task.NetBytes.
	DiskBytes int64
	NetBytes  int64
	// WallSeconds is the attempt's observed wall-clock duration.
	WallSeconds float64
}

// Fit returns a copy of c with DiskMBps and NetMBps re-estimated from
// measured samples, by least-squares on the cost model's own equation:
//
//	wall − cpu = diskBytes/diskBW + netBytes/netBW
//
// i.e. a linear fit of the non-CPU residual against the two byte columns.
// Samples with no I/O, or whose wall clock is below their CPU time (timer
// skew), contribute nothing. If one byte column is absent from every sample
// (an all-local run moves no network bytes), only the other bandwidth is
// refitted and the missing one keeps c's value. A fit that would produce a
// non-positive bandwidth likewise keeps c's value for that axis; if neither
// axis can be fitted, Fit returns an error and c unchanged.
func (c Config) Fit(samples []CalSample) (Config, error) {
	c.validate()
	const mib = 1 << 20
	var sdd, sdn, snn, sdr, snr float64
	n := 0
	for _, s := range samples {
		r := s.WallSeconds - s.CPUSeconds
		if r <= 0 || (s.DiskBytes <= 0 && s.NetBytes <= 0) {
			continue
		}
		d := float64(s.DiskBytes) / mib
		nb := float64(s.NetBytes) / mib
		sdd += d * d
		sdn += d * nb
		snn += nb * nb
		sdr += d * r
		snr += nb * r
		n++
	}
	if n == 0 {
		return c, errors.New("cluster: no usable calibration samples (need wall > cpu and nonzero I/O)")
	}
	// Solve the 2×2 normal equations for (a, b) in r = a·d + b·n, where
	// a = 1/DiskMBps and b = 1/NetMBps. Degenerate columns (all-zero disk
	// or net bytes) collapse to a single-variable fit.
	var a, b float64
	det := sdd*snn - sdn*sdn
	switch {
	case sdd > 0 && snn > 0 && det > 1e-12*sdd*snn:
		a = (snr*sdn - sdr*snn) / -det
		b = (sdr*sdn - snr*sdd) / -det
	case sdd > 0:
		a = sdr / sdd
	case snn > 0:
		b = snr / snn
	}
	fitted := false
	if a > 0 {
		c.DiskMBps = 1 / a
		fitted = true
	}
	if b > 0 {
		c.NetMBps = 1 / b
		fitted = true
	}
	if !fitted {
		return c, fmt.Errorf("cluster: calibration from %d samples produced no positive bandwidth", n)
	}
	return c, nil
}
