package cluster

import (
	"math"
	"testing"
)

func TestPaperConfig(t *testing.T) {
	c := Paper()
	if c.MapSlots() != 10 {
		t.Errorf("map slots = %d, want 10", c.MapSlots())
	}
	if c.ReduceSlots() != 5 {
		t.Errorf("reduce slots = %d, want 5", c.ReduceSlots())
	}
}

func TestTaskSeconds(t *testing.T) {
	c := Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, DiskMBps: 100, NetMBps: 50}
	task := Task{DiskBytes: 100 << 20, NetBytes: 50 << 20, CPUSeconds: 3}
	// 1s disk + 1s net + 3s cpu.
	if got := c.Seconds(task); math.Abs(got-5) > 1e-9 {
		t.Errorf("Seconds = %f, want 5", got)
	}
}

func TestTaskAdd(t *testing.T) {
	a := Task{DiskBytes: 1, NetBytes: 2, CPUSeconds: 3}
	a.Add(Task{DiskBytes: 10, NetBytes: 20, CPUSeconds: 30})
	if a.DiskBytes != 11 || a.NetBytes != 22 || a.CPUSeconds != 33 {
		t.Errorf("Add = %+v", a)
	}
}

func TestMakespan(t *testing.T) {
	// 4 unit tasks on 2 slots: 2 rounds.
	if got := Makespan([]float64{1, 1, 1, 1}, 2); got != 2 {
		t.Errorf("Makespan = %f, want 2", got)
	}
	// One long task dominates.
	if got := Makespan([]float64{10, 1, 1, 1}, 2); got != 10 {
		t.Errorf("Makespan = %f, want 10", got)
	}
	// More slots than tasks: the longest task.
	if got := Makespan([]float64{3, 5}, 8); got != 5 {
		t.Errorf("Makespan = %f, want 5", got)
	}
	if got := Makespan(nil, 4); got != 0 {
		t.Errorf("empty Makespan = %f", got)
	}
	// Single slot: sum.
	if got := Makespan([]float64{1, 2, 3}, 1); got != 6 {
		t.Errorf("one-slot Makespan = %f, want 6", got)
	}
}

func TestMakespanLPT(t *testing.T) {
	// FIFO order can be beaten by LPT: tasks {1,1,1,3} on 2 slots.
	fifo := Makespan([]float64{1, 1, 1, 3}, 2)
	lpt := MakespanLPT([]float64{1, 1, 1, 3}, 2)
	if lpt > fifo {
		t.Errorf("LPT (%f) must not exceed FIFO (%f)", lpt, fifo)
	}
	if lpt != 3 {
		t.Errorf("LPT = %f, want 3", lpt)
	}
}

func TestEstimateJobScalesWithBytes(t *testing.T) {
	// Double the shuffled bytes, keep CPU at zero: reduce phase doubles.
	c := Paper()
	small := make([]Task, 5)
	big := make([]Task, 5)
	for i := range small {
		small[i] = Task{NetBytes: 100 << 20}
		big[i] = Task{NetBytes: 200 << 20}
	}
	es := c.EstimateJob(nil, small)
	eb := c.EstimateJob(nil, big)
	if eb.ReduceSeconds <= es.ReduceSeconds {
		t.Error("more bytes must take longer")
	}
	ratio := eb.ReduceSeconds / es.ReduceSeconds
	if math.Abs(ratio-2) > 1e-6 {
		t.Errorf("ratio = %f, want 2", ratio)
	}
	if es.Total() != es.MapSeconds+es.ReduceSeconds {
		t.Error("Total must sum phases")
	}
}

func TestEstimateJobMapSlots(t *testing.T) {
	// 20 equal map tasks on 10 slots take exactly 2 task-durations.
	c := Paper()
	maps := make([]Task, 20)
	for i := range maps {
		maps[i] = Task{CPUSeconds: 7}
	}
	e := c.EstimateJob(maps, nil)
	if math.Abs(e.MapSeconds-14) > 1e-9 {
		t.Errorf("MapSeconds = %f, want 14", e.MapSeconds)
	}
}

func TestValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero nodes", func() { (Config{}).Seconds(Task{}) })
	mustPanic("zero slots makespan", func() { Makespan([]float64{1}, 0) })
	mustPanic("no bandwidth", func() {
		(Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}).Seconds(Task{})
	})
}

func TestEstimateJobLocality(t *testing.T) {
	c := Config{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, DiskMBps: 100, NetMBps: 10}
	nodes := []string{"a", "b"}
	mib := int64(1 << 20)
	// Two tasks, each local to a different node: both should hit.
	maps := []MapSpec{
		{Task: Task{DiskBytes: 100 * mib}, InputBytes: 100 * mib, Hosts: []string{"a"}},
		{Task: Task{DiskBytes: 100 * mib}, InputBytes: 100 * mib, Hosts: []string{"b"}},
	}
	est := c.EstimateJobLocality(nodes, maps, nil)
	if est.LocalTasks != 2 || est.TotalTasks != 2 {
		t.Errorf("locality = %d/%d, want 2/2", est.LocalTasks, est.TotalTasks)
	}
	if est.MapSeconds != 1 { // 100 MiB / 100 MiB/s, in parallel
		t.Errorf("MapSeconds = %f, want 1", est.MapSeconds)
	}
	// No replicas anywhere: all misses, input crosses the 10x slower net.
	remote := []MapSpec{
		{Task: Task{DiskBytes: 100 * mib}, InputBytes: 100 * mib, Hosts: []string{"elsewhere"}},
	}
	est = c.EstimateJobLocality(nodes, remote, nil)
	if est.LocalTasks != 0 {
		t.Errorf("locality = %d, want 0", est.LocalTasks)
	}
	if est.MapSeconds != 10 { // 100 MiB over 10 MiB/s network
		t.Errorf("remote MapSeconds = %f, want 10", est.MapSeconds)
	}
	// Locality-aware scheduling never beats the all-local assumption.
	plain := c.EstimateJob([]Task{remote[0].Task}, nil)
	if est.MapSeconds < plain.MapSeconds {
		t.Error("remote read cannot be faster than local")
	}
}

func TestEstimateJobLocalityNoNodes(t *testing.T) {
	c := Paper()
	est := c.EstimateJobLocality(nil, []MapSpec{{Task: Task{CPUSeconds: 1}}}, nil)
	if est.MapSeconds != 1 || est.LocalTasks != 0 {
		t.Errorf("fallback slot misbehaved: %+v", est)
	}
}

func TestEstimateJobWithWaste(t *testing.T) {
	cfg := Paper()
	maps := make([]Task, 10)
	for i := range maps {
		maps[i] = Task{CPUSeconds: 10}
	}
	reduces := []Task{{CPUSeconds: 5}}
	base := cfg.EstimateJob(maps, reduces)
	if base.WastedMapSeconds != 0 || base.WastedReduceSeconds != 0 {
		t.Errorf("clean estimate reports waste: %+v", base)
	}
	// One wasted map attempt forces an 11th task onto 10 slots: the map
	// phase must stretch, and the waste must be itemized.
	waste := cfg.EstimateJobWithWaste(maps, reduces, []Task{{CPUSeconds: 10}}, nil)
	if waste.MapSeconds <= base.MapSeconds {
		t.Errorf("wasted attempt did not stretch the map phase: %v vs %v", waste.MapSeconds, base.MapSeconds)
	}
	if waste.WastedMapSeconds != 10 {
		t.Errorf("wasted map seconds = %v, want 10", waste.WastedMapSeconds)
	}
	if waste.ReduceSeconds != base.ReduceSeconds {
		t.Errorf("map-side waste changed the reduce phase: %v vs %v", waste.ReduceSeconds, base.ReduceSeconds)
	}
	wr := cfg.EstimateJobWithWaste(maps, reduces, nil, []Task{{CPUSeconds: 3}})
	if wr.WastedReduceSeconds != 3 {
		t.Errorf("wasted reduce seconds = %v, want 3", wr.WastedReduceSeconds)
	}
}
