package cluster

// Locality-aware map scheduling. Hadoop tries to run each map task on a
// node holding a replica of its input block; a miss turns the input scan
// into network traffic. The plain EstimateJob treats all input as local
// disk; this file models the scheduler's locality preference so the effect
// of replication on the paper's 5-node cluster can be quantified.

// MapSpec is a map task plus the information the scheduler needs: how many
// input bytes it scans and which nodes hold them.
type MapSpec struct {
	Task
	// InputBytes is the input scan volume, already included in
	// Task.DiskBytes (it is re-routed to the network on a locality miss).
	InputBytes int64
	// Hosts are the nodes holding the input block replicas.
	Hosts []string
}

// LocalityEstimate extends JobEstimate with scheduling facts.
type LocalityEstimate struct {
	JobEstimate
	// LocalTasks of TotalTasks ran on a node holding their input.
	LocalTasks int
	TotalTasks int
}

// EstimateJobLocality schedules map tasks onto per-node slots, preferring
// a local slot among the earliest-free ones (Hadoop's delay-free locality
// preference), and re-routes input bytes over the network on misses.
// nodes must name the cluster's machines; Hosts entries that match none of
// them simply never hit.
func (c Config) EstimateJobLocality(nodes []string, maps []MapSpec, reduces []Task) LocalityEstimate {
	c.validate()
	type slot struct {
		node string
		free float64
	}
	slots := make([]slot, 0, len(nodes)*c.MapSlotsPerNode)
	for _, n := range nodes {
		for s := 0; s < c.MapSlotsPerNode; s++ {
			slots = append(slots, slot{node: n})
		}
	}
	if len(slots) == 0 {
		slots = append(slots, slot{node: "node0"})
	}
	local := 0
	for _, m := range maps {
		// Earliest-free slot; a local slot wins ties.
		best := 0
		bestLocal := hostsContain(m.Hosts, slots[0].node)
		for i := 1; i < len(slots); i++ {
			isLocal := hostsContain(m.Hosts, slots[i].node)
			switch {
			case slots[i].free < slots[best].free:
				best, bestLocal = i, isLocal
			case slots[i].free == slots[best].free && isLocal && !bestLocal:
				best, bestLocal = i, true
			}
		}
		t := m.Task
		if bestLocal {
			local++
		} else {
			// Remote read: the scan crosses the network instead of coming
			// off the local disk.
			t.DiskBytes -= m.InputBytes
			t.NetBytes += m.InputBytes
		}
		slots[best].free += c.Seconds(t)
	}
	var mapEnd float64
	for _, s := range slots {
		if s.free > mapEnd {
			mapEnd = s.free
		}
	}
	rd := make([]float64, len(reduces))
	for i, t := range reduces {
		rd[i] = c.Seconds(t)
	}
	return LocalityEstimate{
		JobEstimate: JobEstimate{
			MapSeconds:    mapEnd,
			ReduceSeconds: Makespan(rd, c.ReduceSlots()),
		},
		LocalTasks: local,
		TotalTasks: len(maps),
	}
}

func hostsContain(hosts []string, node string) bool {
	for _, h := range hosts {
		if h == node {
			return true
		}
	}
	return false
}
