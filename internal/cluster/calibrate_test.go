package cluster

import (
	"math"
	"strings"
	"testing"
)

// synthSamples fabricates attempt measurements from known bandwidths, so Fit
// should recover them exactly (the data satisfies the model's equation).
func synthSamples(diskMBps, netMBps float64, mixes [][2]int64) []CalSample {
	const mib = 1 << 20
	out := make([]CalSample, 0, len(mixes))
	for i, m := range mixes {
		cpu := 0.5 + 0.1*float64(i)
		wall := cpu + float64(m[0])/mib/diskMBps + float64(m[1])/mib/netMBps
		out = append(out, CalSample{
			CPUSeconds: cpu, DiskBytes: m[0], NetBytes: m[1], WallSeconds: wall,
		})
	}
	return out
}

func TestFitRecoversKnownBandwidths(t *testing.T) {
	base := Paper()
	samples := synthSamples(80, 40, [][2]int64{
		{100 << 20, 10 << 20},
		{50 << 20, 200 << 20},
		{300 << 20, 30 << 20},
		{20 << 20, 80 << 20},
	})
	got, err := base.Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.DiskMBps-80) > 1e-6 {
		t.Errorf("DiskMBps = %f, want 80", got.DiskMBps)
	}
	if math.Abs(got.NetMBps-40) > 1e-6 {
		t.Errorf("NetMBps = %f, want 40", got.NetMBps)
	}
	// Fit must not disturb the other knobs.
	if got.Nodes != base.Nodes || got.MapSlotsPerNode != base.MapSlotsPerNode {
		t.Errorf("Fit changed topology: %+v", got)
	}
}

func TestFitDiskOnlyKeepsNetBandwidth(t *testing.T) {
	base := Paper()
	samples := synthSamples(120, 1, [][2]int64{ // netMBps irrelevant: no net bytes
		{100 << 20, 0},
		{200 << 20, 0},
		{50 << 20, 0},
	})
	got, err := base.Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.DiskMBps-120) > 1e-6 {
		t.Errorf("DiskMBps = %f, want 120", got.DiskMBps)
	}
	if got.NetMBps != base.NetMBps {
		t.Errorf("NetMBps = %f, want base %f (no net samples to fit)", got.NetMBps, base.NetMBps)
	}
}

func TestFitRejectsUnusableSamples(t *testing.T) {
	base := Paper()
	_, err := base.Fit([]CalSample{
		{CPUSeconds: 5, WallSeconds: 5, DiskBytes: 1 << 20},        // no residual
		{CPUSeconds: 1, WallSeconds: 9, DiskBytes: 0, NetBytes: 0}, // no I/O
	})
	if err == nil || !strings.Contains(err.Error(), "no usable calibration samples") {
		t.Errorf("err = %v, want the no-usable-samples error", err)
	}
	got, err2 := base.Fit(nil)
	if err2 == nil {
		t.Error("empty sample set should not calibrate")
	}
	if got.DiskMBps != base.DiskMBps || got.NetMBps != base.NetMBps {
		t.Errorf("failed Fit must return the config unchanged: %+v", got)
	}
}

func TestFitNoiseTolerance(t *testing.T) {
	// Perturb the wall clocks slightly; the least-squares estimate should
	// still land near the truth.
	samples := synthSamples(100, 50, [][2]int64{
		{100 << 20, 10 << 20},
		{50 << 20, 200 << 20},
		{300 << 20, 30 << 20},
		{20 << 20, 80 << 20},
		{150 << 20, 150 << 20},
	})
	for i := range samples {
		jitter := 1.0 + 0.01*float64(i%3-1) // ±1%
		samples[i].WallSeconds = samples[i].CPUSeconds +
			(samples[i].WallSeconds-samples[i].CPUSeconds)*jitter
	}
	got, err := Paper().Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got.DiskMBps < 90 || got.DiskMBps > 110 {
		t.Errorf("DiskMBps = %f, want ~100", got.DiskMBps)
	}
	if got.NetMBps < 45 || got.NetMBps > 55 {
		t.Errorf("NetMBps = %f, want ~50", got.NetMBps)
	}
}
