// Package cluster models the testbed the paper evaluated on — a 5-node
// Hadoop cluster with 10 map slots and 5 reducers — as a cost model over
// measured work: each task's duration is its *measured* CPU seconds plus
// modeled disk and network transfer time, and phase makespans come from
// list-scheduling tasks onto slots.
//
// Wall-clock minutes from the authors' hardware are not reproducible; this
// model preserves what the paper's runtime comparisons actually hinge on:
// byte volumes (which we measure exactly), CPU cost of codecs (which we
// measure on the real implementations), and slot-limited parallelism.
package cluster

import (
	"fmt"
	"sort"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the machine count (paper: 5).
	Nodes int
	// MapSlotsPerNode (paper: 2, for 10 map slots).
	MapSlotsPerNode int
	// ReduceSlotsPerNode (paper: 1, for 5 reducers).
	ReduceSlotsPerNode int
	// DiskMBps is sequential disk bandwidth per node in MiB/s.
	DiskMBps float64
	// NetMBps is network bandwidth per node in MiB/s.
	NetMBps float64
}

// Paper returns the evaluation cluster of Sections III-E and IV-D:
// 5 nodes, 10 map slots, 5 reducers, 2012-era disks and gigabit Ethernet.
func Paper() Config {
	return Config{
		Nodes:              5,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		DiskMBps:           90,
		NetMBps:            110,
	}
}

// MapSlots returns the cluster-wide map slot count.
func (c Config) MapSlots() int { return c.Nodes * c.MapSlotsPerNode }

// ReduceSlots returns the cluster-wide reduce slot count.
func (c Config) ReduceSlots() int { return c.Nodes * c.ReduceSlotsPerNode }

func (c Config) validate() {
	if c.Nodes <= 0 || c.MapSlotsPerNode <= 0 || c.ReduceSlotsPerNode <= 0 {
		panic(fmt.Sprintf("cluster: bad config %+v", c))
	}
	if c.DiskMBps <= 0 || c.NetMBps <= 0 {
		panic(fmt.Sprintf("cluster: bad bandwidths %+v", c))
	}
}

// Task is the resource footprint of one map or reduce task.
type Task struct {
	// DiskBytes is the total sequential disk traffic (reads + writes):
	// input scan, spills, merge passes, final output.
	DiskBytes int64
	// NetBytes is the data moved across the network for this task (for a
	// reduce task, its shuffled partition).
	NetBytes int64
	// CPUSeconds is measured compute time: map/reduce function, codec,
	// transform, sort comparisons.
	CPUSeconds float64
}

// Add accumulates another footprint.
func (t *Task) Add(o Task) {
	t.DiskBytes += o.DiskBytes
	t.NetBytes += o.NetBytes
	t.CPUSeconds += o.CPUSeconds
}

// Seconds converts a task footprint to modeled duration.
func (c Config) Seconds(t Task) float64 {
	c.validate()
	const mib = 1 << 20
	return t.CPUSeconds +
		float64(t.DiskBytes)/(c.DiskMBps*mib) +
		float64(t.NetBytes)/(c.NetMBps*mib)
}

// Makespan list-schedules task durations onto slots in the given order,
// returning the finish time of the last task. It mirrors Hadoop's
// first-free-slot task assignment.
func Makespan(durations []float64, slots int) float64 {
	if slots <= 0 {
		panic("cluster: slots must be positive")
	}
	if len(durations) == 0 {
		return 0
	}
	free := make([]float64, min(slots, len(durations)))
	for _, d := range durations {
		// Assign to the earliest-free slot.
		best := 0
		for i, f := range free {
			if f < free[best] {
				best = i
			}
		}
		free[best] += d
	}
	var end float64
	for _, f := range free {
		if f > end {
			end = f
		}
	}
	return end
}

// JobEstimate is a job's modeled phase breakdown in seconds.
type JobEstimate struct {
	MapSeconds    float64
	ReduceSeconds float64
	// WastedMapSeconds / WastedReduceSeconds total the slot time burned by
	// attempts whose output was discarded (failures, corruption re-runs,
	// speculative losers). Their durations are already inside
	// MapSeconds/ReduceSeconds — wasted attempts occupied real slots — so
	// these report how much of each phase was recovery overhead.
	WastedMapSeconds    float64
	WastedReduceSeconds float64
}

// Total returns end-to-end modeled runtime. Hadoop overlaps the shuffle
// with the map phase; we fold shuffle transfer into the reduce tasks'
// NetBytes and keep the two phases sequential, which preserves ordering
// between configurations that move different byte volumes.
func (e JobEstimate) Total() float64 { return e.MapSeconds + e.ReduceSeconds }

// EstimateJob schedules the map tasks on map slots and reduce tasks on
// reduce slots.
func (c Config) EstimateJob(maps, reduces []Task) JobEstimate {
	return c.EstimateJobWithWaste(maps, reduces, nil, nil)
}

// EstimateJobWithWaste additionally schedules discarded attempts (failed,
// corruption-replaced, or speculatively-lost executions) alongside the
// committed tasks: wasted attempts held real slots for their duration, so
// recovery overhead stretches the phase makespans exactly as it would on the
// paper's cluster.
func (c Config) EstimateJobWithWaste(maps, reduces, wastedMaps, wastedReduces []Task) JobEstimate {
	c.validate()
	seconds := func(tasks []Task) []float64 {
		ds := make([]float64, len(tasks))
		for i, t := range tasks {
			ds[i] = c.Seconds(t)
		}
		return ds
	}
	sum := func(ds []float64) float64 {
		var s float64
		for _, d := range ds {
			s += d
		}
		return s
	}
	wm, wr := seconds(wastedMaps), seconds(wastedReduces)
	return JobEstimate{
		MapSeconds:          Makespan(append(seconds(maps), wm...), c.MapSlots()),
		ReduceSeconds:       Makespan(append(seconds(reduces), wr...), c.ReduceSlots()),
		WastedMapSeconds:    sum(wm),
		WastedReduceSeconds: sum(wr),
	}
}

// MakespanLPT is longest-processing-time-first scheduling, a tighter bound
// used by ablation benchmarks to separate scheduling noise from data-volume
// effects.
func MakespanLPT(durations []float64, slots int) float64 {
	sorted := append([]float64(nil), durations...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return Makespan(sorted, slots)
}
