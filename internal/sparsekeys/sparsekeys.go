// Package sparsekeys compresses multidimensional integer keys for *sparse*
// data, the direction Section V points at: "Goldstein et al. show how to
// compress multidimensional integer-valued keys for relational database
// tables. Our work currently focuses on dense keys, but adapting their work
// may be useful for sparse data."
//
// The scheme is Goldstein-Ramakrishnan-Shaft frame-of-reference coding:
// keys are grouped into pages; each page stores, per dimension, the minimum
// value and the bit width of the largest offset, then every key as
// bit-packed per-dimension offsets from those minimums. Clustered keys cost
// a few bits per dimension; even uniformly random keys cost no more than
// their raw width. Dense grids should use the aggregation schemes instead —
// the E11 experiment quantifies the crossover.
package sparsekeys

import (
	"errors"
	"fmt"
	"math/bits"

	"scikey/internal/binutil"
	"scikey/internal/grid"
)

// DefaultPageSize is the number of keys per frame-of-reference page.
const DefaultPageSize = 256

// Encoder accumulates coordinates and emits FOR-compressed pages.
type Encoder struct {
	rank     int
	pageSize int
	page     []grid.Coord
	out      []byte
}

// NewEncoder returns an Encoder for rank-dimensional keys. pageSize <= 0
// selects DefaultPageSize.
func NewEncoder(rank, pageSize int) *Encoder {
	if rank < 1 {
		panic("sparsekeys: rank must be >= 1")
	}
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	e := &Encoder{rank: rank, pageSize: pageSize}
	e.out = binutil.AppendVLong(e.out, int64(rank))
	return e
}

// Add appends one key.
func (e *Encoder) Add(c grid.Coord) {
	if len(c) != e.rank {
		panic(fmt.Sprintf("sparsekeys: key rank %d, encoder rank %d", len(c), e.rank))
	}
	e.page = append(e.page, c.Clone())
	if len(e.page) >= e.pageSize {
		e.flush()
	}
}

func (e *Encoder) flush() {
	if len(e.page) == 0 {
		return
	}
	e.out = binutil.AppendVLong(e.out, int64(len(e.page)))
	for d := 0; d < e.rank; d++ {
		lo, hi := e.page[0][d], e.page[0][d]
		for _, c := range e.page[1:] {
			if c[d] < lo {
				lo = c[d]
			}
			if c[d] > hi {
				hi = c[d]
			}
		}
		width := bits.Len64(uint64(hi - lo))
		e.out = binutil.AppendVLong(e.out, int64(lo))
		e.out = append(e.out, byte(width))
		// Bit-pack this dimension's offsets, MSB-first.
		var acc uint64
		var nbits uint
		for _, c := range e.page {
			v := uint64(c[d] - lo)
			for w := width - 1; w >= 0; w-- {
				acc = acc<<1 | (v>>uint(w))&1
				nbits++
				if nbits == 8 {
					e.out = append(e.out, byte(acc))
					acc, nbits = 0, 0
				}
			}
		}
		if nbits > 0 {
			e.out = append(e.out, byte(acc<<(8-nbits)))
		}
	}
	e.page = e.page[:0]
}

// Bytes finalizes the stream (flushing any partial page) and returns it.
// The Encoder may not be reused afterwards.
func (e *Encoder) Bytes() []byte {
	e.flush()
	return e.out
}

// Encode is the one-shot helper.
func Encode(coords []grid.Coord, pageSize int) []byte {
	if len(coords) == 0 {
		return NewEncoder(1, pageSize).Bytes()
	}
	e := NewEncoder(len(coords[0]), pageSize)
	for _, c := range coords {
		e.Add(c)
	}
	return e.Bytes()
}

// Decode inverts Encode, returning all keys in order.
func Decode(data []byte) ([]grid.Coord, error) {
	pos := 0
	rank64, n, err := binutil.DecodeVLong(data)
	if err != nil {
		return nil, err
	}
	pos += n
	if rank64 < 1 || rank64 > 64 {
		return nil, fmt.Errorf("sparsekeys: bad rank %d", rank64)
	}
	rank := int(rank64)
	var out []grid.Coord
	for pos < len(data) {
		count64, n, err := binutil.DecodeVLong(data[pos:])
		if err != nil {
			return nil, err
		}
		pos += n
		if count64 <= 0 || count64 > 1<<30 {
			return nil, fmt.Errorf("sparsekeys: bad page count %d", count64)
		}
		count := int(count64)
		page := make([]grid.Coord, count)
		for i := range page {
			page[i] = make(grid.Coord, rank)
		}
		for d := 0; d < rank; d++ {
			lo64, n, err := binutil.DecodeVLong(data[pos:])
			if err != nil {
				return nil, err
			}
			pos += n
			if pos >= len(data) {
				return nil, errors.New("sparsekeys: truncated width")
			}
			width := int(data[pos])
			pos++
			if width > 63 {
				return nil, fmt.Errorf("sparsekeys: bad width %d", width)
			}
			need := (count*width + 7) / 8
			if pos+need > len(data) {
				return nil, errors.New("sparsekeys: truncated page")
			}
			bitPos := 0
			for i := 0; i < count; i++ {
				var v uint64
				for w := 0; w < width; w++ {
					b := data[pos+bitPos/8]
					v = v<<1 | uint64(b>>(7-bitPos%8))&1
					bitPos++
				}
				page[i][d] = int(lo64) + int(v)
			}
			pos += need
		}
		out = append(out, page...)
	}
	return out, nil
}

// Stats describes the compression achieved for a key set.
type Stats struct {
	Keys         int
	EncodedBytes int
	RawBytes     int // 4 bytes per dimension per key, the GridKey coord cost
	BitsPerKey   float64
	ReductionPct float64
}

// Measure encodes coords and reports the size accounting.
func Measure(coords []grid.Coord, pageSize int) Stats {
	enc := Encode(coords, pageSize)
	s := Stats{Keys: len(coords), EncodedBytes: len(enc)}
	if len(coords) > 0 {
		s.RawBytes = len(coords) * 4 * len(coords[0])
		s.BitsPerKey = 8 * float64(len(enc)) / float64(len(coords))
		s.ReductionPct = 100 * (1 - float64(len(enc))/float64(s.RawBytes))
	}
	return s
}
