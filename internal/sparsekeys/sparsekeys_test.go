package sparsekeys

import (
	"math/rand"
	"testing"

	"scikey/internal/grid"
)

func roundTrip(t *testing.T, coords []grid.Coord, pageSize int) []byte {
	t.Helper()
	enc := Encode(coords, pageSize)
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(coords) {
		t.Fatalf("decoded %d keys, want %d", len(got), len(coords))
	}
	for i := range coords {
		if !got[i].Equal(coords[i]) {
			t.Fatalf("key %d = %v, want %v", i, got[i], coords[i])
		}
	}
	return enc
}

func TestRoundTripBasic(t *testing.T) {
	coords := []grid.Coord{{1, 2}, {3, 4}, {100, -7}, {0, 0}, {-50, 1 << 20}}
	roundTrip(t, coords, 2) // multiple pages
	roundTrip(t, coords, 0) // default page size
	roundTrip(t, nil, 0)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rank := 1 + rng.Intn(4)
		n := rng.Intn(1000)
		coords := make([]grid.Coord, n)
		for i := range coords {
			coords[i] = make(grid.Coord, rank)
			for d := range coords[i] {
				coords[i][d] = rng.Intn(1<<21) - (1 << 20)
			}
		}
		roundTrip(t, coords, 1+rng.Intn(300))
	}
}

func TestClusteredKeysCompressWell(t *testing.T) {
	// The Goldstein case: sparse but spatially clustered keys. Offsets
	// within a page span a small range, so keys cost a few bits each.
	rng := rand.New(rand.NewSource(2))
	coords := make([]grid.Coord, 4096)
	cx, cy := 1<<20, 1<<20
	for i := range coords {
		if i%256 == 0 {
			cx, cy = rng.Intn(1<<28), rng.Intn(1<<28)
		}
		coords[i] = grid.Coord{cx + rng.Intn(64), cy + rng.Intn(64)}
	}
	s := Measure(coords, 256)
	if s.ReductionPct < 70 {
		t.Errorf("clustered keys reduced only %.1f%% (%.1f bits/key)", s.ReductionPct, s.BitsPerKey)
	}
	roundTrip(t, coords, 256)
}

func TestUniformRandomKeysNoBlowup(t *testing.T) {
	// Uniform random keys over a big domain: FOR cannot win much, but must
	// not exceed the raw cost by more than the page headers.
	rng := rand.New(rand.NewSource(3))
	coords := make([]grid.Coord, 2048)
	for i := range coords {
		coords[i] = grid.Coord{rng.Intn(1 << 30), rng.Intn(1 << 30)}
	}
	s := Measure(coords, 256)
	if float64(s.EncodedBytes) > 1.05*float64(s.RawBytes) {
		t.Errorf("random keys blew up: %d vs %d raw", s.EncodedBytes, s.RawBytes)
	}
	roundTrip(t, coords, 256)
}

func TestConstantKeys(t *testing.T) {
	coords := make([]grid.Coord, 1000)
	for i := range coords {
		coords[i] = grid.Coord{42, -7, 9}
	}
	enc := roundTrip(t, coords, 250)
	// All offsets are zero-width: pages cost only headers.
	if len(enc) > 100 {
		t.Errorf("constant keys cost %d bytes", len(enc))
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode([]grid.Coord{{1, 2}, {3, 4}}, 2)
	cases := map[string][]byte{
		"empty rank": {},
		"bad rank":   {0x7f}, // rank 127 > 64
		"truncated":  good[:len(good)-2],
		"neg count":  append([]byte{2}, 0xff),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Empty stream with just a rank decodes to no keys.
	got, err := Decode(Encode(nil, 0))
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v, %v", got, err)
	}
}

func TestEncoderValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("rank 0", func() { NewEncoder(0, 16) })
	mustPanic("rank mismatch", func() { NewEncoder(2, 16).Add(grid.Coord{1}) })
}
