package serial

import "fmt"

// IntWritable is a boxed int32 serialized as 4 big-endian bytes.
type IntWritable int32

// Write implements Writable.
func (v IntWritable) Write(out *DataOutput) { out.WriteI32(int32(v)) }

// Read implements Writable.
func (v *IntWritable) Read(in *DataInput) error {
	x, err := in.ReadI32()
	*v = IntWritable(x)
	return err
}

// LongWritable is a boxed int64 serialized as 8 big-endian bytes.
type LongWritable int64

// Write implements Writable.
func (v LongWritable) Write(out *DataOutput) { out.WriteI64(int64(v)) }

// Read implements Writable.
func (v *LongWritable) Read(in *DataInput) error {
	x, err := in.ReadI64()
	*v = LongWritable(x)
	return err
}

// VIntWritable is a boxed int32 serialized as a Hadoop VInt.
type VIntWritable int32

// Write implements Writable.
func (v VIntWritable) Write(out *DataOutput) { out.WriteVInt(int32(v)) }

// Read implements Writable.
func (v *VIntWritable) Read(in *DataInput) error {
	x, err := in.ReadVInt()
	*v = VIntWritable(x)
	return err
}

// FloatWritable is a boxed float32 serialized as 4 big-endian IEEE bytes.
type FloatWritable float32

// Write implements Writable.
func (v FloatWritable) Write(out *DataOutput) { out.WriteF32(float32(v)) }

// Read implements Writable.
func (v *FloatWritable) Read(in *DataInput) error {
	x, err := in.ReadF32()
	*v = FloatWritable(x)
	return err
}

// DoubleWritable is a boxed float64 serialized as 8 big-endian IEEE bytes.
type DoubleWritable float64

// Write implements Writable.
func (v DoubleWritable) Write(out *DataOutput) { out.WriteF64(float64(v)) }

// Read implements Writable.
func (v *DoubleWritable) Read(in *DataInput) error {
	x, err := in.ReadF64()
	*v = DoubleWritable(x)
	return err
}

// Text is a string serialized as VInt length + bytes, like
// org.apache.hadoop.io.Text. "windspeed1" serializes to 11 bytes, the
// per-record cost the paper's introduction highlights.
type Text string

// Write implements Writable.
func (v Text) Write(out *DataOutput) { out.WriteText(string(v)) }

// Read implements Writable.
func (v *Text) Read(in *DataInput) error {
	s, err := in.ReadText()
	*v = Text(s)
	return err
}

// BytesWritable is a byte slice serialized as a 4-byte length + bytes.
type BytesWritable []byte

// Write implements Writable.
func (v BytesWritable) Write(out *DataOutput) {
	out.WriteI32(int32(len(v)))
	out.Write(v)
}

// Read implements Writable.
func (v *BytesWritable) Read(in *DataInput) error {
	n, err := in.ReadI32()
	if err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("serial: negative BytesWritable length %d", n)
	}
	p, err := in.ReadRaw(int(n))
	if err != nil {
		return err
	}
	*v = append((*v)[:0], p...)
	return nil
}

// NullWritable serializes to nothing; used for keys or values that carry no
// information.
type NullWritable struct{}

// Write implements Writable.
func (NullWritable) Write(*DataOutput) {}

// Read implements Writable.
func (*NullWritable) Read(*DataInput) error { return nil }
