// Package serial provides Hadoop-Writable-style serialization: big-endian
// fixed-width primitives, VInt/VLong variable-length integers, and Text
// strings, over simple in-memory DataOutput/DataInput buffers.
//
// The assumption this models (Section II-B(b)): "Keys are serialized
// (converted to byte representation) immediately when output from a
// Mapper". Everything downstream of the map function — spill, sort,
// shuffle, merge — operates on these byte forms, which is why raw-byte
// comparators are part of this package.
package serial

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"scikey/internal/binutil"
)

// Writable is the unit of serialization, mirroring
// org.apache.hadoop.io.Writable.
type Writable interface {
	// Write appends the byte form to out.
	Write(out *DataOutput)
	// Read replaces the receiver with a value decoded from in.
	Read(in *DataInput) error
}

// DataOutput is an append-only byte buffer with big-endian primitive
// writers. The zero value is ready to use.
type DataOutput struct {
	buf []byte
}

// NewDataOutput returns a DataOutput with capacity for n bytes.
func NewDataOutput(n int) *DataOutput { return &DataOutput{buf: make([]byte, 0, n)} }

// Bytes returns the accumulated bytes. The slice aliases internal storage
// and is invalidated by further writes.
func (o *DataOutput) Bytes() []byte { return o.buf }

// Len returns the number of bytes written.
func (o *DataOutput) Len() int { return len(o.buf) }

// Reset truncates the buffer for reuse.
func (o *DataOutput) Reset() { o.buf = o.buf[:0] }

// WriteByte appends one byte. The error is always nil; the signature
// matches io.ByteWriter.
func (o *DataOutput) WriteByte(b byte) error {
	o.buf = append(o.buf, b)
	return nil
}

// Write appends p, implementing io.Writer.
func (o *DataOutput) Write(p []byte) (int, error) {
	o.buf = append(o.buf, p...)
	return len(p), nil
}

// WriteU32 appends a big-endian uint32.
func (o *DataOutput) WriteU32(v uint32) { o.buf = binary.BigEndian.AppendUint32(o.buf, v) }

// WriteU64 appends a big-endian uint64.
func (o *DataOutput) WriteU64(v uint64) { o.buf = binary.BigEndian.AppendUint64(o.buf, v) }

// WriteI32 appends a big-endian int32 (Hadoop DataOutput.writeInt).
func (o *DataOutput) WriteI32(v int32) { o.WriteU32(uint32(v)) }

// WriteI64 appends a big-endian int64 (writeLong).
func (o *DataOutput) WriteI64(v int64) { o.WriteU64(uint64(v)) }

// WriteF32 appends an IEEE-754 float32 (writeFloat).
func (o *DataOutput) WriteF32(v float32) { o.WriteU32(math.Float32bits(v)) }

// WriteF64 appends an IEEE-754 float64 (writeDouble).
func (o *DataOutput) WriteF64(v float64) { o.WriteU64(math.Float64bits(v)) }

// WriteVLong appends a Hadoop VLong.
func (o *DataOutput) WriteVLong(v int64) { o.buf = binutil.AppendVLong(o.buf, v) }

// WriteVInt appends a Hadoop VInt.
func (o *DataOutput) WriteVInt(v int32) { o.buf = binutil.AppendVInt(o.buf, v) }

// WriteText appends a Text: VInt byte length followed by the bytes.
func (o *DataOutput) WriteText(s string) {
	o.WriteVInt(int32(len(s)))
	o.buf = append(o.buf, s...)
}

// DataInput reads the encodings produced by DataOutput from a byte slice.
type DataInput struct {
	buf []byte
	pos int
}

// NewDataInput returns a DataInput over b. The slice is not copied.
func NewDataInput(b []byte) *DataInput { return &DataInput{buf: b} }

// Remaining returns the number of unread bytes.
func (in *DataInput) Remaining() int { return len(in.buf) - in.pos }

// Pos returns the current read offset.
func (in *DataInput) Pos() int { return in.pos }

func (in *DataInput) need(n int) error {
	if in.Remaining() < n {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// ReadByte reads one byte, implementing io.ByteReader.
func (in *DataInput) ReadByte() (byte, error) {
	if in.pos >= len(in.buf) {
		return 0, io.EOF
	}
	b := in.buf[in.pos]
	in.pos++
	return b, nil
}

// ReadFull reads exactly len(p) bytes into p.
func (in *DataInput) ReadFull(p []byte) error {
	if err := in.need(len(p)); err != nil {
		return err
	}
	copy(p, in.buf[in.pos:])
	in.pos += len(p)
	return nil
}

// ReadRaw returns the next n bytes without copying. The slice aliases the
// input buffer.
func (in *DataInput) ReadRaw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("serial: negative length %d", n)
	}
	if err := in.need(n); err != nil {
		return nil, err
	}
	p := in.buf[in.pos : in.pos+n]
	in.pos += n
	return p, nil
}

// ReadU32 reads a big-endian uint32.
func (in *DataInput) ReadU32() (uint32, error) {
	if err := in.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(in.buf[in.pos:])
	in.pos += 4
	return v, nil
}

// ReadU64 reads a big-endian uint64.
func (in *DataInput) ReadU64() (uint64, error) {
	if err := in.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(in.buf[in.pos:])
	in.pos += 8
	return v, nil
}

// ReadI32 reads a big-endian int32.
func (in *DataInput) ReadI32() (int32, error) {
	v, err := in.ReadU32()
	return int32(v), err
}

// ReadI64 reads a big-endian int64.
func (in *DataInput) ReadI64() (int64, error) {
	v, err := in.ReadU64()
	return int64(v), err
}

// ReadF32 reads an IEEE-754 float32.
func (in *DataInput) ReadF32() (float32, error) {
	v, err := in.ReadU32()
	return math.Float32frombits(v), err
}

// ReadF64 reads an IEEE-754 float64.
func (in *DataInput) ReadF64() (float64, error) {
	v, err := in.ReadU64()
	return math.Float64frombits(v), err
}

// ReadVLong reads a Hadoop VLong.
func (in *DataInput) ReadVLong() (int64, error) {
	v, n, err := binutil.DecodeVLong(in.buf[in.pos:])
	if err != nil {
		return 0, err
	}
	in.pos += n
	return v, nil
}

// ReadVInt reads a Hadoop VInt.
func (in *DataInput) ReadVInt() (int32, error) {
	v, n, err := binutil.DecodeVInt(in.buf[in.pos:])
	if err != nil {
		return 0, err
	}
	in.pos += n
	return v, nil
}

// ReadText reads a Text written by WriteText.
func (in *DataInput) ReadText() (string, error) {
	n, err := in.ReadVInt()
	if err != nil {
		return "", err
	}
	p, err := in.ReadRaw(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Encode serializes w to a fresh byte slice.
func Encode(w Writable) []byte {
	out := NewDataOutput(16)
	w.Write(out)
	return append([]byte(nil), out.Bytes()...)
}

// Decode fills w from b, requiring that all bytes are consumed.
func Decode(w Writable, b []byte) error {
	in := NewDataInput(b)
	if err := w.Read(in); err != nil {
		return err
	}
	if in.Remaining() != 0 {
		return fmt.Errorf("serial: %d trailing bytes after %T", in.Remaining(), w)
	}
	return nil
}

// CompareBytes is the raw lexicographic comparator used by Hadoop's
// WritableComparator: byte-wise unsigned comparison, shorter prefix first.
func CompareBytes(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
