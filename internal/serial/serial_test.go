package serial

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	out := NewDataOutput(64)
	out.WriteByte(0xab)
	out.WriteI32(-123456)
	out.WriteI64(1 << 40)
	out.WriteF32(3.5)
	out.WriteF64(-2.25)
	out.WriteVLong(300)
	out.WriteVInt(-300)
	out.WriteText("windspeed1")
	out.WriteU32(0xdeadbeef)
	out.WriteU64(0x0123456789abcdef)

	in := NewDataInput(out.Bytes())
	if b, _ := in.ReadByte(); b != 0xab {
		t.Errorf("byte = %x", b)
	}
	if v, _ := in.ReadI32(); v != -123456 {
		t.Errorf("i32 = %d", v)
	}
	if v, _ := in.ReadI64(); v != 1<<40 {
		t.Errorf("i64 = %d", v)
	}
	if v, _ := in.ReadF32(); v != 3.5 {
		t.Errorf("f32 = %v", v)
	}
	if v, _ := in.ReadF64(); v != -2.25 {
		t.Errorf("f64 = %v", v)
	}
	if v, _ := in.ReadVLong(); v != 300 {
		t.Errorf("vlong = %d", v)
	}
	if v, _ := in.ReadVInt(); v != -300 {
		t.Errorf("vint = %d", v)
	}
	if s, _ := in.ReadText(); s != "windspeed1" {
		t.Errorf("text = %q", s)
	}
	if v, _ := in.ReadU32(); v != 0xdeadbeef {
		t.Errorf("u32 = %x", v)
	}
	if v, _ := in.ReadU64(); v != 0x0123456789abcdef {
		t.Errorf("u64 = %x", v)
	}
	if in.Remaining() != 0 {
		t.Errorf("%d bytes left over", in.Remaining())
	}
}

func TestTextEncodedSize(t *testing.T) {
	// "windspeed1" must cost exactly 11 bytes: VInt(10)=1 + 10 chars.
	// This is the 7-byte delta vs a 4-byte variable index that explains the
	// 33,000,006 vs 26,000,006 file sizes in the introduction.
	out := NewDataOutput(16)
	out.WriteText("windspeed1")
	if out.Len() != 11 {
		t.Errorf("Text(windspeed1) = %d bytes, want 11", out.Len())
	}
}

func TestWritablesRoundTrip(t *testing.T) {
	ws := []Writable{
		ptr(IntWritable(-42)),
		ptr(LongWritable(1 << 50)),
		ptr(VIntWritable(1000)),
		ptr(FloatWritable(1.25)),
		ptr(DoubleWritable(math.Pi)),
		ptr(Text("hello")),
		ptr(BytesWritable([]byte{1, 2, 3})),
		&NullWritable{},
	}
	for _, w := range ws {
		enc := Encode(w)
		// Decode into a zero value of the same dynamic type.
		switch v := w.(type) {
		case *IntWritable:
			var d IntWritable
			mustDecode(t, &d, enc)
			if d != *v {
				t.Errorf("IntWritable: %v != %v", d, *v)
			}
		case *LongWritable:
			var d LongWritable
			mustDecode(t, &d, enc)
			if d != *v {
				t.Errorf("LongWritable: %v != %v", d, *v)
			}
		case *VIntWritable:
			var d VIntWritable
			mustDecode(t, &d, enc)
			if d != *v {
				t.Errorf("VIntWritable: %v != %v", d, *v)
			}
		case *FloatWritable:
			var d FloatWritable
			mustDecode(t, &d, enc)
			if d != *v {
				t.Errorf("FloatWritable: %v != %v", d, *v)
			}
		case *DoubleWritable:
			var d DoubleWritable
			mustDecode(t, &d, enc)
			if d != *v {
				t.Errorf("DoubleWritable: %v != %v", d, *v)
			}
		case *Text:
			var d Text
			mustDecode(t, &d, enc)
			if d != *v {
				t.Errorf("Text: %v != %v", d, *v)
			}
		case *BytesWritable:
			var d BytesWritable
			mustDecode(t, &d, enc)
			if !bytes.Equal(d, *v) {
				t.Errorf("BytesWritable: %v != %v", d, *v)
			}
		case *NullWritable:
			if len(enc) != 0 {
				t.Errorf("NullWritable encoded to %d bytes", len(enc))
			}
		}
	}
}

func ptr[T any](v T) *T { return &v }

func mustDecode(t *testing.T, w Writable, b []byte) {
	t.Helper()
	if err := Decode(w, b); err != nil {
		t.Fatalf("Decode(%T): %v", w, err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	enc := append(Encode(ptr(IntWritable(1))), 0xff)
	var d IntWritable
	if err := Decode(&d, enc); err == nil {
		t.Error("Decode must reject trailing bytes")
	}
}

func TestTruncatedReads(t *testing.T) {
	in := NewDataInput([]byte{1, 2})
	if _, err := in.ReadI32(); err == nil {
		t.Error("ReadI32 on 2 bytes must fail")
	}
	in = NewDataInput([]byte{0x05, 'a', 'b'})
	if _, err := in.ReadText(); err == nil {
		t.Error("ReadText with short payload must fail")
	}
	var bw BytesWritable
	if err := Decode(&bw, []byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("negative BytesWritable length must fail")
	}
}

func TestCompareBytes(t *testing.T) {
	cases := []struct {
		a, b []byte
		want int
	}{
		{nil, nil, 0},
		{[]byte{1}, nil, 1},
		{nil, []byte{1}, -1},
		{[]byte{1, 2}, []byte{1, 2}, 0},
		{[]byte{1, 2}, []byte{1, 3}, -1},
		{[]byte{0xff}, []byte{0x01}, 1}, // unsigned comparison
		{[]byte{1}, []byte{1, 0}, -1},   // prefix sorts first
	}
	for _, c := range cases {
		if got := CompareBytes(c.a, c.b); got != c.want {
			t.Errorf("CompareBytes(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	f := func(a, b []byte) bool {
		return CompareBytes(a, b) == -CompareBytes(b, a) && CompareBytes(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataOutputReset(t *testing.T) {
	out := NewDataOutput(8)
	out.WriteI32(7)
	out.Reset()
	if out.Len() != 0 {
		t.Error("Reset must empty the buffer")
	}
	out.WriteVLong(1)
	if out.Len() != 1 {
		t.Errorf("post-reset write len = %d", out.Len())
	}
}
