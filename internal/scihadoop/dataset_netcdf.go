package scihadoop

import (
	"bytes"
	"fmt"

	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/netcdf"
	"scikey/internal/workload"
)

// StoreNetCDF materializes field values for a variable as a CDF-1 NetCDF
// file on fs, with one named dimension per extent axis. SciHadoop's input
// is NetCDF; this is the faithful storage path (Store keeps the raw-array
// fast path).
func StoreNetCDF(fs *hdfs.FileSystem, path, varName string, extent grid.Box, field *workload.Field) error {
	for _, c := range extent.Corner {
		if c != 0 {
			return fmt.Errorf("scihadoop: NetCDF extents are zero-origin, got corner %v", extent.Corner)
		}
	}
	nc := &netcdf.File{
		Attrs: []netcdf.Attr{{Name: "source", Text: "scikey synthetic field"}},
	}
	dims := make([]int, extent.Rank())
	for d := 0; d < extent.Rank(); d++ {
		nc.Dims = append(nc.Dims, netcdf.Dim{Name: fmt.Sprintf("dim%d", d), Len: extent.Size[d]})
		dims[d] = d
	}
	vals := make([]int32, 0, extent.NumCells())
	grid.ForEach(extent, func(c grid.Coord) {
		vals = append(vals, field.Value(c))
	})
	nc.Vars = append(nc.Vars, &netcdf.Var{
		Name:   varName,
		Dims:   dims,
		Attrs:  []netcdf.Attr{{Name: "units", Text: "m/s"}},
		Int32s: vals,
	})
	var buf bytes.Buffer
	if _, err := nc.WriteTo(&buf); err != nil {
		return err
	}
	return fs.WriteFile(path, buf.Bytes())
}

// OpenNetCDF reads a NetCDF header from fs and returns a Dataset for the
// named variable: its extent comes from the file's dimensions and its
// DataOffset from the variable's payload begin, so map splits read slabs
// straight out of the NetCDF file without rewriting it.
func OpenNetCDF(fs *hdfs.FileSystem, path, varName string) (Dataset, error) {
	// Headers are small; read a generous prefix (or the whole file if
	// shorter).
	size, err := fs.Stat(path)
	if err != nil {
		return Dataset{}, err
	}
	n := min(size, 1<<20)
	head, err := fs.ReadRange(path, 0, n)
	if err != nil {
		return Dataset{}, err
	}
	nc, err := netcdf.ParseHeader(head)
	if err != nil {
		return Dataset{}, fmt.Errorf("scihadoop: parsing NetCDF header of %s: %w", path, err)
	}
	v, ok := nc.VarByName(varName)
	if !ok {
		return Dataset{}, fmt.Errorf("scihadoop: variable %q not in %s", varName, path)
	}
	shape := v.Shape(nc)
	return Dataset{
		Path:       path,
		Var:        keys.VarRef{Name: varName},
		Extent:     grid.NewBox(make(grid.Coord, len(shape)), shape),
		DataOffset: v.Begin(),
	}, nil
}
