package scihadoop

import (
	"encoding/binary"
	"testing"

	"scikey/internal/aggregate"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/serial"
	"scikey/internal/workload"
)

// TestMultiVariableAggJob runs one job over two variables ("windspeed1" and
// "pressure") sharing a grid: mappers emit aggregate keys for both, the
// engine routes and splits them, and reducers must keep the variables
// apart — the multi-variable scenario Section III calls out as the hard
// case for byte-level stride selection and Section IV handles naturally
// through the variable field of the aggregate key.
func TestMultiVariableAggJob(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{16, 16})
	fs := hdfs.New(1<<20, 1, []string{"n0", "n1"})
	vars := []keys.VarRef{{Name: "windspeed1", Index: 0}, {Name: "pressure", Index: 1}}
	fields := []*workload.Field{
		{Extent: extent, Name: vars[0].Name},
		{Extent: extent, Name: vars[1].Name},
	}
	datasets := make([]Dataset, 2)
	for i, v := range vars {
		datasets[i] = Dataset{Path: "/data/" + v.Name, Var: v, Extent: extent}
		if err := Store(fs, datasets[i], fields[i]); err != nil {
			t.Fatal(err)
		}
	}

	domain := extent.Expand(1)
	mapping, err := aggregate.MappingFor("zorder", domain)
	if err != nil {
		t.Fatal(err)
	}
	kc := &keys.Codec{Rank: 2, Mode: keys.VarByName}
	offsets := window(2, 1)
	rp := keys.RangePartitioner{Total: mapping.Total(), NumReducers: 3}
	splits, err := datasets[0].Splits(fs, 3)
	if err != nil {
		t.Fatal(err)
	}

	job := &mapreduce.Job{
		Name:        "median-multivar",
		FS:          fs,
		Splits:      splits,
		NumReducers: 3,
		Compare:     kc.RawCompareAgg,
		OutputPath:  "/out/multivar",
		PartitionSplit: func(key, value []byte, n int) []mapreduce.RoutedKV {
			k, err := kc.DecodeAgg(serial.NewDataInput(key))
			if err != nil {
				panic(err)
			}
			frags := rp.SplitForPartition(keys.AggPair{Key: k, Values: value}, ElemSize)
			out := make([]mapreduce.RoutedKV, len(frags))
			for i, f := range frags {
				out[i] = mapreduce.RoutedKV{
					Partition: f.Partition,
					KV:        mapreduce.KV{Key: kc.AggKeyBytes(f.Pair.Key), Value: f.Pair.Values},
				}
			}
			return out
		},
		MergeTransform: func(pairs []mapreduce.KV) []mapreduce.KV {
			aps := make([]keys.AggPair, len(pairs))
			for i, p := range pairs {
				k, err := kc.DecodeAgg(serial.NewDataInput(p.Key))
				if err != nil {
					panic(err)
				}
				aps[i] = keys.AggPair{Key: k, Values: p.Value}
			}
			split := keys.SplitOverlaps(aps, ElemSize)
			out := make([]mapreduce.KV, len(split))
			for i, p := range split {
				out[i] = mapreduce.KV{Key: kc.AggKeyBytes(p.Key), Value: p.Values}
			}
			return out
		},
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
				box := split.Data.(grid.Box)
				// One aggregator per variable, both feeding the same emit.
				for vi, ds := range datasets {
					slab, err := readSlab(ctx, ds, box)
					if err != nil {
						return err
					}
					agg := aggregate.New(aggregate.Config{
						Mapping:  mapping,
						Var:      vars[vi],
						ElemSize: ElemSize,
						Emit: func(p keys.AggPair) {
							emit(kc.AggKeyBytes(p.Key), p.Values)
						},
					})
					var vbuf [ElemSize]byte
					grid.ForEach(box, func(c grid.Coord) {
						binary.BigEndian.PutUint32(vbuf[:], uint32(cellValue(slab, box, c)))
						for _, off := range offsets {
							agg.Add(c.Add(off), vbuf[:])
						}
					})
					agg.Close()
				}
				return nil
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return &aggReducer{kc: kc, op: Median}
		},
	}

	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}

	// Decode per-variable results and compare with per-variable oracles.
	got := map[string]CellResults{vars[0].Name: {}, vars[1].Name: {}}
	if err := eachOutputRecord(fs, res, func(kb, vb []byte) error {
		k, err := kc.DecodeAgg(serial.NewDataInput(kb))
		if err != nil {
			return err
		}
		m := got[k.Var.Name]
		if m == nil {
			t.Fatalf("output for unknown variable %q", k.Var.Name)
		}
		for i := uint64(0); i < k.Range.Len(); i++ {
			c := mapping.Coord(k.Range.Lo + i)
			m[c.String()] = int32(binary.BigEndian.Uint32(vb[i*ElemSize:]))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for vi, v := range vars {
		want := Reference(fields[vi], extent, 1, Median)
		resultsEqual(t, v.Name, got[v.Name], want)
	}
	// Both variables occupy the same curve ranges, so cross-variable
	// grouping bugs would have merged their values; also check the group
	// count is exactly double the single-variable case would give.
	if res.Counters.ReduceInputGroups.Value()%2 != 0 {
		t.Errorf("odd group count %d for two symmetric variables", res.Counters.ReduceInputGroups.Value())
	}
}
