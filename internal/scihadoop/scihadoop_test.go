package scihadoop

import (
	"testing"

	"scikey/internal/codec"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/workload"
)

func setup(t *testing.T, extent grid.Box) (*hdfs.FileSystem, Dataset, *workload.Field) {
	t.Helper()
	fs := hdfs.New(1<<20, 1, []string{"n0", "n1", "n2", "n3", "n4"})
	ds := Dataset{Path: "/data/windspeed1.arr", Var: keys.VarRef{Name: "windspeed1"}, Extent: extent}
	field := &workload.Field{Extent: extent, Name: ds.Var.Name}
	if err := Store(fs, ds, field); err != nil {
		t.Fatal(err)
	}
	return fs, ds, field
}

func resultsEqual(t *testing.T, label string, got, want CellResults) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d cells, want %d", label, len(got), len(want))
	}
	bad := 0
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			bad++
			if bad <= 5 {
				t.Errorf("%s: cell %s = %d, want %d (present=%v)", label, k, got[k], w, ok)
			}
		}
	}
	if bad > 5 {
		t.Errorf("%s: %d mismatched cells total", label, bad)
	}
}

func TestStoreAndSplits(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{12, 8})
	fs, ds, field := setup(t, extent)
	size, err := fs.Stat(ds.Path)
	if err != nil || size != 12*8*4 {
		t.Fatalf("stored size = %d, %v", size, err)
	}
	splits, err := ds.Splits(fs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("got %d splits", len(splits))
	}
	var cells int64
	for _, s := range splits {
		cells += s.Data.(grid.Box).NumCells()
	}
	if cells != extent.NumCells() {
		t.Errorf("splits cover %d cells, want %d", cells, extent.NumCells())
	}
	// The stored bytes decode back to the field values.
	data, _ := fs.ReadAll(ds.Path)
	box := grid.NewBox(grid.Coord{0, 0}, []int{12, 8})
	grid.ForEach(box, func(c grid.Coord) {
		if got := cellValue(data, box, c); got != field.Value(c) {
			t.Fatalf("cell %v = %d, want %d", c, got, field.Value(c))
		}
	})
}

func TestWindowOffsets(t *testing.T) {
	offs := window(2, 1)
	if len(offs) != 9 {
		t.Fatalf("3x3 window has %d offsets", len(offs))
	}
	offs3 := window(3, 1)
	if len(offs3) != 27 {
		t.Fatalf("3x3x3 window has %d offsets", len(offs3))
	}
	seen := make(map[string]bool)
	for _, o := range offs {
		seen[o.String()] = true
	}
	if !seen["(0,0)"] || !seen["(-1,1)"] {
		t.Error("window offsets incomplete")
	}
}

func TestSimpleMedianMatchesReference(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{20, 20})
	fs, ds, field := setup(t, extent)
	job, kc, err := SimpleKeyJob(fs, QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSimpleOutput(fs, res, kc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "simple median", got, Reference(field, extent, 1, Median))

	// 20x20 cells x 9 window targets.
	if n := res.Counters.MapOutputRecords.Value(); n != 3600 {
		t.Errorf("map output records = %d, want 3600", n)
	}
}

func TestAggMedianMatchesReference(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{20, 20})
	fs, ds, field := setup(t, extent)
	for _, curve := range []string{"zorder", "hilbert", "rowmajor", "peano"} {
		cfg := QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3, Curve: curve,
			OutputPath: "/out/agg-" + curve}
		job, mapping, err := AggKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mapreduce.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		kc := &keys.Codec{Rank: 2, Mode: keys.VarByName}
		got, err := ReadAggOutput(fs, res, kc, mapping)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, "agg median "+curve, got, Reference(field, extent, 1, Median))

		c := res.Counters
		if c.OverlapKeySplits.Value() == 0 {
			t.Errorf("%s: expected overlap splits with 4 mappers", curve)
		}
		if c.MapOutputRecords.Value() >= 3600 {
			t.Errorf("%s: aggregation produced %d records; expected far fewer than 3600",
				curve, c.MapOutputRecords.Value())
		}
	}
}

func TestAggShrinksIntermediateData(t *testing.T) {
	// The headline effect (Section IV-D): aggregation cuts "Map output
	// materialized bytes" dramatically versus simple keys.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{32, 32})
	fs, ds, _ := setup(t, extent)

	sjob, _, err := SimpleKeyJob(fs, QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3, OutputPath: "/out/s"})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := mapreduce.Run(sjob)
	if err != nil {
		t.Fatal(err)
	}
	ajob, _, err := AggKeyJob(fs, QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3, OutputPath: "/out/a"})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := mapreduce.Run(ajob)
	if err != nil {
		t.Fatal(err)
	}
	sBytes := sres.Counters.MapOutputMaterializedBytes.Value()
	aBytes := ares.Counters.MapOutputMaterializedBytes.Value()
	if aBytes*2 > sBytes {
		t.Errorf("aggregation: %d bytes vs simple %d; expected > 2x reduction", aBytes, sBytes)
	}
}

func TestSimpleMedianWithTransformCodec(t *testing.T) {
	// Section III-E's configuration: simple keys + transform+zlib codec.
	// Results must be identical; materialized bytes must shrink.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{16, 16})
	fs, ds, field := setup(t, extent)

	plain, kc, err := SimpleKeyJob(fs, QueryConfig{DS: ds, NumSplits: 2, NumReducers: 2, OutputPath: "/out/p"})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := mapreduce.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	zipped, kc2, err := SimpleKeyJob(fs, QueryConfig{DS: ds, NumSplits: 2, NumReducers: 2,
		MapOutputCodec: codec.NewTransform(codec.Zlib), OutputPath: "/out/z"})
	if err != nil {
		t.Fatal(err)
	}
	zres, err := mapreduce.Run(zipped)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(field, extent, 1, Median)
	gotP, _ := ReadSimpleOutput(fs, pres, kc)
	gotZ, _ := ReadSimpleOutput(fs, zres, kc2)
	resultsEqual(t, "plain", gotP, want)
	resultsEqual(t, "transform+zlib", gotZ, want)

	pB := pres.Counters.MapOutputMaterializedBytes.Value()
	zB := zres.Counters.MapOutputMaterializedBytes.Value()
	if zB >= pB {
		t.Errorf("transform+zlib did not shrink map output: %d vs %d", zB, pB)
	}
}

func TestMaxWithCombiner(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{15, 15})
	fs, ds, field := setup(t, extent)
	job, kc, err := SimpleKeyJob(fs, QueryConfig{DS: ds, Op: Max, NumSplits: 3, NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSimpleOutput(fs, res, kc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "max", got, Reference(field, extent, 1, Max))
	if res.Counters.CombineInputRecords.Value() == 0 {
		t.Error("combiner did not run for the distributive max query")
	}
}

func TestAggMedianVarByIndexMode(t *testing.T) {
	// Key mode must not affect results, only byte sizes.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{10, 10})
	fs, ds, field := setup(t, extent)
	cfg := QueryConfig{DS: ds, NumSplits: 2, NumReducers: 2, KeyMode: keys.VarByIndex}
	job, mapping, err := AggKeyJob(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	kc := &keys.Codec{Rank: 2, Mode: keys.VarByIndex}
	got, err := ReadAggOutput(fs, res, kc, mapping)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "agg index mode", got, Reference(field, extent, 1, Median))
}

func TestAggSmallFlushBufferStillCorrect(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{12, 12})
	fs, ds, field := setup(t, extent)
	cfg := QueryConfig{DS: ds, NumSplits: 3, NumReducers: 2, FlushCells: 32}
	job, mapping, err := AggKeyJob(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	kc := &keys.Codec{Rank: 2, Mode: keys.VarByName}
	got, err := ReadAggOutput(fs, res, kc, mapping)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "agg small flush", got, Reference(field, extent, 1, Median))
}

func TestPartitionSplitsHappen(t *testing.T) {
	// With a range partitioner over multiple reducers, some aggregate keys
	// must straddle shard boundaries and get split.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{24, 24})
	fs, ds, _ := setup(t, extent)
	job, _, err := AggKeyJob(fs, QueryConfig{DS: ds, NumSplits: 2, NumReducers: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.PartitionKeySplits.Value() == 0 {
		t.Error("expected partition-time key splits with 5 reducers")
	}
}

func TestBoxMedianMatchesReference(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{20, 20})
	fs, ds, field := setup(t, extent)
	job, err := BoxKeyJob(fs, QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	kc := &keys.Codec{Rank: 2, Mode: keys.VarByName}
	got, err := ReadBoxOutput(fs, res, kc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "box median", got, Reference(field, extent, 1, Median))
	c := res.Counters
	if c.MapOutputRecords.Value() >= 3600 {
		t.Errorf("box aggregation produced %d records, expected far fewer", c.MapOutputRecords.Value())
	}
	if c.OverlapKeySplits.Value() == 0 {
		t.Error("expected box overlap splits with 4 mappers")
	}
	if c.PartitionKeySplits.Value() == 0 {
		t.Error("expected slab partition splits")
	}
}

func TestBoxMedianSmallFlush(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{14, 14})
	fs, ds, field := setup(t, extent)
	job, err := BoxKeyJob(fs, QueryConfig{DS: ds, NumSplits: 3, NumReducers: 4, FlushCells: 50})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	kc := &keys.Codec{Rank: 2, Mode: keys.VarByName}
	got, err := ReadBoxOutput(fs, res, kc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "box median small flush", got, Reference(field, extent, 1, Median))
}

func TestBoxMaxMatchesReference(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{12, 12})
	fs, ds, field := setup(t, extent)
	job, err := BoxKeyJob(fs, QueryConfig{DS: ds, Op: Max, NumSplits: 2, NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	kc := &keys.Codec{Rank: 2, Mode: keys.VarByName}
	got, err := ReadBoxOutput(fs, res, kc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "box max", got, Reference(field, extent, 1, Max))
}

func TestReaggregateOutputCoalesces(t *testing.T) {
	// The Section IV-B follow-up: key splitting inflates the key count;
	// reduce-side re-aggregation recovers it. Results must be unchanged
	// and output records strictly fewer.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{24, 24})
	fs, ds, field := setup(t, extent)
	want := Reference(field, extent, 1, Median)
	run := func(reagg bool, path string) (CellResults, int64) {
		cfg := QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3, Curve: "rowmajor",
			Reaggregate: reagg, OutputPath: path}
		job, mapping, err := AggKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mapreduce.Run(job)
		if err != nil {
			t.Fatal(err)
		}
		kc := &keys.Codec{Rank: 2, Mode: keys.VarByName}
		got, err := ReadAggOutput(fs, res, kc, mapping)
		if err != nil {
			t.Fatal(err)
		}
		return got, res.Counters.ReduceOutputRecords.Value()
	}
	plainOut, plainRecs := run(false, "/out/noreagg")
	reaggOut, reaggRecs := run(true, "/out/reagg")
	resultsEqual(t, "no reagg", plainOut, want)
	resultsEqual(t, "reagg", reaggOut, want)
	if reaggRecs >= plainRecs {
		t.Errorf("re-aggregation did not shrink output: %d vs %d records", reaggRecs, plainRecs)
	}
}

func TestNetCDFDatasetEndToEnd(t *testing.T) {
	// Store the field as a real NetCDF (CDF-1) file, open it through the
	// header parser, and run the median query against it: results must
	// match the raw-array path exactly.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{18, 18})
	fs := hdfs.New(1<<20, 1, []string{"n0", "n1"})
	field := &workload.Field{Extent: extent, Name: "windspeed1"}
	if err := StoreNetCDF(fs, "/data/w.nc", "windspeed1", extent, field); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenNetCDF(fs, "/data/w.nc", "windspeed1")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Extent.Equal(extent) {
		t.Fatalf("extent from NetCDF = %v, want %v", ds.Extent, extent)
	}
	if ds.DataOffset <= 0 {
		t.Fatalf("DataOffset = %d", ds.DataOffset)
	}
	job, kc, err := SimpleKeyJob(fs, QueryConfig{DS: ds, NumSplits: 3, NumReducers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSimpleOutput(fs, res, kc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "netcdf median", got, Reference(field, extent, 1, Median))

	if _, err := OpenNetCDF(fs, "/data/w.nc", "missing"); err == nil {
		t.Error("missing variable must fail")
	}
	if err := StoreNetCDF(fs, "/bad.nc", "v", grid.NewBox(grid.Coord{1, 0}, []int{2, 2}), field); err == nil {
		t.Error("non-zero-origin extent must fail")
	}
}

func Test3DMedianAllFlavors(t *testing.T) {
	// The abstract's subject is a 3-D scalar field; everything is
	// rank-generic, so run the 3x3x3 sliding median end-to-end in all
	// three key flavors on a small cube.
	extent := grid.NewBox(grid.Coord{0, 0, 0}, []int{8, 8, 8})
	fs := hdfs.New(1<<20, 1, []string{"n0", "n1"})
	ds := Dataset{Path: "/data/cube.arr", Var: keys.VarRef{Name: "windspeed1"}, Extent: extent}
	field := &workload.Field{Extent: extent, Name: ds.Var.Name}
	if err := Store(fs, ds, field); err != nil {
		t.Fatal(err)
	}
	want := Reference(field, extent, 1, Median)
	kc := &keys.Codec{Rank: 3, Mode: keys.VarByName}

	sjob, skc, err := SimpleKeyJob(fs, QueryConfig{DS: ds, NumSplits: 3, NumReducers: 2, OutputPath: "/out/3s"})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := mapreduce.Run(sjob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSimpleOutput(fs, sres, skc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "3d simple", got, want)

	ajob, mapping, err := AggKeyJob(fs, QueryConfig{DS: ds, NumSplits: 3, NumReducers: 2, Curve: "hilbert", OutputPath: "/out/3a"})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := mapreduce.Run(ajob)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := ReadAggOutput(fs, ares, kc, mapping)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "3d agg", gotA, want)

	bjob, err := BoxKeyJob(fs, QueryConfig{DS: ds, NumSplits: 3, NumReducers: 2, OutputPath: "/out/3b"})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := mapreduce.Run(bjob)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := ReadBoxOutput(fs, bres, kc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "3d box", gotB, want)

	// 27 window offsets per cell in 3-D.
	if n := sres.Counters.MapOutputRecords.Value(); n != 8*8*8*27 {
		t.Errorf("3-D simple records = %d, want %d", n, 8*8*8*27)
	}
}

func TestDegenerateGrids(t *testing.T) {
	// 1x1 grid: every flavor must still produce the 3x3 halo of 9 output
	// cells, each the median of the single source value.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{1, 1})
	fs, ds, field := setup(t, extent)
	want := Reference(field, extent, 1, Median)
	if len(want) != 9 {
		t.Fatalf("reference has %d cells, want 9", len(want))
	}

	sjob, skc, err := SimpleKeyJob(fs, QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3, OutputPath: "/out/d1"})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := mapreduce.Run(sjob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSimpleOutput(fs, sres, skc)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "1x1 simple", got, want)

	ajob, mapping, err := AggKeyJob(fs, QueryConfig{DS: ds, NumSplits: 2, NumReducers: 2, OutputPath: "/out/d2"})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := mapreduce.Run(ajob)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := ReadAggOutput(fs, ares, &keys.Codec{Rank: 2, Mode: keys.VarByName}, mapping)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "1x1 agg", gotA, want)
}

func TestRadiusLargerThanGrid(t *testing.T) {
	// A 5x5 window (radius 2) over a 3x3 grid: halo dwarfs the data.
	extent := grid.NewBox(grid.Coord{0, 0}, []int{3, 3})
	fs, ds, field := setup(t, extent)
	want := Reference(field, extent, 2, Median)
	job, mapping, err := AggKeyJob(fs, QueryConfig{DS: ds, Radius: 2, NumSplits: 2, NumReducers: 3, OutputPath: "/out/r2"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAggOutput(fs, res, &keys.Codec{Rank: 2, Mode: keys.VarByName}, mapping)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "radius 2", got, want)
}
