package scihadoop

import (
	"encoding/binary"
	"fmt"
	"time"

	"scikey/internal/codec"
	"scikey/internal/faults"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/obs"
	"scikey/internal/serial"
	"scikey/internal/stats"
)

// Op selects the window operator.
type Op int

const (
	// Median is the paper's evaluation query: holistic, so no combiner can
	// shrink map output — exactly why intermediate-data size dominates.
	Median Op = iota
	// Max is distributive; the simple-key job can run a combiner, giving
	// the engine's combiner path realistic exercise.
	Max
)

// String names the operator.
func (op Op) String() string {
	if op == Max {
		return "max"
	}
	return "median"
}

func (op Op) fold(values []int32) int32 {
	switch op {
	case Max:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	default:
		return stats.MedianInPlace(values)
	}
}

// QueryConfig parameterizes a sliding-window query job.
type QueryConfig struct {
	// DS is the input dataset.
	DS Dataset
	// Radius is the window radius; 1 gives the paper's 3x3 window.
	Radius int
	// Op is the window operator (default Median).
	Op Op
	// NumSplits is the map task count.
	NumSplits int
	// NumReducers matches the paper's 5 unless overridden.
	NumReducers int
	// KeyMode picks the simple-key variable encoding (default VarByName,
	// the paper's expensive case).
	KeyMode keys.VarMode
	// MapOutputCodec compresses spills (Section III-E's custom codec slots
	// in here). Nil disables compression.
	MapOutputCodec codec.Codec
	// CodecWorkers is the parallel block codec's pipeline width, meaningful
	// only when the map-output codec is a block+ stack: 0 means GOMAXPROCS,
	// 1 means the sequential in-line reference path, n>1 means n workers.
	// The framing is position-determined, so every width produces the same
	// bytes.
	CodecWorkers int
	// Curve names the space-filling curve for aggregate keys (default
	// "zorder").
	Curve string
	// FlushCells bounds the aggregation buffer.
	FlushCells int
	// Combine enables in-node combining: committed map outputs are pooled
	// per node group and runs of equal keys are folded with the operator's
	// value monoid before the shuffle (mapreduce.CombineConfig). Only
	// distributive operators combine; a median query rejects it at build
	// time, since no monoid over partial windows exists for a holistic
	// operator — the very property that makes the paper's median query's
	// intermediate data irreducible by combining.
	Combine bool
	// CombineNodes sets the combine node-group count (0 = one group per
	// shuffle node when networked, otherwise one group; cluster drivers
	// pass the worker count, one combine buffer per worker process).
	CombineNodes int
	// Reaggregate enables reduce-side re-aggregation of output ranges
	// (AggKeyJob only): coalesce ranges fragmented by key splitting back
	// into maximal contiguous ranges — the follow-up Section IV-B
	// mentions as future work.
	Reaggregate bool
	// OutputPath is the HDFS output directory.
	OutputPath string
	// Retry configures the engine's attempt scheduler (retries, backoff,
	// speculation). The zero value fails the job on the first task error.
	Retry mapreduce.RetryPolicy
	// Faults optionally injects deterministic failures for recovery
	// experiments. Nil disables injection.
	Faults *faults.Injector
	// Shuffle selects the shuffle transport (in-memory, in-process pipes, or
	// loopback TCP). Nil keeps the in-memory hand-off.
	Shuffle *mapreduce.ShuffleConfig
	// Timeout bounds the whole job's wall-clock time. 0 means no deadline.
	Timeout time.Duration
	// Remote, when non-nil, hands task attempts to the cluster coordinator
	// for execution in worker processes (see mapreduce.Job.Remote). Nil
	// runs everything in this process.
	Remote mapreduce.Remote
	// Parallelism caps concurrently executing task attempts. 0 keeps the
	// engine's sequential default; cluster mode wants it above 1 so several
	// workers hold grants at once.
	Parallelism int
	// Obs, when non-nil, records the job's trace spans and metrics (see
	// mapreduce.Job.Obs). Nil disables observability.
	Obs *obs.Observer
	// MapCache, with a non-empty CacheKey, lets the job reuse (and store)
	// published map-phase output across runs — the query service's shared
	// segment cache plugs in here (see mapreduce.Job.MapCache). The caller
	// derives CacheKey from everything that shapes map output bytes.
	MapCache mapreduce.MapOutputCache
	// CacheKey names this query's map output in MapCache.
	CacheKey string
}

func (c QueryConfig) withDefaults() QueryConfig {
	if c.Radius == 0 {
		c.Radius = 1
	}
	if c.NumSplits == 0 {
		c.NumSplits = 10
	}
	if c.NumReducers == 0 {
		c.NumReducers = 5
	}
	if c.KeyMode == 0 {
		c.KeyMode = keys.VarByName
	}
	if c.Curve == "" {
		c.Curve = "zorder"
	}
	if c.OutputPath == "" {
		c.OutputPath = "/out/" + c.Op.String()
	}
	return c
}

// CombinerFor returns the value monoid for a window operator, or an error
// for holistic operators that have none. Every query value is a big-endian
// int32 lane array (one lane for simple keys, one per cell for aggregate
// and box keys), so the distributive max folds lane-wise.
func CombinerFor(op Op) (mapreduce.Combiner, error) {
	if op == Max {
		return mapreduce.MaxInt32, nil
	}
	return nil, fmt.Errorf("scihadoop: op %s is holistic: no monoid can merge partial windows, so in-node combining is unavailable", op)
}

// combineConfig resolves the config's combining request, or nil when off.
func (c QueryConfig) combineConfig() (*mapreduce.CombineConfig, error) {
	if !c.Combine {
		return nil, nil
	}
	cb, err := CombinerFor(c.Op)
	if err != nil {
		return nil, err
	}
	return &mapreduce.CombineConfig{Combiner: cb, Nodes: c.CombineNodes}, nil
}

// window enumerates the target offsets of the sliding window.
func window(rank, radius int) []grid.Coord {
	var rec func(cur grid.Coord)
	var out []grid.Coord
	rec = func(cur grid.Coord) {
		if len(cur) == rank {
			out = append(out, cur.Clone())
			return
		}
		for d := -radius; d <= radius; d++ {
			rec(append(cur, d))
		}
	}
	rec(make(grid.Coord, 0, rank))
	return out
}

// SimpleKeyJob builds the baseline job: one GridKey per (window target,
// source value) pair, hash-partitioned, with every key carrying the full
// variable reference and coordinate — the formulation whose intermediate
// volume the paper attacks.
func SimpleKeyJob(fs *hdfs.FileSystem, cfg QueryConfig) (*mapreduce.Job, *keys.Codec, error) {
	cfg = cfg.withDefaults()
	kc := &keys.Codec{Rank: cfg.DS.Extent.Rank(), Mode: cfg.KeyMode}
	splits, err := cfg.DS.Splits(fs, cfg.NumSplits)
	if err != nil {
		return nil, nil, err
	}
	offsets := window(cfg.DS.Extent.Rank(), cfg.Radius)
	cc, err := cfg.combineConfig()
	if err != nil {
		return nil, nil, err
	}
	ds := cfg.DS
	v := cfg.DS.Var
	op := cfg.Op

	job := &mapreduce.Job{
		Name:           fmt.Sprintf("%s-simple", op),
		Combine:        cc,
		FS:             fs,
		Splits:         splits,
		NumReducers:    cfg.NumReducers,
		Compare:        kc.RawCompareGrid,
		Partition:      keys.HashPartition,
		MapOutputCodec: cfg.MapOutputCodec,
		OutputPath:     cfg.OutputPath,
		Retry:          cfg.Retry,
		Faults:         cfg.Faults,
		Shuffle:        cfg.Shuffle,
		Timeout:        cfg.Timeout,
		Remote:         cfg.Remote,
		Parallelism:    cfg.Parallelism,
		Obs:            cfg.Obs,
		MapCache:       cfg.MapCache,
		CacheKey:       cfg.CacheKey,
		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
				box := split.Data.(grid.Box)
				slab, err := readSlab(ctx, ds, box)
				if err != nil {
					return err
				}
				var vbuf [ElemSize]byte
				out := serial.NewDataOutput(64)
				grid.ForEach(box, func(c grid.Coord) {
					binary.BigEndian.PutUint32(vbuf[:], uint32(cellValue(slab, box, c)))
					for _, off := range offsets {
						out.Reset()
						kc.EncodeGrid(out, keys.GridKey{Var: v, Coord: c.Add(off)})
						emit(out.Bytes(), vbuf[:])
					}
				})
				return nil
			})
		},
		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emit) error {
				vals := make([]int32, len(values))
				for i, vb := range values {
					vals[i] = int32(binary.BigEndian.Uint32(vb))
				}
				var ob [ElemSize]byte
				binary.BigEndian.PutUint32(ob[:], uint32(op.fold(vals)))
				emit(key, ob[:])
				return nil
			})
		},
	}
	if op == Max {
		// Max is distributive, so the reducer doubles as combiner.
		job.NewCombiner = job.NewReducer
	}
	return job, kc, nil
}
