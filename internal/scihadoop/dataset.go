// Package scihadoop is the array-based query layer on top of the MapReduce
// engine: scientific datasets stored as dense row-major arrays on the
// simulated HDFS, array-aware input splits, and the paper's evaluation
// queries — most importantly the sliding 3x3-median (Section IV-C), a
// holistic window query whose halo exchange forces the overlapping
// aggregate keys that motivate key splitting.
//
// Each query comes in two flavors:
//
//   - Simple keys: one (variable, coordinate) key per emitted cell, Hadoop's
//     natural formulation and the paper's baseline.
//   - Aggregate keys: mapper output funneled through the aggregation
//     library, routed by a range partitioner with partition-time key
//     splitting and reduce-time overlap splitting.
package scihadoop

import (
	"encoding/binary"
	"fmt"

	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/workload"
)

// Dataset describes a dense array variable stored on HDFS: a row-major
// sequence of big-endian int32 cells covering Extent, starting DataOffset
// bytes into the file (0 for raw arrays; the payload offset from the header
// for NetCDF files).
type Dataset struct {
	// Path is the HDFS location of the array file.
	Path string
	// Var names the variable.
	Var keys.VarRef
	// Extent is the array's domain.
	Extent grid.Box
	// DataOffset is where the variable's payload begins within the file.
	DataOffset int64
}

// ElemSize is the fixed cell size of Dataset arrays.
const ElemSize = 4

// Store materializes field values for ds on fs.
func Store(fs *hdfs.FileSystem, ds Dataset, field *workload.Field) error {
	w, err := fs.Create(ds.Path)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, 64<<10)
	var werr error
	grid.ForEach(ds.Extent, func(c grid.Coord) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(field.Value(c)))
		if len(buf) >= 64<<10 {
			if _, err := w.Write(buf); err != nil && werr == nil {
				werr = err
			}
			buf = buf[:0]
		}
	})
	if _, err := w.Write(buf); err != nil && werr == nil {
		werr = err
	}
	if err := w.Close(); err != nil && werr == nil {
		werr = err
	}
	return werr
}

// Splits partitions the dataset into n contiguous slabs along the first
// dimension, attaching block-location host hints for the slab's first byte.
func (ds Dataset) Splits(fs *hdfs.FileSystem, n int) ([]mapreduce.Split, error) {
	locs, err := fs.BlockLocations(ds.Path)
	if err != nil {
		return nil, err
	}
	boxes := grid.Partition(ds.Extent, n)
	out := make([]mapreduce.Split, len(boxes))
	for i, b := range boxes {
		off := ds.DataOffset + grid.RowMajorIndex(ds.Extent, b.Corner)*ElemSize
		var hosts []string
		for _, l := range locs {
			if off >= l.Offset && off < l.Offset+l.Length {
				hosts = l.Hosts
				break
			}
		}
		out[i] = mapreduce.Split{ID: i, Hosts: hosts, Data: b}
	}
	return out, nil
}

// readSlab fetches a split's slab (which must be contiguous in row-major
// order, as Partition slabs are) and reports the input to the counters.
func readSlab(ctx *mapreduce.TaskContext, ds Dataset, box grid.Box) ([]byte, error) {
	off := ds.DataOffset + grid.RowMajorIndex(ds.Extent, box.Corner)*ElemSize
	n := box.NumCells() * ElemSize
	data, err := ctx.FS.ReadRange(ds.Path, off, n)
	if err != nil {
		return nil, fmt.Errorf("scihadoop: reading slab %v: %w", box, err)
	}
	ctx.CountInput(box.NumCells(), n)
	return data, nil
}

// cellValue returns the value of c from a slab covering box.
func cellValue(slab []byte, box grid.Box, c grid.Coord) int32 {
	idx := grid.RowMajorIndex(box, c)
	return int32(binary.BigEndian.Uint32(slab[idx*ElemSize:]))
}
