package scihadoop

import (
	"fmt"
	"testing"

	"scikey/internal/grid"
	"scikey/internal/mapreduce"
)

// TestStreamingReduceMatchesReferenceAgg validates the agg MergeCut
// end-to-end: the streaming reduce path — which feeds SplitOverlaps bounded
// windows delimited by the cut predicate instead of the whole merged
// partition — must produce output files byte-identical to the materialized
// reference path, with identical overlap-split accounting. The extent and
// split count are chosen so reducers actually see overlapping unequal keys.
func TestStreamingReduceMatchesReferenceAgg(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{24, 16})
	fs, ds, _ := setup(t, extent)

	run := func(reference bool) ([]string, int64) {
		cfg := QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3,
			OutputPath: fmt.Sprintf("/out/agg-ref-%v", reference)}
		job, _, err := AggKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		job.ReferenceReduce = reference
		res, err := mapreduce.Run(job)
		if err != nil {
			t.Fatalf("reference=%v: %v", reference, err)
		}
		outs := make([]string, len(res.OutputPaths))
		for i, p := range res.OutputPaths {
			data, err := fs.ReadAll(p)
			if err != nil {
				t.Fatal(err)
			}
			outs[i] = string(data)
		}
		return outs, res.Counters.OverlapKeySplits.Value()
	}

	refOuts, refSplits := run(true)
	strOuts, strSplits := run(false)
	if refSplits == 0 {
		t.Fatal("reference run split no overlapping keys; test exercises nothing")
	}
	if strSplits != refSplits {
		t.Errorf("overlap splits: streaming %d, reference %d", strSplits, refSplits)
	}
	for i := range refOuts {
		if refOuts[i] != strOuts[i] {
			t.Errorf("partition %d output bytes differ (reference %d B, streaming %d B)",
				i, len(refOuts[i]), len(strOuts[i]))
		}
	}
}

// TestStreamingReduceMatchesReferenceBox is the box-geometry twin: the dim-0
// cluster cut must keep windowed boxagg.SplitOverlaps byte-identical to the
// whole-partition rewrite.
func TestStreamingReduceMatchesReferenceBox(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{24, 16})
	fs, ds, _ := setup(t, extent)

	run := func(reference bool) ([]string, int64) {
		cfg := QueryConfig{DS: ds, NumSplits: 4, NumReducers: 3,
			OutputPath: fmt.Sprintf("/out/box-ref-%v", reference)}
		job, err := BoxKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		job.ReferenceReduce = reference
		res, err := mapreduce.Run(job)
		if err != nil {
			t.Fatalf("reference=%v: %v", reference, err)
		}
		outs := make([]string, len(res.OutputPaths))
		for i, p := range res.OutputPaths {
			data, err := fs.ReadAll(p)
			if err != nil {
				t.Fatal(err)
			}
			outs[i] = string(data)
		}
		return outs, res.Counters.OverlapKeySplits.Value()
	}

	refOuts, refSplits := run(true)
	strOuts, strSplits := run(false)
	if refSplits == 0 {
		t.Fatal("reference run split no overlapping boxes; test exercises nothing")
	}
	if strSplits != refSplits {
		t.Errorf("overlap splits: streaming %d, reference %d", strSplits, refSplits)
	}
	for i := range refOuts {
		if refOuts[i] != strOuts[i] {
			t.Errorf("partition %d output bytes differ (reference %d B, streaming %d B)",
				i, len(refOuts[i]), len(strOuts[i]))
		}
	}
}
