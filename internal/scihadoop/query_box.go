package scihadoop

import (
	"encoding/binary"
	"fmt"

	"scikey/internal/boxagg"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/serial"
)

// BoxKeyJob builds the n-dimensional-aggregation variant of the query: the
// alternative Section IV-A calls "ideal" but sets aside as difficult
// (Fig. 5). Mapper output is greedily boxed into (corner, size) aggregate
// keys; a slab partitioner splits boxes across reducers along dimension 0;
// the reduce-side merge splits unequal overlapping boxes along arrangement
// cuts. Functionally interchangeable with AggKeyJob — same query, same
// results — so the two aggregation geometries can be compared head-to-head.
func BoxKeyJob(fs *hdfs.FileSystem, cfg QueryConfig) (*mapreduce.Job, error) {
	cfg = cfg.withDefaults()
	domain := cfg.DS.Extent.Expand(cfg.Radius)
	kc := &keys.Codec{Rank: cfg.DS.Extent.Rank(), Mode: cfg.KeyMode}
	splits, err := cfg.DS.Splits(fs, cfg.NumSplits)
	if err != nil {
		return nil, err
	}
	offsets := window(cfg.DS.Extent.Rank(), cfg.Radius)
	cc, err := cfg.combineConfig()
	if err != nil {
		return nil, err
	}
	sp := boxagg.NewSlabPartitioner(domain, cfg.NumReducers)
	ds := cfg.DS
	v := cfg.DS.Var
	op := cfg.Op
	flush := cfg.FlushCells

	return &mapreduce.Job{
		Name:           fmt.Sprintf("%s-boxagg", op),
		Combine:        cc,
		FS:             fs,
		Splits:         splits,
		NumReducers:    cfg.NumReducers,
		Compare:        kc.RawCompareBox,
		MapOutputCodec: cfg.MapOutputCodec,
		OutputPath:     cfg.OutputPath,
		Retry:          cfg.Retry,
		Faults:         cfg.Faults,
		Shuffle:        cfg.Shuffle,
		Timeout:        cfg.Timeout,
		Remote:         cfg.Remote,
		Parallelism:    cfg.Parallelism,
		Obs:            cfg.Obs,
		MapCache:       cfg.MapCache,
		CacheKey:       cfg.CacheKey,

		PartitionSplit: func(key, value []byte, n int) []mapreduce.RoutedKV {
			k, err := kc.DecodeBox(serial.NewDataInput(key))
			if err != nil {
				panic(fmt.Sprintf("scihadoop: bad box key: %v", err))
			}
			frags := sp.SplitForPartition(boxagg.Pair{Key: k, Values: value}, ElemSize)
			out := make([]mapreduce.RoutedKV, len(frags))
			for i, f := range frags {
				out[i] = mapreduce.RoutedKV{
					Partition: f.Partition,
					KV:        mapreduce.KV{Key: kc.BoxKeyBytes(f.Pair.Key), Value: f.Pair.Values},
				}
			}
			return out
		},

		MergeTransform: func(pairs []mapreduce.KV) []mapreduce.KV {
			bps := make([]boxagg.Pair, len(pairs))
			for i, p := range pairs {
				k, err := kc.DecodeBox(serial.NewDataInput(p.Key))
				if err != nil {
					panic(fmt.Sprintf("scihadoop: bad box key in merge: %v", err))
				}
				bps[i] = boxagg.Pair{Key: k, Values: p.Value}
			}
			split := boxagg.SplitOverlaps(bps, ElemSize)
			out := make([]mapreduce.KV, len(split))
			for i, p := range split {
				out[i] = mapreduce.KV{Key: kc.BoxKeyBytes(p.Key), Value: p.Values}
			}
			return out
		},

		// Streaming window cut matching boxagg.SplitOverlaps' dim-0
		// clustering: a new cluster starts exactly when a box's Corner[0]
		// reaches the running max upper bound (or the variable changes), so
		// the windowed transform is byte-identical to the whole-partition
		// rewrite.
		MergeCut: func() func(key []byte) bool {
			started := false
			var curVar keys.VarRef
			maxHi := 0
			return func(key []byte) bool {
				k, err := kc.DecodeBox(serial.NewDataInput(key))
				if err != nil {
					panic(fmt.Sprintf("scihadoop: bad box key in merge cut: %v", err))
				}
				hi := k.Box.Corner[0] + k.Box.Size[0]
				cut := started && (k.Var != curVar || k.Box.Corner[0] >= maxHi)
				if cut || !started {
					curVar, maxHi, started = k.Var, hi, true
				} else if hi > maxHi {
					maxHi = hi
				}
				return cut
			}
		},

		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
				box := split.Data.(grid.Box)
				slab, err := readSlab(ctx, ds, box)
				if err != nil {
					return err
				}
				agg := boxagg.New(boxagg.Config{
					Var:        v,
					ElemSize:   ElemSize,
					FlushCells: flush,
					Emit: func(p boxagg.Pair) {
						emit(kc.BoxKeyBytes(p.Key), p.Values)
					},
				})
				var vbuf [ElemSize]byte
				grid.ForEach(box, func(c grid.Coord) {
					binary.BigEndian.PutUint32(vbuf[:], uint32(cellValue(slab, box, c)))
					for _, off := range offsets {
						agg.Add(c.Add(off), vbuf[:])
					}
				})
				agg.Close()
				return nil
			})
		},

		NewReducer: func() mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emit) error {
				k, err := kc.DecodeBox(serial.NewDataInput(key))
				if err != nil {
					return err
				}
				n := int(k.Box.NumCells())
				out := make([]byte, 0, n*ElemSize)
				cell := make([]int32, 0, len(values))
				for i := 0; i < n; i++ {
					cell = cell[:0]
					for _, layer := range values {
						cell = append(cell, int32(binary.BigEndian.Uint32(layer[i*ElemSize:])))
					}
					out = binary.BigEndian.AppendUint32(out, uint32(op.fold(cell)))
				}
				emit(key, out)
				return nil
			})
		},
	}, nil
}

// ReadBoxOutput decodes the output of a BoxKeyJob into per-cell results.
func ReadBoxOutput(fs *hdfs.FileSystem, res *mapreduce.Result, kc *keys.Codec) (CellResults, error) {
	out := make(CellResults)
	if err := eachOutputRecord(fs, res, func(kb, vb []byte) error {
		k, err := kc.DecodeBox(serial.NewDataInput(kb))
		if err != nil {
			return err
		}
		i := 0
		grid.ForEach(k.Box, func(c grid.Coord) {
			out[c.String()] = int32(binary.BigEndian.Uint32(vb[i*ElemSize:]))
			i++
		})
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
