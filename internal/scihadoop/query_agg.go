package scihadoop

import (
	"encoding/binary"
	"fmt"

	"scikey/internal/aggregate"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/serial"
)

// AggKeyJob builds the Section IV job: mapper output flows through the
// aggregation library into aggregate keys on a space-filling curve; a range
// partitioner splits keys that straddle reducer shards (Section IV-B case
// one); each reducer's merged stream is overlap-split (case two, Fig. 7)
// before grouping; reducers fold each cell across its layered values and
// emit aggregated output.
//
// The returned Mapping converts output aggregate keys back to coordinates.
func AggKeyJob(fs *hdfs.FileSystem, cfg QueryConfig) (*mapreduce.Job, aggregate.Mapping, error) {
	cfg = cfg.withDefaults()
	// The output domain includes the halo: a mapper for (0,0)-(9,9)
	// produces output in (-1,-1)-(10,10).
	domain := cfg.DS.Extent.Expand(cfg.Radius)
	mapping, err := aggregate.MappingFor(cfg.Curve, domain)
	if err != nil {
		return nil, nil, err
	}
	kc := &keys.Codec{Rank: cfg.DS.Extent.Rank(), Mode: cfg.KeyMode}
	splits, err := cfg.DS.Splits(fs, cfg.NumSplits)
	if err != nil {
		return nil, nil, err
	}
	offsets := window(cfg.DS.Extent.Rank(), cfg.Radius)
	cc, err := cfg.combineConfig()
	if err != nil {
		return nil, nil, err
	}
	rp := keys.RangePartitioner{Total: mapping.Total(), NumReducers: cfg.NumReducers}
	ds := cfg.DS
	v := cfg.DS.Var
	op := cfg.Op
	flush := cfg.FlushCells

	job := &mapreduce.Job{
		Name: fmt.Sprintf("%s-agg-%s", op, cfg.Curve),
		// Lane-wise max commutes with the key-splitting rewrites: slicing a
		// folded layer equals folding the slices, so combined aggregate
		// segments split into the same fragments with the same folded cells.
		Combine:        cc,
		FS:             fs,
		Splits:         splits,
		NumReducers:    cfg.NumReducers,
		Compare:        kc.RawCompareAgg,
		MapOutputCodec: cfg.MapOutputCodec,
		OutputPath:     cfg.OutputPath,
		Retry:          cfg.Retry,
		Faults:         cfg.Faults,
		Shuffle:        cfg.Shuffle,
		Timeout:        cfg.Timeout,
		Remote:         cfg.Remote,
		Parallelism:    cfg.Parallelism,
		Obs:            cfg.Obs,
		MapCache:       cfg.MapCache,
		CacheKey:       cfg.CacheKey,

		// Section IV-B, case one: split aggregate keys at routing time.
		PartitionSplit: func(key, value []byte, n int) []mapreduce.RoutedKV {
			k, err := kc.DecodeAgg(serial.NewDataInput(key))
			if err != nil {
				panic(fmt.Sprintf("scihadoop: bad agg key: %v", err))
			}
			frags := rp.SplitForPartition(keys.AggPair{Key: k, Values: value}, ElemSize)
			out := make([]mapreduce.RoutedKV, len(frags))
			for i, f := range frags {
				out[i] = mapreduce.RoutedKV{
					Partition: f.Partition,
					KV:        mapreduce.KV{Key: kc.AggKeyBytes(f.Pair.Key), Value: f.Pair.Values},
				}
			}
			return out
		},

		// Section IV-B, case two: split overlapping keys at the reducer.
		MergeTransform: func(pairs []mapreduce.KV) []mapreduce.KV {
			aps := make([]keys.AggPair, len(pairs))
			for i, p := range pairs {
				k, err := kc.DecodeAgg(serial.NewDataInput(p.Key))
				if err != nil {
					panic(fmt.Sprintf("scihadoop: bad agg key in merge: %v", err))
				}
				aps[i] = keys.AggPair{Key: k, Values: p.Value}
			}
			split := keys.SplitOverlaps(aps, ElemSize)
			out := make([]mapreduce.KV, len(split))
			for i, p := range split {
				out[i] = mapreduce.KV{Key: kc.AggKeyBytes(p.Key), Value: p.Values}
			}
			return out
		},

		// Streaming window cut for the transform above: SplitOverlaps
		// rewrites transitively-overlapping clusters independently, starting
		// a new cluster exactly when a key's range begins at or past the
		// running max Hi (or the variable changes). Cutting the merged
		// stream on that same boundary keeps the windowed transform
		// byte-identical to running it over the whole partition.
		MergeCut: func() func(key []byte) bool {
			started := false
			var curVar keys.VarRef
			var maxHi uint64
			return func(key []byte) bool {
				k, err := kc.DecodeAgg(serial.NewDataInput(key))
				if err != nil {
					panic(fmt.Sprintf("scihadoop: bad agg key in merge cut: %v", err))
				}
				cut := started && (k.Var != curVar || k.Range.Lo >= maxHi)
				if cut || !started {
					curVar, maxHi, started = k.Var, k.Range.Hi, true
				} else if k.Range.Hi > maxHi {
					maxHi = k.Range.Hi
				}
				return cut
			}
		},

		NewMapper: func() mapreduce.Mapper {
			return mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
				box := split.Data.(grid.Box)
				slab, err := readSlab(ctx, ds, box)
				if err != nil {
					return err
				}
				agg := aggregate.New(aggregate.Config{
					Mapping:    mapping,
					Var:        v,
					ElemSize:   ElemSize,
					FlushCells: flush,
					Emit: func(p keys.AggPair) {
						emit(kc.AggKeyBytes(p.Key), p.Values)
					},
				})
				var vbuf [ElemSize]byte
				grid.ForEach(box, func(c grid.Coord) {
					binary.BigEndian.PutUint32(vbuf[:], uint32(cellValue(slab, box, c)))
					for _, off := range offsets {
						agg.Add(c.Add(off), vbuf[:])
					}
				})
				agg.Close()
				return nil
			})
		},

		NewReducer: func() mapreduce.Reducer {
			return &aggReducer{kc: kc, op: op, reagg: cfg.Reaggregate}
		},
	}
	return job, mapping, nil
}

// aggReducer folds each cell of an aggregate-key group across its layered
// values. With reagg set it additionally re-aggregates its output: since
// groups arrive in curve order, output ranges that became fragmented by key
// splitting are coalesced back into maximal contiguous ranges — the
// follow-up Section IV-B sketches ("[aggregation] could also be performed
// in other places to offset the increase in key count caused by key
// splitting").
type aggReducer struct {
	kc    *keys.Codec
	op    Op
	reagg bool

	pending     keys.AggKey
	pendingVals []byte
	hasPending  bool
}

// Reduce implements mapreduce.Reducer.
func (r *aggReducer) Reduce(ctx *mapreduce.TaskContext, key []byte, values [][]byte, emit mapreduce.Emit) error {
	k, err := r.kc.DecodeAgg(serial.NewDataInput(key))
	if err != nil {
		return err
	}
	n := int(k.Range.Len())
	out := make([]byte, 0, n*ElemSize)
	cell := make([]int32, 0, len(values))
	for i := 0; i < n; i++ {
		cell = cell[:0]
		for _, layer := range values {
			cell = append(cell, int32(binary.BigEndian.Uint32(layer[i*ElemSize:])))
		}
		out = binary.BigEndian.AppendUint32(out, uint32(r.op.fold(cell)))
	}
	if !r.reagg {
		emit(key, out)
		return nil
	}
	if r.hasPending && r.pending.Var == k.Var && r.pending.Range.Hi == k.Range.Lo {
		r.pending.Range.Hi = k.Range.Hi
		r.pendingVals = append(r.pendingVals, out...)
		return nil
	}
	r.flush(emit)
	r.pending = k
	r.pendingVals = out
	r.hasPending = true
	return nil
}

// Finish implements mapreduce.Finalizer.
func (r *aggReducer) Finish(ctx *mapreduce.TaskContext, emit mapreduce.Emit) error {
	r.flush(emit)
	return nil
}

func (r *aggReducer) flush(emit mapreduce.Emit) {
	if !r.hasPending {
		return
	}
	emit(r.kc.AggKeyBytes(r.pending), r.pendingVals)
	r.hasPending = false
	r.pendingVals = nil
}
