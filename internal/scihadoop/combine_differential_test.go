package scihadoop

import (
	"fmt"
	"testing"

	"scikey/internal/faults"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/mapreduce"
)

// buildMaxJob builds a max-query job of the given key geometry. Max is the
// distributive operator, the only one CombinerFor accepts.
func buildMaxJob(t *testing.T, fs *hdfs.FileSystem, cfg QueryConfig, kind string) *mapreduce.Job {
	t.Helper()
	switch kind {
	case "simple":
		job, _, err := SimpleKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return job
	case "agg":
		job, _, err := AggKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return job
	case "box":
		job, err := BoxKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return job
	default:
		t.Fatalf("unknown job kind %q", kind)
		return nil
	}
}

// TestCombineDifferentialQueries is the query-level byte-identity proof the
// combiner tree rests on: for every key geometry, every shuffle transport,
// and two node-group counts, the max query with in-node combining on
// produces output files byte-identical to combining off, with the
// distinct-key payload counters pinned and the shuffle no larger.
// OverlapKeySplits is deliberately NOT pinned: folding duplicate aggregate
// keys legitimately leaves fewer overlapping fragments for the reduce-side
// SplitOverlaps to cut, while the split output — and so the reduced groups —
// stays identical.
//
// Which configurations actually fold is geometry-dependent and asserted
// where guaranteed: agg and box keys carry within-task duplicates (no
// map-side combiner runs for them), so they fold at any group count; simple
// max keys are already deduped per task by the map-side combiner, so only
// the single-group run — where spatially adjacent tasks share a buffer and
// halo cells meet their duplicates — must fold.
func TestCombineDifferentialQueries(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{24, 16})
	fs, ds, _ := setup(t, extent)

	shuffles := []struct {
		name string
		cfg  *mapreduce.ShuffleConfig
	}{
		{"mem", nil},
		{"net", &mapreduce.ShuffleConfig{Mode: mapreduce.ShuffleNet}},
		{"tcp", &mapreduce.ShuffleConfig{Mode: mapreduce.ShuffleTCP}},
	}

	for _, kind := range []string{"simple", "agg", "box"} {
		for _, sh := range shuffles {
			for _, nodes := range []int{1, 2} {
				t.Run(fmt.Sprintf("%s/%s/nodes=%d", kind, sh.name, nodes), func(t *testing.T) {
					run := func(combine bool) ([]string, *mapreduce.Counters) {
						cfg := QueryConfig{
							DS: ds, Op: Max, NumSplits: 4, NumReducers: 3,
							Combine: combine, CombineNodes: nodes, Shuffle: sh.cfg,
							OutputPath: fmt.Sprintf("/out/comb-%s-%s-%d-%v", kind, sh.name, nodes, combine),
						}
						job := buildMaxJob(t, fs, cfg, kind)
						res, err := mapreduce.Run(job)
						if err != nil {
							t.Fatalf("combine=%v: %v", combine, err)
						}
						outs := make([]string, len(res.OutputPaths))
						for i, p := range res.OutputPaths {
							data, err := fs.ReadAll(p)
							if err != nil {
								t.Fatal(err)
							}
							outs[i] = string(data)
						}
						return outs, res.Counters
					}

					offOuts, off := run(false)
					onOuts, on := run(true)
					if len(onOuts) != len(offOuts) {
						t.Fatalf("output file count: combined %d, uncombined %d", len(onOuts), len(offOuts))
					}
					for i := range offOuts {
						if offOuts[i] != onOuts[i] {
							t.Errorf("partition %d output bytes differ (uncombined %d B, combined %d B)",
								i, len(offOuts[i]), len(onOuts[i]))
						}
					}
					same := []struct {
						name      string
						got, want int64
					}{
						{"MapOutputRecords", on.MapOutputRecords.Value(), off.MapOutputRecords.Value()},
						{"MapOutputMaterializedBytes", on.MapOutputMaterializedBytes.Value(), off.MapOutputMaterializedBytes.Value()},
						{"ReduceInputGroups", on.ReduceInputGroups.Value(), off.ReduceInputGroups.Value()},
						{"ReduceOutputRecords", on.ReduceOutputRecords.Value(), off.ReduceOutputRecords.Value()},
						{"ReduceOutputBytes", on.ReduceOutputBytes.Value(), off.ReduceOutputBytes.Value()},
					}
					for _, s := range same {
						if s.got != s.want {
							t.Errorf("%s = %d with combining, %d without", s.name, s.got, s.want)
						}
					}
					if got, want := on.ReduceShuffleBytes.Value(), off.ReduceShuffleBytes.Value(); got > want {
						t.Errorf("ReduceShuffleBytes grew under combining: %d > %d", got, want)
					}
					mustFold := kind != "simple" || nodes == 1
					if mustFold {
						if on.CombineMergedRecords.Value() <= 0 {
							t.Error("combining folded nothing; test exercises nothing")
						}
						if got, want := on.ReduceShuffleBytes.Value(), off.ReduceShuffleBytes.Value(); got >= want {
							t.Errorf("ReduceShuffleBytes = %d, want < uncombined %d", got, want)
						}
					}
				})
			}
		}
	}
}

// TestCombineDifferentialUnderFaults re-runs the simple-key differential
// with a corrupt combined segment: reduce-side corruption names the group
// representative (map task 0 under CombineNodes=1), recovery re-runs it and
// recombines, and the finished job is byte-identical to the uncombined
// fault-free run with the same payload counters.
func TestCombineDifferentialUnderFaults(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{24, 16})
	fs, ds, _ := setup(t, extent)

	run := func(combine bool, spec string) ([]string, *mapreduce.Counters) {
		var inj *faults.Injector
		if spec != "" {
			var err error
			if inj, err = faults.NewFromSpec(spec); err != nil {
				t.Fatalf("bad fault spec %q: %v", spec, err)
			}
		}
		cfg := QueryConfig{
			DS: ds, Op: Max, NumSplits: 4, NumReducers: 3,
			Combine: combine, CombineNodes: 1,
			Faults: inj, Retry: mapreduce.RetryPolicy{MaxAttempts: 3},
			OutputPath: fmt.Sprintf("/out/comb-fault-%v-%v", combine, spec != ""),
		}
		job, _, err := SimpleKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mapreduce.Run(job)
		if err != nil {
			t.Fatalf("combine=%v faults=%q: %v", combine, spec, err)
		}
		outs := make([]string, len(res.OutputPaths))
		for i, p := range res.OutputPaths {
			data, err := fs.ReadAll(p)
			if err != nil {
				t.Fatal(err)
			}
			outs[i] = string(data)
		}
		return outs, res.Counters
	}

	cleanOuts, clean := run(false, "")
	faultOuts, faulty := run(true, "seed=7;segment:0.0:corrupt@0")
	for i := range cleanOuts {
		if cleanOuts[i] != faultOuts[i] {
			t.Errorf("partition %d output differs from uncombined fault-free run", i)
		}
	}
	if faulty.CorruptSegmentsDetected.Value() == 0 {
		t.Error("corruption not detected; the fault exercised nothing")
	}
	if faulty.MapTasksRecovered.Value() == 0 {
		t.Error("no map task recovered for the corrupt combined segment")
	}
	if faulty.CombineMergedRecords.Value() <= 0 {
		t.Error("combining folded nothing; the differential exercises nothing")
	}
	for _, s := range []struct {
		name      string
		got, want int64
	}{
		{"ReduceInputGroups", faulty.ReduceInputGroups.Value(), clean.ReduceInputGroups.Value()},
		{"ReduceOutputRecords", faulty.ReduceOutputRecords.Value(), clean.ReduceOutputRecords.Value()},
		{"ReduceOutputBytes", faulty.ReduceOutputBytes.Value(), clean.ReduceOutputBytes.Value()},
	} {
		if s.got != s.want {
			t.Errorf("%s = %d, uncombined fault-free run = %d", s.name, s.got, s.want)
		}
	}
}

// TestCombineValidatesBeforeFolding pins the validate-then-combine ordering
// at the configuration that exposed its absence (scijob's default 64x64
// grid, 10 splits, 5 reducers): under seed 7 the injected bit-flips in map
// 0's committed partition-0 segment leave the IFile framing parseable, so
// without the up-front validation scan a garbage 19-byte value reached the
// Monoid before the CRC trailer check and the job died with a combiner
// merge error. With member segments validated end to end first, the
// corruption surfaces as ErrCorruptSegment, the producer re-runs, and the
// recovered run's outputs and combine accounting match the fault-free
// combined run exactly.
func TestCombineValidatesBeforeFolding(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{64, 64})
	fs, ds, _ := setup(t, extent)

	run := func(spec string) ([]string, *mapreduce.Counters) {
		var inj *faults.Injector
		if spec != "" {
			var err error
			if inj, err = faults.NewFromSpec(spec); err != nil {
				t.Fatalf("bad fault spec %q: %v", spec, err)
			}
		}
		cfg := QueryConfig{
			DS: ds, Op: Max, NumSplits: 10, NumReducers: 5,
			Combine: true, CombineNodes: 1,
			Faults: inj, Retry: mapreduce.RetryPolicy{MaxAttempts: 3},
			OutputPath: fmt.Sprintf("/out/comb-validate-%v", spec != ""),
		}
		job, _, err := SimpleKeyJob(fs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mapreduce.Run(job)
		if err != nil {
			t.Fatalf("faults=%q: %v", spec, err)
		}
		outs := make([]string, len(res.OutputPaths))
		for i, p := range res.OutputPaths {
			data, err := fs.ReadAll(p)
			if err != nil {
				t.Fatal(err)
			}
			outs[i] = string(data)
		}
		return outs, res.Counters
	}

	cleanOuts, clean := run("")
	faultOuts, faulty := run("seed=7;segment:0.0:corrupt@0")
	for i := range cleanOuts {
		if cleanOuts[i] != faultOuts[i] {
			t.Errorf("partition %d output differs from fault-free combined run", i)
		}
	}
	if faulty.CorruptSegmentsDetected.Value() == 0 {
		t.Error("corruption not detected; the fault exercised nothing")
	}
	if faulty.MapTasksRecovered.Value() == 0 {
		t.Error("no map task recovered for the corrupt member segment")
	}
	for _, s := range []struct {
		name      string
		got, want int64
	}{
		{"CombineMergedRecords", faulty.CombineMergedRecords.Value(), clean.CombineMergedRecords.Value()},
		{"CombineEmittedRecords", faulty.CombineEmittedRecords.Value(), clean.CombineEmittedRecords.Value()},
		{"CombineSavedBytes", faulty.CombineSavedBytes.Value(), clean.CombineSavedBytes.Value()},
		{"ReduceShuffleBytes", faulty.ReduceShuffleBytes.Value(), clean.ReduceShuffleBytes.Value()},
	} {
		if s.got != s.want {
			t.Errorf("%s = %d recovered, %d fault-free", s.name, s.got, s.want)
		}
	}
}

// TestCombineRejectsMedian: the paper's holistic median has no value monoid,
// so requesting combining must fail at build time for every key geometry.
func TestCombineRejectsMedian(t *testing.T) {
	extent := grid.NewBox(grid.Coord{0, 0}, []int{12, 8})
	fs, ds, _ := setup(t, extent)
	cfg := QueryConfig{DS: ds, Op: Median, Combine: true}
	if _, _, err := SimpleKeyJob(fs, cfg); err == nil {
		t.Error("simple-key median accepted combining")
	}
	if _, _, err := AggKeyJob(fs, cfg); err == nil {
		t.Error("agg-key median accepted combining")
	}
	if _, err := BoxKeyJob(fs, cfg); err == nil {
		t.Error("box-key median accepted combining")
	}
	if _, err := CombinerFor(Median); err == nil {
		t.Error("CombinerFor(Median) returned a combiner")
	}
}
