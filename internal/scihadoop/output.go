package scihadoop

import (
	"encoding/binary"
	"io"

	"scikey/internal/aggregate"
	"scikey/internal/grid"
	"scikey/internal/hdfs"
	"scikey/internal/ifile"
	"scikey/internal/keys"
	"scikey/internal/mapreduce"
	"scikey/internal/serial"
	"scikey/internal/workload"
)

// CellResults maps coordinate strings (grid.Coord.String()) to result
// values, the common denominator for comparing job flavors and the
// reference implementation.
type CellResults map[string]int32

// eachOutputRecord streams every record of a job's output files to fn.
func eachOutputRecord(fs *hdfs.FileSystem, res *mapreduce.Result, fn func(key, value []byte) error) error {
	for _, path := range res.OutputPaths {
		f, err := fs.Open(path)
		if err != nil {
			return err
		}
		r := ifile.NewReader(f)
		for {
			kb, vb, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return err
			}
			if err := fn(kb, vb); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// ReadSimpleOutput decodes the output of a SimpleKeyJob.
func ReadSimpleOutput(fs *hdfs.FileSystem, res *mapreduce.Result, kc *keys.Codec) (CellResults, error) {
	out := make(CellResults)
	if err := eachOutputRecord(fs, res, func(kb, vb []byte) error {
		k, err := kc.DecodeGrid(serial.NewDataInput(kb))
		if err != nil {
			return err
		}
		out[k.Coord.String()] = int32(binary.BigEndian.Uint32(vb))
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAggOutput decodes the output of an AggKeyJob into per-cell results.
func ReadAggOutput(fs *hdfs.FileSystem, res *mapreduce.Result, kc *keys.Codec, m aggregate.Mapping) (CellResults, error) {
	out := make(CellResults)
	if err := eachOutputRecord(fs, res, func(kb, vb []byte) error {
		k, err := kc.DecodeAgg(serial.NewDataInput(kb))
		if err != nil {
			return err
		}
		for i := uint64(0); i < k.Range.Len(); i++ {
			c := m.Coord(k.Range.Lo + i)
			out[c.String()] = int32(binary.BigEndian.Uint32(vb[i*ElemSize:]))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Reference computes the query result directly (no MapReduce): for every
// window target reachable from the extent, fold the source values whose
// windows cover it. This is the oracle the engine flavors are tested
// against.
func Reference(field *workload.Field, extent grid.Box, radius int, op Op) CellResults {
	out := make(CellResults)
	offsets := window(extent.Rank(), radius)
	domain := extent.Expand(radius)
	values := make(map[string][]int32)
	grid.ForEach(extent, func(c grid.Coord) {
		v := field.Value(c)
		for _, off := range offsets {
			t := c.Add(off)
			values[t.String()] = append(values[t.String()], v)
		}
	})
	grid.ForEach(domain, func(c grid.Coord) {
		if vs, ok := values[c.String()]; ok {
			out[c.String()] = op.fold(vs)
		}
	})
	return out
}
