package shufflenet

import "testing"

// BenchmarkShuffleFetch drives the wire fetch path end to end over the
// in-memory transport: request, header, 64 chunk frames, CRC verification.
// allocs/op is the zero-copy gate for the committed-segment path — the
// server hands Publish-time bytes straight to the connection (writev, CRC
// from the commit-time table) and the client lands chunks directly in the
// one result buffer sized from the response header, so per-op allocations
// are connection scaffolding plus that single buffer, independent of chunk
// count and segment size.
func BenchmarkShuffleFetch(b *testing.B) {
	const segBytes = 4 << 20
	s, err := NewService(Config{Transport: NewMemTransport(), Nodes: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.Publish(0, 0, [][]byte{testBytes(segBytes, 3)})

	b.SetBytes(segBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Fetch(nil, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Data) != segBytes {
			b.Fatalf("fetched %d bytes, want %d", len(res.Data), segBytes)
		}
	}
}
