package shufflenet

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
)

// Wire protocol, one request/response per connection, all integers
// big-endian:
//
//	request  := magic u32 | mapTask u32 | partition u32 | fetchAttempt u32
//	          | haveAttempt i32 | offset u64
//	response := status u8 | attempt u32 | total u64 | start u64 | chunk*
//	chunk    := len u32 | crc32 u32 | payload [len]byte      (len 0 ends)
//
// haveAttempt is the map attempt whose verified prefix the client already
// holds (-1 for none); offset is that prefix's length. The server serves
// from offset when the attempt still matches, from 0 otherwise — start in
// the response header says which happened, so the client knows whether its
// buffered prefix is still good or is now waste. Every chunk carries the
// CRC32 (IEEE) of its payload; the client appends only chunks that verify,
// making len(buffer) the resume offset for the next attempt.

const (
	reqMagic   = 0x534e4631 // "SNF1"
	reqLen     = 4 + 4 + 4 + 4 + 4 + 8
	respHdrLen = 1 + 4 + 8 + 8

	statusOK           = 0 // data follows from start
	statusEmpty        = 1 // partition exists and is empty
	statusNotPublished = 2 // map task's output not (yet) on this node
)

type request struct {
	mapTask      int
	partition    int
	fetchAttempt int
	haveAttempt  int // -1: none
	offset       int64
}

type respHeader struct {
	status  byte
	attempt int
	total   int64
	start   int64
}

func writeRequest(w io.Writer, r request) error {
	var buf [reqLen]byte
	binary.BigEndian.PutUint32(buf[0:], reqMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(r.mapTask))
	binary.BigEndian.PutUint32(buf[8:], uint32(r.partition))
	binary.BigEndian.PutUint32(buf[12:], uint32(r.fetchAttempt))
	binary.BigEndian.PutUint32(buf[16:], uint32(int32(r.haveAttempt)))
	binary.BigEndian.PutUint64(buf[20:], uint64(r.offset))
	_, err := w.Write(buf[:])
	return err
}

func readRequest(r io.Reader) (request, error) {
	var buf [reqLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return request{}, err
	}
	if binary.BigEndian.Uint32(buf[0:]) != reqMagic {
		return request{}, fmt.Errorf("shufflenet: bad request magic")
	}
	req := request{
		mapTask:      int(binary.BigEndian.Uint32(buf[4:])),
		partition:    int(binary.BigEndian.Uint32(buf[8:])),
		fetchAttempt: int(binary.BigEndian.Uint32(buf[12:])),
		haveAttempt:  int(int32(binary.BigEndian.Uint32(buf[16:]))),
		offset:       int64(binary.BigEndian.Uint64(buf[20:])),
	}
	if req.offset < 0 {
		return request{}, fmt.Errorf("shufflenet: negative request offset")
	}
	return req, nil
}

func writeRespHeader(w io.Writer, h respHeader) error {
	var buf [respHdrLen]byte
	buf[0] = h.status
	binary.BigEndian.PutUint32(buf[1:], uint32(h.attempt))
	binary.BigEndian.PutUint64(buf[5:], uint64(h.total))
	binary.BigEndian.PutUint64(buf[13:], uint64(h.start))
	_, err := w.Write(buf[:])
	return err
}

func readRespHeader(r io.Reader) (respHeader, error) {
	var buf [respHdrLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return respHeader{}, err
	}
	h := respHeader{
		status:  buf[0],
		attempt: int(binary.BigEndian.Uint32(buf[1:])),
		total:   int64(binary.BigEndian.Uint64(buf[5:])),
		start:   int64(binary.BigEndian.Uint64(buf[13:])),
	}
	if h.status > statusNotPublished || h.total < 0 || h.start < 0 || h.start > h.total {
		return respHeader{}, fmt.Errorf("shufflenet: malformed response header")
	}
	return h, nil
}

// chunkCRCs precomputes the CRC32 (IEEE) of every chunkBytes-sized slice of
// data, so handlers serve committed bytes without rescanning them — the CRC
// is computed once, at Publish.
func chunkCRCs(data []byte, chunkBytes int) []uint32 {
	if len(data) == 0 {
		return nil
	}
	crcs := make([]uint32, (len(data)+chunkBytes-1)/chunkBytes)
	for i := range crcs {
		c := data[i*chunkBytes:]
		if len(c) > chunkBytes {
			c = c[:chunkBytes]
		}
		crcs[i] = crc32.ChecksumIEEE(c)
	}
	return crcs
}

// writeChunk frames one payload chunk with its precomputed CRC, handing the
// header and the committed payload bytes to the connection in a single
// writev-style call (net.Buffers) — the payload is never copied into a
// user-space staging buffer. hdr and bufs are caller-owned scratch reused
// across chunks. corrupted, when non-nil, is sent in place of the payload
// while the CRC still covers the original bytes — the injected bit-flip a
// client-side CRC check must catch.
func writeChunk(w io.Writer, hdr *[8]byte, bufs *net.Buffers, payload, corrupted []byte, crc uint32) error {
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc)
	body := payload
	if corrupted != nil {
		body = corrupted
	}
	*bufs = append((*bufs)[:0], hdr[:], body)
	_, err := bufs.WriteTo(w)
	return err
}

// writeEnd terminates the chunk stream.
func writeEnd(w io.Writer) error {
	var hdr [8]byte // zero length, zero crc
	_, err := w.Write(hdr[:])
	return err
}
