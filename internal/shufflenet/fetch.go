package shufflenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// Transient fetch failures, distinguished for error text and tests; all of
// them are retried within the fetch budget.
var (
	errNotPublished = errors.New("map output not published on node")
	errTruncated    = errors.New("response ended before the full segment")
	errChunkCRC     = errors.New("chunk crc mismatch")
	errProtocol     = errors.New("protocol violation")
	errNodeDown     = errors.New("node down")
	errBreakerOpen  = errors.New("circuit breaker open")
)

// ErrCanceled reports a fetch abandoned because its caller stopped.
var ErrCanceled = errors.New("shufflenet: fetch canceled")

// FetchError reports a segment fetch that exhausted its attempt budget: the
// map output is lost as far as this reducer is concerned, and the engine
// should re-execute the producing map task.
type FetchError struct {
	Node      int
	MapTask   int
	Partition int
	Attempts  int
	Err       error // last transient failure
}

func (e *FetchError) Error() string {
	return fmt.Sprintf("shufflenet: fetch of map %d partition %d from node %d failed after %d attempts: %v",
		e.MapTask, e.Partition, e.Node, e.Attempts, e.Err)
}

func (e *FetchError) Unwrap() error { return e.Err }

// FetchResult is one successfully fetched segment.
type FetchResult struct {
	Data        []byte // verified segment bytes (nil for an empty partition)
	Attempt     int    // the map attempt that produced Data
	Resumed     bool   // at least one attempt resumed mid-segment
	WastedBytes int64  // verified bytes this fetch had to throw away
}

// fetchState carries the verified prefix across a fetch's attempts.
type fetchState struct {
	buf          []byte
	attempt      int // map attempt buf belongs to; -1 before first response
	complete     bool
	resumed      bool
	resumedBytes int64
	wasted       int64
}

// Fetch retrieves one partition of one map task's output from its node,
// retrying transient failures on the backoff schedule and resuming each
// retry from the last verified byte offset. stop (optional) abandons the
// fetch between attempts and cuts sleeps short.
func (s *Service) Fetch(stop <-chan struct{}, mapTask, part int) (FetchResult, error) {
	node := s.NodeOf(mapTask)
	br := s.breakers[node]
	st := &fetchState{attempt: -1}
	s.metrics.Fetches.Add(1)

	budget := s.cfg.fetchAttempts()
	var lastErr error
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			s.metrics.Retries.Add(1)
			d := s.cfg.Backoff.Delay(int64(mapTask), int64(part), attempt)
			if !s.sleepStop(d, stop) {
				return FetchResult{}, ErrCanceled
			}
		}
		if stopped(stop) {
			return FetchResult{}, ErrCanceled
		}
		if !br.allow() {
			s.metrics.BreakerSkips.Add(1)
			lastErr = fmt.Errorf("%w: node %d", errBreakerOpen, node)
			continue
		}
		if !s.acquire(node, stop) {
			return FetchResult{}, ErrCanceled
		}
		t0 := time.Now()
		err := s.fetchOnce(node, mapTask, part, attempt, st)
		s.fetchHist[node].Observe(time.Since(t0).Seconds())
		s.release(node)
		if err == nil {
			br.success()
			if st.resumed {
				s.metrics.Resumes.Add(1)
				s.metrics.ResumedBytes.Add(st.resumedBytes)
			}
			s.metrics.WastedBytes.Add(st.wasted)
			return FetchResult{
				Data:        st.buf,
				Attempt:     st.attempt,
				Resumed:     st.resumed,
				WastedBytes: st.wasted,
			}, nil
		}
		lastErr = err
		br.failure()
	}

	// Budget exhausted: everything verified so far is waste, and the caller
	// must treat the map output as lost.
	st.wasted += int64(len(st.buf))
	s.metrics.WastedBytes.Add(st.wasted)
	s.metrics.SegmentsLost.Add(1)
	return FetchResult{WastedBytes: st.wasted}, &FetchError{
		Node: node, MapTask: mapTask, Partition: part,
		Attempts: budget, Err: lastErr,
	}
}

// fetchOnce runs a single request/response exchange, appending verified
// chunks to st.buf. Any error leaves st.buf a valid verified prefix to
// resume from.
func (s *Service) fetchOnce(node, mapTask, part, fetchAttempt int, st *fetchState) error {
	if s.cfg.Injector.NodeDown(node) {
		return fmt.Errorf("%w: node %d", errNodeDown, node)
	}
	conn, err := s.cfg.Transport.Dial(node, s.cfg.fetchTimeout())
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(s.cfg.fetchTimeout()))

	if err := writeRequest(conn, request{
		mapTask:      mapTask,
		partition:    part,
		fetchAttempt: fetchAttempt,
		haveAttempt:  st.attempt,
		offset:       int64(len(st.buf)),
	}); err != nil {
		return err
	}
	hdr, err := readRespHeader(conn)
	if err != nil {
		return err
	}
	switch hdr.status {
	case statusNotPublished:
		return fmt.Errorf("%w: map %d", errNotPublished, mapTask)
	case statusEmpty:
		st.wasted += int64(len(st.buf))
		st.buf = nil
		st.attempt = hdr.attempt
		st.complete = true
		return nil
	}

	if hdr.attempt != st.attempt && st.attempt >= 0 {
		// The map task was re-executed since our last attempt; the prefix we
		// hold belongs to dead output.
		st.wasted += int64(len(st.buf))
		st.buf = st.buf[:0]
	}
	st.attempt = hdr.attempt
	if hdr.start != int64(len(st.buf)) {
		if hdr.start != 0 {
			return fmt.Errorf("%w: response starts at %d, have %d", errProtocol, hdr.start, len(st.buf))
		}
		// Server declined our resume offset: start over.
		st.wasted += int64(len(st.buf))
		st.buf = st.buf[:0]
	}
	if hdr.start > 0 {
		st.resumed = true
		st.resumedBytes += hdr.start
	}

	// Size the buffer for the whole declared transfer up front: chunks then
	// land directly in their final position, with no growth-reallocation
	// copies of already-verified bytes. The total is bounds-checked against
	// each chunk below, exactly as before; a lying header costs at most one
	// allocation, same as a completed transfer would.
	if int64(cap(st.buf)) < hdr.total {
		grown := make([]byte, len(st.buf), hdr.total)
		copy(grown, st.buf)
		st.buf = grown
	}

	var chunkHdr [8]byte
	for {
		if _, err := io.ReadFull(conn, chunkHdr[:]); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(chunkHdr[0:])
		if n == 0 {
			break
		}
		want := binary.BigEndian.Uint32(chunkHdr[4:])
		if int64(len(st.buf))+int64(n) > hdr.total {
			return fmt.Errorf("%w: chunks overrun declared total", errProtocol)
		}
		// Read the chunk into the tail of buf, then keep it only if its CRC
		// verifies — len(st.buf) stays the verified resume offset.
		tail := len(st.buf)
		st.buf = st.buf[:tail+int(n)]
		if _, err := io.ReadFull(conn, st.buf[tail:]); err != nil {
			st.buf = st.buf[:tail]
			return err
		}
		if crc32.ChecksumIEEE(st.buf[tail:]) != want {
			st.buf = st.buf[:tail]
			s.metrics.CRCErrors.Add(1)
			return errChunkCRC
		}
		s.metrics.BytesFetched.Add(int64(n))
	}
	if int64(len(st.buf)) != hdr.total {
		return fmt.Errorf("%w: got %d of %d bytes", errTruncated, len(st.buf), hdr.total)
	}
	st.complete = true
	return nil
}

// acquire takes a per-node fetch slot; false means the caller stopped or
// the service closed first.
func (s *Service) acquire(node int, stop <-chan struct{}) bool {
	select {
	case s.slots[node] <- struct{}{}:
		return true
	default:
	}
	select {
	case s.slots[node] <- struct{}{}:
		return true
	case <-stop:
		return false
	case <-s.done:
		return false
	}
}

func (s *Service) release(node int) { <-s.slots[node] }

// sleepStop waits d, returning early (false) if the caller stops or the
// service closes.
func (s *Service) sleepStop(d time.Duration, stop <-chan struct{}) bool {
	if d <= 0 {
		return !stopped(stop)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	case <-s.done:
		return false
	}
}

func stopped(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}
