package shufflenet

import (
	"hash/crc32"
	"net"
	"time"

	"scikey/internal/faults"
)

// serve accepts connections for one node until the listener closes.
func (s *Service) serve(node int, l net.Listener) {
	defer s.handlers.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

// handle answers one request on one connection, applying any injected
// server-side fault at the exact point a real network would exhibit it.
func (s *Service) handle(conn net.Conn) {
	defer s.handlers.Done()
	defer s.untrack(conn)
	defer conn.Close()

	// A generous server-side deadline so a vanished client can never wedge
	// a handler; injected stalls extend it since stalling is their point.
	ioBudget := 4 * s.cfg.fetchTimeout()
	if ioBudget < 5*time.Second {
		ioBudget = 5 * time.Second
	}

	conn.SetDeadline(time.Now().Add(ioBudget))
	req, err := readRequest(conn)
	if err != nil {
		return
	}

	f := s.cfg.Injector.FetchFault(req.mapTask, req.partition, req.fetchAttempt)
	if f != nil {
		switch f.Action {
		case faults.ActRefuse:
			return // slam the door: no response at all
		case faults.ActStall:
			conn.SetDeadline(time.Now().Add(ioBudget + f.Delay))
			if !s.sleepDone(f.Delay) {
				return
			}
		}
	}

	pub, ok := s.lookup(req.mapTask)
	if !ok {
		writeRespHeader(conn, respHeader{status: statusNotPublished})
		return
	}
	var data []byte
	if req.partition >= 0 && req.partition < len(pub.parts) {
		data = pub.parts[req.partition]
	}
	if len(data) == 0 {
		writeRespHeader(conn, respHeader{status: statusEmpty, attempt: pub.attempt})
		return
	}

	// Honor the client's resume offset only while it still names the attempt
	// being served; a re-executed map task restarts the transfer from zero.
	start := req.offset
	if req.haveAttempt != pub.attempt || start > int64(len(data)) {
		start = 0
	}
	if err := writeRespHeader(conn, respHeader{
		status:  statusOK,
		attempt: pub.attempt,
		total:   int64(len(data)),
		start:   start,
	}); err != nil {
		return
	}

	remaining := data[start:]
	// cut/truncate stop partway through the remaining bytes: cut slams the
	// connection mid-chunk, truncate ends the chunk stream cleanly short.
	stopAfter := int64(-1)
	if f != nil && (f.Action == faults.ActCut || f.Action == faults.ActTruncate) {
		stopAfter = int64(len(remaining)) / 2
	}

	// Clients resume at whole-chunk boundaries (the verified prefix grows
	// chunk by chunk), so start is chunk-aligned and every chunk served
	// lines up with a commit-time CRC from Publish — the committed bytes
	// are neither copied nor rescanned on this path. The on-the-fly
	// fallback only guards a foreign client with an odd offset.
	cb := s.cfg.chunkBytes()
	crcIdx := -1
	if start%int64(cb) == 0 {
		crcIdx = int(start / int64(cb))
	}
	crcs := pub.crcs[req.partition]
	var hdr [8]byte
	bufs := make(net.Buffers, 0, 2)

	sent := int64(0)
	first := true
	for len(remaining) > 0 {
		chunk := remaining
		if len(chunk) > cb {
			chunk = chunk[:cb]
		}
		if stopAfter >= 0 && sent+int64(len(chunk)) > stopAfter {
			if f.Action == faults.ActTruncate {
				writeEnd(conn)
			} else {
				// Mid-chunk disconnect: frame a full chunk, deliver half.
				var hdr [8]byte
				hdr[0] = byte(len(chunk) >> 24)
				hdr[1] = byte(len(chunk) >> 16)
				hdr[2] = byte(len(chunk) >> 8)
				hdr[3] = byte(len(chunk))
				conn.Write(hdr[:])
				conn.Write(chunk[:len(chunk)/2])
			}
			return
		}
		var corrupted []byte
		if f != nil && f.Action == faults.ActCorrupt && first {
			corrupted = f.CorruptBytes(chunk)
		}
		var crc uint32
		if crcIdx >= 0 {
			crc = crcs[crcIdx]
			crcIdx++
		} else {
			crc = crc32.ChecksumIEEE(chunk)
		}
		if err := writeChunk(conn, &hdr, &bufs, chunk, corrupted, crc); err != nil {
			return
		}
		first = false
		sent += int64(len(chunk))
		remaining = remaining[len(chunk):]
	}
	writeEnd(conn)
}

// sleepDone waits d unless the service shuts down first.
func (s *Service) sleepDone(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.done:
		return false
	}
}
