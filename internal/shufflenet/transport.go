package shufflenet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Transport supplies the byte pipes between shuffle nodes. Listen binds a
// node's server endpoint; Dial opens a client connection to it. Connections
// must honor SetDeadline so fetch timeouts work on both transports.
type Transport interface {
	Listen(node int) (net.Listener, error)
	Dial(node int, timeout time.Duration) (net.Conn, error)
}

// ---------------------------------------------------------------------------
// In-memory transport: synchronous net.Pipe pairs behind a node registry.
// Deterministic, no ports, and still a real stream with deadlines — the
// default for tests and single-process runs.

// MemTransport connects nodes with in-process net.Pipe streams.
type MemTransport struct {
	mu        sync.Mutex
	listeners map[int]*memListener
}

// NewMemTransport builds an empty in-memory network.
func NewMemTransport() *MemTransport {
	return &MemTransport{listeners: make(map[int]*memListener)}
}

// Listen binds the node's in-memory endpoint.
func (t *MemTransport) Listen(node int) (net.Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[node]; ok {
		return nil, fmt.Errorf("shufflenet: node %d already listening", node)
	}
	l := &memListener{
		node:   node,
		t:      t,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	t.listeners[node] = l
	return l, nil
}

// Dial connects to a listening node; it fails like a refused connection when
// the node is not listening or does not accept within the timeout.
func (t *MemTransport) Dial(node int, timeout time.Duration) (net.Conn, error) {
	t.mu.Lock()
	l := t.listeners[node]
	t.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: errRefused}
	}
	server, client := net.Pipe()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		server.Close()
		client.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: errRefused}
	case <-timer.C:
		server.Close()
		client.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: errDialTimeout}
	}
}

var (
	errRefused     = fmt.Errorf("connection refused")
	errDialTimeout = fmt.Errorf("dial timeout")
)

type memListener struct {
	node   int
	t      *MemTransport
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.t.mu.Lock()
		if l.t.listeners[l.node] == l {
			delete(l.t.listeners, l.node)
		}
		l.t.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{node: l.node} }

type memAddr struct{ node int }

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return fmt.Sprintf("mem:%d", a.node) }

// ---------------------------------------------------------------------------
// Localhost TCP transport: each node listens on 127.0.0.1:0 and the dialer
// looks the port up in the shared registry. The realistic transport — real
// sockets, real kernel buffering, real deadline semantics.

// TCPTransport connects nodes over loopback TCP.
type TCPTransport struct {
	mu    sync.Mutex
	addrs map[int]string
}

// NewTCPTransport builds an empty loopback network.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{addrs: make(map[int]string)}
}

// Listen binds the node to an ephemeral loopback port.
func (t *TCPTransport) Listen(node int) (net.Listener, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.addrs[node] = l.Addr().String()
	t.mu.Unlock()
	return &tcpListener{Listener: l, node: node, t: t}, nil
}

// Dial connects to the node's registered loopback address.
func (t *TCPTransport) Dial(node int, timeout time.Duration) (net.Conn, error) {
	t.mu.Lock()
	addr, ok := t.addrs[node]
	t.mu.Unlock()
	if !ok {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errRefused}
	}
	return net.DialTimeout("tcp", addr, timeout)
}

type tcpListener struct {
	net.Listener
	node int
	t    *TCPTransport
	once sync.Once
}

func (l *tcpListener) Close() error {
	l.once.Do(func() {
		l.t.mu.Lock()
		delete(l.t.addrs, l.node)
		l.t.mu.Unlock()
	})
	return l.Listener.Close()
}
