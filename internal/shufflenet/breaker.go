package shufflenet

import (
	"sync"
	"time"

	"scikey/internal/backoff"
	"scikey/internal/obs"
)

// breaker is a per-node circuit breaker. Consecutive fetch failures against
// a node open it; while open, fetch attempts to that node fail immediately
// instead of burning a timeout each. It half-opens on the backoff schedule
// — after Delay(node, trips) one probe attempt is let through; the probe's
// outcome either closes the breaker or re-opens it for the next, longer
// interval.
type breaker struct {
	node      int
	threshold int // 0 disables
	policy    backoff.Policy
	metrics   *Metrics

	// Per-target-state transition counters; zero handles (no Observer)
	// no-op.
	transOpen     obs.Counter
	transHalfOpen obs.Counter
	transClosed   obs.Counter

	mu          sync.Mutex
	state       int // breakerClosed | breakerOpen | breakerHalfOpen
	consecutive int // failures since last success, while closed
	trips       int // opens since last success: the reopen-backoff key
	reopenAt    time.Time
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// fallbackReopen keeps an open breaker meaningful under a zero backoff
// policy (immediate-retry configurations).
const fallbackReopen = 10 * time.Millisecond

func newBreaker(node, threshold int, policy backoff.Policy, m *Metrics) *breaker {
	return &breaker{node: node, threshold: threshold, policy: policy, metrics: m}
}

// allow reports whether a fetch attempt may proceed. At most one caller is
// admitted as the half-open probe per reopen interval.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Now().Before(b.reopenAt) {
			return false
		}
		b.state = breakerHalfOpen
		b.transHalfOpen.Inc()
		return true // this caller is the probe
	default: // half-open: a probe is already in flight
		return false
	}
}

// success closes the breaker and forgets its history.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	if b.state != breakerClosed {
		b.transClosed.Inc()
	}
	b.state = breakerClosed
	b.consecutive = 0
	b.trips = 0
	b.mu.Unlock()
}

// failure records a fetch failure; enough of them in a row trip the breaker,
// and a failed half-open probe re-opens it with a longer interval.
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.trip()
		}
	}
}

func (b *breaker) trip() {
	b.trips++
	b.state = breakerOpen
	b.consecutive = 0
	d := b.policy.Delay(int64(b.node), -1, b.trips)
	if d <= 0 {
		d = fallbackReopen
	}
	b.reopenAt = time.Now().Add(d)
	b.metrics.BreakerTrips.Add(1)
	b.transOpen.Inc()
}
