// Package shufflenet is the networked shuffle transport: the mapper→reducer
// segment hand-off as a real client/server data path instead of a slice
// copy, so every failure mode the paper's compression is meant to survive in
// a deployment — slow links, dropped connections, truncated transfers, dead
// nodes — can actually occur (and be injected deterministically).
//
// The moving parts:
//
//   - A Transport abstracts the byte pipes: localhost TCP for realism, an
//     in-memory net.Pipe transport for fast deterministic tests. Both honor
//     deadlines.
//   - One Server per simulated node holds the committed map-output segments
//     of the map tasks it hosts and serves them over a CRC-framed chunk
//     protocol that supports byte-offset range reads, so an interrupted
//     fetch resumes from its last verified offset instead of from zero.
//   - The reduce-side fetcher bounds per-node concurrency, applies a
//     per-fetch deadline, retries with the engine's deterministic
//     backoff/jitter, and keeps a per-node circuit breaker so one sick node
//     degrades gracefully: fetches to it fail fast while the breaker is
//     open, other nodes' partitions keep flowing, and the breaker half-opens
//     on the backoff schedule to probe for recovery.
//
// Fault injection (the net/node sites of internal/faults) happens inside
// the server and dial paths, exactly where a real network would fail; the
// client only ever sees the symptoms: refused connections, unexpected EOFs,
// deadline timeouts, short responses, chunk CRC mismatches.
package shufflenet

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scikey/internal/backoff"
	"scikey/internal/faults"
	"scikey/internal/obs"
)

// Config parameterizes a shuffle Service.
type Config struct {
	// Transport supplies the byte pipes. Required: NewMemTransport or
	// NewTCPTransport.
	Transport Transport
	// Nodes is the shuffle server count; map task t publishes to node
	// t % Nodes. Default 3.
	Nodes int
	// ChunkBytes is the response chunk size (each chunk carries its own
	// CRC; the verified-resume granularity). Default 64 KiB.
	ChunkBytes int
	// FetchTimeout is the per-attempt deadline covering dial, request, and
	// response. Default 2s.
	FetchTimeout time.Duration
	// FetchAttempts bounds the attempts of one segment fetch before it is
	// reported lost. Default 4.
	FetchAttempts int
	// Backoff is the deterministic delay schedule between fetch retries and
	// the breaker's reopen schedule. The zero value retries immediately.
	Backoff backoff.Policy
	// PerNodeFetchers caps concurrent fetches against one node. Default 4.
	PerNodeFetchers int
	// BreakerThreshold is the consecutive-failure count that opens a node's
	// circuit breaker. 0 uses the default (3); negative disables breakers.
	BreakerThreshold int
	// Injector optionally injects net/node faults. Nil means a clean
	// network.
	Injector *faults.Injector
	// Obs optionally records per-node fetch-latency histograms
	// (scikey_shuffle_fetch_seconds{node}) and breaker state transitions
	// (scikey_shuffle_breaker_transitions_total{node,state}). Nil disables
	// both; the aggregate Metrics counters are always maintained.
	Obs *obs.Observer
}

func (c Config) nodes() int {
	if c.Nodes > 0 {
		return c.Nodes
	}
	return 3
}

func (c Config) chunkBytes() int {
	if c.ChunkBytes > 0 {
		return c.ChunkBytes
	}
	return 64 << 10
}

func (c Config) fetchTimeout() time.Duration {
	if c.FetchTimeout > 0 {
		return c.FetchTimeout
	}
	return 2 * time.Second
}

func (c Config) fetchAttempts() int {
	if c.FetchAttempts > 0 {
		return c.FetchAttempts
	}
	return 4
}

func (c Config) perNodeFetchers() int {
	if c.PerNodeFetchers > 0 {
		return c.PerNodeFetchers
	}
	return 4
}

func (c Config) breakerThreshold() int {
	switch {
	case c.BreakerThreshold > 0:
		return c.BreakerThreshold
	case c.BreakerThreshold < 0:
		return 0 // disabled
	}
	return 3
}

// Metrics counts the fetcher's work, including the work that was lost.
// All fields are read with Snapshot.
type Metrics struct {
	Fetches      atomic.Int64 // segment fetches requested
	Retries      atomic.Int64 // fetch attempts beyond the first
	Resumes      atomic.Int64 // attempts that resumed from a verified offset
	ResumedBytes atomic.Int64 // bytes NOT refetched thanks to resume
	WastedBytes  atomic.Int64 // verified bytes discarded (resets, exhaustion)
	BreakerTrips atomic.Int64 // circuit breakers opened
	BreakerSkips atomic.Int64 // fetch attempts refused by an open breaker
	CRCErrors    atomic.Int64 // chunks rejected by their CRC
	SegmentsLost atomic.Int64 // fetches that exhausted their budget
	BytesFetched atomic.Int64 // verified payload bytes received
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	Fetches, Retries, Resumes, ResumedBytes, WastedBytes int64
	BreakerTrips, BreakerSkips, CRCErrors, SegmentsLost  int64
	BytesFetched                                         int64
}

// Snapshot reads the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Fetches:      m.Fetches.Load(),
		Retries:      m.Retries.Load(),
		Resumes:      m.Resumes.Load(),
		ResumedBytes: m.ResumedBytes.Load(),
		WastedBytes:  m.WastedBytes.Load(),
		BreakerTrips: m.BreakerTrips.Load(),
		BreakerSkips: m.BreakerSkips.Load(),
		CRCErrors:    m.CRCErrors.Load(),
		SegmentsLost: m.SegmentsLost.Load(),
		BytesFetched: m.BytesFetched.Load(),
	}
}

// published is one map task's committed output on its node.
type published struct {
	attempt int
	parts   [][]byte
	// crcs[p] holds the CRC32 of every chunkBytes-sized slice of parts[p],
	// computed once at Publish. Handlers serve straight from parts with
	// these commit-time CRCs, so the wire path neither copies nor rescans
	// the committed bytes.
	crcs [][]uint32
}

// Service runs the per-node shuffle servers and the reduce-side fetcher of
// one job.
type Service struct {
	cfg Config

	mu        sync.Mutex
	segments  map[int]published // map task -> its committed output
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	started   bool
	closed    bool

	done     chan struct{}
	handlers sync.WaitGroup

	slots     []chan struct{} // per-node fetch concurrency
	breakers  []*breaker
	fetchHist []obs.Histogram // per-node fetch attempt latency

	metrics Metrics
}

// NewService builds a Service; call Start to begin listening.
func NewService(cfg Config) (*Service, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("shufflenet: Config.Transport is required")
	}
	s := &Service{
		cfg:      cfg,
		segments: make(map[int]published),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	n := cfg.nodes()
	s.slots = make([]chan struct{}, n)
	s.breakers = make([]*breaker, n)
	s.fetchHist = make([]obs.Histogram, n)
	r := cfg.Obs.R() // nil-safe: a nil registry hands out no-op handles
	for i := range s.slots {
		s.slots[i] = make(chan struct{}, cfg.perNodeFetchers())
		b := newBreaker(i, cfg.breakerThreshold(), cfg.Backoff, &s.metrics)
		node := obs.L("node", strconv.Itoa(i))
		b.transOpen = r.Counter("scikey_shuffle_breaker_transitions_total",
			"Circuit breaker state transitions by node and target state", "", node, obs.L("state", "open"))
		b.transHalfOpen = r.Counter("scikey_shuffle_breaker_transitions_total",
			"Circuit breaker state transitions by node and target state", "", node, obs.L("state", "half_open"))
		b.transClosed = r.Counter("scikey_shuffle_breaker_transitions_total",
			"Circuit breaker state transitions by node and target state", "", node, obs.L("state", "closed"))
		s.breakers[i] = b
		s.fetchHist[i] = r.Histogram("scikey_shuffle_fetch_seconds",
			"Latency of individual shuffle fetch attempts by serving node", "seconds", nil, node)
	}
	return s, nil
}

// Nodes returns the shuffle node count.
func (s *Service) Nodes() int { return s.cfg.nodes() }

// NodeOf names the node hosting a map task's output.
func (s *Service) NodeOf(mapTask int) int { return mapTask % s.cfg.nodes() }

// Metrics exposes the service's counters.
func (s *Service) Metrics() MetricsSnapshot { return s.metrics.Snapshot() }

// Start brings up one server per node.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("shufflenet: already started")
	}
	s.started = true
	for node := 0; node < s.cfg.nodes(); node++ {
		l, err := s.cfg.Transport.Listen(node)
		if err != nil {
			s.closeLocked()
			return fmt.Errorf("shufflenet: node %d listen: %w", node, err)
		}
		s.listeners = append(s.listeners, l)
		s.handlers.Add(1)
		go s.serve(node, l)
	}
	return nil
}

// Publish installs (or replaces, for a re-executed map task) one map
// attempt's committed per-partition segments on the task's node. The byte
// slices are shared, not copied: the engine never mutates committed map
// output.
func (s *Service) Publish(mapTask, attempt int, parts [][]byte) {
	crcs := make([][]uint32, len(parts))
	for i, p := range parts {
		crcs[i] = chunkCRCs(p, s.cfg.chunkBytes())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segments[mapTask] = published{attempt: attempt, parts: parts, crcs: crcs}
}

// lookup returns the published output of one map task.
func (s *Service) lookup(mapTask int) (published, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.segments[mapTask]
	return p, ok
}

// Close shuts the servers down and waits for in-flight handlers to exit.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closeLocked()
	s.mu.Unlock()
	s.handlers.Wait()
	return nil
}

func (s *Service) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.done)
	for _, l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
}

func (s *Service) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Service) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}
