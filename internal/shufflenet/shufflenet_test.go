package shufflenet

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scikey/internal/backoff"
	"scikey/internal/faults"
)

// testBytes builds a deterministic payload that differs at every offset
// window, so truncation/resume bugs can't produce a false match.
func testBytes(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + seed ^ byte(i>>8)
	}
	return b
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Transport == nil {
		cfg.Transport = NewMemTransport()
	}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func injector(t *testing.T, spec string) *faults.Injector {
	t.Helper()
	in, err := faults.NewFromSpec(spec)
	if err != nil {
		t.Fatalf("NewFromSpec(%q): %v", spec, err)
	}
	return in
}

// TestRoundTrip publishes multi-chunk segments and fetches them back over
// both transports.
func TestRoundTrip(t *testing.T) {
	transports := map[string]func() Transport{
		"mem": func() Transport { return NewMemTransport() },
		"tcp": func() Transport { return NewTCPTransport() },
	}
	for name, mk := range transports {
		t.Run(name, func(t *testing.T) {
			s := newTestService(t, Config{Transport: mk(), Nodes: 3, ChunkBytes: 64})
			want := make(map[[2]int][]byte)
			for m := 0; m < 5; m++ {
				parts := [][]byte{
					testBytes(200+m*37, byte(m)), // ~4 chunks
					nil,                          // empty partition
					testBytes(63, byte(m+1)),     // sub-chunk
				}
				s.Publish(m, 0, parts)
				for p := range parts {
					want[[2]int{m, p}] = parts[p]
				}
			}
			for m := 0; m < 5; m++ {
				for p := 0; p < 3; p++ {
					res, err := s.Fetch(nil, m, p)
					if err != nil {
						t.Fatalf("Fetch(%d,%d): %v", m, p, err)
					}
					if !bytes.Equal(res.Data, want[[2]int{m, p}]) {
						t.Fatalf("Fetch(%d,%d): got %d bytes, want %d", m, p, len(res.Data), len(want[[2]int{m, p}]))
					}
					if res.Attempt != 0 {
						t.Fatalf("Fetch(%d,%d): attempt %d, want 0", m, p, res.Attempt)
					}
				}
			}
			if got := s.Metrics(); got.Fetches != 15 || got.Retries != 0 || got.WastedBytes != 0 {
				t.Fatalf("metrics after clean run: %+v", got)
			}
		})
	}
}

// TestFetchNotPublished exhausts the budget against a node that never got
// the segment and surfaces a typed FetchError.
func TestFetchNotPublished(t *testing.T) {
	s := newTestService(t, Config{Nodes: 2, FetchAttempts: 3})
	_, err := s.Fetch(nil, 1, 0)
	var fe *FetchError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FetchError", err)
	}
	if fe.Node != 1 || fe.MapTask != 1 || fe.Partition != 0 || fe.Attempts != 3 {
		t.Fatalf("FetchError fields: %+v", fe)
	}
	if !errors.Is(err, errNotPublished) {
		t.Fatalf("cause = %v, want errNotPublished", fe.Err)
	}
	if got := s.Metrics(); got.SegmentsLost != 1 || got.Retries != 2 {
		t.Fatalf("metrics: %+v", got)
	}
}

// TestFaultRecovery runs each injected server-side fault once on fetch
// attempt 0 and checks the retry recovers the exact bytes.
func TestFaultRecovery(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"refuse", "net:0:refuse@0"},
		{"cut", "net:0:cut@0"},
		{"stall", "net:0:stall=300ms@0"},
		{"truncate", "net:0:truncate@0"},
		{"corrupt", "net:0:corrupt@0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestService(t, Config{
				Nodes:        2,
				ChunkBytes:   32,
				FetchTimeout: 100 * time.Millisecond,
				Injector:     injector(t, tc.spec),
			})
			want := testBytes(300, 7) // ~10 chunks
			s.Publish(0, 4, [][]byte{want})
			res, err := s.Fetch(nil, 0, 0)
			if err != nil {
				t.Fatalf("Fetch: %v", err)
			}
			if !bytes.Equal(res.Data, want) {
				t.Fatalf("data mismatch: got %d bytes, want %d", len(res.Data), len(want))
			}
			if res.Attempt != 4 {
				t.Fatalf("attempt = %d, want 4", res.Attempt)
			}
			m := s.Metrics()
			if m.Retries == 0 {
				t.Fatalf("expected retries, metrics %+v", m)
			}
			// cut and truncate leave a verified prefix: the retry must resume,
			// not restart.
			if tc.name == "cut" || tc.name == "truncate" {
				if !res.Resumed || m.Resumes == 0 || m.ResumedBytes == 0 {
					t.Fatalf("%s: expected resumed fetch, res %+v metrics %+v", tc.name, res, m)
				}
				if res.WastedBytes != 0 {
					t.Fatalf("%s: resume should waste nothing, wasted %d", tc.name, res.WastedBytes)
				}
			}
			if tc.name == "corrupt" && m.CRCErrors == 0 {
				t.Fatalf("corrupt: expected a chunk CRC rejection")
			}
		})
	}
}

// TestFetchExhaustion: a fault on every attempt runs the budget out and
// reports the segment lost, with the verified prefix charged as waste.
func TestFetchExhaustion(t *testing.T) {
	s := newTestService(t, Config{
		Nodes:            2,
		ChunkBytes:       32,
		FetchAttempts:    3,
		BreakerThreshold: -1,
		Injector:         injector(t, "net:0:refuse@*"),
	})
	s.Publish(0, 0, [][]byte{testBytes(100, 1)})
	_, err := s.Fetch(nil, 0, 0)
	var fe *FetchError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FetchError", err)
	}
	if fe.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", fe.Attempts)
	}
	if got := s.Metrics(); got.SegmentsLost != 1 {
		t.Fatalf("metrics: %+v", got)
	}
}

// TestNodeDownRecovers: a node-down window refuses dials, then lifts; the
// fetch outlasts it on the backoff schedule.
func TestNodeDownRecovers(t *testing.T) {
	s := newTestService(t, Config{
		Nodes:            2,
		FetchAttempts:    50,
		Backoff:          backoff.Policy{Base: 20 * time.Millisecond, Max: 20 * time.Millisecond},
		BreakerThreshold: -1,
		Injector:         injector(t, "node:0:down=60ms"),
	})
	want := testBytes(100, 3)
	s.Publish(0, 0, [][]byte{want})
	res, err := s.Fetch(nil, 0, 0)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatalf("data mismatch after node-down window")
	}
	if s.Metrics().Retries == 0 {
		t.Fatalf("expected retries through the outage")
	}
}

// TestRepublishResetsResume: a verified prefix of a dead map attempt is
// discarded — and counted as waste — when the server now holds a newer
// attempt.
func TestRepublishResetsResume(t *testing.T) {
	s := newTestService(t, Config{
		Nodes:      1,
		ChunkBytes: 8,
		Injector:   injector(t, "net:0:cut@0"),
	})
	old := testBytes(64, 1)
	s.Publish(0, 0, [][]byte{old})

	// Attempt 0 is cut mid-chunk: fetchOnce fails with a verified prefix.
	st := &fetchState{attempt: -1}
	if err := s.fetchOnce(0, 0, 0, 0, st); err == nil {
		t.Fatalf("expected the injected cut to fail the first exchange")
	}
	if len(st.buf) == 0 || len(st.buf) >= len(old) {
		t.Fatalf("verified prefix = %d bytes, want partial", len(st.buf))
	}
	prefix := len(st.buf)

	// The producer re-executes and republishes different bytes as attempt 1.
	renewed := testBytes(64, 9)
	s.Publish(0, 1, [][]byte{renewed})

	if err := s.fetchOnce(0, 0, 0, 1, st); err != nil {
		t.Fatalf("fetchOnce after republish: %v", err)
	}
	if !bytes.Equal(st.buf, renewed) {
		t.Fatalf("got old-attempt bytes after republish")
	}
	if st.attempt != 1 {
		t.Fatalf("attempt = %d, want 1", st.attempt)
	}
	if st.wasted != int64(prefix) {
		t.Fatalf("wasted = %d, want the discarded prefix %d", st.wasted, prefix)
	}
}

// TestBreakerStateMachine drives one breaker through closed → open →
// half-open → open → half-open → closed.
func TestBreakerStateMachine(t *testing.T) {
	var m Metrics
	b := newBreaker(0, 2, backoff.Policy{Base: 20 * time.Millisecond, Max: 20 * time.Millisecond}, &m)

	if !b.allow() {
		t.Fatal("closed breaker must allow")
	}
	b.failure()
	if !b.allow() {
		t.Fatal("one failure below threshold must not open")
	}
	b.failure() // threshold reached: opens
	if b.allow() {
		t.Fatal("open breaker must refuse")
	}
	if m.BreakerTrips.Load() != 1 {
		t.Fatalf("trips = %d, want 1", m.BreakerTrips.Load())
	}

	time.Sleep(25 * time.Millisecond) // past reopenAt (jitter keeps delay < base)
	if !b.allow() {
		t.Fatal("breaker must half-open after the reopen delay")
	}
	if b.allow() {
		t.Fatal("only one half-open probe may fly")
	}
	b.failure() // probe fails: re-open
	if b.allow() {
		t.Fatal("failed probe must re-open the breaker")
	}
	if m.BreakerTrips.Load() != 2 {
		t.Fatalf("trips = %d, want 2", m.BreakerTrips.Load())
	}

	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker must half-open again")
	}
	b.success() // probe succeeds: close
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker must allow freely again")
	}
}

// TestBreakerIsolation: a dead node trips its breaker while fetches from the
// healthy node keep flowing untouched.
func TestBreakerIsolation(t *testing.T) {
	s := newTestService(t, Config{
		Nodes:            2,
		FetchAttempts:    5,
		BreakerThreshold: 2,
		Injector:         injector(t, "node:0:down=10s"),
	})
	sick := testBytes(50, 1)
	healthy := testBytes(50, 2)
	s.Publish(0, 0, [][]byte{sick})    // node 0
	s.Publish(1, 0, [][]byte{healthy}) // node 1

	if _, err := s.Fetch(nil, 0, 0); err == nil {
		t.Fatal("fetch from downed node must fail")
	}
	m := s.Metrics()
	if m.BreakerTrips == 0 || m.BreakerSkips == 0 {
		t.Fatalf("expected breaker trips and skips, metrics %+v", m)
	}
	res, err := s.Fetch(nil, 1, 0)
	if err != nil {
		t.Fatalf("healthy node fetch: %v", err)
	}
	if !bytes.Equal(res.Data, healthy) {
		t.Fatal("healthy node returned wrong bytes")
	}
}

// TestPerNodeConcurrencyBound: with one fetch slot and a per-request stall,
// concurrent fetches against a node serialize.
func TestPerNodeConcurrencyBound(t *testing.T) {
	const stall = 30 * time.Millisecond
	s := newTestService(t, Config{
		Nodes:           1,
		PerNodeFetchers: 1,
		FetchTimeout:    2 * time.Second,
		Injector:        injector(t, "net:*:stall=30ms@*"),
	})
	var inFlight, peak atomic.Int32
	// Observe server-side concurrency through the stall window.
	for m := 0; m < 4; m++ {
		s.Publish(m, 0, [][]byte{testBytes(40, byte(m))})
	}
	start := time.Now()
	var wg sync.WaitGroup
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			if _, err := s.Fetch(nil, m, 0); err != nil {
				t.Errorf("Fetch(%d): %v", m, err)
			}
			inFlight.Add(-1)
		}(m)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 4*stall {
		t.Fatalf("4 stalled fetches through 1 slot took %v, want >= %v (not serialized)", elapsed, 4*stall)
	}
}

// TestFetchCanceled: a closed stop channel abandons the fetch mid-backoff.
func TestFetchCanceled(t *testing.T) {
	s := newTestService(t, Config{
		Nodes:         1,
		FetchAttempts: 100,
		Backoff:       backoff.Policy{Base: time.Hour, Max: time.Hour},
	})
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := s.Fetch(stop, 0, 0) // never published: retries forever
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fetch did not honor cancellation")
	}
}

// TestProbabilisticStallDeterministic: a seeded %prob schedule injects the
// same faults on a replay, fetch for fetch.
func TestProbabilisticStallDeterministic(t *testing.T) {
	run := func() int64 {
		s := newTestService(t, Config{
			Nodes:        2,
			ChunkBytes:   32,
			FetchTimeout: 50 * time.Millisecond,
			Injector:     injector(t, "seed=11;net:*:cut@*%0.4"),
		})
		for m := 0; m < 6; m++ {
			s.Publish(m, 0, [][]byte{testBytes(100, byte(m))})
		}
		for m := 0; m < 6; m++ {
			if _, err := s.Fetch(nil, m, 0); err != nil {
				t.Fatalf("Fetch(%d): %v", m, err)
			}
		}
		return s.Metrics().Retries
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("retry counts differ across replays: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatalf("seed 11 at 40%% should cut at least one fetch")
	}
}
