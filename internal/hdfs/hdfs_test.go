package hdfs

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
)

func testFS() *FileSystem {
	return New(1024, 2, []string{"node0", "node1", "node2"})
}

func TestWriteRead(t *testing.T) {
	fs := testFS()
	data := bytes.Repeat([]byte("scihadoop "), 500) // 5000 bytes, ~5 blocks
	if err := fs.WriteFile("/data/grid.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/data/grid.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("readback mismatch")
	}
	size, err := fs.Stat("/data/grid.bin")
	if err != nil || size != int64(len(data)) {
		t.Errorf("Stat = %d, %v", size, err)
	}
}

func TestCreateVisibility(t *testing.T) {
	fs := testFS()
	w, err := fs.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("abc"))
	// Not visible before Close.
	if _, err := fs.Open("/f"); !errors.Is(err, ErrNotFound) {
		t.Errorf("pre-close Open err = %v, want ErrNotFound", err)
	}
	w.Close()
	if _, err := fs.Open("/f"); err != nil {
		t.Errorf("post-close Open: %v", err)
	}
	// Duplicate create fails.
	if _, err := fs.Create("/f"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Create err = %v", err)
	}
}

func TestBlockLocations(t *testing.T) {
	fs := testFS()
	data := make([]byte, 2500) // 3 blocks of 1024
	fs.WriteFile("/blk", data)
	locs, err := fs.BlockLocations("/blk")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 {
		t.Fatalf("got %d blocks, want 3", len(locs))
	}
	var off int64
	for i, l := range locs {
		if l.Offset != off {
			t.Errorf("block %d offset %d, want %d", i, l.Offset, off)
		}
		if len(l.Hosts) != 2 {
			t.Errorf("block %d has %d replicas, want 2", i, len(l.Hosts))
		}
		if l.Hosts[0] == l.Hosts[1] {
			t.Errorf("block %d replicas on the same node", i)
		}
		off += l.Length
	}
	if locs[2].Length != 2500-2048 {
		t.Errorf("tail block length %d", locs[2].Length)
	}
	// Round-robin placement spreads first replicas.
	if locs[0].Hosts[0] == locs[1].Hosts[0] && locs[1].Hosts[0] == locs[2].Hosts[0] {
		t.Error("placement not rotating")
	}
}

func TestListDelete(t *testing.T) {
	fs := testFS()
	fs.WriteFile("/b", nil)
	fs.WriteFile("/a", []byte("x"))
	got := fs.List()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("List = %v", got)
	}
	if err := fs.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
	if _, err := fs.Open("/a"); !errors.Is(err, ErrNotFound) {
		t.Error("deleted file still readable")
	}
}

func TestEmptyFile(t *testing.T) {
	fs := testFS()
	fs.WriteFile("/empty", nil)
	data, err := fs.ReadAll("/empty")
	if err != nil || len(data) != 0 {
		t.Errorf("empty file: %v, %d bytes", err, len(data))
	}
	locs, _ := fs.BlockLocations("/empty")
	if len(locs) != 0 {
		t.Errorf("empty file has %d blocks", len(locs))
	}
}

func TestChunkedReads(t *testing.T) {
	fs := testFS()
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 10_000)
	rng.Read(data)
	fs.WriteFile("/r", data)
	r, _ := fs.Open("/r")
	var back []byte
	buf := make([]byte, 333)
	for {
		n, err := r.Read(buf)
		back = append(back, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(back, data) {
		t.Error("chunked read mismatch")
	}
}

func TestConcurrentWriters(t *testing.T) {
	fs := testFS()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := string(rune('a' + i))
			payload := bytes.Repeat([]byte{byte(i)}, 3000)
			if err := fs.WriteFile(path, payload); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if len(fs.List()) != 16 {
		t.Errorf("expected 16 files, got %d", len(fs.List()))
	}
	for i := 0; i < 16; i++ {
		data, err := fs.ReadAll(string(rune('a' + i)))
		if err != nil || len(data) != 3000 || data[0] != byte(i) {
			t.Errorf("file %d corrupted", i)
		}
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := New(64, 10, []string{"only"})
	fs.WriteFile("/x", make([]byte, 100))
	locs, _ := fs.BlockLocations("/x")
	for _, l := range locs {
		if len(l.Hosts) != 1 {
			t.Errorf("replicas = %d, want 1", len(l.Hosts))
		}
	}
}

func TestReadRange(t *testing.T) {
	fs := testFS()
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	fs.WriteFile("/rr", data)
	cases := []struct{ off, n int64 }{
		{0, 0}, {0, 5000}, {1, 1}, {1000, 3000}, {1023, 2}, {4096, 904},
	}
	for _, c := range cases {
		got, err := fs.ReadRange("/rr", c.off, c.n)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", c.off, c.n, err)
		}
		if !bytes.Equal(got, data[c.off:c.off+c.n]) {
			t.Errorf("ReadRange(%d,%d) mismatch", c.off, c.n)
		}
	}
	if _, err := fs.ReadRange("/rr", 4999, 2); err == nil {
		t.Error("out-of-bounds range must fail")
	}
	if _, err := fs.ReadRange("/missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Error("missing file must report ErrNotFound")
	}
}

func TestRename(t *testing.T) {
	fs := New(16, 1, []string{"n0"})
	if err := fs.WriteFile("/tmp/part-0", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/tmp/part-0", "/out/part-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/tmp/part-0"); err == nil {
		t.Error("old path still readable after rename")
	}
	data, err := fs.ReadAll("/out/part-0")
	if err != nil || string(data) != "payload" {
		t.Errorf("renamed file = %q, %v", data, err)
	}
	// Rename of a missing source fails.
	if err := fs.Rename("/nope", "/out/x"); err == nil {
		t.Error("rename of missing file succeeded")
	}
	// Rename onto an existing file fails (HDFS does not overwrite).
	fs.WriteFile("/tmp/other", []byte("x"))
	if err := fs.Rename("/tmp/other", "/out/part-0"); err == nil {
		t.Error("rename onto existing file succeeded")
	}
	// A reserved-but-unmaterialized destination may be replaced: temp names
	// from failed attempts must not block commits.
	fs.Create("/out/reserved")
	if err := fs.Rename("/tmp/other", "/out/reserved"); err != nil {
		t.Errorf("rename onto reserved name failed: %v", err)
	}
}

// TestReaderCloseReleasesSnapshot is the reader-leak regression test: every
// Open pins its file's block snapshot, Close must release it — a no-op Close
// let long-lived cache readers pin whole-file copies until GC, making any
// byte accounting built on the filesystem untruthful.
func TestReaderCloseReleasesSnapshot(t *testing.T) {
	fs := testFS()
	payload := bytes.Repeat([]byte("x"), 5000) // spans several 1 KiB blocks
	if err := fs.WriteFile("/data/a", payload); err != nil {
		t.Fatal(err)
	}

	var readers []io.ReadCloser
	const n = 4
	for i := 0; i < n; i++ {
		r, err := fs.Open("/data/a")
		if err != nil {
			t.Fatal(err)
		}
		readers = append(readers, r)
	}
	if got := fs.OpenReaders(); got != n {
		t.Fatalf("OpenReaders = %d, want %d", got, n)
	}
	if got, want := fs.PinnedBytes(), int64(n*len(payload)); got != want {
		t.Fatalf("PinnedBytes = %d, want %d", got, want)
	}

	// Reading to EOF does not release anything; only Close does.
	if _, err := io.ReadAll(readers[0]); err != nil {
		t.Fatal(err)
	}
	if got, want := fs.PinnedBytes(), int64(n*len(payload)); got != want {
		t.Fatalf("PinnedBytes after ReadAll = %d, want %d", got, want)
	}

	for _, r := range readers {
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.OpenReaders(); got != 0 {
		t.Errorf("OpenReaders after Close = %d, want 0", got)
	}
	if got := fs.PinnedBytes(); got != 0 {
		t.Errorf("PinnedBytes after Close = %d, want 0", got)
	}

	// Double Close stays balanced; a closed reader refuses to read.
	if err := readers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if got := fs.OpenReaders(); got != 0 {
		t.Errorf("OpenReaders after double Close = %d, want 0", got)
	}
	if _, err := readers[0].Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after Close = %v, want ErrClosed", err)
	}

	// A reader opened before Delete keeps its snapshot until Close — the
	// accounting names exactly the bytes such a holdout keeps alive.
	r, err := fs.Open("/data/a")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/data/a"); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after delete = %d bytes, %v", len(got), err)
	}
	if fs.PinnedBytes() != int64(len(payload)) {
		t.Errorf("PinnedBytes with post-delete holdout = %d, want %d", fs.PinnedBytes(), len(payload))
	}
	r.Close()
	if fs.PinnedBytes() != 0 {
		t.Errorf("PinnedBytes after holdout Close = %d, want 0", fs.PinnedBytes())
	}
}
