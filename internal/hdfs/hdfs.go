// Package hdfs simulates the distributed filesystem under SciHadoop: an
// in-memory namespace of block-structured files with round-robin placement
// and replication, enough to drive input splits with locality information
// and to hold job output. Steps 1 and 7 of the paper's data-flow diagram
// (Fig. 1) read and write this store.
package hdfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultBlockSize mirrors the Hadoop-era 64 MB default.
const DefaultBlockSize = 64 << 20

// ErrNotFound reports a missing path.
var ErrNotFound = errors.New("hdfs: file not found")

// ErrExists reports a Create on an existing path.
var ErrExists = errors.New("hdfs: file exists")

// ErrClosed reports a Read on a closed reader.
var ErrClosed = errors.New("hdfs: reader is closed")

// BlockLocation describes one block of a file and the nodes holding it.
type BlockLocation struct {
	Offset int64
	Length int64
	Hosts  []string
}

// FileSystem is an in-memory HDFS namespace. All methods are safe for
// concurrent use.
type FileSystem struct {
	mu          sync.RWMutex
	blockSize   int64
	replication int
	nodes       []string
	files       map[string]*fileEntry
	nextNode    int

	// openReaders / pinnedBytes account for live readers: each Open pins
	// its file's block snapshot (the entry stays reachable even if the
	// path is deleted or renamed over) until Close releases it. Long-lived
	// holders — the segment cache above all — consult these to report
	// truthful byte usage instead of trusting the GC to have collected
	// forgotten snapshots.
	openReaders atomic.Int64
	pinnedBytes atomic.Int64
}

type fileEntry struct {
	blocks [][]byte
	hosts  [][]string
	size   int64
}

// New creates a filesystem over the given datanodes. Replication is capped
// at the node count.
func New(blockSize int64, replication int, nodes []string) *FileSystem {
	if blockSize <= 0 {
		panic("hdfs: block size must be positive")
	}
	if len(nodes) == 0 {
		panic("hdfs: need at least one datanode")
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(nodes) {
		replication = len(nodes)
	}
	return &FileSystem{
		blockSize:   blockSize,
		replication: replication,
		nodes:       append([]string(nil), nodes...),
		files:       make(map[string]*fileEntry),
	}
}

// BlockSize returns the filesystem block size.
func (fs *FileSystem) BlockSize() int64 { return fs.blockSize }

// Nodes returns the datanode names.
func (fs *FileSystem) Nodes() []string { return append([]string(nil), fs.nodes...) }

// Create opens a new file for writing. The file becomes visible to readers
// only after Close.
func (fs *FileSystem) Create(path string) (io.WriteCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	fs.files[path] = nil // reserve the name
	return &fileWriter{fs: fs, path: path}, nil
}

type fileWriter struct {
	fs     *FileSystem
	path   string
	entry  fileEntry
	closed bool
}

func (w *fileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, errors.New("hdfs: write after close")
	}
	total := len(p)
	for len(p) > 0 {
		if len(w.entry.blocks) == 0 ||
			int64(len(w.entry.blocks[len(w.entry.blocks)-1])) == w.fs.blockSize {
			w.entry.blocks = append(w.entry.blocks, make([]byte, 0, min(int64(len(p)), w.fs.blockSize)))
			w.entry.hosts = append(w.entry.hosts, w.fs.placeBlock())
		}
		last := len(w.entry.blocks) - 1
		room := w.fs.blockSize - int64(len(w.entry.blocks[last]))
		n := int64(len(p))
		if n > room {
			n = room
		}
		w.entry.blocks[last] = append(w.entry.blocks[last], p[:n]...)
		w.entry.size += n
		p = p[n:]
	}
	return total, nil
}

func (w *fileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	e := w.entry
	w.fs.files[w.path] = &e
	return nil
}

// placeBlock picks replication hosts round-robin. Caller holds no lock
// during writes; placement contention is tolerable, so take the lock here.
func (fs *FileSystem) placeBlock() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	hosts := make([]string, 0, fs.replication)
	for i := 0; i < fs.replication; i++ {
		hosts = append(hosts, fs.nodes[(fs.nextNode+i)%len(fs.nodes)])
	}
	fs.nextNode = (fs.nextNode + 1) % len(fs.nodes)
	return hosts
}

// Open returns a reader over the whole file. The reader pins the file's
// block snapshot until Close; callers that hold readers for a long time
// (cache backends) must Close them so PinnedBytes stays truthful.
func (fs *FileSystem) Open(path string) (io.ReadCloser, error) {
	fs.mu.RLock()
	e, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok || e == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	fs.openReaders.Add(1)
	fs.pinnedBytes.Add(e.size)
	return &fileReader{fs: fs, entry: e, size: e.size}, nil
}

// OpenReaders reports how many readers are currently open (Opened but not
// yet Closed).
func (fs *FileSystem) OpenReaders() int64 { return fs.openReaders.Load() }

// PinnedBytes reports the total file bytes pinned by open readers — the
// memory a leaked reader would keep alive.
func (fs *FileSystem) PinnedBytes() int64 { return fs.pinnedBytes.Load() }

// ReadAll returns the whole contents of path.
func (fs *FileSystem) ReadAll(path string) ([]byte, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// WriteFile creates path with the given contents.
func (fs *FileSystem) WriteFile(path string, data []byte) error {
	w, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

type fileReader struct {
	fs    *FileSystem
	entry *fileEntry
	size  int64
	block int
	off   int
}

func (r *fileReader) Read(p []byte) (int, error) {
	if r.entry == nil {
		return 0, ErrClosed
	}
	for r.block < len(r.entry.blocks) && r.off == len(r.entry.blocks[r.block]) {
		r.block++
		r.off = 0
	}
	if r.block >= len(r.entry.blocks) {
		return 0, io.EOF
	}
	n := copy(p, r.entry.blocks[r.block][r.off:])
	r.off += n
	return n, nil
}

// Close releases the reader's block snapshot so the bytes stop counting as
// pinned (and, if the file was deleted meanwhile, become collectable).
// Closing twice is safe; reads after Close fail with ErrClosed.
func (r *fileReader) Close() error {
	if r.entry == nil {
		return nil
	}
	r.entry = nil
	r.fs.openReaders.Add(-1)
	r.fs.pinnedBytes.Add(-r.size)
	return nil
}

// ReadRange returns n bytes of path starting at offset off — the ranged
// read an input split uses to fetch just its slab.
func (fs *FileSystem) ReadRange(path string, off, n int64) ([]byte, error) {
	fs.mu.RLock()
	e, ok := fs.files[path]
	fs.mu.RUnlock()
	if !ok || e == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if off < 0 || n < 0 || off+n > e.size {
		return nil, fmt.Errorf("hdfs: range [%d,%d) outside file of %d bytes", off, off+n, e.size)
	}
	out := make([]byte, 0, n)
	blk := int(off / fs.blockSize)
	pos := off % fs.blockSize
	for int64(len(out)) < n {
		b := e.blocks[blk]
		take := min(n-int64(len(out)), int64(len(b))-pos)
		out = append(out, b[pos:pos+take]...)
		blk++
		pos = 0
	}
	return out, nil
}

// Stat returns the size of path.
func (fs *FileSystem) Stat(path string) (int64, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	e, ok := fs.files[path]
	if !ok || e == nil {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return e.size, nil
}

// BlockLocations lists the blocks of path with their hosts, the locality
// interface map scheduling uses.
func (fs *FileSystem) BlockLocations(path string) ([]BlockLocation, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	e, ok := fs.files[path]
	if !ok || e == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]BlockLocation, len(e.blocks))
	var off int64
	for i, b := range e.blocks {
		out[i] = BlockLocation{
			Offset: off,
			Length: int64(len(b)),
			Hosts:  append([]string(nil), e.hosts[i]...),
		}
		off += int64(len(b))
	}
	return out, nil
}

// List returns the paths under the namespace, sorted.
func (fs *FileSystem) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for p, e := range fs.files {
		if e != nil {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Rename atomically moves oldPath to newPath, the commit step of the
// MapReduce output protocol: task attempts write to attempt-private temp
// paths and the winning attempt renames its file into place. Renaming onto
// an existing file fails with ErrExists (HDFS rename does not overwrite).
func (fs *FileSystem) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	e, ok := fs.files[oldPath]
	if !ok || e == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
	}
	if cur, ok := fs.files[newPath]; ok && cur != nil {
		return fmt.Errorf("%w: %s", ErrExists, newPath)
	}
	fs.files[newPath] = e
	delete(fs.files, oldPath)
	return nil
}

// Delete removes path.
func (fs *FileSystem) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if e, ok := fs.files[path]; !ok || e == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(fs.files, path)
	return nil
}
