// Package backoff is the engine's shared deterministic retry-delay
// machinery. Both the attempt scheduler (task retries) and the networked
// shuffle fetcher (fetch retries, circuit-breaker reopen schedule) draw
// their delays from a Policy: exponential growth from Base, capped at Max,
// with jitter in [d/2, d) that is a pure function of (Seed, key1, key2,
// failures). The same coordinates always yield the same delay, so faulty
// runs replay identically — the property every recovery test relies on.
package backoff

import (
	"hash/fnv"
	"math"
	"time"
)

// Policy describes one exponential-backoff schedule.
type Policy struct {
	// Base is the delay before the first retry; each further failure
	// doubles it. <= 0 means no delay (retry immediately).
	Base time.Duration
	// Max caps the exponential growth. 0 means uncapped (growth still
	// saturates instead of overflowing).
	Max time.Duration
	// Seed drives the deterministic jitter.
	Seed int64
}

// Delay returns the backoff before the retry following the given number of
// consecutive failures of the work item identified by (key1, key2). The
// result is jittered into [d/2, d) deterministically: the same (Seed, key1,
// key2, failures) always produces the same delay.
func (p Policy) Delay(key1, key2 int64, failures int) time.Duration {
	if p.Base <= 0 || failures <= 0 {
		return 0
	}
	d := p.Base
	for i := 1; i < failures; i++ {
		if d >= math.MaxInt64/2 {
			d = math.MaxInt64 // saturate rather than overflow
			break
		}
		d *= 2
		if p.Max > 0 && d >= p.Max {
			break
		}
	}
	if p.Max > 0 && d > p.Max {
		d = p.Max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	h := Hash(p.Seed, key1, key2, int64(failures))
	// (half/1024)*(h%1024) rather than half*(h%1024)/1024: the product must
	// not overflow even when growth has saturated near MaxInt64.
	return half + time.Duration(half/1024)*time.Duration(h%1024)
}

// Hash is the deterministic jitter source (FNV-1a over the fixed-width
// little-endian encoding of the inputs). Exported so sibling packages that
// need coordinate-keyed determinism (fault draws, bit-flip offsets) mix
// bits the same way.
func Hash(vs ...int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vs {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Sleep waits for d or until cancel closes, whichever is first. It reports
// whether the full delay elapsed (false means the wait was interrupted). A
// nil cancel channel degrades to a plain timer wait; d <= 0 returns true
// immediately. Waiters must never block a canceled job: a fatal error
// elsewhere must not leave a retry sleeping.
func Sleep(d time.Duration, cancel <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
