package backoff

import (
	"math"
	"testing"
	"time"
)

// TestDelayTable pins the delay envelope per failure count: exponential
// growth from Base, capping at Max, saturation instead of overflow, and the
// zero cases.
func TestDelayTable(t *testing.T) {
	cases := []struct {
		name     string
		p        Policy
		failures int
		// wantBase is the un-jittered delay d; the result must land in
		// [d/2, d). wantZero asserts an exact zero instead.
		wantBase time.Duration
		wantZero bool
	}{
		{"no failures", Policy{Base: time.Second}, 0, 0, true},
		{"negative failures", Policy{Base: time.Second}, -3, 0, true},
		{"zero base", Policy{Base: 0}, 4, 0, true},
		{"negative base", Policy{Base: -time.Second}, 2, 0, true},
		{"first retry", Policy{Base: 100 * time.Millisecond}, 1, 100 * time.Millisecond, false},
		{"doubling", Policy{Base: 100 * time.Millisecond}, 3, 400 * time.Millisecond, false},
		{"cap reached", Policy{Base: 100 * time.Millisecond, Max: 250 * time.Millisecond}, 3, 250 * time.Millisecond, false},
		{"cap far exceeded", Policy{Base: time.Second, Max: 2 * time.Second}, 40, 2 * time.Second, false},
		{"uncapped saturates", Policy{Base: time.Second}, 80, math.MaxInt64, false},
		{"one nanosecond", Policy{Base: 1}, 1, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.p.Delay(7, 3, tc.failures)
			if tc.wantZero {
				if got != 0 {
					t.Fatalf("Delay = %v, want 0", got)
				}
				return
			}
			if got <= 0 {
				t.Fatalf("Delay = %v, want > 0", got)
			}
			lo, hi := tc.wantBase/2, tc.wantBase
			if lo == 0 {
				// Sub-2ns delays cannot jitter; the exact base is returned.
				if got != tc.wantBase {
					t.Fatalf("Delay = %v, want exactly %v", got, tc.wantBase)
				}
				return
			}
			if got < lo || got >= hi {
				t.Fatalf("Delay = %v outside [%v, %v)", got, lo, hi)
			}
		})
	}
}

// TestDelayDeterministic: the jitter is a pure function of
// (Seed, key1, key2, failures), and each coordinate matters.
func TestDelayDeterministic(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 5 * time.Second, Seed: 42}
	for k1 := int64(0); k1 < 4; k1++ {
		for k2 := int64(0); k2 < 3; k2++ {
			for f := 1; f <= 5; f++ {
				if a, b := p.Delay(k1, k2, f), p.Delay(k1, k2, f); a != b {
					t.Fatalf("Delay(%d,%d,%d) not deterministic: %v vs %v", k1, k2, f, a, b)
				}
			}
		}
	}
	differs := func(name string, alt func(int64) time.Duration) {
		base := p.Delay(0, 0, 1)
		for i := int64(1); i < 64; i++ {
			if alt(i) != base {
				return
			}
		}
		t.Errorf("%s never changes the jitter", name)
	}
	differs("key1", func(i int64) time.Duration { return p.Delay(i, 0, 1) })
	differs("key2", func(i int64) time.Duration { return p.Delay(0, i, 1) })
	differs("seed", func(i int64) time.Duration {
		q := p
		q.Seed = i
		return q.Delay(0, 0, 1)
	})
}

// TestSleepInterruptible: a canceled sleep returns promptly and reports the
// interruption; nil cancel still waits the full delay.
func TestSleepInterruptible(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	if Sleep(10*time.Second, cancel) {
		t.Fatal("canceled sleep reported a full wait")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("canceled sleep blocked for %v", el)
	}
	if !Sleep(time.Millisecond, nil) {
		t.Fatal("uncanceled sleep reported an interruption")
	}
	if !Sleep(0, cancel) {
		t.Fatal("zero-delay sleep must report a full wait")
	}
}
