package clusterd

import (
	"testing"
	"time"

	"scikey/internal/mapreduce"
)

// The lease state machine is pure — every method takes now explicitly — so
// these tests drive its edges with a fake clock: expiry strictly after the
// deadline, renewal exactly at the deadline, zero-TTL leases, duplicate
// completion after reassignment, and whole-worker forfeiture.

// grant is the tests' shorthand for the live path's next+install pair (the
// production grant flow journals the built lease in between). It returns
// the installed copy, whose deadline is set.
func (t *leaseTable) grant(worker int, phase string, task, attempt int, now time.Time) *leaseInfo {
	li := t.next(worker, 1, phase, task, attempt, now)
	t.install(li, now)
	return t.active[li.ID]
}

func TestLeaseExpiryEdges(t *testing.T) {
	t0 := time.Unix(1000, 0)
	lt := newLeaseTable(100 * time.Millisecond)
	li := lt.grant(0, mapreduce.PhaseMap, 3, 0, t0)
	if li.Deadline != t0.Add(100*time.Millisecond) {
		t.Fatalf("deadline = %v, want t0+100ms", li.Deadline)
	}

	// At the deadline the lease survives; expiry needs now strictly after.
	if got := lt.expired(li.Deadline); len(got) != 0 {
		t.Errorf("lease expired exactly at its deadline: %v", got)
	}
	if got := lt.expired(li.Deadline.Add(time.Nanosecond)); len(got) != 1 || got[0].ID != li.ID {
		t.Errorf("lease did not expire after its deadline: %v", got)
	}
	if lt.count() != 0 {
		t.Errorf("expired lease still tracked, count=%d", lt.count())
	}
}

func TestLeaseRenewAtDeadline(t *testing.T) {
	t0 := time.Unix(1000, 0)
	lt := newLeaseTable(time.Second)
	li := lt.grant(1, mapreduce.PhaseReduce, 0, 0, t0)

	// A heartbeat arriving exactly at the deadline is on time and pushes
	// the deadline a full TTL further.
	atDeadline := li.Deadline
	if unknown := lt.renew(1, []int{li.ID}, atDeadline); len(unknown) != 0 {
		t.Fatalf("renew at deadline reported unknown leases %v", unknown)
	}
	if got := lt.expired(atDeadline.Add(time.Nanosecond)); len(got) != 0 {
		t.Errorf("renewed lease expired: %v", got)
	}
	if got := lt.expired(atDeadline.Add(time.Second + time.Nanosecond)); len(got) != 1 {
		t.Errorf("renewed lease outlived its new deadline: %v", got)
	}

	// Renewal from the wrong worker does not touch the lease.
	li2 := lt.grant(1, mapreduce.PhaseReduce, 1, 0, t0)
	if unknown := lt.renew(2, []int{li2.ID}, t0); len(unknown) != 1 || unknown[0] != li2.ID {
		t.Errorf("cross-worker renew not rejected: %v", unknown)
	}
	if li2.Deadline != t0.Add(time.Second) {
		t.Errorf("cross-worker renew moved the deadline to %v", li2.Deadline)
	}
}

func TestLeaseZeroTTL(t *testing.T) {
	// A zero-budget lease: any strictly later sweep collects it. The
	// coordinator never configures this, but the table must not wedge.
	t0 := time.Unix(1000, 0)
	lt := newLeaseTable(0)
	lt.grant(0, mapreduce.PhaseMap, 0, 0, t0)
	if got := lt.expired(t0); len(got) != 0 {
		t.Errorf("zero-TTL lease expired at grant time: %v", got)
	}
	if got := lt.expired(t0.Add(time.Nanosecond)); len(got) != 1 {
		t.Errorf("zero-TTL lease survived past grant time: %v", got)
	}
}

func TestDuplicateCompletionAfterReassignment(t *testing.T) {
	// Worker 0's lease lapses, the attempt is reissued to worker 1, and
	// then worker 0 comes back from its stop and reports completion. The
	// old lease ID must read as stale while the replacement stays live.
	t0 := time.Unix(1000, 0)
	lt := newLeaseTable(50 * time.Millisecond)
	old := lt.grant(0, mapreduce.PhaseMap, 7, 0, t0)
	if got := lt.expired(t0.Add(time.Minute)); len(got) != 1 || got[0].ID != old.ID {
		t.Fatalf("lease did not lapse: %v", got)
	}
	replacement := lt.grant(1, mapreduce.PhaseMap, 7, 1, t0.Add(time.Minute))

	if _, ok := lt.complete(old.ID); ok {
		t.Errorf("stale completion for expired lease %d accepted", old.ID)
	}
	if li, ok := lt.complete(replacement.ID); !ok || li.Task != 7 || li.Attempt != 1 {
		t.Errorf("live replacement lease rejected: %+v ok=%v", li, ok)
	}
	// Completing twice is also stale the second time.
	if _, ok := lt.complete(replacement.ID); ok {
		t.Error("double completion accepted")
	}
}

func TestGrantSeqAndDropWorker(t *testing.T) {
	t0 := time.Unix(1000, 0)
	lt := newLeaseTable(time.Second)
	m0 := lt.grant(0, mapreduce.PhaseMap, 0, 0, t0)
	m1 := lt.grant(0, mapreduce.PhaseMap, 5, 0, t0)
	r0 := lt.grant(0, mapreduce.PhaseReduce, 0, 0, t0)
	other := lt.grant(1, mapreduce.PhaseMap, 1, 0, t0)
	if m0.GrantSeq != 0 || m1.GrantSeq != 1 || r0.GrantSeq != 0 || other.GrantSeq != 0 {
		t.Errorf("grant sequences = %d,%d,%d,%d; phases count independently per worker",
			m0.GrantSeq, m1.GrantSeq, r0.GrantSeq, other.GrantSeq)
	}
	if lt.load(0) != 3 || lt.load(1) != 1 {
		t.Errorf("load = %d,%d, want 3,1", lt.load(0), lt.load(1))
	}

	dropped := lt.dropWorker(0)
	if len(dropped) != 3 || lt.count() != 1 {
		t.Errorf("dropWorker removed %d leases, %d left", len(dropped), lt.count())
	}
	// Grant sequences keep counting across the worker's death: a restarted
	// worker gets a fresh worker ID, so old coordinates stay unique.
	m2 := lt.grant(0, mapreduce.PhaseMap, 0, 1, t0)
	if m2.GrantSeq != 2 {
		t.Errorf("grant seq after drop = %d, want 2", m2.GrantSeq)
	}
}
