package clusterd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"scikey/internal/mapreduce"
)

// Wire protocol: one persistent connection per worker, carrying framed
// messages in both directions. Every frame is
//
//	kind u8 | len u32 | crc32 u32 | payload [len]byte
//
// (integers big-endian, CRC32 IEEE over the payload, payloads JSON). The
// frame CRC is the same end-to-end integrity idiom the shufflenet transport
// uses: a corrupted frame is detected at the reader and tears the session
// down rather than delivering garbage into the lease state machine.
//
// Registration handshake: the worker connects, sends hello{PID}, and the
// coordinator answers welcome{Worker, Spec, HeartbeatEvery, LeaseTTL}. After
// that the worker heartbeats on schedule and the coordinator pushes grant
// frames; the worker answers each grant with started, then complete or fail.
// Reduce attempts pull map output segments through segReq/segData pairs
// correlated by Seq on the same connection. goodbye{Draining} starts a
// graceful drain: no further grants, the worker finishes what it holds and
// hangs up.
const (
	kindHello byte = iota + 1
	kindWelcome
	kindHeartbeat
	kindGrant
	kindStarted
	kindComplete
	kindFail
	kindRevoke
	kindSegReq
	kindSegData
	kindGoodbye
)

// maxFrame bounds one frame's payload so a corrupt length field cannot make
// the reader allocate unbounded memory.
const maxFrame = 1 << 30

type helloMsg struct {
	PID int
}

type welcomeMsg struct {
	Worker         int
	Spec           []byte
	HeartbeatEvery time.Duration
	LeaseTTL       time.Duration
}

type heartbeatMsg struct {
	Seq int
	// Leases lists the lease IDs the worker believes it holds; the
	// coordinator renews them and revokes any it no longer tracks.
	Leases []int
}

type grantMsg struct {
	Lease   int
	Phase   string
	Task    int
	Attempt int
}

type startedMsg struct {
	Lease int
}

type completeMsg struct {
	Lease  int
	Result *mapreduce.RemoteResult
}

// corruptInfo carries a reduce-side corruption detection across the wire so
// the coordinator can rebuild the *mapreduce.ErrCorruptSegment that drives
// map re-execution.
type corruptInfo struct {
	MapTask   int
	Partition int
	Attempt   int
}

type failMsg struct {
	Lease    int
	Error    string
	Canceled bool
	Corrupt  *corruptInfo
}

type revokeMsg struct {
	Lease int
}

type segReqMsg struct {
	Seq       int
	MapTask   int
	Partition int
}

type segDataMsg struct {
	Seq     int
	Attempt int
	Data    []byte
	Error   string
}

type goodbyeMsg struct {
	Draining bool
}

// writeMsg frames and writes one message. Callers serialize writes per
// connection themselves.
func writeMsg(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("clusterd: marshal kind %d: %v", kind, err)
	}
	hdr := make([]byte, 9, 9+len(payload))
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(payload))
	_, err = w.Write(append(hdr, payload...))
	return err
}

// readMsg reads one frame and returns its kind and verified payload.
func readMsg(r io.Reader) (byte, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind := hdr[0]
	if kind < kindHello || kind > kindGoodbye {
		return 0, nil, fmt.Errorf("clusterd: unknown frame kind %d", kind)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("clusterd: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.BigEndian.Uint32(hdr[5:]) {
		return 0, nil, fmt.Errorf("clusterd: frame CRC mismatch on kind %d", kind)
	}
	return kind, payload, nil
}

// decode unmarshals a frame payload into v.
func decode(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("clusterd: bad frame payload: %v", err)
	}
	return nil
}
