package clusterd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"scikey/internal/mapreduce"
)

// Wire protocol: one persistent connection per peer, carrying framed
// messages in both directions. Every frame is
//
//	kind u8 | len u32 | crc32 u32 | payload [len]byte
//
// (integers big-endian, CRC32 IEEE over the payload, payloads JSON). The
// frame CRC is the same end-to-end integrity idiom the shufflenet transport
// uses: a corrupted frame is detected at the reader and tears the session
// down rather than delivering garbage into the lease state machine. The
// coordinator journal appends the identical frame shape to disk (its own
// kind space), so replay shares the torn/corrupt-frame detection with the
// wire.
//
// Two peer roles share the connection grammar:
//
// Workers: the worker connects, sends hello{PID, Worker, Claims}, and the
// coordinator answers welcome{Worker, Epoch, Spec, HeartbeatEvery, LeaseTTL,
// Readopted}. Worker is the ID a re-registering worker already holds (-1 for
// a fresh one); Claims presents the leases it still carries from before a
// dropped session, each with the coordinator epoch it was granted under, and
// Readopted lists the claims the coordinator accepted — the worker abandons
// the rest. After that the worker heartbeats on schedule and the coordinator
// pushes grant frames; the worker answers each grant with started, then
// complete or fail. Reduce attempts pull map output segments through
// segReq/segData pairs correlated by Seq. goodbye{Draining} starts a
// graceful drain.
//
// The driver (the process running the attempt scheduler): connects, sends
// driverHello, and the coordinator answers driverWelcome{Epoch}. runReq
// submits one attempt (correlated by Seq); the coordinator answers with
// runResult carrying the attempt outcome — possibly long after a coordinator
// crash and restart, because submissions are idempotent on (phase, task,
// attempt) and re-sent by the driver on reconnect. cancel withdraws a
// submitted attempt; the coordinator always answers it with a runResult.
// publish installs a committed map output (journaled before the pubAck, so
// an acked publish survives a coordinator crash).
const (
	kindHello byte = iota + 1
	kindWelcome
	kindHeartbeat
	kindGrant
	kindStarted
	kindComplete
	kindFail
	kindRevoke
	kindSegReq
	kindSegData
	kindGoodbye
	kindDriverHello
	kindDriverWelcome
	kindRunReq
	kindRunResult
	kindCancel
	kindPublish
	kindPubAck
)

// maxFrame bounds one frame's payload so a corrupt length field cannot make
// the reader allocate unbounded memory.
const maxFrame = 1 << 30

// frameAllocChunk bounds the reader's up-front allocation: a frame header
// claiming a huge length only grows the buffer as bytes actually arrive, so
// a truncated or hostile frame cannot balloon memory before its CRC check.
const frameAllocChunk = 1 << 20

// leaseClaim is one lease a re-registering worker still holds: its ID and
// the coordinator epoch it was granted under. A claim is re-adopted only if
// the coordinator's (replayed) lease table still tracks the lease for this
// worker at this epoch.
type leaseClaim struct {
	Lease int
	Epoch int
}

type helloMsg struct {
	PID int
	// Worker is the ID assigned by a previous welcome (-1 on first
	// registration). Presenting it lets a reconnecting worker keep its
	// identity — the coordinate fault schedules and the lease table bind to.
	Worker int
	// Claims lists the leases the worker still holds from before the
	// session dropped, for re-adoption.
	Claims []leaseClaim
}

type welcomeMsg struct {
	Worker int
	// Epoch is the coordinator's incarnation; grants stamp it into leases.
	Epoch          int
	Spec           []byte
	HeartbeatEvery time.Duration
	LeaseTTL       time.Duration
	// Readopted lists the hello claims the coordinator accepted: those
	// leases live on exactly as granted. The worker must abandon claims not
	// listed (their attempts were forfeited and will be re-granted).
	Readopted []int
}

type heartbeatMsg struct {
	Seq int
	// Leases lists the lease IDs the worker believes it holds; the
	// coordinator renews them and revokes any it no longer tracks.
	Leases []int
}

type grantMsg struct {
	Lease   int
	Epoch   int
	Phase   string
	Task    int
	Attempt int
}

type startedMsg struct {
	Lease int
}

type completeMsg struct {
	Lease  int
	Result *mapreduce.RemoteResult
}

// corruptInfo carries a reduce-side corruption detection across the wire so
// the coordinator can rebuild the *mapreduce.ErrCorruptSegment that drives
// map re-execution.
type corruptInfo struct {
	MapTask   int
	Partition int
	Attempt   int
}

type failMsg struct {
	Lease    int
	Error    string
	Canceled bool
	Corrupt  *corruptInfo
}

type revokeMsg struct {
	Lease int
}

type segReqMsg struct {
	Seq       int
	MapTask   int
	Partition int
}

type segDataMsg struct {
	Seq     int
	Attempt int
	Data    []byte
	Error   string
}

type goodbyeMsg struct {
	Draining bool
}

type driverHelloMsg struct {
	PID int
}

type driverWelcomeMsg struct {
	Epoch int
}

// runReqMsg submits one attempt for remote execution. Submissions are
// idempotent on (Phase, Task, Attempt): a driver reconnecting after a
// coordinator restart re-sends its outstanding requests, and the restarted
// coordinator binds each to the surviving lease, the journaled outcome, or a
// fresh grant — never a duplicate execution of a live attempt.
type runReqMsg struct {
	Seq     int
	Phase   string
	Task    int
	Attempt int
}

// runResultMsg is one attempt's outcome. Result and Error may both be set:
// a forfeited lease still reports the partial footprint charged as waste.
type runResultMsg struct {
	Seq      int
	Result   *mapreduce.RemoteResult
	Error    string
	Canceled bool
	Corrupt  *corruptInfo
}

type cancelMsg struct {
	Seq int
}

type publishMsg struct {
	Seq     int
	MapTask int
	Attempt int
	Parts   [][]byte
}

type pubAckMsg struct {
	Seq int
}

// writeFrame frames and writes one raw payload: kind, big-endian length,
// CRC32 of the payload, payload bytes. Callers serialize writes per
// destination themselves.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	hdr := make([]byte, 9, 9+len(payload))
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one frame and returns its kind and CRC-verified payload.
// The payload buffer grows only as bytes arrive, so a corrupt or hostile
// length field cannot force a large allocation up front.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind := hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("clusterd: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, 0, min(n, frameAllocChunk))
	for uint32(len(payload)) < n {
		step := min(n-uint32(len(payload)), frameAllocChunk)
		old := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[old:]); err != nil {
			return 0, nil, err
		}
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.BigEndian.Uint32(hdr[5:]) {
		return 0, nil, fmt.Errorf("clusterd: frame CRC mismatch on kind %d", kind)
	}
	return kind, payload, nil
}

// writeMsg frames and writes one wire message.
func writeMsg(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("clusterd: marshal kind %d: %v", kind, err)
	}
	return writeFrame(w, kind, payload)
}

// readMsg reads one wire frame and returns its kind and verified payload.
func readMsg(r io.Reader) (byte, []byte, error) {
	kind, payload, err := readFrame(r)
	if err != nil {
		return 0, nil, err
	}
	if kind < kindHello || kind > kindPubAck {
		return 0, nil, fmt.Errorf("clusterd: unknown frame kind %d", kind)
	}
	return kind, payload, nil
}

// decode unmarshals a frame payload into v.
func decode(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("clusterd: bad frame payload: %v", err)
	}
	return nil
}
