package clusterd

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"scikey/internal/backoff"
	"scikey/internal/mapreduce"
)

// Client is the driver side of the cluster runtime: it implements
// mapreduce.Remote over a TCP connection to the coordinator, so the attempt
// scheduler can live in a different process than the control plane — which
// is what lets the coordinator be SIGKILLed and respawned without taking the
// job down.
//
// The client owns reconnection: when the coordinator vanishes it redials on
// the backoff schedule and re-sends every outstanding submission and
// unacknowledged publish. Submissions are idempotent on (phase, task,
// attempt) — the restarted coordinator binds each re-send to the surviving
// lease, the journaled orphan outcome, or a fresh grant — so from the
// scheduler's point of view a coordinator crash is at most extra latency and
// some waste, never a wrong answer.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	conn   *clientConn
	seq    int
	calls  map[int]*clientCall
	epoch  int
	closed bool
	broken error // set when the redial budget is exhausted

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// ClientConfig configures a Client.
type ClientConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Reconnect is the redial backoff schedule. Zero value gets the default
	// 50ms base, 2s cap.
	Reconnect backoff.Policy
	// MaxDials bounds consecutive failed dials before outstanding calls fail.
	// Default 40.
	MaxDials int
	// Logf, when non-nil, receives driver-side diagnostics.
	Logf func(format string, args ...any)
}

// clientConn is one live connection with serialized writes.
type clientConn struct {
	c   net.Conn
	wmu sync.Mutex
}

func (cc *clientConn) send(kind byte, v any) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return writeMsg(cc.c, kind, v)
}

// clientCall is one outstanding request: a run submission awaiting its
// result, or a publish awaiting its ack. Calls keep their seq across
// reconnects; delivered guards against double completion.
type clientCall struct {
	seq       int
	kind      byte // kindRunReq or kindPublish
	run       runReqMsg
	pub       publishMsg
	canceled  bool
	delivered bool
	res       chan runResultMsg // run calls
	ack       chan struct{}     // publish calls
}

// Dial connects to the coordinator at cfg.Addr and starts the reconnect
// manager. The initial connection is attempted synchronously so a bad
// address fails fast; later losses are redialed in the background.
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.MaxDials <= 0 {
		cfg.MaxDials = 40
	}
	if cfg.Reconnect == (backoff.Policy{}) {
		cfg.Reconnect = backoff.Policy{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	}
	cl := &Client{
		cfg:   cfg,
		calls: make(map[int]*clientCall),
		stop:  make(chan struct{}),
	}
	cc, epoch, err := cl.dial()
	if err != nil {
		return nil, err
	}
	cl.conn = cc
	cl.epoch = epoch
	cl.wg.Add(1)
	go cl.manage(cc)
	return cl, nil
}

func (cl *Client) logf(format string, args ...any) {
	if cl.cfg.Logf != nil {
		cl.cfg.Logf(format, args...)
	}
}

// Close ends the client; outstanding calls fail.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cc := cl.conn
	cl.mu.Unlock()
	cl.stopOnce.Do(func() { close(cl.stop) })
	if cc != nil {
		cc.send(kindGoodbye, goodbyeMsg{})
		cc.c.Close()
	}
	cl.failAll(errors.New("clusterd: client closed"))
	cl.wg.Wait()
	return nil
}

// dial establishes one session: connect, driverHello, driverWelcome.
func (cl *Client) dial() (*clientConn, int, error) {
	conn, err := net.Dial("tcp", cl.cfg.Addr)
	if err != nil {
		return nil, 0, err
	}
	cc := &clientConn{c: conn}
	if err := cc.send(kindDriverHello, driverHelloMsg{PID: os.Getpid()}); err != nil {
		conn.Close()
		return nil, 0, err
	}
	kind, payload, err := readMsg(conn)
	if err != nil {
		conn.Close()
		return nil, 0, err
	}
	var welcome driverWelcomeMsg
	if kind != kindDriverWelcome || decode(payload, &welcome) != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("clusterd: expected driver welcome, got frame kind %d", kind)
	}
	return cc, welcome.Epoch, nil
}

// manage serves the current connection and redials lost ones, re-sending
// outstanding calls after each successful reconnect.
func (cl *Client) manage(cc *clientConn) {
	defer cl.wg.Done()
	for {
		cl.readLoop(cc)
		cl.mu.Lock()
		if cl.conn == cc {
			cl.conn = nil
		}
		closed := cl.closed
		cl.mu.Unlock()
		if closed {
			return
		}
		cl.logf("clusterd: coordinator connection lost, redialing")

		dials := 0
		for {
			var epoch int
			var err error
			cc, epoch, err = cl.dial()
			if err == nil {
				cl.mu.Lock()
				prev := cl.epoch
				cl.epoch = epoch
				cl.conn = cc
				resend := make([]*clientCall, 0, len(cl.calls))
				for _, call := range cl.calls {
					resend = append(resend, call)
				}
				cl.mu.Unlock()
				if epoch != prev {
					cl.logf("clusterd: reconnected to coordinator epoch %d (was %d), re-sending %d calls",
						epoch, prev, len(resend))
				}
				for _, call := range resend {
					cl.resend(cc, call)
				}
				break
			}
			dials++
			if dials >= cl.cfg.MaxDials {
				cl.failAll(fmt.Errorf("clusterd: coordinator unreachable after %d dials: %w", dials, err))
				return
			}
			if !backoff.Sleep(cl.cfg.Reconnect.Delay(int64(os.Getpid()), 1, dials), cl.stop) {
				return
			}
		}
	}
}

// resend replays one outstanding call onto a fresh connection. A canceled
// run call is completed locally instead — the scheduler no longer wants the
// result, and re-submitting it could start a fresh execution.
func (cl *Client) resend(cc *clientConn, call *clientCall) {
	cl.mu.Lock()
	canceled := call.canceled
	cl.mu.Unlock()
	if canceled {
		cl.deliver(call, runResultMsg{Seq: call.seq, Canceled: true})
		return
	}
	switch call.kind {
	case kindRunReq:
		cc.send(kindRunReq, call.run)
	case kindPublish:
		cc.send(kindPublish, call.pub)
	}
}

// readLoop dispatches responses on one connection until it dies.
func (cl *Client) readLoop(cc *clientConn) {
	for {
		kind, payload, err := readMsg(cc.c)
		if err != nil {
			cc.c.Close()
			return
		}
		switch kind {
		case kindRunResult:
			var m runResultMsg
			if decode(payload, &m) == nil {
				cl.mu.Lock()
				call := cl.calls[m.Seq]
				cl.mu.Unlock()
				if call != nil {
					cl.deliver(call, m)
				}
			}
		case kindPubAck:
			var m pubAckMsg
			if decode(payload, &m) == nil {
				cl.mu.Lock()
				call := cl.calls[m.Seq]
				if call != nil && !call.delivered {
					call.delivered = true
					delete(cl.calls, call.seq)
					close(call.ack)
				}
				cl.mu.Unlock()
			}
		default:
			cc.c.Close()
			return
		}
	}
}

// deliver completes a run call exactly once.
func (cl *Client) deliver(call *clientCall, m runResultMsg) {
	cl.mu.Lock()
	if call.delivered {
		cl.mu.Unlock()
		return
	}
	call.delivered = true
	delete(cl.calls, call.seq)
	cl.mu.Unlock()
	if call.res != nil {
		call.res <- m
	}
}

// failAll completes every outstanding call with an error (redial budget
// exhausted or client closed) and refuses future calls.
func (cl *Client) failAll(err error) {
	cl.mu.Lock()
	if cl.broken == nil {
		cl.broken = err
	}
	calls := make([]*clientCall, 0, len(cl.calls))
	for _, call := range cl.calls {
		calls = append(calls, call)
	}
	cl.mu.Unlock()
	for _, call := range calls {
		if call.kind == kindPublish {
			cl.mu.Lock()
			if !call.delivered {
				call.delivered = true
				delete(cl.calls, call.seq)
				close(call.ack)
			}
			cl.mu.Unlock()
			continue
		}
		cl.deliver(call, runResultMsg{Seq: call.seq, Error: err.Error()})
	}
}

// register assigns a seq, tracks the call, and sends it if connected; a
// disconnected client leaves the send to the reconnect manager.
func (cl *Client) register(call *clientCall) error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return errors.New("clusterd: client closed")
	}
	if cl.broken != nil {
		err := cl.broken
		cl.mu.Unlock()
		return err
	}
	cl.seq++
	call.seq = cl.seq
	switch call.kind {
	case kindRunReq:
		call.run.Seq = call.seq
	case kindPublish:
		call.pub.Seq = call.seq
	}
	cl.calls[call.seq] = call
	cc := cl.conn
	cl.mu.Unlock()
	if cc != nil {
		switch call.kind {
		case kindRunReq:
			if cc.send(kindRunReq, call.run) != nil {
				cc.c.Close() // manager redials and re-sends
			}
		case kindPublish:
			if cc.send(kindPublish, call.pub) != nil {
				cc.c.Close()
			}
		}
	}
	return nil
}

// RunRemote implements mapreduce.Remote: it submits the attempt to the
// coordinator and blocks until its outcome arrives — surviving coordinator
// restarts in between — or the scheduler cancels it.
func (cl *Client) RunRemote(phase string, task, attempt int, canceled func() bool) (*mapreduce.RemoteResult, error) {
	call := &clientCall{
		kind: kindRunReq,
		run:  runReqMsg{Phase: phase, Task: task, Attempt: attempt},
		res:  make(chan runResultMsg, 1),
	}
	if err := cl.register(call); err != nil {
		return nil, err
	}

	poll := time.NewTicker(2 * time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case m := <-call.res:
			o := storedOutcome{Error: m.Error, Canceled: m.Canceled, Corrupt: m.Corrupt}
			return m.Result, o.grantErr()
		case <-poll.C:
			if canceled != nil && canceled() && cl.cancel(call) {
				// The cancel was sent (or completed locally); wait for the
				// definitive answer so the coordinator-side lease is revoked
				// before we return.
				m := <-call.res
				o := storedOutcome{Error: m.Error, Canceled: m.Canceled, Corrupt: m.Corrupt}
				return m.Result, o.grantErr()
			}
		}
	}
}

// cancel withdraws a run call. Connected: the coordinator revokes the lease
// and always answers with a runResult. Disconnected: the call completes
// locally as canceled and will not be re-sent.
func (cl *Client) cancel(call *clientCall) bool {
	cl.mu.Lock()
	if call.delivered {
		cl.mu.Unlock()
		return true // result already buffered; caller consumes it
	}
	if call.canceled {
		cl.mu.Unlock()
		return true
	}
	call.canceled = true
	cc := cl.conn
	cl.mu.Unlock()
	if cc == nil || cc.send(kindCancel, cancelMsg{Seq: call.seq}) != nil {
		cl.deliver(call, runResultMsg{Seq: call.seq, Canceled: true})
	}
	return true
}

// PublishRemote implements mapreduce.Remote: it ships a committed map
// attempt's segments to the coordinator and blocks until the journaled ack —
// after which the publication survives coordinator crashes, which is why the
// engine may safely grant reduces.
func (cl *Client) PublishRemote(mapTask, attempt int, parts [][]byte) {
	call := &clientCall{
		kind: kindPublish,
		pub:  publishMsg{MapTask: mapTask, Attempt: attempt, Parts: parts},
		ack:  make(chan struct{}),
	}
	if err := cl.register(call); err != nil {
		cl.logf("clusterd: publish map %d attempt %d dropped: %v", mapTask, attempt, err)
		return
	}
	<-call.ack
}

// Epoch reports the coordinator incarnation the client last connected to.
func (cl *Client) Epoch() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.epoch
}
