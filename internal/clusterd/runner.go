package clusterd

import (
	"fmt"

	"scikey/internal/mapreduce"
)

// JobRunner executes attempts of one rebuilt mapreduce job — the production
// Runner a worker process uses. Each attempt runs the exact in-process data
// path (RunMapAttempt / RunReduceAttempt), so cluster output bytes and
// payload counters match a single-process run's.
type JobRunner struct {
	Job *mapreduce.Job
}

// Run implements Runner. Panics in the attempt (a hostile spec, a fault
// rule's panic action reaching user code) become ordinary failures on the
// wire instead of killing the whole worker.
func (r *JobRunner) Run(phase string, task, attempt int, canceled func() bool, fetch mapreduce.RemoteFetch) (rr *mapreduce.RemoteResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			rr, err = nil, fmt.Errorf("clusterd: %s task %d attempt %d panicked: %v", phase, task, attempt, p)
		}
	}()
	switch phase {
	case mapreduce.PhaseMap:
		return mapreduce.RunMapAttempt(r.Job, task, attempt, canceled)
	case mapreduce.PhaseReduce:
		return mapreduce.RunReduceAttempt(r.Job, task, attempt, canceled, fetch)
	default:
		return nil, fmt.Errorf("clusterd: unknown phase %q", phase)
	}
}
