package clusterd

import (
	"fmt"
	"slices"
	"time"

	"scikey/internal/mapreduce"
)

// A lease is the coordinator's claim check for one task attempt handed to
// one worker: the attempt runs remotely only while its lease is alive, and
// the lease stays alive only while the worker's heartbeats keep renewing it.
// The rules the rest of the package (and the kill-recovery tests) rely on:
//
//   - Grant: a lease binds (phase, task, attempt) to a worker and gets a
//     deadline of now+TTL. Each grant also gets the worker's next per-phase
//     grant sequence number — the coordinate the proc fault site targets —
//     and is stamped with the coordinator's epoch (incarnation), which a
//     worker must present to re-adopt the lease after a coordinator restart.
//   - Renew: a heartbeat naming the lease pushes the deadline to now+TTL. A
//     renewal arriving exactly at the deadline still saves the lease; only
//     now strictly after the deadline expires it.
//   - Expire: an expired or revoked lease is forgotten. A completion (or
//     failure) that arrives later for that lease ID is stale and must be
//     ignored — the attempt was already reissued under a new lease, and the
//     first-finisher commit rule upstream decides among live attempts only.
//   - Worker death: a worker's connection dropping forfeits all its leases
//     at once, without waiting for the heartbeat deadline.
//   - Coordinator death: replaying the journal rebuilds the table with every
//     deadline reset to replay-time+TTL — one grace TTL for the worker to
//     reconnect and re-adopt; a lease not re-adopted in time expires as
//     usual and its attempt is reissued with the lost work charged as waste.
//
// leaseInfo and leaseTable are pure bookkeeping: every method takes the
// current time explicitly, so tests drive the state machine with a fake
// clock and real servers pass time.Now(). All durable mutations flow through
// journal events applied by coordState.apply, which keeps the live table and
// a journal replay byte-for-byte convergent (the replay-determinism property
// test pins this).

// leaseInfo is one outstanding lease.
type leaseInfo struct {
	ID      int
	Worker  int
	Phase   string
	Task    int
	Attempt int
	// Epoch is the coordinator incarnation that granted this lease. A worker
	// re-registering after a coordinator restart presents (ID, Epoch) to
	// re-adopt the lease; a mismatched epoch is a stale claim and forfeits.
	Epoch int
	// GrantSeq is this grant's rank among the worker's grants of this phase
	// (0 for the worker's first map or first reduce grant). Fault schedules
	// address workers by it: proc:1.1:kill@0 fires on worker 1's reduce
	// grant with GrantSeq 0.
	GrantSeq int
	Granted  time.Time
	// Deadline is volatile: it is never journaled, and replay resets it to
	// replay-time+TTL (the re-adoption grace window).
	Deadline time.Time `json:"-"`
}

// leaseTable tracks outstanding leases. It is not safe for concurrent use;
// the coordinator guards it with its own mutex.
type leaseTable struct {
	ttl    time.Duration
	nextID int
	active map[int]*leaseInfo
	// grants counts past grants per (worker, phase), assigning GrantSeq.
	grants map[grantKey]int
}

type grantKey struct {
	worker int
	phase  string
}

func newLeaseTable(ttl time.Duration) *leaseTable {
	return &leaseTable{
		ttl:    ttl,
		active: make(map[int]*leaseInfo),
		grants: make(map[grantKey]int),
	}
}

// install applies one grant event: it creates the lease exactly as granted
// (same ID, epoch, grant sequence) and advances the ID and per-worker grant
// counters past it. Both the live grant path and journal replay go through
// here, so a replayed table converges on the live one; re-installing an
// already-known or already-settled lease is a no-op (idempotent replay).
func (t *leaseTable) install(li *leaseInfo, now time.Time) {
	if li.ID < t.nextID {
		if existing, ok := t.active[li.ID]; ok {
			existing.Deadline = now.Add(t.ttl)
		}
		return // already applied (or already settled): never resurrect
	}
	cp := *li
	cp.Granted = li.Granted
	cp.Deadline = now.Add(t.ttl)
	t.active[cp.ID] = &cp
	t.nextID = cp.ID + 1
	k := grantKey{cp.Worker, cp.Phase}
	if cp.GrantSeq >= t.grants[k] {
		t.grants[k] = cp.GrantSeq + 1
	}
}

// next builds (without installing) the lease a grant to worker would create.
func (t *leaseTable) next(worker int, epoch int, phase string, task, attempt int, now time.Time) *leaseInfo {
	return &leaseInfo{
		ID:       t.nextID,
		Worker:   worker,
		Phase:    phase,
		Task:     task,
		Attempt:  attempt,
		Epoch:    epoch,
		GrantSeq: t.grants[grantKey{worker, phase}],
		Granted:  now,
	}
}

// renew pushes the deadline of each listed lease that is still active and
// still held by worker. It returns the IDs the coordinator no longer tracks
// for this worker — the worker must be told to abandon those attempts.
func (t *leaseTable) renew(worker int, ids []int, now time.Time) (unknown []int) {
	for _, id := range ids {
		li, ok := t.active[id]
		if !ok || li.Worker != worker {
			unknown = append(unknown, id)
			continue
		}
		li.Deadline = now.Add(t.ttl)
	}
	return unknown
}

// readopt re-binds a surviving lease to a re-registering worker: the claim
// must name a tracked lease held by this worker under the claimed epoch. A
// successful re-adoption renews the deadline; the attempt continues as if
// the coordinator had never been away.
func (t *leaseTable) readopt(worker int, claim leaseClaim, now time.Time) (*leaseInfo, bool) {
	li, ok := t.active[claim.Lease]
	if !ok || li.Worker != worker || li.Epoch != claim.Epoch {
		return nil, false
	}
	li.Deadline = now.Add(t.ttl)
	return li, true
}

// expired removes and returns every lease whose deadline has strictly
// passed. A lease whose deadline equals now survives: renewal at the
// deadline is on time.
func (t *leaseTable) expired(now time.Time) []*leaseInfo {
	var out []*leaseInfo
	for id, li := range t.active {
		if now.After(li.Deadline) {
			delete(t.active, id)
			out = append(out, li)
		}
	}
	return out
}

// complete removes lease id on its way to commitment. ok is false when the
// lease is no longer tracked — an expired, revoked, or reassigned attempt
// whose late result must be dropped.
func (t *leaseTable) complete(id int) (li *leaseInfo, ok bool) {
	li, ok = t.active[id]
	if ok {
		delete(t.active, id)
	}
	return li, ok
}

// revoke removes lease id because its result is no longer wanted (the
// scheduler canceled the attempt).
func (t *leaseTable) revoke(id int) (li *leaseInfo, ok bool) {
	return t.complete(id)
}

// dropWorker removes and returns all leases held by worker — its connection
// died, so every attempt it was running is lost immediately.
func (t *leaseTable) dropWorker(worker int) []*leaseInfo {
	var out []*leaseInfo
	for id, li := range t.active {
		if li.Worker == worker {
			delete(t.active, id)
			out = append(out, li)
		}
	}
	return out
}

// byAttempt finds the active lease executing (phase, task, attempt), if
// any — the rebind point for a driver re-submitting an attempt after a
// coordinator restart.
func (t *leaseTable) byAttempt(phase string, task, attempt int) (*leaseInfo, bool) {
	for _, li := range t.active {
		if li.Phase == phase && li.Task == task && li.Attempt == attempt {
			return li, true
		}
	}
	return nil, false
}

// load counts worker's active leases (grant placement balances on it).
func (t *leaseTable) load(worker int) int {
	n := 0
	for _, li := range t.active {
		if li.Worker == worker {
			n++
		}
	}
	return n
}

// count is the number of active leases.
func (t *leaseTable) count() int { return len(t.active) }

// grantCount is the checkpoint form of one (worker, phase) grant counter.
type grantCount struct {
	Worker int
	Phase  string
	N      int
}

// snapshotGrants exports the grant counters in a canonical order.
func (t *leaseTable) snapshotGrants() []grantCount {
	out := make([]grantCount, 0, len(t.grants))
	for k, n := range t.grants {
		out = append(out, grantCount{Worker: k.worker, Phase: k.phase, N: n})
	}
	slices.SortFunc(out, func(a, b grantCount) int {
		if a.Worker != b.Worker {
			return a.Worker - b.Worker
		}
		return cmpString(a.Phase, b.Phase)
	})
	return out
}

// snapshotLeases exports the active leases sorted by ID (deadlines omitted:
// they are volatile and reset on replay).
func (t *leaseTable) snapshotLeases() []leaseInfo {
	out := make([]leaseInfo, 0, len(t.active))
	for _, li := range t.active {
		cp := *li
		cp.Deadline = time.Time{}
		out = append(out, cp)
	}
	slices.SortFunc(out, func(a, b leaseInfo) int { return a.ID - b.ID })
	return out
}

// restore loads a checkpoint's lease set and counters into an empty table.
func (t *leaseTable) restore(nextID int, leases []leaseInfo, grants []grantCount, now time.Time) {
	for i := range leases {
		cp := leases[i]
		cp.Deadline = now.Add(t.ttl)
		t.active[cp.ID] = &cp
	}
	if nextID > t.nextID {
		t.nextID = nextID
	}
	for _, g := range grants {
		k := grantKey{g.Worker, g.Phase}
		if g.N > t.grants[k] {
			t.grants[k] = g.N
		}
	}
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// describe renders a lease for logs.
func (li *leaseInfo) describe() string {
	return fmt.Sprintf("lease %d (%s task %d attempt %d, worker %d, epoch %d)",
		li.ID, li.Phase, li.Task, li.Attempt, li.Worker, li.Epoch)
}

// procPhase maps a phase name to the fault site's phase coordinate.
func procPhase(phase string) int {
	if phase == mapreduce.PhaseReduce {
		return 1
	}
	return 0
}
