package clusterd

import (
	"time"

	"scikey/internal/mapreduce"
)

// A lease is the coordinator's claim check for one task attempt handed to
// one worker: the attempt runs remotely only while its lease is alive, and
// the lease stays alive only while the worker's heartbeats keep renewing it.
// The rules the rest of the package (and the kill-recovery tests) rely on:
//
//   - Grant: a lease binds (phase, task, attempt) to a worker and gets a
//     deadline of now+TTL. Each grant also gets the worker's next per-phase
//     grant sequence number — the coordinate the proc fault site targets.
//   - Renew: a heartbeat naming the lease pushes the deadline to now+TTL. A
//     renewal arriving exactly at the deadline still saves the lease; only
//     now strictly after the deadline expires it.
//   - Expire: an expired or revoked lease is forgotten. A completion (or
//     failure) that arrives later for that lease ID is stale and must be
//     ignored — the attempt was already reissued under a new lease, and the
//     first-finisher commit rule upstream decides among live attempts only.
//   - Worker death: a worker's connection dropping forfeits all its leases
//     at once, without waiting for the heartbeat deadline.
//
// leaseInfo and leaseTable are pure bookkeeping: every method takes the
// current time explicitly, so tests drive the state machine with a fake
// clock and real servers pass time.Now().

// leaseInfo is one outstanding lease.
type leaseInfo struct {
	ID      int
	Worker  int
	Phase   string
	Task    int
	Attempt int
	// GrantSeq is this grant's rank among the worker's grants of this phase
	// (0 for the worker's first map or first reduce grant). Fault schedules
	// address workers by it: proc:1.1:kill@0 fires on worker 1's reduce
	// grant with GrantSeq 0.
	GrantSeq int
	Granted  time.Time
	Deadline time.Time
}

// leaseTable tracks outstanding leases. It is not safe for concurrent use;
// the coordinator guards it with its own mutex.
type leaseTable struct {
	ttl    time.Duration
	nextID int
	active map[int]*leaseInfo
	// grants counts past grants per (worker, phase), assigning GrantSeq.
	grants map[grantKey]int
}

type grantKey struct {
	worker int
	phase  string
}

func newLeaseTable(ttl time.Duration) *leaseTable {
	return &leaseTable{
		ttl:    ttl,
		active: make(map[int]*leaseInfo),
		grants: make(map[grantKey]int),
	}
}

// grant issues a new lease on (phase, task, attempt) to worker.
func (t *leaseTable) grant(worker int, phase string, task, attempt int, now time.Time) *leaseInfo {
	k := grantKey{worker, phase}
	li := &leaseInfo{
		ID:       t.nextID,
		Worker:   worker,
		Phase:    phase,
		Task:     task,
		Attempt:  attempt,
		GrantSeq: t.grants[k],
		Granted:  now,
		Deadline: now.Add(t.ttl),
	}
	t.nextID++
	t.grants[k]++
	t.active[li.ID] = li
	return li
}

// renew pushes the deadline of each listed lease that is still active and
// still held by worker. It returns the IDs the coordinator no longer tracks
// for this worker — the worker must be told to abandon those attempts.
func (t *leaseTable) renew(worker int, ids []int, now time.Time) (unknown []int) {
	for _, id := range ids {
		li, ok := t.active[id]
		if !ok || li.Worker != worker {
			unknown = append(unknown, id)
			continue
		}
		li.Deadline = now.Add(t.ttl)
	}
	return unknown
}

// expired removes and returns every lease whose deadline has strictly
// passed. A lease whose deadline equals now survives: renewal at the
// deadline is on time.
func (t *leaseTable) expired(now time.Time) []*leaseInfo {
	var out []*leaseInfo
	for id, li := range t.active {
		if now.After(li.Deadline) {
			delete(t.active, id)
			out = append(out, li)
		}
	}
	return out
}

// complete removes lease id on its way to commitment. ok is false when the
// lease is no longer tracked — an expired, revoked, or reassigned attempt
// whose late result must be dropped.
func (t *leaseTable) complete(id int) (li *leaseInfo, ok bool) {
	li, ok = t.active[id]
	if ok {
		delete(t.active, id)
	}
	return li, ok
}

// revoke removes lease id because its result is no longer wanted (the
// scheduler canceled the attempt).
func (t *leaseTable) revoke(id int) (li *leaseInfo, ok bool) {
	return t.complete(id)
}

// dropWorker removes and returns all leases held by worker — its connection
// died, so every attempt it was running is lost immediately.
func (t *leaseTable) dropWorker(worker int) []*leaseInfo {
	var out []*leaseInfo
	for id, li := range t.active {
		if li.Worker == worker {
			delete(t.active, id)
			out = append(out, li)
		}
	}
	return out
}

// load counts worker's active leases (grant placement balances on it).
func (t *leaseTable) load(worker int) int {
	n := 0
	for _, li := range t.active {
		if li.Worker == worker {
			n++
		}
	}
	return n
}

// count is the number of active leases.
func (t *leaseTable) count() int { return len(t.active) }

// procPhase maps a phase name to the fault site's phase coordinate.
func procPhase(phase string) int {
	if phase == mapreduce.PhaseReduce {
		return 1
	}
	return 0
}
