// Package clusterd promotes the in-process attempt scheduler into a
// multi-process cluster runtime: a coordinator daemon that owns the job and
// the lease state machine, and worker processes that register over TCP,
// heartbeat, and execute task attempts under leases.
//
// The division of labor keeps recovered runs byte-identical to
// single-process ones. All scheduling policy — retry budgets, deterministic
// backoff, speculative twins, first-finisher commit, corrupt-segment repair
// — stays in internal/mapreduce on the coordinator, which plugs into the
// engine as its Remote executor. Workers only produce bytes: they rebuild
// the job from the opaque spec pushed at registration and run single
// attempts through the exact in-process data path. A worker dying mid-lease
// (kill -9, SIGSTOP, network partition) surfaces as a failed attempt; the
// scheduler retries it under a fresh lease like any other failure, and a
// stale completion from a presumed-dead worker that comes back is dropped by
// the lease table.
package clusterd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"scikey/internal/cluster"
	"scikey/internal/faults"
	"scikey/internal/mapreduce"
	"scikey/internal/obs"
)

// Config configures a Coordinator.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Spec is the opaque job description pushed to each worker at
	// registration; workers rebuild the job from it deterministically.
	Spec []byte
	// HeartbeatEvery is the heartbeat interval pushed to workers.
	// Default 100ms.
	HeartbeatEvery time.Duration
	// LeaseTTL is how long a lease survives without a renewing heartbeat.
	// Default 5×HeartbeatEvery.
	LeaseTTL time.Duration
	// Faults optionally injects process-level faults: when a worker reports
	// an attempt started, a matching proc rule SIGKILLs or SIGSTOPs the
	// worker process — a real kill, not a simulated error.
	Faults *faults.Injector
	// Signal overrides how proc faults reach the worker process. Nil sends
	// real signals; tests substitute a recorder.
	Signal func(pid int, fault *faults.ProcFault)
	// Obs optionally records cluster gauges, lease-transition counters, and
	// heartbeat-gap histograms.
	Obs *obs.Observer
	// Logf, when non-nil, receives coordinator diagnostics.
	Logf func(format string, args ...any)
}

// grantOutcome is one finished remote attempt, delivered to its RunRemote
// waiter.
type grantOutcome struct {
	rr  *mapreduce.RemoteResult
	err error
}

// grantReq is one attempt waiting to run remotely: queued until a worker is
// available, then bound to a lease.
type grantReq struct {
	phase   string
	task    int
	attempt int
	lease   int // -1 while queued
	done    chan grantOutcome
}

// workerConn is the coordinator's view of one registered worker.
type workerConn struct {
	id       int
	pid      int
	conn     net.Conn
	wmu      sync.Mutex // serializes frame writes
	draining bool
	dead     bool
	lastBeat time.Time
}

func (w *workerConn) send(kind byte, v any) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeMsg(w.conn, kind, v)
}

// segEntry is one map task's published output: its per-partition segments
// and the attempt that produced them.
type segEntry struct {
	attempt int
	parts   [][]byte
}

// Coordinator is the cluster control plane: worker registry, lease state
// machine, segment store, and the engine's Remote executor.
type Coordinator struct {
	cfg Config
	ln  net.Listener

	mu         sync.Mutex
	workers    map[int]*workerConn
	nextWorker int
	leases     *leaseTable
	waiters    map[int]*grantReq // lease ID → waiting RunRemote
	pending    []*grantReq
	segs       map[int]*segEntry // map task → published output
	closed     bool

	kick chan struct{} // wakes the dispatcher
	stop chan struct{}
	wg   sync.WaitGroup

	gWorkers    obs.Gauge
	gLeases     obs.Gauge
	hBeatGap    obs.Histogram
	transitions map[string]obs.Counter
}

// Start listens on cfg.Addr and runs the coordinator until Close.
func Start(cfg Config) (*Coordinator, error) {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 5 * cfg.HeartbeatEvery
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Signal == nil {
		cfg.Signal = realSignal
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("clusterd: listen %s: %w", cfg.Addr, err)
	}
	c := &Coordinator{
		cfg:     cfg,
		ln:      ln,
		workers: make(map[int]*workerConn),
		leases:  newLeaseTable(cfg.LeaseTTL),
		waiters: make(map[int]*grantReq),
		segs:    make(map[int]*segEntry),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	reg := obs.NewRegistry()
	if cfg.Obs != nil {
		reg = cfg.Obs.R()
	}
	c.gWorkers = reg.Gauge("scikey_cluster_workers", "registered worker processes", "")
	c.gLeases = reg.Gauge("scikey_cluster_leases_active", "outstanding task leases", "")
	c.hBeatGap = reg.Histogram("scikey_cluster_heartbeat_gap_seconds",
		"gap between consecutive heartbeats per worker", "s", obs.ExpBuckets(0.005, 2, 12))
	c.transitions = make(map[string]obs.Counter)
	for _, s := range []string{"granted", "completed", "failed", "expired", "lost", "revoked", "stale"} {
		c.transitions[s] = reg.Counter("scikey_cluster_lease_transitions_total",
			"lease state transitions", "", obs.L("state", s))
	}
	c.wg.Add(3)
	go c.acceptLoop()
	go c.dispatchLoop()
	go c.expireLoop()
	return c, nil
}

// Addr is the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops the coordinator: pending grants fail, worker connections
// close.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pending := c.pending
	c.pending = nil
	conns := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		conns = append(conns, w)
	}
	c.mu.Unlock()

	close(c.stop)
	err := c.ln.Close()
	for _, g := range pending {
		g.done <- grantOutcome{err: errors.New("clusterd: coordinator closed")}
	}
	for _, w := range conns {
		w.conn.Close()
	}
	c.wg.Wait()
	return err
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// RunRemote implements mapreduce.Remote: it queues the attempt for the next
// available worker and blocks until the attempt completes, loses its lease,
// or is canceled by the scheduler.
func (c *Coordinator) RunRemote(phase string, task, attempt int, canceled func() bool) (*mapreduce.RemoteResult, error) {
	g := &grantReq{phase: phase, task: task, attempt: attempt, lease: -1, done: make(chan grantOutcome, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("clusterd: coordinator closed")
	}
	c.pending = append(c.pending, g)
	c.mu.Unlock()
	c.wake()

	poll := time.NewTicker(2 * time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case out := <-g.done:
			return out.rr, out.err
		case <-poll.C:
			if canceled != nil && canceled() {
				if c.cancelGrant(g) {
					return nil, mapreduce.ErrAttemptCanceled
				}
				// The outcome was already delivered concurrently; take it.
				out := <-g.done
				return out.rr, out.err
			}
		}
	}
}

// cancelGrant withdraws a canceled attempt: dequeued if still pending,
// revoked if leased. It reports true when the grant was withdrawn before an
// outcome was delivered.
func (c *Coordinator) cancelGrant(g *grantReq) bool {
	c.mu.Lock()
	for i, p := range c.pending {
		if p == g {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.mu.Unlock()
			return true
		}
	}
	if g.lease >= 0 {
		if _, ok := c.waiters[g.lease]; ok {
			delete(c.waiters, g.lease)
			var w *workerConn
			if li, ok := c.leases.revoke(g.lease); ok {
				w = c.workers[li.Worker]
			}
			c.gLeases.Set(int64(c.leases.count()))
			c.transitions["revoked"].Inc()
			c.mu.Unlock()
			if w != nil && !w.dead {
				w.send(kindRevoke, revokeMsg{Lease: g.lease})
			}
			return true
		}
	}
	c.mu.Unlock()
	return false // outcome already delivered (or being delivered)
}

// PublishRemote implements mapreduce.Remote: it installs a committed map
// attempt's segments in the coordinator's segment store, where reduce
// workers fetch them. Recovery republishes under a higher attempt, which
// replaces the corrupt original.
func (c *Coordinator) PublishRemote(mapTask, attempt int, parts [][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.segs[mapTask]; ok && e.attempt > attempt {
		return // never replace newer output with older
	}
	c.segs[mapTask] = &segEntry{attempt: attempt, parts: parts}
}

func (c *Coordinator) wake() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.serveWorker(conn)
	}
}

// serveWorker runs one worker's registration and message loop.
func (c *Coordinator) serveWorker(conn net.Conn) {
	defer c.wg.Done()
	kind, payload, err := readMsg(conn)
	if err != nil || kind != kindHello {
		conn.Close()
		return
	}
	var hello helloMsg
	if err := decode(payload, &hello); err != nil {
		conn.Close()
		return
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	w := &workerConn{id: c.nextWorker, pid: hello.PID, conn: conn, lastBeat: time.Now()}
	c.nextWorker++
	c.workers[w.id] = w
	c.gWorkers.Set(int64(len(c.workers)))
	c.mu.Unlock()

	err = w.send(kindWelcome, welcomeMsg{
		Worker:         w.id,
		Spec:           c.cfg.Spec,
		HeartbeatEvery: c.cfg.HeartbeatEvery,
		LeaseTTL:       c.cfg.LeaseTTL,
	})
	if err != nil {
		c.retireWorker(w)
		return
	}
	c.logf("clusterd: worker %d registered (pid %d, %s)", w.id, hello.PID, conn.RemoteAddr())
	c.wake() // a new worker can take pending grants

	for {
		kind, payload, err := readMsg(conn)
		if err != nil {
			c.retireWorker(w)
			return
		}
		switch kind {
		case kindHeartbeat:
			var m heartbeatMsg
			if decode(payload, &m) == nil {
				c.handleHeartbeat(w, m)
			}
		case kindStarted:
			var m startedMsg
			if decode(payload, &m) == nil {
				c.handleStarted(w, m)
			}
		case kindComplete:
			var m completeMsg
			if decode(payload, &m) == nil {
				c.settleLease(w, m.Lease, grantOutcome{rr: m.Result}, "completed")
			}
		case kindFail:
			var m failMsg
			if decode(payload, &m) == nil {
				c.settleLease(w, m.Lease, grantOutcome{err: reconstructError(m)}, "failed")
			}
		case kindSegReq:
			var m segReqMsg
			if decode(payload, &m) == nil {
				c.handleSegReq(w, m)
			}
		case kindGoodbye:
			var m goodbyeMsg
			if decode(payload, &m) == nil && m.Draining {
				c.mu.Lock()
				w.draining = true
				c.mu.Unlock()
				c.logf("clusterd: worker %d draining", w.id)
			}
		default:
			// Worker-bound kinds arriving here indicate a confused peer;
			// drop the session.
			c.retireWorker(w)
			return
		}
	}
}

// retireWorker tears down a worker whose connection ended. A draining
// worker with no leases left deregisters cleanly; any leases still held are
// lost immediately and their waiters fail without waiting for the heartbeat
// deadline.
func (c *Coordinator) retireWorker(w *workerConn) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	delete(c.workers, w.id)
	c.gWorkers.Set(int64(len(c.workers)))
	lost := c.leases.dropWorker(w.id)
	type forfeit struct {
		g  *grantReq
		li *leaseInfo
	}
	var deliver []forfeit
	for _, li := range lost {
		if g, ok := c.waiters[li.ID]; ok {
			delete(c.waiters, li.ID)
			g.lease = li.ID
			deliver = append(deliver, forfeit{g, li})
		}
	}
	c.gLeases.Set(int64(c.leases.count()))
	clean := w.draining && len(lost) == 0
	c.mu.Unlock()

	w.conn.Close()
	if clean {
		c.logf("clusterd: worker %d deregistered cleanly", w.id)
	} else {
		c.logf("clusterd: worker %d lost (%d leases forfeited)", w.id, len(lost))
	}
	now := time.Now()
	for _, f := range deliver {
		c.transitions["lost"].Inc()
		f.g.done <- grantOutcome{
			rr:  lostWork(f.li, now),
			err: fmt.Errorf("clusterd: lease %d lost: worker %d connection dropped", f.li.ID, w.id),
		}
	}
	c.wake()
}

// lostWork synthesizes the waste charge for an attempt whose worker died
// without reporting: the process could not ship its footprint, so the cost
// model is charged the wall-clock time the lease occupied the worker.
func lostWork(li *leaseInfo, now time.Time) *mapreduce.RemoteResult {
	held := now.Sub(li.Granted).Seconds()
	if held < 0 {
		held = 0
	}
	return &mapreduce.RemoteResult{
		Footprint:   cluster.Task{CPUSeconds: held},
		WallSeconds: held,
	}
}

func (c *Coordinator) handleHeartbeat(w *workerConn, m heartbeatMsg) {
	now := time.Now()
	c.mu.Lock()
	c.hBeatGap.Observe(now.Sub(w.lastBeat).Seconds())
	w.lastBeat = now
	unknown := c.leases.renew(w.id, m.Leases, now)
	c.mu.Unlock()
	for _, id := range unknown {
		w.send(kindRevoke, revokeMsg{Lease: id})
	}
}

// handleStarted fires process-level fault injection: the worker just began
// running an attempt, so a kill delivered now lands mid-task.
func (c *Coordinator) handleStarted(w *workerConn, m startedMsg) {
	if c.cfg.Faults == nil {
		return
	}
	c.mu.Lock()
	li, ok := c.leases.active[m.Lease]
	c.mu.Unlock()
	if !ok || li.Worker != w.id {
		return
	}
	fault := c.cfg.Faults.WorkerFault(w.id, procPhase(li.Phase), li.GrantSeq)
	if fault == nil {
		return
	}
	c.logf("clusterd: injecting %s into worker %d (pid %d) on %s grant %d",
		fault.Action, w.id, w.pid, li.Phase, li.GrantSeq)
	go c.cfg.Signal(w.pid, fault)
}

// settleLease delivers a worker-reported outcome to the attempt's waiter.
// Outcomes for leases the table no longer tracks — expired, revoked, or
// reassigned attempts — are stale and dropped: the scheduler already acted
// on the lease loss, and the first-finisher rule must only ever see results
// from live leases.
func (c *Coordinator) settleLease(w *workerConn, lease int, out grantOutcome, state string) {
	c.mu.Lock()
	li, ok := c.leases.complete(lease)
	if !ok || li.Worker != w.id {
		c.mu.Unlock()
		c.transitions["stale"].Inc()
		c.logf("clusterd: dropping stale %s for lease %d from worker %d", state, lease, w.id)
		return
	}
	g, haveWaiter := c.waiters[lease]
	delete(c.waiters, lease)
	c.gLeases.Set(int64(c.leases.count()))
	c.mu.Unlock()

	c.transitions[state].Inc()
	if haveWaiter {
		g.done <- out
	}
	c.wake()
}

func (c *Coordinator) handleSegReq(w *workerConn, m segReqMsg) {
	c.mu.Lock()
	e, ok := c.segs[m.MapTask]
	c.mu.Unlock()
	resp := segDataMsg{Seq: m.Seq}
	switch {
	case !ok:
		resp.Error = fmt.Sprintf("map task %d output not published", m.MapTask)
	case m.Partition < 0 || m.Partition >= len(e.parts):
		resp.Error = fmt.Sprintf("map task %d has no partition %d", m.MapTask, m.Partition)
	default:
		resp.Attempt = e.attempt
		resp.Data = e.parts[m.Partition]
	}
	w.send(kindSegData, resp)
}

// dispatchLoop binds pending grants to live workers, preferring the least
// loaded so speculative twins land on different processes.
func (c *Coordinator) dispatchLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		}
		for {
			c.mu.Lock()
			if c.closed || len(c.pending) == 0 {
				c.mu.Unlock()
				break
			}
			var best *workerConn
			bestLoad := 0
			for _, w := range c.workers {
				if w.dead || w.draining {
					continue
				}
				load := c.leases.load(w.id)
				if best == nil || load < bestLoad {
					best, bestLoad = w, load
				}
			}
			if best == nil {
				c.mu.Unlock()
				break // no eligible worker; retry on next registration
			}
			g := c.pending[0]
			c.pending = c.pending[1:]
			li := c.leases.grant(best.id, g.phase, g.task, g.attempt, time.Now())
			g.lease = li.ID
			c.waiters[li.ID] = g
			c.gLeases.Set(int64(c.leases.count()))
			c.mu.Unlock()

			c.transitions["granted"].Inc()
			err := best.send(kindGrant, grantMsg{Lease: li.ID, Phase: g.phase, Task: g.task, Attempt: g.attempt})
			if err != nil {
				c.retireWorker(best) // delivers this grant's loss via dropWorker
			}
		}
	}
}

// expireLoop sweeps the lease table: attempts whose worker stopped
// heartbeating (SIGSTOP, kill -9, partition) fail over to a fresh lease.
func (c *Coordinator) expireLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HeartbeatEvery / 2)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		c.mu.Lock()
		lapsed := c.leases.expired(now)
		type victim struct {
			g *grantReq
			w *workerConn
			l *leaseInfo
		}
		var victims []victim
		for _, li := range lapsed {
			v := victim{w: c.workers[li.Worker], l: li}
			if g, ok := c.waiters[li.ID]; ok {
				delete(c.waiters, li.ID)
				v.g = g
			}
			victims = append(victims, v)
		}
		c.gLeases.Set(int64(c.leases.count()))
		c.mu.Unlock()

		for _, v := range victims {
			c.transitions["expired"].Inc()
			c.logf("clusterd: lease %d (%s task %d attempt %d) expired on worker %d",
				v.l.ID, v.l.Phase, v.l.Task, v.l.Attempt, v.l.Worker)
			if v.w != nil && !v.w.dead {
				v.w.send(kindRevoke, revokeMsg{Lease: v.l.ID})
			}
			if v.g != nil {
				v.g.done <- grantOutcome{
					rr:  lostWork(v.l, now),
					err: fmt.Errorf("clusterd: lease %d expired: worker %d heartbeat lapsed", v.l.ID, v.l.Worker),
				}
			}
		}
		if len(victims) > 0 {
			c.wake()
		}
	}
}

// reconstructError rebuilds a worker-reported failure in the engine's error
// vocabulary, so canceled attempts stay silent and corrupt-segment
// detections drive map re-execution exactly as in-process failures do.
func reconstructError(m failMsg) error {
	switch {
	case m.Canceled:
		return mapreduce.ErrAttemptCanceled
	case m.Corrupt != nil:
		return &mapreduce.ErrCorruptSegment{
			MapTask:   m.Corrupt.MapTask,
			Partition: m.Corrupt.Partition,
			Attempt:   m.Corrupt.Attempt,
			Err:       errors.New(m.Error),
		}
	default:
		return errors.New(m.Error)
	}
}

// realSignal delivers a proc fault to a live process: kill is SIGKILL —
// no cleanup, no goodbye, the real thing — and hang is SIGSTOP for the
// configured delay, then SIGCONT, long enough for the heartbeat deadline to
// lapse and the lease to move.
func realSignal(pid int, fault *faults.ProcFault) {
	switch fault.Action {
	case faults.ActKill:
		syscall.Kill(pid, syscall.SIGKILL)
	case faults.ActHang:
		syscall.Kill(pid, syscall.SIGSTOP)
		time.Sleep(fault.Delay)
		syscall.Kill(pid, syscall.SIGCONT)
	}
}
